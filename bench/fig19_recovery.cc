/**
 * @file
 * Figure 19: recovery cost of the checkpointed proof pipeline.
 *
 * Two tables. The first prices checkpointing itself: the proof
 * pipeline's checkpoint volume (bytes written, entries) per proof at
 * several trace sizes — the storage a resumable prover pays even when
 * nothing fails. The second sweeps the chaos grid (zkp/chaos.hh) and
 * reports, per intensity, completed/failed-clean counts, resume
 * attempts per completed proof, checkpoint corruption detections, the
 * NTT-side MTBF over simulated seconds, and the silent-corruption
 * count — which must read 0 in every row; the run exits non-zero
 * otherwise, so the figure doubles as an invariant check.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "zkp/chaos.hh"
#include "zkp/checkpoint.hh"
#include "zkp/serialize.hh"
#include "zkp/stark.hh"

using namespace unintt;

namespace {

using F = Goldilocks;

void
checkpointOverheadTable()
{
    std::printf("checkpoint volume per proof (fault-free pipeline)\n");
    Table t({"log2 trace", "proof size", "ckpt entries", "ckpt bytes",
             "overhead"});
    for (unsigned log_trace : {6u, 8u, 10u}) {
        SquareStark stark;
        const F t0 = F::fromU64(3);
        CheckpointStore store;
        auto r = stark.proveCheckpointed(t0, log_trace, store);
        if (!r.ok()) {
            std::fprintf(stderr, "prove failed: %s\n",
                         r.status().toString().c_str());
            continue;
        }
        const double proof_bytes = static_cast<double>(
            serializeStarkProof(r.value()).size());
        const double ckpt_bytes =
            static_cast<double>(store.stats().bytesWritten);
        t.addRow({std::to_string(log_trace),
                  formatBytes(proof_bytes),
                  std::to_string(store.entries()),
                  formatBytes(ckpt_bytes),
                  fmtF(ckpt_bytes / proof_bytes, 1) + "x"});
    }
    t.print();
}

} // namespace

int
main()
{
    checkpointOverheadTable();

    std::printf("\nchaos grid: 8 campaigns per intensity "
                "(proofs 2^8, NTT 2^14 on 8 GPUs)\n");
    ChaosConfig cfg;
    std::vector<ChaosCampaignStats> rows;
    uint64_t silent = 0;
    for (const auto &intensity : defaultChaosGrid()) {
        rows.push_back(runChaosCampaigns(cfg, intensity));
        silent += rows.back().silentCorruptions;
    }
    printChaosTable(std::cout, rows);

    if (silent != 0) {
        std::fprintf(stderr, "\nFAIL: silent corruption observed\n");
        return 1;
    }
    std::printf("\ninvariant held: 0 silent corruptions across the "
                "grid\n");
    return 0;
}
