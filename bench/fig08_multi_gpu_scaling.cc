/**
 * @file
 * Figure 8: multi-GPU strong scaling of UniNTT. For each transform
 * size, prints the simulated time at 1/2/4/8 GPUs, the speedup over
 * one GPU and the parallel efficiency, on both the NVSwitch and PCIe
 * fabrics.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace unintt;
    using F = Goldilocks;
    benchHeader("Figure 8", "multi-GPU strong scaling of UniNTT");
    verifyOrDie<F>(makeDgxA100(8));

    struct FabricChoice
    {
        const char *name;
        Interconnect fabric;
    };
    const FabricChoice fabrics[] = {
        {"nvswitch", makeNvSwitchFabric()},
        {"pcie", makePcieFabric()},
    };

    for (const auto &fc : fabrics) {
        Table t({"fabric", "log2(N)", "GPUs", "time", "speedup vs 1 GPU",
                 "efficiency"});
        for (unsigned logN : {20u, 24u, 28u}) {
            double t1 = 0;
            for (unsigned gpus : {1u, 2u, 4u, 8u}) {
                MultiGpuSystem sys{makeA100(), fc.fabric, gpus};
                UniNttEngine<F> engine(sys);
                double s = engine.analyticRun(logN, NttDirection::Forward)
                               .totalSeconds();
                if (gpus == 1)
                    t1 = s;
                double speedup = t1 / s;
                t.addRow({fc.name, std::to_string(logN),
                          std::to_string(gpus), formatSeconds(s),
                          fmtX(speedup),
                          fmtF(speedup / gpus * 100, 1) + "%"});
            }
            t.addSeparator();
        }
        t.print();
        std::printf("\n");
    }
    return 0;
}
