/**
 * @file
 * Figure 20: multi-tenant proving service under load.
 *
 * Three parts. The first prices the hardened executor itself: the
 * same 0.5-load scenario runs through the plain batched path
 * (coalescing on) and through the resilient path (spot checks, retry
 * machinery) — the throughput/latency gap is the cost of always-on
 * hardening. The second sweeps offered load from 0.25 to 1.25x of
 * estimated capacity, fault-free and under chaos (fabric faults, two
 * device kills mid-run, proof-stage interruptions), and reports
 * per-point throughput, latency percentiles and the service counters
 * (shed / retried / degraded / deadline-missed). The third is the
 * invariant gate the soak also enforces: zero corrupt results at
 * every point, and at 0.5 offered load the premium tenant's p99 under
 * chaos stays within 2x of the fault-free run — the figure doubles as
 * an SLA regression check and exits non-zero on violation.
 *
 * Everything runs in virtual time on the simulated DGX-A100 fleet;
 * all numbers are seed-deterministic.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "service/loadgen.hh"
#include "service/service.hh"
#include "sim/multi_gpu.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace unintt;

namespace {

constexpr unsigned kGpus = 8;
constexpr unsigned kLogN = 10;
/**
 * Per-point sample size. The premium tenant draws ~23% of arrivals,
 * so 1300 jobs put >300 premium samples behind each p99 — enough for
 * the nearest-rank percentile to measure the healthy population
 * rather than the one job that sat on a killed device (whose mid-run
 * replan legitimately costs several service times).
 */
constexpr unsigned kJobsPerPoint = 1300;
constexpr uint64_t kSeed = 0xf1620ull;

/** The soak's tenant mix: premium/standard/bulk NTTs plus a prover. */
std::vector<TenantProfile>
tenantMix()
{
    std::vector<TenantProfile> tenants =
        LoadScenario::defaultTenants(kLogN);
    TenantProfile prover;
    prover.name = "prover";
    prover.sla = SlaClass::Standard;
    prover.kind = JobKind::Proof;
    prover.logN = 6;
    prover.weight = 0.25;
    prover.seedPool = 1;
    tenants.push_back(prover);
    return tenants;
}

/** Fabric faults + two device kills armed at @p kill_at seconds. */
ServiceChaos
chaosAt(double kill_at)
{
    ServiceChaos chaos;
    chaos.transientRate = 0.01;
    chaos.bitFlipRate = 0.005;
    chaos.stragglerRate = 0.01;
    chaos.stragglerSlowdown = 2.0;
    chaos.stageFailRate = 0.05;
    chaos.roundFailRate = 0.02;
    chaos.killDevices = {1, kGpus - 1};
    chaos.killAtSeconds = kill_at;
    return chaos;
}

ServiceConfig
baseConfig(bool hardened)
{
    ServiceConfig cfg;
    cfg.jobGpus = 2;
    cfg.seed = kSeed;
    cfg.hardenedOnly = hardened;
    return cfg;
}

LoadScenario
scenarioAt(double offered)
{
    LoadScenario scn;
    scn.offeredLoad = offered;
    scn.jobsTarget = kJobsPerPoint;
    scn.seed = kSeed;
    scn.tenants = tenantMix();
    return scn;
}

void
executorOverheadTable(const MultiGpuSystem &fleet)
{
    std::printf("executor cost at 0.5 offered load (%u jobs, "
                "fault-free)\n",
                kJobsPerPoint);
    Table t({"executor", "jobs/s", "p50", "p95", "p99", "coalesced"});
    for (bool hardened : {false, true}) {
        LoadResult r = runLoadScenario(fleet, baseConfig(hardened),
                                       scenarioAt(0.5));
        t.addRow({hardened ? "resilient (spot checks)"
                           : "plain (coalescing)",
                  fmtF(r.throughputRate, 0), formatSeconds(r.p50),
                  formatSeconds(r.p95), formatSeconds(r.p99),
                  fmtI(r.coalescedLaunches)});
    }
    t.print();
}

} // namespace

int
main()
{
    const MultiGpuSystem fleet = makeDgxA100(kGpus);

    executorOverheadTable(fleet);

    std::printf("\noffered-load sweep on %u GPUs (2^%u transforms, "
                "hardened executor, %u jobs per point)\n",
                kGpus, kLogN, kJobsPerPoint);
    Table t({"load", "faults", "jobs/s", "p50", "p95", "p99",
             "prem p99", "shed", "quota", "retry", "degr", "miss",
             "corrupt"});

    uint64_t corrupt_total = 0;
    double clean_prem_p99 = 0, faulty_prem_p99 = 0;
    for (double offered : {0.25, 0.5, 0.75, 1.0, 1.25}) {
        // The kill time derives from the fault-free makespan so the
        // kills land mid-load at every operating point.
        LoadResult clean =
            runLoadScenario(fleet, baseConfig(true),
                            scenarioAt(offered));
        LoadResult faulty = runLoadScenario(
            fleet, baseConfig(true), scenarioAt(offered),
            chaosAt(clean.makespanSeconds * 0.3));

        for (const LoadResult *r : {&clean, &faulty}) {
            const bool faults = r == &faulty;
            const TenantLoadStats *prem = r->find("premium");
            const double prem_p99 = prem ? prem->p99 : 0;
            if (offered == 0.5 && prem)
                (faults ? faulty_prem_p99 : clean_prem_p99) = prem_p99;
            corrupt_total += r->corruptResults;
            const ServiceCounters &c = r->totals;
            t.addRow({fmtF(offered, 2), faults ? "yes" : "no",
                      fmtF(r->throughputRate, 0),
                      formatSeconds(r->p50), formatSeconds(r->p95),
                      formatSeconds(r->p99), formatSeconds(prem_p99),
                      fmtI(c.shed), fmtI(c.quotaRejected),
                      fmtI(c.retried), fmtI(c.degraded),
                      fmtI(c.deadlineMissed),
                      fmtI(r->corruptResults)});
        }
    }
    t.print();

    int failures = 0;
    if (corrupt_total != 0) {
        std::fprintf(stderr,
                     "\nFAIL: %llu corrupt result(s) returned OK\n",
                     static_cast<unsigned long long>(corrupt_total));
        failures++;
    }
    if (clean_prem_p99 > 0 &&
        faulty_prem_p99 > 2.0 * clean_prem_p99) {
        std::fprintf(stderr,
                     "\nFAIL: premium p99 under chaos at 0.5 load "
                     "(%s) exceeds 2x the fault-free p99 (%s)\n",
                     formatSeconds(faulty_prem_p99).c_str(),
                     formatSeconds(clean_prem_p99).c_str());
        failures++;
    }
    if (failures != 0)
        return 1;
    std::printf("\ninvariants held: 0 corrupt results across the "
                "sweep; premium p99 under chaos (%s) within 2x of "
                "fault-free (%s) at 0.5 load\n",
                formatSeconds(faulty_prem_p99).c_str(),
                formatSeconds(clean_prem_p99).c_str());
    return 0;
}
