/**
 * @file
 * Shared helpers of the figure/table benches: system construction from
 * flags, functional spot verification, and header printing. Every bench
 * binary reproduces one table or figure of the paper (see DESIGN.md's
 * per-experiment index) and prints its rows through util/table.hh.
 */

#ifndef UNINTT_BENCH_BENCH_UTIL_HH
#define UNINTT_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "field/field_traits.hh"
#include "ntt/radix2.hh"
#include "sim/multi_gpu.hh"
#include "unintt/engine.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace unintt {

/** Print the standard bench banner. */
inline void
benchHeader(const std::string &experiment, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", experiment.c_str(), what.c_str());
    std::printf("==============================================================\n");
}

/**
 * Functional spot check: run the engine at a small size and compare
 * with the host reference, so every bench certifies the simulated
 * algorithm actually computes NTTs before printing numbers.
 */
template <NttField F>
bool
verifyEngine(const MultiGpuSystem &sys, unsigned logN)
{
    Rng rng(12345);
    std::vector<F> x(1ULL << logN);
    for (auto &v : x)
        v = F::fromU64(rng.next());
    auto expect = x;
    nttNoPermute(expect, NttDirection::Forward);

    UniNttEngine<F> engine(sys);
    auto dist = DistributedVector<F>::fromGlobal(x, sys.numGpus);
    engine.forward(dist);
    return dist.toGlobal() == expect;
}

/** Print the verification line (and abort the bench on failure). */
template <NttField F>
void
verifyOrDie(const MultiGpuSystem &sys, unsigned logN = 12)
{
    if (!verifyEngine<F>(sys, logN))
        fatal("functional verification FAILED on %s",
              sys.description().c_str());
    std::printf("functional verification (2^%u on %s): OK\n\n", logN,
                sys.description().c_str());
}

} // namespace unintt

#endif // UNINTT_BENCH_BENCH_UTIL_HH
