/**
 * @file
 * Shared helpers of the figure/table benches: system construction from
 * flags, functional spot verification, and header printing. Every bench
 * binary reproduces one table or figure of the paper (see DESIGN.md's
 * per-experiment index) and prints its rows through util/table.hh.
 */

#ifndef UNINTT_BENCH_BENCH_UTIL_HH
#define UNINTT_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "field/field_traits.hh"
#include "ntt/radix2.hh"
#include "sim/multi_gpu.hh"
#include "unintt/engine.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace unintt {

/** Print the standard bench banner. */
inline void
benchHeader(const std::string &experiment, const std::string &what)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", experiment.c_str(), what.c_str());
    std::printf("==============================================================\n");
}

/**
 * Functional spot check: run the engine at a small size and compare
 * with the host reference, so every bench certifies the simulated
 * algorithm actually computes NTTs before printing numbers.
 */
template <NttField F>
bool
verifyEngine(const MultiGpuSystem &sys, unsigned logN)
{
    Rng rng(12345);
    std::vector<F> x(1ULL << logN);
    for (auto &v : x)
        v = F::fromU64(rng.next());
    auto expect = x;
    nttNoPermute(expect, NttDirection::Forward);

    UniNttEngine<F> engine(sys);
    auto dist = DistributedVector<F>::fromGlobal(x, sys.numGpus);
    engine.forward(dist);
    return dist.toGlobal() == expect;
}

/** Print the verification line (and abort the bench on failure). */
template <NttField F>
void
verifyOrDie(const MultiGpuSystem &sys, unsigned logN = 12)
{
    if (!verifyEngine<F>(sys, logN))
        fatal("functional verification FAILED on %s",
              sys.description().c_str());
    std::printf("functional verification (2^%u on %s): OK\n\n", logN,
                sys.description().c_str());
}

/**
 * Wall-clock @p fn for @p reps repetitions and return the best (not
 * mean) seconds of one run — the standard perf-harness statistic,
 * robust against scheduler noise on a shared machine.
 */
template <typename Fn>
double
bestWallSeconds(int reps, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

/**
 * Minimal JSON emitter for the machine-readable BENCH_*.json
 * artifacts the perf-trajectory harness diffs across commits. Scalar
 * values only (string/number/bool), two-space indentation, keys
 * emitted in insertion order.
 */
class JsonWriter
{
  public:
    JsonWriter() { os_ << "{"; stack_.push_back(0); }

    JsonWriter &
    field(const std::string &key, const std::string &v)
    {
        keyPrefix(key);
        os_ << '"' << v << '"';
        return *this;
    }

    JsonWriter &
    field(const std::string &key, const char *v)
    {
        return field(key, std::string(v));
    }

    JsonWriter &
    field(const std::string &key, double v)
    {
        keyPrefix(key);
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        os_ << buf;
        return *this;
    }

    JsonWriter &
    field(const std::string &key, uint64_t v)
    {
        keyPrefix(key);
        os_ << v;
        return *this;
    }

    JsonWriter &
    field(const std::string &key, unsigned v)
    {
        return field(key, static_cast<uint64_t>(v));
    }

    JsonWriter &
    field(const std::string &key, bool v)
    {
        keyPrefix(key);
        os_ << (v ? "true" : "false");
        return *this;
    }

    JsonWriter &
    beginArray(const std::string &key)
    {
        keyPrefix(key);
        os_ << "[";
        stack_.push_back(0);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        popLevel();
        os_ << "]";
        return *this;
    }

    JsonWriter &
    beginObject()
    {
        valuePrefix();
        os_ << "{";
        stack_.push_back(0);
        return *this;
    }

    JsonWriter &
    beginObject(const std::string &key)
    {
        keyPrefix(key);
        os_ << "{";
        stack_.push_back(0);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        popLevel();
        os_ << "}";
        return *this;
    }

    /**
     * Close the root object and return the document. Nested arrays
     * and objects must already be closed by the caller.
     */
    std::string
    str()
    {
        popLevel();
        os_ << "}\n";
        return os_.str();
    }

  private:
    void
    indent()
    {
        os_ << "\n";
        for (size_t i = 0; i < stack_.size(); ++i)
            os_ << "  ";
    }

    void
    keyPrefix(const std::string &key)
    {
        if (stack_.back()++)
            os_ << ",";
        indent();
        os_ << '"' << key << "\": ";
    }

    void
    valuePrefix()
    {
        if (stack_.back()++)
            os_ << ",";
        indent();
    }

    void
    popLevel()
    {
        stack_.pop_back();
        os_ << "\n";
        for (size_t i = 0; i < stack_.size(); ++i)
            os_ << "  ";
    }

    std::ostringstream os_;
    std::vector<int> stack_;
};

/** Write @p text to @p path, fatally on I/O failure. */
inline void
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace unintt

#endif // UNINTT_BENCH_BENCH_UTIL_HH
