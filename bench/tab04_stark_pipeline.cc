/**
 * @file
 * Table 4 (extension): the hash-based (STARK/Plonky2-style) prover
 * pipeline over Goldilocks — the setting where huge-size NTTs dominate
 * proving and small-field multi-GPU NTT matters most. Prints the
 * NTT / hash / other breakdown and the end-to-end effect of each NTT
 * backend across GPU counts.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "zkp/prover.hh"

int
main()
{
    using namespace unintt;
    benchHeader("Table 4",
                "hash-based (STARK-style) prover, 2^24-row trace, "
                "Goldilocks");

    auto stages = ZkpPipeline::starkStages(24, /*columns=*/3);

    for (auto backend : {NttBackend::SingleGpu, NttBackend::FourStep,
                         NttBackend::UniNtt}) {
        Table t({"backend", "GPUs", "NTT", "hash+fold", "total",
                 "pipelined", "hidden", "NTT share"});
        for (unsigned gpus : {1u, 2u, 4u, 8u}) {
            ZkpPipeline pipe(makeDgxA100(gpus), backend);
            // Pipelined: the Merkle commit of round i overlaps the
            // next transcript-independent NTT; per-kind seconds are
            // identical, only the wall clock shrinks.
            auto bd = pipe.estimateHashBasedPipelined(stages);
            t.addRow({toString(backend), std::to_string(gpus),
                      formatSeconds(bd.nttSeconds),
                      formatSeconds(bd.otherSeconds),
                      formatSeconds(bd.total()),
                      formatSeconds(bd.pipelinedTotal()),
                      formatSeconds(bd.hiddenSeconds),
                      fmtF(bd.nttShare() * 100, 1) + "%"});
        }
        t.print();
        std::printf("\n");
    }

    std::printf("Reading: in the hash-based family NTT is a much larger "
                "share of proving than\nin pairing-based provers, so the "
                "multi-GPU NTT matters even more here.\n");
    return 0;
}
