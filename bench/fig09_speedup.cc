/**
 * @file
 * Figure 9 (headline): UniNTT speedup over the conventional multi-GPU
 * NTT (four-step with all-to-all transposes) across transform sizes,
 * GPU counts and fabrics. The abstract reports an average 4.26x over
 * the baseline; this bench prints the per-configuration speedups and
 * their geometric mean.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "field/bn254.hh"
#include "field/goldilocks.hh"
#include "unintt/backend.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace unintt {
namespace {

template <NttField F>
void
sweepField(const char *field_name, std::vector<double> &vs_tuned,
           std::vector<double> &vs_prior)
{
    Table table({"field", "fabric", "GPUs", "log2(N)", "prior-art 4step",
                 "tuned 4step", "UniNTT", "vs prior", "vs tuned"});
    struct FabricChoice
    {
        const char *name;
        Interconnect fabric;
    };
    const FabricChoice fabrics[] = {
        {"nvswitch", makeNvSwitchFabric()},
        {"pcie", makePcieFabric()},
    };

    for (const auto &fc : fabrics) {
        for (unsigned gpus : {4u, 8u}) {
            for (unsigned logN : {22u, 24u, 26u, 28u}) {
                MultiGpuSystem sys{makeA100(), fc.fabric, gpus};
                // All three implementations come from the backend
                // registry; the bench no longer names concrete types.
                auto &reg = NttBackendRegistry<F>::global();
                auto unintt = reg.make("unintt", sys);
                auto tuned = reg.make("fourstep", sys);
                auto prior = reg.make("fourstep-prior", sys);
                double t_prior =
                    prior->analyticRun(logN, NttDirection::Forward)
                        .totalSeconds();
                double t_tuned =
                    tuned->analyticRun(logN, NttDirection::Forward)
                        .totalSeconds();
                double t_uni =
                    unintt->analyticRun(logN, NttDirection::Forward)
                        .totalSeconds();
                vs_tuned.push_back(t_tuned / t_uni);
                vs_prior.push_back(t_prior / t_uni);
                table.addRow({field_name, fc.name, std::to_string(gpus),
                              std::to_string(logN),
                              formatSeconds(t_prior),
                              formatSeconds(t_tuned),
                              formatSeconds(t_uni),
                              fmtX(t_prior / t_uni),
                              fmtX(t_tuned / t_uni)});
            }
            table.addSeparator();
        }
    }
    table.print();
}

} // namespace
} // namespace unintt

int
main()
{
    using namespace unintt;
    benchHeader("Figure 9",
                "UniNTT speedup over four-step multi-GPU NTT (headline)");
    verifyOrDie<Goldilocks>(makeDgxA100(4));

    std::vector<double> vs_tuned, vs_prior;
    sweepField<Goldilocks>("Goldilocks", vs_tuned, vs_prior);
    std::printf("\n");
    sweepField<Bn254Fr>("BN254-Fr", vs_tuned, vs_prior);

    std::printf("\ngeomean speedup vs prior-art four-step: %s\n",
                fmtX(geomean(vs_prior)).c_str());
    std::printf("geomean speedup vs tuned four-step:     %s\n",
                fmtX(geomean(vs_tuned)).c_str());
    std::printf("paper (abstract) reports: 4.26x average over its "
                "baseline\n");
    return 0;
}
