/**
 * @file
 * Figure 21 (new experiment): cost of ABFT compute-path integrity.
 *
 * For each (transform size, GPU count), compares the resilient engine
 * with the ABFT checksums off (baseline), on over a clean machine
 * (the hardening tax), and on under seeded in-kernel bit flips (the
 * recovery cost). Reports both the priced simulator seconds — the
 * analytic tax every executor charges — and host wall-clock of the
 * functional executor, plus the check/catch/recompute counters.
 * Every completed run is verified bit-exact against the host
 * reference, flips and all.
 *
 * Flags:
 *   --smoke   tiny sizes for CI. The run fails if any completed run
 *             is not bit-exact or if the flip campaigns catch nothing.
 *
 * In full mode the run additionally fails if the clean-machine wall
 * overhead at the largest size exceeds the 10% target.
 */

#include <cstdio>
#include <cstring>

#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "sim/fault.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace unintt;
using F = Goldilocks;

namespace {

struct Cell
{
    double wallSeconds = 0;
    double pricedSeconds = 0;
    FaultStats faults;
    uint64_t flipsInjected = 0;
    unsigned failedClean = 0;
};

/**
 * Run the seeded campaign once per seed, best-of wall time over
 * @p reps for the timing (counters accumulate over all seeds).
 */
Cell
runCampaign(UniNttEngine<F> &engine, const std::vector<F> &input,
            const std::vector<F> &expect, unsigned gpus, bool abft,
            double flip_rate, const std::vector<uint64_t> &seeds,
            int reps)
{
    Cell cell;
    ResilienceConfig rc;
    rc.abft = abft;
    double best = 1e300;
    for (uint64_t seed : seeds) {
        FaultModel m;
        m.seed = mix64(seed + 1);
        m.computeBitFlipRate = flip_rate;
        FaultInjector inj(m);
        auto dist = DistributedVector<F>::fromGlobal(input, gpus);
        Result<SimReport> r = engine.forwardResilient(dist, inj, rc);
        cell.flipsInjected += inj.injected().computeCorruptions;
        if (!r.ok()) {
            cell.failedClean++;
            continue;
        }
        if (dist.toGlobal() != expect)
            fatal("completed run is not bit-exact (seed %llu)",
                  static_cast<unsigned long long>(seed));
        cell.pricedSeconds = r.value().totalSeconds();
        cell.faults += r.value().faultStats();
    }
    for (int rep = 0; rep < reps; ++rep) {
        FaultModel m;
        m.seed = mix64(seeds.front() + 1);
        m.computeBitFlipRate = flip_rate;
        best = std::min(
            best, bestWallSeconds(1, [&] {
                FaultInjector inj(m);
                auto dist =
                    DistributedVector<F>::fromGlobal(input, gpus);
                (void)engine.forwardResilient(dist, inj, rc);
            }));
    }
    cell.wallSeconds = best;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            fatal("unknown flag '%s' (--smoke)", argv[i]);
    }

    benchHeader("Figure 21",
                "ABFT compute-integrity overhead: checksum tax and "
                "tile-recovery cost");

    const std::vector<unsigned> log_ns =
        smoke ? std::vector<unsigned>{12, 14}
              : std::vector<unsigned>{18, 20, 22};
    const std::vector<unsigned> gpu_counts =
        smoke ? std::vector<unsigned>{4} : std::vector<unsigned>{4, 8};
    const int reps = smoke ? 2 : 5;
    const double kFlipRate = 0.02;
    // Seeded flip campaign: enough deterministic seeds that the 2%
    // per-step rate fires on every swept configuration.
    std::vector<uint64_t> flip_seeds;
    for (uint64_t s = 0; s < (smoke ? 24u : 8u); ++s)
        flip_seeds.push_back(s);
    const std::vector<uint64_t> clean_seed{0};

    Table t({"log2(N)", "GPUs", "scenario", "wall", "wall ovh",
             "priced", "priced ovh", "checks", "catches", "tiles",
             "escal"});
    uint64_t total_catches = 0, total_flips = 0;
    bool overhead_ok = true;
    Rng rng(2121);
    for (unsigned gpus : gpu_counts) {
        auto sys = makeDgxA100(gpus);
        verifyOrDie<F>(sys);
        UniNttEngine<F> engine(sys);
        for (unsigned logN : log_ns) {
            std::vector<F> x(1ULL << logN);
            for (auto &v : x)
                v = F::fromU64(rng.next());
            std::vector<F> expect = x;
            nttNoPermute(expect, NttDirection::Forward);

            const Cell off = runCampaign(engine, x, expect, gpus,
                                         false, 0.0, clean_seed, reps);
            const Cell clean = runCampaign(engine, x, expect, gpus,
                                           true, 0.0, clean_seed,
                                           reps);
            const Cell flips =
                runCampaign(engine, x, expect, gpus, true, kFlipRate,
                            flip_seeds, reps);
            total_catches += flips.faults.abftCatches;
            total_flips += flips.flipsInjected;

            const double wall_ovh =
                (clean.wallSeconds / off.wallSeconds - 1.0) * 100.0;
            const double priced_ovh =
                (clean.pricedSeconds / off.pricedSeconds - 1.0) *
                100.0;
            // The 10% target is gated on the headline configuration
            // (largest size on the full machine); the smaller cells
            // are context and too noisy on a loaded host to gate.
            if (!smoke && logN == log_ns.back() &&
                gpus == gpu_counts.back() && wall_ovh > 10.0)
                overhead_ok = false;

            auto row = [&](const char *name, const Cell &c,
                           bool ovh) {
                t.addRow({std::to_string(logN), std::to_string(gpus),
                          name, formatSeconds(c.wallSeconds),
                          ovh ? fmtF(wall_ovh, 1) + "%" : "-",
                          formatSeconds(c.pricedSeconds),
                          ovh ? fmtF(priced_ovh, 1) + "%" : "-",
                          fmtI(c.faults.abftChecks),
                          fmtI(c.faults.abftCatches),
                          fmtI(c.faults.tilesRecomputed),
                          fmtI(c.faults.abftEscalations)});
            };
            row("abft off", off, false);
            row("abft on, clean", clean, true);
            row("abft on, flips p=0.02", flips, false);
            t.addSeparator();
        }
    }
    t.print();

    std::printf("\nflip campaigns: %llu flips injected, %llu caught, "
                "every completed run bit-exact\n",
                static_cast<unsigned long long>(total_flips),
                static_cast<unsigned long long>(total_catches));
    if (total_catches == 0) {
        std::fprintf(stderr, "FAIL: flip campaigns caught nothing — "
                             "the checksums are not load-bearing\n");
        return 1;
    }
    if (!overhead_ok) {
        std::fprintf(stderr, "FAIL: clean-machine ABFT wall overhead "
                             "exceeded the 10%% target at 2^%u\n",
                     log_ns.back());
        return 1;
    }
    std::printf("abftCatches=%llu\n",
                static_cast<unsigned long long>(total_catches));
    return 0;
}
