/**
 * @file
 * Figure 10: inter-GPU communication of UniNTT versus the four-step
 * baseline: bytes each GPU puts on the fabric, message counts, and the
 * visible (non-overlapped) communication time. UniNTT moves
 * log2(G) * chunk bytes in large contiguous pairwise messages that
 * overlap with compute; four-step moves ~2 * chunk bytes but as
 * congested all-to-all rounds that cannot be hidden.
 */

#include <cstdio>

#include "baselines/fourstep_multigpu.hh"
#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace unintt;
    using F = Goldilocks;
    benchHeader("Figure 10", "inter-GPU communication volume and time");
    verifyOrDie<F>(makeDgxA100(4));

    for (auto fabric : {makeNvSwitchFabric(), makePcieFabric()}) {
        Table t({"fabric", "GPUs", "log2(N)", "algo", "bytes/GPU",
                 "messages", "visible comm", "hidden comm",
                 "comm share"});
        for (unsigned gpus : {2u, 4u, 8u}) {
            for (unsigned logN : {24u, 28u}) {
                MultiGpuSystem sys{makeA100(), fabric, gpus};
                UniNttEngine<F> uni(sys);
                FourStepMultiGpuNtt<F> four(sys);

                auto ru = uni.analyticRun(logN, NttDirection::Forward);
                auto rf = four.analyticRun(logN, NttDirection::Forward);

                auto hidden = [](const SimReport &r) {
                    double h = 0;
                    for (const auto &p : r.phases())
                        h += p.hiddenSeconds;
                    return h;
                };
                auto row = [&](const char *algo, const SimReport &r) {
                    t.addRow({toString(fabric.kind), std::to_string(gpus),
                              std::to_string(logN), algo,
                              formatBytes(static_cast<double>(
                                  r.totalCommStats().bytesPerGpu)),
                              std::to_string(r.totalCommStats().messages),
                              formatSeconds(r.commSeconds()),
                              formatSeconds(hidden(r)),
                              fmtF(r.commSeconds() / r.totalSeconds() *
                                       100, 1) + "%"});
                };
                row("UniNTT", ru);
                row("four-step", rf);
            }
            t.addSeparator();
        }
        t.print();
        std::printf("\n");
    }

    // DAG overlap: with the wave dispatch on, each wave is priced as
    // max(comm, compute) instead of their sum, so the overlapped
    // makespan must come in strictly below the linear schedule at
    // identical fabric bytes and message counts. The gate fails the
    // bench (and CI) if either half of that claim breaks.
    std::printf("DAG overlap vs linear dispatch (NVSwitch):\n");
    Table to({"GPUs", "log2(N)", "dispatch", "waves", "total",
              "visible comm", "bytes/GPU", "messages"});
    for (unsigned gpus : {4u, 8u}) {
        MultiGpuSystem sys{makeA100(), makeNvSwitchFabric(), gpus};
        for (unsigned logN : {22u, 24u}) {
            UniNttConfig lin;
            lin.overlapComm = false;
            UniNttEngine<F> dag_eng(sys);
            UniNttEngine<F> lin_eng(sys, lin);
            auto rd = dag_eng.analyticRun(logN, NttDirection::Forward);
            auto rl = lin_eng.analyticRun(logN, NttDirection::Forward);
            auto row = [&](const char *name, const SimReport &r) {
                to.addRow({std::to_string(gpus), std::to_string(logN),
                           name,
                           std::to_string(r.hostExecStats().overlapWaves),
                           formatSeconds(r.totalSeconds()),
                           formatSeconds(r.commSeconds()),
                           formatBytes(static_cast<double>(
                               r.totalCommStats().bytesPerGpu)),
                           std::to_string(r.totalCommStats().messages)});
            };
            row("dag-overlap", rd);
            row("linear", rl);
            if (rd.totalSeconds() >= rl.totalSeconds())
                fatal("overlap gate: DAG makespan not below linear at "
                      "2^%u on %u GPUs", logN, gpus);
            if (rd.totalCommStats().bytesPerGpu !=
                    rl.totalCommStats().bytesPerGpu ||
                rd.totalCommStats().messages !=
                    rl.totalCommStats().messages)
                fatal("overlap gate: fabric ledger changed under the "
                      "DAG dispatch at 2^%u on %u GPUs", logN, gpus);
        }
        to.addSeparator();
    }
    to.print();
    std::printf("\n");

    // Host-tile fusion moves butterflies between kernels, not between
    // GPUs: the fused schedule touches DRAM less (one round trip per
    // fused group instead of per stage) while the fabric sees exactly
    // the same bytes and message count. This is the claim behind
    // fig16's tile sweep, shown here against the comm ledger.
    std::printf("fused local passes vs per-stage (NVSwitch, 2^26):\n");
    Table tf({"GPUs", "schedule", "DRAM bytes", "kernel launches",
              "bytes/GPU", "messages"});
    for (unsigned gpus : {2u, 4u, 8u}) {
        MultiGpuSystem sys{makeA100(), makeNvSwitchFabric(), gpus};
        for (bool fuse : {true, false}) {
            UniNttConfig cfg;
            cfg.fuseLocalPasses = fuse;
            UniNttEngine<F> engine(sys, cfg);
            auto r = engine.analyticRun(26, NttDirection::Forward);
            auto k = r.totalKernelStats();
            auto c = r.totalCommStats();
            tf.addRow({std::to_string(gpus),
                       fuse ? "fused" : "per-stage",
                       formatBytes(static_cast<double>(k.globalBytes())),
                       std::to_string(k.kernelLaunches),
                       formatBytes(static_cast<double>(c.bytesPerGpu)),
                       std::to_string(c.messages)});
        }
        tf.addSeparator();
    }
    tf.print();
    return 0;
}
