/**
 * @file
 * Figure 10: inter-GPU communication of UniNTT versus the four-step
 * baseline: bytes each GPU puts on the fabric, message counts, and the
 * visible (non-overlapped) communication time. UniNTT moves
 * log2(G) * chunk bytes in large contiguous pairwise messages that
 * overlap with compute; four-step moves ~2 * chunk bytes but as
 * congested all-to-all rounds that cannot be hidden.
 */

#include <cstdio>

#include "baselines/fourstep_multigpu.hh"
#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace unintt;
    using F = Goldilocks;
    benchHeader("Figure 10", "inter-GPU communication volume and time");
    verifyOrDie<F>(makeDgxA100(4));

    for (auto fabric : {makeNvSwitchFabric(), makePcieFabric()}) {
        Table t({"fabric", "GPUs", "log2(N)", "algo", "bytes/GPU",
                 "messages", "visible comm", "hidden comm",
                 "comm share"});
        for (unsigned gpus : {2u, 4u, 8u}) {
            for (unsigned logN : {24u, 28u}) {
                MultiGpuSystem sys{makeA100(), fabric, gpus};
                UniNttEngine<F> uni(sys);
                FourStepMultiGpuNtt<F> four(sys);

                auto ru = uni.analyticRun(logN, NttDirection::Forward);
                auto rf = four.analyticRun(logN, NttDirection::Forward);

                auto hidden = [](const SimReport &r) {
                    double h = 0;
                    for (const auto &p : r.phases())
                        h += p.hiddenSeconds;
                    return h;
                };
                auto row = [&](const char *algo, const SimReport &r) {
                    t.addRow({toString(fabric.kind), std::to_string(gpus),
                              std::to_string(logN), algo,
                              formatBytes(static_cast<double>(
                                  r.totalCommStats().bytesPerGpu)),
                              std::to_string(r.totalCommStats().messages),
                              formatSeconds(r.commSeconds()),
                              formatSeconds(hidden(r)),
                              fmtF(r.commSeconds() / r.totalSeconds() *
                                       100, 1) + "%"});
                };
                row("UniNTT", ru);
                row("four-step", rf);
            }
            t.addSeparator();
        }
        t.print();
        std::printf("\n");
    }
    return 0;
}
