/**
 * @file
 * Perf-trajectory harness for the host butterfly kernels.
 *
 * Times the fused tile-resident local passes (unintt/executors.hh,
 * fusedLocalStagesCompute) against the per-stage path on one pinned
 * configuration — Goldilocks, one GPU chunk, one host thread — so the
 * number tracks kernel quality, not scheduling luck. Both paths are
 * first checked bit-identical on the same input; the harness then
 * reports ns per butterfly, elements per second, and the fused
 * speedup, and writes the machine-readable BENCH_host_ntt.json that
 * scripts/bench.sh (and CI in --smoke mode) diff across commits.
 *
 * Flags:
 *   --smoke      tiny sizes for CI; exits non-zero if the fused path
 *                is more than 10% slower than the per-stage path.
 *   --out=PATH   where to write the JSON (default BENCH_host_ntt.json).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "sim/fault.hh"
#include "unintt/engine.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace unintt;

namespace {

using F = Goldilocks;

constexpr unsigned kGpus = 1;

double
nsPerButterfly(double seconds, unsigned logN)
{
    const double butterflies =
        static_cast<double>(logN) *
        static_cast<double>(1ULL << logN) / 2.0;
    return seconds * 1e9 / butterflies;
}

/** Best-of-reps wall seconds of one forward transform. */
double
timeForward(UniNttEngine<F> &engine, const std::vector<F> &input,
            int reps)
{
    auto dist = DistributedVector<F>::fromGlobal(input, kGpus);
    engine.forward(dist); // warm plan/schedule/twiddle caches
    return bestWallSeconds(reps, [&] { engine.forward(dist); });
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_host_ntt.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out_path = argv[i] + 6;
        else
            fatal("unknown flag '%s' (--smoke, --out=PATH)", argv[i]);
    }

    benchHeader("BENCH host NTT",
                "fused tile-resident vs per-stage host butterflies");
    auto sys = makeDgxA100(kGpus);
    verifyOrDie<F>(sys);

    const std::vector<unsigned> log_ns =
        smoke ? std::vector<unsigned>{14, 16}
              : std::vector<unsigned>{20, 22, 24};
    const int reps = smoke ? 2 : 5;

    UniNttConfig fused_cfg;
    fused_cfg.hostThreads = 1;
    UniNttConfig unfused_cfg = fused_cfg;
    unfused_cfg.fuseLocalPasses = false;
    UniNttEngine<F> fused(sys, fused_cfg);
    UniNttEngine<F> unfused(sys, unfused_cfg);

    std::printf("pinned: %s, %u host thread, best of %d reps\n\n",
                sys.description().c_str(), fused_cfg.hostThreads, reps);

    JsonWriter jw;
    jw.field("bench", "host_ntt")
        .field("field", F::kName)
        .field("gpus", kGpus)
        .field("hostThreads", fused_cfg.hostThreads)
        .field("smoke", smoke)
        .beginArray("points");

    Table t({"logN", "tile", "fused ns/bfly", "per-stage ns/bfly",
             "fused elem/s", "speedup"});
    bool smoke_ok = true;
    double min_large_speedup = 1e300;
    for (unsigned logN : log_ns) {
        Rng rng(4040 + logN);
        std::vector<F> input(1ULL << logN);
        for (auto &v : input)
            v = F::fromU64(rng.next());

        // The fused path must be bit-identical to the per-stage path
        // before any timing is worth reporting.
        auto df = DistributedVector<F>::fromGlobal(input, kGpus);
        auto du = DistributedVector<F>::fromGlobal(input, kGpus);
        fused.forward(df);
        unfused.forward(du);
        if (df.toGlobal() != du.toGlobal())
            fatal("fused output differs from per-stage at 2^%u", logN);

        unsigned tile_log2 = 0;
        for (const auto &st :
             fused.schedule(logN, NttDirection::Forward)->steps)
            if (st.kind == StepKind::FusedLocalPass)
                tile_log2 = st.tileLog2;

        const double fsec = timeForward(fused, input, reps);
        const double usec = timeForward(unfused, input, reps);
        const double fns = nsPerButterfly(fsec, logN);
        const double uns = nsPerButterfly(usec, logN);
        const double elems = static_cast<double>(1ULL << logN);
        const double speedup = uns / fns;
        if (smoke && fns > 1.10 * uns)
            smoke_ok = false;
        if (logN >= 20)
            min_large_speedup = std::min(min_large_speedup, speedup);

        t.addRow({std::to_string(logN), "2^" + std::to_string(tile_log2),
                  fmtF(fns, 3), fmtF(uns, 3),
                  formatRate(elems / fsec), fmtF(speedup, 2) + "x"});

        jw.beginObject()
            .field("logN", logN)
            .field("tileLog2", tile_log2)
            .field("fusedNsPerButterfly", fns)
            .field("unfusedNsPerButterfly", uns)
            .field("fusedElementsPerSec", elems / fsec)
            .field("unfusedElementsPerSec", elems / usec)
            .field("speedup", speedup)
            .endObject();
    }
    jw.endArray();
    t.print();

    // The ABFT hardening point: clean-machine wall overhead of the
    // compute-path checksums at the largest swept size, on the same
    // pinned configuration. Tracked in the artifact so the hardening
    // tax trends across commits like the kernel numbers (target:
    // < 10% at 2^22; fig21_abft_overhead gates the multi-GPU case).
    {
        const unsigned logN = log_ns.back();
        Rng rng(4040 + logN);
        std::vector<F> input(1ULL << logN);
        for (auto &v : input)
            v = F::fromU64(rng.next());
        auto timeResilient = [&](bool abft) {
            ResilienceConfig rc;
            rc.abft = abft;
            auto dist =
                DistributedVector<F>::fromGlobal(input, kGpus);
            FaultInjector warm(FaultModel::none());
            if (!fused.forwardResilient(dist, warm, rc).ok())
                fatal("resilient warmup failed");
            return bestWallSeconds(reps, [&] {
                FaultInjector inj(FaultModel::none());
                (void)fused.forwardResilient(dist, inj, rc);
            });
        };
        const double off_sec = timeResilient(false);
        const double on_sec = timeResilient(true);
        const double ovh = (on_sec / off_sec - 1.0) * 100.0;
        std::printf("\nabft point (2^%u): off %s, on %s, overhead "
                    "%.1f%% (target < 10%% at 2^22)\n",
                    logN, formatSeconds(off_sec).c_str(),
                    formatSeconds(on_sec).c_str(), ovh);
        jw.beginObject("abft")
            .field("logN", logN)
            .field("offSeconds", off_sec)
            .field("onSeconds", on_sec)
            .field("overheadPercent", ovh)
            .endObject();
    }

    writeTextFile(out_path, jw.str());
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!smoke && min_large_speedup < 1e300)
        std::printf("fused speedup at logN >= 20: %.2fx "
                    "(target >= 1.5x)\n", min_large_speedup);
    if (smoke && !smoke_ok) {
        std::fprintf(stderr, "\nFAIL: fused path more than 10%% slower "
                             "than per-stage in smoke mode\n");
        return 1;
    }
    return 0;
}
