/**
 * @file
 * Perf-trajectory harness for the host butterfly kernels.
 *
 * Times the fused tile-resident local passes (unintt/executors.hh,
 * fusedLocalStagesCompute) against the per-stage path on one pinned
 * configuration — Goldilocks, one GPU chunk, one host thread — so the
 * number tracks kernel quality, not scheduling luck. The sweep runs
 * once per acceleration path the router can bind on this host
 * (field/dispatch.hh), so BENCH_host_ntt.json carries one point per
 * (logN, isa) pair and the scalar/AVX2/AVX-512 trajectories diff
 * independently across commits. Every path's output is first checked
 * bit-identical against the forced-scalar engine on the same input;
 * the harness then reports ns per butterfly, elements per second, and
 * the fused speedup, and writes the machine-readable
 * BENCH_host_ntt.json that scripts/bench.sh (and CI in --smoke mode)
 * diff across commits.
 *
 * Flags:
 *   --smoke      tiny sizes for CI; exits non-zero if the fused path
 *                is more than 10% slower than the per-stage path.
 *   --out=PATH   where to write the JSON (default BENCH_host_ntt.json).
 *   --tune       let the fused engine consult the tuning DB (the
 *                per-stage and scalar-reference engines stay
 *                heuristic); each point records its provenance.
 *   --tune-db=PATH  which DB --tune reads (default tuning/tunedb.json).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "field/dispatch.hh"
#include "field/goldilocks.hh"
#include "sim/fault.hh"
#include "unintt/engine.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace unintt;

namespace {

using F = Goldilocks;

constexpr unsigned kGpus = 1;

double
nsPerButterfly(double seconds, unsigned logN)
{
    const double butterflies =
        static_cast<double>(logN) *
        static_cast<double>(1ULL << logN) / 2.0;
    return seconds * 1e9 / butterflies;
}

/** Best-of-reps wall seconds of one forward transform. */
double
timeForward(UniNttEngine<F> &engine, const std::vector<F> &input,
            int reps)
{
    auto dist = DistributedVector<F>::fromGlobal(input, kGpus);
    engine.forward(dist); // warm plan/schedule/twiddle caches
    return bestWallSeconds(reps, [&] { engine.forward(dist); });
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool tune = false;
    std::string out_path = "BENCH_host_ntt.json";
    std::string tune_db = kDefaultTuneDbPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--tune") == 0)
            tune = true;
        else if (std::strncmp(argv[i], "--tune-db=", 10) == 0)
            tune_db = argv[i] + 10;
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out_path = argv[i] + 6;
        else
            fatal("unknown flag '%s' (--smoke, --out=PATH, --tune, "
                  "--tune-db=PATH)", argv[i]);
    }

    benchHeader("BENCH host NTT",
                "fused tile-resident vs per-stage host butterflies, "
                "per acceleration path");
    auto sys = makeDgxA100(kGpus);
    verifyOrDie<F>(sys);
    std::printf("%s\n", routerDescription().c_str());

    const std::vector<unsigned> log_ns =
        smoke ? std::vector<unsigned>{14, 16}
              : std::vector<unsigned>{20, 22, 24};
    const int reps = smoke ? 2 : 5;
    const std::vector<IsaPath> paths = availableIsaPaths();

    UniNttConfig base_cfg;
    base_cfg.hostThreads = 1;
    // The trajectory must not move when someone refreshes the DB
    // unless they asked for tuned numbers: heuristic by default.
    base_cfg.useTuneDb = false;

    std::printf("pinned: %s, %u host thread, best of %d reps, "
                "%s schedules\n\n",
                sys.description().c_str(), base_cfg.hostThreads, reps,
                tune ? "tuned" : "heuristic");

    JsonWriter jw;
    jw.field("bench", "host_ntt")
        .field("field", F::kName)
        .field("gpus", kGpus)
        .field("hostThreads", base_cfg.hostThreads)
        .field("router", isaPathName(resolveIsaPath(IsaPath::Auto)))
        .field("smoke", smoke)
        .field("tuneDb", tune ? tune_db : "")
        .beginArray("points");

    // Scalar reference engine: every path's bytes must match its
    // output before that path's timing is worth reporting.
    UniNttConfig scalar_cfg = base_cfg;
    scalar_cfg.isaPath = IsaPath::Scalar;
    UniNttEngine<F> scalar_ref(sys, scalar_cfg);

    Table t({"logN", "isa", "tile", "fused ns/bfly",
             "per-stage ns/bfly", "fused elem/s", "speedup"});
    bool smoke_ok = true;
    double min_large_speedup = 1e300;
    double best_fused_ns = 1e300;
    for (unsigned logN : log_ns) {
        Rng rng(4040 + logN);
        std::vector<F> input(1ULL << logN);
        for (auto &v : input)
            v = F::fromU64(rng.next());

        auto dref = DistributedVector<F>::fromGlobal(input, kGpus);
        scalar_ref.forward(dref);
        const std::vector<F> ref = dref.toGlobal();

        for (IsaPath isa : paths) {
            UniNttConfig fused_cfg = base_cfg;
            fused_cfg.isaPath = isa;
            UniNttConfig unfused_cfg = fused_cfg;
            unfused_cfg.fuseLocalPasses = false;
            if (tune) {
                fused_cfg.useTuneDb = true;
                fused_cfg.tuneDbPath = tune_db;
            }
            UniNttEngine<F> fused(sys, fused_cfg);
            UniNttEngine<F> unfused(sys, unfused_cfg);

            // Byte-identity gates: fused and per-stage under this
            // path must both reproduce the forced-scalar bytes.
            auto df = DistributedVector<F>::fromGlobal(input, kGpus);
            auto du = DistributedVector<F>::fromGlobal(input, kGpus);
            fused.forward(df);
            unfused.forward(du);
            if (df.toGlobal() != ref)
                fatal("%s fused output differs from scalar at 2^%u",
                      isaPathName(isa), logN);
            if (du.toGlobal() != ref)
                fatal("%s per-stage output differs from scalar at "
                      "2^%u", isaPathName(isa), logN);

            unsigned tile_log2 = 0;
            bool tuned = false;
            for (const auto &st :
                 fused
                     .schedule(logN, NttDirection::Forward, 1, nullptr,
                               nullptr, &tuned)
                     ->steps)
                if (st.kind == StepKind::FusedLocalPass)
                    tile_log2 = st.tileLog2;

            const double fsec = timeForward(fused, input, reps);
            const double usec = timeForward(unfused, input, reps);
            const double fns = nsPerButterfly(fsec, logN);
            const double uns = nsPerButterfly(usec, logN);
            const double elems = static_cast<double>(1ULL << logN);
            const double speedup = uns / fns;
            if (smoke && fns > 1.10 * uns)
                smoke_ok = false;
            if (logN >= 20)
                min_large_speedup =
                    std::min(min_large_speedup, speedup);
            if (logN >= 20)
                best_fused_ns = std::min(best_fused_ns, fns);

            t.addRow({std::to_string(logN), isaPathName(isa),
                      "2^" + std::to_string(tile_log2), fmtF(fns, 3),
                      fmtF(uns, 3), formatRate(elems / fsec),
                      fmtF(speedup, 2) + "x"});

            jw.beginObject()
                .field("logN", logN)
                .field("isa", isaPathName(isa))
                .field("isaLanes", isaLaneWidth(isa, sizeof(F)))
                .field("tileLog2", tile_log2)
                .field("tuned", tuned)
                .field("fusedNsPerButterfly", fns)
                .field("unfusedNsPerButterfly", uns)
                .field("fusedElementsPerSec", elems / fsec)
                .field("unfusedElementsPerSec", elems / usec)
                .field("speedup", speedup)
                .endObject();
        }
    }
    jw.endArray();
    t.print();

    // The ABFT hardening point: clean-machine wall overhead of the
    // compute-path checksums at the largest swept size, on the same
    // pinned configuration under the router's auto path. Tracked in
    // the artifact so the hardening tax trends across commits like
    // the kernel numbers (target: < 10% at 2^22; fig21_abft_overhead
    // gates the multi-GPU case).
    {
        const unsigned logN = log_ns.back();
        Rng rng(4040 + logN);
        std::vector<F> input(1ULL << logN);
        for (auto &v : input)
            v = F::fromU64(rng.next());
        UniNttEngine<F> fused(sys, base_cfg);
        auto timeResilient = [&](bool abft) {
            ResilienceConfig rc;
            rc.abft = abft;
            auto dist =
                DistributedVector<F>::fromGlobal(input, kGpus);
            FaultInjector warm(FaultModel::none());
            if (!fused.forwardResilient(dist, warm, rc).ok())
                fatal("resilient warmup failed");
            return bestWallSeconds(reps, [&] {
                FaultInjector inj(FaultModel::none());
                (void)fused.forwardResilient(dist, inj, rc);
            });
        };
        const double off_sec = timeResilient(false);
        const double on_sec = timeResilient(true);
        const double ovh = (on_sec / off_sec - 1.0) * 100.0;
        std::printf("\nabft point (2^%u): off %s, on %s, overhead "
                    "%.1f%% (target < 10%% at 2^22)\n",
                    logN, formatSeconds(off_sec).c_str(),
                    formatSeconds(on_sec).c_str(), ovh);
        jw.beginObject("abft")
            .field("logN", logN)
            .field("offSeconds", off_sec)
            .field("onSeconds", on_sec)
            .field("overheadPercent", ovh)
            .endObject();
    }

    writeTextFile(out_path, jw.str());
    std::printf("\nwrote %s\n", out_path.c_str());

    if (!smoke && min_large_speedup < 1e300)
        std::printf("fused speedup at logN >= 20: %.2fx "
                    "(target >= 1.5x)\n", min_large_speedup);
    if (!smoke && best_fused_ns < 1e300)
        std::printf("best fused ns/butterfly at logN >= 20: %.3f "
                    "(target < 1.5 on a vector path)\n",
                    best_fused_ns);
    if (smoke && !smoke_ok) {
        std::fprintf(stderr, "\nFAIL: fused path more than 10%% slower "
                             "than per-stage in smoke mode\n");
        return 1;
    }
    return 0;
}
