/**
 * @file
 * Micro-benchmarks (google-benchmark): real wall-clock time of the
 * host-side transforms — the radix-2 reference, the Stockham autosort
 * variant, and the functional UniNTT engine (which pays the simulator
 * bookkeeping on top of the same arithmetic).
 */

#include <benchmark/benchmark.h>

#include "field/bn254.hh"
#include "field/goldilocks.hh"
#include "ntt/radix2.hh"
#include "ntt/stockham.hh"
#include "unintt/engine.hh"
#include "util/random.hh"

namespace unintt {
namespace {

template <NttField F>
std::vector<F>
randomVector(size_t n)
{
    Rng rng(7);
    std::vector<F> v(n);
    for (auto &e : v)
        e = F::fromU64(rng.next());
    return v;
}

template <typename F>
void
BM_CpuRadix2(benchmark::State &state)
{
    size_t n = 1ULL << state.range(0);
    auto x = randomVector<F>(n);
    TwiddleTable<F> tw(n, NttDirection::Forward);
    for (auto _ : state) {
        nttDif(x.data(), n, tw);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}

template <typename F>
void
BM_CpuStockham(benchmark::State &state)
{
    size_t n = 1ULL << state.range(0);
    auto x = randomVector<F>(n);
    for (auto _ : state) {
        nttStockham(x, NttDirection::Forward);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}

template <typename F>
void
BM_UniNttFunctional(benchmark::State &state)
{
    size_t n = 1ULL << state.range(0);
    auto x = randomVector<F>(n);
    UniNttEngine<F> engine(makeDgxA100(4));
    auto dist = DistributedVector<F>::fromGlobal(x, 4);
    for (auto _ : state) {
        auto report = engine.forward(dist);
        benchmark::DoNotOptimize(report.totalSeconds());
    }
    state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_CpuRadix2<Goldilocks>)->Arg(12)->Arg(16)->Arg(20);
BENCHMARK(BM_CpuRadix2<Bn254Fr>)->Arg(12)->Arg(16);
BENCHMARK(BM_CpuStockham<Goldilocks>)->Arg(12)->Arg(16)->Arg(20);
BENCHMARK(BM_UniNttFunctional<Goldilocks>)->Arg(12)->Arg(16)->Arg(18);

} // namespace
} // namespace unintt

BENCHMARK_MAIN();
