/**
 * @file
 * Figure 22 (new experiment): SIMD span-kernel speedup.
 *
 * Sweeps one pinned host configuration — one GPU chunk, one host
 * thread, fused local passes — over transform sizes, once per
 * acceleration path the router can bind (field/dispatch.hh), for
 * Goldilocks and BabyBear. Each vector path's output is checked
 * bit-identical against the forced-scalar engine before timing; the
 * bench then reports ns per butterfly and the vector-over-scalar
 * speedup per (field, logN, isa) cell.
 *
 * Hard gate: at every logN >= 16 every vector path must be at least
 * as fast as forced scalar (ratio >= 1.0x). A vector path losing to
 * scalar at a cache-resident or larger size means the router would
 * bind a pessimization, so the bench exits non-zero. Sizes below 16
 * are context only (span lengths there are short enough that fixed
 * overheads can dominate).
 *
 * Flags:
 *   --smoke   tiny sizes for CI (still includes logN=16 so the gate
 *             stays armed).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "field/babybear.hh"
#include "field/dispatch.hh"
#include "field/goldilocks.hh"
#include "unintt/engine.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace unintt;

namespace {

constexpr unsigned kGpus = 1;
constexpr unsigned kGateLogN = 16;

double
nsPerButterfly(double seconds, unsigned logN)
{
    const double butterflies =
        static_cast<double>(logN) *
        static_cast<double>(1ULL << logN) / 2.0;
    return seconds * 1e9 / butterflies;
}

/**
 * Sweep one field: per (logN, vector path) time forced-scalar vs the
 * vector engine and record the speedup. Returns false if any vector
 * path at logN >= kGateLogN is slower than scalar.
 */
template <NttField F>
bool
sweepField(const MultiGpuSystem &sys, Table &t,
           const std::vector<unsigned> &log_ns, int reps)
{
    std::vector<IsaPath> vec_paths;
    for (IsaPath p : availableIsaPaths())
        if (p != IsaPath::Scalar &&
            isaLaneWidth(p, sizeof(F)) > 1)
            vec_paths.push_back(p);
    if (vec_paths.empty()) {
        std::printf("%s: no vector path available on this host, "
                    "nothing to gate\n", F::kName);
        return true;
    }

    UniNttConfig scalar_cfg;
    scalar_cfg.hostThreads = 1;
    scalar_cfg.isaPath = IsaPath::Scalar;
    UniNttEngine<F> scalar(sys, scalar_cfg);

    bool ok = true;
    for (unsigned logN : log_ns) {
        Rng rng(2222 + logN);
        std::vector<F> input(1ULL << logN);
        for (auto &v : input)
            v = F::fromU64(rng.next());

        auto ds = DistributedVector<F>::fromGlobal(input, kGpus);
        scalar.forward(ds);
        const std::vector<F> ref = ds.toGlobal();
        auto dist = DistributedVector<F>::fromGlobal(input, kGpus);
        const double ssec = bestWallSeconds(
            reps, [&] { scalar.forward(dist); });

        for (IsaPath isa : vec_paths) {
            UniNttConfig cfg = scalar_cfg;
            cfg.isaPath = isa;
            UniNttEngine<F> vec(sys, cfg);

            auto dv = DistributedVector<F>::fromGlobal(input, kGpus);
            vec.forward(dv);
            if (dv.toGlobal() != ref)
                fatal("%s %s output differs from scalar at 2^%u",
                      F::kName, isaPathName(isa), logN);

            auto dt = DistributedVector<F>::fromGlobal(input, kGpus);
            const double vsec = bestWallSeconds(
                reps, [&] { vec.forward(dt); });
            const double speedup = ssec / vsec;
            const bool gated = logN >= kGateLogN;
            const bool lost = gated && speedup < 1.0;
            if (lost)
                ok = false;

            t.addRow({F::kName, std::to_string(logN),
                      isaPathName(isa),
                      std::to_string(isaLaneWidth(isa, sizeof(F))),
                      fmtF(nsPerButterfly(ssec, logN), 3),
                      fmtF(nsPerButterfly(vsec, logN), 3),
                      fmtF(speedup, 2) + "x",
                      lost ? "FAIL" : (gated ? "ok" : "-")});
        }
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            fatal("unknown flag '%s' (--smoke)", argv[i]);
    }

    benchHeader("Figure 22",
                "SIMD span-kernel speedup: forced-scalar vs vector "
                "acceleration paths");
    auto sys = makeDgxA100(kGpus);
    verifyOrDie<Goldilocks>(sys);
    std::printf("%s\n", routerDescription().c_str());

    // The gate size (16) must always be in the sweep, smoke or not.
    const std::vector<unsigned> log_ns =
        smoke ? std::vector<unsigned>{14, 16}
              : std::vector<unsigned>{14, 16, 18, 20, 22};
    const int reps = smoke ? 2 : 5;
    std::printf("pinned: %s, 1 host thread, best of %d reps; gate: "
                "vector >= scalar at logN >= %u\n\n",
                sys.description().c_str(), reps, kGateLogN);

    Table t({"field", "logN", "isa", "lanes", "scalar ns/bfly",
             "vector ns/bfly", "speedup", "gate"});
    bool ok = sweepField<Goldilocks>(sys, t, log_ns, reps);
    ok = sweepField<BabyBear>(sys, t, log_ns, reps) && ok;
    t.print();

    if (!ok) {
        std::fprintf(stderr,
                     "\nFAIL: a vector path lost to forced scalar at "
                     "logN >= %u — the router would bind a "
                     "pessimization\n", kGateLogN);
        return 1;
    }
    std::printf("\nOK: every vector path at least matches scalar at "
                "logN >= %u\n", kGateLogN);
    return 0;
}
