/**
 * @file
 * Micro-benchmarks (google-benchmark): real wall-clock throughput of
 * the field arithmetic that underlies every simulated butterfly.
 * These validate the relative field costs the performance model uses
 * (FieldCost in sim/hw_model.hh): BN254-Fr multiplication should be
 * roughly an order of magnitude more expensive than Goldilocks.
 */

#include <benchmark/benchmark.h>

#include "field/babybear.hh"
#include "field/bn254.hh"
#include "field/goldilocks.hh"
#include "util/random.hh"

namespace unintt {
namespace {

template <typename F>
void
BM_FieldMul(benchmark::State &state)
{
    Rng rng(1);
    F a = F::fromU64(rng.next() | 1);
    F b = F::fromU64(rng.next() | 1);
    for (auto _ : state) {
        a = a * b;
        benchmark::DoNotOptimize(a);
    }
}

template <typename F>
void
BM_FieldAdd(benchmark::State &state)
{
    Rng rng(2);
    F a = F::fromU64(rng.next());
    F b = F::fromU64(rng.next() | 1);
    for (auto _ : state) {
        a = a + b;
        benchmark::DoNotOptimize(a);
    }
}

template <typename F>
void
BM_FieldInverse(benchmark::State &state)
{
    Rng rng(3);
    F a = F::fromU64(rng.next() | 1);
    for (auto _ : state) {
        a = a.inverse();
        benchmark::DoNotOptimize(a);
        a = a + F::one(); // avoid a fixed point
    }
}

template <typename F>
void
BM_Butterfly(benchmark::State &state)
{
    Rng rng(4);
    F u = F::fromU64(rng.next());
    F v = F::fromU64(rng.next());
    F w = F::rootOfUnity(10);
    for (auto _ : state) {
        F nu = u + v;
        F nv = (u - v) * w;
        u = nu;
        v = nv;
        benchmark::DoNotOptimize(u);
        benchmark::DoNotOptimize(v);
    }
}

BENCHMARK(BM_FieldMul<Goldilocks>);
BENCHMARK(BM_FieldMul<BabyBear>);
BENCHMARK(BM_FieldMul<Bn254Fr>);
BENCHMARK(BM_FieldAdd<Goldilocks>);
BENCHMARK(BM_FieldAdd<BabyBear>);
BENCHMARK(BM_FieldAdd<Bn254Fr>);
BENCHMARK(BM_FieldInverse<Goldilocks>);
BENCHMARK(BM_FieldInverse<Bn254Fr>);
BENCHMARK(BM_Butterfly<Goldilocks>);
BENCHMARK(BM_Butterfly<BabyBear>);
BENCHMARK(BM_Butterfly<Bn254Fr>);

} // namespace
} // namespace unintt

BENCHMARK_MAIN();
