/**
 * @file
 * Table 3: per-GPU device-memory footprint. UniNTT keeps the data
 * chunk plus one exchange buffer (twiddles generated on the fly); the
 * four-step baseline additionally holds all-to-all staging buffers and
 * a twiddle table. The footprint bounds the largest transform a
 * machine supports — reported in the last column.
 */

#include <cstdio>

#include "baselines/fourstep_multigpu.hh"
#include "bench/bench_util.hh"
#include "field/bn254.hh"
#include "field/goldilocks.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace unintt {
namespace {

template <NttField F>
void
sweep(const char *field_name)
{
    Table t({"field", "GPUs", "log2(N)", "UniNTT peak/GPU",
             "four-step peak/GPU", "ratio"});
    for (unsigned gpus : {1u, 4u, 8u}) {
        auto sys = makeDgxA100(gpus);
        UniNttEngine<F> uni(sys);
        FourStepMultiGpuNtt<F> four(sys);
        for (unsigned logN : {24u, 28u}) {
            auto a = uni.analyticRun(logN, NttDirection::Forward)
                         .peakDeviceBytes();
            auto b = four.analyticRun(logN, NttDirection::Forward)
                         .peakDeviceBytes();
            t.addRow({field_name, std::to_string(gpus),
                      std::to_string(logN),
                      formatBytes(static_cast<double>(a)),
                      formatBytes(static_cast<double>(b)),
                      fmtX(static_cast<double>(b) /
                           static_cast<double>(a))});
        }
    }
    t.print();

    // Largest supported transform on one DGX node.
    auto sys = makeDgxA100(8);
    unsigned max_log = 0;
    for (unsigned logN = 20; logN < 40; ++logN) {
        uint64_t need =
            ((1ULL << logN) / sys.numGpus) * sizeof(F) * 2;
        if (need > sys.gpu.dramCapacityBytes)
            break;
        if (logN > F::kTwoAdicity)
            break; // the field's two-adic domain is the other bound
        max_log = logN;
    }
    std::printf("largest supported transform for %s on %s: 2^%u\n\n",
                field_name, sys.description().c_str(), max_log);
}

} // namespace
} // namespace unintt

int
main()
{
    using namespace unintt;
    benchHeader("Table 3", "per-GPU device-memory footprint");
    sweep<Goldilocks>("Goldilocks");
    sweep<Bn254Fr>("BN254-Fr");
    return 0;
}
