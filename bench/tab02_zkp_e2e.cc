/**
 * @file
 * Table 2: end-to-end proof generation with multi-GPU MSM and each NTT
 * backend. For Groth16- and PLONK-style provers at 2^22 constraints,
 * prints total prover time and the speedup UniNTT delivers over the
 * conventional backends at each GPU count.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "zkp/prover.hh"

namespace unintt {
namespace {

void
sweep(const char *proto, const std::vector<ProverStage> &stages)
{
    Table t({"prover", "GPUs", "single-gpu NTT", "four-step NTT",
             "UniNTT", "vs single-gpu", "vs four-step"});
    for (unsigned gpus : {2u, 4u, 8u}) {
        auto total = [&](NttBackend b) {
            ZkpPipeline pipe(makeDgxA100(gpus), b);
            return pipe.estimate(stages).total();
        };
        double solo = total(NttBackend::SingleGpu);
        double four = total(NttBackend::FourStep);
        double uni = total(NttBackend::UniNtt);
        t.addRow({proto, std::to_string(gpus), formatSeconds(solo),
                  formatSeconds(four), formatSeconds(uni),
                  fmtX(solo / uni), fmtX(four / uni)});
    }
    t.print();
    std::printf("\n");
}

} // namespace
} // namespace unintt

int
main()
{
    using namespace unintt;
    benchHeader("Table 2",
                "end-to-end proof generation, 2^22 constraints, BN254");
    sweep("groth16", ZkpPipeline::groth16Stages(22));
    sweep("plonk", ZkpPipeline::plonkStages(22));
    return 0;
}
