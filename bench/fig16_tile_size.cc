/**
 * @file
 * Figure 16 (extension): block-tile-size sensitivity. The planner
 * derives the shared-memory tile from the abstract hardware model
 * (threads-per-block and smem capacity); this bench pins the tile to
 * every power of two from 2^6 to 2^11 and shows the derived choice
 * sits at (or next to) the minimum — fewer bits per pass means more
 * full-array memory round trips, larger tiles stop fitting.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace unintt;
    using F = Goldilocks;
    benchHeader("Figure 16",
                "block-tile-size sensitivity (2^26, 4 GPUs, A100)");
    verifyOrDie<F>(makeDgxA100(4));

    auto sys = makeDgxA100(4);
    unsigned auto_tile = planNtt(26, sys, sizeof(F)).logBlockTile;

    Table t({"log2(tile)", "grid passes", "time", "vs auto"});
    double auto_time = 0;
    {
        UniNttEngine<F> engine(sys);
        auto_time = engine.analyticRun(26, NttDirection::Forward)
                        .totalSeconds();
    }
    for (unsigned tile = 6; tile <= 11; ++tile) {
        UniNttConfig cfg;
        cfg.forceLogBlockTile = tile;
        UniNttEngine<F> engine(sys, cfg);
        auto pl = engine.plan(26);
        double s = engine.analyticRun(26, NttDirection::Forward)
                       .totalSeconds();
        std::string label = std::to_string(tile);
        if (tile == auto_tile)
            label += " (auto)";
        t.addRow({label, std::to_string(pl.passes.size()),
                  formatSeconds(s), fmtX(s / auto_time)});
    }
    t.print();
    std::printf("planner's automatic choice: 2^%u\n", auto_tile);

    // Host-tile sweep: the same sensitivity story one level up. The
    // fused local passes group stages into tiles sized by
    // UniNttConfig::hostTileLog2 (0 = derive from the 256 KiB host
    // cache model); smaller tiles mean more fused groups and more
    // DRAM round trips, fusion off degenerates to one pass per stage.
    std::printf("\nhost-tile fusion sweep (2^26, 4 GPUs):\n");
    unsigned resolved = UniNttConfig{}.resolvedHostTileLog2(sizeof(F));
    Table th({"host tile", "fused groups", "DRAM bytes",
              "kernel launches", "time", "vs auto"});
    double fused_auto_time = 0;
    auto sweepRow = [&](const char *label, UniNttConfig cfg) {
        UniNttEngine<F> engine(sys, cfg);
        auto r = engine.analyticRun(26, NttDirection::Forward);
        auto k = r.totalKernelStats();
        double s = r.totalSeconds();
        if (fused_auto_time == 0)
            fused_auto_time = s;
        th.addRow({label,
                   std::to_string(r.hostExecStats().fusedGroups),
                   formatBytes(static_cast<double>(k.globalBytes())),
                   std::to_string(k.kernelLaunches), formatSeconds(s),
                   fmtX(s / fused_auto_time)});
    };
    {
        UniNttConfig cfg;
        sweepRow(("auto (2^" + std::to_string(resolved) + ")").c_str(),
                 cfg);
    }
    for (unsigned tile : {8u, 11u, 14u, 18u}) {
        UniNttConfig cfg;
        cfg.hostTileLog2 = tile;
        sweepRow(("2^" + std::to_string(tile)).c_str(), cfg);
    }
    {
        UniNttConfig cfg;
        cfg.fuseLocalPasses = false;
        sweepRow("off (per-stage)", cfg);
    }
    th.print();

    // Overlap column: the same tile sweep with the wave dispatch on
    // vs off. Tiling changes only the local passes, so the hidden
    // (overlapped) comm is tile-invariant while the linear dispatch
    // pays the full sum at every tile size.
    std::printf("\nDAG overlap across host tiles (2^26, 4 GPUs):\n");
    Table tov({"host tile", "overlap", "waves", "total",
               "visible comm", "hidden"});
    for (unsigned tile : {8u, 14u, 18u}) {
        for (bool overlap : {true, false}) {
            UniNttConfig cfg;
            cfg.hostTileLog2 = tile;
            cfg.overlapComm = overlap;
            UniNttEngine<F> engine(sys, cfg);
            auto r = engine.analyticRun(26, NttDirection::Forward);
            double hidden = 0;
            for (const auto &p : r.phases())
                hidden += p.hiddenSeconds;
            tov.addRow({"2^" + std::to_string(tile),
                        overlap ? "on" : "off",
                        std::to_string(r.hostExecStats().overlapWaves),
                        formatSeconds(r.totalSeconds()),
                        formatSeconds(r.commSeconds()),
                        formatSeconds(hidden)});
        }
        tov.addSeparator();
    }
    tov.print();
    return 0;
}
