/**
 * @file
 * Figure 23 (new experiment): autotuned vs heuristic schedules.
 *
 * For every (field, logN) cell the bench runs the schedule autotuner
 * (unintt/tuner.hh) against the functional executor on a 4-GPU
 * machine, persists the winner into a scratch tuning DB, and then
 * re-times two fresh engines on the same seeded input: one consulting
 * that DB (provenance-checked: the engine must actually report a DB
 * hit) and one pinned to the heuristic. The tuned output is first
 * checked bit-identical against the heuristic output — the tuner may
 * only move knobs that cannot change bytes.
 *
 * Hard gates (exit non-zero):
 *   - every tuned point must be at least as fast as its heuristic
 *     baseline (within a small noise tolerance), because a DB whose
 *     entries lose to the fallback is worse than no DB;
 *   - at least one swept point must improve by >= 5%, because an
 *     autotuner that never finds anything is dead weight.
 *
 * Flags:
 *   --smoke   tiny sizes for CI (keeps both gates armed).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "field/babybear.hh"
#include "field/dispatch.hh"
#include "field/goldilocks.hh"
#include "unintt/engine.hh"
#include "unintt/tunedb.hh"
#include "unintt/tuner.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace unintt;

namespace {

constexpr unsigned kGpus = 4;
constexpr double kNoiseTolerance = 1.03;
const char *const kScratchDb = "fig23_tunedb.json";

double
nsPerButterfly(double seconds, unsigned logN)
{
    const double butterflies =
        static_cast<double>(logN) *
        static_cast<double>(1ULL << logN) / 2.0;
    return seconds * 1e9 / butterflies;
}

/**
 * Tune then re-time one field. Appends per-point rows; returns the
 * per-point tuned/heuristic second pairs for the gates.
 */
template <NttField F>
void
sweepField(const MultiGpuSystem &sys, TuningDb &db, Table &t,
           const std::vector<unsigned> &log_ns, int reps,
           std::vector<std::pair<double, double>> &points)
{
    UniNttConfig base;
    base.hostThreads = 1;
    base.useTuneDb = false;

    for (unsigned logN : log_ns) {
        // 1. Tune this key into the scratch DB.
        TuneRequest req;
        req.logN = logN;
        req.sys = sys;
        req.reps = static_cast<unsigned>(reps);
        req.base = base;
        TuneOutcome o = tuneOne<F>(req, TuneSpace::defaults());
        db.put(o.entry);
        if (!db.saveFile(kScratchDb))
            fatal("cannot write %s", kScratchDb);
        invalidateTuneDbCache();

        // 2. Fresh engines: DB-consulting vs pinned-heuristic.
        UniNttConfig tuned_cfg = base;
        tuned_cfg.useTuneDb = true;
        tuned_cfg.tuneDbPath = kScratchDb;
        UniNttEngine<F> tuned(sys, tuned_cfg);
        UniNttEngine<F> heur(sys, base);

        bool db_hit = false;
        (void)tuned.schedule(logN, NttDirection::Forward, 1, nullptr,
                             nullptr, &db_hit);
        if (!db_hit)
            fatal("%s 2^%u: engine missed the DB entry the tuner "
                  "just wrote", F::kName, logN);

        Rng rng(2323 + logN);
        std::vector<F> input(1ULL << logN);
        for (auto &v : input)
            v = F::fromU64(rng.next());

        // Byte-identity: tuning must never change the transform.
        auto dh = DistributedVector<F>::fromGlobal(input, kGpus);
        auto dt = DistributedVector<F>::fromGlobal(input, kGpus);
        heur.forward(dh);
        tuned.forward(dt);
        if (dh.toGlobal() != dt.toGlobal())
            fatal("%s 2^%u: tuned output differs from heuristic",
                  F::kName, logN);

        auto run = DistributedVector<F>::fromGlobal(input, kGpus);
        const double hsec =
            bestWallSeconds(reps, [&] { heur.forward(run); });
        const double tsec =
            bestWallSeconds(reps, [&] { tuned.forward(run); });
        points.emplace_back(tsec, hsec);

        const double gain = (hsec - tsec) / hsec * 100.0;
        t.addRow({F::kName, std::to_string(logN),
                  o.entry.params.toString(),
                  fmtF(nsPerButterfly(hsec, logN), 3),
                  fmtF(nsPerButterfly(tsec, logN), 3),
                  fmtF(gain, 1) + "%",
                  tsec <= hsec * kNoiseTolerance ? "ok" : "FAIL"});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            fatal("unknown flag '%s' (--smoke)", argv[i]);
    }

    benchHeader("Figure 23",
                "schedule autotuner: tuned vs heuristic wall time per "
                "(field, logN)");
    auto sys = makeDgxA100(kGpus);
    verifyOrDie<Goldilocks>(sys);
    std::printf("%s\n", routerDescription().c_str());

    const std::vector<unsigned> log_ns =
        smoke ? std::vector<unsigned>{12, 14}
              : std::vector<unsigned>{14, 16, 18};
    const int reps = smoke ? 2 : 5;
    std::printf("%u GPUs, 1 host thread, best of %d reps; gates: no "
                "tuned point loses (>%.0f%% noise), >=1 point gains "
                ">=5%%\n\n",
                kGpus, reps, (kNoiseTolerance - 1.0) * 100.0);

    TuningDb db;
    Table t({"field", "logN", "winner", "heuristic ns/bfly",
             "tuned ns/bfly", "gain", "gate"});
    std::vector<std::pair<double, double>> points;
    sweepField<Goldilocks>(sys, db, t, log_ns, reps, points);
    sweepField<BabyBear>(sys, db, t, log_ns, reps, points);
    t.print();

    bool none_lose = true;
    double best_gain = 0;
    for (const auto &[tsec, hsec] : points) {
        if (tsec > hsec * kNoiseTolerance)
            none_lose = false;
        best_gain = std::max(best_gain, (hsec - tsec) / hsec * 100.0);
    }
    std::printf("\nbest tuned gain: %.1f%% over %zu points\n",
                best_gain, points.size());

    if (!none_lose) {
        std::fprintf(stderr,
                     "\nFAIL: a tuned schedule lost to the heuristic "
                     "beyond the %.0f%% noise tolerance\n",
                     (kNoiseTolerance - 1.0) * 100.0);
        return 1;
    }
    if (best_gain < 5.0) {
        std::fprintf(stderr,
                     "\nFAIL: no swept point improved by >= 5%% — the "
                     "tuner found nothing\n");
        return 1;
    }
    std::printf("OK: tuned >= heuristic everywhere, best gain "
                "%.1f%%\n", best_gain);
    return 0;
}
