/**
 * @file
 * Figure 1 (motivation): end-to-end proof-generation breakdown as the
 * GPU count grows. With MSM distributed across GPUs but NTT confined
 * to one device (the pre-UniNTT state of practice), the NTT share of
 * prover time keeps growing — the observation that motivates multi-GPU
 * NTT support. The second table shows the same prover with UniNTT.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "zkp/prover.hh"

namespace unintt {
namespace {

void
sweep(const char *proto,
      const std::vector<ProverStage> &stages, NttBackend backend)
{
    Table t({"prover", "backend", "GPUs", "NTT", "MSM", "other", "total",
             "NTT share"});
    for (unsigned gpus : {1u, 2u, 4u, 8u}) {
        ZkpPipeline pipe(makeDgxA100(gpus), backend);
        auto bd = pipe.estimate(stages);
        t.addRow({proto, toString(backend), std::to_string(gpus),
                  formatSeconds(bd.nttSeconds),
                  formatSeconds(bd.msmSeconds),
                  formatSeconds(bd.otherSeconds),
                  formatSeconds(bd.total()),
                  fmtF(bd.nttShare() * 100, 1) + "%"});
    }
    t.print();
    std::printf("\n");
}

} // namespace
} // namespace unintt

int
main()
{
    using namespace unintt;
    benchHeader("Figure 1",
                "proof-generation breakdown vs GPU count (motivation)");

    std::printf("Groth16-style prover, 2^22 constraints, BN254:\n");
    auto groth16 = ZkpPipeline::groth16Stages(22);
    sweep("groth16", groth16, NttBackend::SingleGpu);
    sweep("groth16", groth16, NttBackend::UniNtt);

    std::printf("PLONK-style prover, 2^22 gates, BN254:\n");
    auto plonk = ZkpPipeline::plonkStages(22);
    sweep("plonk", plonk, NttBackend::SingleGpu);
    sweep("plonk", plonk, NttBackend::UniNtt);

    std::printf("Reading: with the single-GPU NTT backend the NTT share "
                "grows with the GPU count\n(MSM scales, NTT does not); "
                "UniNTT restores a flat share and a lower total.\n");
    return 0;
}
