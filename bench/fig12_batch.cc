/**
 * @file
 * Figure 12: batched NTT throughput. ZKP provers transform many
 * polynomials of the same size; batching amortizes kernel launches and
 * exchange latencies. Prints aggregate throughput versus batch size
 * for UniNTT and the naive baseline (which launches per transform).
 */

#include <cstdio>

#include "baselines/naive_gpu.hh"
#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace unintt;
    using F = Goldilocks;
    benchHeader("Figure 12", "batched NTT throughput");
    verifyOrDie<F>(makeDgxA100(4));

    auto sys = makeDgxA100(4);
    UniNttEngine<F> unintt(sys);
    NaiveGpuNtt<F> naive(sys.gpu);

    Table t({"log2(N)", "batch", "UniNTT", "naive(1 GPU, per-transform)",
             "UniNTT advantage"});
    for (unsigned logN : {12u, 16u, 18u}) {
        for (size_t batch : {1u, 16u, 256u, 1024u}) {
            double elems = static_cast<double>(1ULL << logN) *
                           static_cast<double>(batch);
            double t_uni =
                unintt.analyticRun(logN, NttDirection::Forward, batch)
                    .totalSeconds();
            // The naive library runs transforms one after another.
            double t_naive =
                naive.analyticRun(logN, NttDirection::Forward, 1)
                    .totalSeconds() *
                static_cast<double>(batch);
            t.addRow({std::to_string(logN), std::to_string(batch),
                      formatRate(elems / t_uni),
                      formatRate(elems / t_naive),
                      fmtX(t_naive / t_uni)});
        }
        t.addSeparator();
    }
    t.print();
    return 0;
}
