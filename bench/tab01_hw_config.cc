/**
 * @file
 * Table 1: hardware configurations and the derived abstract hardware
 * model. Prints the concrete GPU presets, the fabrics, and the
 * four-level abstract hierarchy (fanout / local capacity / exchange
 * bandwidth and latency) the planner reasons about.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/multi_gpu.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace unintt;
    benchHeader("Table 1", "hardware configurations and abstract model");

    {
        Table t({"GPU", "SMs", "clock", "DRAM bw", "DRAM cap",
                 "smem/block", "launch"});
        for (const auto &m : {makeA100(), makeH100(), makeRtx4090()}) {
            t.addRow({m.name, std::to_string(m.numSms),
                      fmtF(m.clockHz / 1e9, 2) + " GHz",
                      formatBytes(m.dramBandwidth) + "/s",
                      formatBytes(static_cast<double>(m.dramCapacityBytes)),
                      formatBytes(static_cast<double>(m.smemBytesPerBlock)),
                      formatSeconds(m.kernelLaunchLatency)});
        }
        t.print();
    }

    std::printf("\n");
    {
        Table t({"fabric", "p2p bandwidth", "latency", "all-to-all eff"});
        for (const auto &f : {makeNvSwitchFabric(), makeRingFabric(),
                              makePcieFabric()}) {
            t.addRow({toString(f.kind),
                      formatBytes(f.linkBandwidth) + "/s",
                      formatSeconds(f.linkLatency),
                      fmtF(f.allToAllEfficiency, 2)});
        }
        t.print();
    }

    std::printf("\nAbstract hardware model (8x A100 / nvswitch, "
                "8-byte elements):\n");
    {
        auto sys = makeDgxA100(8);
        Table t({"level", "fanout", "local capacity (elems)",
                 "exchange bw", "exchange latency"});
        for (const auto &lvl : sys.abstractLevels(8)) {
            t.addRow({lvl.name, std::to_string(lvl.fanout),
                      fmtI(lvl.localCapacityElems),
                      formatBytes(lvl.exchangeBandwidth) + "/s",
                      formatSeconds(lvl.exchangeLatency)});
        }
        t.print();
    }

    std::printf("\nDecomposition plans (Goldilocks):\n");
    {
        Table t({"system", "log2(N)", "plan"});
        for (unsigned gpus : {1u, 4u, 8u}) {
            auto sys = makeDgxA100(gpus);
            for (unsigned logN : {20u, 24u, 28u}) {
                t.addRow({sys.description(), std::to_string(logN),
                          planNtt(logN, sys, 8).toString()});
            }
        }
        t.print();
    }
    return 0;
}
