/**
 * @file
 * Figure 18: host-parallel functional execution.
 *
 * The functional (bit-exact) butterfly work of the simulator runs on
 * the shared host thread pool (util/thread_pool.hh); the simulated
 * timeline is computed on the calling thread either way. This bench
 * sweeps the host thread count on one logN = 20, 4-GPU Goldilocks
 * forward transform and prints the wall-clock speedup over serial
 * execution, verifying two invariants at every point:
 *
 *   1. the output is bit-identical to the serial run, and
 *   2. the simulated timeline (every phase, counter and second) is
 *      identical — parallelism changes who computes, never what.
 *
 * A second table shows the plan/twiddle cache effect: the same
 * transform with cold caches versus warm ones.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "unintt/cache.hh"
#include "unintt/engine.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace unintt;

namespace {

using F = Goldilocks;

constexpr unsigned kLogN = 20;
constexpr unsigned kGpus = 4;
constexpr int kReps = 3;

struct RunResult
{
    std::vector<F> output;
    SimReport report;
    double bestWallSeconds = 0;
};

/** The simulated content of two reports, element for element. */
bool
simIdentical(const SimReport &a, const SimReport &b)
{
    const auto &pa = a.phases();
    const auto &pb = b.phases();
    if (pa.size() != pb.size())
        return false;
    for (size_t i = 0; i < pa.size(); ++i) {
        const auto &x = pa[i];
        const auto &y = pb[i];
        if (x.name != y.name || x.kind != y.kind ||
            x.seconds != y.seconds || x.hiddenSeconds != y.hiddenSeconds)
            return false;
        if (x.kernel.fieldMuls != y.kernel.fieldMuls ||
            x.kernel.fieldAdds != y.kernel.fieldAdds ||
            x.kernel.butterflies != y.kernel.butterflies ||
            x.kernel.globalReadBytes != y.kernel.globalReadBytes ||
            x.kernel.globalWriteBytes != y.kernel.globalWriteBytes ||
            x.kernel.smemBytes != y.kernel.smemBytes ||
            x.kernel.smemBankConflicts != y.kernel.smemBankConflicts ||
            x.kernel.shuffles != y.kernel.shuffles ||
            x.kernel.syncs != y.kernel.syncs ||
            x.kernel.kernelLaunches != y.kernel.kernelLaunches)
            return false;
        if (x.comm.bytesPerGpu != y.comm.bytesPerGpu ||
            x.comm.messages != y.comm.messages ||
            x.comm.retries != y.comm.retries)
            return false;
    }
    return a.peakDeviceBytes() == b.peakDeviceBytes();
}

RunResult
runOnce(const MultiGpuSystem &sys, const std::vector<F> &input,
        unsigned host_threads, int reps = kReps)
{
    UniNttConfig cfg;
    cfg.hostThreads = host_threads;
    UniNttEngine<F> engine(sys, cfg);

    RunResult r;
    r.bestWallSeconds = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        auto dist = DistributedVector<F>::fromGlobal(input, sys.numGpus);
        auto t0 = std::chrono::steady_clock::now();
        SimReport rep_out = engine.forward(dist);
        auto t1 = std::chrono::steady_clock::now();
        double wall = std::chrono::duration<double>(t1 - t0).count();
        if (wall < r.bestWallSeconds) {
            r.bestWallSeconds = wall;
            r.report = rep_out;
        }
        if (rep == 0)
            r.output = dist.toGlobal();
    }
    return r;
}

} // namespace

int
main()
{
    benchHeader("Figure 18",
                "host-parallel functional execution, speedup vs threads");
    auto sys = makeDgxA100(kGpus);
    verifyOrDie<F>(sys);

    Rng rng(777);
    std::vector<F> input(1ULL << kLogN);
    for (auto &v : input)
        v = F::fromU64(rng.next());

    // Warm the plan/twiddle caches so the sweep times butterfly work,
    // not one-off root-of-unity generation.
    runOnce(sys, input, 1);

    std::printf("transform: 2^%u Goldilocks forward on %s\n",
                kLogN, sys.description().c_str());
    std::printf("host machine: %u hardware threads\n\n",
                ThreadPool::defaultLanes());

    RunResult serial = runOnce(sys, input, 1);

    Table t({"host threads", "wall clock", "speedup", "bits identical",
             "sim events identical"});
    double best_speedup = 0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        RunResult r = runOnce(sys, input, threads);
        bool bits_ok = r.output == serial.output;
        bool sim_ok = simIdentical(r.report, serial.report);
        if (!bits_ok)
            fatal("output at %u host threads differs from serial",
                  threads);
        if (!sim_ok)
            fatal("simulated events at %u host threads differ from "
                  "serial", threads);
        double speedup = serial.bestWallSeconds / r.bestWallSeconds;
        if (threads >= 4 && speedup > best_speedup)
            best_speedup = speedup;
        t.addRow({std::to_string(threads),
                  formatSeconds(r.bestWallSeconds),
                  fmtF(speedup, 2) + "x", bits_ok ? "yes" : "NO",
                  sim_ok ? "yes" : "NO"});
    }
    t.print();

    std::printf("\nbest speedup at >= 4 host threads: %.2fx "
                "(target >= 2x on a >= 4-core host)\n", best_speedup);
    if (ThreadPool::defaultLanes() < 4)
        std::printf("note: this host exposes only %u hardware threads; "
                    "the target applies to >= 4-core machines\n",
                    ThreadPool::defaultLanes());

    // Cache effect: identical transform, cold vs warm caches. The
    // slab cache fills from the twiddle-table cache, so a cold run
    // misses both; a warm run hits the slab and never consults the
    // table.
    PlanCache::global().clear();
    TwiddleCache<F>::global().clear();
    TwiddleSlabCache<F>::global().clear();
    RunResult cold = runOnce(sys, input, 0, 1);
    RunResult warm = runOnce(sys, input, 0, 1);
    if (cold.output != warm.output)
        fatal("cold-cache output differs from warm-cache output");

    const auto &cold_hx = cold.report.hostExecStats();
    const auto &warm_hx = warm.report.hostExecStats();
    std::printf("\ncache effect (single run each):\n");
    Table c({"caches", "plan", "twiddle", "twiddle slabs",
             "wall clock"});
    auto hitmiss = [](uint64_t h, uint64_t m) {
        return std::to_string(h) + " hit/" + std::to_string(m) + " miss";
    };
    c.addRow({"cold",
              hitmiss(cold_hx.planCacheHits, cold_hx.planCacheMisses),
              hitmiss(cold_hx.twiddleCacheHits,
                      cold_hx.twiddleCacheMisses),
              hitmiss(cold_hx.twiddleSlabHits,
                      cold_hx.twiddleSlabMisses),
              formatSeconds(cold.bestWallSeconds)});
    c.addRow({"warm",
              hitmiss(warm_hx.planCacheHits, warm_hx.planCacheMisses),
              hitmiss(warm_hx.twiddleCacheHits,
                      warm_hx.twiddleCacheMisses),
              hitmiss(warm_hx.twiddleSlabHits,
                      warm_hx.twiddleSlabMisses),
              formatSeconds(warm.bestWallSeconds)});
    c.print();
    return 0;
}
