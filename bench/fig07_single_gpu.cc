/**
 * @file
 * Figure 7: single-GPU NTT throughput versus transform size for the
 * naive stage-per-kernel baseline, the Icicle-class tiled baseline and
 * UniNTT's single-GPU configuration, on Goldilocks and BN254-Fr.
 * Throughput is elements per second of simulated time.
 */

#include <cstdio>

#include "baselines/icicle_like.hh"
#include "bench/bench_util.hh"
#include "field/bn254.hh"
#include "field/goldilocks.hh"
#include "unintt/backend.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace unintt {
namespace {

template <NttField F>
void
sweepField(const char *field_name)
{
    auto sys = makeDgxA100(1);
    // UniNTT and the naive baseline come from the backend registry;
    // the Icicle-class tile baseline has no multi-GPU form and stays a
    // concrete type.
    auto &reg = NttBackendRegistry<F>::global();
    auto unintt = reg.make("unintt", sys);
    auto naive = reg.make("naive", sys);
    IcicleLikeNtt<F> icicle(sys.gpu);

    Table t({"field", "log2(N)", "naive", "icicle-like", "UniNTT",
             "UniNTT vs naive", "UniNTT vs icicle"});
    for (unsigned logN = 12; logN <= 26; logN += 2) {
        double n = static_cast<double>(1ULL << logN);
        double t_naive =
            naive->analyticRun(logN, NttDirection::Forward)
                .totalSeconds();
        double t_icicle =
            icicle.analyticRun(logN, NttDirection::Forward).totalSeconds();
        double t_uni =
            unintt->analyticRun(logN, NttDirection::Forward)
                .totalSeconds();
        t.addRow({field_name, std::to_string(logN),
                  formatRate(n / t_naive), formatRate(n / t_icicle),
                  formatRate(n / t_uni), fmtX(t_naive / t_uni),
                  fmtX(t_icicle / t_uni)});
    }
    t.print();
    std::printf("\n");
}

} // namespace
} // namespace unintt

int
main()
{
    using namespace unintt;
    benchHeader("Figure 7", "single-GPU NTT throughput vs size");
    verifyOrDie<Goldilocks>(makeDgxA100(1));
    sweepField<Goldilocks>("Goldilocks");
    sweepField<Bn254Fr>("BN254-Fr");
    return 0;
}
