/**
 * @file
 * Figure 13: field generality. The same engine and decomposition run
 * over Goldilocks (64-bit), BabyBear (31-bit) and BN254-Fr (256-bit);
 * the table shows how the element width moves the transforms between
 * the bandwidth- and compute-bound regimes, and that the speedup over
 * the four-step baseline persists across fields.
 */

#include <cstdio>

#include "baselines/fourstep_multigpu.hh"
#include "bench/bench_util.hh"
#include "field/babybear.hh"
#include "field/bn254.hh"
#include "field/goldilocks.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace unintt {
namespace {

template <NttField F>
void
addRows(Table &t, const char *name, unsigned logN)
{
    auto sys = makeDgxA100(4);
    if (!verifyEngine<F>(sys, 10))
        fatal("verification failed for %s", name);
    UniNttEngine<F> uni(sys);
    FourStepMultiGpuNtt<F> four(sys);
    double n = static_cast<double>(1ULL << logN);
    double t_uni =
        uni.analyticRun(logN, NttDirection::Forward).totalSeconds();
    double t_four =
        four.analyticRun(logN, NttDirection::Forward).totalSeconds();
    t.addRow({name, std::to_string(sizeof(F) * 8) + "-bit",
              std::to_string(logN), formatSeconds(t_uni),
              formatRate(n / t_uni), fmtX(t_four / t_uni)});
}

} // namespace
} // namespace unintt

int
main()
{
    using namespace unintt;
    benchHeader("Figure 13", "field generality (4x A100 / nvswitch)");

    Table t({"field", "element", "log2(N)", "UniNTT time", "throughput",
             "speedup vs four-step"});
    for (unsigned logN : {20u, 24u}) {
        addRows<BabyBear>(t, "BabyBear", logN);
        addRows<Goldilocks>(t, "Goldilocks", logN);
        addRows<Bn254Fr>(t, "BN254-Fr", logN);
        t.addSeparator();
    }
    t.print();
    std::printf("functional verification at 2^10 ran for every field "
                "(fatal on mismatch).\n");
    return 0;
}
