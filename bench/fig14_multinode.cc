/**
 * @file
 * Figure 14 (extension): scaling UniNTT past one node. The recursive
 * decomposition adds a fifth hierarchy level — nodes over an
 * InfiniBand-class fabric — with no algorithmic change: the first
 * log2(#nodes) butterfly stages simply ride the slower fabric. Prints
 * time and efficiency from 8 to 64 GPUs and the share spent on the
 * inter-node stages.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace unintt;
    using F = Goldilocks;
    benchHeader("Figure 14",
                "multi-node scaling (extension; 8 GPUs per node)");
    verifyOrDie<F>(makeA100Cluster(2, 4), 12);

    Table t({"log2(N)", "nodes", "GPUs", "time", "speedup vs 1 node",
             "efficiency", "inter-node comm"});
    for (unsigned logN : {26u, 28u, 30u}) {
        double t1 = 0;
        for (unsigned nodes : {1u, 2u, 4u, 8u}) {
            auto sys = makeA100Cluster(nodes, 8);
            UniNttEngine<F> engine(sys);
            auto rep = engine.analyticRun(logN, NttDirection::Forward);
            double s = rep.totalSeconds();
            if (nodes == 1)
                t1 = s;

            double internode = 0;
            for (const auto &p : rep.phases())
                if (p.name.find("node-stage") != std::string::npos)
                    internode += p.seconds;

            double speedup = t1 / s;
            t.addRow({std::to_string(logN), std::to_string(nodes),
                      std::to_string(sys.numGpus), formatSeconds(s),
                      fmtX(speedup),
                      fmtF(speedup / nodes * 100, 1) + "%",
                      formatSeconds(internode)});
        }
        t.addSeparator();
    }
    t.print();
    std::printf(
        "Reading: the decomposition composes to a fifth level unchanged "
        "(only the\nexchange primitive differs), and the experiment "
        "quantifies the paper's\nanticipated limit: at HDR-InfiniBand "
        "bandwidth the inter-node stages dominate,\nso scaling a single "
        "latency-bound transform past one NVSwitch node does not\npay "
        "off until the per-node fabric gap closes — multi-node remains "
        "the regime\nof batch throughput and larger-than-node working "
        "sets.\n");
    return 0;
}
