/**
 * @file
 * Figure 11: ablation of the uniform optimizations. Starting from the
 * full configuration, each optimization is disabled in isolation (and
 * all together) at a fixed size, showing its contribution at the level
 * it targets — and that the same optimization matters at more than one
 * level, the paper's generalization claim.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace unintt {
namespace {

struct Variant
{
    const char *name;
    const char *level;
    UniNttConfig cfg;
};

} // namespace
} // namespace unintt

int
main()
{
    using namespace unintt;
    using F = Goldilocks;
    benchHeader("Figure 11", "optimization ablation (2^26, 4 GPUs)");
    verifyOrDie<F>(makeDgxA100(4));

    const unsigned logN = 26;

    auto cfg_without = [](void (*off)(UniNttConfig &)) {
        UniNttConfig c = UniNttConfig::allOn();
        off(c);
        return c;
    };

    const Variant variants[] = {
        {"full UniNTT", "-", UniNttConfig::allOn()},
        {"- twiddle fusion", "all levels",
         cfg_without([](UniNttConfig &c) { c.fuseTwiddles = false; })},
        {"- on-the-fly twiddles", "warp/block",
         cfg_without([](UniNttConfig &c) {
             c.onTheFlyTwiddles = false;
             c.autoTuneTwiddles = false;
         })},
        {"- padded smem", "block",
         cfg_without([](UniNttConfig &c) {
             c.paddedSmem = false;
             c.warpShuffle = false; // padding matters on the smem path
         })},
        {"- warp shuffle", "warp",
         cfg_without([](UniNttConfig &c) { c.warpShuffle = false; })},
        {"- comm overlap", "multi-GPU",
         cfg_without([](UniNttConfig &c) { c.overlapComm = false; })},
        {"all optimizations off", "-", UniNttConfig::allOff()},
    };

    for (auto fabric : {makeNvSwitchFabric(), makePcieFabric()}) {
        MultiGpuSystem sys{makeA100(), fabric, 4};
        UniNttEngine<F> full(sys);
        double base =
            full.analyticRun(logN, NttDirection::Forward).totalSeconds();

        Table t({"configuration", "level targeted", "time", "slowdown"});
        std::printf("fabric: %s\n", toString(fabric.kind));
        for (const auto &v : variants) {
            UniNttEngine<F> engine(sys, v.cfg);
            double s = engine.analyticRun(logN, NttDirection::Forward)
                           .totalSeconds();
            t.addRow({v.name, v.level, formatSeconds(s),
                      fmtX(s / base)});
        }
        t.print();
        std::printf("\n");
    }
    return 0;
}
