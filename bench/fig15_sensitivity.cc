/**
 * @file
 * Figure 15 (sensitivity): how the UniNTT-vs-four-step verdict moves
 * with the machine parameters the model depends on. Sweeps (a) the
 * inter-GPU link bandwidth from PCIe-class to beyond-NVLink-class and
 * (b) the all-to-all efficiency of the fabric, at fixed N and GPU
 * count. Robustness of the headline to the cost-model constants is
 * exactly what a simulation-based reproduction owes the reader.
 */

#include <cstdio>

#include "baselines/fourstep_multigpu.hh"
#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace unintt;
    using F = Goldilocks;
    benchHeader("Figure 15",
                "speedup sensitivity to fabric parameters (2^26, 8 GPUs)");
    verifyOrDie<F>(makeDgxA100(8));

    const unsigned logN = 26;

    std::printf("(a) link bandwidth sweep (all-to-all efficiency fixed "
                "at 0.6):\n");
    {
        Table t({"link bw", "four-step", "UniNTT", "speedup"});
        for (double bw : {12.5e9, 25e9, 50e9, 100e9, 250e9, 450e9,
                          900e9}) {
            Interconnect fabric = makeNvSwitchFabric();
            fabric.linkBandwidth = bw;
            MultiGpuSystem sys{makeA100(), fabric, 8};
            UniNttEngine<F> uni(sys);
            FourStepMultiGpuNtt<F> four(sys);
            double a = four.analyticRun(logN, NttDirection::Forward)
                           .totalSeconds();
            double b = uni.analyticRun(logN, NttDirection::Forward)
                           .totalSeconds();
            t.addRow({formatBytes(bw) + "/s", formatSeconds(a),
                      formatSeconds(b), fmtX(a / b)});
        }
        t.print();
    }

    std::printf("\n(b) all-to-all efficiency sweep (NVLink-class "
                "links):\n");
    {
        Table t({"all-to-all efficiency", "four-step", "UniNTT",
                 "speedup"});
        for (double eff : {0.2, 0.4, 0.6, 0.8, 1.0}) {
            Interconnect fabric = makeNvSwitchFabric();
            fabric.allToAllEfficiency = eff;
            MultiGpuSystem sys{makeA100(), fabric, 8};
            UniNttEngine<F> uni(sys);
            FourStepMultiGpuNtt<F> four(sys);
            double a = four.analyticRun(logN, NttDirection::Forward)
                           .totalSeconds();
            double b = uni.analyticRun(logN, NttDirection::Forward)
                           .totalSeconds();
            t.addRow({fmtF(eff, 1), formatSeconds(a), formatSeconds(b),
                      fmtX(a / b)});
        }
        t.print();
    }

    std::printf("\nReading: UniNTT's advantage grows as links get "
                "slower (communication\nmatters more) and persists even "
                "granting the baseline a perfect all-to-all,\nbecause "
                "the remaining gap comes from overlap and the removed "
                "twiddle passes.\n");
    return 0;
}
