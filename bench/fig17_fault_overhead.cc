/**
 * @file
 * Figure 17 (reconstructed): cost of resilience. For each transform
 * size, compares the plain engine against the resilient path under a
 * range of seeded fault campaigns — clean fabric, transient link
 * faults, payload bit-flips, stragglers, and a permanent device loss
 * with degraded-mode re-planning — and prints the priced overhead and
 * the fault counters. Every functional run is verified bit-exact
 * against the host reference, faults and all.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "field/goldilocks.hh"
#include "sim/fault.hh"
#include "util/stats.hh"
#include "util/table.hh"

int
main()
{
    using namespace unintt;
    using F = Goldilocks;
    benchHeader("Figure 17",
                "resilient execution overhead under fault campaigns");
    auto sys = makeDgxA100(8);
    verifyOrDie<F>(sys);

    struct Scenario
    {
        const char *name;
        bool resilient;
        FaultModel model;
    };
    FaultModel clean;
    FaultModel transient;
    transient.transientExchangeRate = 0.2;
    FaultModel bitflip;
    bitflip.bitFlipRate = 0.5;
    FaultModel straggler;
    straggler.stragglerRate = 0.3;
    FaultModel dropout;
    dropout.dropouts.push_back({5, 1});
    const Scenario scenarios[] = {
        {"plain engine", false, clean},
        {"resilient, clean fabric", true, clean},
        {"transient faults (p=0.2)", true, transient},
        {"bit-flips (p=0.5)", true, bitflip},
        {"stragglers (p=0.3)", true, straggler},
        {"device loss at stage 1", true, dropout},
    };

    UniNttEngine<F> engine(sys);
    Rng rng(2024);
    Table t({"log2(N)", "scenario", "time", "overhead", "retries",
             "corruptions", "lost", "GPUs left"});
    for (unsigned logN : {16u, 18u, 20u}) {
        std::vector<F> x(1ULL << logN);
        for (auto &v : x)
            v = F::fromU64(rng.next());
        std::vector<F> expect = x;
        nttNoPermute(expect, NttDirection::Forward);

        double baseline = 0;
        for (const auto &sc : scenarios) {
            auto dist =
                DistributedVector<F>::fromGlobal(x, sys.numGpus);
            double seconds = 0;
            FaultStats fs;
            if (!sc.resilient) {
                seconds = engine.forward(dist).totalSeconds();
                baseline = seconds;
            } else {
                FaultInjector inj(sc.model);
                Result<SimReport> r =
                    engine.forwardResilient(dist, inj);
                if (!r.ok())
                    fatal("scenario '%s' failed: %s", sc.name,
                          r.status().toString().c_str());
                seconds = r.value().totalSeconds();
                fs = r.value().faultStats();
            }
            if (dist.toGlobal() != expect)
                fatal("scenario '%s' produced a wrong transform",
                      sc.name);
            double overhead = (seconds / baseline - 1.0) * 100.0;
            t.addRow({std::to_string(logN), sc.name,
                      formatSeconds(seconds), fmtF(overhead, 1) + "%",
                      std::to_string(fs.transientRetries +
                                     fs.corruptionsDetected),
                      std::to_string(fs.corruptionsDetected),
                      std::to_string(fs.devicesLost),
                      std::to_string(dist.numGpus())});
        }
        t.addSeparator();
    }
    t.print();
    std::printf("\nAll scenarios verified bit-exact against the host "
                "reference transform.\n");
    return 0;
}
