/**
 * @file
 * A vector of field elements distributed across the simulated GPUs in
 * contiguous chunks: GPU g owns global positions
 * [g*n/G, (g+1)*n/G). This is the layout the UniNTT engine computes in;
 * helpers convert to and from a single host-side vector for tests and
 * examples.
 */

#ifndef UNINTT_UNINTT_DISTRIBUTED_HH
#define UNINTT_UNINTT_DISTRIBUTED_HH

#include <algorithm>
#include <vector>

#include "field/field_traits.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

namespace unintt {

/** Field elements sharded in contiguous chunks across GPUs. */
template <NttField F>
class DistributedVector
{
  public:
    /** Empty vector over @p num_gpus devices. */
    explicit DistributedVector(unsigned num_gpus)
        : chunks_(num_gpus)
    {
        UNINTT_ASSERT(num_gpus > 0, "need at least one GPU");
    }

    /**
     * Shard a host vector, validating the collective shape instead of
     * asserting: a size that does not divide evenly over the devices
     * is a recoverable InvalidArgument, not a process exit, so the
     * resilient paths can surface it as a clean failure.
     */
    static Result<DistributedVector>
    fromGlobalChecked(const std::vector<F> &global, unsigned num_gpus)
    {
        if (num_gpus == 0)
            return Status::error(StatusCode::InvalidArgument,
                                 "cannot shard over zero GPUs");
        if (global.size() % num_gpus != 0)
            return Status::error(
                StatusCode::InvalidArgument,
                "incomplete collective shape: " +
                    std::to_string(global.size()) +
                    " elements do not divide over " +
                    std::to_string(num_gpus) + " GPUs");
        return fromGlobal(global, num_gpus);
    }

    /** Shard a host vector; size must be divisible by the GPU count. */
    static DistributedVector
    fromGlobal(const std::vector<F> &global, unsigned num_gpus)
    {
        UNINTT_ASSERT(global.size() % num_gpus == 0,
                      "size must divide evenly across GPUs");
        DistributedVector out(num_gpus);
        size_t chunk = global.size() / num_gpus;
        // Chunks are disjoint, so sharding copies concurrently.
        hostParallelFor(num_gpus, chunk, 0, [&](size_t g) {
            out.chunks_[g].assign(global.begin() + g * chunk,
                                  global.begin() + (g + 1) * chunk);
        });
        return out;
    }

    /** Gather all chunks back into one host vector. */
    std::vector<F>
    toGlobal() const
    {
        std::vector<size_t> offsets(chunks_.size() + 1, 0);
        for (size_t g = 0; g < chunks_.size(); ++g)
            offsets[g + 1] = offsets[g] + chunks_[g].size();
        std::vector<F> out(offsets.back());
        const size_t avg =
            chunks_.empty() ? 0 : offsets.back() / chunks_.size();
        hostParallelFor(chunks_.size(), avg, 0, [&](size_t g) {
            std::copy(chunks_[g].begin(), chunks_[g].end(),
                      out.begin() + offsets[g]);
        });
        return out;
    }

    /** Number of devices. */
    unsigned
    numGpus() const
    {
        return static_cast<unsigned>(chunks_.size());
    }

    /** Total element count. */
    size_t
    size() const
    {
        size_t n = 0;
        for (const auto &c : chunks_)
            n += c.size();
        return n;
    }

    /** Elements per device (uniform). */
    size_t chunkSize() const { return chunks_.empty() ? 0 : chunks_[0].size(); }

    /** Mutable chunk of GPU @p g. */
    std::vector<F> &
    chunk(unsigned g)
    {
        UNINTT_ASSERT(g < chunks_.size(), "GPU index out of range");
        return chunks_[g];
    }

    /** Read-only chunk of GPU @p g. */
    const std::vector<F> &
    chunk(unsigned g) const
    {
        UNINTT_ASSERT(g < chunks_.size(), "GPU index out of range");
        return chunks_[g];
    }

    /**
     * Redistribute the elements over @p new_num_gpus devices, keeping
     * the global order (degraded-mode re-planning after device loss).
     */
    void
    reshard(unsigned new_num_gpus)
    {
        UNINTT_ASSERT(new_num_gpus > 0, "need at least one GPU");
        UNINTT_ASSERT(size() % new_num_gpus == 0,
                      "size must divide evenly across GPUs");
        *this = fromGlobal(toGlobal(), new_num_gpus);
    }

    /**
     * reshard() with the shape validated rather than asserted — the
     * degraded-mode and health-exclusion paths run mid-recovery, where
     * an impossible target shape must come back as a Status the run
     * can report, never as an exit.
     */
    Status
    reshardChecked(unsigned new_num_gpus)
    {
        if (new_num_gpus == 0)
            return Status::error(StatusCode::InvalidArgument,
                                 "cannot reshard onto zero GPUs");
        if (size() % new_num_gpus != 0)
            return Status::error(
                StatusCode::InvalidArgument,
                "incomplete collective shape: " +
                    std::to_string(size()) +
                    " elements do not reshard onto " +
                    std::to_string(new_num_gpus) + " GPUs");
        *this = fromGlobal(toGlobal(), new_num_gpus);
        return Status();
    }

  private:
    std::vector<std::vector<F>> chunks_;
};

} // namespace unintt

#endif // UNINTT_UNINTT_DISTRIBUTED_HH
