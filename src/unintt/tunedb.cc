#include "unintt/tunedb.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>

#include "field/dispatch.hh"
#include "util/bitops.hh"

namespace unintt {

const char *const kDefaultTuneDbPath = "tuning/tunedb.json";

namespace {

// -------------------------------------------------------------------
// Minimal tolerant JSON reader. The repo only had a writer
// (bench/bench_util.hh); the DB needs the other direction. Recursive
// descent over the value grammar, no exceptions: any malformed input
// returns false and the caller treats the file as corrupt. Unknown
// object keys are parsed and ignored, which is the forward-compat
// passthrough the DB format relies on.
// -------------------------------------------------------------------

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    const JsonValue *
    get(const char *key) const
    {
        for (const auto &kv : obj)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }
};

class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : s_(text) {}

    bool
    parse(JsonValue &out)
    {
        if (!value(out))
            return false;
        skipWs();
        return pos_ == s_.size(); // trailing garbage = corrupt
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            pos_++;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::strlen(word);
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
        case '{':
            return object(out);
        case '[':
            return array(out);
        case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.str);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.b = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.b = false;
            return literal("false");
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
        default:
            return number(out);
        }
    }

    bool
    string(std::string &out)
    {
        if (s_[pos_] != '"')
            return false;
        pos_++;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'r': out += '\r'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'u':
                    // The DB writes ASCII only; skip the four hex
                    // digits and substitute '?' for anything exotic.
                    if (pos_ + 4 > s_.size())
                        return false;
                    pos_ += 4;
                    out += '?';
                    break;
                default:
                    return false;
                }
            } else {
                out += c;
            }
        }
        if (pos_ >= s_.size())
            return false; // unterminated = truncated file
        pos_++;           // closing quote
        return true;
    }

    bool
    number(JsonValue &out)
    {
        const char *begin = s_.c_str() + pos_;
        char *end = nullptr;
        out.num = std::strtod(begin, &end);
        if (end == begin)
            return false;
        out.kind = JsonValue::Kind::Number;
        pos_ += static_cast<size_t>(end - begin);
        return true;
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        pos_++; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            pos_++;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!value(v))
                return false;
            out.arr.push_back(std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (s_[pos_] == ']') {
                pos_++;
                return true;
            }
            return false;
        }
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        pos_++; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= s_.size() || s_[pos_] != '"' || !string(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            pos_++;
            JsonValue v;
            if (!value(v))
                return false;
            out.obj.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (s_[pos_] == '}') {
                pos_++;
                return true;
            }
            return false;
        }
    }

    const std::string &s_;
    size_t pos_ = 0;
};

/** Escape for the writer side (keys/values are ASCII in practice). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Fixed number formatting so repeated saves are byte-identical. */
std::string
fmtSeconds(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

unsigned
asUnsigned(const JsonValue *v, unsigned def)
{
    if (v == nullptr || v->kind != JsonValue::Kind::Number)
        return def;
    return v->num < 0 ? def : static_cast<unsigned>(v->num);
}

bool
asBool(const JsonValue *v, bool def)
{
    return v != nullptr && v->kind == JsonValue::Kind::Bool ? v->b : def;
}

std::string
asString(const JsonValue *v, const char *def)
{
    return v != nullptr && v->kind == JsonValue::Kind::String ? v->str
                                                              : def;
}

double
asDouble(const JsonValue *v, double def)
{
    return v != nullptr && v->kind == JsonValue::Kind::Number ? v->num
                                                              : def;
}

// -------------------------------------------------------------------
// Process-wide DB images, cached per path. The cache also remembers
// load *failures* so a missing or corrupt file costs one stat per
// process, not one per transform.
// -------------------------------------------------------------------

struct CachedDb
{
    std::shared_ptr<const TuningDb> db; // nullptr when unusable
};

std::mutex g_mutex;
std::map<std::string, CachedDb> g_cache;
TuneDbCounters g_counters;

std::shared_ptr<const TuningDb>
sharedTuneDb(const std::string &path)
{
    std::lock_guard<std::mutex> lk(g_mutex);
    auto it = g_cache.find(path);
    if (it != g_cache.end())
        return it->second.db;

    auto db = std::make_shared<TuningDb>();
    TuningDb::LoadStatus st = db->loadFile(path);
    CachedDb slot;
    if (st.ok())
        slot.db = db;
    else if (st.missing)
        slot.db = nullptr; // no file: every lookup is a heuristic run
    else {
        // Corrupt or stale files degrade to an *empty* DB (all
        // lookups miss) rather than nothing, so the counters below
        // distinguish "no DB" from "DB dropped".
        if (st.staleVersion)
            g_counters.staleVersion++;
        if (st.corrupt)
            g_counters.corruptFiles++;
        slot.db = nullptr;
    }
    g_cache.emplace(path, slot);
    return slot.db;
}

} // namespace

std::string
TuneKey::canonical() const
{
    std::ostringstream os;
    os << field << '|' << logN << '|' << gpus << '|' << hw << '|'
       << executor;
    return os.str();
}

std::string
TunedParams::toString() const
{
    std::ostringstream os;
    os << "tile=" << (hostTileLog2 ? std::to_string(hostTileLog2)
                                   : std::string("auto"))
       << " radix=r" << (1u << fusedRadixLog2)
       << " fuse=" << (fuseLocalPasses ? "on" : "off")
       << " threads="
       << (hostThreads ? std::to_string(hostThreads)
                       : std::string("all"))
       << " isa=" << isaPathName(isaPath)
       << " overlap=" << (overlapComm ? "on" : "off");
    return os.str();
}

std::string
tuneHwId(const MultiGpuSystem &sys)
{
    std::string id = sys.gpu.name;
    id += '/';
    id += toString(sys.fabric.kind);
    if (sys.gpusPerNode != 0) {
        id += '/';
        id += std::to_string(sys.gpusPerNode);
        id += "per-node-";
        id += toString(sys.nodeFabric.kind);
    }
    return id;
}

TuningDb::LoadStatus
TuningDb::loadFile(const std::string &path)
{
    entries_.clear();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        LoadStatus st;
        st.missing = true;
        st.detail = "no such file: " + path;
        return st;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return loadJson(text);
}

TuningDb::LoadStatus
TuningDb::loadJson(const std::string &text)
{
    entries_.clear();
    LoadStatus st;

    JsonValue root;
    JsonReader reader(text);
    if (!reader.parse(root) || root.kind != JsonValue::Kind::Object) {
        st.corrupt = true;
        st.detail = "unparseable JSON";
        return st;
    }
    const JsonValue *ver = root.get("version");
    if (ver == nullptr || ver->kind != JsonValue::Kind::Number) {
        st.corrupt = true;
        st.detail = "missing version";
        return st;
    }
    if (static_cast<unsigned>(ver->num) != kTuneDbVersion) {
        st.staleVersion = true;
        st.detail = "version " + std::to_string(ver->num) +
                    " != " + std::to_string(kTuneDbVersion);
        return st;
    }
    const JsonValue *entries = root.get("entries");
    if (entries == nullptr || entries->kind != JsonValue::Kind::Array) {
        st.corrupt = true;
        st.detail = "missing entries array";
        return st;
    }

    for (const JsonValue &e : entries->arr) {
        if (e.kind != JsonValue::Kind::Object) {
            st.corrupt = true;
            st.detail = "non-object entry";
            entries_.clear();
            return st;
        }
        TuneEntry out;
        out.key.field = asString(e.get("field"), "");
        out.key.logN = asUnsigned(e.get("logN"), 0);
        out.key.gpus = asUnsigned(e.get("gpus"), 0);
        out.key.hw = asString(e.get("hw"), "");
        out.key.executor = asString(e.get("executor"), "");
        if (out.key.field.empty() || out.key.logN == 0 ||
            out.key.gpus == 0 || out.key.executor.empty()) {
            st.corrupt = true;
            st.detail = "entry with incomplete key";
            entries_.clear();
            return st;
        }
        out.params.hostTileLog2 =
            asUnsigned(e.get("hostTileLog2"), 0);
        out.params.fuseLocalPasses =
            asBool(e.get("fuseLocalPasses"), true);
        out.params.fusedRadixLog2 = std::clamp(
            asUnsigned(e.get("fusedRadixLog2"), 3), 1u, 3u);
        out.params.hostThreads = asUnsigned(e.get("hostThreads"), 0);
        if (!parseIsaPath(asString(e.get("isa"), "auto"),
                          &out.params.isaPath))
            out.params.isaPath = IsaPath::Auto;
        out.params.overlapComm = asBool(e.get("overlapComm"), true);
        out.seconds = asDouble(e.get("seconds"), 0);
        out.heuristicSeconds = asDouble(e.get("heuristicSeconds"), 0);
        put(out);
    }
    return st;
}

std::string
TuningDb::toJson() const
{
    std::vector<const TuneEntry *> sorted;
    sorted.reserve(entries_.size());
    for (const auto &e : entries_)
        sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [](const TuneEntry *a, const TuneEntry *b) {
                  return a->key.canonical() < b->key.canonical();
              });

    std::ostringstream os;
    os << "{\n  \"version\": " << kTuneDbVersion
       << ",\n  \"entries\": [";
    for (size_t i = 0; i < sorted.size(); ++i) {
        const TuneEntry &e = *sorted[i];
        os << (i ? "," : "") << "\n    {\n"
           << "      \"field\": \"" << jsonEscape(e.key.field)
           << "\",\n"
           << "      \"logN\": " << e.key.logN << ",\n"
           << "      \"gpus\": " << e.key.gpus << ",\n"
           << "      \"hw\": \"" << jsonEscape(e.key.hw) << "\",\n"
           << "      \"executor\": \"" << jsonEscape(e.key.executor)
           << "\",\n"
           << "      \"hostTileLog2\": " << e.params.hostTileLog2
           << ",\n"
           << "      \"fuseLocalPasses\": "
           << (e.params.fuseLocalPasses ? "true" : "false") << ",\n"
           << "      \"fusedRadixLog2\": " << e.params.fusedRadixLog2
           << ",\n"
           << "      \"hostThreads\": " << e.params.hostThreads
           << ",\n"
           << "      \"isa\": \"" << isaPathName(e.params.isaPath)
           << "\",\n"
           << "      \"overlapComm\": "
           << (e.params.overlapComm ? "true" : "false") << ",\n"
           << "      \"seconds\": " << fmtSeconds(e.seconds) << ",\n"
           << "      \"heuristicSeconds\": "
           << fmtSeconds(e.heuristicSeconds) << "\n    }";
    }
    os << (sorted.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

bool
TuningDb::saveFile(const std::string &path) const
{
    const std::string text = toJson();
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const size_t n = std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return n == text.size();
}

const TuneEntry *
TuningDb::find(const TuneKey &key) const
{
    for (const auto &e : entries_)
        if (e.key == key)
            return &e;
    return nullptr;
}

void
TuningDb::put(const TuneEntry &e)
{
    for (auto &existing : entries_) {
        if (existing.key == e.key) {
            existing = e;
            return;
        }
    }
    entries_.push_back(e);
}

std::string
resolveTuneDbPath(const UniNttConfig &cfg)
{
    const char *env = std::getenv("UNINTT_TUNEDB");
    if (env != nullptr && *env != '\0')
        return std::strcmp(env, "off") == 0 ? "" : env;
    if (!cfg.useTuneDb)
        return "";
    if (!cfg.tuneDbPath.empty())
        return cfg.tuneDbPath == "off" ? "" : cfg.tuneDbPath;
    return kDefaultTuneDbPath;
}

TuneDbCounters
tuneDbCounters()
{
    std::lock_guard<std::mutex> lk(g_mutex);
    return g_counters;
}

void
invalidateTuneDbCache()
{
    std::lock_guard<std::mutex> lk(g_mutex);
    g_cache.clear();
}

unsigned
applyTunedParams(UniNttConfig &cfg, const TunedParams &p,
                 size_t element_bytes)
{
    unsigned clamps = 0;
    // Tri-state knobs honor an explicit pin (see the header's
    // resolution order); the pure toggles belong to the DB entry.
    if (cfg.isaPath == IsaPath::Auto)
        cfg.isaPath = p.isaPath;
    if (cfg.hostThreads == 0)
        cfg.hostThreads = p.hostThreads;
    cfg.fuseLocalPasses = p.fuseLocalPasses;
    cfg.fusedRadixLog2 = std::clamp(p.fusedRadixLog2, 1u, 3u);
    cfg.overlapComm = p.overlapComm;
    if (cfg.hostTileLog2 == 0 && p.hostTileLog2 != 0) {
        unsigned t = p.hostTileLog2;
        const unsigned lanes =
            isaLaneWidth(resolveIsaPath(cfg.isaPath), element_bytes);
        if (lanes > 1) {
            const unsigned floor_t = log2Floor(lanes) + 3;
            if (t < floor_t) {
                t = floor_t;
                clamps++;
            }
        }
        cfg.hostTileLog2 = t;
    }
    if (clamps != 0) {
        std::lock_guard<std::mutex> lk(g_mutex);
        g_counters.clampWarnings += clamps;
    }
    return clamps;
}

TunedConfig
resolveTunedConfig(const UniNttConfig &cfg, const char *field,
                   size_t element_bytes, unsigned logN,
                   const MultiGpuSystem &sys, const char *executor)
{
    TunedConfig out;
    out.cfg = cfg;

    const std::string path = resolveTuneDbPath(cfg);
    if (path.empty())
        return out;
    std::shared_ptr<const TuningDb> db = sharedTuneDb(path);
    if (db == nullptr)
        return out;

    TuneKey key;
    key.field = field;
    key.logN = logN;
    key.gpus = sys.numGpus;
    key.hw = tuneHwId(sys);
    key.executor = executor;
    const TuneEntry *e = db->find(key);
    {
        std::lock_guard<std::mutex> lk(g_mutex);
        (e != nullptr ? g_counters.hits : g_counters.misses)++;
    }
    if (e == nullptr)
        return out;

    out.clampWarnings =
        applyTunedParams(out.cfg, e->params, element_bytes);
    out.tuned = true;
    return out;
}

} // namespace unintt
