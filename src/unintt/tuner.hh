/**
 * @file
 * The schedule autotuner: the data-driven replacement for the 256 KiB
 * cache heuristic.
 *
 * For one tuning key (field, logN, gpus, hardware model, executor) the
 * tuner enumerates a candidate grid over the joint host-execution
 * space — {hostTileLog2, fused radix mix, hostThreads, isaPath,
 * overlapComm, fuseLocalPasses} — measures every candidate, and
 * records the winner as a TuneEntry for the persisted DB
 * (unintt/tunedb.hh). Measurement is executor-specific:
 *
 *  - "functional": seeded deterministic inputs, repeat-median wall
 *    time of the bit-exact host execution (the only wall-clock in the
 *    whole tuner);
 *  - "analytic": the deterministic analytic pricing of the candidate's
 *    schedule (simulated hardware models have no host wall time worth
 *    trusting).
 *
 * Determinism contract: candidates are enumerated in a fixed canonical
 * order (the heuristic baseline is always candidate 0), the
 * *measurement* order is a seeded shuffle of that list (seededOrder),
 * and the winner is the lexicographic minimum of (median seconds,
 * analytic virtual cost, canonical index) — so ties never depend on
 * enumeration luck and two analytic tune passes over the same space
 * produce byte-identical DB files.
 */

#ifndef UNINTT_UNINTT_TUNER_HH
#define UNINTT_UNINTT_TUNER_HH

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "unintt/engine.hh"
#include "unintt/tunedb.hh"
#include "util/random.hh"

namespace unintt {

/** The candidate grid, one axis per tunable knob. */
struct TuneSpace
{
    /** Host tile log2 values; 0 = the heuristic cache-derived tile. */
    std::vector<unsigned> tileLog2s;
    /** Fused radix mixes (3 = r8+r4+r2, 2 = r4+r2, 1 = r2). */
    std::vector<unsigned> radixLog2s;
    /** Host thread counts; 0 = every pool lane. */
    std::vector<unsigned> hostThreads;
    /** Acceleration paths (Auto defers to the router probe). */
    std::vector<IsaPath> isaPaths;
    /** overlapComm values (exchange/compute overlap chunking). */
    std::vector<bool> overlaps;
    /** fuseLocalPasses values. */
    std::vector<bool> fusions;

    /** Grid size before pin-collapsing and deduplication. */
    size_t
    size() const
    {
        return tileLog2s.size() * radixLog2s.size() *
               hostThreads.size() * isaPaths.size() * overlaps.size() *
               fusions.size();
    }

    /** The full default grid (bench.sh --tune). */
    static TuneSpace defaults();

    /** A tiny grid for CI smoke runs (unintt-cli tune --small). */
    static TuneSpace small();
};

/** One tuning task: everything tuneOne needs besides the grid. */
struct TuneRequest
{
    unsigned logN = 12;
    MultiGpuSystem sys;
    /** "functional" (measured) or "analytic" (priced). */
    std::string executor = "functional";
    /** Wall-time repetitions per functional candidate (median). */
    unsigned reps = 3;
    /** Seed of the input data and the measurement-order shuffle. */
    uint64_t seed = 1;
    /**
     * Baseline config. Knobs it pins explicitly (non-zero tile or
     * threads, non-Auto isaPath) collapse their search axis — the DB
     * never overrides a pin, so searching one would be wasted work.
     */
    UniNttConfig base;
};

/** One measured candidate (canonical order in TuneOutcome). */
struct TuneCandidateResult
{
    TunedParams params;
    /** Median functional seconds, or the analytic pricing. */
    double seconds = 0;
    /** Deterministic analytic pricing (tiebreak for ties). */
    double virtualCost = 0;
    /** Canonical enumeration index (final tiebreak). */
    size_t index = 0;
    /** True for candidate 0, the heuristic baseline. */
    bool heuristic = false;
};

/** What one tuneOne call produced. */
struct TuneOutcome
{
    /** The winner, ready for TuningDb::put. */
    TuneEntry entry;
    /** The heuristic baseline's measured seconds. */
    double heuristicSeconds = 0;
    /** Every candidate, in canonical order. */
    std::vector<TuneCandidateResult> measurements;

    /** True iff the winner strictly beats the heuristic baseline. */
    bool
    improved() const
    {
        return entry.seconds < heuristicSeconds;
    }
};

/**
 * Deterministic measurement permutation of [0, n): a Fisher–Yates
 * shuffle driven by a splitmix-seeded generator, so the same (n, seed)
 * always yields the same order. Defined in tuner.cc.
 */
std::vector<size_t> seededOrder(size_t n, uint64_t seed);

namespace tuner_detail {

/** Apply a candidate's knobs over the baseline config. */
inline UniNttConfig
candidateConfig(const UniNttConfig &base, const TunedParams &p)
{
    UniNttConfig cfg = base;
    cfg.useTuneDb = false; // never recurse into the DB while tuning
    cfg.hostTileLog2 = p.hostTileLog2;
    cfg.fuseLocalPasses = p.fuseLocalPasses;
    cfg.fusedRadixLog2 = p.fusedRadixLog2;
    cfg.hostThreads = p.hostThreads;
    cfg.isaPath = p.isaPath;
    cfg.overlapComm = p.overlapComm;
    return cfg;
}

/** Lower-median of @p xs (an observed value, never an interpolation). */
inline double
medianSeconds(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    return xs.empty() ? 0.0 : xs[(xs.size() - 1) / 2];
}

} // namespace tuner_detail

/**
 * Measure one candidate under @p req: the analytic pricing always (it
 * is the virtual-cost tiebreak), plus the functional repeat-median
 * wall time when the request's executor is "functional".
 */
template <NttField F>
void
measureTuneCandidate(const TuneRequest &req, TuneCandidateResult &c)
{
    const UniNttConfig cfg =
        tuner_detail::candidateConfig(req.base, c.params);
    UniNttEngine<F> engine(req.sys, cfg);
    c.virtualCost =
        engine.analyticRun(req.logN, NttDirection::Forward)
            .totalSeconds();
    if (req.executor != "functional") {
        c.seconds = c.virtualCost;
        return;
    }

    Rng rng(req.seed ^ (0x9e3779b97f4a7c15ULL *
                        (static_cast<uint64_t>(req.logN) + 1)));
    std::vector<F> input(1ULL << req.logN);
    for (auto &v : input)
        v = F::fromU64(rng.next());
    auto dist =
        DistributedVector<F>::fromGlobal(input, req.sys.numGpus);
    engine.forward(dist); // warm plan/schedule/twiddle caches

    std::vector<double> times;
    const unsigned reps = std::max(1u, req.reps);
    times.reserve(reps);
    for (unsigned r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        engine.forward(dist);
        const auto t1 = std::chrono::steady_clock::now();
        times.push_back(
            std::chrono::duration<double>(t1 - t0).count());
    }
    c.seconds = tuner_detail::medianSeconds(std::move(times));
}

/**
 * Tune one key: enumerate the (pin-collapsed, deduplicated) candidate
 * grid with the heuristic baseline as candidate 0, measure in seeded
 * order, and pick the (seconds, virtualCost, index)-lexicographic
 * minimum. The returned entry's key names F, the request's shape and
 * machine, and the request's executor.
 */
template <NttField F>
TuneOutcome
tuneOne(const TuneRequest &req, const TuneSpace &space)
{
    // Pins collapse their axis (the DB honors them at apply time).
    const std::vector<unsigned> tiles =
        req.base.hostTileLog2 != 0
            ? std::vector<unsigned>{req.base.hostTileLog2}
            : space.tileLog2s;
    const std::vector<unsigned> threads =
        req.base.hostThreads != 0
            ? std::vector<unsigned>{req.base.hostThreads}
            : space.hostThreads;
    const std::vector<IsaPath> isas =
        req.base.isaPath != IsaPath::Auto
            ? std::vector<IsaPath>{req.base.isaPath}
            : space.isaPaths;

    TuneOutcome out;
    auto &cands = out.measurements;

    // Candidate 0: the heuristic baseline, verbatim from the base
    // config, so the winner can never be worse than what a DB miss
    // would have produced (up to measurement noise).
    {
        TuneCandidateResult heur;
        heur.params.hostTileLog2 = req.base.hostTileLog2;
        heur.params.fuseLocalPasses = req.base.fuseLocalPasses;
        heur.params.fusedRadixLog2 = req.base.fusedRadixLog2;
        heur.params.hostThreads = req.base.hostThreads;
        heur.params.isaPath = req.base.isaPath;
        heur.params.overlapComm = req.base.overlapComm;
        heur.heuristic = true;
        heur.index = 0;
        cands.push_back(heur);
    }

    // Canonical enumeration order: isa, threads, tile, radix, fusion,
    // overlap — fixed forever, because the index is a tiebreak.
    for (IsaPath isa : isas)
        for (unsigned th : threads)
            for (unsigned tile : tiles)
                for (unsigned radix : space.radixLog2s)
                    for (bool fuse : space.fusions)
                        for (bool ov : space.overlaps) {
                            TuneCandidateResult c;
                            c.params.hostTileLog2 = tile;
                            c.params.fuseLocalPasses = fuse;
                            c.params.fusedRadixLog2 = radix;
                            c.params.hostThreads = th;
                            c.params.isaPath = isa;
                            c.params.overlapComm = ov;
                            bool dup = false;
                            for (const auto &e : cands)
                                if (e.params == c.params) {
                                    dup = true;
                                    break;
                                }
                            if (dup)
                                continue;
                            c.index = cands.size();
                            cands.push_back(c);
                        }

    for (size_t i : seededOrder(cands.size(), req.seed))
        measureTuneCandidate<F>(req, cands[i]);

    const TuneCandidateResult *best = &cands[0];
    for (const auto &c : cands) {
        if (c.seconds < best->seconds ||
            (c.seconds == best->seconds &&
             (c.virtualCost < best->virtualCost ||
              (c.virtualCost == best->virtualCost &&
               c.index < best->index))))
            best = &c;
    }

    out.heuristicSeconds = cands[0].seconds;
    out.entry.key.field = F::kName;
    out.entry.key.logN = req.logN;
    out.entry.key.gpus = req.sys.numGpus;
    out.entry.key.hw = tuneHwId(req.sys);
    out.entry.key.executor = req.executor;
    out.entry.params = best->params;
    out.entry.seconds = best->seconds;
    out.entry.heuristicSeconds = out.heuristicSeconds;
    return out;
}

/**
 * Tune every size of @p log_ns under the request prototype and record
 * the winners in @p db (insert-or-replace; foreign keys untouched).
 */
template <NttField F>
std::vector<TuneOutcome>
tuneField(TuningDb &db, const std::vector<unsigned> &log_ns,
          const TuneRequest &proto, const TuneSpace &space)
{
    std::vector<TuneOutcome> out;
    out.reserve(log_ns.size());
    for (unsigned logN : log_ns) {
        TuneRequest req = proto;
        req.logN = logN;
        TuneOutcome o = tuneOne<F>(req, space);
        db.put(o.entry);
        out.push_back(std::move(o));
    }
    return out;
}

} // namespace unintt

#endif // UNINTT_UNINTT_TUNER_HH
