#include "unintt/tuner.hh"

namespace unintt {

TuneSpace
TuneSpace::defaults()
{
    TuneSpace s;
    // 0 = the heuristic cache-derived tile; the explicit values
    // bracket it (the 256 KiB model lands at 15 for 8-byte fields).
    s.tileLog2s = {0, 14, 16, 18};
    s.radixLog2s = {3, 2};
    s.hostThreads = {0, 1};
    s.isaPaths = {IsaPath::Auto};
    s.overlaps = {true, false};
    s.fusions = {true};
    return s;
}

TuneSpace
TuneSpace::small()
{
    TuneSpace s;
    s.tileLog2s = {0, 12};
    s.radixLog2s = {3, 1};
    s.hostThreads = {1};
    s.isaPaths = {IsaPath::Auto};
    s.overlaps = {true, false};
    s.fusions = {true};
    return s;
}

std::vector<size_t>
seededOrder(size_t n, uint64_t seed)
{
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    Rng rng(seed ^ 0x74756e65ULL); // "tune" salt
    for (size_t i = n; i > 1; --i) {
        const size_t j = static_cast<size_t>(rng.next() % i);
        std::swap(order[i - 1], order[j]);
    }
    return order;
}

} // namespace unintt
