/**
 * @file
 * The unified NTT backend interface and its registry.
 *
 * Every multi-GPU NTT implementation in the repo — the UniNTT engine,
 * the four-step baseline (tuned and prior-art), the no-distribution
 * single-GPU fallback, and the naive stage-per-kernel baseline — is
 * exposed behind one polymorphic interface so consumers (the ZKP
 * prover pipeline, benches, the CLI) select an implementation by name
 * instead of hard-coding per-backend switch ladders.
 *
 * The registry maps a stable string name to a factory; backends are
 * registered per field (the interface is templated on the field like
 * the engines themselves). Built-in names:
 *
 *   "unintt"          UniNTT hierarchical engine (this paper)
 *   "fourstep"        four-step with all-to-all transposes, tuned
 *   "fourstep-prior"  four-step in the straightforward-port config
 *   "single-gpu"      UniNTT pinned to one device, other GPUs idle
 *   "naive"           stage-per-kernel single-GPU baseline
 */

#ifndef UNINTT_UNINTT_BACKEND_HH
#define UNINTT_UNINTT_BACKEND_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/fourstep_multigpu.hh"
#include "baselines/naive_gpu.hh"
#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "sim/multi_gpu.hh"
#include "sim/report.hh"
#include "unintt/distributed.hh"
#include "unintt/engine.hh"
#include "util/logging.hh"

namespace unintt {

/**
 * A multi-GPU NTT implementation behind a uniform interface. Ordering
 * conventions are the backend's own (UniNTT emits bit-reversed
 * forward output, four-step natural) — callers that mix backends
 * functionally must account for that, exactly as they did against the
 * concrete classes.
 */
template <NttField F>
class INttBackend
{
  public:
    virtual ~INttBackend() = default;

    /** The registry name this backend was constructed under. */
    virtual const char *name() const = 0;

    /** The machine the backend models. */
    virtual const MultiGpuSystem &system() const = 0;

    /** Forward NTT in place. */
    virtual SimReport forward(DistributedVector<F> &data) const = 0;

    /** Inverse NTT in place (including the n^-1 scaling). */
    virtual SimReport inverse(DistributedVector<F> &data) const = 0;

    /** Batched forward transform over independent equal-size inputs. */
    virtual SimReport
    forwardBatch(std::vector<DistributedVector<F>> &batch) const = 0;

    /** Batched inverse transform. */
    virtual SimReport
    inverseBatch(std::vector<DistributedVector<F>> &batch) const = 0;

    /** Simulated timeline without functional execution. */
    virtual SimReport analyticRun(unsigned logN, NttDirection dir,
                                  size_t batch = 1) const = 0;
};

namespace detail_backend {

/** The UniNTT engine as a backend. */
template <NttField F>
class UniNttBackend final : public INttBackend<F>
{
  public:
    UniNttBackend(MultiGpuSystem sys, UniNttConfig cfg)
        : engine_(std::move(sys), cfg)
    {
    }

    const char *name() const override { return "unintt"; }
    const MultiGpuSystem &system() const override
    {
        return engine_.system();
    }
    SimReport
    forward(DistributedVector<F> &data) const override
    {
        return engine_.forward(data);
    }
    SimReport
    inverse(DistributedVector<F> &data) const override
    {
        return engine_.inverse(data);
    }
    SimReport
    forwardBatch(std::vector<DistributedVector<F>> &batch) const override
    {
        return engine_.forwardBatch(batch);
    }
    SimReport
    inverseBatch(std::vector<DistributedVector<F>> &batch) const override
    {
        return engine_.inverseBatch(batch);
    }
    SimReport
    analyticRun(unsigned logN, NttDirection dir,
                size_t batch) const override
    {
        return engine_.analyticRun(logN, dir, batch);
    }

    /** The wrapped engine (schedule inspection, resilient paths). */
    const UniNttEngine<F> &engine() const { return engine_; }

  private:
    UniNttEngine<F> engine_;
};

/**
 * UniNTT pinned to a single device: the no-distribution comparison
 * point where every NTT runs on one GPU and the others idle. The
 * modeled machine keeps the original node fabric parameters but a
 * single device.
 */
template <NttField F>
class SingleGpuBackend final : public INttBackend<F>
{
  public:
    explicit SingleGpuBackend(MultiGpuSystem sys) : engine_(solo(sys)) {}

    const char *name() const override { return "single-gpu"; }
    const MultiGpuSystem &system() const override
    {
        return engine_.system();
    }
    SimReport
    forward(DistributedVector<F> &data) const override
    {
        return engine_.forward(data);
    }
    SimReport
    inverse(DistributedVector<F> &data) const override
    {
        return engine_.inverse(data);
    }
    SimReport
    forwardBatch(std::vector<DistributedVector<F>> &batch) const override
    {
        return engine_.forwardBatch(batch);
    }
    SimReport
    inverseBatch(std::vector<DistributedVector<F>> &batch) const override
    {
        return engine_.inverseBatch(batch);
    }
    SimReport
    analyticRun(unsigned logN, NttDirection dir,
                size_t batch) const override
    {
        return engine_.analyticRun(logN, dir, batch);
    }

  private:
    static MultiGpuSystem
    solo(MultiGpuSystem sys)
    {
        sys.numGpus = 1;
        return sys;
    }

    UniNttEngine<F> engine_;
};

/** The four-step baseline as a backend (tuned or prior-art). */
template <NttField F>
class FourStepBackend final : public INttBackend<F>
{
  public:
    FourStepBackend(MultiGpuSystem sys, FourStepOptions opts,
                    const char *name)
        : engine_(std::move(sys), opts), name_(name)
    {
    }

    const char *name() const override { return name_; }
    const MultiGpuSystem &system() const override
    {
        return engine_.system();
    }
    SimReport
    forward(DistributedVector<F> &data) const override
    {
        return engine_.forward(data);
    }
    SimReport
    inverse(DistributedVector<F> &data) const override
    {
        return engine_.inverse(data);
    }
    SimReport
    forwardBatch(std::vector<DistributedVector<F>> &batch) const override
    {
        // The four-step baseline has no amortized batch path; the
        // batch is the sum of its members.
        SimReport report;
        for (auto &d : batch)
            report.append(engine_.forward(d));
        return report;
    }
    SimReport
    inverseBatch(std::vector<DistributedVector<F>> &batch) const override
    {
        SimReport report;
        for (auto &d : batch)
            report.append(engine_.inverse(d));
        return report;
    }
    SimReport
    analyticRun(unsigned logN, NttDirection dir,
                size_t batch) const override
    {
        return engine_.analyticRun(logN, dir, batch);
    }

  private:
    FourStepMultiGpuNtt<F> engine_;
    const char *name_;
};

/** The naive stage-per-kernel single-GPU baseline as a backend. */
template <NttField F>
class NaiveBackend final : public INttBackend<F>
{
  public:
    explicit NaiveBackend(MultiGpuSystem sys)
        : sys_(std::move(sys)), engine_(sys_.gpu)
    {
        sys_.numGpus = 1; // the baseline models exactly one device
    }

    const char *name() const override { return "naive"; }
    const MultiGpuSystem &system() const override { return sys_; }
    SimReport
    forward(DistributedVector<F> &data) const override
    {
        std::vector<F> global = data.toGlobal();
        SimReport report = engine_.forward(global);
        scatter(global, data);
        return report;
    }
    SimReport
    inverse(DistributedVector<F> &data) const override
    {
        std::vector<F> global = data.toGlobal();
        SimReport report = engine_.inverse(global);
        scatter(global, data);
        return report;
    }
    SimReport
    forwardBatch(std::vector<DistributedVector<F>> &batch) const override
    {
        SimReport report;
        for (auto &d : batch)
            report.append(forward(d));
        return report;
    }
    SimReport
    inverseBatch(std::vector<DistributedVector<F>> &batch) const override
    {
        SimReport report;
        for (auto &d : batch)
            report.append(inverse(d));
        return report;
    }
    SimReport
    analyticRun(unsigned logN, NttDirection dir,
                size_t batch) const override
    {
        return engine_.analyticRun(logN, dir, batch);
    }

  private:
    static void
    scatter(const std::vector<F> &global, DistributedVector<F> &data)
    {
        auto redistributed =
            DistributedVector<F>::fromGlobal(global, data.numGpus());
        for (unsigned g = 0; g < data.numGpus(); ++g)
            data.chunk(g) = redistributed.chunk(g);
    }

    MultiGpuSystem sys_;
    NaiveGpuNtt<F> engine_;
};

} // namespace detail_backend

/**
 * Per-field, string-keyed backend factory registry. The global()
 * instance comes pre-seeded with the built-in backends; callers may
 * register additional ones (experimental implementations slot into the
 * prover and benches without touching them).
 */
template <NttField F>
class NttBackendRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<INttBackend<F>>(
        const MultiGpuSystem &sys)>;

    /** Register (or replace) the factory behind @p name. */
    void
    registerFactory(const std::string &name, Factory factory)
    {
        for (auto &e : entries_) {
            if (e.name == name) {
                e.factory = std::move(factory);
                return;
            }
        }
        entries_.push_back(Entry{name, std::move(factory)});
    }

    /** Construct @p name for @p sys, or nullptr if unknown. */
    std::unique_ptr<INttBackend<F>>
    tryMake(const std::string &name, const MultiGpuSystem &sys) const
    {
        for (const auto &e : entries_)
            if (e.name == name)
                return e.factory(sys);
        return nullptr;
    }

    /** Construct @p name for @p sys; unknown names are fatal. */
    std::unique_ptr<INttBackend<F>>
    make(const std::string &name, const MultiGpuSystem &sys) const
    {
        auto be = tryMake(name, sys);
        if (!be)
            fatal("unknown NTT backend '%s'", name.c_str());
        return be;
    }

    /** Registered names, in registration order. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        for (const auto &e : entries_)
            out.push_back(e.name);
        return out;
    }

    /** The process-wide instance, pre-seeded with the built-ins. */
    static NttBackendRegistry &
    global()
    {
        static NttBackendRegistry reg = builtins();
        return reg;
    }

  private:
    struct Entry
    {
        std::string name;
        Factory factory;
    };

    static NttBackendRegistry
    builtins()
    {
        using namespace detail_backend;
        NttBackendRegistry reg;
        reg.registerFactory("unintt", [](const MultiGpuSystem &sys) {
            return std::make_unique<UniNttBackend<F>>(
                sys, UniNttConfig::allOn());
        });
        reg.registerFactory("fourstep", [](const MultiGpuSystem &sys) {
            return std::make_unique<FourStepBackend<F>>(
                sys, FourStepOptions::tuned(), "fourstep");
        });
        reg.registerFactory(
            "fourstep-prior", [](const MultiGpuSystem &sys) {
                return std::make_unique<FourStepBackend<F>>(
                    sys, FourStepOptions::priorArt(), "fourstep-prior");
            });
        reg.registerFactory("single-gpu", [](const MultiGpuSystem &sys) {
            return std::make_unique<SingleGpuBackend<F>>(sys);
        });
        reg.registerFactory("naive", [](const MultiGpuSystem &sys) {
            return std::make_unique<NaiveBackend<F>>(sys);
        });
        return reg;
    }

    std::vector<Entry> entries_;
};

} // namespace unintt

#endif // UNINTT_UNINTT_BACKEND_HH
