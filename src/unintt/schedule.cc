#include "unintt/schedule.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>

#include "field/dispatch.hh"
#include "sim/memory.hh"
#include "util/logging.hh"

namespace unintt {

const char *
toString(StepKind kind)
{
    switch (kind) {
      case StepKind::Exchange:
        return "exchange";
      case StepKind::CrossStage:
        return "cross-stage";
      case StepKind::LocalPass:
        return "local-pass";
      case StepKind::FusedLocalPass:
        return "fused-local";
      case StepKind::Scale:
        return "scale";
      case StepKind::SpotCheck:
        return "spot-check";
      case StepKind::BitRevGather:
        return "bitrev-gather";
    }
    return "?";
}

const char *
toString(ExecLevel level)
{
    switch (level) {
      case ExecLevel::Warp:
        return "warp";
      case ExecLevel::Block:
        return "block";
      case ExecLevel::Gpu:
        return "gpu";
      case ExecLevel::MultiGpu:
        return "multi-gpu";
      case ExecLevel::Node:
        return "node";
    }
    return "?";
}

KernelStats
crossStageEventStats(uint64_t chunk, size_t batch, size_t element_bytes,
                     const UniNttConfig &cfg, const CostConstants &costs)
{
    const size_t b = element_bytes;
    KernelStats k;
    k.fieldAdds = chunk * batch;     // one add or sub per output element
    k.fieldMuls = chunk / 2 * batch; // twiddle on the upper half outputs
    k.butterflies = chunk / 2 * batch;
    if (cfg.onTheFlyTwiddles) {
        k.fieldMuls += static_cast<uint64_t>(
            static_cast<double>(k.butterflies) * costs.onTheFlyExtraMuls);
    } else {
        k.globalReadBytes += static_cast<uint64_t>(
            static_cast<double>(k.butterflies) * b *
            costs.twiddleTableDramFraction);
    }
    // Read own chunk + received chunk, write result + link landing.
    k.globalReadBytes += 2 * chunk * b * batch;
    k.globalWriteBytes += 2 * chunk * b * batch;
    k.kernelLaunches = 1;
    return k;
}

KernelStats
gridPassEventStats(uint64_t chunk, const GridPassPlan &pass, size_t batch,
                   size_t element_bytes, const UniNttConfig &cfg,
                   const CostConstants &costs)
{
    const size_t b = element_bytes;
    KernelStats k;
    k.butterflies = chunk / 2 * pass.bits * batch;
    k.fieldMuls = k.butterflies;
    k.fieldAdds = 2 * k.butterflies;
    if (cfg.onTheFlyTwiddles) {
        k.fieldMuls += static_cast<uint64_t>(
            static_cast<double>(k.butterflies) * costs.onTheFlyExtraMuls);
    } else {
        k.globalReadBytes += static_cast<uint64_t>(
            static_cast<double>(k.butterflies) * b *
            costs.twiddleTableDramFraction);
    }
    // One coalesced read and write of the chunk per pass.
    k.globalReadBytes += chunk * b * batch;
    k.globalWriteBytes += chunk * b * batch;

    if (cfg.warpShuffle) {
        // Warp-resident stages exchange via the shuffle network; only
        // round boundaries cross shared memory.
        k.shuffles = chunk * pass.bits * batch;
        k.smemBytes = 2 * chunk * b * (pass.warpRounds - 1) * batch;
    } else {
        // Every stage round-trips through shared memory.
        k.smemBytes = 2 * chunk * b * pass.bits * batch;
    }
    if (!cfg.paddedSmem) {
        uint64_t accesses = k.smemBytes / b;
        k.smemBankConflicts = static_cast<uint64_t>(
            static_cast<double>(accesses) * costs.unpaddedConflictReplays);
    }
    uint64_t tiles = std::max<uint64_t>(1, chunk >> pass.bits);
    // The shuffle path only barriers at round boundaries; the pure smem
    // path barriers after every stage.
    k.syncs = tiles * (cfg.warpShuffle ? pass.warpRounds : pass.bits) *
              batch;
    k.kernelLaunches = 1;
    return k;
}

KernelStats
twiddlePassEventStats(uint64_t chunk, size_t batch, size_t element_bytes)
{
    const size_t b = element_bytes;
    KernelStats k;
    k.fieldMuls = chunk * batch;
    k.globalReadBytes = chunk * b * batch;
    k.globalWriteBytes = chunk * b * batch;
    k.kernelLaunches = 1;
    return k;
}

namespace {

/**
 * Group local stages [from, logN) into balanced passes of at most
 * @p tile_bits stages each, with the planner's ceil-division policy.
 * Rebuilt from the tile size rather than read from pl.passes because a
 * resume may start above pl.logMg (a cross stage executed under the
 * pre-degradation sharding); for from == pl.logMg and tile_bits ==
 * pl.logBlockTile this reproduces pl.passes exactly. Fused schedules
 * call it with the resolved host tile instead, which is what shrinks
 * the pass count.
 *
 * With @p pin_tail (fused schedules) the final group is pinned to
 * exactly tile_bits stages: that group's stage-coupled super-block is
 * then exactly one tile, so it runs as the fast in-place contiguous
 * sweep, and the remaining head groups — which must stream through
 * per-thread tile buffers anyway — are as few and as shallow as
 * possible, which widens their column slabs and keeps the
 * gather/scatter copies contiguous. The pass count is unchanged.
 */
std::vector<std::pair<unsigned, GridPassPlan>>
localRangesFrom(const NttPlan &pl, unsigned logN, unsigned from,
                unsigned tile_bits, bool pin_tail)
{
    std::vector<std::pair<unsigned, GridPassPlan>> ranges;
    unsigned remaining = logN - from;
    if (remaining == 0)
        return ranges;
    unsigned tail = 0;
    if (pin_tail && remaining > tile_bits) {
        tail = tile_bits;
        remaining -= tail;
    }
    unsigned num_passes = (remaining + tile_bits - 1) / tile_bits;
    unsigned s = from;
    for (unsigned i = 0; i < num_passes; ++i) {
        unsigned left = num_passes - i;
        unsigned bits = (remaining + left - 1) / left;
        GridPassPlan pass;
        pass.bits = bits;
        pass.warpRounds = (bits + pl.logWarp - 1) / pl.logWarp;
        ranges.emplace_back(s, pass);
        s += bits;
        remaining -= bits;
    }
    if (tail != 0) {
        GridPassPlan pass;
        pass.bits = tail;
        pass.warpRounds = (tail + pl.logWarp - 1) / pl.logWarp;
        ranges.emplace_back(s, pass);
    }
    return ranges;
}

/** Schedule builder shared by the forward and inverse lowering. */
class ScheduleBuilder
{
  public:
    ScheduleBuilder(const NttPlan &pl, const MultiGpuSystem &sys,
                    size_t element_bytes, const UniNttConfig &cfg,
                    const CostConstants &costs, const ScheduleOptions &opts,
                    StageSchedule &out)
        : pl_(pl),
          sys_(sys),
          eb_(element_bytes),
          cfg_(cfg),
          costs_(costs),
          opts_(opts),
          out_(out),
          n_(1ULL << pl.logN),
          C_(pl.chunkElems())
    {
    }

    /** Exchange + CrossStage pair of one cross-GPU stage. */
    void
    crossStage(unsigned s)
    {
        const unsigned distance = 1u << (pl_.logMg - s - 1);
        unsigned effective = distance;
        sys_.fabricFor(distance, effective);
        const bool across = sys_.crossesNodes(distance);
        const ExecLevel level =
            across ? ExecLevel::Node : ExecLevel::MultiGpu;
        const std::string base =
            (across ? "node-stage-" : "mgpu-stage-") + std::to_string(s) +
            "/x" + std::to_string(distance);

        ScheduleStep ex;
        ex.kind = StepKind::Exchange;
        ex.level = level;
        ex.name = base + "-exchange";
        ex.sBegin = s;
        ex.sEnd = s + 1;
        ex.distance = distance;
        ex.effectiveDistance = effective;
        ex.crossesNodes = across;
        ex.comm = CommStats{C_ * eb_ * opts_.batch, 1, 0};
        out_.steps.push_back(std::move(ex));

        ScheduleStep cs;
        cs.kind = StepKind::CrossStage;
        cs.level = level;
        cs.name = base + "-compute";
        cs.sBegin = s;
        cs.sEnd = s + 1;
        cs.distance = distance;
        cs.effectiveDistance = effective;
        cs.crossesNodes = across;
        cs.twiddleStride = 1ULL << s;
        cs.twiddleCount = n_ >> (s + 1);
        cs.stats = crossStageEventStats(C_, opts_.batch, eb_, cfg_, costs_);
        if (opts_.resilient) {
            // Checksum generation on send, verification on arrival.
            cs.stats.fieldAdds += 2 * C_ * opts_.batch;
        }
        out_.steps.push_back(std::move(cs));
    }

    /** A cross stage that became GPU-local after degradation. */
    void
    degradedLocalStage(unsigned s)
    {
        ScheduleStep st;
        st.kind = StepKind::LocalPass;
        st.level = ExecLevel::Block;
        st.name = "degraded-local-stage-" + std::to_string(s);
        st.sBegin = s;
        st.sEnd = s + 1;
        st.pass = GridPassPlan{1, 1};
        st.degraded = true;
        st.twiddleStride = 1ULL << s;
        st.twiddleCount = n_ >> (s + 1);
        st.stats =
            gridPassEventStats(C_, st.pass, opts_.batch, eb_, cfg_, costs_);
        out_.steps.push_back(std::move(st));
    }

    /** An explicit twiddle pass (fusion off); functionally a no-op. */
    void
    twiddlePass(const std::string &why)
    {
        ScheduleStep st;
        st.kind = StepKind::Scale;
        st.level = ExecLevel::Gpu;
        st.name = "twiddle-pass-" + why;
        st.stats = twiddlePassEventStats(C_, opts_.batch, eb_);
        out_.steps.push_back(std::move(st));
    }

    /**
     * The GPU-local stage phase covering [from, logN), in execution
     * order (forward: outermost strides first; inverse: reversed),
     * with the un-fused algorithm's inter-pass twiddle passes
     * interleaved. Emits tile-fused groups (FusedLocalPass) when
     * cfg.fuseLocalPasses is set, one-DRAM-round-trip-per-stage-range
     * grid passes (LocalPass) otherwise; butterfly coverage is
     * identical either way.
     */
    void
    localPhase(unsigned from, NttDirection dir)
    {
        const bool fused = cfg_.fuseLocalPasses;
        const unsigned tile_bits =
            fused ? cfg_.resolvedHostTileLog2(
                        eb_, isaLaneWidth(cfg_.isaPath, eb_))
                  : pl_.logBlockTile;
        auto ranges =
            localRangesFrom(pl_, pl_.logN, from, tile_bits, fused);
        if (dir == NttDirection::Inverse)
            std::reverse(ranges.begin(), ranges.end());
        for (size_t i = 0; i < ranges.size(); ++i) {
            const auto &[s_begin, pass] = ranges[i];
            ScheduleStep st;
            st.kind = fused ? StepKind::FusedLocalPass : StepKind::LocalPass;
            st.level = ExecLevel::Block;
            st.name = (fused ? "fused-pass-" : "grid-pass-") +
                      std::to_string(i) + "/b" + std::to_string(pass.bits);
            st.sBegin = s_begin;
            st.sEnd = s_begin + pass.bits;
            st.pass = pass;
            st.tileLog2 = fused ? tile_bits : 0;
            st.twiddleStride = 1ULL << s_begin;
            st.twiddleCount = n_ >> (s_begin + 1);
            st.stats =
                gridPassEventStats(C_, pass, opts_.batch, eb_, cfg_, costs_);
            out_.steps.push_back(std::move(st));
            if (!cfg_.fuseTwiddles && i + 1 < ranges.size())
                twiddlePass("pass" + std::to_string(i));
        }
    }

    /** The inverse transform's n^-1 scaling step. */
    void
    inverseScaleStep()
    {
        ScheduleStep st;
        st.kind = StepKind::Scale;
        st.level = ExecLevel::Gpu;
        st.applyInverseScale = true;
        if (cfg_.fuseTwiddles) {
            st.name = "inverse-scale-fused";
            st.stats.fieldMuls = C_ * opts_.batch;
        } else {
            st.name = "twiddle-pass-inverse-scale";
            st.stats = twiddlePassEventStats(C_, opts_.batch, eb_);
        }
        out_.steps.push_back(std::move(st));
    }

    /** Post-transform spot check (resilient schedules). */
    void
    spotCheckStep()
    {
        ScheduleStep st;
        st.kind = StepKind::SpotCheck;
        st.level = ExecLevel::Gpu;
        st.name = "spot-check";
        st.stats.fieldMuls =
            static_cast<uint64_t>(opts_.spotChecks) * n_;
        st.stats.fieldAdds =
            static_cast<uint64_t>(opts_.spotChecks) * n_;
        st.stats.kernelLaunches = 1;
        out_.steps.push_back(std::move(st));
    }

    /** Bit-reversal gather to natural order (forward, opt-in). */
    void
    bitRevGatherStep()
    {
        ScheduleStep st;
        st.kind = StepKind::BitRevGather;
        st.level =
            pl_.numGpus > 1 ? ExecLevel::MultiGpu : ExecLevel::Gpu;
        st.name = "bitrev-gather";
        // Coalesced read of the chunk; the scattered writes pay whole
        // DRAM sectors.
        const uint64_t sector =
            std::max<uint64_t>(eb_, sys_.gpu.dramSectorBytes);
        st.stats.globalReadBytes = C_ * eb_ * opts_.batch;
        st.stats.globalWriteBytes = C_ * sector * opts_.batch;
        st.stats.kernelLaunches = 1;
        if (pl_.numGpus > 1) {
            // Almost every element's bit-reversed home is off-GPU.
            st.comm.bytesPerGpu = C_ * eb_ * opts_.batch *
                                  (pl_.numGpus - 1) / pl_.numGpus;
            st.comm.messages = pl_.numGpus - 1;
        }
        out_.steps.push_back(std::move(st));
    }

  private:
    const NttPlan &pl_;
    const MultiGpuSystem &sys_;
    const size_t eb_;
    const UniNttConfig &cfg_;
    const CostConstants &costs_;
    const ScheduleOptions &opts_;
    StageSchedule &out_;
    const uint64_t n_;
    const uint64_t C_;
};

/**
 * Build the dependency-DAG overlay over @p sched's step list.
 *
 * Exchange and CrossStage steps split into two double-buffered
 * half-chunk nodes; everything else is one node. Edges:
 *
 *  - chunk-aligned: when this step and the previous step are split
 *    identically, chunk k depends only on the previous step's chunk k
 *    (a cross-stage butterfly reads and writes exactly the element
 *    slice its exchange delivered, so the other half is independent);
 *  - full: an unsplit step (or a split mismatch) depends on every node
 *    of the previous step;
 *  - serialization: chunk k depends on chunk k-1 of its own step — a
 *    pairwise link moves one buffer at a time, and the butterfly
 *    engine drains chunks in order.
 *
 * Waves are longest-path levels. The chunk-aligned + serialization
 * combination staggers the cross phase so wave w holds the exchange of
 * chunk k+1 *and* the butterflies of chunk k: pure comm only at
 * pipeline fill (first half-chunk in) and pure compute only at drain
 * (last half-chunk out).
 */
void
buildScheduleDag(StageSchedule &sched, uint64_t chunk_elems)
{
    sched.dag.clear();
    sched.waves.clear();
    std::vector<uint32_t> prev;
    uint32_t prev_chunks = 1;
    for (size_t i = 0; i < sched.steps.size(); ++i) {
        const ScheduleStep &st = sched.steps[i];
        const bool splittable = (st.kind == StepKind::Exchange ||
                                 st.kind == StepKind::CrossStage) &&
                                !st.degraded && chunk_elems >= 2;
        const uint32_t chunks = splittable ? 2 : 1;
        std::vector<uint32_t> cur;
        for (uint32_t k = 0; k < chunks; ++k) {
            ScheduleDagNode nd;
            nd.step = static_cast<uint32_t>(i);
            nd.chunk = k;
            nd.chunkCount = chunks;
            nd.sliceBegin = chunk_elems * k / chunks;
            nd.sliceEnd = chunk_elems * (k + 1) / chunks;
            if (!prev.empty()) {
                if (chunks == prev_chunks && chunks > 1)
                    nd.deps.push_back(prev[k]);
                else
                    nd.deps = prev;
            }
            if (k > 0)
                nd.deps.push_back(cur[k - 1]);
            uint32_t wave = 0;
            for (uint32_t d : nd.deps)
                wave = std::max(wave, sched.dag[d].wave + 1);
            nd.wave = wave;
            cur.push_back(static_cast<uint32_t>(sched.dag.size()));
            sched.dag.push_back(std::move(nd));
        }
        prev = std::move(cur);
        prev_chunks = chunks;
    }
    uint32_t wave_count = 0;
    for (const ScheduleDagNode &nd : sched.dag)
        wave_count = std::max(wave_count, nd.wave + 1);
    sched.waves.resize(wave_count);
    for (size_t i = 0; i < sched.dag.size(); ++i)
        sched.waves[sched.dag[i].wave].push_back(
            static_cast<uint32_t>(i));
    sched.overlapped = true;
}

} // namespace

StageSchedule
compileSchedule(const NttPlan &pl, const MultiGpuSystem &sys,
                NttDirection dir, size_t element_bytes,
                const UniNttConfig &cfg, const CostConstants &costs,
                const ScheduleOptions &opts)
{
    StageSchedule sched;
    sched.logN = pl.logN;
    sched.dir = dir;
    sched.batch = opts.batch;
    sched.plan = pl;
    sched.resilient = opts.resilient;

    const unsigned orig_log_mg = opts.resume ? opts.origLogMg : pl.logMg;
    UNINTT_ASSERT(opts.resume ? opts.resilient : true,
                  "resume schedules are a resilient-execution construct");

    ScheduleBuilder b(pl, sys, element_bytes, cfg, costs, opts, sched);

    if (dir == NttDirection::Forward) {
        unsigned s = opts.resume ? opts.resumeStage : 0;
        if (s >= pl.logMg && s < orig_log_mg) {
            // The stage where degradation struck became GPU-local
            // under the shrunk sharding; run it as a one-bit pass.
            b.degradedLocalStage(s);
            ++s;
        } else {
            for (; s < pl.logMg; ++s)
                b.crossStage(s);
        }
        if (!cfg.fuseTwiddles && orig_log_mg > 0)
            b.twiddlePass("mgpu");
        b.localPhase(s, dir);
        if (opts.resilient) {
            if (opts.spotChecks > 0)
                b.spotCheckStep();
        } else if (cfg.naturalOrderOutput) {
            b.bitRevGatherStep();
        }
    } else {
        if (!opts.resume)
            b.localPhase(pl.logMg, dir);
        const int from = opts.resume ? static_cast<int>(opts.resumeStage)
                                     : static_cast<int>(pl.logMg) - 1;
        for (int s = from; s >= 0; --s) {
            if (static_cast<unsigned>(s) >= pl.logMg)
                b.degradedLocalStage(static_cast<unsigned>(s));
            else
                b.crossStage(static_cast<unsigned>(s));
        }
        if (!cfg.fuseTwiddles && orig_log_mg > 0)
            b.twiddlePass("mgpu");
        b.inverseScaleStep();
        if (opts.resilient && opts.spotChecks > 0)
            b.spotCheckStep();
    }

    // ABFT annotation: every compute step carries its checksum
    // transition — one random-linear-combination dot product per shard
    // after the step (the transition itself is a table switch between
    // precomputed boundary coefficient vectors, amortized like twiddle
    // tables). Folding the comparison cost into the step stats here is
    // what makes all three executors price the hardening tax
    // identically; only the resilient executor also performs the
    // comparison.
    if (opts.resilient && opts.abft) {
        bool first = true;
        for (ScheduleStep &st : sched.steps) {
            const bool compute = st.kind == StepKind::CrossStage ||
                                 st.kind == StepKind::LocalPass ||
                                 st.kind == StepKind::FusedLocalPass ||
                                 st.kind == StepKind::Scale;
            if (!compute)
                continue;
            st.abftCheckElems = pl.chunkElems();
            st.abftInit = first;
            // The first checked step also accumulates the initial
            // checksum over the input shards (a second dot product).
            const uint64_t passes = first ? 2 : 1;
            const uint64_t elems =
                passes * pl.chunkElems() * opts.batch;
            st.stats.fieldMuls += elems;
            st.stats.fieldAdds += elems;
            // Re-read the shard and the coefficient slab once per pass.
            st.stats.globalReadBytes += 2 * elems * element_bytes;
            first = false;
        }
    }

    // The DAG overlay only pays off (and the staging landing buffers
    // only exist) on multi-GPU plans; single-GPU schedules keep the
    // plain linear dispatch.
    if (cfg.overlapComm && pl.numGpus > 1 && !sched.steps.empty())
        buildScheduleDag(sched, pl.chunkElems());

    // Device-memory footprint: the data chunk, one exchange buffer for
    // the cross-GPU phase, and the twiddle table when it is not
    // generated on the fly.
    {
        const uint64_t n = 1ULL << pl.logN;
        DeviceMemoryModel mem(sys.gpu, sys.numGpus);
        mem.allocAll(pl.chunkElems() * element_bytes * opts.batch, "data");
        if (pl.logMg > 0)
            mem.allocAll(pl.chunkElems() * element_bytes * opts.batch,
                         "exchange-buffer");
        if (!cfg.onTheFlyTwiddles)
            mem.allocAll(n / 2 * element_bytes, "twiddle-table");
        sched.peakDeviceBytes = mem.maxPeakBytes();
    }
    return sched;
}

std::string
StageSchedule::toString() const
{
    // Per-step wave span and whether any of its waves also hosts a
    // node of a *different* step — the latter is the overlap marker.
    std::vector<std::string> wave_col(steps.size(), "-");
    std::vector<std::string> ovl_col(steps.size(), "-");
    if (overlapped && !dag.empty()) {
        std::vector<uint32_t> lo(steps.size(), UINT32_MAX);
        std::vector<uint32_t> hi(steps.size(), 0);
        for (const ScheduleDagNode &nd : dag) {
            lo[nd.step] = std::min(lo[nd.step], nd.wave);
            hi[nd.step] = std::max(hi[nd.step], nd.wave);
        }
        std::vector<bool> shares(steps.size(), false);
        for (const auto &wave : waves)
            for (uint32_t a : wave)
                for (uint32_t b : wave)
                    if (dag[a].step != dag[b].step)
                        shares[dag[a].step] = true;
        for (size_t i = 0; i < steps.size(); ++i) {
            wave_col[i] = lo[i] == hi[i]
                              ? std::to_string(lo[i])
                              : std::to_string(lo[i]) + ".." +
                                    std::to_string(hi[i]);
            ovl_col[i] = shares[i] ? "yes" : "no";
        }
    }

    bool abft_on = false;
    for (const ScheduleStep &st : steps)
        abft_on = abft_on || st.abftCheckElems != 0;

    std::ostringstream os;
    os << "schedule: 2^" << logN << " " << unintt::toString(dir)
       << " x" << batch << " on " << plan.numGpus << " gpu"
       << (plan.numGpus == 1 ? "" : "s")
       << (resilient ? (abft_on ? " (resilient+abft)" : " (resilient)")
                     : "")
       << ", " << steps.size() << " steps, peak "
       << peakDeviceBytes << " B/gpu";
    if (overlapped)
        os << ", " << waves.size() << " waves (overlap on)";
    os << "\n";
    os << std::left << std::setw(4) << "#" << std::setw(15) << "kind"
       << std::setw(11) << "level" << std::setw(34) << "name"
       << std::setw(9) << "stages" << std::setw(13) << "muls"
       << std::setw(13) << "adds" << std::setw(14) << "dram-bytes"
       << std::setw(13) << "comm-bytes" << std::setw(8) << "x-dist"
       << std::setw(8) << "wave" << "overlap" << "\n";
    for (size_t i = 0; i < steps.size(); ++i) {
        const ScheduleStep &st = steps[i];
        std::string stages = "-";
        if (st.sEnd > st.sBegin)
            stages = std::to_string(st.sBegin) + ".." +
                     std::to_string(st.sEnd);
        os << std::left << std::setw(4) << i << std::setw(15)
           << unintt::toString(st.kind) << std::setw(11)
           << unintt::toString(st.level) << std::setw(34) << st.name
           << std::setw(9) << stages << std::setw(13) << st.stats.fieldMuls
           << std::setw(13) << st.stats.fieldAdds << std::setw(14)
           << st.stats.globalBytes() << std::setw(13) << st.comm.bytesPerGpu
           << std::setw(8)
           << (st.distance != 0 ? std::to_string(st.distance) : "-")
           << std::setw(8) << wave_col[i] << ovl_col[i] << "\n";
    }
    return os.str();
}

} // namespace unintt
