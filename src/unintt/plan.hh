/**
 * @file
 * The decomposition planner: recursively factor a size-2^logN NTT over
 * the hierarchy so that every level runs the same computation at its
 * own scale.
 *
 * The plan mirrors the paper's construction:
 *
 *   NTT(2^logN) = NTT(2^logMg)  (across GPUs, butterfly exchanges)
 *               x NTT(2^r0)     (grid pass 0, per GPU)
 *               x NTT(2^r1)     (grid pass 1)
 *               x ...
 *
 * where each grid pass of r bits is itself decomposed into warp-scale
 * rounds of at most logWarp bits (shuffle sub-NTTs glued by
 * shared-memory exchanges). All inter-factor twiddles are fused into
 * butterflies (the overhead-free property), so the factorization adds
 * no extra data passes.
 */

#ifndef UNINTT_UNINTT_PLAN_HH
#define UNINTT_UNINTT_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/multi_gpu.hh"

namespace unintt {

/** One per-GPU grid pass: a sub-NTT of 2^bits executed in block tiles. */
struct GridPassPlan
{
    /** Bits of the transform this pass covers. */
    unsigned bits;
    /** Warp-scale rounds inside the tile (ceil(bits / logWarp)). */
    unsigned warpRounds;
};

/** A full hierarchical decomposition of one transform size. */
struct NttPlan
{
    /** log2 of the transform size. */
    unsigned logN = 0;
    /** Number of GPUs the transform is distributed over. */
    unsigned numGpus = 1;
    /** Bits handled by the cross-GPU butterfly phase (= log2 numGpus). */
    unsigned logMg = 0;
    /** log2 of the block-tile size (elements staged in shared memory). */
    unsigned logBlockTile = 0;
    /** log2 of the warp sub-NTT size (shuffle width). */
    unsigned logWarp = 5;
    /** Per-GPU grid passes, outermost first; bits sum to logN - logMg. */
    std::vector<GridPassPlan> passes;

    /** Elements per GPU. */
    uint64_t
    chunkElems() const
    {
        return (1ULL << logN) / numGpus;
    }

    /** Total local bits, i.e. logN - logMg. */
    unsigned
    localBits() const
    {
        return logN - logMg;
    }

    /** "2^24 = mgpu(2) * pass(11) * pass(11)" style description. */
    std::string toString() const;
};

/**
 * Build the decomposition for a transform of size 2^logN on @p sys.
 * Fatal (user error) if the size does not fit the machine or is
 * smaller than the GPU count.
 *
 * @param logN          log2 transform size.
 * @param sys           target machine.
 * @param element_bytes field element footprint.
 */
NttPlan planNtt(unsigned logN, const MultiGpuSystem &sys,
                size_t element_bytes);

/**
 * planNtt with the block-tile size pinned to 2^force_log_tile instead
 * of the capacity-derived choice (tile-size sensitivity studies;
 * bench/fig16_tile_size). Pass 0 to defer to the planner.
 */
NttPlan planNttWithTile(unsigned logN, const MultiGpuSystem &sys,
                        size_t element_bytes, unsigned force_log_tile);

} // namespace unintt

#endif // UNINTT_UNINTT_PLAN_HH
