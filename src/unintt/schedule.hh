/**
 * @file
 * The compiled stage-schedule IR of the UniNTT engine.
 *
 * A plan (plan.hh) describes the hierarchical factorization of one
 * transform; compileSchedule lowers it into a StageSchedule — an
 * ordered list of typed steps, each carrying the precomputed event
 * counters (KernelStats/CommStats), the interconnect distance of its
 * exchange, and the twiddle slice its butterflies read. The schedule is
 * the single source of truth for *what* a transform does; the
 * executors (executors.hh) only decide *how* each step runs (analytic
 * pricing, bit-exact host execution, or resilient execution with the
 * fault machinery), so the three entry points of the engine can never
 * drift apart.
 *
 * Steps are stored with unpriced counters: pricing (PerfModel,
 * Interconnect) happens at dispatch time. This keeps the schedule a
 * pure function of the plan inputs plus the optimization toggles and
 * cost constants, which is what makes it cacheable (ScheduleCache,
 * cache.hh).
 *
 * Step order is dataflow order: an Exchange step precedes the
 * CrossStage butterflies that consume the received chunk. Executors
 * preserve the report's historical phase order (compute first, then
 * the exchange with its overlap split) by holding the pending Exchange
 * until its CrossStage has been priced.
 *
 * When comm overlap is enabled the schedule additionally carries a
 * dependency DAG *overlay* (the step list itself is untouched): every
 * step is covered by one or more ScheduleDagNodes, Exchange/CrossStage
 * steps are split into double-buffered half-chunk nodes, and nodes are
 * levelled into waves by longest dependency path. The chunk-aligned
 * edges between an exchange and the butterflies that feed/consume it
 * stagger the waves so that the copy of chunk k+1 shares a wave with
 * the butterflies of chunk k — that shared wave is what the executors
 * overlap (price as max(comm, compute); run concurrently on the host
 * pool).
 */

#ifndef UNINTT_UNINTT_SCHEDULE_HH
#define UNINTT_UNINTT_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ntt/ntt.hh"
#include "sim/kernel_stats.hh"
#include "sim/multi_gpu.hh"
#include "unintt/config.hh"
#include "unintt/plan.hh"

namespace unintt {

/** The step taxonomy of the IR. */
enum class StepKind
{
    /** Pairwise cross-GPU chunk exchange feeding a CrossStage. */
    Exchange,
    /** Butterflies of one cross-GPU stage (after its Exchange). */
    CrossStage,
    /** One grid pass: butterflies of a GPU-local stage range. */
    LocalPass,
    /**
     * A tile-fused group of consecutive local stages: each
     * 2^tileLog2-element tile is loaded once, every stage of the group
     * runs in-tile, and the tile is written back once. Same butterfly
     * coverage as the LocalPass steps it replaces, fewer global round
     * trips.
     */
    FusedLocalPass,
    /**
     * Elementwise pass: an explicit twiddle pass (fusion off) or the
     * inverse n^-1 scaling.
     */
    Scale,
    /** Post-transform verification against a direct evaluation. */
    SpotCheck,
    /** Global bit-reversal gather producing natural-order output. */
    BitRevGather,
};

/** Hierarchy level a step executes at. */
enum class ExecLevel
{
    Warp,
    Block,
    Gpu,
    MultiGpu,
    Node,
};

const char *toString(StepKind kind);
const char *toString(ExecLevel level);

/** One typed step of a compiled schedule. */
struct ScheduleStep
{
    StepKind kind;
    ExecLevel level;
    /** Exact phase name this step emits into the SimReport. */
    std::string name;

    /** Stage range [sBegin, sEnd) covered (butterfly steps). */
    unsigned sBegin = 0;
    unsigned sEnd = 0;
    /** Grid-pass shape (LocalPass / FusedLocalPass). */
    GridPassPlan pass{0, 0};
    /** log2 of the resident tile (FusedLocalPass only). */
    unsigned tileLog2 = 0;
    /** Partner gap in GPU indices (Exchange/CrossStage). */
    unsigned distance = 0;
    /** Hop distance on the fabric actually used. */
    unsigned effectiveDistance = 0;
    /** True iff the exchange crosses node boundaries. */
    bool crossesNodes = false;
    /** True for a cross stage executed locally after degradation. */
    bool degraded = false;
    /** True for the Scale step that applies the inverse n^-1 factor. */
    bool applyInverseScale = false;

    /** Twiddle slice: the butterflies read tw[j * twiddleStride]. */
    uint64_t twiddleStride = 0;
    /** Distinct twiddles the slice spans (0 = none). */
    uint64_t twiddleCount = 0;

    /**
     * ABFT annotation: per-GPU elements folded into the post-step
     * random-linear-combination checksum comparison (0 = the step has
     * no ABFT transition — non-compute steps, or ABFT off). The O(n)
     * cost of the comparison is already included in @p stats, so every
     * executor prices the hardening tax identically; the resilient
     * executor additionally performs the comparison and the tile
     * localization it enables.
     */
    uint64_t abftCheckElems = 0;
    /**
     * True on the first ABFT-checked step: it also pays the initial
     * checksum accumulation over the input shards (priced in stats).
     */
    bool abftInit = false;

    /** Unpriced per-GPU event counters of the step's kernel. */
    KernelStats stats;
    /** Unpriced communication counters (Exchange/BitRevGather). */
    CommStats comm;
};

/**
 * One node of the dependency-DAG overlay. A node covers the element
 * slice [sliceBegin, sliceEnd) of every per-GPU chunk touched by its
 * step; unsplit steps have a single node spanning the whole chunk.
 * Edges always point at earlier nodes (deps[i] < its own index), so
 * the overlay is acyclic by construction.
 */
struct ScheduleDagNode
{
    /** Index into StageSchedule::steps. */
    uint32_t step = 0;
    /** Chunk index within the step (double buffering parity). */
    uint32_t chunk = 0;
    /** Chunks the step was split into (1 = unsplit). */
    uint32_t chunkCount = 1;
    /** Element slice [begin, end) of each per-GPU chunk. */
    uint64_t sliceBegin = 0;
    uint64_t sliceEnd = 0;
    /** Wave index: longest dependency path from a root. */
    uint32_t wave = 0;
    /** Predecessor node indices (all < this node's index). */
    std::vector<uint32_t> deps;
};

/** A fully compiled transform: the ordered step list plus metadata. */
struct StageSchedule
{
    unsigned logN = 0;
    NttDirection dir = NttDirection::Forward;
    size_t batch = 1;
    /** The plan this schedule was lowered from. */
    NttPlan plan;
    /** Per-GPU peak device-memory footprint of the transform. */
    uint64_t peakDeviceBytes = 0;
    /** True iff compiled with the resilience additions. */
    bool resilient = false;
    std::vector<ScheduleStep> steps;

    /**
     * True iff the DAG overlay was built (cfg.overlapComm with a
     * multi-GPU plan): executors dispatch wave-by-wave instead of
     * step-by-step.
     */
    bool overlapped = false;
    /** The DAG overlay; empty when overlapped is false. */
    std::vector<ScheduleDagNode> dag;
    /** Node indices grouped by wave, waves in execution order. */
    std::vector<std::vector<uint32_t>> waves;

    /** Human-readable step table (unintt-cli schedule). */
    std::string toString() const;
};

/** Compile-time options beyond the plan itself. */
struct ScheduleOptions
{
    /** Batch multiplier applied to data-proportional counters. */
    size_t batch = 1;
    /**
     * Compile for resilient execution: cross stages carry the
     * checksum generation/verification adds, and a SpotCheck step is
     * appended when spotChecks > 0.
     */
    bool resilient = false;
    /** Spot checks of the appended SpotCheck step (resilient only). */
    unsigned spotChecks = 0;
    /**
     * Annotate compute steps with their ABFT checksum transition and
     * fold the O(n) comparison cost into their stats (resilient only;
     * mirrors ResilienceConfig::abft).
     */
    bool abft = false;
    /**
     * Resume compilation after a mid-run degradation: emit only the
     * steps from @p resumeStage onward (forward: upward from it;
     * inverse: downward from it, the local passes already ran).
     */
    bool resume = false;
    unsigned resumeStage = 0;
    /**
     * logMg of the original (pre-degradation) plan; gates the explicit
     * mgpu twiddle pass, which the un-fused algorithm owes whenever
     * the transform *started* with cross-GPU stages.
     */
    unsigned origLogMg = 0;
};

/**
 * Lower @p pl into a schedule for one direction. @p element_bytes is
 * the field element footprint (the only field property the counters
 * depend on). The full (non-resume) compile covers every stage; see
 * ScheduleOptions for the resilient/resume variants.
 */
StageSchedule compileSchedule(const NttPlan &pl, const MultiGpuSystem &sys,
                              NttDirection dir, size_t element_bytes,
                              const UniNttConfig &cfg,
                              const CostConstants &costs,
                              const ScheduleOptions &opts = {});

/** Event counters of one cross-GPU stage (per GPU). */
KernelStats crossStageEventStats(uint64_t chunk, size_t batch,
                                 size_t element_bytes,
                                 const UniNttConfig &cfg,
                                 const CostConstants &costs);

/** Event counters of one grid pass (per GPU). */
KernelStats gridPassEventStats(uint64_t chunk, const GridPassPlan &pass,
                               size_t batch, size_t element_bytes,
                               const UniNttConfig &cfg,
                               const CostConstants &costs);

/** Event counters of one explicit twiddle pass (fusion off). */
KernelStats twiddlePassEventStats(uint64_t chunk, size_t batch,
                                  size_t element_bytes);

} // namespace unintt

#endif // UNINTT_UNINTT_SCHEDULE_HH
