/**
 * @file
 * Host-side result caches of the UniNTT front end.
 *
 * PlanCache memoizes the decomposition planner: batch benches and
 * prover loops run thousands of transforms of identical shape, and
 * while one planNtt call is cheap, re-deriving the plan (and, on the
 * engine's functional path, the twiddle table — see
 * ntt/twiddle_cache.hh for that half) on every transform adds a
 * constant per-call tax the paper's real GPU runtimes do not pay.
 *
 * The cache key is everything the planner reads: the transform size,
 * the GPU count, the element footprint (the field), the forced tile
 * override, and the per-GPU limits of the hardware model. Entries are
 * LRU-evicted beyond a fixed bound; lookups are mutex-protected so the
 * cache can be shared by concurrent host threads.
 */

#ifndef UNINTT_UNINTT_CACHE_HH
#define UNINTT_UNINTT_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>

#include "ntt/twiddle_cache.hh"
#include "sim/multi_gpu.hh"
#include "unintt/plan.hh"
#include "unintt/schedule.hh"

namespace unintt {

/** Thread-safe LRU memo of planNttWithTile results. */
class PlanCache
{
  public:
    explicit PlanCache(size_t max_entries = 64)
        : maxEntries_(max_entries)
    {
    }

    /**
     * The plan for a 2^logN transform on @p sys, computed on the first
     * request with planNttWithTile and replayed afterwards. @p hit_out
     * (optional) reports whether this call was served from the cache.
     * Invalid sizes are fatal exactly as in planNttWithTile (the
     * planner runs before anything is inserted).
     */
    NttPlan get(unsigned logN, const MultiGpuSystem &sys,
                size_t element_bytes, unsigned force_log_tile,
                bool *hit_out = nullptr);

    /** Drop every cached plan (cold-cache tests). Counters persist. */
    void clear();

    /** Lifetime hit/miss counters. */
    CacheCounters counters() const;

    /** Cached plans currently resident. */
    size_t size() const;

    /** The process-wide instance. */
    static PlanCache &global();

  private:
    /** Exactly the planner inputs; equality means the plans match. */
    struct Key
    {
        unsigned logN;
        unsigned numGpus;
        size_t elementBytes;
        unsigned forceLogTile;
        unsigned maxThreadsPerBlock;
        uint64_t smemBytesPerBlock;
        unsigned warpSize;
        uint64_t dramCapacityBytes;

        bool operator==(const Key &) const = default;
    };

    struct Entry
    {
        Key key;
        NttPlan plan;
    };

    mutable std::mutex mutex_;
    std::list<Entry> lru_; // front = most recently used
    size_t maxEntries_;
    CacheCounters counters_;
};

/**
 * Thread-safe LRU memo of compiled stage schedules (schedule.hh).
 *
 * A schedule stores unpriced event counters, so it is a pure function
 * of the plan inputs plus the optimization toggles, the cost constants
 * and the batch size — GPU clock and fabric parameters price the steps
 * at dispatch time and stay out of the key. Only plain (non-resilient,
 * non-resume) schedules are cached; resilient runs recompile after
 * every degradation and are the cold path by definition.
 */
class ScheduleCache
{
  public:
    explicit ScheduleCache(size_t max_entries = 64)
        : maxEntries_(max_entries)
    {
    }

    /**
     * The compiled schedule of @p pl for one direction and batch size,
     * compiled on the first request and replayed afterwards. The plan
     * must come from the same inputs (PlanCache guarantees this on the
     * engine path). @p hit_out (optional) reports cache service.
     */
    std::shared_ptr<const StageSchedule>
    get(const NttPlan &pl, const MultiGpuSystem &sys, NttDirection dir,
        size_t element_bytes, const UniNttConfig &cfg,
        const CostConstants &costs, size_t batch,
        bool *hit_out = nullptr, bool tuned = false);

    /** Drop every cached schedule. Counters persist. */
    void clear();

    /** Lifetime hit/miss counters. */
    CacheCounters counters() const;

    /** Cached schedules currently resident. */
    size_t size() const;

    /** The process-wide instance. */
    static ScheduleCache &global();

  private:
    /** Everything compileSchedule reads (for the plain variant). */
    struct Key
    {
        unsigned logN;
        unsigned numGpus;
        unsigned gpusPerNode;
        int dir;
        size_t elementBytes;
        size_t batch;
        unsigned forceLogTile;
        bool fuseTwiddles;
        bool onTheFlyTwiddles;
        bool paddedSmem;
        bool warpShuffle;
        bool naturalOrderOutput;
        bool fuseLocalPasses;
        /**
         * Overlap gates the DAG overlay: a linear schedule must never
         * be served to a wave dispatch (or vice versa).
         */
        bool overlapComm;
        unsigned hostTileLog2;
        /**
         * Resolved acceleration path (field/dispatch.hh): the fused
         * tile floor depends on the active lane width, so schedules
         * compiled under different paths must never alias.
         */
        unsigned isaPath;
        /**
         * Tuning-DB provenance: a schedule compiled from a DB entry
         * must never alias a heuristic one (or vice versa), even when
         * today's knobs happen to coincide — a DB refresh changes the
         * tuned side without touching the heuristic side.
         */
        bool tuned;
        double twiddleTableDramFraction;
        double onTheFlyExtraMuls;
        double unpaddedConflictReplays;
        unsigned maxThreadsPerBlock;
        uint64_t smemBytesPerBlock;
        unsigned warpSize;
        uint64_t dramCapacityBytes;
        unsigned dramSectorBytes;

        bool operator==(const Key &) const = default;
    };

    struct Entry
    {
        Key key;
        std::shared_ptr<const StageSchedule> schedule;
    };

    mutable std::mutex mutex_;
    std::list<Entry> lru_; // front = most recently used
    size_t maxEntries_;
    CacheCounters counters_;
};

} // namespace unintt

#endif // UNINTT_UNINTT_CACHE_HH
