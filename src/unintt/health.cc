#include "unintt/health.hh"

#include <sstream>

#include "util/logging.hh"

namespace unintt {

const char *
toString(DeviceHealth state)
{
    switch (state) {
      case DeviceHealth::Healthy:
        return "HEALTHY";
      case DeviceHealth::Suspect:
        return "SUSPECT";
      case DeviceHealth::Quarantined:
        return "QUARANTINED";
      case DeviceHealth::Probation:
        return "PROBATION";
    }
    return "?";
}

DeviceHealthTracker::DeviceHealthTracker(unsigned num_devices,
                                         HealthPolicy policy)
    : policy_(policy), devices_(num_devices)
{
    UNINTT_ASSERT(num_devices > 0, "need at least one device");
    UNINTT_ASSERT(policy_.suspectAfterFaults > 0 &&
                      policy_.quarantineAfterFaults >=
                          policy_.suspectAfterFaults,
                  "fault thresholds must be ordered and positive");
}

DeviceHealth
DeviceHealthTracker::state(unsigned device) const
{
    UNINTT_ASSERT(device < devices_.size(), "device index out of range");
    return devices_[device].state;
}

void
DeviceHealthTracker::quarantine(Device &dev)
{
    dev.state = DeviceHealth::Quarantined;
    dev.quarantineRuns = 0;
    dev.probationRuns = 0;
    dev.cleanRuns = 0;
    quarantineEvents_++;
}

void
DeviceHealthTracker::recordFault(unsigned device)
{
    UNINTT_ASSERT(device < devices_.size(), "device index out of range");
    Device &dev = devices_[device];
    dev.faultedThisRun = true;
    dev.faultEvents++;
    dev.cleanRuns = 0;
    switch (dev.state) {
      case DeviceHealth::Quarantined:
        // Should be excluded from plans, but a fault observed anyway
        // (e.g. during the run that discovered it) restarts the
        // cool-down.
        dev.quarantineRuns = 0;
        return;
      case DeviceHealth::Probation:
        // One strike on probation: straight back to quarantine, and
        // the fault score stays at the quarantine threshold so the
        // next probation is just as fragile.
        quarantine(dev);
        return;
      case DeviceHealth::Healthy:
      case DeviceHealth::Suspect:
        dev.faultScore++;
        if (dev.faultScore >= policy_.quarantineAfterFaults)
            quarantine(dev);
        else if (dev.faultScore >= policy_.suspectAfterFaults)
            dev.state = DeviceHealth::Suspect;
        return;
    }
}

void
DeviceHealthTracker::recordDeviceLost(unsigned device)
{
    UNINTT_ASSERT(device < devices_.size(), "device index out of range");
    Device &dev = devices_[device];
    dev.faultedThisRun = true;
    dev.faultEvents++;
    dev.lost = !policy_.readmitLostDevices;
    dev.faultScore = policy_.quarantineAfterFaults;
    if (dev.state != DeviceHealth::Quarantined)
        quarantine(dev);
    else
        dev.quarantineRuns = 0;
}

void
DeviceHealthTracker::endRun()
{
    runsObserved_++;
    for (auto &dev : devices_) {
        const bool clean = !dev.faultedThisRun;
        dev.faultedThisRun = false;
        switch (dev.state) {
          case DeviceHealth::Healthy:
            break;
          case DeviceHealth::Suspect:
            if (clean && ++dev.cleanRuns >= policy_.suspectDecayRuns) {
                dev.state = DeviceHealth::Healthy;
                dev.faultScore = 0;
                dev.cleanRuns = 0;
            }
            break;
          case DeviceHealth::Quarantined:
            if (dev.lost)
                break; // permanent: the cool-down never elapses
            if (++dev.quarantineRuns >= policy_.probationAfterRuns) {
                dev.state = DeviceHealth::Probation;
                dev.probationRuns = 0;
            }
            break;
          case DeviceHealth::Probation:
            if (clean &&
                ++dev.probationRuns >= policy_.probationCleanRuns) {
                dev.state = DeviceHealth::Healthy;
                dev.faultScore = 0;
                dev.probationRuns = 0;
            }
            break;
        }
    }
}

uint64_t
DeviceHealthTracker::faultEvents(unsigned device) const
{
    UNINTT_ASSERT(device < devices_.size(), "device index out of range");
    return devices_[device].faultEvents;
}

bool
DeviceHealthTracker::isLost(unsigned device) const
{
    UNINTT_ASSERT(device < devices_.size(), "device index out of range");
    return devices_[device].lost;
}

bool
DeviceHealthTracker::usable(unsigned device) const
{
    return state(device) != DeviceHealth::Quarantined;
}

std::vector<unsigned>
DeviceHealthTracker::usableDevices() const
{
    std::vector<unsigned> out;
    for (unsigned d = 0; d < devices_.size(); ++d)
        if (usable(d))
            out.push_back(d);
    return out;
}

unsigned
DeviceHealthTracker::usableCount() const
{
    unsigned n = 0;
    for (unsigned d = 0; d < devices_.size(); ++d)
        if (usable(d))
            ++n;
    return n;
}

unsigned
DeviceHealthTracker::usablePowerOfTwo() const
{
    unsigned n = usableCount();
    unsigned p = 0;
    while ((2u << p) <= n && p + 1 < 32)
        ++p;
    return n == 0 ? 0 : 1u << p;
}

std::string
DeviceHealthTracker::toString() const
{
    std::ostringstream os;
    for (unsigned d = 0; d < devices_.size(); ++d) {
        if (d)
            os << ' ';
        os << d << ':' << unintt::toString(devices_[d].state);
    }
    return os.str();
}

} // namespace unintt
