/**
 * @file
 * Step executors: the interpreters of the stage-schedule IR
 * (schedule.hh).
 *
 * The executor contract: an executor consumes ScheduleSteps in order
 * via onStep() and appends the step's phases to a SimReport. It may
 * return a non-ok Status (aborting the run) or request a reschedule
 * (the dispatch loop swaps in the executor's recompiled schedule and
 * restarts from its first step — how mid-run degradation re-plans the
 * remaining stages).
 *
 *  - AnalyticStepExecutor prices each step's precomputed counters
 *    without touching data (analyticRun).
 *  - FunctionalStepExecutor additionally executes the bit-exact field
 *    arithmetic on the host pool, then defers to the analytic pricing
 *    — the timeline is identical by construction.
 *  - ResilientStepExecutor decorates the functional execution of a
 *    single transform with the fault machinery: checksummed exchanges,
 *    bounded-backoff retries, the straggler watchdog, degraded-mode
 *    re-plans, and the post-transform spot check. Resilience decorates
 *    the step dispatch; it does not fork the stage loops.
 *
 * Phase-order note: the IR lists an Exchange before the CrossStage
 * that consumes it (dataflow order), while the report historically
 * shows compute first and the exchange second (with the overlap split
 * computed against that compute). Executors therefore hold the pending
 * Exchange and emit its comm phase right after pricing the paired
 * CrossStage.
 */

#ifndef UNINTT_UNINTT_EXECUTORS_HH
#define UNINTT_UNINTT_EXECUTORS_HH

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "field/dispatch.hh"
#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/twiddle.hh"
#include "ntt/twiddle_cache.hh"
#include "sim/fault.hh"
#include "sim/multi_gpu.hh"
#include "sim/perf_model.hh"
#include "sim/report.hh"
#include "unintt/abft.hh"
#include "unintt/config.hh"
#include "unintt/distributed.hh"
#include "unintt/health.hh"
#include "unintt/schedule.hh"
#include "unintt/verify.hh"
#include "util/bitops.hh"
#include "util/checksum.hh"
#include "util/logging.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

namespace unintt {

/** Outcome of executing one step. */
struct StepAction
{
    Status status;
    /**
     * When true, the dispatch loop replaces the schedule with the
     * executor's recompiled one and restarts at its first step.
     */
    bool reschedule = false;
};

/**
 * Run @p sched through @p exec. The single interpreter loop shared by
 * run(), analyticRun() and runResilient().
 *
 * Overlapped schedules (a non-empty DAG overlay, schedule.hh) dispatch
 * wave by wave: every node of a wave is ready (all dependencies ran in
 * earlier waves), so the executor may run the wave's exchange chunks
 * and butterfly chunks concurrently. Linear schedules keep the
 * historical barrier-per-step loop. A reschedule swaps in the
 * executor's recompiled schedule and restarts it from the top in
 * whichever mode that schedule carries.
 */
template <typename Exec>
Status
dispatchSchedule(std::shared_ptr<const StageSchedule> sched, Exec &exec)
{
    for (;;) {
        bool rescheduled = false;
        if (sched->overlapped && !sched->waves.empty()) {
            for (size_t w = 0; w < sched->waves.size(); ++w) {
                StepAction act = exec.onWave(*sched, w);
                if (!act.status.ok())
                    return act.status;
                if (act.reschedule) {
                    sched = exec.reschedule();
                    UNINTT_ASSERT(sched != nullptr,
                                  "reschedule returned nothing");
                    rescheduled = true;
                    break;
                }
            }
        } else {
            for (size_t i = 0; i < sched->steps.size(); ++i) {
                StepAction act = exec.onStep(sched->steps[i]);
                if (!act.status.ok())
                    return act.status;
                if (act.reschedule) {
                    sched = exec.reschedule();
                    UNINTT_ASSERT(sched != nullptr,
                                  "reschedule returned nothing");
                    rescheduled = true;
                    break;
                }
            }
        }
        if (!rescheduled)
            return Status();
    }
}

// ---------------------------------------------------------------------
// Shared functional kernels (bit-exact host execution).
// ---------------------------------------------------------------------

/**
 * hostParallelFor cost hint of @p butterflies radix-2 butterflies:
 * a forward butterfly is 2 adds + 1 mul (~3 unit ops), an inverse one
 * pays an extra mul for the pre-multiplied twiddle (~4). Unified here
 * so every kernel reports the same units and the pool's serial
 * threshold splits work consistently in both directions.
 */
constexpr uint64_t
kernelCost(uint64_t butterflies, NttDirection dir)
{
    return butterflies * (dir == NttDirection::Forward ? 3 : 4);
}

/**
 * Lane-aware cost hint: a vector kernel path retires @p lanes
 * butterflies per step, so the per-unit work the pool's serial
 * threshold sees shrinks accordingly. lanes == 1 reproduces the
 * scalar hint exactly; the hint never collapses to zero for nonzero
 * work.
 */
constexpr uint64_t
kernelCost(uint64_t butterflies, NttDirection dir, unsigned lanes)
{
    const uint64_t c =
        kernelCost(butterflies, dir) / (lanes > 0 ? lanes : 1);
    return butterflies > 0 && c == 0 ? 1 : c;
}

/** Functional butterflies of one cross-GPU stage. */
template <NttField F>
void
crossStageCompute(DistributedVector<F> &data, unsigned s, unsigned logN,
                  const TwiddleSlabs<F> &slabs, NttDirection dir,
                  unsigned lanes,
                  const FieldKernels<F> &fk = fieldKernels<F>())
{
    const unsigned G = data.numGpus();
    const unsigned logMg = log2Exact(G);
    const uint64_t n = 1ULL << logN;
    const uint64_t C = n / G;
    const unsigned partner_gap = 1u << (logMg - s - 1); // in GPU indices

    // Lower-half GPUs of the exchanging pairs. Every pair touches only
    // its own two chunks, so the pairs — further sliced along the chunk
    // when there are fewer pairs than host lanes — execute concurrently
    // on the pool; writes are disjoint across work units, so the result
    // is bit-identical for every thread count.
    std::vector<unsigned> lows;
    lows.reserve(G / 2);
    for (unsigned g = 0; g < G; ++g)
        if ((g / partner_gap) % 2 == 0)
            lows.push_back(g);

    uint64_t slices = 1;
    if (lanes > 1 && lows.size() < lanes)
        slices = std::min<uint64_t>(
            C, (2ULL * lanes + lows.size() - 1) / lows.size());

    // Compacted stage slab: tws[j] == full_table[j << s], unit stride.
    const F *tws = slabs.slab(s);
    hostParallelFor(
        lows.size() * slices, kernelCost(C / slices, dir, fk.lanes),
        lanes, [&](size_t unit) {
            const unsigned g = lows[unit / slices];
            const uint64_t slice = unit % slices;
            const uint64_t c0 = C * slice / slices;
            const uint64_t c1 = C * (slice + 1) / slices;
            auto &lo = data.chunk(g);
            auto &hi = data.chunk(g + partner_gap);
            // Position of this GPU's chunk inside the half-block.
            const uint64_t j0 =
                static_cast<uint64_t>(g % partner_gap) * C;
            if (dir == NttDirection::Forward)
                fk.bflyFwd(lo.data() + c0, hi.data() + c0,
                           tws + j0 + c0, 1, c1 - c0);
            else
                fk.bflyInv(lo.data() + c0, hi.data() + c0,
                           tws + j0 + c0, 1, c1 - c0);
        });
}

/**
 * Stage the element slice [c0, c1) of an exchanging pair into the
 * partner's landing slab: @p land_lo receives the upper chunk's slice,
 * @p land_hi the lower's. The landing slabs are the functional stand-in
 * for the double-buffered exchange buffer of the device memory model;
 * each chunk parity writes its own half, so in-flight chunks never
 * alias their partner buffer.
 */
template <NttField F>
inline void
exchangePairSliceCopy(const F *lo, const F *hi, F *land_lo, F *land_hi,
                      uint64_t c0, uint64_t c1)
{
    std::copy(hi + c0, hi + c1, land_lo + c0);
    std::copy(lo + c0, lo + c1, land_hi + c0);
}

/**
 * Butterflies of one exchanging pair over the element slice [c0, c1),
 * reading the *received* values from the landing slabs (@p rlo holds
 * what lo received — the partner's original values — and @p rhi what
 * hi received). Arithmetically this multiplies and adds exactly the
 * same canonical representations as crossStageCompute's direct
 * partner-chunk reads, so the output is bit-identical; reading only
 * the landing copies is what lets a chunk's butterflies run while the
 * *other* chunk's exchange is still in flight.
 */
template <NttField F>
inline void
crossPairSliceCompute(F *lo, F *hi, const F *rlo, const F *rhi,
                      const F *tws, uint64_t j0, uint64_t c0, uint64_t c1,
                      NttDirection dir,
                      const FieldKernels<F> &fk = fieldKernels<F>())
{
    if (dir == NttDirection::Forward)
        fk.bflyRecvFwd(lo + c0, hi + c0, rlo + c0, rhi + c0,
                       tws + j0 + c0, c1 - c0);
    else
        fk.bflyRecvInv(lo + c0, hi + c0, rlo + c0, rhi + c0,
                       tws + j0 + c0, c1 - c0);
}

/** Lower-half GPU of exchanging pair @p pair at partner gap @p gap. */
constexpr unsigned
pairLowGpu(unsigned pair, unsigned gap)
{
    return (pair / gap) * 2 * gap + (pair % gap);
}

/** Functional butterflies of local stages [s_begin, s_end). */
template <NttField F>
void
localStagesCompute(DistributedVector<F> &data, unsigned s_begin,
                   unsigned s_end, unsigned logN,
                   const TwiddleSlabs<F> &slabs, NttDirection dir,
                   unsigned lanes,
                   const FieldKernels<F> &fk = fieldKernels<F>())
{
    const uint64_t n = 1ULL << logN;
    const unsigned G = data.numGpus();
    const uint64_t C = data.chunkSize();

    // Stage order: DIF descends (strides shrink), DIT ascends.
    std::vector<unsigned> stages;
    for (unsigned s = s_begin; s < s_end; ++s)
        stages.push_back(s);
    if (dir == NttDirection::Inverse)
        std::reverse(stages.begin(), stages.end());

    // One fork/join per stage: within a stage every butterfly block is
    // independent, so (gpu, block, j-slice) tuples fan out over the
    // pool and the join is the barrier the next stage needs. Work units
    // write disjoint element ranges, which keeps the output
    // bit-identical for every thread count.
    for (unsigned s : stages) {
        const uint64_t half = n >> (s + 1);
        UNINTT_ASSERT(2 * half <= C, "stage is not GPU-local");
        const uint64_t block = 2 * half;
        const uint64_t blocks_per_gpu = C / block;
        const uint64_t units =
            static_cast<uint64_t>(G) * blocks_per_gpu;
        uint64_t jslices = 1;
        if (lanes > 1 && units < lanes)
            jslices = std::min<uint64_t>(
                half, (2ULL * lanes + units - 1) / units);

        const F *tws = slabs.slab(s); // tws[j] == full_table[j << s]
        hostParallelFor(
            units * jslices,
            kernelCost(half / jslices, dir, fk.lanes), lanes,
            [&](size_t u) {
                const uint64_t unit = u / jslices;
                const uint64_t slice = u % jslices;
                const unsigned g =
                    static_cast<unsigned>(unit / blocks_per_gpu);
                const uint64_t start =
                    (unit % blocks_per_gpu) * block;
                const uint64_t jb = half * slice / jslices;
                const uint64_t je = half * (slice + 1) / jslices;
                auto &chunk = data.chunk(g);
                F *p0 = chunk.data() + start + jb;
                if (dir == NttDirection::Forward)
                    fk.bflyFwd(p0, p0 + half, tws + jb, 1, je - jb);
                else
                    fk.bflyInv(p0, p0 + half, tws + jb, 1, je - jb);
            });
    }
}

/**
 * Run butterfly stages [s0, s1) of a size-n transform over one column
 * slab of a stage-coupled super-block held in @p buf:
 * buf[r * row_stride + w] is the element at row r, column col0 + w of
 * the (2^(s1-s0) x h1) super-block matrix, h1 = n >> s1. Stage s pairs
 * rows at distance 2^(s1-s-1); its twiddle for (row r, column c) is
 * slab(s)[(r mod 2^(s1-s)) * h1 + c], the row residue being below the
 * pair distance. Forward fuses stage pairs into the radix-4 butterfly
 * of radix4.hh rewritten onto the compacted slabs (the tw[2e]/tw[3e]
 * reads become slab(s+1)[j] and the sign-folded slab(s)[3j]), plus a
 * trailing radix-2 stage when the group has an odd stage count; the
 * inverse runs radix-2 DIT with the stage order reversed. Exact field
 * arithmetic on canonical representations makes both bit-identical to
 * running the stages separately.
 */
template <NttField F>
void
fusedTileStages(F *buf, size_t row_stride, size_t cols, size_t col0,
                size_t h1, unsigned s0, unsigned s1,
                const TwiddleSlabs<F> &slabs, NttDirection dir,
                const FieldKernels<F> &fk = fieldKernels<F>())
{
    const size_t rows = size_t{1} << (s1 - s0);
    if (dir == NttDirection::Forward) {
        const F im = slabs.fourthRoot(); // root^(n/4) of the radix-4 step
        unsigned s = s0;
        for (; s + 2 <= s1; s += 2) {
            const size_t d = size_t{1} << (s1 - s - 2);
            const F *tw0 = slabs.slab(s);
            const F *tw1 = slabs.slab(s + 1);
            const size_t hs = slabs.count(s);
            for (size_t q = 0; q < rows; q += 4 * d) {
                for (size_t rq = 0; rq < d; ++rq) {
                    F *r0 = buf + (q + rq) * row_stride;
                    F *r1 = r0 + d * row_stride;
                    F *r2 = r1 + d * row_stride;
                    F *r3 = r2 + d * row_stride;
                    // The kernel folds the tw0[3j] wrap past hs as
                    // (t13m - t02m) * tw0[3j - hs] — the same values
                    // the branchy form multiplies (w^(hs<<s) = -1 and
                    // (-a)*b == a*(-b) on canonical representations),
                    // so the bytes cannot differ.
                    fk.r4Fwd(r0, r1, r2, r3, tw0, tw1, im,
                             rq * h1 + col0, hs, cols);
                }
            }
        }
        if (s < s1) {
            // Trailing radix-2 stage of an odd group: s == s1 - 1, so
            // the pair distance is one row and the slab index is the
            // column alone.
            const F *tws = slabs.slab(s);
            for (size_t q = 0; q < rows; q += 2) {
                F *r0 = buf + q * row_stride;
                F *r1 = r0 + row_stride;
                fk.bflyFwd(r0, r1, tws + col0, 1, cols);
            }
        }
    } else {
        for (unsigned s = s1; s-- > s0;) {
            const size_t d = size_t{1} << (s1 - s - 1);
            const F *tws = slabs.slab(s);
            for (size_t q = 0; q < rows; q += 2 * d) {
                for (size_t rq = 0; rq < d; ++rq) {
                    F *r0 = buf + (q + rq) * row_stride;
                    F *r1 = r0 + d * row_stride;
                    fk.bflyInv(r0, r1, tws + rq * h1 + col0, 1, cols);
                }
            }
        }
    }
}

/**
 * fusedTileStages specialized to a full contiguous super-block
 * (row_stride == h1, cols == h1, col0 == 0). The row/column loops
 * collapse: at stage s the butterfly half-span is SB >> (s-s0+1)
 * contiguous elements and the twiddle index equals the flat offset
 * within the block, so every inner loop walks both data and slab at
 * unit stride with no per-row pointer arithmetic. Same butterflies,
 * same exact arithmetic — bit-identical to the general form; this is
 * the shape the in-place (unsliced) dispatch uses because the general
 * form's inner width collapses to h1 (often 1) for late-stage groups.
 */
template <NttField F>
void
fusedSpanStages(F *buf, size_t sb_elems, unsigned s0, unsigned s1,
                const TwiddleSlabs<F> &slabs, NttDirection dir,
                const FieldKernels<F> &fk = fieldKernels<F>(),
                unsigned max_radix_log2 = 3)
{
    if (dir == NttDirection::Forward) {
        const F im = slabs.fourthRoot();
        unsigned s = s0;
        size_t span = sb_elems; // independent block span at stage s
        // Radix-8 primary loop: three stages per sweep, applied in
        // registers exactly as the per-stage path would (stage s,
        // then s+1, then s+2), so the result is bit-identical by
        // construction. Every twiddle index is a plain block-local
        // offset and stays inside its slab — no wrap handling. One
        // load+store per element per *three* stages is what moves
        // the streamed head groups from 2 sweeps per pair to 1 per
        // triple. max_radix_log2 caps the mix (3 = r8+r4+r2,
        // 2 = r4+r2, 1 = r2-only) for the autotuner's radix search;
        // every mix applies the identical per-stage arithmetic, so
        // the bytes cannot differ.
        if (max_radix_log2 >= 3)
        for (; s + 3 <= s1; s += 3, span /= 8) {
            const size_t q8 = span / 8;
            const F *twa = slabs.slab(s);
            const F *twb = slabs.slab(s + 1);
            const F *twc = slabs.slab(s + 2);
            if (q8 == 1) {
                // span == 8: every block sees the same seven
                // twiddles, and the ones at slab index 0 are w^0 == 1
                // — multiplying by one is the exact identity, so
                // those five multiplies are skipped outright and the
                // remaining twiddles are hoisted out of the block
                // loop. This is the pass with the most blocks, so
                // the per-block pointer setup matters too.
                const F wa1 = twa[1], wa2 = twa[2], wa3 = twa[3];
                const F wb1 = twb[1];
                for (size_t start = 0; start < sb_elems; start += 8) {
                    F *p = buf + start;
                    const F a0 = p[0], a1 = p[1];
                    const F a2 = p[2], a3 = p[3];
                    const F a4 = p[4], a5 = p[5];
                    const F a6 = p[6], a7 = p[7];
                    const F u0 = a0 + a4, u4 = a0 - a4;
                    const F u1 = a1 + a5, u5 = (a1 - a5) * wa1;
                    const F u2 = a2 + a6, u6 = (a2 - a6) * wa2;
                    const F u3 = a3 + a7, u7 = (a3 - a7) * wa3;
                    const F v0 = u0 + u2, v2 = u0 - u2;
                    const F v1 = u1 + u3, v3 = (u1 - u3) * wb1;
                    const F v4 = u4 + u6, v6 = u4 - u6;
                    const F v5 = u5 + u7, v7 = (u5 - u7) * wb1;
                    p[0] = v0 + v1;
                    p[1] = v0 - v1;
                    p[2] = v2 + v3;
                    p[3] = v2 - v3;
                    p[4] = v4 + v5;
                    p[5] = v4 - v5;
                    p[6] = v6 + v7;
                    p[7] = v6 - v7;
                }
                continue;
            }
            for (size_t start = 0; start < sb_elems; start += span) {
                F *p0 = buf + start;
                fk.r8Fwd(p0, p0 + q8, p0 + 2 * q8, p0 + 3 * q8,
                         p0 + 4 * q8, p0 + 5 * q8, p0 + 6 * q8,
                         p0 + 7 * q8, twa, twb, twc, q8);
            }
        }
        if (max_radix_log2 >= 2)
        for (; s + 2 <= s1; s += 2, span /= 4) {
            const size_t quarter = span / 4;
            const F *tw0 = slabs.slab(s);
            const F *tw1 = slabs.slab(s + 1);
            const size_t hs = slabs.count(s);
            // tw[3j] wraps past hs with a sign flip (w^(hs<<s) =
            // w^(n/2) = -1); the kernel folds the sign into the
            // butterfly as (b-a)*w instead of (a-b)*(-w) and splits
            // the loop at the wrap point (r4SplitIndex) so the hot
            // loop stays branchless. Exact arithmetic: bit-identical.
            if (quarter == 1) {
                // span == 4: all three stage twiddles sit at slab
                // index 0 and equal one; only the fourth-root factor
                // survives (see the span == 8 case above).
                for (size_t start = 0; start < sb_elems; start += 4) {
                    F *p = buf + start;
                    const F a0 = p[0], a1 = p[1];
                    const F a2 = p[2], a3 = p[3];
                    const F t02p = a0 + a2, t02m = a0 - a2;
                    const F t13p = a1 + a3;
                    const F t13m = (a1 - a3) * im;
                    p[0] = t02p + t13p;
                    p[1] = t02p - t13p;
                    p[2] = t02m + t13m;
                    p[3] = t02m - t13m;
                }
                continue;
            }
            for (size_t start = 0; start < sb_elems; start += span) {
                F *p0 = buf + start;
                fk.r4Fwd(p0, p0 + quarter, p0 + 2 * quarter,
                         p0 + 3 * quarter, tw0, tw1, im, 0, hs,
                         quarter);
            }
        }
        // Radix-2 remainder: one stage after the r4 loop under the
        // default mix, the whole group when the tuner caps the mix at
        // r2-only.
        for (; s < s1; ++s, span /= 2) {
            const size_t half = span / 2;
            const F *tws = slabs.slab(s);
            if (half == 1) {
                // span == 2: the only twiddle is w^0 == 1.
                for (size_t start = 0; start < sb_elems; start += 2) {
                    const F a = buf[start];
                    const F b = buf[start + 1];
                    buf[start] = a + b;
                    buf[start + 1] = a - b;
                }
            } else {
                for (size_t start = 0; start < sb_elems;
                     start += span) {
                    F *p0 = buf + start;
                    fk.bflyFwd(p0, p0 + half, tws, 1, half);
                }
            }
        }
    } else {
        size_t half = sb_elems >> (s1 - s0);
        for (unsigned s = s1; s-- > s0; half *= 2) {
            const F *tws = slabs.slab(s);
            for (size_t start = 0; start < sb_elems;
                 start += 2 * half) {
                F *p0 = buf + start;
                fk.bflyInv(p0, p0 + half, tws, 1, half);
            }
        }
    }
}

/**
 * Tile-fused functional butterflies of local stages [s_begin, s_end):
 * one fork/join per *group* instead of per stage, with every stage of
 * the group running before the data leaves the unit. The schedule's
 * tail group is sized to the resolved host tile (SB == 2^tileLog2),
 * so its flat sweep is cache-resident end to end; head groups whose
 * super-block exceeds the tile stream the same fused sweep over the
 * block — still one radix-4 pass per stage *pair* where the per-stage
 * path pays a full pass per stage. When whole super-blocks are
 * scarcer than lanes, units split into column slices (columns of the
 * super-block never couple, so any column subset is independent).
 * Work units write disjoint element ranges, which keeps the output
 * bit-identical to localStagesCompute for every thread count, tile
 * size, and slicing.
 */
template <NttField F>
void
fusedLocalStagesCompute(DistributedVector<F> &data, unsigned s_begin,
                        unsigned s_end, unsigned logN, unsigned tile_log2,
                        const TwiddleSlabs<F> &slabs, NttDirection dir,
                        unsigned lanes,
                        const FieldKernels<F> &fk = fieldKernels<F>(),
                        unsigned max_radix_log2 = 3)
{
    (void)tile_log2; // geometry lives in the schedule's group sizes
    const uint64_t n = 1ULL << logN;
    const unsigned G = data.numGpus();
    const uint64_t C = data.chunkSize();
    const unsigned t = s_end - s_begin;
    const uint64_t SB = n >> s_begin; // stage-coupled super-block
    const uint64_t h1 = n >> s_end;   // its column count
    UNINTT_ASSERT(SB <= C, "fused group is not GPU-local");
    const uint64_t sbs_per_gpu = C / SB;

    const uint64_t units = static_cast<uint64_t>(G) * sbs_per_gpu;
    uint64_t csl = 1;
    if (lanes > 1 && units < lanes)
        csl = std::min<uint64_t>(h1,
                                 (2ULL * lanes + units - 1) / units);
    hostParallelFor(
        units * csl, kernelCost(SB / 2 * t / csl, dir, fk.lanes),
        lanes, [&](size_t u) {
            const uint64_t unit = u / csl;
            const uint64_t slice = u % csl;
            const unsigned g =
                static_cast<unsigned>(unit / sbs_per_gpu);
            const uint64_t sb = unit % sbs_per_gpu;
            F *base = data.chunk(g).data() + sb * SB;
            if (csl == 1) {
                // Whole super-block in one unit: flat sweep.
                fusedSpanStages(base, SB, s_begin, s_end, slabs, dir,
                                fk, max_radix_log2);
                return;
            }
            const uint64_t c0 = h1 * slice / csl;
            const uint64_t c1 = h1 * (slice + 1) / csl;
            fusedTileStages(base + c0, h1, c1 - c0, c0, h1, s_begin,
                            s_end, slabs, dir, fk);
        });
}

/** Functional n^-1 scaling of every chunk of every batch entry. */
template <NttField F>
void
inverseScaleCompute(std::vector<DistributedVector<F> *> &batch,
                    uint64_t n, unsigned lanes,
                    const FieldKernels<F> &fk = fieldKernels<F>())
{
    F scale = inverseScale<F>(n);
    const unsigned G = batch.empty() ? 1 : batch[0]->numGpus();
    hostParallelFor(batch.size() * G, batch.empty() ? 0 : batch[0]->chunkSize(),
                    lanes, [&](size_t u) {
                        auto &chunk = batch[u / G]->chunk(
                            static_cast<unsigned>(u % G));
                        fk.scaleSpan(chunk.data(), scale,
                                     chunk.size());
                    });
}

/**
 * Functional bit-reversal gather: redistribute the forward transform's
 * globally bit-reversed output into natural order.
 */
template <NttField F>
void
bitRevGatherCompute(DistributedVector<F> &data, unsigned logN)
{
    const std::vector<F> got = data.toGlobal();
    std::vector<F> natural(got.size());
    for (uint64_t i = 0; i < got.size(); ++i)
        natural[i] = got[bitReverse(i, logN)];
    data = DistributedVector<F>::fromGlobal(natural, data.numGpus());
}

// ---------------------------------------------------------------------
// Analytic executor: price the precomputed counters, touch no data.
// ---------------------------------------------------------------------

class AnalyticStepExecutor
{
  public:
    AnalyticStepExecutor(const MultiGpuSystem &sys, const PerfModel &perf,
                         bool overlap_comm, SimReport &report)
        : sys_(sys), perf_(perf), overlap_(overlap_comm), report_(report)
    {
    }

    StepAction
    onStep(const ScheduleStep &st)
    {
        execute(st);
        return StepAction{};
    }

    /** Wave-driven dispatch: price every node of wave @p w. */
    StepAction
    onWave(const StageSchedule &sched, size_t w)
    {
        priceWave(sched, w);
        return StepAction{};
    }

    /** Plain executors never request a reschedule. */
    std::shared_ptr<const StageSchedule>
    reschedule()
    {
        panic("plain executors cannot reschedule");
    }

    /** Waves dispatched through the DAG overlay (0 = linear path). */
    uint64_t overlapWaves() const { return overlapWaves_; }

  protected:
    /** Reset the per-schedule DAG accounting on a schedule swap. */
    void
    initDagState(const StageSchedule &sched)
    {
        if (dagSched_ == &sched)
            return;
        dagSched_ = &sched;
        remaining_.assign(sched.steps.size(), 0);
        for (const ScheduleDagNode &nd : sched.dag)
            remaining_[nd.step]++;
        exVisible_.assign(sched.steps.size(), 0.0);
        exHidden_.assign(sched.steps.size(), 0.0);
    }

    /**
     * Price one wave of the DAG overlay. The wave's makespan is
     * max(comm, compute): only the excess of the wave's exchange time
     * over its butterfly time is visible, and that visible/hidden
     * split is attributed back to each exchange step proportionally to
     * its nodes' share of the wave's comm. Phases still materialize
     * once per *step* — same names, same order, same CommStats as the
     * linear path — when the step's last node completes, so reports
     * keep their historical shape and total fabric bytes/messages are
     * untouched; only the makespan shrinks.
     */
    void
    priceWave(const StageSchedule &sched, size_t w)
    {
        initDagState(sched);
        double comp_w = 0.0;
        double comm_w = 0.0;
        std::vector<std::pair<uint32_t, double>> comm_nodes;
        std::vector<uint32_t> completed;
        const double chunk_elems =
            static_cast<double>(sched.plan.chunkElems());
        for (uint32_t ni : sched.waves[w]) {
            const ScheduleDagNode &nd = sched.dag[ni];
            const ScheduleStep &st = sched.steps[nd.step];
            const double frac =
                static_cast<double>(nd.sliceEnd - nd.sliceBegin) /
                chunk_elems;
            if (st.kind == StepKind::Exchange) {
                const Interconnect &fabric =
                    st.crossesNodes ? sys_.nodeFabric : sys_.fabric;
                const double t =
                    fabric.pairwiseExchangeTime(st.comm.bytesPerGpu,
                                                st.effectiveDistance) *
                    frac;
                comm_w += t;
                comm_nodes.emplace_back(nd.step, t);
            } else {
                comp_w += perf_.kernelSeconds(st.stats) * frac;
            }
            UNINTT_ASSERT(remaining_[nd.step] > 0,
                          "DAG node executed twice");
            if (--remaining_[nd.step] == 0)
                completed.push_back(nd.step);
        }
        const double visible_w = std::max(0.0, comm_w - comp_w);
        const double hidden_w = comm_w - visible_w;
        for (const auto &[sidx, t] : comm_nodes) {
            const double share = comm_w > 0.0 ? t / comm_w : 0.0;
            exVisible_[sidx] += visible_w * share;
            exHidden_[sidx] += hidden_w * share;
        }
        std::sort(completed.begin(), completed.end());
        for (uint32_t sidx : completed)
            emitCompleted(sched, sidx);
        overlapWaves_++;
    }

    /** Emit the phases of a step whose last DAG node just ran. */
    void
    emitCompleted(const StageSchedule &sched, uint32_t sidx)
    {
        const ScheduleStep &st = sched.steps[sidx];
        switch (st.kind) {
          case StepKind::Exchange:
            // Deferred: its comm phase rides behind the paired
            // CrossStage, preserving the report's historical order.
            return;
          case StepKind::CrossStage: {
            report_.addKernelPhase(st.name, st.stats, perf_);
            tagPhase(st);
            UNINTT_ASSERT(sidx > 0 && sched.steps[sidx - 1].kind ==
                                          StepKind::Exchange,
                          "cross stage without a preceding exchange");
            const ScheduleStep &ex = sched.steps[sidx - 1];
            report_.addCommPhase(ex.name, exVisible_[sidx - 1], ex.comm,
                                 exHidden_[sidx - 1]);
            tagPhase(ex);
            return;
          }
          case StepKind::LocalPass:
          case StepKind::FusedLocalPass:
          case StepKind::Scale:
          case StepKind::SpotCheck:
            report_.addKernelPhase(st.name, st.stats, perf_);
            tagPhase(st);
            return;
          case StepKind::BitRevGather: {
            report_.addKernelPhase(st.name, st.stats, perf_);
            tagPhase(st);
            if (st.comm.bytesPerGpu > 0) {
                double t = sys_.fabric.allToAllTime(
                    st.comm.bytesPerGpu, sys_.numGpus);
                report_.addCommPhase(st.name + "-alltoall", t, st.comm);
                tagPhase(st);
            }
            return;
          }
        }
    }
    void
    execute(const ScheduleStep &st)
    {
        switch (st.kind) {
          case StepKind::Exchange:
            pendingExchange_ = &st;
            return;
          case StepKind::CrossStage: {
            double kernel_t = report_.addKernelPhase(st.name, st.stats,
                                                     perf_);
            tagPhase(st);
            UNINTT_ASSERT(pendingExchange_ != nullptr,
                          "cross stage without a pending exchange");
            emitExchange(*pendingExchange_, kernel_t);
            pendingExchange_ = nullptr;
            return;
          }
          case StepKind::LocalPass:
          case StepKind::FusedLocalPass:
          case StepKind::Scale:
          case StepKind::SpotCheck:
            report_.addKernelPhase(st.name, st.stats, perf_);
            tagPhase(st);
            return;
          case StepKind::BitRevGather: {
            report_.addKernelPhase(st.name, st.stats, perf_);
            tagPhase(st);
            if (st.comm.bytesPerGpu > 0) {
                double t = sys_.fabric.allToAllTime(
                    st.comm.bytesPerGpu, sys_.numGpus);
                report_.addCommPhase(st.name + "-alltoall", t, st.comm);
                tagPhase(st);
            }
            return;
          }
        }
    }

    /**
     * Price and emit the held Exchange, splitting visible/hidden time
     * against the paired compute when overlap is on.
     */
    void
    emitExchange(const ScheduleStep &ex, double kernel_t)
    {
        const Interconnect &fabric =
            ex.crossesNodes ? sys_.nodeFabric : sys_.fabric;
        double comm_t = fabric.pairwiseExchangeTime(ex.comm.bytesPerGpu,
                                                    ex.effectiveDistance);
        if (overlap_) {
            // Segmented pipeline: transfer overlaps butterflies; the
            // longer of the two dominates.
            double visible = std::max(0.0, comm_t - kernel_t);
            report_.addCommPhase(ex.name, visible, ex.comm,
                                 comm_t - visible);
        } else {
            report_.addCommPhase(ex.name, comm_t, ex.comm);
        }
        tagPhase(ex);
    }

    /** Attribute the just-added phase to its IR step. */
    void
    tagPhase(const ScheduleStep &st)
    {
        report_.tagLastPhase(toString(st.kind), toString(st.level));
    }

    const MultiGpuSystem &sys_;
    const PerfModel &perf_;
    const bool overlap_;
    SimReport &report_;
    const ScheduleStep *pendingExchange_ = nullptr;

    /** DAG accounting, reset per schedule (initDagState). */
    const StageSchedule *dagSched_ = nullptr;
    std::vector<uint32_t> remaining_;
    std::vector<double> exVisible_;
    std::vector<double> exHidden_;
    uint64_t overlapWaves_ = 0;
};

// ---------------------------------------------------------------------
// Functional executor: bit-exact host execution + analytic pricing.
// ---------------------------------------------------------------------

template <NttField F>
class FunctionalStepExecutor : public AnalyticStepExecutor
{
  public:
    FunctionalStepExecutor(const MultiGpuSystem &sys, const PerfModel &perf,
                           bool overlap_comm, SimReport &report,
                           std::vector<DistributedVector<F> *> &batch,
                           const TwiddleSlabs<F> &slabs, unsigned logN,
                           NttDirection dir, unsigned lanes,
                           const FieldKernels<F> &fk = fieldKernels<F>(),
                           unsigned max_radix_log2 = 3)
        : AnalyticStepExecutor(sys, perf, overlap_comm, report),
          batch_(batch),
          slabs_(slabs),
          logN_(logN),
          dir_(dir),
          lanes_(lanes),
          fk_(fk),
          maxRadixLog2_(max_radix_log2)
    {
    }

    StepAction
    onStep(const ScheduleStep &st)
    {
        computeStep(st);
        execute(st);
        return StepAction{};
    }

    /**
     * Wave-driven dispatch: run the wave's data movement and
     * butterflies, then defer to the shared analytic wave pricing so
     * the functional timeline stays identical to analyticRun by
     * construction. A wave holding exchange and cross-stage chunk
     * nodes fans *all* of them out through one hostParallelFor, so the
     * landing-buffer copies genuinely interleave with butterfly work
     * on the pool — the host analogue of a copy engine running under a
     * compute kernel.
     */
    StepAction
    onWave(const StageSchedule &sched, size_t w)
    {
        runWave(sched, w);
        priceWave(sched, w);
        return StepAction{};
    }

    /** Exchange chunk copies executed on the pool (HostExecStats). */
    uint64_t
    exchangeChunks() const
    {
        return exchangeChunks_.load(std::memory_order_relaxed);
    }

    /** Span-kernel dispatches through the bound table (router stats). */
    uint64_t
    kernelDispatches() const
    {
        return kernelDispatches_.load(std::memory_order_relaxed);
    }

    /** The kernel table this executor runs on. */
    const FieldKernels<F> &kernels() const { return fk_; }

  private:
    /** The functional work of one whole step (linear path body). */
    void
    computeStep(const ScheduleStep &st)
    {
        switch (st.kind) {
          case StepKind::CrossStage:
            for (auto *d : batch_)
                crossStageCompute(*d, st.sBegin, logN_, slabs_, dir_,
                                  lanes_, fk_);
            countDispatch();
            break;
          case StepKind::LocalPass:
            for (auto *d : batch_)
                localStagesCompute(*d, st.sBegin, st.sEnd, logN_, slabs_,
                                   dir_, lanes_, fk_);
            countDispatch();
            break;
          case StepKind::FusedLocalPass:
            for (auto *d : batch_)
                fusedLocalStagesCompute(*d, st.sBegin, st.sEnd, logN_,
                                        st.tileLog2, slabs_, dir_,
                                        lanes_, fk_, maxRadixLog2_);
            countDispatch();
            break;
          case StepKind::Scale:
            // Explicit twiddle passes are functionally no-ops (the
            // fused execution already applied the factors); only the
            // inverse n^-1 scaling does real work.
            if (st.applyInverseScale) {
                inverseScaleCompute(batch_, 1ULL << logN_, lanes_,
                                    fk_);
                countDispatch();
            }
            break;
          case StepKind::BitRevGather:
            for (auto *d : batch_)
                bitRevGatherCompute(*d, logN_);
            break;
          case StepKind::Exchange:
          case StepKind::SpotCheck:
            break;
        }
    }

    /** Lazily size the per-(batch entry, GPU) landing slabs. */
    void
    initLanding(const StageSchedule &sched)
    {
        const uint64_t C = sched.plan.chunkElems();
        if (!landing_.empty() && landing_[0][0].size() == C)
            return;
        landing_.resize(batch_.size());
        for (auto &per : landing_)
            per.assign(batch_[0]->numGpus(), std::vector<F>(C));
    }

    void
    runWave(const StageSchedule &sched, size_t w)
    {
        const auto &wave = sched.waves[w];
        // A wave either mixes Exchange/CrossStage chunk nodes (the
        // cross-phase pipeline) or holds exactly one whole-step node:
        // unsplit steps depend on every node of their predecessor, so
        // nothing else can share their level.
        bool chunked = true;
        for (uint32_t ni : wave) {
            const StepKind k = sched.steps[sched.dag[ni].step].kind;
            if (k != StepKind::Exchange && k != StepKind::CrossStage) {
                chunked = false;
                break;
            }
        }
        if (!chunked) {
            UNINTT_ASSERT(wave.size() == 1,
                          "unsplit step sharing a wave");
            computeStep(sched.steps[sched.dag[wave[0]].step]);
            return;
        }

        initLanding(sched);
        const unsigned G = batch_[0]->numGpus();
        const uint64_t C = sched.plan.chunkElems();
        const unsigned pairs = G / 2;
        const uint32_t nbatch = static_cast<uint32_t>(batch_.size());

        // Flatten every node into (batch entry, pair, element slice)
        // units behind one fan-out; writes are disjoint across units
        // (each touches one pair's slice of one entry), so the result
        // is bit-identical for every thread count.
        struct NodeWork
        {
            const ScheduleStep *st;
            uint64_t b, e;
            uint64_t firstUnit;
            uint64_t slices;
        };
        std::vector<NodeWork> work;
        work.reserve(wave.size());
        uint64_t total_units = 0;
        uint64_t total_cost = 0;
        for (uint32_t ni : wave) {
            const ScheduleDagNode &nd = sched.dag[ni];
            NodeWork nw;
            nw.st = &sched.steps[nd.step];
            nw.b = nd.sliceBegin;
            nw.e = nd.sliceEnd;
            nw.firstUnit = total_units;
            const uint64_t base_units =
                static_cast<uint64_t>(pairs) * nbatch;
            nw.slices = 1;
            if (lanes_ > 1 && base_units < lanes_)
                nw.slices = std::min<uint64_t>(
                    nw.e - nw.b,
                    (2ULL * lanes_ + base_units - 1) / base_units);
            total_units += base_units * nw.slices;
            const uint64_t elems = (nw.e - nw.b) * base_units;
            total_cost += nw.st->kind == StepKind::Exchange
                              ? elems
                              : kernelCost(elems, dir_, fk_.lanes);
            work.push_back(nw);
        }

        hostParallelFor(
            total_units,
            total_units > 0 ? total_cost / total_units : 0, lanes_,
            [&](size_t u) {
                size_t wi = 0;
                while (wi + 1 < work.size() &&
                       u >= work[wi + 1].firstUnit)
                    ++wi;
                const NodeWork &nw = work[wi];
                const uint64_t local = u - nw.firstUnit;
                const uint64_t pe = local / nw.slices;
                const uint64_t sl = local % nw.slices;
                const uint32_t bi = static_cast<uint32_t>(pe / pairs);
                const unsigned pi = static_cast<unsigned>(pe % pairs);
                const unsigned gap = nw.st->distance;
                const unsigned g_lo = pairLowGpu(pi, gap);
                const unsigned g_hi = g_lo + gap;
                const uint64_t span = nw.e - nw.b;
                const uint64_t c0 = nw.b + span * sl / nw.slices;
                const uint64_t c1 =
                    nw.b + span * (sl + 1) / nw.slices;
                auto &lo = batch_[bi]->chunk(g_lo);
                auto &hi = batch_[bi]->chunk(g_hi);
                if (nw.st->kind == StepKind::Exchange) {
                    exchangePairSliceCopy(
                        lo.data(), hi.data(),
                        landing_[bi][g_lo].data(),
                        landing_[bi][g_hi].data(), c0, c1);
                    // One bump per chunk node (its first unit), from
                    // inside a pool task: must be atomic — the
                    // overlapped path never quiesces the pool around
                    // stats updates.
                    if (local == 0)
                        exchangeChunks_.fetch_add(
                            1, std::memory_order_relaxed);
                } else {
                    crossPairSliceCompute(
                        lo.data(), hi.data(),
                        landing_[bi][g_lo].data(),
                        landing_[bi][g_hi].data(),
                        slabs_.slab(nw.st->sBegin),
                        static_cast<uint64_t>(g_lo % gap) * C, c0, c1,
                        dir_, fk_);
                    // One bump per butterfly chunk node, mirroring the
                    // exchange accounting above.
                    if (local == 0)
                        kernelDispatches_.fetch_add(
                            1, std::memory_order_relaxed);
                }
            });
    }

    /** One bump per kernel fan-out (called from the dispatch thread). */
    void
    countDispatch()
    {
        kernelDispatches_.fetch_add(1, std::memory_order_relaxed);
    }

    std::vector<DistributedVector<F> *> &batch_;
    const TwiddleSlabs<F> &slabs_;
    const unsigned logN_;
    const NttDirection dir_;
    const unsigned lanes_;
    const FieldKernels<F> &fk_;
    /** Per-(batch entry, GPU) exchange landing slabs. */
    std::vector<std::vector<std::vector<F>>> landing_;
    std::atomic<uint64_t> exchangeChunks_{0};
    std::atomic<uint64_t> kernelDispatches_{0};
    const unsigned maxRadixLog2_;
};

// ---------------------------------------------------------------------
// Resilient executor: the fault machinery as a step decorator.
// ---------------------------------------------------------------------

/**
 * Everything the resilient executor needs from the engine besides the
 * data itself: re-planning and re-compiling after a degradation, and
 * the per-engine spot-check seed sequence.
 */
struct ResilientHooks
{
    /** Plan for the (possibly shrunk) machine, via the plan cache. */
    std::function<NttPlan(unsigned logN, const MultiGpuSystem &sys)> replan;
    /** Compile a resume schedule for the current plan/machine. */
    std::function<std::shared_ptr<const StageSchedule>(
        const NttPlan &pl, const MultiGpuSystem &sys, NttDirection dir,
        unsigned resume_stage, unsigned orig_log_mg)>
        recompile;
    /** Derive the next spot-check seed from the configured base. */
    std::function<uint64_t(uint64_t base)> nextSpotSeed;
};

template <NttField F>
class ResilientStepExecutor
{
  public:
    ResilientStepExecutor(MultiGpuSystem sys, const PerfModel &perf,
                          const UniNttConfig &cfg, SimReport &report,
                          DistributedVector<F> &data,
                          const std::vector<F> &input,
                          FaultInjector &faults,
                          const ResilienceConfig &rc,
                          DeviceHealthTracker *health,
                          const TwiddleSlabs<F> &slabs, NttPlan pl,
                          unsigned logMg0, NttDirection dir,
                          unsigned lanes, ResilientHooks hooks,
                          FaultStats &fs,
                          const FieldKernels<F> &fk = fieldKernels<F>())
        : sys_(std::move(sys)),
          perf_(perf),
          cfg_(cfg),
          report_(report),
          data_(data),
          input_(input),
          faults_(faults),
          rc_(rc),
          health_(health),
          slabs_(slabs),
          pl_(std::move(pl)),
          logMg0_(logMg0),
          dir_(dir),
          lanes_(lanes),
          fk_(fk),
          hooks_(std::move(hooks)),
          fs_(fs)
    {
    }

    StepAction
    onStep(const ScheduleStep &st)
    {
        switch (st.kind) {
          case StepKind::Exchange:
            pendingExchange_ = &st;
            return StepAction{};
          case StepKind::CrossStage:
            return crossStep(st);
          case StepKind::LocalPass: {
            abftArmStep(st);
            localStagesCompute(data_, st.sBegin, st.sEnd, pl_.logN,
                               slabs_, dir_, lanes_, fk_);
            kernelDispatches_.fetch_add(1, std::memory_order_relaxed);
            StepAction guard = abftGuardStep(st);
            if (!guard.status.ok() || guard.reschedule)
                return guard;
            report_.addKernelPhase(st.name, st.stats, perf_);
            tagPhase(st);
            return StepAction{};
          }
          case StepKind::FusedLocalPass: {
            // Fused groups flow through the same decorator as any
            // other step: the group is one phase, one watchdog unit.
            abftArmStep(st);
            fusedLocalStagesCompute(data_, st.sBegin, st.sEnd, pl_.logN,
                                    st.tileLog2, slabs_, dir_, lanes_,
                                    fk_, cfg_.fusedRadixLog2);
            kernelDispatches_.fetch_add(1, std::memory_order_relaxed);
            StepAction guard = abftGuardStep(st);
            if (!guard.status.ok() || guard.reschedule)
                return guard;
            report_.addKernelPhase(st.name, st.stats, perf_);
            tagPhase(st);
            return StepAction{};
          }
          case StepKind::Scale: {
            abftArmStep(st);
            if (st.applyInverseScale) {
                std::vector<DistributedVector<F> *> batch{&data_};
                inverseScaleCompute(batch, 1ULL << pl_.logN, lanes_,
                                    fk_);
                kernelDispatches_.fetch_add(1,
                                            std::memory_order_relaxed);
            }
            StepAction guard = abftGuardStep(st);
            if (!guard.status.ok() || guard.reschedule)
                return guard;
            report_.addKernelPhase(st.name, st.stats, perf_);
            tagPhase(st);
            return StepAction{};
          }
          case StepKind::SpotCheck:
            return spotCheckStep(st);
          case StepKind::BitRevGather:
            panic("resilient schedules do not reorder output");
        }
        return StepAction{};
    }

    /**
     * Wave-driven dispatch over the DAG overlay: nodes run
     * sequentially in wave order, with exchange chunks issued before
     * the wave's butterfly chunks — the copy of the *next* stage's
     * buffer is on the link while the *previous* stage's butterflies
     * are still in flight, which is exactly the mid-overlap window a
     * device loss must be able to land in. One fault draw per
     * exchange step, at its first in-flight chunk, keeps the injector
     * sequence identical to the linear path; on a loss the in-flight
     * butterfly chunks of earlier stages drain deterministically
     * before the reshard, so the recompiled resume schedule (itself a
     * DAG) replays from a whole-stage boundary.
     */
    StepAction
    onWave(const StageSchedule &sched, size_t w)
    {
        initDag(sched);
        std::vector<uint32_t> order(sched.waves[w]);
        std::stable_sort(
            order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
                const bool ea = sched.steps[sched.dag[a].step].kind ==
                                StepKind::Exchange;
                const bool eb = sched.steps[sched.dag[b].step].kind ==
                                StepKind::Exchange;
                return ea && !eb;
            });
        for (uint32_t ni : order) {
            if (nodeDone_[ni])
                continue;
            StepAction act = runNode(sched, ni);
            if (!act.status.ok() || act.reschedule)
                return act;
        }
        return StepAction{};
    }

    /** Recompile the remaining stages for the degraded machine. */
    std::shared_ptr<const StageSchedule>
    reschedule()
    {
        pendingExchange_ = nullptr;
        auto sched = hooks_.recompile(pl_, sys_, dir_, resumeStage_,
                                      logMg0_);
        report_.setPeakDeviceBytes(sched->peakDeviceBytes);
        // Fresh coefficient vectors and a fresh first-boundary init for
        // the resume schedule; the injection ordinal keeps counting, so
        // replayed steps never repeat an earlier fault draw.
        attachSchedule(sched);
        return sched;
    }

    /**
     * Bind the schedule whose checked steps the ABFT layer verifies
     * (the engine calls this before dispatch; reschedule() re-binds the
     * resume schedule). Coefficient vectors are fetched lazily at the
     * first checked step, so ABFT-off runs never touch the cache.
     */
    void
    attachSchedule(std::shared_ptr<const StageSchedule> sched)
    {
        abftSched_ = std::move(sched);
        abftCoef_.reset();
        abftBoundary_ = 0;
        abftInited_ = false;
        abftCrossInit_ = UINT32_MAX;
    }

    /** Resilience counters observed so far. */
    const FaultStats &faultStats() const { return fs_; }

    /** Span-kernel dispatches through the bound table (router stats). */
    uint64_t
    kernelDispatches() const
    {
        return kernelDispatches_.load(std::memory_order_relaxed);
    }

    /** The kernel table this executor runs on. */
    const FieldKernels<F> &kernels() const { return fk_; }

  private:
    /** What the fault machinery decided about one exchange step. */
    struct ExchangeResolution
    {
        Status status;
        /** >= 0: a device died; the caller drains, degrades, replans. */
        int lostGpu = -1;
        double commT = 0.0;
        CommStats comm;
    };

    /**
     * The fault machinery of one exchange step: the injector draw,
     * straggler watchdog, bounded-backoff transient retries, and the
     * checksum/retransmission loop. Shared verbatim by the linear
     * crossStep and the wave path, so counters, health records, and
     * priced retry time cannot drift between the two dispatch modes.
     */
    ExchangeResolution
    resolveExchange(const ScheduleStep &st)
    {
        ExchangeResolution res;
        const unsigned s = st.sBegin;
        ExchangeOutcome out = faults_.nextExchange(rc_.retry.maxRetries);
        fs_.exchanges++;
        if (out.lostGpu >= 0) {
            res.lostGpu = out.lostGpu;
            return res;
        }
        if (out.exhausted) {
            res.status = Status::error(
                StatusCode::TransientFault,
                detail::format("cross-GPU exchange at stage %u "
                               "still failing after %u retries",
                               s, rc_.retry.maxRetries));
            return res;
        }

        const uint64_t C = pl_.chunkElems();
        const uint64_t bytes = C * sizeof(F);
        // The step's counters already include the checksum generation
        // and verification adds (compiled with resilient=true).
        fs_.checksummedBytes += 2 * bytes;

        const unsigned distance = st.distance;
        const Interconnect &fabric =
            st.crossesNodes ? sys_.nodeFabric : sys_.fabric;
        const double once =
            fabric.pairwiseExchangeTime(bytes, st.effectiveDistance);
        CommStats comm{bytes, 1};
        // Faults at this stage are attributed to gpu 0's exchange
        // partner — the same device whose chunk demonstrates the
        // corruption below. An approximation (every pair faults
        // identically in the simulation), but a deterministic one,
        // so the health tracker sees a reproducible history.
        const unsigned suspect = distance;
        double comm_t = once * out.stragglerFactor;
        if (out.stragglerFactor > 1.0) {
            fs_.stragglerEvents++;
            if (health_ != nullptr && suspect < health_->numDevices())
                health_->recordFault(suspect);
            if (rc_.watchdogDeadlineFactor > 0.0 &&
                out.stragglerFactor > rc_.watchdogDeadlineFactor) {
                // Watchdog: the exchange is aborted at the deadline
                // and retried once on a clean link, bounding an
                // arbitrarily slow straggler at deadline + one
                // retransmission.
                comm_t = once * rc_.watchdogDeadlineFactor + once;
                comm.retries += 1;
                fs_.watchdogTimeouts++;
            }
        }
        for (unsigned i = 0; i < out.transientFailures; ++i)
            comm_t += rc_.retry.backoffSeconds(i) + once;
        comm.retries += out.transientFailures;
        fs_.transientRetries += out.transientFailures;
        if (health_ != nullptr && out.transientFailures > 0 &&
            suspect < health_->numDevices())
            health_->recordFault(suspect);

        // Corrupted payload: the checksum catches the flip (shown
        // functionally on the first exchanging pair), forcing
        // retransmissions until a clean copy lands.
        bool corrupted = out.corrupted;
        unsigned tries = 0;
        while (corrupted) {
            const std::vector<F> &payload = data_.chunk(distance);
            const uint64_t good = checksumBytes(payload.data(), bytes);
            std::vector<F> received = payload;
            auto *raw =
                reinterpret_cast<unsigned char *>(received.data());
            const uint64_t bit = out.corruptBit % (bytes * 8);
            raw[bit / 8] ^=
                static_cast<unsigned char>(1u << (bit % 8));
            const uint64_t seen = checksumBytes(received.data(), bytes);
            UNINTT_ASSERT(
                seen != good,
                "single-bit corruption must change the checksum");
            fs_.corruptionsDetected++;
            if (health_ != nullptr && suspect < health_->numDevices())
                health_->recordFault(suspect);
            comm_t += once;
            comm.retries += 1;
            if (++tries > rc_.retry.maxRetries) {
                res.status = Status::error(
                    StatusCode::DataCorruption,
                    detail::format(
                        "payload checksum mismatch at stage %u "
                        "persisted across %u retransmissions",
                        s, rc_.retry.maxRetries));
                return res;
            }
            corrupted = faults_.retransmitCorrupted();
        }
        res.commT = comm_t;
        res.comm = comm;
        return res;
    }

    /** One cross-GPU stage under the full fault machinery (linear). */
    StepAction
    crossStep(const ScheduleStep &st)
    {
        const unsigned s = st.sBegin;
        ExchangeResolution res = resolveExchange(st);
        if (res.lostGpu >= 0) {
            Status dst = degrade(res.lostGpu, s);
            if (!dst.ok())
                return StepAction{dst, false};
            return StepAction{Status(), /*reschedule=*/true};
        }
        if (!res.status.ok())
            return StepAction{res.status, false};

        const double kernel_t = perf_.kernelSeconds(st.stats);
        abftArmStep(st);
        crossStageCompute(data_, s, pl_.logN, slabs_, dir_, lanes_,
                          fk_);
        kernelDispatches_.fetch_add(1, std::memory_order_relaxed);
        StepAction guard = abftGuardStep(st);
        if (!guard.status.ok() || guard.reschedule)
            return guard;
        report_.addKernelPhase(st.name, st.stats, perf_);
        tagPhase(st);
        UNINTT_ASSERT(pendingExchange_ != nullptr,
                      "cross stage without a pending exchange");
        const std::string &exchange_name = pendingExchange_->name;
        if (cfg_.overlapComm) {
            double visible = std::max(0.0, res.commT - kernel_t);
            report_.addCommPhase(exchange_name, visible, res.comm,
                                 res.commT - visible);
        } else {
            report_.addCommPhase(exchange_name, res.commT, res.comm);
        }
        tagPhase(*pendingExchange_);
        pendingExchange_ = nullptr;
        return StepAction{};
    }

    /** Reset the wave-dispatch state on a schedule swap. */
    void
    initDag(const StageSchedule &sched)
    {
        if (dagSched_ == &sched)
            return;
        dagSched_ = &sched;
        nodeDone_.assign(sched.dag.size(), false);
        nodesLeft_.assign(sched.steps.size(), 0);
        for (const ScheduleDagNode &nd : sched.dag)
            nodesLeft_[nd.step]++;
        stepCommT_.assign(sched.steps.size(), 0.0);
        stepComm_.assign(sched.steps.size(), CommStats{});
        landing_.assign(data_.numGpus(),
                        std::vector<F>(pl_.chunkElems()));
    }

    /** Execute one DAG node (wave path). */
    StepAction
    runNode(const StageSchedule &sched, uint32_t ni)
    {
        const ScheduleDagNode &nd = sched.dag[ni];
        const ScheduleStep &st = sched.steps[nd.step];
        switch (st.kind) {
          case StepKind::Exchange: {
            if (nd.chunk == 0) {
                // One draw per exchange *step*, at its first chunk:
                // the injector sequence matches the linear path.
                ExchangeResolution res = resolveExchange(st);
                if (res.lostGpu >= 0) {
                    StepAction drained = drainBefore(sched, nd.step);
                    if (!drained.status.ok() || drained.reschedule)
                        return drained;
                    Status dst = degrade(res.lostGpu, st.sBegin);
                    if (!dst.ok())
                        return StepAction{dst, false};
                    return StepAction{Status(), /*reschedule=*/true};
                }
                if (!res.status.ok())
                    return StepAction{res.status, false};
                stepCommT_[nd.step] = res.commT;
                stepComm_[nd.step] = res.comm;
            }
            exchangeChunkCopy(st, nd);
            break;
          }
          case StepKind::CrossStage:
            // The first butterfly node of a checked cross stage sees
            // the data exactly at the step boundary (its dependencies
            // have completed, later steps depend on it), so the ABFT
            // arm — and the recovery snapshot, when injection is live —
            // happens here rather than per node.
            if (abftCrossInit_ != nd.step) {
                abftCrossInit_ = nd.step;
                abftArmStep(st);
            }
            crossChunkCompute(st, nd);
            break;
          default: {
            // Unsplit steps reuse the linear handlers unchanged
            // (compute + phase emission in one go).
            StepAction act = onStep(st);
            if (!act.status.ok() || act.reschedule)
                return act;
            break;
          }
        }
        nodeDone_[ni] = true;
        UNINTT_ASSERT(nodesLeft_[nd.step] > 0, "DAG node ran twice");
        if (--nodesLeft_[nd.step] == 0 &&
            st.kind == StepKind::CrossStage)
            return finishCross(sched, nd.step);
        return StepAction{};
    }

    /**
     * Drain every not-yet-run node of steps before @p step_limit —
     * the butterfly chunks still in flight on the surviving devices
     * when a loss lands mid-overlap. DAG index order is wave order
     * within a step, so the drain is deterministic; exchanges of
     * earlier steps are always already resolved (their first chunk
     * ran in an earlier wave), so no nested fault draw can occur.
     */
    StepAction
    drainBefore(const StageSchedule &sched, uint32_t step_limit)
    {
        for (uint32_t ni = 0;
             ni < static_cast<uint32_t>(sched.dag.size()); ++ni) {
            const ScheduleDagNode &nd = sched.dag[ni];
            if (nodeDone_[ni] || nd.step >= step_limit)
                continue;
            UNINTT_ASSERT(
                sched.steps[nd.step].kind != StepKind::Exchange,
                "exchange of an earlier stage still unresolved");
            StepAction act = runNode(sched, ni);
            if (!act.status.ok() || act.reschedule)
                return act;
        }
        return StepAction{};
    }

    /** Stage one exchange chunk into the landing slabs (all pairs). */
    void
    exchangeChunkCopy(const ScheduleStep &st, const ScheduleDagNode &nd)
    {
        const unsigned G = data_.numGpus();
        const unsigned gap = st.distance;
        for (unsigned pi = 0; pi < G / 2; ++pi) {
            const unsigned g_lo = pairLowGpu(pi, gap);
            exchangePairSliceCopy(data_.chunk(g_lo).data(),
                                  data_.chunk(g_lo + gap).data(),
                                  landing_[g_lo].data(),
                                  landing_[g_lo + gap].data(),
                                  nd.sliceBegin, nd.sliceEnd);
        }
    }

    /** Butterflies of one cross-stage chunk, from the landing slabs. */
    void
    crossChunkCompute(const ScheduleStep &st, const ScheduleDagNode &nd)
    {
        const unsigned G = data_.numGpus();
        const unsigned gap = st.distance;
        const uint64_t C = pl_.chunkElems();
        const unsigned pairs = G / 2;
        const uint64_t span = nd.sliceEnd - nd.sliceBegin;
        uint64_t slices = 1;
        if (lanes_ > 1 && pairs < lanes_)
            slices = std::min<uint64_t>(
                span, (2ULL * lanes_ + pairs - 1) / pairs);
        const F *tws = slabs_.slab(st.sBegin);
        hostParallelFor(
            static_cast<uint64_t>(pairs) * slices,
            kernelCost(span / slices, dir_, fk_.lanes), lanes_,
            [&](size_t unit) {
                const unsigned pi =
                    static_cast<unsigned>(unit / slices);
                const uint64_t sl = unit % slices;
                const unsigned g_lo = pairLowGpu(pi, gap);
                const unsigned g_hi = g_lo + gap;
                const uint64_t c0 = nd.sliceBegin + span * sl / slices;
                const uint64_t c1 =
                    nd.sliceBegin + span * (sl + 1) / slices;
                crossPairSliceCompute(
                    data_.chunk(g_lo).data(), data_.chunk(g_hi).data(),
                    landing_[g_lo].data(), landing_[g_hi].data(), tws,
                    static_cast<uint64_t>(g_lo % gap) * C, c0, c1,
                    dir_, fk_);
            });
        kernelDispatches_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Inject/verify and emit the phases of a completed cross stage
     * (wave path). The ABFT guard sits between the last butterfly node
     * and the phase emission, mirroring the linear crossStep; the next
     * exchange's already-staged chunk copies read the data *before*
     * the injection point, so only clean values ever propagate and the
     * guard's recovery leaves the landing slabs consistent.
     */
    StepAction
    finishCross(const StageSchedule &sched, uint32_t sidx)
    {
        const ScheduleStep &st = sched.steps[sidx];
        StepAction guard = abftGuardStep(st);
        if (!guard.status.ok() || guard.reschedule)
            return guard;
        const double kernel_t = perf_.kernelSeconds(st.stats);
        report_.addKernelPhase(st.name, st.stats, perf_);
        tagPhase(st);
        UNINTT_ASSERT(sidx > 0 && sched.steps[sidx - 1].kind ==
                                      StepKind::Exchange,
                      "cross stage without a preceding exchange");
        const ScheduleStep &ex = sched.steps[sidx - 1];
        const double comm_t = stepCommT_[sidx - 1];
        const CommStats &comm = stepComm_[sidx - 1];
        if (cfg_.overlapComm) {
            const double visible = std::max(0.0, comm_t - kernel_t);
            report_.addCommPhase(ex.name, visible, comm,
                                 comm_t - visible);
        } else {
            report_.addCommPhase(ex.name, comm_t, comm);
        }
        tagPhase(ex);
        return StepAction{};
    }

    /**
     * Permanent device loss: re-shard the data onto the surviving
     * power-of-two subset, re-plan, and price the recovery — the
     * detection timeout, pulling the lost chunk's replica from its
     * last exchange partner, and the all-to-all reshard. The caller
     * then requests a reschedule from stage @p s.
     */
    Status
    degrade(int lost_gpu, unsigned s)
    {
        // The loss is attributed whether or not the recovery below is
        // allowed to absorb it — the next run must know either way.
        if (health_ != nullptr && lost_gpu >= 0 &&
            static_cast<unsigned>(lost_gpu) < health_->numDevices())
            health_->recordDeviceLost(static_cast<unsigned>(lost_gpu));
        if (!rc_.allowDegraded)
            return Status::error(
                StatusCode::DeviceLost,
                detail::format(
                    "GPU %d lost and degraded mode is disabled",
                    lost_gpu));
        if (sys_.numGpus <= 1)
            return Status::error(
                StatusCode::DeviceLost,
                "GPU lost with no surviving devices to re-plan onto");
        const uint64_t n = 1ULL << pl_.logN;
        const unsigned newG = sys_.numGpus / 2;
        const uint64_t lost_chunk_bytes = pl_.chunkElems() * sizeof(F);
        const uint64_t reshard_bytes = (n / newG) * sizeof(F);
        double t = rc_.detectionSeconds;
        t += sys_.fabric.pairwiseExchangeTime(lost_chunk_bytes, 1);
        t += sys_.fabric.allToAllTime(reshard_bytes, newG);
        CommStats comm;
        comm.bytesPerGpu = reshard_bytes + lost_chunk_bytes;
        comm.messages = newG;
        report_.addCommPhase(
            "degrade-to-" + std::to_string(newG) + "gpu-reshard", t,
            comm);
        Status reshard_st = data_.reshardChecked(newG);
        if (!reshard_st.ok())
            return reshard_st;
        sys_.numGpus = newG;
        if (sys_.gpusPerNode != 0 && sys_.numGpus <= sys_.gpusPerNode)
            sys_.gpusPerNode = 0; // survivors fit inside one node
        pl_ = hooks_.replan(pl_.logN, sys_);
        fs_.devicesLost++;
        fs_.degradedReplans++;
        resumeStage_ = s;
        return Status();
    }

    /**
     * Post-transform spot check against a direct evaluation
     * (unintt/verify.hh): the backstop that catches whatever the
     * exchange checksums cannot see.
     */
    StepAction
    spotCheckStep(const ScheduleStep &st)
    {
        const std::vector<F> out_global = data_.toGlobal();
        report_.addKernelPhase(st.name, st.stats, perf_);
        tagPhase(st);
        fs_.spotChecks += rc_.spotChecks;
        // Derived seed: repeated checks of the same transform sample
        // fresh positions (the config seed alone would re-sample the
        // same ones every run). Drawn only when the check actually
        // executes, so earlier-failing runs do not advance the
        // engine's seed sequence.
        const uint64_t spot_seed = hooks_.nextSpotSeed(rc_.spotCheckSeed);
        const bool good =
            dir_ == NttDirection::Forward
                ? spotCheckForward(input_, out_global, rc_.spotChecks,
                                   spot_seed)
                : spotCheckInverse(input_, out_global, rc_.spotChecks,
                                   spot_seed);
        if (!good) {
            fs_.spotCheckFailures++;
            report_.addFaultStats(fs_);
            return StepAction{
                Status::error(
                    StatusCode::DataCorruption,
                    "post-transform spot check failed: output does not "
                    "match a direct evaluation of the input"),
                false};
        }
        return StepAction{};
    }

    // -----------------------------------------------------------------
    // ABFT compute-path integrity (unintt/abft.hh): deterministic
    // fault injection into kernel outputs, RLC checksum comparison
    // after every compute step, tile-granular recomputation on a
    // mismatch, and the degrade/fail escalation ladder.
    // -----------------------------------------------------------------

    /** True iff the ABFT comparison runs after checked steps. */
    bool
    abftCheckOn(const ScheduleStep &st) const
    {
        return rc_.abft && abftChecked(st) && abftSched_ != nullptr;
    }

    /** True iff compute-fault injection is live for this run. */
    bool
    abftInjectOn() const
    {
        return faults_.model().computeBitFlipRate > 0.0;
    }

    /**
     * Arm the ABFT machinery before a checked step's kernel runs:
     * fetch the coefficient vectors (lazily, via the process cache),
     * seed the first boundary's checksums from the current data, and —
     * only when injection is live, so clean runs pay nothing beyond
     * the comparison — snapshot the shards as the recovery restore
     * source.
     */
    void
    abftArmStep(const ScheduleStep &st)
    {
        if (!abftCheckOn(st))
            return;
        if (!abftCoef_) {
            // Derived like the spot-check seeds (mix64 over the
            // configured base, util/checksum.hh) but *not* advanced
            // per transform: the vectors depend only on the schedule
            // shape, which is what makes them cacheable.
            const uint64_t seed =
                mix64(rc_.spotCheckSeed ^ 0xabf7c0effec0ffeeULL);
            abftCoef_ = cachedAbftCoefficients<F>(*abftSched_, slabs_,
                                                  seed, lanes_);
        }
        if (!abftInited_) {
            abftPrev_ = abftChunkChecksums(abftCoef_->boundary(0),
                                           data_, lanes_);
            abftInited_ = true;
        }
        if (abftInjectOn()) {
            const unsigned G = data_.numGpus();
            abftSnap_.resize(G);
            hostParallelFor(G, data_.chunkSize(), lanes_,
                            [&](size_t g) {
                                abftSnap_[g] = data_.chunk(
                                    static_cast<unsigned>(g));
                            });
        }
    }

    /**
     * The compute-integrity decorator of one finished compute step:
     * one deterministic fault draw against the step's output, then the
     * ABFT comparison with tile recovery. Runs between the kernel and
     * its phase emission in both dispatch modes; the step ordinal
     * advances identically in both, so the draw sequences (and
     * therefore the injected faults) cannot drift between them, and it
     * is never reset on a reschedule, so resumed steps draw fresh.
     */
    StepAction
    abftGuardStep(const ScheduleStep &st)
    {
        const bool inject = abftInjectOn();
        const bool check = abftCheckOn(st);
        if (!inject && !check)
            return StepAction{};
        const uint64_t ord = stepOrdinal_++;
        if (inject) {
            const unsigned g_t =
                static_cast<unsigned>(ord % data_.numGpus());
            ComputeFaultOutcome out =
                faults_.computeFault(g_t, ord, 0);
            if (out.corrupted)
                abftCorrupt(g_t, 0, data_.chunkSize(), out);
        }
        if (!check)
            return StepAction{}; // ABFT off: corruption flows silently
        return abftVerifyStep(st, ord);
    }

    /** Flip one bit of one word of shard @p g inside [w0, w0+len). */
    void
    abftCorrupt(unsigned g, uint64_t w0, uint64_t len,
                const ComputeFaultOutcome &out)
    {
        auto &chunk = data_.chunk(g);
        const uint64_t word = w0 + out.corruptWord % len;
        auto *raw = reinterpret_cast<unsigned char *>(chunk.data() +
                                                      word);
        const uint64_t bit = out.corruptBit % (8 * sizeof(F));
        raw[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    }

    /**
     * Post-step ABFT comparison and bounded tile-granular recovery.
     * Chunk-local steps must preserve every shard's checksum; a cross
     * stage mixes exactly its exchanging pair, preserving the pairwise
     * sum. Each recovery round counts one catch, restores and
     * recomputes only the corrupted tiles, and re-draws the injector
     * for the redone slice (attempt > 0); when the budget is spent the
     * step escalates.
     */
    StepAction
    abftVerifyStep(const ScheduleStep &st, uint64_t ord)
    {
        const unsigned G = data_.numGpus();
        const uint64_t C = data_.chunkSize();
        const std::vector<F> &prev_coef =
            abftCoef_->boundary(abftBoundary_);
        const std::vector<F> &cur_coef =
            abftCoef_->boundary(abftBoundary_ + 1);
        const bool cross = st.kind == StepKind::CrossStage;
        const unsigned gap = st.distance;

        unsigned attempt = 0;
        for (;;) {
            std::vector<F> actual =
                abftChunkChecksums(cur_coef, data_, lanes_);
            fs_.abftChecks++;
            std::vector<unsigned> bad; // suspect shards (pair lows)
            if (cross) {
                for (unsigned pi = 0; pi < G / 2; ++pi) {
                    const unsigned g_lo = pairLowGpu(pi, gap);
                    const F want =
                        abftPrev_[g_lo] + abftPrev_[g_lo + gap];
                    if (!(actual[g_lo] + actual[g_lo + gap] == want))
                        bad.push_back(g_lo);
                }
            } else {
                for (unsigned g = 0; g < G; ++g)
                    if (!(actual[g] == abftPrev_[g]))
                        bad.push_back(g);
            }
            if (bad.empty()) {
                abftPrev_ = std::move(actual);
                abftBoundary_++;
                return StepAction{};
            }
            // A mismatch without a live injector has no pre-step
            // snapshot to recover from (clean runs skip it to stay
            // overhead-honest): surface the corruption as-is.
            if (!abftInjectOn() || abftSnap_.size() != G)
                return StepAction{
                    Status::error(
                        StatusCode::DataCorruption,
                        detail::format("ABFT checksum mismatch at %s "
                                       "with no recovery snapshot",
                                       st.name.c_str())),
                    false};
            if (attempt >= rc_.abftMaxTileRetries)
                return abftEscalate(st, bad.front());

            fs_.abftCatches++;
            if (health_ != nullptr &&
                bad.front() < health_->numDevices())
                health_->recordFault(bad.front());
            uint64_t redo_w0 = 0;
            uint64_t redo_len = C;
            for (unsigned g : bad) {
                if (cross) {
                    abftRecomputeCrossPair(st, g);
                    fs_.tilesRecomputed++;
                    continue;
                }
                if (st.kind == StepKind::Scale) {
                    // Localization floor: the scaling pass has no
                    // sub-chunk structure worth bisecting — the tile
                    // is the shard.
                    data_.chunk(g) = abftSnap_[g];
                    if (st.applyInverseScale) {
                        const F sc =
                            inverseScale<F>(1ULL << pl_.logN);
                        for (F &v : data_.chunk(g))
                            v *= sc;
                    }
                    fs_.tilesRecomputed++;
                    continue;
                }
                // Local passes: bisect to the stage-coupled
                // super-block via per-tile partial checksums of the
                // snapshot (previous boundary) against the current
                // data (next boundary) — the step is block-diagonal
                // over these tiles, so the transition holds per tile.
                const uint64_t SB =
                    (1ULL << pl_.logN) >> st.sBegin;
                for (uint64_t o = 0; o < C; o += SB) {
                    const F want = abftSpanDot(
                        prev_coef.data() +
                            static_cast<uint64_t>(g) * C + o,
                        abftSnap_[g].data() + o, SB);
                    const F got = abftSpanDot(
                        cur_coef.data() +
                            static_cast<uint64_t>(g) * C + o,
                        data_.chunk(g).data() + o, SB);
                    if (got == want)
                        continue;
                    std::copy(abftSnap_[g].begin() + o,
                              abftSnap_[g].begin() + o + SB,
                              data_.chunk(g).begin() + o);
                    abftRecomputeLocalSpan(
                        data_.chunk(g).data() + o, SB, st);
                    fs_.tilesRecomputed++;
                    redo_w0 = o;
                    redo_len = SB;
                }
            }
            ++attempt;
            // The redone tile is itself kernel output: one fresh
            // deterministic draw per (step, attempt) may corrupt it
            // again, exercising the bounded-retry ladder.
            ComputeFaultOutcome out =
                faults_.computeFault(bad.front(), ord, attempt);
            if (out.corrupted)
                abftCorrupt(bad.front(), redo_w0, redo_len, out);
        }
    }

    /** Redo one exchanging pair's butterflies from the snapshot. */
    void
    abftRecomputeCrossPair(const ScheduleStep &st, unsigned g_lo)
    {
        const unsigned gap = st.distance;
        const uint64_t C = data_.chunkSize();
        F *lo = data_.chunk(g_lo).data();
        F *hi = data_.chunk(g_lo + gap).data();
        // The span kernels run in place, so re-seed the pair from the
        // pre-step snapshot first; the butterflies themselves are the
        // same exact arithmetic the step originally ran.
        std::copy(abftSnap_[g_lo].begin(), abftSnap_[g_lo].end(), lo);
        std::copy(abftSnap_[g_lo + gap].begin(),
                  abftSnap_[g_lo + gap].end(), hi);
        const F *tws = slabs_.slab(st.sBegin);
        const uint64_t j0 = static_cast<uint64_t>(g_lo % gap) * C;
        if (dir_ == NttDirection::Forward)
            fk_.bflyFwd(lo, hi, tws + j0, 1, C);
        else
            fk_.bflyInv(lo, hi, tws + j0, 1, C);
    }

    /**
     * Redo local stages [sBegin, sEnd) over one restored tile span —
     * the same stage order and exact arithmetic as the full kernels,
     * so the recomputed tile is bit-identical to an uncorrupted run.
     */
    void
    abftRecomputeLocalSpan(F *buf, uint64_t span, const ScheduleStep &st)
    {
        if (st.kind == StepKind::FusedLocalPass) {
            fusedSpanStages(buf, span, st.sBegin, st.sEnd, slabs_,
                            dir_, fk_, cfg_.fusedRadixLog2);
            return;
        }
        const uint64_t n = 1ULL << pl_.logN;
        std::vector<unsigned> stages;
        for (unsigned s = st.sBegin; s < st.sEnd; ++s)
            stages.push_back(s);
        if (dir_ == NttDirection::Inverse)
            std::reverse(stages.begin(), stages.end());
        for (unsigned s : stages) {
            const uint64_t half = n >> (s + 1);
            const F *tws = slabs_.slab(s);
            for (uint64_t start = 0; start < span;
                 start += 2 * half) {
                F *p0 = buf + start;
                if (dir_ == NttDirection::Forward)
                    fk_.bflyFwd(p0, p0 + half, tws, 1, half);
                else
                    fk_.bflyInv(p0, p0 + half, tws, 1, half);
            }
        }
    }

    /**
     * Recovery budget spent: restore the whole pre-step state and walk
     * the escalation ladder. Cross stages and forward local passes
     * fall back to the degrade-reschedule path (the suspect shard's
     * device is retired, exactly like a permanent loss); everything
     * the resume compiler cannot re-enter — the inverse local phase
     * (resume schedules skip it by contract) and the scaling pass —
     * fails with a clean DataCorruption status, as does the last GPU.
     */
    StepAction
    abftEscalate(const ScheduleStep &st, unsigned suspect)
    {
        fs_.abftEscalations++;
        const unsigned G = data_.numGpus();
        for (unsigned g = 0; g < G; ++g)
            data_.chunk(g) = abftSnap_[g];
        const bool local = st.kind == StepKind::LocalPass ||
                           st.kind == StepKind::FusedLocalPass;
        const bool resumable =
            st.kind == StepKind::CrossStage ||
            (local && dir_ == NttDirection::Forward);
        if (!resumable || !rc_.allowDegraded || sys_.numGpus <= 1)
            return StepAction{
                Status::error(
                    StatusCode::DataCorruption,
                    detail::format(
                        "compute corruption at %s persisted across "
                        "%u tile recomputations",
                        st.name.c_str(), rc_.abftMaxTileRetries)),
                false};
        Status dst = degrade(static_cast<int>(suspect), st.sBegin);
        if (!dst.ok())
            return StepAction{dst, false};
        return StepAction{Status(), /*reschedule=*/true};
    }

    void
    tagPhase(const ScheduleStep &st)
    {
        report_.tagLastPhase(toString(st.kind), toString(st.level));
    }

    MultiGpuSystem sys_; // shrinks when devices drop out
    const PerfModel &perf_;
    const UniNttConfig &cfg_;
    SimReport &report_;
    DistributedVector<F> &data_;
    const std::vector<F> &input_;
    FaultInjector &faults_;
    const ResilienceConfig &rc_;
    DeviceHealthTracker *health_;
    const TwiddleSlabs<F> &slabs_;
    NttPlan pl_;
    const unsigned logMg0_;
    const NttDirection dir_;
    const unsigned lanes_;
    const FieldKernels<F> &fk_;
    ResilientHooks hooks_;
    /** The caller's counters (may already hold health exclusions). */
    FaultStats &fs_;
    const ScheduleStep *pendingExchange_ = nullptr;
    unsigned resumeStage_ = 0;
    std::atomic<uint64_t> kernelDispatches_{0};

    // Wave-dispatch state (DAG overlay), reset on schedule swap.
    const StageSchedule *dagSched_ = nullptr;
    std::vector<bool> nodeDone_;
    /** Per step: nodes still to run; phases emit when it hits 0. */
    std::vector<uint32_t> nodesLeft_;
    /** Resolved comm time / stats stashed until the step completes. */
    std::vector<double> stepCommT_;
    std::vector<CommStats> stepComm_;
    /** Per-GPU double-buffered landing slabs for exchange chunks. */
    std::vector<std::vector<F>> landing_;

    // ABFT state (attachSchedule resets all but the ordinal).
    /** Schedule whose checked steps are verified (keeps coef alive). */
    std::shared_ptr<const StageSchedule> abftSched_;
    std::shared_ptr<const AbftCoefficients<F>> abftCoef_;
    /** Checked-step boundaries consumed so far. */
    size_t abftBoundary_ = 0;
    bool abftInited_ = false;
    /** Per-shard checksums of the data at the current boundary. */
    std::vector<F> abftPrev_;
    /** Pre-step shard snapshot (taken only while injection is live). */
    std::vector<std::vector<F>> abftSnap_;
    /** Cross step already armed (wave path arms at its first node). */
    uint32_t abftCrossInit_ = UINT32_MAX;
    /**
     * Injection clock: one tick per compute step with the guard
     * active, monotone across reschedules, identical in both dispatch
     * modes — the (device, step, attempt) triple of every draw is
     * unique for the run (sim/fault.hh seed-derivation contract).
     */
    uint64_t stepOrdinal_ = 0;
};

} // namespace unintt

#endif // UNINTT_UNINTT_EXECUTORS_HH
