/**
 * @file
 * Step executors: the interpreters of the stage-schedule IR
 * (schedule.hh).
 *
 * The executor contract: an executor consumes ScheduleSteps in order
 * via onStep() and appends the step's phases to a SimReport. It may
 * return a non-ok Status (aborting the run) or request a reschedule
 * (the dispatch loop swaps in the executor's recompiled schedule and
 * restarts from its first step — how mid-run degradation re-plans the
 * remaining stages).
 *
 *  - AnalyticStepExecutor prices each step's precomputed counters
 *    without touching data (analyticRun).
 *  - FunctionalStepExecutor additionally executes the bit-exact field
 *    arithmetic on the host pool, then defers to the analytic pricing
 *    — the timeline is identical by construction.
 *  - ResilientStepExecutor decorates the functional execution of a
 *    single transform with the fault machinery: checksummed exchanges,
 *    bounded-backoff retries, the straggler watchdog, degraded-mode
 *    re-plans, and the post-transform spot check. Resilience decorates
 *    the step dispatch; it does not fork the stage loops.
 *
 * Phase-order note: the IR lists an Exchange before the CrossStage
 * that consumes it (dataflow order), while the report historically
 * shows compute first and the exchange second (with the overlap split
 * computed against that compute). Executors therefore hold the pending
 * Exchange and emit its comm phase right after pricing the paired
 * CrossStage.
 */

#ifndef UNINTT_UNINTT_EXECUTORS_HH
#define UNINTT_UNINTT_EXECUTORS_HH

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/twiddle.hh"
#include "sim/fault.hh"
#include "sim/multi_gpu.hh"
#include "sim/perf_model.hh"
#include "sim/report.hh"
#include "unintt/config.hh"
#include "unintt/distributed.hh"
#include "unintt/health.hh"
#include "unintt/schedule.hh"
#include "unintt/verify.hh"
#include "util/bitops.hh"
#include "util/checksum.hh"
#include "util/logging.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

namespace unintt {

/** Outcome of executing one step. */
struct StepAction
{
    Status status;
    /**
     * When true, the dispatch loop replaces the schedule with the
     * executor's recompiled one and restarts at its first step.
     */
    bool reschedule = false;
};

/**
 * Run @p sched through @p exec step by step. The single interpreter
 * loop shared by run(), analyticRun() and runResilient().
 */
template <typename Exec>
Status
dispatchSchedule(std::shared_ptr<const StageSchedule> sched, Exec &exec)
{
    for (size_t i = 0; i < sched->steps.size();) {
        StepAction act = exec.onStep(sched->steps[i]);
        if (!act.status.ok())
            return act.status;
        if (act.reschedule) {
            sched = exec.reschedule();
            UNINTT_ASSERT(sched != nullptr, "reschedule returned nothing");
            i = 0;
            continue;
        }
        ++i;
    }
    return Status();
}

// ---------------------------------------------------------------------
// Shared functional kernels (bit-exact host execution).
// ---------------------------------------------------------------------

/** Functional butterflies of one cross-GPU stage. */
template <NttField F>
void
crossStageCompute(DistributedVector<F> &data, unsigned s, unsigned logN,
                  const TwiddleTable<F> &tw, NttDirection dir,
                  unsigned lanes)
{
    const unsigned G = data.numGpus();
    const unsigned logMg = log2Exact(G);
    const uint64_t n = 1ULL << logN;
    const uint64_t C = n / G;
    const unsigned partner_gap = 1u << (logMg - s - 1); // in GPU indices

    // Lower-half GPUs of the exchanging pairs. Every pair touches only
    // its own two chunks, so the pairs — further sliced along the chunk
    // when there are fewer pairs than host lanes — execute concurrently
    // on the pool; writes are disjoint across work units, so the result
    // is bit-identical for every thread count.
    std::vector<unsigned> lows;
    lows.reserve(G / 2);
    for (unsigned g = 0; g < G; ++g)
        if ((g / partner_gap) % 2 == 0)
            lows.push_back(g);

    uint64_t slices = 1;
    if (lanes > 1 && lows.size() < lanes)
        slices = std::min<uint64_t>(
            C, (2ULL * lanes + lows.size() - 1) / lows.size());

    hostParallelFor(
        lows.size() * slices, (C / slices) * 3, lanes,
        [&](size_t unit) {
            const unsigned g = lows[unit / slices];
            const uint64_t slice = unit % slices;
            const uint64_t c0 = C * slice / slices;
            const uint64_t c1 = C * (slice + 1) / slices;
            auto &lo = data.chunk(g);
            auto &hi = data.chunk(g + partner_gap);
            // Position of this GPU's chunk inside the half-block.
            const uint64_t j0 =
                static_cast<uint64_t>(g % partner_gap) * C;
            for (uint64_t c = c0; c < c1; ++c) {
                uint64_t j = j0 + c;
                F u = lo[c];
                F v = hi[c];
                if (dir == NttDirection::Forward) {
                    lo[c] = u + v;
                    hi[c] = (u - v) * tw[j << s];
                } else {
                    v = v * tw[j << s];
                    lo[c] = u + v;
                    hi[c] = u - v;
                }
            }
        });
}

/** Functional butterflies of local stages [s_begin, s_end). */
template <NttField F>
void
localStagesCompute(DistributedVector<F> &data, unsigned s_begin,
                   unsigned s_end, unsigned logN,
                   const TwiddleTable<F> &tw, NttDirection dir,
                   unsigned lanes)
{
    const uint64_t n = 1ULL << logN;
    const unsigned G = data.numGpus();
    const uint64_t C = data.chunkSize();

    // Stage order: DIF descends (strides shrink), DIT ascends.
    std::vector<unsigned> stages;
    for (unsigned s = s_begin; s < s_end; ++s)
        stages.push_back(s);
    if (dir == NttDirection::Inverse)
        std::reverse(stages.begin(), stages.end());

    // One fork/join per stage: within a stage every butterfly block is
    // independent, so (gpu, block, j-slice) tuples fan out over the
    // pool and the join is the barrier the next stage needs. Work units
    // write disjoint element ranges, which keeps the output
    // bit-identical for every thread count.
    for (unsigned s : stages) {
        const uint64_t half = n >> (s + 1);
        UNINTT_ASSERT(2 * half <= C, "stage is not GPU-local");
        const uint64_t block = 2 * half;
        const uint64_t blocks_per_gpu = C / block;
        const uint64_t units =
            static_cast<uint64_t>(G) * blocks_per_gpu;
        uint64_t jslices = 1;
        if (lanes > 1 && units < lanes)
            jslices = std::min<uint64_t>(
                half, (2ULL * lanes + units - 1) / units);

        hostParallelFor(
            units * jslices, (half / jslices) * 3, lanes,
            [&](size_t u) {
                const uint64_t unit = u / jslices;
                const uint64_t slice = u % jslices;
                const unsigned g =
                    static_cast<unsigned>(unit / blocks_per_gpu);
                const uint64_t start =
                    (unit % blocks_per_gpu) * block;
                const uint64_t jb = half * slice / jslices;
                const uint64_t je = half * (slice + 1) / jslices;
                auto &chunk = data.chunk(g);
                for (uint64_t j = jb; j < je; ++j) {
                    F a = chunk[start + j];
                    F b = chunk[start + j + half];
                    if (dir == NttDirection::Forward) {
                        chunk[start + j] = a + b;
                        chunk[start + j + half] = (a - b) * tw[j << s];
                    } else {
                        b = b * tw[j << s];
                        chunk[start + j] = a + b;
                        chunk[start + j + half] = a - b;
                    }
                }
            });
    }
}

/** Functional n^-1 scaling of every chunk of every batch entry. */
template <NttField F>
void
inverseScaleCompute(std::vector<DistributedVector<F> *> &batch,
                    uint64_t n, unsigned lanes)
{
    F scale = inverseScale<F>(n);
    const unsigned G = batch.empty() ? 1 : batch[0]->numGpus();
    hostParallelFor(batch.size() * G, batch.empty() ? 0 : batch[0]->chunkSize(),
                    lanes, [&](size_t u) {
                        auto &chunk = batch[u / G]->chunk(
                            static_cast<unsigned>(u % G));
                        for (auto &v : chunk)
                            v *= scale;
                    });
}

/**
 * Functional bit-reversal gather: redistribute the forward transform's
 * globally bit-reversed output into natural order.
 */
template <NttField F>
void
bitRevGatherCompute(DistributedVector<F> &data, unsigned logN)
{
    const std::vector<F> got = data.toGlobal();
    std::vector<F> natural(got.size());
    for (uint64_t i = 0; i < got.size(); ++i)
        natural[i] = got[bitReverse(i, logN)];
    data = DistributedVector<F>::fromGlobal(natural, data.numGpus());
}

// ---------------------------------------------------------------------
// Analytic executor: price the precomputed counters, touch no data.
// ---------------------------------------------------------------------

class AnalyticStepExecutor
{
  public:
    AnalyticStepExecutor(const MultiGpuSystem &sys, const PerfModel &perf,
                         bool overlap_comm, SimReport &report)
        : sys_(sys), perf_(perf), overlap_(overlap_comm), report_(report)
    {
    }

    StepAction
    onStep(const ScheduleStep &st)
    {
        execute(st);
        return StepAction{};
    }

    /** Plain executors never request a reschedule. */
    std::shared_ptr<const StageSchedule>
    reschedule()
    {
        panic("plain executors cannot reschedule");
    }

  protected:
    void
    execute(const ScheduleStep &st)
    {
        switch (st.kind) {
          case StepKind::Exchange:
            pendingExchange_ = &st;
            return;
          case StepKind::CrossStage: {
            double kernel_t = report_.addKernelPhase(st.name, st.stats,
                                                     perf_);
            tagPhase(st);
            UNINTT_ASSERT(pendingExchange_ != nullptr,
                          "cross stage without a pending exchange");
            emitExchange(*pendingExchange_, kernel_t);
            pendingExchange_ = nullptr;
            return;
          }
          case StepKind::LocalPass:
          case StepKind::Scale:
          case StepKind::SpotCheck:
            report_.addKernelPhase(st.name, st.stats, perf_);
            tagPhase(st);
            return;
          case StepKind::BitRevGather: {
            report_.addKernelPhase(st.name, st.stats, perf_);
            tagPhase(st);
            if (st.comm.bytesPerGpu > 0) {
                double t = sys_.fabric.allToAllTime(
                    st.comm.bytesPerGpu, sys_.numGpus);
                report_.addCommPhase(st.name + "-alltoall", t, st.comm);
                tagPhase(st);
            }
            return;
          }
        }
    }

    /**
     * Price and emit the held Exchange, splitting visible/hidden time
     * against the paired compute when overlap is on.
     */
    void
    emitExchange(const ScheduleStep &ex, double kernel_t)
    {
        const Interconnect &fabric =
            ex.crossesNodes ? sys_.nodeFabric : sys_.fabric;
        double comm_t = fabric.pairwiseExchangeTime(ex.comm.bytesPerGpu,
                                                    ex.effectiveDistance);
        if (overlap_) {
            // Segmented pipeline: transfer overlaps butterflies; the
            // longer of the two dominates.
            double visible = std::max(0.0, comm_t - kernel_t);
            report_.addCommPhase(ex.name, visible, ex.comm,
                                 comm_t - visible);
        } else {
            report_.addCommPhase(ex.name, comm_t, ex.comm);
        }
        tagPhase(ex);
    }

    /** Attribute the just-added phase to its IR step. */
    void
    tagPhase(const ScheduleStep &st)
    {
        report_.tagLastPhase(toString(st.kind), toString(st.level));
    }

    const MultiGpuSystem &sys_;
    const PerfModel &perf_;
    const bool overlap_;
    SimReport &report_;
    const ScheduleStep *pendingExchange_ = nullptr;
};

// ---------------------------------------------------------------------
// Functional executor: bit-exact host execution + analytic pricing.
// ---------------------------------------------------------------------

template <NttField F>
class FunctionalStepExecutor : public AnalyticStepExecutor
{
  public:
    FunctionalStepExecutor(const MultiGpuSystem &sys, const PerfModel &perf,
                           bool overlap_comm, SimReport &report,
                           std::vector<DistributedVector<F> *> &batch,
                           const TwiddleTable<F> &tw, unsigned logN,
                           NttDirection dir, unsigned lanes)
        : AnalyticStepExecutor(sys, perf, overlap_comm, report),
          batch_(batch),
          tw_(tw),
          logN_(logN),
          dir_(dir),
          lanes_(lanes)
    {
    }

    StepAction
    onStep(const ScheduleStep &st)
    {
        switch (st.kind) {
          case StepKind::CrossStage:
            for (auto *d : batch_)
                crossStageCompute(*d, st.sBegin, logN_, tw_, dir_, lanes_);
            break;
          case StepKind::LocalPass:
            for (auto *d : batch_)
                localStagesCompute(*d, st.sBegin, st.sEnd, logN_, tw_,
                                   dir_, lanes_);
            break;
          case StepKind::Scale:
            // Explicit twiddle passes are functionally no-ops (the
            // fused execution already applied the factors); only the
            // inverse n^-1 scaling does real work.
            if (st.applyInverseScale)
                inverseScaleCompute(batch_, 1ULL << logN_, lanes_);
            break;
          case StepKind::BitRevGather:
            for (auto *d : batch_)
                bitRevGatherCompute(*d, logN_);
            break;
          case StepKind::Exchange:
          case StepKind::SpotCheck:
            break;
        }
        execute(st);
        return StepAction{};
    }

  private:
    std::vector<DistributedVector<F> *> &batch_;
    const TwiddleTable<F> &tw_;
    const unsigned logN_;
    const NttDirection dir_;
    const unsigned lanes_;
};

// ---------------------------------------------------------------------
// Resilient executor: the fault machinery as a step decorator.
// ---------------------------------------------------------------------

/**
 * Everything the resilient executor needs from the engine besides the
 * data itself: re-planning and re-compiling after a degradation, and
 * the per-engine spot-check seed sequence.
 */
struct ResilientHooks
{
    /** Plan for the (possibly shrunk) machine, via the plan cache. */
    std::function<NttPlan(unsigned logN, const MultiGpuSystem &sys)> replan;
    /** Compile a resume schedule for the current plan/machine. */
    std::function<std::shared_ptr<const StageSchedule>(
        const NttPlan &pl, const MultiGpuSystem &sys, NttDirection dir,
        unsigned resume_stage, unsigned orig_log_mg)>
        recompile;
    /** Derive the next spot-check seed from the configured base. */
    std::function<uint64_t(uint64_t base)> nextSpotSeed;
};

template <NttField F>
class ResilientStepExecutor
{
  public:
    ResilientStepExecutor(MultiGpuSystem sys, const PerfModel &perf,
                          const UniNttConfig &cfg, SimReport &report,
                          DistributedVector<F> &data,
                          const std::vector<F> &input,
                          FaultInjector &faults,
                          const ResilienceConfig &rc,
                          DeviceHealthTracker *health,
                          const TwiddleTable<F> &tw, NttPlan pl,
                          unsigned logMg0, NttDirection dir,
                          unsigned lanes, ResilientHooks hooks,
                          FaultStats &fs)
        : sys_(std::move(sys)),
          perf_(perf),
          cfg_(cfg),
          report_(report),
          data_(data),
          input_(input),
          faults_(faults),
          rc_(rc),
          health_(health),
          tw_(tw),
          pl_(std::move(pl)),
          logMg0_(logMg0),
          dir_(dir),
          lanes_(lanes),
          hooks_(std::move(hooks)),
          fs_(fs)
    {
    }

    StepAction
    onStep(const ScheduleStep &st)
    {
        switch (st.kind) {
          case StepKind::Exchange:
            pendingExchange_ = &st;
            return StepAction{};
          case StepKind::CrossStage:
            return crossStep(st);
          case StepKind::LocalPass:
            localStagesCompute(data_, st.sBegin, st.sEnd, pl_.logN, tw_,
                               dir_, lanes_);
            report_.addKernelPhase(st.name, st.stats, perf_);
            tagPhase(st);
            return StepAction{};
          case StepKind::Scale:
            if (st.applyInverseScale) {
                std::vector<DistributedVector<F> *> batch{&data_};
                inverseScaleCompute(batch, 1ULL << pl_.logN, lanes_);
            }
            report_.addKernelPhase(st.name, st.stats, perf_);
            tagPhase(st);
            return StepAction{};
          case StepKind::SpotCheck:
            return spotCheckStep(st);
          case StepKind::BitRevGather:
            panic("resilient schedules do not reorder output");
        }
        return StepAction{};
    }

    /** Recompile the remaining stages for the degraded machine. */
    std::shared_ptr<const StageSchedule>
    reschedule()
    {
        pendingExchange_ = nullptr;
        auto sched = hooks_.recompile(pl_, sys_, dir_, resumeStage_,
                                      logMg0_);
        report_.setPeakDeviceBytes(sched->peakDeviceBytes);
        return sched;
    }

    /** Resilience counters observed so far. */
    const FaultStats &faultStats() const { return fs_; }

  private:
    /** One cross-GPU stage under the full fault machinery. */
    StepAction
    crossStep(const ScheduleStep &st)
    {
        const unsigned s = st.sBegin;
        ExchangeOutcome out = faults_.nextExchange(rc_.retry.maxRetries);
        fs_.exchanges++;
        if (out.lostGpu >= 0) {
            Status dst = degrade(out.lostGpu, s);
            if (!dst.ok())
                return StepAction{dst, false};
            return StepAction{Status(), /*reschedule=*/true};
        }
        if (out.exhausted)
            return StepAction{
                Status::error(
                    StatusCode::TransientFault,
                    detail::format("cross-GPU exchange at stage %u "
                                   "still failing after %u retries",
                                   s, rc_.retry.maxRetries)),
                false};

        const uint64_t C = pl_.chunkElems();
        const uint64_t bytes = C * sizeof(F);
        // The step's counters already include the checksum generation
        // and verification adds (compiled with resilient=true).
        fs_.checksummedBytes += 2 * bytes;
        const double kernel_t = perf_.kernelSeconds(st.stats);

        const unsigned distance = st.distance;
        const Interconnect &fabric =
            st.crossesNodes ? sys_.nodeFabric : sys_.fabric;
        const double once =
            fabric.pairwiseExchangeTime(bytes, st.effectiveDistance);
        CommStats comm{bytes, 1};
        // Faults at this stage are attributed to gpu 0's exchange
        // partner — the same device whose chunk demonstrates the
        // corruption below. An approximation (every pair faults
        // identically in the simulation), but a deterministic one,
        // so the health tracker sees a reproducible history.
        const unsigned suspect = distance;
        double comm_t = once * out.stragglerFactor;
        if (out.stragglerFactor > 1.0) {
            fs_.stragglerEvents++;
            if (health_ != nullptr && suspect < health_->numDevices())
                health_->recordFault(suspect);
            if (rc_.watchdogDeadlineFactor > 0.0 &&
                out.stragglerFactor > rc_.watchdogDeadlineFactor) {
                // Watchdog: the exchange is aborted at the deadline
                // and retried once on a clean link, bounding an
                // arbitrarily slow straggler at deadline + one
                // retransmission.
                comm_t = once * rc_.watchdogDeadlineFactor + once;
                comm.retries += 1;
                fs_.watchdogTimeouts++;
            }
        }
        for (unsigned i = 0; i < out.transientFailures; ++i)
            comm_t += rc_.retry.backoffSeconds(i) + once;
        comm.retries += out.transientFailures;
        fs_.transientRetries += out.transientFailures;
        if (health_ != nullptr && out.transientFailures > 0 &&
            suspect < health_->numDevices())
            health_->recordFault(suspect);

        // Corrupted payload: the checksum catches the flip (shown
        // functionally on the first exchanging pair), forcing
        // retransmissions until a clean copy lands.
        bool corrupted = out.corrupted;
        unsigned tries = 0;
        while (corrupted) {
            const std::vector<F> &payload = data_.chunk(distance);
            const uint64_t good = checksumBytes(payload.data(), bytes);
            std::vector<F> received = payload;
            auto *raw =
                reinterpret_cast<unsigned char *>(received.data());
            const uint64_t bit = out.corruptBit % (bytes * 8);
            raw[bit / 8] ^=
                static_cast<unsigned char>(1u << (bit % 8));
            const uint64_t seen = checksumBytes(received.data(), bytes);
            UNINTT_ASSERT(
                seen != good,
                "single-bit corruption must change the checksum");
            fs_.corruptionsDetected++;
            if (health_ != nullptr && suspect < health_->numDevices())
                health_->recordFault(suspect);
            comm_t += once;
            comm.retries += 1;
            if (++tries > rc_.retry.maxRetries)
                return StepAction{
                    Status::error(
                        StatusCode::DataCorruption,
                        detail::format(
                            "payload checksum mismatch at stage %u "
                            "persisted across %u retransmissions",
                            s, rc_.retry.maxRetries)),
                    false};
            corrupted = faults_.retransmitCorrupted();
        }

        crossStageCompute(data_, s, pl_.logN, tw_, dir_, lanes_);
        report_.addKernelPhase(st.name, st.stats, perf_);
        tagPhase(st);
        UNINTT_ASSERT(pendingExchange_ != nullptr,
                      "cross stage without a pending exchange");
        const std::string &exchange_name = pendingExchange_->name;
        if (cfg_.overlapComm) {
            double visible = std::max(0.0, comm_t - kernel_t);
            report_.addCommPhase(exchange_name, visible, comm,
                                 comm_t - visible);
        } else {
            report_.addCommPhase(exchange_name, comm_t, comm);
        }
        tagPhase(*pendingExchange_);
        pendingExchange_ = nullptr;
        return StepAction{};
    }

    /**
     * Permanent device loss: re-shard the data onto the surviving
     * power-of-two subset, re-plan, and price the recovery — the
     * detection timeout, pulling the lost chunk's replica from its
     * last exchange partner, and the all-to-all reshard. The caller
     * then requests a reschedule from stage @p s.
     */
    Status
    degrade(int lost_gpu, unsigned s)
    {
        // The loss is attributed whether or not the recovery below is
        // allowed to absorb it — the next run must know either way.
        if (health_ != nullptr && lost_gpu >= 0 &&
            static_cast<unsigned>(lost_gpu) < health_->numDevices())
            health_->recordDeviceLost(static_cast<unsigned>(lost_gpu));
        if (!rc_.allowDegraded)
            return Status::error(
                StatusCode::DeviceLost,
                detail::format(
                    "GPU %d lost and degraded mode is disabled",
                    lost_gpu));
        if (sys_.numGpus <= 1)
            return Status::error(
                StatusCode::DeviceLost,
                "GPU lost with no surviving devices to re-plan onto");
        const uint64_t n = 1ULL << pl_.logN;
        const unsigned newG = sys_.numGpus / 2;
        const uint64_t lost_chunk_bytes = pl_.chunkElems() * sizeof(F);
        const uint64_t reshard_bytes = (n / newG) * sizeof(F);
        double t = rc_.detectionSeconds;
        t += sys_.fabric.pairwiseExchangeTime(lost_chunk_bytes, 1);
        t += sys_.fabric.allToAllTime(reshard_bytes, newG);
        CommStats comm;
        comm.bytesPerGpu = reshard_bytes + lost_chunk_bytes;
        comm.messages = newG;
        report_.addCommPhase(
            "degrade-to-" + std::to_string(newG) + "gpu-reshard", t,
            comm);
        Status reshard_st = data_.reshardChecked(newG);
        if (!reshard_st.ok())
            return reshard_st;
        sys_.numGpus = newG;
        if (sys_.gpusPerNode != 0 && sys_.numGpus <= sys_.gpusPerNode)
            sys_.gpusPerNode = 0; // survivors fit inside one node
        pl_ = hooks_.replan(pl_.logN, sys_);
        fs_.devicesLost++;
        fs_.degradedReplans++;
        resumeStage_ = s;
        return Status();
    }

    /**
     * Post-transform spot check against a direct evaluation
     * (unintt/verify.hh): the backstop that catches whatever the
     * exchange checksums cannot see.
     */
    StepAction
    spotCheckStep(const ScheduleStep &st)
    {
        const std::vector<F> out_global = data_.toGlobal();
        report_.addKernelPhase(st.name, st.stats, perf_);
        tagPhase(st);
        fs_.spotChecks += rc_.spotChecks;
        // Derived seed: repeated checks of the same transform sample
        // fresh positions (the config seed alone would re-sample the
        // same ones every run). Drawn only when the check actually
        // executes, so earlier-failing runs do not advance the
        // engine's seed sequence.
        const uint64_t spot_seed = hooks_.nextSpotSeed(rc_.spotCheckSeed);
        const bool good =
            dir_ == NttDirection::Forward
                ? spotCheckForward(input_, out_global, rc_.spotChecks,
                                   spot_seed)
                : spotCheckInverse(input_, out_global, rc_.spotChecks,
                                   spot_seed);
        if (!good) {
            fs_.spotCheckFailures++;
            report_.addFaultStats(fs_);
            return StepAction{
                Status::error(
                    StatusCode::DataCorruption,
                    "post-transform spot check failed: output does not "
                    "match a direct evaluation of the input"),
                false};
        }
        return StepAction{};
    }

    void
    tagPhase(const ScheduleStep &st)
    {
        report_.tagLastPhase(toString(st.kind), toString(st.level));
    }

    MultiGpuSystem sys_; // shrinks when devices drop out
    const PerfModel &perf_;
    const UniNttConfig &cfg_;
    SimReport &report_;
    DistributedVector<F> &data_;
    const std::vector<F> &input_;
    FaultInjector &faults_;
    const ResilienceConfig &rc_;
    DeviceHealthTracker *health_;
    const TwiddleTable<F> &tw_;
    NttPlan pl_;
    const unsigned logMg0_;
    const NttDirection dir_;
    const unsigned lanes_;
    ResilientHooks hooks_;
    /** The caller's counters (may already hold health exclusions). */
    FaultStats &fs_;
    const ScheduleStep *pendingExchange_ = nullptr;
    unsigned resumeStage_ = 0;
};

} // namespace unintt

#endif // UNINTT_UNINTT_EXECUTORS_HH
