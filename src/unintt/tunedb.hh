/**
 * @file
 * The persisted schedule-tuning database.
 *
 * The autotuner (unintt/tuner.hh) searches the joint host-execution
 * space {tile size, fusion on/off, radix mix, host threads, ISA path,
 * exchange overlap} per (field, logN, gpus, hardware model, executor)
 * and records the winner here. The DB is a versioned, human-diffable
 * JSON file (tuning/tunedb.json by default, kept in-repo so tuned
 * configurations travel with the code); UniNttEngine consults it ahead
 * of the 256 KiB cache heuristic on every run.
 *
 * Resolution order for every knob — strongest first:
 *
 *   1. environment (UNINTT_FORCE_ISA for the ISA path; UNINTT_TUNEDB
 *      picks the DB file or disables it with "off"),
 *   2. an explicit config pin (a non-Auto isaPath, a nonzero
 *      hostTileLog2 / hostThreads) — the DB never overrides a value
 *      the caller set by hand,
 *   3. a DB hit for the exact key,
 *   4. the built-in heuristic.
 *
 * Robustness contract: a missing file, a corrupt or truncated file,
 * and a version mismatch all degrade to the heuristic silently (the
 * event is counted in tuneDbCounters(), never thrown); entries under
 * keys the current process never asks for are preserved verbatim
 * across a tune-refresh, so one DB file can hold winners for several
 * machines. A DB-supplied tile is still clamped to the lane-aware
 * floor of the active kernel path (config.hh resolvedHostTileLog2's
 * log2(lanes)+3), with the clamp counted as a warning rather than
 * silently accepted.
 */

#ifndef UNINTT_UNINTT_TUNEDB_HH
#define UNINTT_UNINTT_TUNEDB_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/multi_gpu.hh"
#include "unintt/config.hh"

namespace unintt {

/** Schema version written to (and required of) every DB file. */
constexpr unsigned kTuneDbVersion = 1;

/** Default on-disk location, relative to the working directory. */
extern const char *const kDefaultTuneDbPath;

/** Identity of one tuning point: everything the optimum depends on. */
struct TuneKey
{
    std::string field;    ///< F::kName ("goldilocks", ...)
    unsigned logN = 0;    ///< transform size
    unsigned gpus = 0;    ///< shard count
    std::string hw;       ///< tuneHwId() of the simulated machine
    std::string executor; ///< "functional" (measured) or "analytic"

    /** Stable "field|logN|gpus|hw|executor" form (sort + map key). */
    std::string canonical() const;

    bool operator==(const TuneKey &) const = default;
};

/** Hardware identity string of @p sys used in TuneKey::hw. */
std::string tuneHwId(const MultiGpuSystem &sys);

/** The tunable knobs a DB entry pins (subset of UniNttConfig). */
struct TunedParams
{
    unsigned hostTileLog2 = 0; ///< 0 = keep the heuristic tile
    bool fuseLocalPasses = true;
    unsigned fusedRadixLog2 = 3; ///< 3 = r8+r4+r2, 2 = r4+r2, 1 = r2
    unsigned hostThreads = 0;    ///< 0 = every pool lane
    IsaPath isaPath = IsaPath::Auto;
    bool overlapComm = true;

    /** Compact "tile=.. radix=.. ..." form for tables and logs. */
    std::string toString() const;

    bool operator==(const TunedParams &) const = default;
};

/** One persisted winner: key, knobs, and the timings behind it. */
struct TuneEntry
{
    TuneKey key;
    TunedParams params;
    /** Winner's repeat-median seconds (analytic-priced for sims). */
    double seconds = 0;
    /** The heuristic candidate's seconds on the same measurement. */
    double heuristicSeconds = 0;
};

/**
 * In-memory image of one DB file. Load/save are whole-file (the file
 * is small and the writes must be atomic at the granularity users
 * diff); entries are kept in insertion order and serialized sorted by
 * canonical key so repeated saves of the same content are
 * byte-identical.
 */
class TuningDb
{
  public:
    /** What loadFile/loadJson observed (all false = clean load). */
    struct LoadStatus
    {
        bool missing = false;      ///< file did not exist
        bool corrupt = false;      ///< unparseable / wrong shape
        bool staleVersion = false; ///< version != kTuneDbVersion
        std::string detail;        ///< human-readable reason

        bool ok() const { return !missing && !corrupt && !staleVersion; }
    };

    /** Parse @p path. Any failure leaves the DB empty (heuristic). */
    LoadStatus loadFile(const std::string &path);

    /** Parse a JSON document (tests and loadFile both land here). */
    LoadStatus loadJson(const std::string &text);

    /** Serialize: sorted entries, fixed formatting, version header. */
    std::string toJson() const;

    /** Write toJson() to @p path; false on I/O failure. */
    bool saveFile(const std::string &path) const;

    /** The entry under @p key, or nullptr. */
    const TuneEntry *find(const TuneKey &key) const;

    /** Insert or replace the entry under @p e.key. */
    void put(const TuneEntry &e);

    size_t size() const { return entries_.size(); }
    const std::vector<TuneEntry> &entries() const { return entries_; }

  private:
    std::vector<TuneEntry> entries_;
};

/**
 * The DB file this config resolves to: UNINTT_TUNEDB beats
 * UniNttConfig::tuneDbPath beats kDefaultTuneDbPath; the literal value
 * "off" (either source) and useTuneDb == false both yield "" (DB
 * consultation disabled).
 */
std::string resolveTuneDbPath(const UniNttConfig &cfg);

/** Process-wide DB consultation counters (tests / reports). */
struct TuneDbCounters
{
    uint64_t hits = 0;          ///< runs served a DB entry
    uint64_t misses = 0;        ///< DB present but no entry for the key
    uint64_t staleVersion = 0;  ///< files dropped for a version mismatch
    uint64_t corruptFiles = 0;  ///< files dropped as corrupt/truncated
    uint64_t clampWarnings = 0; ///< DB tiles raised to the lane floor
};

TuneDbCounters tuneDbCounters();

/**
 * Drop every cached DB image (and the cached load failures), forcing
 * the next resolveTunedConfig to re-read the files. Call after writing
 * a DB in-process (the tuner CLI does) or between tests.
 */
void invalidateTuneDbCache();

/** Outcome of the per-run DB consultation. */
struct TunedConfig
{
    UniNttConfig cfg;  ///< effective config (== input when !tuned)
    bool tuned = false;
    /** DB tiles below the lane-aware floor raised on this resolve. */
    unsigned clampWarnings = 0;
};

/**
 * Apply @p p onto @p cfg honoring explicit pins (see the file
 * comment's resolution order) and the lane-aware tile floor for
 * elements of @p element_bytes. Returns the number of clamp warnings.
 */
unsigned applyTunedParams(UniNttConfig &cfg, const TunedParams &p,
                          size_t element_bytes);

/**
 * The engine's per-run entry point: look up (field, logN, gpus,
 * tuneHwId(sys), executor) in the DB resolveTuneDbPath(cfg) names and
 * return the effective config. DB images are cached per path (one
 * file read per process per path); every failure mode falls back to
 * the heuristic config unchanged.
 */
TunedConfig resolveTunedConfig(const UniNttConfig &cfg,
                               const char *field, size_t element_bytes,
                               unsigned logN, const MultiGpuSystem &sys,
                               const char *executor);

} // namespace unintt

#endif // UNINTT_UNINTT_TUNEDB_HH
