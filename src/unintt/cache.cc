#include "unintt/cache.hh"

namespace unintt {

NttPlan
PlanCache::get(unsigned logN, const MultiGpuSystem &sys,
               size_t element_bytes, unsigned force_log_tile,
               bool *hit_out)
{
    Key key{logN,
            sys.numGpus,
            element_bytes,
            force_log_tile,
            sys.gpu.maxThreadsPerBlock,
            sys.gpu.smemBytesPerBlock,
            sys.gpu.warpSize,
            sys.gpu.dramCapacityBytes};

    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (auto it = lru_.begin(); it != lru_.end(); ++it) {
            if (it->key == key) {
                counters_.hits++;
                if (hit_out)
                    *hit_out = true;
                lru_.splice(lru_.begin(), lru_, it);
                return lru_.front().plan;
            }
        }
    }

    // Plan outside the lock: the planner may fatal() on user error and
    // concurrent misses of the same key are merely redundant work.
    NttPlan plan = planNttWithTile(logN, sys, element_bytes,
                                   force_log_tile);

    std::lock_guard<std::mutex> lk(mutex_);
    counters_.misses++;
    if (hit_out)
        *hit_out = false;
    lru_.push_front(Entry{key, plan});
    while (lru_.size() > maxEntries_)
        lru_.pop_back();
    return plan;
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lk(mutex_);
    lru_.clear();
}

CacheCounters
PlanCache::counters() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return counters_;
}

size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return lru_.size();
}

PlanCache &
PlanCache::global()
{
    static PlanCache cache;
    return cache;
}

} // namespace unintt
