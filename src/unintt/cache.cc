#include "unintt/cache.hh"

#include "field/dispatch.hh"

namespace unintt {

NttPlan
PlanCache::get(unsigned logN, const MultiGpuSystem &sys,
               size_t element_bytes, unsigned force_log_tile,
               bool *hit_out)
{
    Key key{logN,
            sys.numGpus,
            element_bytes,
            force_log_tile,
            sys.gpu.maxThreadsPerBlock,
            sys.gpu.smemBytesPerBlock,
            sys.gpu.warpSize,
            sys.gpu.dramCapacityBytes};

    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (auto it = lru_.begin(); it != lru_.end(); ++it) {
            if (it->key == key) {
                counters_.hits++;
                if (hit_out)
                    *hit_out = true;
                lru_.splice(lru_.begin(), lru_, it);
                return lru_.front().plan;
            }
        }
    }

    // Plan outside the lock: the planner may fatal() on user error and
    // concurrent misses of the same key are merely redundant work.
    NttPlan plan = planNttWithTile(logN, sys, element_bytes,
                                   force_log_tile);

    std::lock_guard<std::mutex> lk(mutex_);
    counters_.misses++;
    if (hit_out)
        *hit_out = false;
    lru_.push_front(Entry{key, plan});
    while (lru_.size() > maxEntries_)
        lru_.pop_back();
    return plan;
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lk(mutex_);
    lru_.clear();
}

CacheCounters
PlanCache::counters() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return counters_;
}

size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return lru_.size();
}

PlanCache &
PlanCache::global()
{
    static PlanCache cache;
    return cache;
}

std::shared_ptr<const StageSchedule>
ScheduleCache::get(const NttPlan &pl, const MultiGpuSystem &sys,
                   NttDirection dir, size_t element_bytes,
                   const UniNttConfig &cfg, const CostConstants &costs,
                   size_t batch, bool *hit_out, bool tuned)
{
    Key key{pl.logN,
            sys.numGpus,
            sys.gpusPerNode,
            static_cast<int>(dir),
            element_bytes,
            batch,
            cfg.forceLogBlockTile,
            cfg.fuseTwiddles,
            cfg.onTheFlyTwiddles,
            cfg.paddedSmem,
            cfg.warpShuffle,
            cfg.naturalOrderOutput,
            cfg.fuseLocalPasses,
            cfg.overlapComm,
            cfg.hostTileLog2,
            static_cast<unsigned>(resolveIsaPath(cfg.isaPath)),
            tuned,
            costs.twiddleTableDramFraction,
            costs.onTheFlyExtraMuls,
            costs.unpaddedConflictReplays,
            sys.gpu.maxThreadsPerBlock,
            sys.gpu.smemBytesPerBlock,
            sys.gpu.warpSize,
            sys.gpu.dramCapacityBytes,
            sys.gpu.dramSectorBytes};

    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (auto it = lru_.begin(); it != lru_.end(); ++it) {
            if (it->key == key) {
                counters_.hits++;
                if (hit_out)
                    *hit_out = true;
                lru_.splice(lru_.begin(), lru_, it);
                return lru_.front().schedule;
            }
        }
    }

    // Compile outside the lock; concurrent misses of the same key are
    // merely redundant work.
    ScheduleOptions opts;
    opts.batch = batch;
    auto sched = std::make_shared<const StageSchedule>(
        compileSchedule(pl, sys, dir, element_bytes, cfg, costs, opts));

    std::lock_guard<std::mutex> lk(mutex_);
    counters_.misses++;
    if (hit_out)
        *hit_out = false;
    lru_.push_front(Entry{key, sched});
    while (lru_.size() > maxEntries_)
        lru_.pop_back();
    return sched;
}

void
ScheduleCache::clear()
{
    std::lock_guard<std::mutex> lk(mutex_);
    lru_.clear();
}

CacheCounters
ScheduleCache::counters() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return counters_;
}

size_t
ScheduleCache::size() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return lru_.size();
}

ScheduleCache &
ScheduleCache::global()
{
    static ScheduleCache cache;
    return cache;
}

} // namespace unintt
