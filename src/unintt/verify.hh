/**
 * @file
 * Randomized output verification. At the scales multi-GPU NTTs run
 * (2^24 and up), re-checking a transform with a second full algorithm
 * is as expensive as the transform itself; spot-checking k output
 * positions against a direct Horner evaluation of the input costs
 * O(k*n) field ops, catches any single corrupted output with
 * probability k/n per check set, and — because the positions are
 * random — catches the systematic corruptions that actually occur
 * (a wrong twiddle table, a mis-routed exchange) with overwhelming
 * probability. Production provers run exactly this kind of check after
 * data-movement-heavy kernels.
 *
 * The seed is deliberately caller-supplied with no default: a fixed
 * default made every call sample the same positions, so repeated
 * checks of the same transform added no coverage. Callers that check
 * repeatedly must derive a fresh seed per call (the resilient engine
 * mixes a per-engine counter into ResilienceConfig::spotCheckSeed).
 */

#ifndef UNINTT_UNINTT_VERIFY_HH
#define UNINTT_UNINTT_VERIFY_HH

#include <vector>

#include "field/field_traits.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace unintt {

/**
 * Spot-check a forward transform: @p input in natural order,
 * @p output in the engine's bit-reversed order. Verifies
 * @p checks random positions k by comparing output against the Horner
 * evaluation of the input polynomial at w^k.
 *
 * @return true iff every sampled position matches.
 */
template <NttField F>
bool
spotCheckForward(const std::vector<F> &input, const std::vector<F> &output,
                 unsigned checks, uint64_t seed)
{
    UNINTT_ASSERT(input.size() == output.size(), "size mismatch");
    const size_t n = input.size();
    UNINTT_ASSERT(isPow2(n), "size must be a power of two");
    const unsigned log_n = log2Exact(n);
    const F w = F::rootOfUnity(log_n);

    Rng rng(seed);
    for (unsigned c = 0; c < checks; ++c) {
        uint64_t k = rng.below(n);
        F x = w.pow(k);
        // Horner from the highest coefficient down.
        F acc = F::zero();
        for (size_t i = n; i-- > 0;)
            acc = acc * x + input[i];
        if (!(output[bitReverse(k, log_n)] == acc))
            return false;
    }
    return true;
}

/**
 * Spot-check an inverse transform: @p input the bit-reversed-order
 * evaluations the inverse NTT consumed, @p output the natural-order
 * coefficients it produced (n^-1 scaling included). Verifies @p checks
 * random positions k by re-evaluating the output polynomial at w^k
 * (Horner) and comparing against the original evaluation
 * input[bitReverse(k)].
 */
template <NttField F>
bool
spotCheckInverse(const std::vector<F> &input, const std::vector<F> &output,
                 unsigned checks, uint64_t seed)
{
    UNINTT_ASSERT(input.size() == output.size(), "size mismatch");
    const size_t n = input.size();
    UNINTT_ASSERT(isPow2(n), "size must be a power of two");
    const unsigned log_n = log2Exact(n);
    const F w = F::rootOfUnity(log_n);

    Rng rng(seed);
    for (unsigned c = 0; c < checks; ++c) {
        uint64_t k = rng.below(n);
        F x = w.pow(k);
        F acc = F::zero();
        for (size_t i = n; i-- > 0;)
            acc = acc * x + output[i];
        if (!(input[bitReverse(k, log_n)] == acc))
            return false;
    }
    return true;
}

/**
 * Spot-check a coset forward transform (see
 * UniNttEngine::forwardCoset): output position k should hold
 * P(shift * w^k).
 */
template <NttField F>
bool
spotCheckCoset(const std::vector<F> &input, const std::vector<F> &output,
               F shift, unsigned checks, uint64_t seed)
{
    UNINTT_ASSERT(input.size() == output.size(), "size mismatch");
    const size_t n = input.size();
    const unsigned log_n = log2Exact(n);
    const F w = F::rootOfUnity(log_n);

    Rng rng(seed);
    for (unsigned c = 0; c < checks; ++c) {
        uint64_t k = rng.below(n);
        F x = shift * w.pow(k);
        F acc = F::zero();
        for (size_t i = n; i-- > 0;)
            acc = acc * x + input[i];
        if (!(output[bitReverse(k, log_n)] == acc))
            return false;
    }
    return true;
}

} // namespace unintt

#endif // UNINTT_UNINTT_VERIFY_HH
