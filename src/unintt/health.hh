/**
 * @file
 * Cross-transform device health tracking.
 *
 * The resilient engine paths (engine.hh) recover a *single* transform
 * from faults, but they forget everything once the run returns: a
 * device that corrupts every other exchange gets retried forever, one
 * transform after another. A long-running proof service needs memory —
 * the classic circuit-breaker pattern applied to devices:
 *
 *   Healthy ──faults──▶ Suspect ──more faults──▶ Quarantined
 *      ▲                   │                         │
 *      │ clean runs        │ clean runs              │ cool-down runs
 *      └───────────────────┘                         ▼
 *      ▲                                         Probation
 *      └──────── clean probation runs ───────────────┘
 *                (any fault re-quarantines)
 *
 * A DeviceHealthTracker is fed fault attributions during every
 * resilient engine run and consulted *before* the next run's plan is
 * made: quarantined devices are excluded up front (the data is
 * resharded onto the largest healthy power-of-two subset), instead of
 * being discovered broken again mid-transform. Permanently lost
 * devices never leave quarantine; merely flaky ones re-enter service
 * through a probation period after a cool-down.
 *
 * The run clock is the unit of decay: endRun() advances every
 * device's clean-run / cool-down counters once per engine run.
 */

#ifndef UNINTT_UNINTT_HEALTH_HH
#define UNINTT_UNINTT_HEALTH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace unintt {

/** Circuit-breaker state of one device. */
enum class DeviceHealth {
    /** Full service. */
    Healthy,
    /** Recent faults; still scheduled, decays back to Healthy. */
    Suspect,
    /** Excluded from plans until the cool-down elapses. */
    Quarantined,
    /** Re-admitted on trial; one fault re-quarantines. */
    Probation,
};

/** Printable name of a health state ("QUARANTINED" style). */
const char *toString(DeviceHealth state);

/** Thresholds of the health state machine. */
struct HealthPolicy
{
    /** Accumulated faults that turn Healthy into Suspect. */
    unsigned suspectAfterFaults = 2;
    /** Accumulated faults that turn Suspect into Quarantined. */
    unsigned quarantineAfterFaults = 5;
    /** Clean runs that decay Suspect back to Healthy. */
    unsigned suspectDecayRuns = 4;
    /** Cool-down runs before a quarantined device gets Probation. */
    unsigned probationAfterRuns = 4;
    /** Clean probation runs before full re-admission. */
    unsigned probationCleanRuns = 2;
    /**
     * Let devices that died (recordDeviceLost) re-enter probation.
     * Off by default: a dropout is permanent hardware loss in the
     * simulated machine, unlike a flaky link.
     */
    bool readmitLostDevices = false;
};

/**
 * Per-device circuit breaker over a fixed device set. Not thread-safe;
 * one tracker belongs to one (serial) stream of engine runs.
 */
class DeviceHealthTracker
{
  public:
    explicit DeviceHealthTracker(unsigned num_devices,
                                 HealthPolicy policy = HealthPolicy{});

    /** Devices tracked (the machine's full complement). */
    unsigned numDevices() const
    {
        return static_cast<unsigned>(devices_.size());
    }

    /** The active policy. */
    const HealthPolicy &policy() const { return policy_; }

    /** Current state of device @p device. */
    DeviceHealth state(unsigned device) const;

    /** Attribute one fault (transient, corruption, straggler). */
    void recordFault(unsigned device);

    /** Attribute a permanent dropout; quarantines immediately. */
    void recordDeviceLost(unsigned device);

    /**
     * Advance the run clock: decay Suspect devices that stayed clean,
     * credit Probation devices, and tick Quarantined cool-downs.
     * Call once after every engine run (the engine does this itself
     * when handed a tracker).
     */
    void endRun();

    /** True iff the device may appear in a plan. */
    bool usable(unsigned device) const;

    /** Devices currently eligible for planning, ascending. */
    std::vector<unsigned> usableDevices() const;

    /** Number of usable devices. */
    unsigned usableCount() const;

    /**
     * Largest power-of-two subset the planner can use (plans require
     * power-of-two GPU counts). 0 when every device is quarantined.
     */
    unsigned usablePowerOfTwo() const;

    /**
     * Lifetime fault events attributed to @p device (transients,
     * corruptions, stragglers and dropouts alike). Unlike the decaying
     * fault score driving the state machine, this counter only grows —
     * a service layer reads it after a sub-fleet run to translate the
     * run-local attribution back onto fleet device ids.
     */
    uint64_t faultEvents(unsigned device) const;

    /** True iff @p device was recorded permanently lost. */
    bool isLost(unsigned device) const;

    /** Total Healthy/Suspect/Probation → Quarantined transitions. */
    uint64_t quarantineEvents() const { return quarantineEvents_; }

    /** Completed runs (the decay clock). */
    uint64_t runsObserved() const { return runsObserved_; }

    /** One-line state summary for logs: "0:HEALTHY 1:QUARANTINED ...". */
    std::string toString() const;

  private:
    struct Device
    {
        DeviceHealth state = DeviceHealth::Healthy;
        /** Accumulated fault score driving promotion. */
        unsigned faultScore = 0;
        /** Consecutive clean runs while Suspect. */
        unsigned cleanRuns = 0;
        /** Runs spent in quarantine (cool-down clock). */
        unsigned quarantineRuns = 0;
        /** Consecutive clean runs while on Probation. */
        unsigned probationRuns = 0;
        /** Died permanently; quarantine never lifts. */
        bool lost = false;
        /** Saw a fault since the last endRun(). */
        bool faultedThisRun = false;
        /** Lifetime attributed fault events (never decays). */
        uint64_t faultEvents = 0;
    };

    void quarantine(Device &dev);

    HealthPolicy policy_;
    std::vector<Device> devices_;
    uint64_t quarantineEvents_ = 0;
    uint64_t runsObserved_ = 0;
};

} // namespace unintt

#endif // UNINTT_UNINTT_HEALTH_HH
