/**
 * @file
 * ABFT compute-path integrity: random-linear-combination (RLC)
 * checksums carried analytically through every linear step of a
 * compiled schedule.
 *
 * Every step of a transform schedule is a linear map A_k over the
 * sharded data x. Pick a random coefficient vector r and track the
 * scalar s_k = <r_k, x_k> per shard: if r_{k-1} = A_k^T r_k, then
 * <r_{k-1}, x_{k-1}> == <r_k, A_k x_{k-1}> — the checksum of the step's
 * *input* under the transposed coefficients predicts the checksum of
 * its *output* under the original ones. The executor therefore never
 * runs a transposed pass at runtime: AbftCoefficients precomputes the
 * coefficient vector at every step boundary (generated backward from a
 * seeded final vector through the step transposes), and each post-step
 * check is one O(n/G) dot product per shard compared for equality.
 *
 * Transposes per step kind (butterfly pairs are disjoint, so the
 * transpose is in-place over each pair):
 *  - forward DIF butterfly (a,b) -> (a+b, (a-b)w):
 *      r_a' = r_a + w r_b,  r_b' = r_a - w r_b
 *  - inverse DIT butterfly (a,b) -> (a+wb, a-wb):
 *      r_a' = r_a + r_b,    r_b' = w (r_a - r_b)
 *  - inverse n^-1 scaling (x -> sx): r' = s r  (baked into the
 *    generation, so every runtime comparison is plain equality)
 *  - explicit twiddle passes (fusion off) are functional no-ops:
 *    identity transition.
 * Fused local groups transpose stage by stage in reverse execution
 * order — the fused kernels are bit-identical to the per-stage walk,
 * so the per-stage transposes compose to the group's exact transpose.
 *
 * Chunk-local steps (local passes, scaling) preserve per-shard
 * checksums individually; a cross-GPU butterfly mixes exactly the two
 * chunks of each exchanging pair, so its invariant is the *pairwise
 * sum* of the two shard checksums. A single flipped bit changes the
 * dot product unless its coefficient weight happens to vanish — a
 * 2^-64 event for the 64-bit fields the chaos suite drives — which is
 * what lets the executor localize corruption to a shard, then to a
 * tile, and recompute only that tile (executors.hh).
 *
 * The vectors are immutable and shared through a process-wide LRU
 * cache keyed by a fingerprint of the checked-step geometry, mirroring
 * TwiddleSlabCache: proving loops re-run the same schedule shapes, and
 * regeneration costs about one transform.
 */

#ifndef UNINTT_UNINTT_ABFT_HH
#define UNINTT_UNINTT_ABFT_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "field/dispatch.hh"
#include "field/field_traits.hh"
#include "field/goldilocks.hh"
#include "ntt/twiddle.hh"
#include "ntt/twiddle_cache.hh"
#include "unintt/distributed.hh"
#include "unintt/schedule.hh"
#include "util/checksum.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace unintt {

/** True iff @p st carries an ABFT checksum transition. */
inline bool
abftChecked(const ScheduleStep &st)
{
    return st.abftCheckElems != 0;
}

/**
 * Fingerprint of everything the coefficient vectors depend on: the
 * seed, the transform geometry, and the (kind, stage range, distance,
 * scaling) signature of every checked step. Schedules that agree here
 * produce identical vectors, so resume schedules after degradation key
 * their own entries while repeated clean runs share one.
 */
inline uint64_t
abftFingerprint(const StageSchedule &sched, uint64_t seed)
{
    uint64_t h = mix64(seed ^ 0xabf7f19e50d5eedfULL);
    h = mix64(h ^ sched.logN);
    h = mix64(h ^ (sched.dir == NttDirection::Forward ? 1u : 2u));
    h = mix64(h ^ sched.plan.chunkElems());
    for (const ScheduleStep &st : sched.steps) {
        if (!abftChecked(st))
            continue;
        h = mix64(h ^ static_cast<uint64_t>(st.kind));
        h = mix64(h ^ st.sBegin);
        h = mix64(h ^ st.sEnd);
        h = mix64(h ^ st.distance);
        h = mix64(h ^ (st.applyInverseScale ? 1u : 0u));
    }
    return h;
}

/**
 * RLC dot product over @p count elements (checks and tile
 * localization), via the bound dot-span kernel (field/kernels.hh).
 * Every registered table carries the same value-exact reduction — the
 * four-chain scalar form, with a lazy-u128 Goldilocks path that folds
 * its wraps back to the identical canonical value — and the reduction
 * order is fixed, so the result is deterministic across ISA paths and
 * checks/localization may mix freely with historic checksums.
 */
template <NttField F>
F
abftSpanDot(const F *coef, const F *x, uint64_t count)
{
    return fieldKernels<F>().dotSpan(coef, x, count);
}

/**
 * Per-shard RLC checksums of @p data under @p coef (flat global
 * layout: chunk g owns [g*C, (g+1)*C)). Partial sums are reduced in a
 * fixed order, and field addition is exact, so the result is
 * bit-identical for every lane count.
 */
template <NttField F>
std::vector<F>
abftChunkChecksums(const std::vector<F> &coef,
                   const DistributedVector<F> &data, unsigned lanes)
{
    const unsigned G = data.numGpus();
    const uint64_t C = data.chunkSize();
    UNINTT_ASSERT(coef.size() == static_cast<uint64_t>(G) * C,
                  "coefficient vector does not match the data shape");
    uint64_t slices = 1;
    if (lanes > 1 && G < lanes)
        slices =
            std::min<uint64_t>(C, (2ULL * lanes + G - 1) / G);
    std::vector<F> partial(static_cast<size_t>(G) * slices,
                           F::fromU64(0));
    hostParallelFor(
        static_cast<uint64_t>(G) * slices, 2 * (C / slices), lanes,
        [&](size_t u) {
            const unsigned g = static_cast<unsigned>(u / slices);
            const uint64_t sl = u % slices;
            const uint64_t c0 = C * sl / slices;
            const uint64_t c1 = C * (sl + 1) / slices;
            partial[u] = abftSpanDot(
                coef.data() + static_cast<uint64_t>(g) * C + c0,
                data.chunk(g).data() + c0, c1 - c0);
        });
    std::vector<F> out(G, F::fromU64(0));
    for (unsigned g = 0; g < G; ++g)
        for (uint64_t sl = 0; sl < slices; ++sl)
            out[g] = out[g] + partial[g * slices + sl];
    return out;
}

/**
 * The coefficient vector at every checked-step boundary of one
 * schedule: boundary(k) weighs the data *before* the k-th checked step
 * and boundary(k+1) the data after it. Immutable once built; share via
 * AbftCoefficientCache.
 */
template <NttField F>
class AbftCoefficients
{
  public:
    AbftCoefficients(const StageSchedule &sched,
                     const TwiddleSlabs<F> &slabs, uint64_t seed,
                     unsigned lanes)
        : n_(1ULL << sched.logN)
    {
        std::vector<const ScheduleStep *> checked;
        for (const ScheduleStep &st : sched.steps)
            if (abftChecked(st))
                checked.push_back(&st);
        boundaries_.resize(checked.size() + 1);

        // Final boundary: seeded entropy, zeros nudged to one so every
        // output element carries weight in the last comparison.
        std::vector<F> &last = boundaries_.back();
        last.resize(n_);
        hostParallelFor(std::max<uint64_t>(n_ / 4096, 1), 4096, lanes,
                        [&](size_t u) {
                            const uint64_t units =
                                std::max<uint64_t>(n_ / 4096, 1);
                            const uint64_t i0 = n_ * u / units;
                            const uint64_t i1 = n_ * (u + 1) / units;
                            for (uint64_t i = i0; i < i1; ++i) {
                                F e = fieldFromEntropy<F>(
                                    mix64(seed ^ mix64(i + 1)));
                                last[i] = e.isZero() ? F::fromU64(1)
                                                     : e;
                            }
                        });

        const uint64_t C = sched.plan.chunkElems();
        for (size_t k = checked.size(); k-- > 0;) {
            boundaries_[k] = boundaries_[k + 1];
            transposeStep(*checked[k], boundaries_[k], C, slabs,
                          sched.dir, lanes);
        }
    }

    /** Transform size the vectors were built for. */
    uint64_t n() const { return n_; }

    /** Checked steps covered (boundary count minus one). */
    size_t checkedSteps() const { return boundaries_.size() - 1; }

    /** Coefficients weighing the data at boundary @p b. */
    const std::vector<F> &
    boundary(size_t b) const
    {
        UNINTT_ASSERT(b < boundaries_.size(),
                      "ABFT boundary out of range");
        return boundaries_[b];
    }

    /** Bytes the vectors occupy (cache budget accounting). */
    uint64_t
    sizeBytes() const
    {
        return boundaries_.size() * n_ * sizeof(F);
    }

  private:
    /** In-place transpose of one checked step: r <- A^T r. */
    static void
    transposeStep(const ScheduleStep &st, std::vector<F> &r, uint64_t C,
                  const TwiddleSlabs<F> &slabs, NttDirection dir,
                  unsigned lanes)
    {
        const uint64_t n = r.size();
        switch (st.kind) {
          case StepKind::CrossStage: {
            const unsigned G = static_cast<unsigned>(n / C);
            const unsigned gap = st.distance;
            const F *tws = slabs.slab(st.sBegin);
            std::vector<unsigned> lows;
            lows.reserve(G / 2);
            for (unsigned g = 0; g < G; ++g)
                if ((g / gap) % 2 == 0)
                    lows.push_back(g);
            hostParallelFor(
                lows.size(), 3 * C, lanes, [&](size_t u) {
                    const unsigned g = lows[u];
                    F *lo = r.data() + static_cast<uint64_t>(g) * C;
                    F *hi = lo + static_cast<uint64_t>(gap) * C;
                    const uint64_t j0 =
                        static_cast<uint64_t>(g % gap) * C;
                    for (uint64_t c = 0; c < C; ++c)
                        transposePair(lo[c], hi[c], tws[j0 + c], dir);
                });
            return;
          }
          case StepKind::LocalPass:
          case StepKind::FusedLocalPass: {
            // Reverse of the execution order (localStagesCompute runs
            // forward stages ascending, inverse stages descending).
            std::vector<unsigned> stages;
            for (unsigned s = st.sBegin; s < st.sEnd; ++s)
                stages.push_back(s);
            if (dir == NttDirection::Forward)
                std::reverse(stages.begin(), stages.end());
            for (unsigned s : stages) {
                const uint64_t half = n >> (s + 1);
                const uint64_t block = 2 * half;
                const F *tws = slabs.slab(s);
                hostParallelFor(
                    n / block, 3 * half, lanes, [&](size_t b) {
                        F *p0 = r.data() + b * block;
                        F *p1 = p0 + half;
                        for (uint64_t j = 0; j < half; ++j)
                            transposePair(p0[j], p1[j], tws[j], dir);
                    });
            }
            return;
          }
          case StepKind::Scale: {
            if (!st.applyInverseScale)
                return; // explicit twiddle pass: functional no-op
            const F s = inverseScale<F>(n);
            hostParallelFor(std::max<uint64_t>(n / 4096, 1), 4096,
                            lanes, [&](size_t u) {
                                const uint64_t units =
                                    std::max<uint64_t>(n / 4096, 1);
                                const uint64_t i0 = n * u / units;
                                const uint64_t i1 = n * (u + 1) / units;
                                for (uint64_t i = i0; i < i1; ++i)
                                    r[i] *= s;
                            });
            return;
          }
          default:
            panic("step kind has no ABFT transition");
        }
    }

    /** Transpose of one butterfly acting on coefficients (a, b). */
    static void
    transposePair(F &a, F &b, F w, NttDirection dir)
    {
        if (dir == NttDirection::Forward) {
            const F t = w * b;
            const F na = a + t;
            b = a - t;
            a = na;
        } else {
            const F na = a + b;
            b = w * (a - b);
            a = na;
        }
    }

    uint64_t n_;
    std::vector<std::vector<F>> boundaries_;
};

/**
 * Thread-safe LRU cache of AbftCoefficients<F> keyed by the schedule
 * fingerprint. A 2^22 Goldilocks entry is ~250 MiB, so the bounds are
 * tight: a handful of resident shapes, evicted by recency.
 */
template <NttField F>
class AbftCoefficientCache
{
  public:
    explicit AbftCoefficientCache(size_t max_entries = 4,
                                  size_t max_bytes = 768ULL << 20)
        : maxEntries_(max_entries), maxBytes_(max_bytes)
    {
    }

    std::shared_ptr<const AbftCoefficients<F>>
    get(const StageSchedule &sched, const TwiddleSlabs<F> &slabs,
        uint64_t seed, unsigned lanes, bool *hit_out = nullptr)
    {
        const uint64_t key = abftFingerprint(sched, seed);
        {
            std::lock_guard<std::mutex> lk(mutex_);
            for (auto it = lru_.begin(); it != lru_.end(); ++it) {
                if (it->key == key) {
                    counters_.hits++;
                    if (hit_out)
                        *hit_out = true;
                    lru_.splice(lru_.begin(), lru_, it);
                    return lru_.front().coef;
                }
            }
        }
        // Build outside the lock (concurrent misses of one key are
        // merely redundant work), like the twiddle slab cache.
        auto coef = std::make_shared<const AbftCoefficients<F>>(
            sched, slabs, seed, lanes);

        std::lock_guard<std::mutex> lk(mutex_);
        counters_.misses++;
        if (hit_out)
            *hit_out = false;
        bytes_ += coef->sizeBytes();
        lru_.push_front(Entry{key, coef});
        while (lru_.size() > maxEntries_ ||
               (bytes_ > maxBytes_ && lru_.size() > 1)) {
            bytes_ -= lru_.back().coef->sizeBytes();
            lru_.pop_back(); // outstanding shared_ptrs stay valid
        }
        return lru_.front().coef;
    }

    /** Drop every cached vector set (cold-cache tests). */
    void
    clear()
    {
        std::lock_guard<std::mutex> lk(mutex_);
        lru_.clear();
        bytes_ = 0;
    }

    /** Lifetime hit/miss counters. */
    CacheCounters
    counters() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return counters_;
    }

    /** Cached vector sets currently resident. */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return lru_.size();
    }

    /** The process-wide instance for field F. */
    static AbftCoefficientCache &
    global()
    {
        static AbftCoefficientCache cache;
        return cache;
    }

  private:
    struct Entry
    {
        uint64_t key;
        std::shared_ptr<const AbftCoefficients<F>> coef;
    };

    mutable std::mutex mutex_;
    std::list<Entry> lru_; // front = most recently used
    size_t maxEntries_;
    size_t maxBytes_;
    size_t bytes_ = 0;
    CacheCounters counters_;
};

/** Cached lookup on the field's global coefficient cache. */
template <NttField F>
std::shared_ptr<const AbftCoefficients<F>>
cachedAbftCoefficients(const StageSchedule &sched,
                       const TwiddleSlabs<F> &slabs, uint64_t seed,
                       unsigned lanes, bool *hit_out = nullptr)
{
    return AbftCoefficientCache<F>::global().get(sched, slabs, seed,
                                                 lanes, hit_out);
}

} // namespace unintt

#endif // UNINTT_UNINTT_ABFT_HH
