/**
 * @file
 * The UniNTT execution engine.
 *
 * The engine runs a radix-2 transform whose stages are assigned to the
 * hierarchy levels chosen by the planner (plan.hh):
 *
 *  - the first logMg stages (forward direction) are cross-GPU
 *    butterflies: every GPU exchanges its whole chunk with one partner
 *    and applies butterflies with fused twiddles — the same NTT
 *    computation as everywhere else, at multi-GPU scale;
 *  - the remaining stages are grouped into grid passes; each pass
 *    stages a block tile in shared memory and resolves its bits with
 *    warp-scale shuffle rounds glued by shared-memory exchanges.
 *
 * Because the per-element twiddle exponents of a plain radix-2
 * decimation-in-frequency transform already include the inter-sub-NTT
 * factors, executing the stages hierarchically IS the overhead-free
 * decomposition: no separate twiddle pass exists unless fusion is
 * disabled (in which case the engine emulates the four-step-style
 * explicit passes for the ablation study).
 *
 * The transform is executed functionally (bit-exact field arithmetic on
 * host memory) while every phase's events are tallied and priced by the
 * simulator (src/sim). Orderings: Forward maps natural input to
 * globally bit-reversed output; Inverse maps bit-reversed input back to
 * natural order, including the n^-1 scaling.
 */

#ifndef UNINTT_UNINTT_ENGINE_HH
#define UNINTT_UNINTT_ENGINE_HH

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/twiddle.hh"
#include "sim/fault.hh"
#include "sim/memory.hh"
#include "sim/multi_gpu.hh"
#include "sim/perf_model.hh"
#include "sim/report.hh"
#include "unintt/cache.hh"
#include "unintt/config.hh"
#include "unintt/distributed.hh"
#include "unintt/health.hh"
#include "unintt/plan.hh"
#include "unintt/verify.hh"
#include "util/bitops.hh"
#include "util/checksum.hh"
#include "util/logging.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

namespace unintt {

/** Multi-GPU NTT engine implementing the UniNTT algorithm. */
template <NttField F>
class UniNttEngine
{
  public:
    /**
     * @param sys   simulated machine (GPU count must be a power of 2).
     * @param cfg   optimization toggles.
     * @param costs model constants for the optimization trade-offs.
     */
    explicit UniNttEngine(MultiGpuSystem sys,
                          UniNttConfig cfg = UniNttConfig::allOn(),
                          CostConstants costs = CostConstants{})
        : sys_(std::move(sys)),
          cfg_(cfg),
          costs_(costs),
          perf_(sys_.gpu, fieldCostOf<F>())
    {
        if (cfg_.autoTuneTwiddles)
            cfg_.onTheFlyTwiddles = onTheFlyTwiddlesAreCheaper();
    }

    /**
     * The abstract-model comparison behind the twiddle auto-tune: the
     * marginal compute of generating a twiddle versus the marginal
     * DRAM traffic of loading it.
     */
    bool
    onTheFlyTwiddlesAreCheaper() const
    {
        const FieldCost &fc = perf_.field();
        double generate_s =
            costs_.onTheFlyExtraMuls * fc.mulSlots / perf_.mulSlotRate();
        double load_s = costs_.twiddleTableDramFraction *
                        static_cast<double>(fc.elementBytes) /
                        sys_.gpu.dramBandwidth;
        return generate_s <= load_s;
    }

    /** The machine this engine targets. */
    const MultiGpuSystem &system() const { return sys_; }

    /** The active optimization configuration. */
    const UniNttConfig &config() const { return cfg_; }

    /** Decomposition the engine will use for a 2^logN transform. */
    NttPlan
    plan(unsigned logN) const
    {
        return planCached(logN, sys_, nullptr);
    }

    /**
     * Host lanes the functional execution may use: the configured
     * count, or every lane of the shared pool when the config says 0.
     */
    unsigned
    hostLanes() const
    {
        return cfg_.hostThreads != 0 ? cfg_.hostThreads
                                     : ThreadPool::defaultLanes();
    }

    /**
     * Forward NTT in place: natural order in, globally bit-reversed
     * order out. Returns the simulated timeline.
     */
    SimReport
    forward(DistributedVector<F> &data) const
    {
        std::vector<DistributedVector<F> *> batch{&data};
        return run(log2Exact(data.size()), NttDirection::Forward, batch);
    }

    /** Inverse NTT in place: bit-reversed in, natural out, scaled. */
    SimReport
    inverse(DistributedVector<F> &data) const
    {
        std::vector<DistributedVector<F> *> batch{&data};
        return run(log2Exact(data.size()), NttDirection::Inverse, batch);
    }

    /**
     * Forward NTT with the resilience machinery engaged, on a machine
     * whose faults @p faults injects: every cross-GPU exchange is
     * checksummed, transient faults are retried with bounded
     * exponential backoff, a permanent device loss re-shards the data
     * onto the surviving power-of-two subset and re-plans the rest of
     * the transform, and the output is spot-checked against a direct
     * evaluation. All recovery time and traffic is priced into the
     * returned report, and the injected/handled events appear in its
     * faultStats(). Runtime faults that exceed the configured budgets
     * come back as a non-ok Status, never as a process exit.
     *
     * On success @p data may be sharded over fewer GPUs than it
     * started with (degraded mode); the plain forward()/inverse()
     * paths are untouched by all of this and pay zero overhead.
     *
     * When a DeviceHealthTracker is supplied, devices it has
     * quarantined are excluded from the plan up front (the data is
     * resharded onto the largest healthy power-of-two subset before
     * the transform starts), every fault this run observes is
     * attributed back to the tracker, and the tracker's run clock is
     * advanced on every exit path — so flakiness discovered in one
     * transform shapes the plan of the next.
     */
    Result<SimReport>
    forwardResilient(DistributedVector<F> &data, FaultInjector &faults,
                     const ResilienceConfig &rc = ResilienceConfig{},
                     DeviceHealthTracker *health = nullptr) const
    {
        return runResilient(NttDirection::Forward, data, faults, rc,
                            health);
    }

    /** Resilient inverse NTT; see forwardResilient. */
    Result<SimReport>
    inverseResilient(DistributedVector<F> &data, FaultInjector &faults,
                     const ResilienceConfig &rc = ResilienceConfig{},
                     DeviceHealthTracker *health = nullptr) const
    {
        return runResilient(NttDirection::Inverse, data, faults, rc,
                            health);
    }

    /**
     * Batched transform over independent equal-size inputs. Kernel
     * launches are amortized over the batch (one launch per pass), the
     * data-proportional costs scale with the batch size.
     */
    SimReport
    forwardBatch(std::vector<DistributedVector<F>> &batch) const
    {
        UNINTT_ASSERT(!batch.empty(), "empty batch");
        std::vector<DistributedVector<F> *> ptrs;
        for (auto &b : batch)
            ptrs.push_back(&b);
        return run(log2Exact(batch[0].size()), NttDirection::Forward,
                   ptrs);
    }

    /**
     * Analytic-only run: produce the simulated timeline of a
     * 2^logN x batch transform without touching data. Used for sweeps
     * beyond the sizes that are practical to execute functionally.
     */
    SimReport
    analyticRun(unsigned logN, NttDirection dir, size_t batch = 1) const
    {
        std::vector<DistributedVector<F> *> empty;
        return run(logN, dir, empty, batch);
    }

    /**
     * Coset forward NTT (low-degree extension): transforms the
     * evaluations onto the coset shift * <w>, i.e. output position k
     * holds P(shift * w^k) in bit-reversed order. The coefficient
     * scaling by shift^i fuses into the first pass when twiddle fusion
     * is on; otherwise it costs an explicit pass, exactly like the
     * other decomposition twiddles.
     */
    SimReport
    forwardCoset(DistributedVector<F> &data, F shift) const
    {
        const unsigned logN = log2Exact(data.size());
        const uint64_t C = data.chunkSize();
        SimReport report;

        // Functional scaling by shift^i, i the global index.
        for (unsigned g = 0; g < data.numGpus(); ++g) {
            F power = shift.pow(static_cast<uint64_t>(g) * C);
            for (auto &v : data.chunk(g)) {
                v *= power;
                power *= shift;
            }
        }
        KernelStats k;
        k.fieldMuls = 2 * C; // scale + running shift power
        if (!cfg_.fuseTwiddles) {
            k.globalReadBytes = C * sizeof(F);
            k.globalWriteBytes = C * sizeof(F);
            k.kernelLaunches = 1;
        }
        report.addKernelPhase(cfg_.fuseTwiddles ? "coset-scale-fused"
                                                : "coset-scale-pass",
                              k, perf_);
        UNINTT_ASSERT(logN == log2Exact(data.size()), "size changed");
        report.append(forward(data));
        return report;
    }

    /**
     * Cyclic convolution of two equal-size distributed vectors:
     * a <- IFFT(FFT(a) . FFT(b)) without any reordering passes (the
     * pointwise product runs in bit-reversed order). The pointwise
     * multiply fuses into the inverse transform's first pass when
     * fusion is on.
     */
    SimReport
    convolve(DistributedVector<F> &a, DistributedVector<F> &b) const
    {
        UNINTT_ASSERT(a.size() == b.size(), "operand size mismatch");
        SimReport report = forward(a);
        report.append(forward(b));

        const uint64_t C = a.chunkSize();
        for (unsigned g = 0; g < a.numGpus(); ++g)
            for (uint64_t i = 0; i < C; ++i)
                a.chunk(g)[i] *= b.chunk(g)[i];
        KernelStats k;
        k.fieldMuls = C;
        if (!cfg_.fuseTwiddles) {
            k.globalReadBytes = 2 * C * sizeof(F);
            k.globalWriteBytes = C * sizeof(F);
            k.kernelLaunches = 1;
        }
        report.addKernelPhase(cfg_.fuseTwiddles ? "pointwise-fused"
                                                : "pointwise-pass",
                              k, perf_);

        report.append(inverse(a));
        return report;
    }

  private:
    /**
     * Shared implementation. @p batch holds the functional data (may
     * be empty for analytic runs, in which case @p analytic_batch
     * supplies the batch multiplier).
     */
    SimReport run(unsigned logN, NttDirection dir,
                  std::vector<DistributedVector<F> *> &batch,
                  size_t analytic_batch = 1) const;

    /** Shared implementation of the resilient transforms. */
    Result<SimReport> runResilient(NttDirection dir,
                                   DistributedVector<F> &data,
                                   FaultInjector &faults,
                                   const ResilienceConfig &rc,
                                   DeviceHealthTracker *health) const;

    /** runResilient minus the tracker's end-of-run bookkeeping. */
    Result<SimReport> runResilientImpl(NttDirection dir,
                                       DistributedVector<F> &data,
                                       FaultInjector &faults,
                                       const ResilienceConfig &rc,
                                       DeviceHealthTracker *health) const;

    /**
     * Fresh spot-check seed: the configured base mixed with a
     * per-engine counter, so repeated checks sample fresh positions
     * while a given engine's sequence stays deterministic.
     */
    uint64_t
    nextSpotSeed(uint64_t base) const
    {
        return mix64(base ^ mix64(++spotCheckEpoch_));
    }

    /** Functional butterflies of one cross-GPU stage. */
    void crossStageCompute(DistributedVector<F> &data, unsigned s,
                           unsigned logN, const TwiddleTable<F> &tw,
                           NttDirection dir) const;

    /** Functional butterflies of local stages [s_begin, s_end). */
    void localStagesCompute(DistributedVector<F> &data, unsigned s_begin,
                            unsigned s_end, unsigned logN,
                            const TwiddleTable<F> &tw,
                            NttDirection dir) const;

    /** Event counters of one cross-GPU stage (per GPU). */
    KernelStats crossStageStats(uint64_t chunk, size_t batch) const;

    /** Event counters of one grid pass (per GPU). */
    KernelStats gridPassStats(uint64_t chunk, const GridPassPlan &pass,
                              size_t batch) const;

    /** Event counters of one explicit twiddle pass (fusion off). */
    KernelStats twiddlePassStats(uint64_t chunk, size_t batch) const;

    /** Plan via the shared PlanCache (or directly when caching is off). */
    NttPlan
    planCached(unsigned logN, const MultiGpuSystem &sys,
               bool *hit_out) const
    {
        if (cfg_.useHostCaches)
            return PlanCache::global().get(logN, sys, sizeof(F),
                                           cfg_.forceLogBlockTile,
                                           hit_out);
        if (hit_out)
            *hit_out = false;
        return planNttWithTile(logN, sys, sizeof(F),
                               cfg_.forceLogBlockTile);
    }

    /** Twiddle table via the shared cache (or freshly built). */
    std::shared_ptr<const TwiddleTable<F>>
    twiddlesCached(uint64_t n, NttDirection dir, bool *hit_out) const
    {
        if (cfg_.useHostCaches)
            return cachedTwiddles<F>(n, dir, hit_out);
        if (hit_out)
            *hit_out = false;
        return std::make_shared<const TwiddleTable<F>>(n, dir);
    }

    MultiGpuSystem sys_;
    UniNttConfig cfg_;
    CostConstants costs_;
    PerfModel perf_;
    /** Spot-check seed derivation counter (see nextSpotSeed). */
    mutable uint64_t spotCheckEpoch_ = 0;
};

// ---------------------------------------------------------------------
// Implementation.
// ---------------------------------------------------------------------

template <NttField F>
void
UniNttEngine<F>::crossStageCompute(DistributedVector<F> &data, unsigned s,
                                   unsigned logN,
                                   const TwiddleTable<F> &tw,
                                   NttDirection dir) const
{
    const unsigned G = data.numGpus();
    const unsigned logMg = log2Exact(G);
    const uint64_t n = 1ULL << logN;
    const uint64_t C = n / G;
    const unsigned partner_gap = 1u << (logMg - s - 1); // in GPU indices

    // Lower-half GPUs of the exchanging pairs. Every pair touches only
    // its own two chunks, so the pairs — further sliced along the chunk
    // when there are fewer pairs than host lanes — execute concurrently
    // on the pool; writes are disjoint across work units, so the result
    // is bit-identical for every thread count.
    std::vector<unsigned> lows;
    lows.reserve(G / 2);
    for (unsigned g = 0; g < G; ++g)
        if ((g / partner_gap) % 2 == 0)
            lows.push_back(g);

    const unsigned lanes = hostLanes();
    uint64_t slices = 1;
    if (lanes > 1 && lows.size() < lanes)
        slices = std::min<uint64_t>(
            C, (2ULL * lanes + lows.size() - 1) / lows.size());

    hostParallelFor(
        lows.size() * slices, (C / slices) * 3, lanes,
        [&](size_t unit) {
            const unsigned g = lows[unit / slices];
            const uint64_t slice = unit % slices;
            const uint64_t c0 = C * slice / slices;
            const uint64_t c1 = C * (slice + 1) / slices;
            auto &lo = data.chunk(g);
            auto &hi = data.chunk(g + partner_gap);
            // Position of this GPU's chunk inside the half-block.
            const uint64_t j0 =
                static_cast<uint64_t>(g % partner_gap) * C;
            for (uint64_t c = c0; c < c1; ++c) {
                uint64_t j = j0 + c;
                F u = lo[c];
                F v = hi[c];
                if (dir == NttDirection::Forward) {
                    lo[c] = u + v;
                    hi[c] = (u - v) * tw[j << s];
                } else {
                    v = v * tw[j << s];
                    lo[c] = u + v;
                    hi[c] = u - v;
                }
            }
        });
}

template <NttField F>
void
UniNttEngine<F>::localStagesCompute(DistributedVector<F> &data,
                                    unsigned s_begin, unsigned s_end,
                                    unsigned logN,
                                    const TwiddleTable<F> &tw,
                                    NttDirection dir) const
{
    const uint64_t n = 1ULL << logN;
    const unsigned G = data.numGpus();
    const uint64_t C = data.chunkSize();

    // Stage order: DIF descends (strides shrink), DIT ascends.
    std::vector<unsigned> stages;
    for (unsigned s = s_begin; s < s_end; ++s)
        stages.push_back(s);
    if (dir == NttDirection::Inverse)
        std::reverse(stages.begin(), stages.end());

    // One fork/join per stage: within a stage every butterfly block is
    // independent, so (gpu, block, j-slice) tuples fan out over the
    // pool and the join is the barrier the next stage needs. Work units
    // write disjoint element ranges, which keeps the output
    // bit-identical for every thread count.
    const unsigned lanes = hostLanes();
    for (unsigned s : stages) {
        const uint64_t half = n >> (s + 1);
        UNINTT_ASSERT(2 * half <= C, "stage is not GPU-local");
        const uint64_t block = 2 * half;
        const uint64_t blocks_per_gpu = C / block;
        const uint64_t units =
            static_cast<uint64_t>(G) * blocks_per_gpu;
        uint64_t jslices = 1;
        if (lanes > 1 && units < lanes)
            jslices = std::min<uint64_t>(
                half, (2ULL * lanes + units - 1) / units);

        hostParallelFor(
            units * jslices, (half / jslices) * 3, lanes,
            [&](size_t u) {
                const uint64_t unit = u / jslices;
                const uint64_t slice = u % jslices;
                const unsigned g =
                    static_cast<unsigned>(unit / blocks_per_gpu);
                const uint64_t start =
                    (unit % blocks_per_gpu) * block;
                const uint64_t jb = half * slice / jslices;
                const uint64_t je = half * (slice + 1) / jslices;
                auto &chunk = data.chunk(g);
                for (uint64_t j = jb; j < je; ++j) {
                    F a = chunk[start + j];
                    F b = chunk[start + j + half];
                    if (dir == NttDirection::Forward) {
                        chunk[start + j] = a + b;
                        chunk[start + j + half] = (a - b) * tw[j << s];
                    } else {
                        b = b * tw[j << s];
                        chunk[start + j] = a + b;
                        chunk[start + j + half] = a - b;
                    }
                }
            });
    }
}

template <NttField F>
KernelStats
UniNttEngine<F>::crossStageStats(uint64_t chunk, size_t batch) const
{
    const size_t b = sizeof(F);
    KernelStats k;
    k.fieldAdds = chunk * batch;     // one add or sub per output element
    k.fieldMuls = chunk / 2 * batch; // twiddle on the upper half outputs
    k.butterflies = chunk / 2 * batch;
    if (cfg_.onTheFlyTwiddles) {
        k.fieldMuls += static_cast<uint64_t>(
            static_cast<double>(k.butterflies) * costs_.onTheFlyExtraMuls);
    } else {
        k.globalReadBytes += static_cast<uint64_t>(
            static_cast<double>(k.butterflies) * b *
            costs_.twiddleTableDramFraction);
    }
    // Read own chunk + received chunk, write result + link landing.
    k.globalReadBytes += 2 * chunk * b * batch;
    k.globalWriteBytes += 2 * chunk * b * batch;
    k.kernelLaunches = 1;
    return k;
}

template <NttField F>
KernelStats
UniNttEngine<F>::gridPassStats(uint64_t chunk, const GridPassPlan &pass,
                               size_t batch) const
{
    const size_t b = sizeof(F);
    KernelStats k;
    k.butterflies = chunk / 2 * pass.bits * batch;
    k.fieldMuls = k.butterflies;
    k.fieldAdds = 2 * k.butterflies;
    if (cfg_.onTheFlyTwiddles) {
        k.fieldMuls += static_cast<uint64_t>(
            static_cast<double>(k.butterflies) * costs_.onTheFlyExtraMuls);
    } else {
        k.globalReadBytes += static_cast<uint64_t>(
            static_cast<double>(k.butterflies) * b *
            costs_.twiddleTableDramFraction);
    }
    // One coalesced read and write of the chunk per pass.
    k.globalReadBytes += chunk * b * batch;
    k.globalWriteBytes += chunk * b * batch;

    if (cfg_.warpShuffle) {
        // Warp-resident stages exchange via the shuffle network; only
        // round boundaries cross shared memory.
        k.shuffles = chunk * pass.bits * batch;
        k.smemBytes = 2 * chunk * b * (pass.warpRounds - 1) * batch;
    } else {
        // Every stage round-trips through shared memory.
        k.smemBytes = 2 * chunk * b * pass.bits * batch;
    }
    if (!cfg_.paddedSmem) {
        uint64_t accesses = k.smemBytes / b;
        k.smemBankConflicts = static_cast<uint64_t>(
            static_cast<double>(accesses) * costs_.unpaddedConflictReplays);
    }
    uint64_t tiles = std::max<uint64_t>(1, chunk >> pass.bits);
    // The shuffle path only barriers at round boundaries; the pure smem
    // path barriers after every stage.
    k.syncs = tiles * (cfg_.warpShuffle ? pass.warpRounds : pass.bits) *
              batch;
    k.kernelLaunches = 1;
    return k;
}

template <NttField F>
KernelStats
UniNttEngine<F>::twiddlePassStats(uint64_t chunk, size_t batch) const
{
    const size_t b = sizeof(F);
    KernelStats k;
    k.fieldMuls = chunk * batch;
    k.globalReadBytes = chunk * b * batch;
    k.globalWriteBytes = chunk * b * batch;
    k.kernelLaunches = 1;
    return k;
}

template <NttField F>
SimReport
UniNttEngine<F>::run(unsigned logN, NttDirection dir,
                     std::vector<DistributedVector<F> *> &batch,
                     size_t analytic_batch) const
{
    bool plan_hit = false;
    const NttPlan pl = planCached(logN, sys_, &plan_hit);
    const uint64_t n = 1ULL << logN;
    const uint64_t C = pl.chunkElems();
    const size_t nbatch = batch.empty() ? analytic_batch : batch.size();
    const bool functional = !batch.empty();

    for (auto *d : batch) {
        UNINTT_ASSERT(d->size() == n, "batch entry size mismatch");
        UNINTT_ASSERT(d->numGpus() == sys_.numGpus, "GPU count mismatch");
    }

    // Twiddle table shared by the functional execution (served from
    // the per-field cache so repeated transforms skip the root-of-unity
    // regeneration). The simulated twiddle strategy (table vs
    // on-the-fly) only affects accounting.
    std::shared_ptr<const TwiddleTable<F>> tw;
    bool tw_hit = false;
    if (functional)
        tw = twiddlesCached(n, dir, &tw_hit);

    SimReport report;
    {
        HostExecStats hx;
        hx.hostThreads = hostLanes();
        // A bypass run (useHostCaches off) consults no cache, so it
        // records no hit or miss.
        if (cfg_.useHostCaches) {
            (plan_hit ? hx.planCacheHits : hx.planCacheMisses) = 1;
            if (functional)
                (tw_hit ? hx.twiddleCacheHits : hx.twiddleCacheMisses) =
                    1;
        }
        report.addHostExecStats(hx);
    }

    // Device-memory footprint: the data chunk, one exchange buffer for
    // the cross-GPU phase, and the twiddle table when it is not
    // generated on the fly.
    {
        DeviceMemoryModel mem(sys_.gpu, sys_.numGpus);
        mem.allocAll(C * sizeof(F) * nbatch, "data");
        if (pl.logMg > 0)
            mem.allocAll(C * sizeof(F) * nbatch, "exchange-buffer");
        if (!cfg_.onTheFlyTwiddles)
            mem.allocAll(n / 2 * sizeof(F), "twiddle-table");
        report.setPeakDeviceBytes(mem.maxPeakBytes());
    }

    auto add_cross_stage = [&](unsigned s) {
        KernelStats k = crossStageStats(C, nbatch);
        double kernel_t = perf_.kernelSeconds(k);
        CommStats comm{C * sizeof(F) * nbatch, 1};
        unsigned distance = 1u << (pl.logMg - s - 1);
        unsigned effective = distance;
        const Interconnect &fabric = sys_.fabricFor(distance, effective);
        double comm_t =
            fabric.pairwiseExchangeTime(comm.bytesPerGpu, effective);
        std::string name =
            (sys_.crossesNodes(distance) ? "node-stage-" : "mgpu-stage-") +
            std::to_string(s) + "/x" + std::to_string(distance);
        if (functional) {
            for (auto *d : batch)
                crossStageCompute(*d, s, logN, *tw, dir);
        }
        if (cfg_.overlapComm) {
            // Segmented pipeline: transfer overlaps butterflies; the
            // longer of the two dominates.
            double visible = std::max(0.0, comm_t - kernel_t);
            report.addKernelPhase(name + "-compute", k, perf_);
            report.addCommPhase(name + "-exchange", visible, comm,
                                comm_t - visible);
        } else {
            report.addKernelPhase(name + "-compute", k, perf_);
            report.addCommPhase(name + "-exchange", comm_t, comm);
        }
    };

    auto add_twiddle_pass = [&](const std::string &why) {
        KernelStats k = twiddlePassStats(C, nbatch);
        report.addKernelPhase("twiddle-pass-" + why, k, perf_);
        // Functionally a no-op: the fused execution already applied
        // the factors; this models the un-fused algorithm's extra
        // memory round trip.
    };

    // ----- Forward: cross-GPU phase first, then local passes. -----
    // ----- Inverse: local passes first, cross-GPU phase last.  -----

    auto run_cross_phase = [&] {
        for (unsigned i = 0; i < pl.logMg; ++i) {
            unsigned s = dir == NttDirection::Forward
                             ? i
                             : pl.logMg - 1 - i; // DIT ascends strides
            add_cross_stage(s);
        }
        if (!cfg_.fuseTwiddles && pl.logMg > 0)
            add_twiddle_pass("mgpu");
    };

    auto run_local_phase = [&] {
        // Grid passes cover stage ranges [s, s + bits). Forward order:
        // outermost (largest strides) first; inverse reversed.
        std::vector<std::pair<unsigned, GridPassPlan>> ranges;
        unsigned s = pl.logMg;
        for (const auto &pass : pl.passes) {
            ranges.emplace_back(s, pass);
            s += pass.bits;
        }
        UNINTT_ASSERT(s == logN, "plan does not cover all stages");
        if (dir == NttDirection::Inverse)
            std::reverse(ranges.begin(), ranges.end());

        for (size_t i = 0; i < ranges.size(); ++i) {
            const auto &[s_begin, pass] = ranges[i];
            if (functional) {
                for (auto *d : batch)
                    localStagesCompute(*d, s_begin, s_begin + pass.bits,
                                       logN, *tw, dir);
            }
            KernelStats k = gridPassStats(C, pass, nbatch);
            report.addKernelPhase("grid-pass-" + std::to_string(i) + "/b" +
                                      std::to_string(pass.bits),
                                  k, perf_);
            if (!cfg_.fuseTwiddles && i + 1 < ranges.size())
                add_twiddle_pass("pass" + std::to_string(i));
        }
    };

    if (dir == NttDirection::Forward) {
        run_cross_phase();
        run_local_phase();
    } else {
        run_local_phase();
        run_cross_phase();

        // n^-1 scaling. Fused into the last stage's butterflies when
        // fusion is on (extra muls only); a separate pass otherwise.
        if (functional) {
            F scale = inverseScale<F>(n);
            const unsigned G = sys_.numGpus;
            hostParallelFor(
                batch.size() * G, C, hostLanes(), [&](size_t u) {
                    auto &chunk = batch[u / G]->chunk(
                        static_cast<unsigned>(u % G));
                    for (auto &v : chunk)
                        v *= scale;
                });
        }
        if (cfg_.fuseTwiddles) {
            KernelStats k;
            k.fieldMuls = C * nbatch;
            report.addKernelPhase("inverse-scale-fused", k, perf_);
        } else {
            add_twiddle_pass("inverse-scale");
        }
    }

    return report;
}

template <NttField F>
Result<SimReport>
UniNttEngine<F>::runResilient(NttDirection dir, DistributedVector<F> &data,
                              FaultInjector &faults,
                              const ResilienceConfig &rc,
                              DeviceHealthTracker *health) const
{
    Result<SimReport> r = runResilientImpl(dir, data, faults, rc, health);
    if (health != nullptr)
        health->endRun(); // the run clock ticks on every exit path
    return r;
}

template <NttField F>
Result<SimReport>
UniNttEngine<F>::runResilientImpl(NttDirection dir,
                                  DistributedVector<F> &data,
                                  FaultInjector &faults,
                                  const ResilienceConfig &rc,
                                  DeviceHealthTracker *health) const
{
    if (data.numGpus() != sys_.numGpus)
        return Status::error(
            StatusCode::InvalidArgument,
            "data is sharded over " + std::to_string(data.numGpus()) +
                " GPUs but the machine has " +
                std::to_string(sys_.numGpus));
    if (data.size() == 0 || !isPow2(data.size()))
        return Status::error(
            StatusCode::InvalidArgument,
            "transform size " + std::to_string(data.size()) +
                " is not a power of two");

    const unsigned logN = log2Exact(data.size());
    const uint64_t n = 1ULL << logN;

    // Input snapshot for the post-transform spot check.
    const std::vector<F> input = data.toGlobal();
    bool tw_hit = false;
    const auto tw_ptr = twiddlesCached(n, dir, &tw_hit);
    const TwiddleTable<F> &tw = *tw_ptr;

    SimReport report;
    FaultStats fs;
    MultiGpuSystem sys = sys_; // shrinks when devices drop out

    // Consult the health tracker before planning: quarantined devices
    // never enter the plan. The data is resharded onto the largest
    // healthy power-of-two subset, priced as one all-to-all.
    if (health != nullptr) {
        UNINTT_ASSERT(health->numDevices() == sys_.numGpus,
                      "health tracker sized for a different machine");
        const unsigned usable =
            std::min(health->usablePowerOfTwo(), sys.numGpus);
        if (usable == 0)
            return Status::error(
                StatusCode::DeviceLost,
                "every device is quarantined; no plan is possible");
        if (usable < sys.numGpus) {
            Status st = data.reshardChecked(usable);
            if (!st.ok())
                return st;
            const uint64_t reshard_bytes = (n / usable) * sizeof(F);
            CommStats comm;
            comm.bytesPerGpu = reshard_bytes;
            comm.messages = usable;
            report.addCommPhase(
                "health-exclude-to-" + std::to_string(usable) +
                    "gpu-reshard",
                sys.fabric.allToAllTime(reshard_bytes, usable), comm);
            fs.devicesExcluded += sys.numGpus - usable;
            sys.numGpus = usable;
            if (sys.gpusPerNode != 0 && sys.numGpus <= sys.gpusPerNode)
                sys.gpusPerNode = 0; // survivors fit inside one node
        }
    }

    bool plan_hit = false;
    NttPlan pl = planCached(logN, sys, &plan_hit);
    const unsigned logMg0 = pl.logMg;
    {
        HostExecStats hx;
        hx.hostThreads = hostLanes();
        if (cfg_.useHostCaches) {
            (plan_hit ? hx.planCacheHits : hx.planCacheMisses) = 1;
            (tw_hit ? hx.twiddleCacheHits : hx.twiddleCacheMisses) = 1;
        }
        report.addHostExecStats(hx);
    }

    auto account_memory = [&] {
        DeviceMemoryModel mem(sys.gpu, sys.numGpus);
        mem.allocAll(pl.chunkElems() * sizeof(F), "data");
        if (pl.logMg > 0)
            mem.allocAll(pl.chunkElems() * sizeof(F), "exchange-buffer");
        if (!cfg_.onTheFlyTwiddles)
            mem.allocAll(n / 2 * sizeof(F), "twiddle-table");
        report.setPeakDeviceBytes(mem.maxPeakBytes());
    };
    account_memory();

    auto add_twiddle_pass = [&](const std::string &why) {
        KernelStats k = twiddlePassStats(pl.chunkElems(), 1);
        report.addKernelPhase("twiddle-pass-" + why, k, perf_);
    };

    // Permanent device loss: re-shard the data onto the surviving
    // power-of-two subset, re-plan, and price the recovery — the
    // detection timeout, pulling the lost chunk's replica from its
    // last exchange partner, and the all-to-all reshard.
    auto degrade = [&](int lost_gpu) -> Status {
        // The loss is attributed whether or not the recovery below is
        // allowed to absorb it — the next run must know either way.
        if (health != nullptr && lost_gpu >= 0 &&
            static_cast<unsigned>(lost_gpu) < health->numDevices())
            health->recordDeviceLost(static_cast<unsigned>(lost_gpu));
        if (!rc.allowDegraded)
            return Status::error(
                StatusCode::DeviceLost,
                detail::format(
                    "GPU %d lost and degraded mode is disabled",
                    lost_gpu));
        if (sys.numGpus <= 1)
            return Status::error(
                StatusCode::DeviceLost,
                "GPU lost with no surviving devices to re-plan onto");
        const unsigned newG = sys.numGpus / 2;
        const uint64_t lost_chunk_bytes = pl.chunkElems() * sizeof(F);
        const uint64_t reshard_bytes = (n / newG) * sizeof(F);
        double t = rc.detectionSeconds;
        t += sys.fabric.pairwiseExchangeTime(lost_chunk_bytes, 1);
        t += sys.fabric.allToAllTime(reshard_bytes, newG);
        CommStats comm;
        comm.bytesPerGpu = reshard_bytes + lost_chunk_bytes;
        comm.messages = newG;
        report.addCommPhase(
            "degrade-to-" + std::to_string(newG) + "gpu-reshard", t,
            comm);
        Status reshard_st = data.reshardChecked(newG);
        if (!reshard_st.ok())
            return reshard_st;
        sys.numGpus = newG;
        if (sys.gpusPerNode != 0 && sys.numGpus <= sys.gpusPerNode)
            sys.gpusPerNode = 0; // survivors fit inside one node
        pl = planCached(logN, sys, nullptr);
        fs.devicesLost++;
        fs.degradedReplans++;
        account_memory();
        return Status();
    };

    // One cross-GPU stage, executed resiliently. Restarts on device
    // loss — under the degraded sharding the stage may have become
    // GPU-local, in which case it runs as a one-bit grid pass.
    auto resilient_cross_stage = [&](unsigned s) -> Status {
        while (true) {
            if (s >= pl.logMg) {
                localStagesCompute(data, s, s + 1, logN, tw, dir);
                GridPassPlan one{1, 1};
                KernelStats k = gridPassStats(pl.chunkElems(), one, 1);
                report.addKernelPhase(
                    "degraded-local-stage-" + std::to_string(s), k,
                    perf_);
                return Status();
            }
            ExchangeOutcome out =
                faults.nextExchange(rc.retry.maxRetries);
            fs.exchanges++;
            if (out.lostGpu >= 0) {
                Status st = degrade(out.lostGpu);
                if (!st.ok())
                    return st;
                continue;
            }
            if (out.exhausted)
                return Status::error(
                    StatusCode::TransientFault,
                    detail::format("cross-GPU exchange at stage %u "
                                   "still failing after %u retries",
                                   s, rc.retry.maxRetries));

            const uint64_t C = pl.chunkElems();
            const uint64_t bytes = C * sizeof(F);
            KernelStats k = crossStageStats(C, 1);
            // Checksum generation on send, verification on arrival.
            k.fieldAdds += 2 * C;
            fs.checksummedBytes += 2 * bytes;
            const double kernel_t = perf_.kernelSeconds(k);

            unsigned distance = 1u << (pl.logMg - s - 1);
            unsigned effective = distance;
            const Interconnect &fabric =
                sys.fabricFor(distance, effective);
            const double once =
                fabric.pairwiseExchangeTime(bytes, effective);
            CommStats comm{bytes, 1};
            // Faults at this stage are attributed to gpu 0's exchange
            // partner — the same device whose chunk demonstrates the
            // corruption below. An approximation (every pair faults
            // identically in the simulation), but a deterministic one,
            // so the health tracker sees a reproducible history.
            const unsigned suspect = distance;
            double comm_t = once * out.stragglerFactor;
            if (out.stragglerFactor > 1.0) {
                fs.stragglerEvents++;
                if (health != nullptr &&
                    suspect < health->numDevices())
                    health->recordFault(suspect);
                if (rc.watchdogDeadlineFactor > 0.0 &&
                    out.stragglerFactor > rc.watchdogDeadlineFactor) {
                    // Watchdog: the exchange is aborted at the
                    // deadline and retried once on a clean link,
                    // bounding an arbitrarily slow straggler at
                    // deadline + one retransmission.
                    comm_t = once * rc.watchdogDeadlineFactor + once;
                    comm.retries += 1;
                    fs.watchdogTimeouts++;
                }
            }
            for (unsigned i = 0; i < out.transientFailures; ++i)
                comm_t += rc.retry.backoffSeconds(i) + once;
            comm.retries += out.transientFailures;
            fs.transientRetries += out.transientFailures;
            if (health != nullptr && out.transientFailures > 0 &&
                suspect < health->numDevices())
                health->recordFault(suspect);

            // Corrupted payload: the checksum catches the flip (shown
            // functionally on the first exchanging pair), forcing
            // retransmissions until a clean copy lands.
            bool corrupted = out.corrupted;
            unsigned tries = 0;
            while (corrupted) {
                const std::vector<F> &payload = data.chunk(distance);
                const uint64_t good =
                    checksumBytes(payload.data(), bytes);
                std::vector<F> received = payload;
                auto *raw =
                    reinterpret_cast<unsigned char *>(received.data());
                const uint64_t bit = out.corruptBit % (bytes * 8);
                raw[bit / 8] ^=
                    static_cast<unsigned char>(1u << (bit % 8));
                const uint64_t seen =
                    checksumBytes(received.data(), bytes);
                UNINTT_ASSERT(
                    seen != good,
                    "single-bit corruption must change the checksum");
                fs.corruptionsDetected++;
                if (health != nullptr && suspect < health->numDevices())
                    health->recordFault(suspect);
                comm_t += once;
                comm.retries += 1;
                if (++tries > rc.retry.maxRetries)
                    return Status::error(
                        StatusCode::DataCorruption,
                        detail::format(
                            "payload checksum mismatch at stage %u "
                            "persisted across %u retransmissions",
                            s, rc.retry.maxRetries));
                corrupted = faults.retransmitCorrupted();
            }

            crossStageCompute(data, s, logN, tw, dir);
            std::string name = (sys.crossesNodes(distance)
                                    ? "node-stage-"
                                    : "mgpu-stage-") +
                               std::to_string(s) + "/x" +
                               std::to_string(distance);
            report.addKernelPhase(name + "-compute", k, perf_);
            if (cfg_.overlapComm) {
                double visible = std::max(0.0, comm_t - kernel_t);
                report.addCommPhase(name + "-exchange", visible, comm,
                                    comm_t - visible);
            } else {
                report.addCommPhase(name + "-exchange", comm_t, comm);
            }
            return Status();
        }
    };

    // Group local stages [from, logN) into balanced passes with the
    // planner's policy. Rebuilt rather than read from pl.passes
    // because degradation can leave the first local stage above
    // pl.logMg (a cross stage executed under the old sharding).
    auto local_ranges_from = [&](unsigned from) {
        std::vector<std::pair<unsigned, GridPassPlan>> ranges;
        unsigned remaining = logN - from;
        if (remaining == 0)
            return ranges;
        unsigned num_passes =
            (remaining + pl.logBlockTile - 1) / pl.logBlockTile;
        unsigned s = from;
        for (unsigned i = 0; i < num_passes; ++i) {
            unsigned left = num_passes - i;
            unsigned bits = (remaining + left - 1) / left;
            GridPassPlan pass;
            pass.bits = bits;
            pass.warpRounds = (bits + pl.logWarp - 1) / pl.logWarp;
            ranges.emplace_back(s, pass);
            s += bits;
            remaining -= bits;
        }
        return ranges;
    };

    auto run_local_phase = [&](unsigned from) {
        auto ranges = local_ranges_from(from);
        if (dir == NttDirection::Inverse)
            std::reverse(ranges.begin(), ranges.end());
        for (size_t i = 0; i < ranges.size(); ++i) {
            const auto &[s_begin, pass] = ranges[i];
            localStagesCompute(data, s_begin, s_begin + pass.bits,
                               logN, tw, dir);
            KernelStats k = gridPassStats(pl.chunkElems(), pass, 1);
            report.addKernelPhase("grid-pass-" + std::to_string(i) +
                                      "/b" + std::to_string(pass.bits),
                                  k, perf_);
            if (!cfg_.fuseTwiddles && i + 1 < ranges.size())
                add_twiddle_pass("pass" + std::to_string(i));
        }
    };

    if (dir == NttDirection::Forward) {
        unsigned s = 0;
        while (s < pl.logMg) {
            Status st = resilient_cross_stage(s);
            if (!st.ok())
                return st;
            ++s;
        }
        if (!cfg_.fuseTwiddles && logMg0 > 0)
            add_twiddle_pass("mgpu");
        run_local_phase(s);
    } else {
        run_local_phase(pl.logMg);
        for (int s = static_cast<int>(pl.logMg) - 1; s >= 0; --s) {
            Status st =
                resilient_cross_stage(static_cast<unsigned>(s));
            if (!st.ok())
                return st;
        }
        if (!cfg_.fuseTwiddles && logMg0 > 0)
            add_twiddle_pass("mgpu");

        // n^-1 scaling, exactly as in run().
        F scale = inverseScale<F>(n);
        for (unsigned g = 0; g < data.numGpus(); ++g)
            for (auto &v : data.chunk(g))
                v *= scale;
        if (cfg_.fuseTwiddles) {
            KernelStats k;
            k.fieldMuls = pl.chunkElems();
            report.addKernelPhase("inverse-scale-fused", k, perf_);
        } else {
            add_twiddle_pass("inverse-scale");
        }
    }

    // Post-transform spot check against a direct evaluation
    // (unintt/verify.hh): the backstop that catches whatever the
    // exchange checksums cannot see.
    if (rc.spotChecks > 0) {
        const std::vector<F> out_global = data.toGlobal();
        KernelStats k;
        k.fieldMuls = static_cast<uint64_t>(rc.spotChecks) * n;
        k.fieldAdds = static_cast<uint64_t>(rc.spotChecks) * n;
        k.kernelLaunches = 1;
        report.addKernelPhase("spot-check", k, perf_);
        fs.spotChecks += rc.spotChecks;
        // Derived seed: repeated checks of the same transform sample
        // fresh positions (the config seed alone would re-sample the
        // same ones every run).
        const uint64_t spot_seed = nextSpotSeed(rc.spotCheckSeed);
        const bool good =
            dir == NttDirection::Forward
                ? spotCheckForward(input, out_global, rc.spotChecks,
                                   spot_seed)
                : spotCheckInverse(input, out_global, rc.spotChecks,
                                   spot_seed);
        if (!good) {
            fs.spotCheckFailures++;
            report.addFaultStats(fs);
            return Status::error(
                StatusCode::DataCorruption,
                "post-transform spot check failed: output does not "
                "match a direct evaluation of the input");
        }
    }

    report.addFaultStats(fs);
    return report;
}

} // namespace unintt

#endif // UNINTT_UNINTT_ENGINE_HH
