/**
 * @file
 * The UniNTT execution engine.
 *
 * The engine runs a radix-2 transform whose stages are assigned to the
 * hierarchy levels chosen by the planner (plan.hh):
 *
 *  - the first logMg stages (forward direction) are cross-GPU
 *    butterflies: every GPU exchanges its whole chunk with one partner
 *    and applies butterflies with fused twiddles — the same NTT
 *    computation as everywhere else, at multi-GPU scale;
 *  - the remaining stages are grouped into grid passes; each pass
 *    stages a block tile in shared memory and resolves its bits with
 *    warp-scale shuffle rounds glued by shared-memory exchanges.
 *
 * Because the per-element twiddle exponents of a plain radix-2
 * decimation-in-frequency transform already include the inter-sub-NTT
 * factors, executing the stages hierarchically IS the overhead-free
 * decomposition: no separate twiddle pass exists unless fusion is
 * disabled (in which case the engine emulates the four-step-style
 * explicit passes for the ablation study).
 *
 * The plan is lowered once into a stage-schedule IR (schedule.hh,
 * cached process-wide by ScheduleCache) and every entry point —
 * forward/inverse, the batched variants, analyticRun, and the
 * resilient paths — is a thin dispatch of that one schedule through an
 * executor (executors.hh): analytic pricing, bit-exact host-parallel
 * execution, or the resilient decorator with the checksum/retry/
 * health/watchdog machinery. Orderings: Forward maps natural input to
 * globally bit-reversed output; Inverse maps bit-reversed input back
 * to natural order, including the n^-1 scaling.
 */

#ifndef UNINTT_UNINTT_ENGINE_HH
#define UNINTT_UNINTT_ENGINE_HH

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "field/dispatch.hh"
#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/twiddle.hh"
#include "sim/fault.hh"
#include "sim/multi_gpu.hh"
#include "sim/perf_model.hh"
#include "sim/report.hh"
#include "unintt/cache.hh"
#include "unintt/config.hh"
#include "unintt/distributed.hh"
#include "unintt/executors.hh"
#include "unintt/health.hh"
#include "unintt/plan.hh"
#include "unintt/schedule.hh"
#include "unintt/tunedb.hh"
#include "unintt/verify.hh"
#include "util/bitops.hh"
#include "util/checksum.hh"
#include "util/logging.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

namespace unintt {

/** Multi-GPU NTT engine implementing the UniNTT algorithm. */
template <NttField F>
class UniNttEngine
{
  public:
    /**
     * @param sys   simulated machine (GPU count must be a power of 2).
     * @param cfg   optimization toggles.
     * @param costs model constants for the optimization trade-offs.
     */
    explicit UniNttEngine(MultiGpuSystem sys,
                          UniNttConfig cfg = UniNttConfig::allOn(),
                          CostConstants costs = CostConstants{})
        : sys_(std::move(sys)),
          cfg_(cfg),
          costs_(costs),
          perf_(sys_.gpu, fieldCostOf<F>())
    {
        if (cfg_.autoTuneTwiddles)
            cfg_.onTheFlyTwiddles = onTheFlyTwiddlesAreCheaper();
    }

    /**
     * The abstract-model comparison behind the twiddle auto-tune: the
     * marginal compute of generating a twiddle versus the marginal
     * DRAM traffic of loading it.
     */
    bool
    onTheFlyTwiddlesAreCheaper() const
    {
        const FieldCost &fc = perf_.field();
        double generate_s =
            costs_.onTheFlyExtraMuls * fc.mulSlots / perf_.mulSlotRate();
        double load_s = costs_.twiddleTableDramFraction *
                        static_cast<double>(fc.elementBytes) /
                        sys_.gpu.dramBandwidth;
        return generate_s <= load_s;
    }

    /** The machine this engine targets. */
    const MultiGpuSystem &system() const { return sys_; }

    /** The active optimization configuration. */
    const UniNttConfig &config() const { return cfg_; }

    /** Decomposition the engine will use for a 2^logN transform. */
    NttPlan
    plan(unsigned logN) const
    {
        return planCached(logN, sys_, nullptr);
    }

    /**
     * The compiled stage schedule for a 2^logN x batch transform — the
     * IR every entry point dispatches (served from the process-wide
     * ScheduleCache unless host caches are off). @p plan_hit_out and
     * @p sched_hit_out (optional) report how the caches behaved.
     */
    std::shared_ptr<const StageSchedule>
    schedule(unsigned logN, NttDirection dir, size_t batch = 1,
             bool *plan_hit_out = nullptr,
             bool *sched_hit_out = nullptr,
             bool *tuned_out = nullptr) const
    {
        const NttPlan pl = planCached(logN, sys_, plan_hit_out);
        const TunedConfig tc = tunedFor(logN, "functional");
        if (tuned_out)
            *tuned_out = tc.tuned;
        return scheduleCached(pl, dir, batch, tc.cfg, tc.tuned,
                              sched_hit_out);
    }

    /**
     * Host lanes the functional execution may use: the configured
     * count, or every lane of the shared pool when the config says 0.
     */
    unsigned
    hostLanes() const
    {
        return hostLanesFor(cfg_);
    }

    /**
     * The span-kernel table the functional execution is bound to: the
     * configured isaPath resolved through the acceleration router
     * (UNINTT_FORCE_ISA > cfg.isaPath > CPU probe, with unsupported
     * requests falling down the ladder). Every table is byte-identical
     * — this only selects how fast the butterflies run.
     */
    const FieldKernels<F> &
    kernels() const
    {
        return fieldKernels<F>(cfg_.isaPath);
    }

    /**
     * The per-run tuning-DB consultation (unintt/tunedb.hh): the
     * effective config for a 2^logN transform under @p executor
     * ("functional" or "analytic"), with provenance and any tile
     * clamp warnings. Public so benches and the tuner can inspect
     * exactly what a run would use.
     */
    TunedConfig
    tunedFor(unsigned logN, const char *executor) const
    {
        return resolveTunedConfig(cfg_, F::kName, sizeof(F), logN,
                                  sys_, executor);
    }

    /**
     * Forward NTT in place: natural order in, globally bit-reversed
     * order out (natural order when cfg.naturalOrderOutput is on).
     * Returns the simulated timeline.
     */
    SimReport
    forward(DistributedVector<F> &data) const
    {
        std::vector<DistributedVector<F> *> batch{&data};
        return run(log2Exact(data.size()), NttDirection::Forward, batch);
    }

    /** Inverse NTT in place: bit-reversed in, natural out, scaled. */
    SimReport
    inverse(DistributedVector<F> &data) const
    {
        std::vector<DistributedVector<F> *> batch{&data};
        return run(log2Exact(data.size()), NttDirection::Inverse, batch);
    }

    /**
     * Forward NTT with the resilience machinery engaged, on a machine
     * whose faults @p faults injects: every cross-GPU exchange is
     * checksummed, transient faults are retried with bounded
     * exponential backoff, a permanent device loss re-shards the data
     * onto the surviving power-of-two subset and re-plans the rest of
     * the transform, and the output is spot-checked against a direct
     * evaluation. All recovery time and traffic is priced into the
     * returned report, and the injected/handled events appear in its
     * faultStats(). Runtime faults that exceed the configured budgets
     * come back as a non-ok Status, never as a process exit.
     *
     * On success @p data may be sharded over fewer GPUs than it
     * started with (degraded mode); the plain forward()/inverse()
     * paths are untouched by all of this and pay zero overhead.
     *
     * When a DeviceHealthTracker is supplied, devices it has
     * quarantined are excluded from the plan up front (the data is
     * resharded onto the largest healthy power-of-two subset before
     * the transform starts), every fault this run observes is
     * attributed back to the tracker, and the tracker's run clock is
     * advanced on every exit path — so flakiness discovered in one
     * transform shapes the plan of the next.
     */
    Result<SimReport>
    forwardResilient(DistributedVector<F> &data, FaultInjector &faults,
                     const ResilienceConfig &rc = ResilienceConfig{},
                     DeviceHealthTracker *health = nullptr) const
    {
        return runResilient(NttDirection::Forward, data, faults, rc,
                            health);
    }

    /** Resilient inverse NTT; see forwardResilient. */
    Result<SimReport>
    inverseResilient(DistributedVector<F> &data, FaultInjector &faults,
                     const ResilienceConfig &rc = ResilienceConfig{},
                     DeviceHealthTracker *health = nullptr) const
    {
        return runResilient(NttDirection::Inverse, data, faults, rc,
                            health);
    }

    /**
     * Batched forward transform over independent equal-size inputs.
     * Kernel launches are amortized over the batch (one launch per
     * pass), the data-proportional costs scale with the batch size.
     */
    SimReport
    forwardBatch(std::vector<DistributedVector<F>> &batch) const
    {
        UNINTT_ASSERT(!batch.empty(), "empty batch");
        std::vector<DistributedVector<F> *> ptrs;
        for (auto &b : batch)
            ptrs.push_back(&b);
        return run(log2Exact(batch[0].size()), NttDirection::Forward,
                   ptrs);
    }

    /** Batched inverse transform; see forwardBatch. */
    SimReport
    inverseBatch(std::vector<DistributedVector<F>> &batch) const
    {
        UNINTT_ASSERT(!batch.empty(), "empty batch");
        std::vector<DistributedVector<F> *> ptrs;
        for (auto &b : batch)
            ptrs.push_back(&b);
        return run(log2Exact(batch[0].size()), NttDirection::Inverse,
                   ptrs);
    }

    /**
     * Analytic-only run: produce the simulated timeline of a
     * 2^logN x batch transform without touching data. Used for sweeps
     * beyond the sizes that are practical to execute functionally.
     */
    SimReport
    analyticRun(unsigned logN, NttDirection dir, size_t batch = 1) const
    {
        std::vector<DistributedVector<F> *> empty;
        return run(logN, dir, empty, batch);
    }

    /**
     * Coset forward NTT (low-degree extension): transforms the
     * evaluations onto the coset shift * <w>, i.e. output position k
     * holds P(shift * w^k) in bit-reversed order. The coefficient
     * scaling by shift^i fuses into the first pass when twiddle fusion
     * is on; otherwise it costs an explicit pass, exactly like the
     * other decomposition twiddles.
     */
    SimReport
    forwardCoset(DistributedVector<F> &data, F shift) const
    {
        const unsigned logN = log2Exact(data.size());
        const uint64_t C = data.chunkSize();
        SimReport report;

        // Functional scaling by shift^i, i the global index.
        for (unsigned g = 0; g < data.numGpus(); ++g) {
            F power = shift.pow(static_cast<uint64_t>(g) * C);
            for (auto &v : data.chunk(g)) {
                v *= power;
                power *= shift;
            }
        }
        KernelStats k;
        k.fieldMuls = 2 * C; // scale + running shift power
        if (!cfg_.fuseTwiddles) {
            k.globalReadBytes = C * sizeof(F);
            k.globalWriteBytes = C * sizeof(F);
            k.kernelLaunches = 1;
        }
        report.addKernelPhase(cfg_.fuseTwiddles ? "coset-scale-fused"
                                                : "coset-scale-pass",
                              k, perf_);
        UNINTT_ASSERT(logN == log2Exact(data.size()), "size changed");
        report.append(forward(data));
        return report;
    }

    /**
     * Cyclic convolution of two equal-size distributed vectors:
     * a <- IFFT(FFT(a) . FFT(b)) without any reordering passes (the
     * pointwise product runs in bit-reversed order). The pointwise
     * multiply fuses into the inverse transform's first pass when
     * fusion is on.
     */
    SimReport
    convolve(DistributedVector<F> &a, DistributedVector<F> &b) const
    {
        UNINTT_ASSERT(a.size() == b.size(), "operand size mismatch");
        SimReport report = forward(a);
        report.append(forward(b));

        const uint64_t C = a.chunkSize();
        for (unsigned g = 0; g < a.numGpus(); ++g)
            for (uint64_t i = 0; i < C; ++i)
                a.chunk(g)[i] *= b.chunk(g)[i];
        KernelStats k;
        k.fieldMuls = C;
        if (!cfg_.fuseTwiddles) {
            k.globalReadBytes = 2 * C * sizeof(F);
            k.globalWriteBytes = C * sizeof(F);
            k.kernelLaunches = 1;
        }
        report.addKernelPhase(cfg_.fuseTwiddles ? "pointwise-fused"
                                                : "pointwise-pass",
                              k, perf_);

        report.append(inverse(a));
        return report;
    }

  private:
    /**
     * Shared implementation: compile (or fetch) the schedule and
     * dispatch it through the analytic or functional executor.
     * @p batch holds the functional data (may be empty for analytic
     * runs, in which case @p analytic_batch supplies the batch
     * multiplier).
     */
    SimReport run(unsigned logN, NttDirection dir,
                  std::vector<DistributedVector<F> *> &batch,
                  size_t analytic_batch = 1) const;

    /** Shared implementation of the resilient transforms. */
    Result<SimReport> runResilient(NttDirection dir,
                                   DistributedVector<F> &data,
                                   FaultInjector &faults,
                                   const ResilienceConfig &rc,
                                   DeviceHealthTracker *health) const;

    /** runResilient minus the tracker's end-of-run bookkeeping. */
    Result<SimReport> runResilientImpl(NttDirection dir,
                                       DistributedVector<F> &data,
                                       FaultInjector &faults,
                                       const ResilienceConfig &rc,
                                       DeviceHealthTracker *health) const;

    /**
     * Fresh spot-check seed: the configured base mixed with a
     * per-engine counter, so repeated checks sample fresh positions
     * while a given engine's sequence stays deterministic.
     */
    uint64_t
    nextSpotSeed(uint64_t base) const
    {
        return mix64(base ^ mix64(++spotCheckEpoch_));
    }

    /** Plan via the shared PlanCache (or directly when caching is off). */
    NttPlan
    planCached(unsigned logN, const MultiGpuSystem &sys,
               bool *hit_out) const
    {
        if (cfg_.useHostCaches)
            return PlanCache::global().get(logN, sys, sizeof(F),
                                           cfg_.forceLogBlockTile,
                                           hit_out);
        if (hit_out)
            *hit_out = false;
        return planNttWithTile(logN, sys, sizeof(F),
                               cfg_.forceLogBlockTile);
    }

    /**
     * Schedule via the shared ScheduleCache (or freshly compiled).
     * @p cfg is the *effective* (possibly DB-tuned) config and
     * @p tuned its provenance — part of the cache key, so tuned and
     * heuristic schedules never alias.
     */
    std::shared_ptr<const StageSchedule>
    scheduleCached(const NttPlan &pl, NttDirection dir, size_t batch,
                   const UniNttConfig &cfg, bool tuned,
                   bool *hit_out) const
    {
        if (cfg.useHostCaches)
            return ScheduleCache::global().get(pl, sys_, dir, sizeof(F),
                                               cfg, costs_, batch,
                                               hit_out, tuned);
        if (hit_out)
            *hit_out = false;
        ScheduleOptions opts;
        opts.batch = batch;
        return std::make_shared<const StageSchedule>(compileSchedule(
            pl, sys_, dir, sizeof(F), cfg, costs_, opts));
    }

    /** hostLanes() for an arbitrary (effective) config. */
    static unsigned
    hostLanesFor(const UniNttConfig &cfg)
    {
        return cfg.hostThreads != 0 ? cfg.hostThreads
                                    : ThreadPool::defaultLanes();
    }

    /** Twiddle table via the shared cache (or freshly built). */
    std::shared_ptr<const TwiddleTable<F>>
    twiddlesCached(uint64_t n, NttDirection dir, bool *hit_out) const
    {
        if (cfg_.useHostCaches)
            return cachedTwiddles<F>(n, dir, hit_out);
        if (hit_out)
            *hit_out = false;
        return std::make_shared<const TwiddleTable<F>>(n, dir);
    }

    /**
     * Per-stage compacted twiddle slabs via the shared slab cache (or
     * freshly built). On a slab miss @p table_hit_out reports how the
     * underlying table lookup behaved; on a slab hit the table cache
     * is never touched and @p table_hit_out is left unchanged.
     */
    std::shared_ptr<const TwiddleSlabs<F>>
    twiddleSlabsCached(uint64_t n, NttDirection dir, bool *slab_hit_out,
                       bool *table_hit_out) const
    {
        if (cfg_.useHostCaches)
            return cachedTwiddleSlabs<F>(n, dir, slab_hit_out,
                                         table_hit_out);
        if (slab_hit_out)
            *slab_hit_out = false;
        if (table_hit_out)
            *table_hit_out = false;
        const TwiddleTable<F> table(n, dir);
        return std::make_shared<const TwiddleSlabs<F>>(table);
    }

    MultiGpuSystem sys_;
    UniNttConfig cfg_;
    CostConstants costs_;
    PerfModel perf_;
    /** Spot-check seed derivation counter (see nextSpotSeed). */
    mutable uint64_t spotCheckEpoch_ = 0;
};

// ---------------------------------------------------------------------
// Implementation.
// ---------------------------------------------------------------------

template <NttField F>
SimReport
UniNttEngine<F>::run(unsigned logN, NttDirection dir,
                     std::vector<DistributedVector<F> *> &batch,
                     size_t analytic_batch) const
{
    bool plan_hit = false;
    const NttPlan pl = planCached(logN, sys_, &plan_hit);
    const uint64_t n = 1ULL << logN;
    const size_t nbatch = batch.empty() ? analytic_batch : batch.size();
    const bool functional = !batch.empty();

    for (auto *d : batch) {
        UNINTT_ASSERT(d->size() == n, "batch entry size mismatch");
        UNINTT_ASSERT(d->numGpus() == sys_.numGpus, "GPU count mismatch");
    }

    // Consult the tuning DB for this (field, logN, machine, executor)
    // before compiling: a hit swaps in the persisted knobs (honoring
    // explicit pins), a miss keeps the heuristic config unchanged.
    const TunedConfig tc =
        tunedFor(logN, functional ? "functional" : "analytic");
    const UniNttConfig &ecfg = tc.cfg;

    bool sched_hit = false;
    std::shared_ptr<const StageSchedule> sched =
        scheduleCached(pl, dir, nbatch, ecfg, tc.tuned, &sched_hit);

    // Compacted twiddle slabs shared by the functional execution
    // (served from the per-field slab cache; a slab miss pulls the flat
    // table through the table cache, so repeated transforms skip the
    // root-of-unity regeneration). The simulated twiddle strategy
    // (table vs on-the-fly) only affects accounting.
    std::shared_ptr<const TwiddleSlabs<F>> slabs;
    bool slab_hit = false;
    bool tw_hit = false;
    if (functional)
        slabs = twiddleSlabsCached(n, dir, &slab_hit, &tw_hit);

    SimReport report;
    {
        HostExecStats hx;
        hx.hostThreads = hostLanesFor(ecfg);
        (tc.tuned ? hx.tunedSchedules : hx.heuristicSchedules) = 1;
        hx.tuneClampWarnings = tc.clampWarnings;
        for (const auto &st : sched->steps)
            if (st.kind == StepKind::FusedLocalPass)
                hx.fusedGroups++;
        // A bypass run (useHostCaches off) consults no cache, so it
        // records no hit or miss.
        if (cfg_.useHostCaches) {
            (plan_hit ? hx.planCacheHits : hx.planCacheMisses) = 1;
            (sched_hit ? hx.scheduleCacheHits : hx.scheduleCacheMisses) =
                1;
            if (functional) {
                (slab_hit ? hx.twiddleSlabHits : hx.twiddleSlabMisses) =
                    1;
                // The flat table is only consulted on a slab miss.
                if (!slab_hit)
                    (tw_hit ? hx.twiddleCacheHits
                            : hx.twiddleCacheMisses) = 1;
            }
        }
        report.addHostExecStats(hx);
    }
    report.setPeakDeviceBytes(sched->peakDeviceBytes);

    if (functional) {
        FunctionalStepExecutor<F> exec(
            sys_, perf_, ecfg.overlapComm, report, batch, *slabs, logN,
            dir, hostLanesFor(ecfg), fieldKernels<F>(ecfg.isaPath),
            ecfg.fusedRadixLog2);
        Status st = dispatchSchedule(sched, exec);
        UNINTT_ASSERT(st.ok(), "functional execution cannot fail");
        HostExecStats hx;
        hx.exchangeChunks = exec.exchangeChunks();
        if (sched->overlapped)
            hx.overlapWaves = sched->waves.size();
        hx.isaPath = exec.kernels().name;
        hx.isaLanes = exec.kernels().lanes;
        hx.isaDispatches = exec.kernelDispatches();
        recordKernelDispatch(exec.kernels().path,
                             exec.kernelDispatches());
        if (hx.any())
            report.addHostExecStats(hx);
    } else {
        AnalyticStepExecutor exec(sys_, perf_, ecfg.overlapComm, report);
        Status st = dispatchSchedule(sched, exec);
        UNINTT_ASSERT(st.ok(), "analytic execution cannot fail");
        HostExecStats hx;
        hx.overlapWaves = exec.overlapWaves();
        if (hx.any())
            report.addHostExecStats(hx);
    }
    return report;
}

template <NttField F>
Result<SimReport>
UniNttEngine<F>::runResilient(NttDirection dir, DistributedVector<F> &data,
                              FaultInjector &faults,
                              const ResilienceConfig &rc,
                              DeviceHealthTracker *health) const
{
    Result<SimReport> r = runResilientImpl(dir, data, faults, rc, health);
    if (health != nullptr)
        health->endRun(); // the run clock ticks on every exit path
    return r;
}

template <NttField F>
Result<SimReport>
UniNttEngine<F>::runResilientImpl(NttDirection dir,
                                  DistributedVector<F> &data,
                                  FaultInjector &faults,
                                  const ResilienceConfig &rc,
                                  DeviceHealthTracker *health) const
{
    if (data.numGpus() != sys_.numGpus)
        return Status::error(
            StatusCode::InvalidArgument,
            "data is sharded over " + std::to_string(data.numGpus()) +
                " GPUs but the machine has " +
                std::to_string(sys_.numGpus));
    if (data.size() == 0 || !isPow2(data.size()))
        return Status::error(
            StatusCode::InvalidArgument,
            "transform size " + std::to_string(data.size()) +
                " is not a power of two");

    const unsigned logN = log2Exact(data.size());
    const uint64_t n = 1ULL << logN;

    // Resilient runs execute functionally, so they consult the same
    // tuning key the plain functional path does.
    const TunedConfig tc = tunedFor(logN, "functional");
    const UniNttConfig &ecfg = tc.cfg;

    // Input snapshot for the post-transform spot check.
    const std::vector<F> input = data.toGlobal();
    bool slab_hit = false;
    bool tw_hit = false;
    const auto slabs_ptr = twiddleSlabsCached(n, dir, &slab_hit, &tw_hit);
    const TwiddleSlabs<F> &slabs = *slabs_ptr;

    SimReport report;
    FaultStats fs;
    MultiGpuSystem sys = sys_; // shrinks when devices drop out

    // Consult the health tracker before planning: quarantined devices
    // never enter the plan. The data is resharded onto the largest
    // healthy power-of-two subset, priced as one all-to-all.
    if (health != nullptr) {
        UNINTT_ASSERT(health->numDevices() == sys_.numGpus,
                      "health tracker sized for a different machine");
        const unsigned usable =
            std::min(health->usablePowerOfTwo(), sys.numGpus);
        if (usable == 0)
            return Status::error(
                StatusCode::DeviceLost,
                "every device is quarantined; no plan is possible");
        if (usable < sys.numGpus) {
            Status st = data.reshardChecked(usable);
            if (!st.ok())
                return st;
            const uint64_t reshard_bytes = (n / usable) * sizeof(F);
            CommStats comm;
            comm.bytesPerGpu = reshard_bytes;
            comm.messages = usable;
            report.addCommPhase(
                "health-exclude-to-" + std::to_string(usable) +
                    "gpu-reshard",
                sys.fabric.allToAllTime(reshard_bytes, usable), comm);
            fs.devicesExcluded += sys.numGpus - usable;
            sys.numGpus = usable;
            if (sys.gpusPerNode != 0 && sys.numGpus <= sys.gpusPerNode)
                sys.gpusPerNode = 0; // survivors fit inside one node
        }
    }

    bool plan_hit = false;
    NttPlan pl = planCached(logN, sys, &plan_hit);
    const unsigned logMg0 = pl.logMg;
    {
        HostExecStats hx;
        hx.hostThreads = hostLanesFor(ecfg);
        (tc.tuned ? hx.tunedSchedules : hx.heuristicSchedules) = 1;
        hx.tuneClampWarnings = tc.clampWarnings;
        if (cfg_.useHostCaches) {
            (plan_hit ? hx.planCacheHits : hx.planCacheMisses) = 1;
            (slab_hit ? hx.twiddleSlabHits : hx.twiddleSlabMisses) = 1;
            if (!slab_hit)
                (tw_hit ? hx.twiddleCacheHits : hx.twiddleCacheMisses) =
                    1;
        }
        report.addHostExecStats(hx);
    }

    // Resilient schedules are compiled fresh (never cached): they
    // carry the checksum additions and may be recompiled mid-run after
    // a degradation, which would poison a shared cache.
    ScheduleOptions opts;
    opts.resilient = true;
    opts.spotChecks = rc.spotChecks;
    opts.abft = rc.abft;
    auto sched = std::make_shared<const StageSchedule>(compileSchedule(
        pl, sys, dir, sizeof(F), ecfg, costs_, opts));
    report.setPeakDeviceBytes(sched->peakDeviceBytes);
    {
        HostExecStats hx;
        for (const auto &st : sched->steps)
            if (st.kind == StepKind::FusedLocalPass)
                hx.fusedGroups++;
        if (hx.fusedGroups > 0)
            report.addHostExecStats(hx);
    }

    ResilientHooks hooks;
    hooks.replan = [this](unsigned lg, const MultiGpuSystem &s) {
        return planCached(lg, s, nullptr);
    };
    hooks.recompile = [this, ecfg, spot_checks = rc.spotChecks,
                       abft = rc.abft](
                          const NttPlan &p, const MultiGpuSystem &s,
                          NttDirection d, unsigned resume_stage,
                          unsigned orig_log_mg) {
        ScheduleOptions o;
        o.resilient = true;
        o.spotChecks = spot_checks;
        o.abft = abft;
        o.resume = true;
        o.resumeStage = resume_stage;
        o.origLogMg = orig_log_mg;
        return std::make_shared<const StageSchedule>(
            compileSchedule(p, s, d, sizeof(F), ecfg, costs_, o));
    };
    hooks.nextSpotSeed = [this](uint64_t base) {
        return nextSpotSeed(base);
    };

    ResilientStepExecutor<F> exec(sys, perf_, ecfg, report, data, input,
                                  faults, rc, health, slabs, pl, logMg0,
                                  dir, hostLanesFor(ecfg),
                                  std::move(hooks), fs,
                                  fieldKernels<F>(ecfg.isaPath));
    exec.attachSchedule(sched);
    Status st = dispatchSchedule(std::move(sched), exec);
    if (!st.ok())
        return st;

    {
        HostExecStats hx;
        hx.isaPath = exec.kernels().name;
        hx.isaLanes = exec.kernels().lanes;
        hx.isaDispatches = exec.kernelDispatches();
        recordKernelDispatch(exec.kernels().path,
                             exec.kernelDispatches());
        report.addHostExecStats(hx);
    }
    report.addFaultStats(fs);
    return report;
}

} // namespace unintt

#endif // UNINTT_UNINTT_ENGINE_HH
