#include "unintt/config.hh"

#include <sstream>

namespace unintt {

std::string
UniNttConfig::toString() const
{
    auto onoff = [](bool b) { return b ? "on" : "off"; };
    std::ostringstream os;
    os << "fuse=" << onoff(fuseTwiddles)
       << " otf-twiddle=" << onoff(onTheFlyTwiddles)
       << " pad-smem=" << onoff(paddedSmem)
       << " warp-shfl=" << onoff(warpShuffle)
       << " overlap=" << onoff(overlapComm)
       << " host-caches=" << onoff(useHostCaches)
       << " host-threads=";
    if (hostThreads == 0)
        os << "auto";
    else
        os << hostThreads;
    return os.str();
}

} // namespace unintt
