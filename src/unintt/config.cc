#include "unintt/config.hh"

#include <algorithm>
#include <sstream>

#include "util/bitops.hh"

namespace unintt {

namespace {

/**
 * Per-core fast-memory budget of the host cache model used to derive
 * the fused tile size: 256 KiB, the common private L2 slice. The host
 * analogue of sizing block tiles from the GPU's smem capacity.
 */
constexpr size_t kHostTileCacheBytes = 256ULL << 10;

constexpr unsigned kMinHostTileLog2 = 4;
constexpr unsigned kMaxHostTileLog2 = 20;

} // namespace

unsigned
UniNttConfig::resolvedHostTileLog2(size_t element_bytes,
                                   unsigned simd_lanes) const
{
    unsigned t = hostTileLog2;
    if (t == 0)
        t = log2Floor(kHostTileCacheBytes / std::max<size_t>(element_bytes, 1));
    // Lane-parallel kernel paths need the smallest fused spans to
    // still hold a few full vectors: raise the floor to 8 vectors'
    // worth of elements (lanes * 8). Scalar keeps the historic floor.
    unsigned min_t = kMinHostTileLog2;
    if (simd_lanes > 1)
        min_t = std::max(min_t, log2Floor(simd_lanes) + 3);
    return std::clamp(t, std::min(min_t, kMaxHostTileLog2),
                      kMaxHostTileLog2);
}

std::string
UniNttConfig::toString() const
{
    auto onoff = [](bool b) { return b ? "on" : "off"; };
    std::ostringstream os;
    os << "fuse=" << onoff(fuseTwiddles)
       << " otf-twiddle=" << onoff(onTheFlyTwiddles)
       << " pad-smem=" << onoff(paddedSmem)
       << " warp-shfl=" << onoff(warpShuffle)
       << " overlap=" << onoff(overlapComm)
       << " fuse-local=" << onoff(fuseLocalPasses)
       << " host-tile=";
    if (hostTileLog2 == 0)
        os << "auto";
    else
        os << hostTileLog2;
    os << " radix=r" << (1u << std::clamp(fusedRadixLog2, 1u, 3u))
       << " tune-db=" << (useTuneDb ? "on" : "off")
       << " isa=" << isaPathName(isaPath)
       << " host-caches=" << onoff(useHostCaches)
       << " host-threads=";
    if (hostThreads == 0)
        os << "auto";
    else
        os << hostThreads;
    return os.str();
}

} // namespace unintt
