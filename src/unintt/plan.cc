#include "unintt/plan.hh"

#include <sstream>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

std::string
NttPlan::toString() const
{
    std::ostringstream os;
    os << "2^" << logN << " = ";
    if (logMg > 0)
        os << "mgpu(" << logMg << ")";
    for (size_t i = 0; i < passes.size(); ++i) {
        if (logMg > 0 || i > 0)
            os << " * ";
        os << "pass(" << passes[i].bits << ")";
    }
    return os.str();
}

NttPlan
planNtt(unsigned logN, const MultiGpuSystem &sys, size_t element_bytes)
{
    return planNttWithTile(logN, sys, element_bytes, 0);
}

NttPlan
planNttWithTile(unsigned logN, const MultiGpuSystem &sys,
                size_t element_bytes, unsigned force_log_tile)
{
    if (!isPow2(sys.numGpus))
        fatal("UniNTT requires a power-of-two GPU count, got %u",
              sys.numGpus);

    NttPlan plan;
    plan.logN = logN;
    plan.numGpus = sys.numGpus;
    plan.logMg = log2Exact(sys.numGpus);
    if (logN < plan.logMg + 1)
        fatal("transform 2^%u too small for %u GPUs", logN, sys.numGpus);

    // Capacity check: the engine keeps data plus one exchange buffer
    // per GPU resident.
    uint64_t per_gpu_bytes =
        ((1ULL << logN) / sys.numGpus) * element_bytes * 2;
    if (per_gpu_bytes > sys.gpu.dramCapacityBytes)
        fatal("transform 2^%u does not fit: needs %llu bytes/GPU of %llu",
              logN, static_cast<unsigned long long>(per_gpu_bytes),
              static_cast<unsigned long long>(sys.gpu.dramCapacityBytes));

    // Block tile: bounded by two elements per thread and by staging the
    // tile (double-buffered) in shared memory.
    uint64_t by_threads = 2ULL * sys.gpu.maxThreadsPerBlock;
    uint64_t by_smem = sys.gpu.smemBytesPerBlock / (2 * element_bytes);
    uint64_t tile = std::min(by_threads, nextPow2(by_smem + 1) / 2);
    plan.logBlockTile = log2Floor(tile);
    if (force_log_tile != 0) {
        if (force_log_tile > log2Floor(by_smem * 2))
            fatal("forced tile 2^%u does not fit in shared memory",
                  force_log_tile);
        plan.logBlockTile = force_log_tile;
    }
    plan.logWarp = log2Exact(sys.gpu.warpSize);

    // Split the local bits into the minimum number of grid passes and
    // balance the bits across them: every pass costs one full-array
    // memory round trip regardless of its width, and an unbalanced
    // split lets a wide pass's butterfly compute poke above the memory
    // roofline while narrow passes waste it (found by the tile-size
    // sensitivity study, bench/fig16_tile_size).
    unsigned remaining = plan.localBits();
    unsigned num_passes =
        (remaining + plan.logBlockTile - 1) / plan.logBlockTile;
    for (unsigned i = 0; i < num_passes; ++i) {
        unsigned left = num_passes - i;
        unsigned bits = (remaining + left - 1) / left; // even split
        GridPassPlan pass;
        pass.bits = bits;
        pass.warpRounds = (bits + plan.logWarp - 1) / plan.logWarp;
        plan.passes.push_back(pass);
        remaining -= bits;
    }
    UNINTT_ASSERT(remaining == 0, "pass split did not cover all bits");

    return plan;
}

} // namespace unintt
