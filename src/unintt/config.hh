/**
 * @file
 * Configuration of the UniNTT engine: the uniform optimization set.
 *
 * Each flag corresponds to one of the optimizations the paper designs
 * once against the abstract hardware model and then applies at every
 * hierarchy level. Turning a flag off reproduces the ablation
 * experiments (bench/fig11_ablation).
 */

#ifndef UNINTT_UNINTT_CONFIG_HH
#define UNINTT_UNINTT_CONFIG_HH

#include <cstdint>
#include <string>

#include "field/isa.hh"
#include "sim/fault.hh"

namespace unintt {

/** Optimization toggles of the UniNTT engine. */
struct UniNttConfig
{
    /**
     * The overhead-free decomposition: fuse the inter-sub-NTT twiddle
     * multiplication into the butterflies of the adjacent sub-NTT.
     * When off, every decomposition boundary (cross-GPU -> local, and
     * every grid pass boundary) pays an explicit twiddle pass over the
     * whole dataset, exactly like the classic four-step algorithm.
     */
    bool fuseTwiddles = true;

    /**
     * Generate twiddles incrementally in registers instead of loading
     * a precomputed table through the memory hierarchy. Trades extra
     * multiplies for bandwidth; the same trade at every level.
     */
    bool onTheFlyTwiddles = true;

    /**
     * Resolve onTheFlyTwiddles from the abstract hardware model at
     * engine construction: generation wins on bandwidth-bound fields
     * (Goldilocks, BabyBear), tables win on compute-bound ones
     * (BN254-Fr). This is the paper's "design once against the
     * abstract model" story applied to the strategy choice itself.
     * Set to false to pin the flag manually (ablation studies do).
     */
    bool autoTuneTwiddles = true;

    /**
     * Pad the shared-memory tile layout so strided accesses hit
     * distinct banks. When off, tile exchanges pay bank-conflict
     * replays.
     */
    bool paddedSmem = true;

    /**
     * Use the register shuffle network for the warp-level sub-NTTs.
     * When off, warp-level stages round-trip through shared memory like
     * the block-level ones.
     */
    bool warpShuffle = true;

    /**
     * Double-buffer the inter-GPU exchanges so link transfers overlap
     * butterfly computation (and, one level down, smem prefetch
     * overlaps tile compute). When off, communication serializes with
     * computation.
     */
    bool overlapComm = true;

    /**
     * Pin the shared-memory block tile to 2^forceLogBlockTile elements
     * instead of the planner's capacity-derived choice. 0 = automatic.
     * Used by the tile-size sensitivity study (bench/fig16_tile_size).
     */
    unsigned forceLogBlockTile = 0;

    /**
     * Append a global bit-reversal gather to forward schedules so the
     * output lands in natural order instead of the transform-native
     * globally bit-reversed order. Costs one extra pass (scattered
     * DRAM writes) plus an all-to-all when the data is sharded over
     * more than one GPU. Plain forward paths only — the resilient
     * path's spot check verifies the transform-native ordering and
     * ignores this flag.
     */
    bool naturalOrderOutput = false;

    /**
     * Fuse consecutive local butterfly stages into cache-resident tile
     * groups on the host functional path (and FusedLocalPass steps in
     * the schedule IR): each 2^hostTileLog2-element tile is loaded
     * once, all stages of the group run in-tile, and the tile is
     * written back once — one fork/join and one DRAM round trip per
     * group instead of per stage. The host-level analogue of the
     * paper's shared-memory stage fusion. Off reproduces the one-pass-
     * per-stage walk (ablation / differential baseline).
     */
    bool fuseLocalPasses = true;

    /**
     * log2 of the host tile used by fused local passes. 0 = derive
     * from a host cache model (a 256 KiB per-core budget, the common
     * L2 slice size); explicit values are clamped to [4, 20]. Purely a
     * host performance knob: outputs are bit-identical for every
     * value.
     */
    unsigned hostTileLog2 = 0;

    /**
     * log2 of the largest radix the fused flat sweeps may use:
     * 3 = radix-8 + radix-4 + radix-2 (default), 2 = radix-4 +
     * radix-2, 1 = radix-2 only. The autotuner's radix-mix knob;
     * every mix applies the identical per-stage arithmetic, so
     * outputs are bit-identical for all values.
     */
    unsigned fusedRadixLog2 = 3;

    /**
     * Consult the persisted tuning DB (unintt/tunedb.hh) ahead of the
     * heuristic when resolving the host execution knobs. Off skips the
     * lookup entirely (pinned harnesses, differential baselines).
     * UNINTT_TUNEDB overrides both this flag and tuneDbPath.
     */
    bool useTuneDb = true;

    /**
     * Path of the tuning DB file; "" = the in-repo default
     * (tuning/tunedb.json), "off" disables consultation like
     * useTuneDb = false.
     */
    std::string tuneDbPath;

    /**
     * The tile log2 fused kernels actually use for elements of
     * @p element_bytes: the explicit hostTileLog2 when set, otherwise
     * the largest tile fitting the per-core cache budget, both clamped
     * to [4, 20]. @p simd_lanes is the active kernel path's vector
     * width (field/dispatch.hh isaLaneWidth): the floor of the clamp
     * rises so the smallest fused spans still hold several full
     * vectors, keeping tiny forced tiles from starving the lane-
     * parallel kernels. Purely a perf knob — outputs are bit-identical
     * for every value.
     */
    unsigned resolvedHostTileLog2(size_t element_bytes,
                                  unsigned simd_lanes = 1) const;

    /**
     * Host acceleration path for the span kernels (field/dispatch.hh).
     * Auto probes the CPU and binds the best compiled-in path; the
     * UNINTT_FORCE_ISA environment variable overrides this field, and
     * unsupported requests fall back down the ladder to scalar. Every
     * path produces byte-identical outputs; this is purely a host
     * performance knob.
     */
    IsaPath isaPath = IsaPath::Auto;

    /**
     * Host threads allowed to execute the functional (bit-exact)
     * butterfly work of a transform. 0 = use every lane of the shared
     * pool (util/thread_pool.hh), 1 = serial. Purely a host-side knob:
     * outputs and every simulated counter are identical for all values
     * (simulated GPUs write disjoint chunks and every cross-GPU
     * exchange is a barrier).
     */
    unsigned hostThreads = 0;

    /**
     * Consult the process-wide PlanCache / TwiddleCache (unintt/
     * cache.hh) instead of re-planning and regenerating roots of unity
     * per transform. Off forces cold-path behavior (determinism
     * tests); results are bit-identical either way.
     */
    bool useHostCaches = true;

    /** Human-readable on/off summary for reports. */
    std::string toString() const;

    /** All optimizations enabled (the paper's default). */
    static UniNttConfig allOn() { return UniNttConfig{}; }

    /** All optimizations disabled (decomposition still correct). */
    static UniNttConfig
    allOff()
    {
        UniNttConfig c;
        c.fuseTwiddles = false;
        c.onTheFlyTwiddles = false;
        c.autoTuneTwiddles = false;
        c.paddedSmem = false;
        c.warpShuffle = false;
        c.overlapComm = false;
        c.fuseLocalPasses = false;
        return c;
    }
};

/**
 * Policy of the resilient execution paths
 * (UniNttEngine::forwardResilient / inverseResilient): how hard to
 * retry transient faults, how device loss is detected, and how much
 * post-transform spot checking to pay for. Orthogonal to UniNttConfig —
 * the optimization set is unchanged by resilience.
 */
struct ResilienceConfig
{
    /** Bounded exponential backoff for transient exchange faults. */
    RetryPolicy retry;

    /**
     * Time to declare a device permanently lost (heartbeat timeout)
     * before degraded-mode recovery starts.
     */
    double detectionSeconds = 1e-3;

    /**
     * Random output positions verified against a direct evaluation
     * after the transform (unintt/verify.hh). 0 disables the check.
     */
    unsigned spotChecks = 4;

    /**
     * Base seed of the spot-check position sampling. The engine
     * derives a fresh per-check seed from this base and a per-engine
     * check counter (util/checksum.hh mix64), so repeated checks of
     * the same transform sample fresh positions while the sequence
     * stays deterministic for a given engine and base seed.
     */
    uint64_t spotCheckSeed = 99;

    /**
     * Straggler watchdog: an exchange stretched beyond
     * watchdogDeadlineFactor x its fault-free time is aborted at the
     * deadline and retried once, converting an unbounded straggler
     * into a bounded, priced recovery (deadline + one clean
     * retransmission) counted in FaultStats::watchdogTimeouts.
     * 0 disables the watchdog (stragglers stretch exchanges without
     * bound, the pre-watchdog behavior).
     */
    double watchdogDeadlineFactor = 8.0;

    /**
     * Allow re-sharding onto the surviving power-of-two GPU subset
     * after a permanent device loss. When false, device loss is a
     * non-recoverable (but still non-fatal) DeviceLost status.
     */
    bool allowDegraded = true;

    /**
     * ABFT compute-path integrity: maintain a random-linear-combination
     * checksum per shard, update it analytically through every linear
     * step, compare after each compute step, and on mismatch localize
     * the corrupted tile via per-tile partial checksums and recompute
     * only that tile. Catches silent data corruption inside the
     * arithmetic (FaultModel::computeBitFlipRate), which exchange
     * checksums and spot checks cannot localize. Off trusts compute
     * outputs exactly as before this layer existed.
     */
    bool abft = true;

    /**
     * Recompute attempts per corrupted tile before the ABFT layer
     * escalates: the device is marked suspect in the health tracker
     * and the run falls back to the degrade-reschedule path (multi-GPU)
     * or fails with DataCorruption (last GPU).
     */
    unsigned abftMaxTileRetries = 2;
};

/**
 * Model constants used when pricing the optimization trade-offs. They
 * are deliberately explicit (not buried in code) so EXPERIMENTS.md can
 * reference them; see DESIGN.md "Hardware substitution".
 */
struct CostConstants
{
    /**
     * Fraction of twiddle-table loads that miss in L2 and reach DRAM
     * when onTheFlyTwiddles is off.
     */
    double twiddleTableDramFraction = 0.5;
    /**
     * Extra field multiplies per butterfly for incremental twiddle
     * generation when onTheFlyTwiddles is on.
     */
    double onTheFlyExtraMuls = 0.5;
    /**
     * Average extra shared-memory replays per access for the unpadded
     * layout (a 8-way conflict replays 7 times).
     */
    double unpaddedConflictReplays = 7.0;
};

} // namespace unintt

#endif // UNINTT_UNINTT_CONFIG_HH
