/**
 * @file
 * AVX2 span-kernel backends: Goldilocks (4 x u64 lanes) and BabyBear
 * (8 x u32 Montgomery lanes). This translation unit is compiled with
 * -mavx2 and must only execute after the dispatch-layer CPUID probe
 * confirms AVX2 — the router guarantees that.
 *
 * Every lane op mirrors the scalar formula of its field exactly:
 *
 *  - Goldilocks add/sub/reduce use the same masked epsilon/modulus
 *    corrections as goldilocks.hh, with unsigned 64-bit compares
 *    synthesized from signed ones by sign-bit flips; the 64x64->128
 *    product is a 32-bit schoolbook (vpmuludq) whose middle column
 *    never overflows 64 bits ((2^32-1)^2 + 2*(2^32-1) < 2^64).
 *  - BabyBear stays in Montgomery form; the conditional +-p
 *    corrections become unsigned min tricks (min(s, s-p) == branchy
 *    subtract for s < 2p), and the REDC is the identical
 *    m = t*(-p^-1) mod 2^32; (t + m*p) >> 32 sequence on 64-bit even
 *    and odd sublanes.
 *
 * Identical formulas on canonical representations give byte-identical
 * results — the differential matrix in tests/test_differential.cc
 * enforces this against the scalar table.
 */

#if defined(UNINTT_HAVE_AVX2)

#include <immintrin.h>

#include "field/kernels_simd.hh"
#include "field/kernels_tables.hh"

namespace unintt {
namespace spankernels {
namespace {

// ----- Goldilocks: 4 lanes of u64 --------------------------------------

struct GlAvx2
{
    using Field = Goldilocks;
    static constexpr size_t kLanes = 4;

    static __m256i
    load(const Goldilocks *p)
    {
        return _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p));
    }

    static void
    store(Goldilocks *p, __m256i v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }

    static __m256i
    bcast(Goldilocks x)
    {
        return _mm256_set1_epi64x(
            static_cast<long long>(x.toU64()));
    }

    static __m256i
    modulus()
    {
        return _mm256_set1_epi64x(
            static_cast<long long>(Goldilocks::kModulus));
    }

    static __m256i
    epsilon()
    {
        return _mm256_set1_epi64x(
            static_cast<long long>(Goldilocks::kEpsilon));
    }

    /** Lane mask of unsigned a < b (sign-flip + signed compare). */
    static __m256i
    cmpltU64(__m256i a, __m256i b)
    {
        const __m256i sign = _mm256_set1_epi64x(
            static_cast<long long>(0x8000000000000000ULL));
        return _mm256_cmpgt_epi64(_mm256_xor_si256(b, sign),
                                  _mm256_xor_si256(a, sign));
    }

    /** Lane mask of unsigned a >= b. */
    static __m256i
    cmpgeU64(__m256i a, __m256i b)
    {
        return _mm256_xor_si256(cmpltU64(a, b),
                                _mm256_set1_epi64x(-1));
    }

    static __m256i
    add(__m256i a, __m256i b)
    {
        __m256i s = _mm256_add_epi64(a, b);
        s = _mm256_add_epi64(
            s, _mm256_and_si256(epsilon(), cmpltU64(s, a)));
        s = _mm256_sub_epi64(
            s, _mm256_and_si256(modulus(), cmpgeU64(s, modulus())));
        return s;
    }

    static __m256i
    sub(__m256i a, __m256i b)
    {
        __m256i d = _mm256_sub_epi64(a, b);
        d = _mm256_sub_epi64(
            d, _mm256_and_si256(epsilon(), cmpltU64(a, b)));
        return d;
    }

    /** reduce128 of goldilocks.hh, lane-wise on (hi, lo) halves. */
    static __m256i
    reduce(__m256i hi, __m256i lo)
    {
        const __m256i lo32 = epsilon(); // 0xffffffff mask == epsilon
        const __m256i hi_hi = _mm256_srli_epi64(hi, 32);
        const __m256i hi_lo = _mm256_and_si256(hi, lo32);
        __m256i t0 = _mm256_sub_epi64(lo, hi_hi);
        t0 = _mm256_sub_epi64(
            t0, _mm256_and_si256(epsilon(), cmpltU64(lo, hi_hi)));
        const __m256i t1 = _mm256_sub_epi64(
            _mm256_slli_epi64(hi_lo, 32), hi_lo);
        __m256i res = _mm256_add_epi64(t0, t1);
        res = _mm256_add_epi64(
            res, _mm256_and_si256(epsilon(), cmpltU64(res, t0)));
        res = _mm256_sub_epi64(
            res,
            _mm256_and_si256(modulus(), cmpgeU64(res, modulus())));
        return res;
    }

    static __m256i
    mul(__m256i x, __m256i y)
    {
        const __m256i lo32 = epsilon();
        const __m256i xh = _mm256_srli_epi64(x, 32);
        const __m256i yh = _mm256_srli_epi64(y, 32);
        const __m256i ll = _mm256_mul_epu32(x, y);
        const __m256i lh = _mm256_mul_epu32(x, yh);
        const __m256i hl = _mm256_mul_epu32(xh, y);
        const __m256i hh = _mm256_mul_epu32(xh, yh);
        // Middle column plus the low product's high half; fits u64.
        const __m256i t = _mm256_add_epi64(
            _mm256_srli_epi64(ll, 32),
            _mm256_add_epi64(_mm256_and_si256(lh, lo32),
                             _mm256_and_si256(hl, lo32)));
        const __m256i p_lo = _mm256_or_si256(
            _mm256_and_si256(ll, lo32), _mm256_slli_epi64(t, 32));
        const __m256i p_hi = _mm256_add_epi64(
            hh, _mm256_add_epi64(
                    _mm256_srli_epi64(lh, 32),
                    _mm256_add_epi64(_mm256_srli_epi64(hl, 32),
                                     _mm256_srli_epi64(t, 32))));
        return reduce(p_hi, p_lo);
    }
};

// ----- BabyBear: 8 lanes of u32 Montgomery residues --------------------

/** -p^-1 mod 2^32 (same Newton iteration as babybear.hh). */
constexpr uint32_t
bbNegInv()
{
    uint32_t x = 1;
    for (int i = 0; i < 5; ++i)
        x *= 2u - BabyBear::kModulus * x;
    return ~x + 1u;
}

struct BbAvx2
{
    using Field = BabyBear;
    static constexpr size_t kLanes = 8;

    static __m256i
    load(const BabyBear *p)
    {
        return _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p));
    }

    static void
    store(BabyBear *p, __m256i v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }

    static __m256i
    bcast(BabyBear x)
    {
        // Broadcast the raw Montgomery representation.
        uint32_t raw;
        static_assert(sizeof(BabyBear) == sizeof(uint32_t));
        __builtin_memcpy(&raw, &x, sizeof(raw));
        return _mm256_set1_epi32(static_cast<int>(raw));
    }

    static __m256i
    modulus32()
    {
        return _mm256_set1_epi32(
            static_cast<int>(BabyBear::kModulus));
    }

    static __m256i
    add(__m256i a, __m256i b)
    {
        // s < 2p < 2^32; min(s, s - p) is the conditional subtract.
        const __m256i s = _mm256_add_epi32(a, b);
        return _mm256_min_epu32(s, _mm256_sub_epi32(s, modulus32()));
    }

    static __m256i
    sub(__m256i a, __m256i b)
    {
        // a >= b: d < p and d + p < 2^32 keeps min at d;
        // a < b: d wraps high and d + p wraps to the borrowed value.
        const __m256i d = _mm256_sub_epi32(a, b);
        return _mm256_min_epu32(d, _mm256_add_epi32(d, modulus32()));
    }

    /**
     * Montgomery product of the even 32-bit sublanes (values in the
     * low half of each 64-bit lane); result < 2p in the low half.
     */
    static __m256i
    redcHalf(__m256i a, __m256i b)
    {
        const __m256i np = _mm256_set1_epi64x(
            static_cast<long long>(bbNegInv()));
        const __m256i p64 = _mm256_set1_epi64x(
            static_cast<long long>(BabyBear::kModulus));
        const __m256i lo32 =
            _mm256_set1_epi64x(0xffffffffLL);
        const __m256i t = _mm256_mul_epu32(a, b);
        const __m256i m =
            _mm256_and_si256(_mm256_mul_epu32(t, np), lo32);
        return _mm256_srli_epi64(
            _mm256_add_epi64(t, _mm256_mul_epu32(m, p64)), 32);
    }

    static __m256i
    mul(__m256i a, __m256i b)
    {
        const __m256i ao = _mm256_srli_epi64(a, 32);
        const __m256i bo = _mm256_srli_epi64(b, 32);
        const __m256i ue = redcHalf(a, b);
        const __m256i uo = redcHalf(ao, bo);
        const __m256i r =
            _mm256_or_si256(ue, _mm256_slli_epi64(uo, 32));
        // One conditional subtract brings every lane below p.
        return _mm256_min_epu32(r, _mm256_sub_epi32(r, modulus32()));
    }
};

} // namespace

const FieldKernels<Goldilocks> &
goldilocksAvx2Table()
{
    static const FieldKernels<Goldilocks> t =
        VecKernels<GlAvx2>::table(IsaPath::Avx2, "avx2");
    return t;
}

const FieldKernels<BabyBear> &
babybearAvx2Table()
{
    static const FieldKernels<BabyBear> t =
        VecKernels<BbAvx2>::table(IsaPath::Avx2, "avx2");
    return t;
}

} // namespace spankernels
} // namespace unintt

#endif // UNINTT_HAVE_AVX2
