/**
 * @file
 * AVX-512F span-kernel backends: Goldilocks (8 x u64 lanes) and
 * BabyBear (16 x u32 Montgomery lanes). Compiled with -mavx512f; the
 * dispatch-layer CPUID probe gates execution, exactly like the AVX2
 * backend. Formulas are the same lane-wise mirrors of the scalar
 * field ops (see kernels_avx2.cc); the 512-bit ISA just replaces the
 * synthesized compare-and-mask corrections with native unsigned
 * compare masks and masked add/sub.
 */

#if defined(UNINTT_HAVE_AVX512)

#include <immintrin.h>

#include "field/kernels_simd.hh"
#include "field/kernels_tables.hh"

namespace unintt {
namespace spankernels {
namespace {

// ----- Goldilocks: 8 lanes of u64 --------------------------------------

struct GlAvx512
{
    using Field = Goldilocks;
    static constexpr size_t kLanes = 8;

    static __m512i
    load(const Goldilocks *p)
    {
        return _mm512_loadu_si512(p);
    }

    static void
    store(Goldilocks *p, __m512i v)
    {
        _mm512_storeu_si512(p, v);
    }

    static __m512i
    bcast(Goldilocks x)
    {
        return _mm512_set1_epi64(
            static_cast<long long>(x.toU64()));
    }

    static __m512i
    modulus()
    {
        return _mm512_set1_epi64(
            static_cast<long long>(Goldilocks::kModulus));
    }

    static __m512i
    epsilon()
    {
        return _mm512_set1_epi64(
            static_cast<long long>(Goldilocks::kEpsilon));
    }

    static __m512i
    add(__m512i a, __m512i b)
    {
        __m512i s = _mm512_add_epi64(a, b);
        const __mmask8 carry = _mm512_cmplt_epu64_mask(s, a);
        s = _mm512_mask_add_epi64(s, carry, s, epsilon());
        const __mmask8 ge = _mm512_cmpge_epu64_mask(s, modulus());
        s = _mm512_mask_sub_epi64(s, ge, s, modulus());
        return s;
    }

    static __m512i
    sub(__m512i a, __m512i b)
    {
        __m512i d = _mm512_sub_epi64(a, b);
        const __mmask8 borrow = _mm512_cmplt_epu64_mask(a, b);
        d = _mm512_mask_sub_epi64(d, borrow, d, epsilon());
        return d;
    }

    static __m512i
    reduce(__m512i hi, __m512i lo)
    {
        const __m512i lo32 = epsilon();
        const __m512i hi_hi = _mm512_srli_epi64(hi, 32);
        const __m512i hi_lo = _mm512_and_si512(hi, lo32);
        __m512i t0 = _mm512_sub_epi64(lo, hi_hi);
        const __mmask8 borrow = _mm512_cmplt_epu64_mask(lo, hi_hi);
        t0 = _mm512_mask_sub_epi64(t0, borrow, t0, epsilon());
        const __m512i t1 = _mm512_sub_epi64(
            _mm512_slli_epi64(hi_lo, 32), hi_lo);
        __m512i res = _mm512_add_epi64(t0, t1);
        const __mmask8 carry = _mm512_cmplt_epu64_mask(res, t0);
        res = _mm512_mask_add_epi64(res, carry, res, epsilon());
        const __mmask8 ge = _mm512_cmpge_epu64_mask(res, modulus());
        res = _mm512_mask_sub_epi64(res, ge, res, modulus());
        return res;
    }

    static __m512i
    mul(__m512i x, __m512i y)
    {
        const __m512i lo32 = epsilon();
        const __m512i xh = _mm512_srli_epi64(x, 32);
        const __m512i yh = _mm512_srli_epi64(y, 32);
        const __m512i ll = _mm512_mul_epu32(x, y);
        const __m512i lh = _mm512_mul_epu32(x, yh);
        const __m512i hl = _mm512_mul_epu32(xh, y);
        const __m512i hh = _mm512_mul_epu32(xh, yh);
        const __m512i t = _mm512_add_epi64(
            _mm512_srli_epi64(ll, 32),
            _mm512_add_epi64(_mm512_and_si512(lh, lo32),
                             _mm512_and_si512(hl, lo32)));
        const __m512i p_lo = _mm512_or_si512(
            _mm512_and_si512(ll, lo32), _mm512_slli_epi64(t, 32));
        const __m512i p_hi = _mm512_add_epi64(
            hh, _mm512_add_epi64(
                    _mm512_srli_epi64(lh, 32),
                    _mm512_add_epi64(_mm512_srli_epi64(hl, 32),
                                     _mm512_srli_epi64(t, 32))));
        return reduce(p_hi, p_lo);
    }
};

// ----- BabyBear: 16 lanes of u32 Montgomery residues -------------------

constexpr uint32_t
bbNegInv()
{
    uint32_t x = 1;
    for (int i = 0; i < 5; ++i)
        x *= 2u - BabyBear::kModulus * x;
    return ~x + 1u;
}

struct BbAvx512
{
    using Field = BabyBear;
    static constexpr size_t kLanes = 16;

    static __m512i
    load(const BabyBear *p)
    {
        return _mm512_loadu_si512(p);
    }

    static void
    store(BabyBear *p, __m512i v)
    {
        _mm512_storeu_si512(p, v);
    }

    static __m512i
    bcast(BabyBear x)
    {
        uint32_t raw;
        static_assert(sizeof(BabyBear) == sizeof(uint32_t));
        __builtin_memcpy(&raw, &x, sizeof(raw));
        return _mm512_set1_epi32(static_cast<int>(raw));
    }

    static __m512i
    modulus32()
    {
        return _mm512_set1_epi32(
            static_cast<int>(BabyBear::kModulus));
    }

    static __m512i
    add(__m512i a, __m512i b)
    {
        const __m512i s = _mm512_add_epi32(a, b);
        return _mm512_min_epu32(s, _mm512_sub_epi32(s, modulus32()));
    }

    static __m512i
    sub(__m512i a, __m512i b)
    {
        const __m512i d = _mm512_sub_epi32(a, b);
        return _mm512_min_epu32(d, _mm512_add_epi32(d, modulus32()));
    }

    static __m512i
    redcHalf(__m512i a, __m512i b)
    {
        const __m512i np = _mm512_set1_epi64(
            static_cast<long long>(bbNegInv()));
        const __m512i p64 = _mm512_set1_epi64(
            static_cast<long long>(BabyBear::kModulus));
        const __m512i lo32 = _mm512_set1_epi64(0xffffffffLL);
        const __m512i t = _mm512_mul_epu32(a, b);
        const __m512i m =
            _mm512_and_si512(_mm512_mul_epu32(t, np), lo32);
        return _mm512_srli_epi64(
            _mm512_add_epi64(t, _mm512_mul_epu32(m, p64)), 32);
    }

    static __m512i
    mul(__m512i a, __m512i b)
    {
        const __m512i ao = _mm512_srli_epi64(a, 32);
        const __m512i bo = _mm512_srli_epi64(b, 32);
        const __m512i ue = redcHalf(a, b);
        const __m512i uo = redcHalf(ao, bo);
        const __m512i r =
            _mm512_or_si512(ue, _mm512_slli_epi64(uo, 32));
        return _mm512_min_epu32(r, _mm512_sub_epi32(r, modulus32()));
    }
};

} // namespace

const FieldKernels<Goldilocks> &
goldilocksAvx512Table()
{
    static const FieldKernels<Goldilocks> t =
        VecKernels<GlAvx512>::table(IsaPath::Avx512, "avx512");
    return t;
}

const FieldKernels<BabyBear> &
babybearAvx512Table()
{
    static const FieldKernels<BabyBear> t =
        VecKernels<BbAvx512>::table(IsaPath::Avx512, "avx512");
    return t;
}

} // namespace spankernels
} // namespace unintt

#endif // UNINTT_HAVE_AVX512
