#include "field/babybear.hh"

#include "util/logging.hh"

namespace unintt {

BabyBear
BabyBear::pow(uint64_t exp) const
{
    BabyBear base = *this;
    BabyBear acc = one();
    while (exp) {
        if (exp & 1)
            acc *= base;
        base *= base;
        exp >>= 1;
    }
    return acc;
}

BabyBear
BabyBear::inverse() const
{
    UNINTT_ASSERT(!isZero(), "inverse of zero");
    return pow(kModulus - 2);
}

BabyBear
BabyBear::rootOfUnity(unsigned log_n)
{
    if (log_n > kTwoAdicity)
        fatal("BabyBear has two-adicity %u, cannot build a 2^%u-th root",
              kTwoAdicity, log_n);
    BabyBear root = multiplicativeGenerator().pow(
        (static_cast<uint64_t>(kModulus) - 1) >> kTwoAdicity);
    for (unsigned i = log_n; i < kTwoAdicity; ++i)
        root *= root;
    return root;
}

} // namespace unintt
