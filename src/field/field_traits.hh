/**
 * @file
 * Compile-time description of the field interface the NTT engine relies
 * on, expressed as a C++20 concept, plus small free-function helpers that
 * work for every conforming field.
 */

#ifndef UNINTT_FIELD_FIELD_TRAITS_HH
#define UNINTT_FIELD_FIELD_TRAITS_HH

#include <concepts>
#include <cstdint>
#include <vector>

namespace unintt {

/**
 * The operations every NTT-capable field must provide. All three shipped
 * fields (Goldilocks, BabyBear, BN254-Fr) satisfy this concept; Bn254Fq
 * satisfies it too but has no useful two-adic domain.
 */
template <typename F>
concept NttField = requires(F a, F b, uint64_t x, unsigned log_n) {
    { F::zero() } -> std::convertible_to<F>;
    { F::one() } -> std::convertible_to<F>;
    { F::fromU64(x) } -> std::convertible_to<F>;
    { F::rootOfUnity(log_n) } -> std::convertible_to<F>;
    { F::multiplicativeGenerator() } -> std::convertible_to<F>;
    { a + b } -> std::convertible_to<F>;
    { a - b } -> std::convertible_to<F>;
    { a * b } -> std::convertible_to<F>;
    { -a } -> std::convertible_to<F>;
    { a == b } -> std::convertible_to<bool>;
    { a.pow(x) } -> std::convertible_to<F>;
    { a.inverse() } -> std::convertible_to<F>;
    { a.isZero() } -> std::convertible_to<bool>;
    { F::kTwoAdicity } -> std::convertible_to<unsigned>;
    { F::kBytes } -> std::convertible_to<size_t>;
};

/** Fill @p out with n^-1 batched: one inversion + 3(n-1) multiplies. */
template <NttField F>
std::vector<F>
batchInverse(const std::vector<F> &xs)
{
    std::vector<F> out(xs.size());
    if (xs.empty())
        return out;
    // Montgomery's trick: prefix products, invert once, unwind.
    std::vector<F> prefix(xs.size());
    F acc = F::one();
    for (size_t i = 0; i < xs.size(); ++i) {
        prefix[i] = acc;
        acc *= xs[i];
    }
    F inv = acc.inverse();
    for (size_t i = xs.size(); i-- > 0;) {
        out[i] = prefix[i] * inv;
        inv *= xs[i];
    }
    return out;
}

/** Random nonzero-ish field element from raw 64-bit entropy. */
template <NttField F>
F
fieldFromEntropy(uint64_t entropy)
{
    return F::fromU64(entropy);
}

} // namespace unintt

#endif // UNINTT_FIELD_FIELD_TRAITS_HH
