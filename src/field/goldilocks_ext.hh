/**
 * @file
 * The quadratic extension of Goldilocks, F_{p^2} = F_p[X]/(X^2 - 7)
 * (7 generates F_p^*, hence is a nonresidue, so X^2 - 7 is
 * irreducible). Hash-based proof systems over 64-bit fields draw their
 * verifier challenges from this extension to push soundness error from
 * ~2^-64 to ~2^-128 (Plonky2's "challenge field"); it is provided here
 * as the substrate for that amplification.
 */

#ifndef UNINTT_FIELD_GOLDILOCKS_EXT_HH
#define UNINTT_FIELD_GOLDILOCKS_EXT_HH

#include <string>

#include "field/goldilocks.hh"

namespace unintt {

/** An element c0 + c1*X of F_{p^2}, X^2 = 7. */
class GoldilocksExt
{
  public:
    /** The nonresidue X^2 evaluates to. */
    static constexpr uint64_t kNonResidue = 7;

    constexpr GoldilocksExt() = default;

    constexpr GoldilocksExt(Goldilocks c0, Goldilocks c1)
        : c0_(c0), c1_(c1)
    {
    }

    /** Embed a base-field element. */
    static constexpr GoldilocksExt
    fromBase(Goldilocks c0)
    {
        return GoldilocksExt(c0, Goldilocks::zero());
    }

    /** Embed a small integer. */
    static GoldilocksExt
    fromU64(uint64_t x)
    {
        return fromBase(Goldilocks::fromU64(x));
    }

    static GoldilocksExt zero() { return GoldilocksExt(); }
    static GoldilocksExt one() { return fromBase(Goldilocks::one()); }

    /** Base component. */
    Goldilocks c0() const { return c0_; }
    /** Extension component. */
    Goldilocks c1() const { return c1_; }

    GoldilocksExt
    operator+(const GoldilocksExt &o) const
    {
        return GoldilocksExt(c0_ + o.c0_, c1_ + o.c1_);
    }
    GoldilocksExt
    operator-(const GoldilocksExt &o) const
    {
        return GoldilocksExt(c0_ - o.c0_, c1_ - o.c1_);
    }
    GoldilocksExt operator-() const { return GoldilocksExt(-c0_, -c1_); }

    /** (a0 + a1 X)(b0 + b1 X) = a0 b0 + 7 a1 b1 + (a0 b1 + a1 b0) X. */
    GoldilocksExt
    operator*(const GoldilocksExt &o) const
    {
        Goldilocks nr = Goldilocks::fromU64(kNonResidue);
        return GoldilocksExt(c0_ * o.c0_ + nr * (c1_ * o.c1_),
                             c0_ * o.c1_ + c1_ * o.c0_);
    }

    GoldilocksExt &
    operator+=(const GoldilocksExt &o)
    {
        return *this = *this + o;
    }
    GoldilocksExt &
    operator-=(const GoldilocksExt &o)
    {
        return *this = *this - o;
    }
    GoldilocksExt &
    operator*=(const GoldilocksExt &o)
    {
        return *this = *this * o;
    }

    bool
    operator==(const GoldilocksExt &o) const
    {
        return c0_ == o.c0_ && c1_ == o.c1_;
    }
    bool
    operator!=(const GoldilocksExt &o) const
    {
        return !(*this == o);
    }

    bool isZero() const { return c0_.isZero() && c1_.isZero(); }

    /** Frobenius-style conjugate a0 - a1 X. */
    GoldilocksExt conjugate() const { return GoldilocksExt(c0_, -c1_); }

    /** Norm a0^2 - 7 a1^2 in the base field. */
    Goldilocks
    norm() const
    {
        return c0_ * c0_ -
               Goldilocks::fromU64(kNonResidue) * c1_ * c1_;
    }

    /** Multiplicative inverse via the conjugate over the norm. */
    GoldilocksExt
    inverse() const
    {
        Goldilocks ninv = norm().inverse();
        return GoldilocksExt(c0_ * ninv, -c1_ * ninv);
    }

    /** this^exp by square-and-multiply. */
    GoldilocksExt
    pow(uint64_t exp) const
    {
        GoldilocksExt base = *this;
        GoldilocksExt acc = one();
        while (exp) {
            if (exp & 1)
                acc *= base;
            base *= base;
            exp >>= 1;
        }
        return acc;
    }

    /** "(c0, c1)" rendering. */
    std::string
    toString() const
    {
        return "(" + c0_.toString() + ", " + c1_.toString() + ")";
    }

  private:
    Goldilocks c0_;
    Goldilocks c1_;
};

} // namespace unintt

#endif // UNINTT_FIELD_GOLDILOCKS_EXT_HH
