/**
 * @file
 * Generic 256-bit prime field in Montgomery representation (R = 2^256),
 * parameterized by a Params policy supplying the modulus and group
 * constants. BN254's scalar field Fr (NTT domain of pairing-based ZKP
 * systems) and base field Fq (curve coordinates for MSM) are the two
 * instantiations; see bn254.hh.
 *
 * Multiplication uses the CIOS (coarsely integrated operand scanning)
 * Montgomery algorithm. All derived constants (-p^-1 mod 2^64 and
 * R^2 mod p) are computed at compile time from the modulus alone.
 */

#ifndef UNINTT_FIELD_MONTFIELD256_HH
#define UNINTT_FIELD_MONTFIELD256_HH

#include <cstdint>
#include <string>

#include "field/u256.hh"
#include "util/logging.hh"

namespace unintt {

/**
 * A prime-field element in Montgomery form.
 *
 * @tparam Params policy providing:
 *   - static constexpr U256 kModulus  (odd prime < 2^255)
 *   - static constexpr unsigned kTwoAdicity
 *   - static constexpr uint64_t kGenerator (multiplicative generator)
 *   - static constexpr const char *kName
 */
template <typename Params>
class MontField256
{
  public:
    /** Largest k such that 2^k divides p - 1. */
    static constexpr unsigned kTwoAdicity = Params::kTwoAdicity;
    /** Storage size used by the performance model. */
    static constexpr size_t kBytes = 32;
    /** Field name for reports. */
    static constexpr const char *kName = Params::kName;

    /** Zero-initialized element. */
    constexpr MontField256() = default;

    /** Embed a small integer into the field. */
    static constexpr MontField256
    fromU64(uint64_t x)
    {
        return fromU256(U256(x));
    }

    /** Embed a canonical 256-bit integer (must be < p). */
    static constexpr MontField256
    fromU256(const U256 &x)
    {
        MontField256 e;
        e.mont_ = montMul(x, r2());
        return e;
    }

    /** The additive identity. */
    static constexpr MontField256 zero() { return MontField256(); }

    /** The multiplicative identity. */
    static constexpr MontField256 one() { return fromU64(1); }

    /** Canonical (non-Montgomery) representative in [0, p). */
    constexpr U256
    value() const
    {
        // montMul by 1 strips one factor of R.
        return montMul(mont_, U256(1));
    }

    constexpr MontField256
    operator+(const MontField256 &o) const
    {
        MontField256 r;
        uint64_t carry = addCarry(mont_, o.mont_, r.mont_);
        if (carry || geq(r.mont_, Params::kModulus)) {
            U256 reduced;
            subBorrow(r.mont_, Params::kModulus, reduced);
            r.mont_ = reduced;
        }
        return r;
    }

    constexpr MontField256
    operator-(const MontField256 &o) const
    {
        MontField256 r;
        uint64_t borrow = subBorrow(mont_, o.mont_, r.mont_);
        if (borrow) {
            U256 fixed;
            addCarry(r.mont_, Params::kModulus, fixed);
            r.mont_ = fixed;
        }
        return r;
    }

    constexpr MontField256
    operator-() const
    {
        MontField256 r;
        if (!mont_.isZero())
            subBorrow(Params::kModulus, mont_, r.mont_);
        return r;
    }

    constexpr MontField256
    operator*(const MontField256 &o) const
    {
        MontField256 r;
        r.mont_ = montMul(mont_, o.mont_);
        return r;
    }

    MontField256 &
    operator+=(const MontField256 &o)
    {
        return *this = *this + o;
    }
    MontField256 &
    operator-=(const MontField256 &o)
    {
        return *this = *this - o;
    }
    MontField256 &
    operator*=(const MontField256 &o)
    {
        return *this = *this * o;
    }

    constexpr bool
    operator==(const MontField256 &o) const
    {
        return mont_ == o.mont_;
    }
    constexpr bool
    operator!=(const MontField256 &o) const
    {
        return mont_ != o.mont_;
    }

    /** True iff the element is zero. */
    constexpr bool isZero() const { return mont_.isZero(); }

    /** this^exp for a 64-bit exponent. */
    MontField256
    pow(uint64_t exp) const
    {
        return pow(U256(exp));
    }

    /** this^exp for a 256-bit exponent, square-and-multiply. */
    MontField256
    pow(const U256 &exp) const
    {
        MontField256 base = *this;
        MontField256 acc = one();
        int top = exp.highestBit();
        for (int i = 0; i <= top; ++i) {
            if (exp.bit(static_cast<unsigned>(i)))
                acc *= base;
            base *= base;
        }
        return acc;
    }

    /** Multiplicative inverse via Fermat; panics on zero. */
    MontField256
    inverse() const
    {
        UNINTT_ASSERT(!isZero(), "inverse of zero");
        U256 pm2;
        subBorrow(Params::kModulus, U256(2), pm2);
        return pow(pm2);
    }

    /**
     * Primitive 2^log_n-th root of unity.
     * @param log_n must be <= kTwoAdicity.
     */
    static MontField256
    rootOfUnity(unsigned log_n)
    {
        if (log_n > kTwoAdicity)
            fatal("%s has two-adicity %u, cannot build a 2^%u-th root",
                  kName, kTwoAdicity, log_n);
        // (p - 1) >> kTwoAdicity
        U256 exp = Params::kModulus;
        exp.limb[0] -= 1; // p is odd, no borrow
        for (unsigned i = 0; i < kTwoAdicity; ++i) {
            for (int l = 0; l < 3; ++l)
                exp.limb[l] = (exp.limb[l] >> 1) | (exp.limb[l + 1] << 63);
            exp.limb[3] >>= 1;
        }
        MontField256 root = multiplicativeGenerator().pow(exp);
        for (unsigned i = log_n; i < kTwoAdicity; ++i)
            root *= root;
        return root;
    }

    /** Generator of the full multiplicative group, for coset NTTs. */
    static MontField256
    multiplicativeGenerator()
    {
        return fromU64(Params::kGenerator);
    }

    /** Hex string of the canonical value. */
    std::string toString() const { return value().toHexString(); }

  private:
    /** -p^-1 mod 2^64 by Newton iteration (p odd). */
    static constexpr uint64_t
    negInv()
    {
        uint64_t p0 = Params::kModulus.limb[0];
        uint64_t x = 1;
        for (int i = 0; i < 6; ++i) // 1 -> 2 -> 4 -> ... -> 64 bits
            x *= 2u - p0 * x;
        return ~x + 1u;
    }

    /** R^2 mod p (R = 2^256) by 512 modular doublings of 1. */
    static constexpr U256
    r2()
    {
        U256 r(1);
        for (int i = 0; i < 512; ++i)
            r = doubleMod(r, Params::kModulus);
        return r;
    }

    /** CIOS Montgomery multiplication: returns a*b*R^-1 mod p. */
    static constexpr U256
    montMul(const U256 &a, const U256 &b)
    {
        constexpr uint64_t np = negInv();
        const U256 &p = Params::kModulus;

        uint64_t t[6] = {0, 0, 0, 0, 0, 0};
        for (int i = 0; i < 4; ++i) {
            // t += a[i] * b
            uint64_t carry = 0;
            for (int j = 0; j < 4; ++j) {
                unsigned __int128 cur =
                    static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] +
                    t[j] + carry;
                t[j] = static_cast<uint64_t>(cur);
                carry = static_cast<uint64_t>(cur >> 64);
            }
            {
                unsigned __int128 cur =
                    static_cast<unsigned __int128>(t[4]) + carry;
                t[4] = static_cast<uint64_t>(cur);
                t[5] = static_cast<uint64_t>(cur >> 64);
            }

            // t += m * p; t >>= 64  (m chosen so t[0] becomes zero)
            uint64_t m = t[0] * np;
            unsigned __int128 cur =
                static_cast<unsigned __int128>(t[0]) +
                static_cast<unsigned __int128>(m) * p.limb[0];
            carry = static_cast<uint64_t>(cur >> 64);
            for (int j = 1; j < 4; ++j) {
                cur = static_cast<unsigned __int128>(t[j]) +
                      static_cast<unsigned __int128>(m) * p.limb[j] + carry;
                t[j - 1] = static_cast<uint64_t>(cur);
                carry = static_cast<uint64_t>(cur >> 64);
            }
            cur = static_cast<unsigned __int128>(t[4]) + carry;
            t[3] = static_cast<uint64_t>(cur);
            t[4] = t[5] + static_cast<uint64_t>(cur >> 64);
            t[5] = 0;
        }

        U256 r(t[0], t[1], t[2], t[3]);
        if (t[4] || geq(r, p)) {
            U256 reduced;
            subBorrow(r, p, reduced);
            r = reduced;
        }
        return r;
    }

    U256 mont_;
};

} // namespace unintt

#endif // UNINTT_FIELD_MONTFIELD256_HH
