/**
 * @file
 * The runtime acceleration router. Probes the CPU feature set once
 * (CPUID on x86), decides the best compiled-in kernel path, and binds
 * a FieldKernels table per field. Resolution order for every lookup:
 *
 *   1. UNINTT_FORCE_ISA environment variable (read once at startup),
 *   2. the caller's requested path (UniNttConfig::isaPath),
 *   3. the best probed path.
 *
 * A request the host or the build cannot satisfy falls down the
 * ladder Avx512 -> Avx2 -> Scalar (Neon is stubbed through the same
 * interface and currently resolves to Scalar), so forcing a path is
 * always safe. Per-path dispatch counters record how many span-kernel
 * batches each path actually executed; engines fold their deltas into
 * hostExecStats and the process totals show up in
 * `unintt-cli --list-kernels`.
 */

#ifndef UNINTT_FIELD_DISPATCH_HH
#define UNINTT_FIELD_DISPATCH_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "field/isa.hh"
#include "field/kernels.hh"

namespace unintt {

class Goldilocks;
class BabyBear;

/** What the one-time hardware probe saw. */
struct CpuFeatures
{
    bool avx2 = false;
    bool avx512 = false; // AVX-512F
    bool neon = false;
    std::string toString() const;
};

/** The cached startup probe. */
const CpuFeatures &cpuFeatures();

/** True iff @p p is compiled in *and* the probe allows running it. */
bool isaPathAvailable(IsaPath p);

/** Best available path (what Auto resolves to without an override). */
IsaPath bestIsaPath();

/** UNINTT_FORCE_ISA override, parsed once; Auto when unset. */
IsaPath forcedIsaPath();

/**
 * Final routing decision for a request: env override beats the
 * request beats the probe; unsupported paths fall down the ladder.
 * Never returns Auto.
 */
IsaPath resolveIsaPath(IsaPath requested);

/** Every path resolveIsaPath can return on this host, best first. */
std::vector<IsaPath> availableIsaPaths();

/**
 * Lane width (field elements per vector op) the bound kernel tables
 * use for a field of @p element_bytes under path @p p. This is the
 * number the schedule compiler's cost model and tile heuristic
 * consume; it matches FieldKernels::lanes of the table the router
 * would bind (wide multi-word fields report their ILP width of 2).
 */
unsigned isaLaneWidth(IsaPath p, size_t element_bytes);

/** Bump the process-wide dispatch counter of @p p by @p n batches. */
void recordKernelDispatch(IsaPath p, uint64_t n = 1);

/** Process-wide dispatch counts, indexed by IsaPath value. */
std::array<uint64_t, kIsaPathCount> kernelDispatchCounts();

/** One-line router summary ("router: avx512 (probe ...)"). */
std::string routerDescription();

/** Multi-line probe + per-field table report (--list-kernels). */
std::string listKernelsReport();

/**
 * The kernel table the router binds for field F under @p requested.
 * Cheap enough for per-call use (static tables + one enum resolve);
 * engines still bind once at construction so a whole run uses one
 * table even if the environment changes mid-process.
 */
template <typename F>
const FieldKernels<F> &
fieldKernels(IsaPath requested = IsaPath::Auto)
{
    static const FieldKernels<F> scalar = scalarKernelTable<F>();
    static const FieldKernels<F> mw_avx2 =
        multiwordKernelTable<F>(IsaPath::Avx2, "mw2");
    static const FieldKernels<F> mw_avx512 =
        multiwordKernelTable<F>(IsaPath::Avx512, "mw2");
    switch (resolveIsaPath(requested)) {
    case IsaPath::Avx2:
        return mw_avx2;
    case IsaPath::Avx512:
        return mw_avx512;
    default:
        return scalar;
    }
}

/** Lane-parallel specializations (defined in dispatch.cc). */
template <>
const FieldKernels<Goldilocks> &
fieldKernels<Goldilocks>(IsaPath requested);
template <>
const FieldKernels<BabyBear> &fieldKernels<BabyBear>(IsaPath requested);

} // namespace unintt

#endif // UNINTT_FIELD_DISPATCH_HH
