/**
 * @file
 * The two prime fields of the BN254 (alt_bn128) pairing curve:
 *
 *  - Fr, the scalar field, is the polynomial/NTT domain of Groth16- and
 *    PLONK-style provers (two-adicity 28, so NTTs up to size 2^28);
 *  - Fq, the base field, hosts the curve coordinates used by MSM.
 *
 * Constants match the widely deployed parameterization (Ethereum
 * precompiles, arkworks, gnark): the moduli below and multiplicative
 * generators 5 (Fr) and 3 (Fq).
 */

#ifndef UNINTT_FIELD_BN254_HH
#define UNINTT_FIELD_BN254_HH

#include "field/montfield256.hh"
#include "field/u256.hh"

namespace unintt {

/** Modulus and group constants of BN254 Fr. */
struct Bn254FrParams
{
    /**
     * r = 21888242871839275222246405745257275088548364400416034343698
     *     204186575808495617
     */
    static constexpr U256 kModulus{0x43e1f593f0000001ULL,
                                   0x2833e84879b97091ULL,
                                   0xb85045b68181585dULL,
                                   0x30644e72e131a029ULL};
    static constexpr unsigned kTwoAdicity = 28;
    static constexpr uint64_t kGenerator = 5;
    static constexpr const char *kName = "BN254-Fr";
};

/** Modulus and group constants of BN254 Fq. */
struct Bn254FqParams
{
    /**
     * q = 21888242871839275222246405745257275088696311157297823662689
     *     037894645226208583
     */
    static constexpr U256 kModulus{0x3c208c16d87cfd47ULL,
                                   0x97816a916871ca8dULL,
                                   0xb85045b68181585dULL,
                                   0x30644e72e131a029ULL};
    // q - 1 = 2 * odd: no useful NTT domain, Fq is only used for curve
    // coordinates.
    static constexpr unsigned kTwoAdicity = 1;
    static constexpr uint64_t kGenerator = 3;
    static constexpr const char *kName = "BN254-Fq";
};

/** The BN254 scalar field (NTT/polynomial domain). */
using Bn254Fr = MontField256<Bn254FrParams>;

/** The BN254 base field (curve coordinates). */
using Bn254Fq = MontField256<Bn254FqParams>;

} // namespace unintt

#endif // UNINTT_FIELD_BN254_HH
