/**
 * @file
 * The quadratic extension Fq2 = Fq[u]/(u^2 + 1) of the BN254 base
 * field (-1 is a quadratic nonresidue mod q since q = 3 mod 4). This
 * is the coordinate field of the G2 group that pairing-based ZKP
 * proofs commit [B]_2 into.
 *
 * Multiplication uses the Karatsuba-like 3-multiplication schoolbook
 * identity; square roots use the "complex method" enabled by u^2 = -1,
 * which is what makes deterministic G2 point construction possible
 * without hard-coded 254-bit generator constants (see msm/g2.hh).
 */

#ifndef UNINTT_FIELD_FQ2_HH
#define UNINTT_FIELD_FQ2_HH

#include <optional>
#include <string>

#include "field/bn254.hh"

namespace unintt {

/** An element c0 + c1*u of Fq2, u^2 = -1. */
class Fq2
{
  public:
    /** Zero element. */
    constexpr Fq2() = default;

    /** From components. */
    constexpr Fq2(Bn254Fq c0, Bn254Fq c1) : c0_(c0), c1_(c1) {}

    /** Embed a base-field element. */
    static constexpr Fq2
    fromBase(Bn254Fq c0)
    {
        return Fq2(c0, Bn254Fq::zero());
    }

    /** Embed a small integer. */
    static Fq2
    fromU64(uint64_t x)
    {
        return fromBase(Bn254Fq::fromU64(x));
    }

    static Fq2 zero() { return Fq2(); }
    static Fq2 one() { return fromBase(Bn254Fq::one()); }

    /** Real component. */
    const Bn254Fq &c0() const { return c0_; }
    /** u component. */
    const Bn254Fq &c1() const { return c1_; }

    Fq2
    operator+(const Fq2 &o) const
    {
        return Fq2(c0_ + o.c0_, c1_ + o.c1_);
    }
    Fq2
    operator-(const Fq2 &o) const
    {
        return Fq2(c0_ - o.c0_, c1_ - o.c1_);
    }
    Fq2 operator-() const { return Fq2(-c0_, -c1_); }

    /** (a0 + a1 u)(b0 + b1 u) = (a0 b0 - a1 b1) + (a0 b1 + a1 b0) u. */
    Fq2
    operator*(const Fq2 &o) const
    {
        // Karatsuba: 3 base multiplications.
        Bn254Fq v0 = c0_ * o.c0_;
        Bn254Fq v1 = c1_ * o.c1_;
        Bn254Fq mixed = (c0_ + c1_) * (o.c0_ + o.c1_);
        return Fq2(v0 - v1, mixed - v0 - v1);
    }

    Fq2 &operator+=(const Fq2 &o) { return *this = *this + o; }
    Fq2 &operator-=(const Fq2 &o) { return *this = *this - o; }
    Fq2 &operator*=(const Fq2 &o) { return *this = *this * o; }

    bool
    operator==(const Fq2 &o) const
    {
        return c0_ == o.c0_ && c1_ == o.c1_;
    }
    bool operator!=(const Fq2 &o) const { return !(*this == o); }

    bool isZero() const { return c0_.isZero() && c1_.isZero(); }

    /** Conjugate a0 - a1 u. */
    Fq2 conjugate() const { return Fq2(c0_, -c1_); }

    /** Norm a0^2 + a1^2 (an Fq element). */
    Bn254Fq
    norm() const
    {
        return c0_ * c0_ + c1_ * c1_;
    }

    /** Multiplicative inverse via the conjugate over the norm. */
    Fq2
    inverse() const
    {
        Bn254Fq ninv = norm().inverse();
        return Fq2(c0_ * ninv, -c1_ * ninv);
    }

    /** this^exp for a 256-bit exponent. */
    Fq2
    pow(const U256 &exp) const
    {
        Fq2 base = *this;
        Fq2 acc = one();
        int top = exp.highestBit();
        for (int i = 0; i <= top; ++i) {
            if (exp.bit(static_cast<unsigned>(i)))
                acc *= base;
            base *= base;
        }
        return acc;
    }

    /**
     * Square root by the complex method (valid because u^2 = -1 and
     * q = 3 mod 4): for a = x + y u, if n = sqrt(norm) exists in Fq
     * and t = (x + n)/2 (or (x - n)/2) is a square c^2, then
     * sqrt(a) = c + (y / 2c) u.
     *
     * @return a root, or nullopt when the element is a nonresidue.
     */
    std::optional<Fq2> sqrt() const;

    /** "(c0, c1)" hex rendering. */
    std::string
    toString() const
    {
        return "(" + c0_.toString() + ", " + c1_.toString() + ")";
    }

  private:
    Bn254Fq c0_;
    Bn254Fq c1_;
};

/**
 * Square root in the base field Fq (q = 3 mod 4): a^((q+1)/4) if a is
 * a residue.
 */
std::optional<Bn254Fq> fqSqrt(const Bn254Fq &a);

} // namespace unintt

#endif // UNINTT_FIELD_FQ2_HH
