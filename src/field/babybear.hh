/**
 * @file
 * The BabyBear prime field F_p with p = 2^31 - 2^27 + 1 = 2013265921.
 *
 * BabyBear is the 31-bit field used by Risc0 and Plonky3-style provers.
 * Elements are stored in Montgomery form with R = 2^32, so multiplication
 * is a single 64-bit product plus a Montgomery reduction.
 */

#ifndef UNINTT_FIELD_BABYBEAR_HH
#define UNINTT_FIELD_BABYBEAR_HH

#include <cstdint>
#include <string>

namespace unintt {

/** An element of the BabyBear field in Montgomery form. 4 bytes. */
class BabyBear
{
  public:
    /** The field modulus. */
    static constexpr uint32_t kModulus = 2013265921u; // 15 * 2^27 + 1
    /** Largest k such that 2^k divides p - 1. */
    static constexpr unsigned kTwoAdicity = 27;
    /** A generator of the multiplicative group. */
    static constexpr uint32_t kGenerator = 31;
    /** Storage size used by the performance model. */
    static constexpr size_t kBytes = 4;
    /** Field name for reports. */
    static constexpr const char *kName = "BabyBear";

    /** Zero-initialized element. */
    constexpr BabyBear() : mont_(0) {}

    /** Embed an integer (reduced mod p) into the field. */
    static constexpr BabyBear
    fromU64(uint64_t x)
    {
        BabyBear e;
        e.mont_ = toMont(static_cast<uint32_t>(x % kModulus));
        return e;
    }

    /** The additive identity. */
    static constexpr BabyBear zero() { return BabyBear(); }

    /** The multiplicative identity. */
    static constexpr BabyBear one() { return fromU64(1); }

    /** Canonical representative in [0, p). */
    constexpr uint32_t value() const { return redc(mont_); }

    constexpr BabyBear
    operator+(BabyBear o) const
    {
        uint32_t s = mont_ + o.mont_; // < 2p < 2^32, no overflow
        if (s >= kModulus)
            s -= kModulus;
        BabyBear r;
        r.mont_ = s;
        return r;
    }

    constexpr BabyBear
    operator-(BabyBear o) const
    {
        uint32_t d = mont_ - o.mont_;
        if (mont_ < o.mont_)
            d += kModulus;
        BabyBear r;
        r.mont_ = d;
        return r;
    }

    constexpr BabyBear
    operator-() const
    {
        BabyBear r;
        r.mont_ = mont_ == 0 ? 0 : kModulus - mont_;
        return r;
    }

    constexpr BabyBear
    operator*(BabyBear o) const
    {
        BabyBear r;
        r.mont_ = redc(static_cast<uint64_t>(mont_) * o.mont_);
        return r;
    }

    BabyBear &operator+=(BabyBear o) { return *this = *this + o; }
    BabyBear &operator-=(BabyBear o) { return *this = *this - o; }
    BabyBear &operator*=(BabyBear o) { return *this = *this * o; }

    constexpr bool operator==(BabyBear o) const { return mont_ == o.mont_; }
    constexpr bool operator!=(BabyBear o) const { return mont_ != o.mont_; }

    /** this^exp by square-and-multiply. */
    BabyBear pow(uint64_t exp) const;

    /** Multiplicative inverse; panics on zero. */
    BabyBear inverse() const;

    /** True iff the element is zero. */
    constexpr bool isZero() const { return mont_ == 0; }

    /**
     * Primitive 2^log_n-th root of unity.
     * @param log_n must be <= kTwoAdicity.
     */
    static BabyBear rootOfUnity(unsigned log_n);

    /** Generator of the full multiplicative group, for coset NTTs. */
    static BabyBear multiplicativeGenerator()
    {
        return fromU64(kGenerator);
    }

    /** Decimal string of the canonical value. */
    std::string toString() const { return std::to_string(value()); }

  private:
    /** -p^-1 mod 2^32, computed by Newton iteration. */
    static constexpr uint32_t
    negInv()
    {
        uint32_t x = 1;
        for (int i = 0; i < 5; ++i) // doubles precision each step
            x *= 2u - kModulus * x;
        return ~x + 1u; // = -p^-1
    }

    /** Montgomery reduction of a value < p * 2^32. */
    static constexpr uint32_t
    redc(uint64_t t)
    {
        constexpr uint32_t np = negInv();
        uint32_t m = static_cast<uint32_t>(t) * np;
        uint64_t u = (t + static_cast<uint64_t>(m) * kModulus) >> 32;
        uint32_t r = static_cast<uint32_t>(u);
        if (r >= kModulus)
            r -= kModulus;
        return r;
    }

    /** 2^64 mod p, for conversion into Montgomery form. */
    static constexpr uint32_t
    r2()
    {
        uint64_t r = 1;
        for (int i = 0; i < 64; ++i) {
            r <<= 1;
            if (r >= kModulus)
                r -= kModulus;
        }
        return static_cast<uint32_t>(r);
    }

    /** Convert canonical value into Montgomery form. */
    static constexpr uint32_t
    toMont(uint32_t x)
    {
        return redc(static_cast<uint64_t>(x) * r2());
    }

    uint32_t mont_;
};

} // namespace unintt

#endif // UNINTT_FIELD_BABYBEAR_HH
