/**
 * @file
 * Fixed-width 256-bit unsigned integer arithmetic used as the limb layer
 * of the 256-bit Montgomery fields (BN254 Fr and Fq). Little-endian limb
 * order: limb[0] is least significant.
 */

#ifndef UNINTT_FIELD_U256_HH
#define UNINTT_FIELD_U256_HH

#include <array>
#include <cstdint>
#include <string>

namespace unintt {

/** A 256-bit unsigned integer (4 x 64-bit limbs, little-endian). */
struct U256
{
    std::array<uint64_t, 4> limb{0, 0, 0, 0};

    constexpr U256() = default;

    /** Construct from a 64-bit value. */
    constexpr explicit U256(uint64_t lo) : limb{lo, 0, 0, 0} {}

    /** Construct from explicit limbs (little-endian). */
    constexpr U256(uint64_t l0, uint64_t l1, uint64_t l2, uint64_t l3)
        : limb{l0, l1, l2, l3}
    {
    }

    constexpr bool
    operator==(const U256 &o) const
    {
        return limb == o.limb;
    }
    constexpr bool operator!=(const U256 &o) const { return !(*this == o); }

    /** True iff all limbs are zero. */
    constexpr bool
    isZero() const
    {
        return limb[0] == 0 && limb[1] == 0 && limb[2] == 0 && limb[3] == 0;
    }

    /** Value of bit @p i (0 = least significant). */
    constexpr bool
    bit(unsigned i) const
    {
        return (limb[i / 64] >> (i % 64)) & 1;
    }

    /** Index of the highest set bit, or -1 if zero. */
    constexpr int
    highestBit() const
    {
        for (int i = 255; i >= 0; --i)
            if (bit(static_cast<unsigned>(i)))
                return i;
        return -1;
    }

    /** Hex string with 0x prefix, no leading-zero suppression. */
    std::string toHexString() const;
};

/** a + b, writing the sum to @p out; returns the carry out. */
constexpr uint64_t
addCarry(const U256 &a, const U256 &b, U256 &out)
{
    unsigned __int128 carry = 0;
    for (int i = 0; i < 4; ++i) {
        unsigned __int128 s = static_cast<unsigned __int128>(a.limb[i]) +
                              b.limb[i] + carry;
        out.limb[i] = static_cast<uint64_t>(s);
        carry = s >> 64;
    }
    return static_cast<uint64_t>(carry);
}

/** a - b, writing the difference to @p out; returns the borrow out. */
constexpr uint64_t
subBorrow(const U256 &a, const U256 &b, U256 &out)
{
    unsigned __int128 borrow = 0;
    for (int i = 0; i < 4; ++i) {
        unsigned __int128 d = static_cast<unsigned __int128>(a.limb[i]) -
                              b.limb[i] - borrow;
        out.limb[i] = static_cast<uint64_t>(d);
        borrow = (d >> 64) & 1; // 1 iff the subtraction wrapped
    }
    return static_cast<uint64_t>(borrow);
}

/** Three-way comparison: -1, 0, or +1. */
constexpr int
cmp(const U256 &a, const U256 &b)
{
    for (int i = 3; i >= 0; --i) {
        if (a.limb[i] < b.limb[i])
            return -1;
        if (a.limb[i] > b.limb[i])
            return 1;
    }
    return 0;
}

/** True iff a >= b. */
constexpr bool
geq(const U256 &a, const U256 &b)
{
    return cmp(a, b) >= 0;
}

/** Full 256x256 -> 512-bit product, little-endian 8-limb result. */
constexpr std::array<uint64_t, 8>
mulWide(const U256 &a, const U256 &b)
{
    std::array<uint64_t, 8> t{0, 0, 0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
        uint64_t carry = 0;
        for (int j = 0; j < 4; ++j) {
            unsigned __int128 cur =
                static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] +
                t[i + j] + carry;
            t[i + j] = static_cast<uint64_t>(cur);
            carry = static_cast<uint64_t>(cur >> 64);
        }
        t[i + 4] = carry;
    }
    return t;
}

/** (a << 1) mod m, assuming a < m. Used for building 2^k mod m tables. */
constexpr U256
doubleMod(const U256 &a, const U256 &m)
{
    U256 out;
    uint64_t carry = addCarry(a, a, out);
    // Reduce: if the doubled value overflowed 256 bits or is >= m,
    // subtract m once (a < m implies 2a < 2m, so once suffices).
    if (carry || geq(out, m)) {
        U256 reduced;
        subBorrow(out, m, reduced);
        out = reduced;
    }
    return out;
}

} // namespace unintt

#endif // UNINTT_FIELD_U256_HH
