/**
 * @file
 * Declarations of the SIMD kernel tables the backend translation
 * units export. Shared between dispatch.cc (consumer) and
 * kernels_avx2.cc / kernels_avx512.cc (producers) so the signatures
 * cannot drift. Each getter returns a process-lifetime table; the
 * router only hands it out after the runtime CPUID probe confirms the
 * host can execute it.
 */

#ifndef UNINTT_FIELD_KERNELS_TABLES_HH
#define UNINTT_FIELD_KERNELS_TABLES_HH

#include "field/babybear.hh"
#include "field/goldilocks.hh"
#include "field/kernels.hh"

namespace unintt {
namespace spankernels {

#if defined(UNINTT_HAVE_AVX2)
const FieldKernels<Goldilocks> &goldilocksAvx2Table();
const FieldKernels<BabyBear> &babybearAvx2Table();
#endif

#if defined(UNINTT_HAVE_AVX512)
const FieldKernels<Goldilocks> &goldilocksAvx512Table();
const FieldKernels<BabyBear> &babybearAvx512Table();
#endif

} // namespace spankernels
} // namespace unintt

#endif // UNINTT_FIELD_KERNELS_TABLES_HH
