/**
 * @file
 * The batched span-kernel API: every butterfly/scale/dot inner loop of
 * the host execution path, expressed once as primitives over raw
 * `Field *` spans. A FieldKernels<F> table is a bundle of function
 * pointers implementing those primitives for one acceleration path
 * (scalar, AVX2, AVX-512, ...); the runtime router in
 * field/dispatch.hh probes the CPU once and hands callers the best
 * table for their field.
 *
 * Contract shared by every implementation of a slot:
 *
 *  - Exact canonical field arithmetic, applied in the same per-element
 *    operation order as the scalar reference below. Butterflies at
 *    different span indices are independent, so lane-parallel
 *    execution reorders nothing an element can observe: outputs are
 *    byte-identical to the scalar table for every span length,
 *    alignment, and stride.
 *  - No alignment requirements; spans may start anywhere.
 *  - Any span length, including lengths below the vector width (the
 *    vector kernels peel scalar tails / fall back wholesale).
 *  - `tw_stride` on the radix-2 slots supports strided twiddle walks
 *    (TwiddleTable layouts); data spans are always unit-stride.
 *
 * The scalar table here is the reference semantics; the SIMD tables
 * (kernels_avx2.cc / kernels_avx512.cc) mirror its formulas
 * lane-wise. Wide multi-word fields (montfield256) get a "mw2" table
 * that keeps two independent element chains in flight per slot —
 * vectorizing across instruction-level parallelism of the word-level
 * schoolbook/CIOS arithmetic instead of across SIMD lanes.
 */

#ifndef UNINTT_FIELD_KERNELS_HH
#define UNINTT_FIELD_KERNELS_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "field/goldilocks.hh"
#include "field/isa.hh"

namespace unintt {

/**
 * The kernel table of one (field, acceleration path) pair. Plain
 * function pointers so tables are cheap to pass around and trivially
 * comparable; `lanes` is the SIMD width in field elements (1 for the
 * scalar and multi-word tables) that the schedule compiler's cost
 * model and tile heuristic consume.
 */
template <typename F>
struct FieldKernels
{
    /** Path this table implements (never Auto). */
    IsaPath path = IsaPath::Scalar;
    /** Human-readable table name for reports ("scalar", "avx2", ...). */
    const char *name = "scalar";
    /** Elements processed per vector lane group (1 = no SIMD). */
    unsigned lanes = 1;

    /**
     * Forward radix-2 butterfly span:
     *   u = lo[j]; v = hi[j];
     *   lo[j] = u + v; hi[j] = (u - v) * tw[j * tw_stride]
     */
    void (*bflyFwd)(F *lo, F *hi, const F *tw, size_t tw_stride,
                    size_t n) = nullptr;

    /**
     * Inverse (DIT) radix-2 butterfly span:
     *   u = lo[j]; v = hi[j] * tw[j * tw_stride];
     *   lo[j] = u + v; hi[j] = u - v
     */
    void (*bflyInv)(F *lo, F *hi, const F *tw, size_t tw_stride,
                    size_t n) = nullptr;

    /**
     * Forward cross-pair butterfly over landing slabs (the overlap
     * executor's shape — rlo/rhi hold what lo/hi *received*):
     *   lo[j] = lo[j] + rlo[j]; hi[j] = (rhi[j] - hi[j]) * tw[j]
     */
    void (*bflyRecvFwd)(F *lo, F *hi, const F *rlo, const F *rhi,
                        const F *tw, size_t n) = nullptr;

    /**
     * Inverse cross-pair butterfly over landing slabs:
     *   vl = rlo[j] * tw[j]; vh = hi[j] * tw[j];
     *   lo[j] = lo[j] + vl; hi[j] = rhi[j] - vh
     */
    void (*bflyRecvInv)(F *lo, F *hi, const F *rlo, const F *rhi,
                        const F *tw, size_t n) = nullptr;

    /**
     * Forward radix-4 butterfly span of the fused tile sweep. The
     * butterfly at span index i couples p0[i]..p3[i] with absolute
     * twiddle index j = j0 + i over the compacted stage slabs tw0
     * (stage s) and tw1 (stage s+1); `im` is the fourth root of
     * unity, `hs` the stage-s slab length. The tw0[3j] read wraps
     * past hs with a sign fold (w^(n/2) == -1), applied as the exact
     * operand swap (t13m - t02m) * tw0[3j - hs].
     */
    void (*r4Fwd)(F *p0, F *p1, F *p2, F *p3, const F *tw0,
                  const F *tw1, F im, size_t j0, size_t hs,
                  size_t n) = nullptr;

    /**
     * Forward radix-8 butterfly span of the fused flat sweep: three
     * stages applied in registers; q8 butterflies couple
     * p0[j]..p7[j] with block-local twiddle reads twa[j + k*q8]
     * (stage s), twb[j], twb[q8+j] (stage s+1), twc[j] (stage s+2) —
     * all unit-stride, no wraps.
     */
    void (*r8Fwd)(F *p0, F *p1, F *p2, F *p3, F *p4, F *p5, F *p6,
                  F *p7, const F *twa, const F *twb, const F *twc,
                  size_t q8) = nullptr;

    /** In-place scale: p[j] *= s. */
    void (*scaleSpan)(F *p, F s, size_t n) = nullptr;

    /**
     * Random-linear-combination dot product sum(coef[j] * x[j]) in a
     * fixed reduction order (ABFT checksums). Every table of one
     * field returns the same canonical value for the same input.
     */
    F (*dotSpan)(const F *coef, const F *x, size_t n) = nullptr;
};

namespace spankernels {

// ----- scalar reference implementations --------------------------------

template <typename F>
void
bflyFwdScalar(F *lo, F *hi, const F *tw, size_t tw_stride, size_t n)
{
    for (size_t j = 0; j < n; ++j) {
        const F u = lo[j];
        const F v = hi[j];
        lo[j] = u + v;
        hi[j] = (u - v) * tw[j * tw_stride];
    }
}

template <typename F>
void
bflyInvScalar(F *lo, F *hi, const F *tw, size_t tw_stride, size_t n)
{
    for (size_t j = 0; j < n; ++j) {
        const F u = lo[j];
        const F v = hi[j] * tw[j * tw_stride];
        lo[j] = u + v;
        hi[j] = u - v;
    }
}

template <typename F>
void
bflyRecvFwdScalar(F *lo, F *hi, const F *rlo, const F *rhi, const F *tw,
                  size_t n)
{
    for (size_t j = 0; j < n; ++j) {
        const F a = lo[j] + rlo[j];
        const F b = (rhi[j] - hi[j]) * tw[j];
        lo[j] = a;
        hi[j] = b;
    }
}

template <typename F>
void
bflyRecvInvScalar(F *lo, F *hi, const F *rlo, const F *rhi, const F *tw,
                  size_t n)
{
    for (size_t j = 0; j < n; ++j) {
        const F vl = rlo[j] * tw[j];
        const F vh = hi[j] * tw[j];
        const F a = lo[j] + vl;
        const F b = rhi[j] - vh;
        lo[j] = a;
        hi[j] = b;
    }
}

/**
 * Split index of the radix-4 span: butterflies [0, isplit) read
 * tw0[3j] directly, [isplit, n) read the sign-folded tw0[3j - hs].
 */
constexpr size_t
r4SplitIndex(size_t j0, size_t hs, size_t n)
{
    const size_t jsplit = (hs + 2) / 3; // first j with 3j >= hs
    return jsplit > j0 ? std::min(n, jsplit - j0) : 0;
}

template <typename F>
void
r4FwdScalar(F *p0, F *p1, F *p2, F *p3, const F *tw0, const F *tw1,
            F im, size_t j0, size_t hs, size_t n)
{
    const size_t isplit = r4SplitIndex(j0, hs, n);
    for (size_t i = 0; i < isplit; ++i) {
        const size_t j = j0 + i;
        const F a0 = p0[i], a1 = p1[i];
        const F a2 = p2[i], a3 = p3[i];
        const F t02p = a0 + a2, t02m = a0 - a2;
        const F t13p = a1 + a3;
        const F t13m = (a1 - a3) * im;
        p0[i] = t02p + t13p;
        p1[i] = (t02p - t13p) * tw1[j];
        p2[i] = (t02m + t13m) * tw0[j];
        p3[i] = (t02m - t13m) * tw0[3 * j];
    }
    for (size_t i = isplit; i < n; ++i) {
        const size_t j = j0 + i;
        const F a0 = p0[i], a1 = p1[i];
        const F a2 = p2[i], a3 = p3[i];
        const F t02p = a0 + a2, t02m = a0 - a2;
        const F t13p = a1 + a3;
        const F t13m = (a1 - a3) * im;
        p0[i] = t02p + t13p;
        p1[i] = (t02p - t13p) * tw1[j];
        p2[i] = (t02m + t13m) * tw0[j];
        p3[i] = (t13m - t02m) * tw0[3 * j - hs];
    }
}

template <typename F>
void
r8FwdScalar(F *p0, F *p1, F *p2, F *p3, F *p4, F *p5, F *p6, F *p7,
            const F *twa, const F *twb, const F *twc, size_t q8)
{
    for (size_t j = 0; j < q8; ++j) {
        const F a0 = p0[j], a1 = p1[j];
        const F a2 = p2[j], a3 = p3[j];
        const F a4 = p4[j], a5 = p5[j];
        const F a6 = p6[j], a7 = p7[j];
        const F u0 = a0 + a4;
        const F u4 = (a0 - a4) * twa[j];
        const F u1 = a1 + a5;
        const F u5 = (a1 - a5) * twa[q8 + j];
        const F u2 = a2 + a6;
        const F u6 = (a2 - a6) * twa[2 * q8 + j];
        const F u3 = a3 + a7;
        const F u7 = (a3 - a7) * twa[3 * q8 + j];
        const F wb0 = twb[j], wb1 = twb[q8 + j];
        const F v0 = u0 + u2;
        const F v2 = (u0 - u2) * wb0;
        const F v1 = u1 + u3;
        const F v3 = (u1 - u3) * wb1;
        const F v4 = u4 + u6;
        const F v6 = (u4 - u6) * wb0;
        const F v5 = u5 + u7;
        const F v7 = (u5 - u7) * wb1;
        const F wc = twc[j];
        p0[j] = v0 + v1;
        p1[j] = (v0 - v1) * wc;
        p2[j] = v2 + v3;
        p3[j] = (v2 - v3) * wc;
        p4[j] = v4 + v5;
        p5[j] = (v4 - v5) * wc;
        p6[j] = v6 + v7;
        p7[j] = (v6 - v7) * wc;
    }
}

template <typename F>
void
scaleSpanScalar(F *p, F s, size_t n)
{
    for (size_t j = 0; j < n; ++j)
        p[j] *= s;
}

/**
 * Scalar dot. Goldilocks accumulates raw 128-bit products lazily with
 * a wrap counter and reduces once per span (2^128 == -2^32 mod p folds
 * the wraps back); everything else runs four independent accumulator
 * chains with a fixed final reduction order. Both forms yield the
 * canonical sum, so tables of one field agree exactly.
 */
template <typename F>
F
dotSpanScalar(const F *coef, const F *x, size_t n)
{
    if constexpr (std::is_same_v<F, Goldilocks>) {
        unsigned __int128 acc = 0;
        uint64_t wraps = 0;
        for (size_t i = 0; i < n; ++i) {
            const unsigned __int128 p =
                static_cast<unsigned __int128>(coef[i].toU64()) *
                x[i].toU64();
            acc += p;
            wraps += acc < p ? 1 : 0;
        }
        const Goldilocks two128 = Goldilocks::fromU64(
            Goldilocks::kModulus - (uint64_t{1} << 32));
        return Goldilocks::fromU128(acc) +
               two128 * Goldilocks::fromU64(wraps);
    } else {
        F a0 = F::fromU64(0), a1 = a0, a2 = a0, a3 = a0;
        size_t i = 0;
        for (; i + 4 <= n; i += 4) {
            a0 = a0 + coef[i] * x[i];
            a1 = a1 + coef[i + 1] * x[i + 1];
            a2 = a2 + coef[i + 2] * x[i + 2];
            a3 = a3 + coef[i + 3] * x[i + 3];
        }
        for (; i < n; ++i)
            a0 = a0 + coef[i] * x[i];
        return (a0 + a1) + (a2 + a3);
    }
}

// ----- multi-word ILP implementations (wide fields) --------------------
//
// Two independent element chains per iteration: the multi-limb
// add/sub/CIOS sequences of a 256-bit field serialize on carry chains,
// so interleaving two butterflies doubles the exploitable
// instruction-level parallelism without touching per-element operation
// order (byte-identical by construction).

template <typename F>
void
bflyFwdMw2(F *lo, F *hi, const F *tw, size_t tw_stride, size_t n)
{
    size_t j = 0;
    for (; j + 2 <= n; j += 2) {
        const F u0 = lo[j], v0 = hi[j];
        const F u1 = lo[j + 1], v1 = hi[j + 1];
        const F s0 = u0 + v0, d0 = u0 - v0;
        const F s1 = u1 + v1, d1 = u1 - v1;
        lo[j] = s0;
        lo[j + 1] = s1;
        hi[j] = d0 * tw[j * tw_stride];
        hi[j + 1] = d1 * tw[(j + 1) * tw_stride];
    }
    bflyFwdScalar(lo + j, hi + j, tw + j * tw_stride, tw_stride, n - j);
}

template <typename F>
void
bflyInvMw2(F *lo, F *hi, const F *tw, size_t tw_stride, size_t n)
{
    size_t j = 0;
    for (; j + 2 <= n; j += 2) {
        const F u0 = lo[j];
        const F u1 = lo[j + 1];
        const F v0 = hi[j] * tw[j * tw_stride];
        const F v1 = hi[j + 1] * tw[(j + 1) * tw_stride];
        lo[j] = u0 + v0;
        lo[j + 1] = u1 + v1;
        hi[j] = u0 - v0;
        hi[j + 1] = u1 - v1;
    }
    bflyInvScalar(lo + j, hi + j, tw + j * tw_stride, tw_stride, n - j);
}

template <typename F>
void
bflyRecvFwdMw2(F *lo, F *hi, const F *rlo, const F *rhi, const F *tw,
               size_t n)
{
    size_t j = 0;
    for (; j + 2 <= n; j += 2) {
        const F a0 = lo[j] + rlo[j];
        const F a1 = lo[j + 1] + rlo[j + 1];
        const F b0 = (rhi[j] - hi[j]) * tw[j];
        const F b1 = (rhi[j + 1] - hi[j + 1]) * tw[j + 1];
        lo[j] = a0;
        lo[j + 1] = a1;
        hi[j] = b0;
        hi[j + 1] = b1;
    }
    bflyRecvFwdScalar(lo + j, hi + j, rlo + j, rhi + j, tw + j, n - j);
}

template <typename F>
void
bflyRecvInvMw2(F *lo, F *hi, const F *rlo, const F *rhi, const F *tw,
               size_t n)
{
    size_t j = 0;
    for (; j + 2 <= n; j += 2) {
        const F vl0 = rlo[j] * tw[j];
        const F vl1 = rlo[j + 1] * tw[j + 1];
        const F vh0 = hi[j] * tw[j];
        const F vh1 = hi[j + 1] * tw[j + 1];
        lo[j] = lo[j] + vl0;
        lo[j + 1] = lo[j + 1] + vl1;
        hi[j] = rhi[j] - vh0;
        hi[j + 1] = rhi[j + 1] - vh1;
    }
    bflyRecvInvScalar(lo + j, hi + j, rlo + j, rhi + j, tw + j, n - j);
}

template <typename F>
void
scaleSpanMw2(F *p, F s, size_t n)
{
    size_t j = 0;
    for (; j + 2 <= n; j += 2) {
        const F a = p[j] * s;
        const F b = p[j + 1] * s;
        p[j] = a;
        p[j + 1] = b;
    }
    for (; j < n; ++j)
        p[j] *= s;
}

} // namespace spankernels

/** Reference table: one element at a time through F's operators. */
template <typename F>
FieldKernels<F>
scalarKernelTable()
{
    FieldKernels<F> t;
    t.path = IsaPath::Scalar;
    t.name = "scalar";
    t.lanes = 1;
    t.bflyFwd = &spankernels::bflyFwdScalar<F>;
    t.bflyInv = &spankernels::bflyInvScalar<F>;
    t.bflyRecvFwd = &spankernels::bflyRecvFwdScalar<F>;
    t.bflyRecvInv = &spankernels::bflyRecvInvScalar<F>;
    t.r4Fwd = &spankernels::r4FwdScalar<F>;
    t.r8Fwd = &spankernels::r8FwdScalar<F>;
    t.scaleSpan = &spankernels::scaleSpanScalar<F>;
    t.dotSpan = &spankernels::dotSpanScalar<F>;
    return t;
}

/**
 * Multi-word ILP table for fields without lane-parallel kernels
 * (montfield256): two independent limb-arithmetic chains in flight.
 * @p path records which router decision bound it (Avx2/Avx512 hosts
 * both land here for wide fields), @p name tells reports apart.
 */
template <typename F>
FieldKernels<F>
multiwordKernelTable(IsaPath path, const char *name)
{
    FieldKernels<F> t = scalarKernelTable<F>();
    t.path = path;
    t.name = name;
    t.lanes = 2; // ILP width the cost model should assume
    t.bflyFwd = &spankernels::bflyFwdMw2<F>;
    t.bflyInv = &spankernels::bflyInvMw2<F>;
    t.bflyRecvFwd = &spankernels::bflyRecvFwdMw2<F>;
    t.bflyRecvInv = &spankernels::bflyRecvInvMw2<F>;
    t.scaleSpan = &spankernels::scaleSpanMw2<F>;
    return t;
}

} // namespace unintt

#endif // UNINTT_FIELD_KERNELS_HH
