#include "field/goldilocks.hh"

#include "util/logging.hh"

namespace unintt {

Goldilocks
Goldilocks::pow(uint64_t exp) const
{
    Goldilocks base = *this;
    Goldilocks acc = one();
    while (exp) {
        if (exp & 1)
            acc *= base;
        base *= base;
        exp >>= 1;
    }
    return acc;
}

Goldilocks
Goldilocks::inverse() const
{
    UNINTT_ASSERT(!isZero(), "inverse of zero");
    // Fermat: a^(p-2) = a^-1.
    return pow(kModulus - 2);
}

Goldilocks
Goldilocks::rootOfUnity(unsigned log_n)
{
    if (log_n > kTwoAdicity)
        fatal("Goldilocks has two-adicity %u, cannot build a 2^%u-th root",
              kTwoAdicity, log_n);
    // g^((p-1) / 2^kTwoAdicity) has exact order 2^kTwoAdicity because g
    // is a nonresidue; squaring walks down to the requested order.
    Goldilocks root =
        multiplicativeGenerator().pow((kModulus - 1) >> kTwoAdicity);
    for (unsigned i = log_n; i < kTwoAdicity; ++i)
        root *= root;
    return root;
}

} // namespace unintt
