#include "field/fq2.hh"

namespace unintt {

namespace {

/** (q + 1) / 4 as a U256 (q = 3 mod 4, so this is exact). */
U256
qPlus1Over4()
{
    U256 exp = Bn254FqParams::kModulus;
    // q + 1 cannot overflow 256 bits (q < 2^254).
    U256 one(1);
    U256 sum;
    addCarry(exp, one, sum);
    // Shift right by 2.
    for (int l = 0; l < 3; ++l)
        sum.limb[l] = (sum.limb[l] >> 2) | (sum.limb[l + 1] << 62);
    sum.limb[3] >>= 2;
    return sum;
}

} // namespace

std::optional<Bn254Fq>
fqSqrt(const Bn254Fq &a)
{
    if (a.isZero())
        return Bn254Fq::zero();
    static const U256 exp = qPlus1Over4();
    Bn254Fq candidate = a.pow(exp);
    if (candidate * candidate == a)
        return candidate;
    return std::nullopt;
}

std::optional<Fq2>
Fq2::sqrt() const
{
    if (isZero())
        return Fq2::zero();
    if (c1_.isZero()) {
        // Purely real: either sqrt(x) in Fq, or sqrt(-x)*u.
        if (auto r = fqSqrt(c0_))
            return Fq2(*r, Bn254Fq::zero());
        auto r = fqSqrt(-c0_);
        if (!r)
            return std::nullopt;
        return Fq2(Bn254Fq::zero(), *r);
    }

    // Complex method: n = sqrt(x^2 + y^2), t = (x +- n)/2 = c^2,
    // result c + (y / 2c) u.
    auto n = fqSqrt(norm());
    if (!n)
        return std::nullopt;
    Bn254Fq half = Bn254Fq::fromU64(2).inverse();
    Bn254Fq t = (c0_ + *n) * half;
    auto c = fqSqrt(t);
    if (!c) {
        t = (c0_ - *n) * half;
        c = fqSqrt(t);
        if (!c)
            return std::nullopt;
    }
    Bn254Fq two_c_inv = (*c + *c).inverse();
    Fq2 root(*c, c1_ * two_c_inv);
    // The construction can be off by sign conventions; check.
    if (root * root == *this)
        return root;
    return std::nullopt;
}

} // namespace unintt
