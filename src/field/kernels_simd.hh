/**
 * @file
 * Vector kernel shapes shared by every SIMD backend. A backend
 * supplies an "ops policy" — vector load/store/broadcast plus exact
 * lane-wise field add/sub/mul — and VecKernels<Ops> instantiates every
 * FieldKernels slot from it, peeling scalar tails through the field's
 * own operators so any span length and alignment is legal.
 *
 * Internal header: include only from translation units compiled with
 * the backend's ISA flags (kernels_avx2.cc, kernels_avx512.cc). The
 * policies implement the *same formulas* as the scalar reference in
 * kernels.hh, lane-wise, so outputs are byte-identical; that contract
 * is what the dispatch-layer differential tests pin.
 */

#ifndef UNINTT_FIELD_KERNELS_SIMD_HH
#define UNINTT_FIELD_KERNELS_SIMD_HH

#include <cstddef>

#include "field/kernels.hh"

namespace unintt {
namespace spankernels {

template <typename Ops>
struct VecKernels
{
    using F = typename Ops::Field;
    static constexpr size_t L = Ops::kLanes;

    static void
    bflyFwd(F *lo, F *hi, const F *tw, size_t tw_stride, size_t n)
    {
        size_t j = 0;
        if (tw_stride == 1) {
            for (; j + L <= n; j += L) {
                const auto u = Ops::load(lo + j);
                const auto v = Ops::load(hi + j);
                const auto w = Ops::load(tw + j);
                Ops::store(lo + j, Ops::add(u, v));
                Ops::store(hi + j, Ops::mul(Ops::sub(u, v), w));
            }
        } else {
            F wt[L];
            for (; j + L <= n; j += L) {
                for (size_t k = 0; k < L; ++k)
                    wt[k] = tw[(j + k) * tw_stride];
                const auto u = Ops::load(lo + j);
                const auto v = Ops::load(hi + j);
                const auto w = Ops::load(wt);
                Ops::store(lo + j, Ops::add(u, v));
                Ops::store(hi + j, Ops::mul(Ops::sub(u, v), w));
            }
        }
        bflyFwdScalar(lo + j, hi + j, tw + j * tw_stride, tw_stride,
                      n - j);
    }

    static void
    bflyInv(F *lo, F *hi, const F *tw, size_t tw_stride, size_t n)
    {
        size_t j = 0;
        if (tw_stride == 1) {
            for (; j + L <= n; j += L) {
                const auto u = Ops::load(lo + j);
                const auto v = Ops::mul(Ops::load(hi + j),
                                        Ops::load(tw + j));
                Ops::store(lo + j, Ops::add(u, v));
                Ops::store(hi + j, Ops::sub(u, v));
            }
        } else {
            F wt[L];
            for (; j + L <= n; j += L) {
                for (size_t k = 0; k < L; ++k)
                    wt[k] = tw[(j + k) * tw_stride];
                const auto u = Ops::load(lo + j);
                const auto v =
                    Ops::mul(Ops::load(hi + j), Ops::load(wt));
                Ops::store(lo + j, Ops::add(u, v));
                Ops::store(hi + j, Ops::sub(u, v));
            }
        }
        bflyInvScalar(lo + j, hi + j, tw + j * tw_stride, tw_stride,
                      n - j);
    }

    static void
    bflyRecvFwd(F *lo, F *hi, const F *rlo, const F *rhi, const F *tw,
                size_t n)
    {
        size_t j = 0;
        for (; j + L <= n; j += L) {
            const auto a =
                Ops::add(Ops::load(lo + j), Ops::load(rlo + j));
            const auto b = Ops::mul(
                Ops::sub(Ops::load(rhi + j), Ops::load(hi + j)),
                Ops::load(tw + j));
            Ops::store(lo + j, a);
            Ops::store(hi + j, b);
        }
        bflyRecvFwdScalar(lo + j, hi + j, rlo + j, rhi + j, tw + j,
                          n - j);
    }

    static void
    bflyRecvInv(F *lo, F *hi, const F *rlo, const F *rhi, const F *tw,
                size_t n)
    {
        size_t j = 0;
        for (; j + L <= n; j += L) {
            const auto w = Ops::load(tw + j);
            const auto vl = Ops::mul(Ops::load(rlo + j), w);
            const auto vh = Ops::mul(Ops::load(hi + j), w);
            Ops::store(lo + j, Ops::add(Ops::load(lo + j), vl));
            Ops::store(hi + j, Ops::sub(Ops::load(rhi + j), vh));
        }
        bflyRecvInvScalar(lo + j, hi + j, rlo + j, rhi + j, tw + j,
                          n - j);
    }

    static void
    r4Fwd(F *p0, F *p1, F *p2, F *p3, const F *tw0, const F *tw1,
          F im, size_t j0, size_t hs, size_t n)
    {
        const size_t isplit = r4SplitIndex(j0, hs, n);
        const auto vim = Ops::bcast(im);
        F w3t[L];
        size_t i = 0;
        for (; i + L <= isplit; i += L) {
            // tw0[3j] is a stride-3 walk; gather through a bounce
            // buffer so backends need no gather instruction.
            for (size_t k = 0; k < L; ++k)
                w3t[k] = tw0[3 * (j0 + i + k)];
            const auto a0 = Ops::load(p0 + i);
            const auto a1 = Ops::load(p1 + i);
            const auto a2 = Ops::load(p2 + i);
            const auto a3 = Ops::load(p3 + i);
            const auto t02p = Ops::add(a0, a2);
            const auto t02m = Ops::sub(a0, a2);
            const auto t13p = Ops::add(a1, a3);
            const auto t13m = Ops::mul(Ops::sub(a1, a3), vim);
            Ops::store(p0 + i, Ops::add(t02p, t13p));
            Ops::store(p1 + i, Ops::mul(Ops::sub(t02p, t13p),
                                        Ops::load(tw1 + j0 + i)));
            Ops::store(p2 + i, Ops::mul(Ops::add(t02m, t13m),
                                        Ops::load(tw0 + j0 + i)));
            Ops::store(p3 + i, Ops::mul(Ops::sub(t02m, t13m),
                                        Ops::load(w3t)));
        }
        if (i < isplit) {
            r4FwdScalar(p0 + i, p1 + i, p2 + i, p3 + i, tw0, tw1, im,
                        j0 + i, hs, isplit - i);
            i = isplit;
        }
        for (; i + L <= n; i += L) {
            for (size_t k = 0; k < L; ++k)
                w3t[k] = tw0[3 * (j0 + i + k) - hs];
            const auto a0 = Ops::load(p0 + i);
            const auto a1 = Ops::load(p1 + i);
            const auto a2 = Ops::load(p2 + i);
            const auto a3 = Ops::load(p3 + i);
            const auto t02p = Ops::add(a0, a2);
            const auto t02m = Ops::sub(a0, a2);
            const auto t13p = Ops::add(a1, a3);
            const auto t13m = Ops::mul(Ops::sub(a1, a3), vim);
            Ops::store(p0 + i, Ops::add(t02p, t13p));
            Ops::store(p1 + i, Ops::mul(Ops::sub(t02p, t13p),
                                        Ops::load(tw1 + j0 + i)));
            Ops::store(p2 + i, Ops::mul(Ops::add(t02m, t13m),
                                        Ops::load(tw0 + j0 + i)));
            Ops::store(p3 + i, Ops::mul(Ops::sub(t13m, t02m),
                                        Ops::load(w3t)));
        }
        if (i < n)
            r4FwdScalar(p0 + i, p1 + i, p2 + i, p3 + i, tw0, tw1, im,
                        j0 + i, hs, n - i);
    }

    static void
    r8Fwd(F *p0, F *p1, F *p2, F *p3, F *p4, F *p5, F *p6, F *p7,
          const F *twa, const F *twb, const F *twc, size_t q8)
    {
        size_t j = 0;
        for (; j + L <= q8; j += L) {
            const auto a0 = Ops::load(p0 + j);
            const auto a1 = Ops::load(p1 + j);
            const auto a2 = Ops::load(p2 + j);
            const auto a3 = Ops::load(p3 + j);
            const auto a4 = Ops::load(p4 + j);
            const auto a5 = Ops::load(p5 + j);
            const auto a6 = Ops::load(p6 + j);
            const auto a7 = Ops::load(p7 + j);
            const auto u0 = Ops::add(a0, a4);
            const auto u4 =
                Ops::mul(Ops::sub(a0, a4), Ops::load(twa + j));
            const auto u1 = Ops::add(a1, a5);
            const auto u5 =
                Ops::mul(Ops::sub(a1, a5), Ops::load(twa + q8 + j));
            const auto u2 = Ops::add(a2, a6);
            const auto u6 = Ops::mul(Ops::sub(a2, a6),
                                     Ops::load(twa + 2 * q8 + j));
            const auto u3 = Ops::add(a3, a7);
            const auto u7 = Ops::mul(Ops::sub(a3, a7),
                                     Ops::load(twa + 3 * q8 + j));
            const auto wb0 = Ops::load(twb + j);
            const auto wb1 = Ops::load(twb + q8 + j);
            const auto v0 = Ops::add(u0, u2);
            const auto v2 = Ops::mul(Ops::sub(u0, u2), wb0);
            const auto v1 = Ops::add(u1, u3);
            const auto v3 = Ops::mul(Ops::sub(u1, u3), wb1);
            const auto v4 = Ops::add(u4, u6);
            const auto v6 = Ops::mul(Ops::sub(u4, u6), wb0);
            const auto v5 = Ops::add(u5, u7);
            const auto v7 = Ops::mul(Ops::sub(u5, u7), wb1);
            const auto wc = Ops::load(twc + j);
            Ops::store(p0 + j, Ops::add(v0, v1));
            Ops::store(p1 + j, Ops::mul(Ops::sub(v0, v1), wc));
            Ops::store(p2 + j, Ops::add(v2, v3));
            Ops::store(p3 + j, Ops::mul(Ops::sub(v2, v3), wc));
            Ops::store(p4 + j, Ops::add(v4, v5));
            Ops::store(p5 + j, Ops::mul(Ops::sub(v4, v5), wc));
            Ops::store(p6 + j, Ops::add(v6, v7));
            Ops::store(p7 + j, Ops::mul(Ops::sub(v6, v7), wc));
        }
        // Scalar tail at absolute indices: the twa/twb layouts are
        // q8-relative, so the tail cannot rebase the slab pointers.
        for (; j < q8; ++j) {
            const F a0 = p0[j], a1 = p1[j];
            const F a2 = p2[j], a3 = p3[j];
            const F a4 = p4[j], a5 = p5[j];
            const F a6 = p6[j], a7 = p7[j];
            const F u0 = a0 + a4;
            const F u4 = (a0 - a4) * twa[j];
            const F u1 = a1 + a5;
            const F u5 = (a1 - a5) * twa[q8 + j];
            const F u2 = a2 + a6;
            const F u6 = (a2 - a6) * twa[2 * q8 + j];
            const F u3 = a3 + a7;
            const F u7 = (a3 - a7) * twa[3 * q8 + j];
            const F wb0 = twb[j], wb1 = twb[q8 + j];
            const F v0 = u0 + u2;
            const F v2 = (u0 - u2) * wb0;
            const F v1 = u1 + u3;
            const F v3 = (u1 - u3) * wb1;
            const F v4 = u4 + u6;
            const F v6 = (u4 - u6) * wb0;
            const F v5 = u5 + u7;
            const F v7 = (u5 - u7) * wb1;
            const F wc = twc[j];
            p0[j] = v0 + v1;
            p1[j] = (v0 - v1) * wc;
            p2[j] = v2 + v3;
            p3[j] = (v2 - v3) * wc;
            p4[j] = v4 + v5;
            p5[j] = (v4 - v5) * wc;
            p6[j] = v6 + v7;
            p7[j] = (v6 - v7) * wc;
        }
    }

    static void
    scaleSpan(F *p, F s, size_t n)
    {
        const auto vs = Ops::bcast(s);
        size_t j = 0;
        for (; j + L <= n; j += L)
            Ops::store(p + j, Ops::mul(Ops::load(p + j), vs));
        for (; j < n; ++j)
            p[j] *= s;
    }

    /** Build the full table from this backend's shapes. */
    static FieldKernels<F>
    table(IsaPath path, const char *name)
    {
        FieldKernels<F> t;
        t.path = path;
        t.name = name;
        t.lanes = static_cast<unsigned>(L);
        t.bflyFwd = &bflyFwd;
        t.bflyInv = &bflyInv;
        t.bflyRecvFwd = &bflyRecvFwd;
        t.bflyRecvInv = &bflyRecvInv;
        t.r4Fwd = &r4Fwd;
        t.r8Fwd = &r8Fwd;
        t.scaleSpan = &scaleSpan;
        t.dotSpan = &dotSpanScalar<F>; // ABFT-only; scalar is exact
        return t;
    }
};

} // namespace spankernels
} // namespace unintt

#endif // UNINTT_FIELD_KERNELS_SIMD_HH
