/**
 * @file
 * Acceleration-router implementation: the one-time CPU feature probe,
 * the env/config/probe resolution ladder, the per-path dispatch
 * counters, and the lane-parallel table bindings for Goldilocks and
 * BabyBear (produced by kernels_avx2.cc / kernels_avx512.cc when the
 * build carries those backends).
 */

#include "field/dispatch.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "field/babybear.hh"
#include "field/bn254.hh"
#include "field/goldilocks.hh"
#include "field/kernels_tables.hh"

namespace unintt {

const char *
isaPathName(IsaPath p)
{
    switch (p) {
    case IsaPath::Auto:
        return "auto";
    case IsaPath::Scalar:
        return "scalar";
    case IsaPath::Avx2:
        return "avx2";
    case IsaPath::Avx512:
        return "avx512";
    case IsaPath::Neon:
        return "neon";
    }
    return "?";
}

bool
parseIsaPath(const std::string &s, IsaPath *out)
{
    for (IsaPath p : {IsaPath::Auto, IsaPath::Scalar, IsaPath::Avx2,
                      IsaPath::Avx512, IsaPath::Neon}) {
        if (s == isaPathName(p)) {
            *out = p;
            return true;
        }
    }
    return false;
}

std::string
CpuFeatures::toString() const
{
    std::string s;
    s += "avx2=";
    s += avx2 ? "yes" : "no";
    s += " avx512f=";
    s += avx512 ? "yes" : "no";
    s += " neon=";
    s += neon ? "yes" : "no";
    return s;
}

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures f = [] {
        CpuFeatures r;
#if defined(__x86_64__) || defined(__i386__)
        r.avx2 = __builtin_cpu_supports("avx2");
        r.avx512 = __builtin_cpu_supports("avx512f");
#elif defined(__aarch64__) || defined(__ARM_NEON)
        r.neon = true;
#endif
        return r;
    }();
    return f;
}

bool
isaPathAvailable(IsaPath p)
{
    switch (p) {
    case IsaPath::Scalar:
        return true;
    case IsaPath::Avx2:
#if defined(UNINTT_HAVE_AVX2)
        return cpuFeatures().avx2;
#else
        return false;
#endif
    case IsaPath::Avx512:
#if defined(UNINTT_HAVE_AVX512)
        return cpuFeatures().avx512;
#else
        return false;
#endif
    case IsaPath::Neon: // stub: no kernel tables registered yet
    case IsaPath::Auto:
        return false;
    }
    return false;
}

IsaPath
bestIsaPath()
{
    if (isaPathAvailable(IsaPath::Avx512))
        return IsaPath::Avx512;
    if (isaPathAvailable(IsaPath::Avx2))
        return IsaPath::Avx2;
    return IsaPath::Scalar;
}

IsaPath
forcedIsaPath()
{
    static const IsaPath forced = [] {
        const char *env = std::getenv("UNINTT_FORCE_ISA");
        if (env == nullptr || env[0] == '\0')
            return IsaPath::Auto;
        IsaPath p = IsaPath::Auto;
        if (!parseIsaPath(env, &p)) {
            std::fprintf(stderr,
                         "unintt: ignoring unknown UNINTT_FORCE_ISA="
                         "'%s' (auto, scalar, avx2, avx512, neon)\n",
                         env);
            return IsaPath::Auto;
        }
        return p;
    }();
    return forced;
}

IsaPath
resolveIsaPath(IsaPath requested)
{
    IsaPath want = forcedIsaPath();
    if (want == IsaPath::Auto)
        want = requested;
    if (want == IsaPath::Auto)
        return bestIsaPath();
    // Fall down the ladder until the host/build can run the request.
    if (want == IsaPath::Neon && !isaPathAvailable(IsaPath::Neon))
        want = IsaPath::Scalar;
    if (want == IsaPath::Avx512 && !isaPathAvailable(IsaPath::Avx512))
        want = IsaPath::Avx2;
    if (want == IsaPath::Avx2 && !isaPathAvailable(IsaPath::Avx2))
        want = IsaPath::Scalar;
    return want;
}

std::vector<IsaPath>
availableIsaPaths()
{
    std::vector<IsaPath> out;
    for (IsaPath p :
         {IsaPath::Avx512, IsaPath::Avx2, IsaPath::Scalar})
        if (isaPathAvailable(p))
            out.push_back(p);
    return out;
}

unsigned
isaLaneWidth(IsaPath p, size_t element_bytes)
{
    p = resolveIsaPath(p);
    if (p == IsaPath::Scalar || element_bytes == 0)
        return 1;
    if (element_bytes > 8)
        return 2; // multi-word ILP tables
    const size_t vector_bytes = p == IsaPath::Avx512 ? 64 : 32;
    return static_cast<unsigned>(vector_bytes / element_bytes);
}

namespace {

std::array<std::atomic<uint64_t>, kIsaPathCount> g_dispatches{};

} // namespace

void
recordKernelDispatch(IsaPath p, uint64_t n)
{
    g_dispatches[static_cast<size_t>(p)].fetch_add(
        n, std::memory_order_relaxed);
}

std::array<uint64_t, kIsaPathCount>
kernelDispatchCounts()
{
    std::array<uint64_t, kIsaPathCount> out{};
    for (size_t i = 0; i < kIsaPathCount; ++i)
        out[i] = g_dispatches[i].load(std::memory_order_relaxed);
    return out;
}

std::string
routerDescription()
{
    std::string s = "router: ";
    s += isaPathName(resolveIsaPath(IsaPath::Auto));
    s += " (probe: ";
    s += cpuFeatures().toString();
    s += "; forced=";
    s += forcedIsaPath() == IsaPath::Auto
             ? "none"
             : isaPathName(forcedIsaPath());
    s += ")";
    return s;
}

template <>
const FieldKernels<Goldilocks> &
fieldKernels<Goldilocks>(IsaPath requested)
{
    static const FieldKernels<Goldilocks> scalar =
        scalarKernelTable<Goldilocks>();
    switch (resolveIsaPath(requested)) {
#if defined(UNINTT_HAVE_AVX2)
    case IsaPath::Avx2:
        return spankernels::goldilocksAvx2Table();
#endif
#if defined(UNINTT_HAVE_AVX512)
    case IsaPath::Avx512:
        return spankernels::goldilocksAvx512Table();
#endif
    default:
        return scalar;
    }
}

template <>
const FieldKernels<BabyBear> &
fieldKernels<BabyBear>(IsaPath requested)
{
    static const FieldKernels<BabyBear> scalar =
        scalarKernelTable<BabyBear>();
    switch (resolveIsaPath(requested)) {
#if defined(UNINTT_HAVE_AVX2)
    case IsaPath::Avx2:
        return spankernels::babybearAvx2Table();
#endif
#if defined(UNINTT_HAVE_AVX512)
    case IsaPath::Avx512:
        return spankernels::babybearAvx512Table();
#endif
    default:
        return scalar;
    }
}

std::string
listKernelsReport()
{
    std::string s = routerDescription();
    s += "\n";
    char line[160];
    auto describe = [&](const char *field, const char *table,
                        unsigned lanes, IsaPath path) {
        std::snprintf(line, sizeof(line),
                      "  %-12s -> %-7s (%u lane%s, path %s)\n", field,
                      table, lanes, lanes == 1 ? "" : "s",
                      isaPathName(path));
        s += line;
    };
    const auto &gl = fieldKernels<Goldilocks>();
    describe(Goldilocks::kName, gl.name, gl.lanes, gl.path);
    const auto &bb = fieldKernels<BabyBear>();
    describe(BabyBear::kName, bb.name, bb.lanes, bb.path);
    const auto &fr = fieldKernels<Bn254Fr>();
    describe(Bn254Fr::kName, fr.name, fr.lanes, fr.path);
    s += "  available:";
    for (IsaPath p : availableIsaPaths()) {
        s += " ";
        s += isaPathName(p);
    }
    s += "\n  dispatches:";
    const auto counts = kernelDispatchCounts();
    for (IsaPath p : {IsaPath::Scalar, IsaPath::Avx2, IsaPath::Avx512,
                      IsaPath::Neon}) {
        std::snprintf(line, sizeof(line), " %s=%llu", isaPathName(p),
                      static_cast<unsigned long long>(
                          counts[static_cast<size_t>(p)]));
        s += line;
    }
    s += "\n";
    return s;
}

} // namespace unintt
