/**
 * @file
 * The Goldilocks prime field F_p with p = 2^64 - 2^32 + 1.
 *
 * Goldilocks is the workhorse field of hash-based ZKP systems (Plonky2,
 * Polygon zkEVM, Risc0-adjacent designs): it fits one machine word, its
 * special form gives a branch-light reduction, and p - 1 = 2^32 * (2^32-1)
 * provides 32 bits of two-adicity, enough for NTTs up to size 2^32.
 *
 * Elements are kept canonical (in [0, p)) at all times, so equality is
 * plain integer comparison.
 */

#ifndef UNINTT_FIELD_GOLDILOCKS_HH
#define UNINTT_FIELD_GOLDILOCKS_HH

#include <cstdint>
#include <string>

namespace unintt {

/** An element of the Goldilocks field. Value type, 8 bytes. */
class Goldilocks
{
  public:
    /** The field modulus. */
    static constexpr uint64_t kModulus = 0xffffffff00000001ULL;
    /** 2^64 mod p; also the correction term for carries. */
    static constexpr uint64_t kEpsilon = 0xffffffffULL;
    /** Largest k such that 2^k divides p - 1. */
    static constexpr unsigned kTwoAdicity = 32;
    /** A generator of the multiplicative group (hence a nonresidue). */
    static constexpr uint64_t kGenerator = 7;
    /** Storage size used by the performance model. */
    static constexpr size_t kBytes = 8;
    /** Field name for reports. */
    static constexpr const char *kName = "Goldilocks";

    /** Zero-initialized element. */
    constexpr Goldilocks() : value_(0) {}

    /** Reduce an arbitrary 64-bit integer into the field. */
    static constexpr Goldilocks
    fromU64(uint64_t x)
    {
        Goldilocks e;
        e.value_ = x >= kModulus ? x - kModulus : x;
        return e;
    }

    /** The additive identity. */
    static constexpr Goldilocks zero() { return Goldilocks(); }

    /** The multiplicative identity. */
    static constexpr Goldilocks one() { return fromU64(1); }

    /** Canonical representative in [0, p). */
    constexpr uint64_t value() const { return value_; }

    /** Field addition. */
    constexpr Goldilocks
    operator+(Goldilocks o) const
    {
        // Carry out of 64 bits: 2^64 == epsilon (mod p). The
        // corrections use mask arithmetic instead of branches: the
        // carry/overflow predicates depend on field data, so in the
        // butterfly kernels they are coin-flip branches the predictor
        // cannot learn.
        uint64_t s = value_ + o.value_;
        s += kEpsilon & maskIf(s < value_);
        s -= kModulus & maskIf(s >= kModulus);
        Goldilocks r;
        r.value_ = s;
        return r;
    }

    /** Field subtraction. */
    constexpr Goldilocks
    operator-(Goldilocks o) const
    {
        uint64_t d = value_ - o.value_;
        d -= kEpsilon & maskIf(value_ < o.value_); // -2^64 == -epsilon
        Goldilocks r;
        r.value_ = d;
        return r;
    }

    /** Additive inverse. */
    constexpr Goldilocks
    operator-() const
    {
        Goldilocks r;
        r.value_ = value_ == 0 ? 0 : kModulus - value_;
        return r;
    }

    /** Field multiplication via the special-form 128-bit reduction. */
    constexpr Goldilocks
    operator*(Goldilocks o) const
    {
        Goldilocks r;
        r.value_ = reduce128(static_cast<unsigned __int128>(value_) *
                             o.value_);
        return r;
    }

    Goldilocks &operator+=(Goldilocks o) { return *this = *this + o; }
    Goldilocks &operator-=(Goldilocks o) { return *this = *this - o; }
    Goldilocks &operator*=(Goldilocks o) { return *this = *this * o; }

    constexpr bool operator==(Goldilocks o) const
    {
        return value_ == o.value_;
    }
    constexpr bool operator!=(Goldilocks o) const
    {
        return value_ != o.value_;
    }

    /** this^exp by square-and-multiply. */
    Goldilocks pow(uint64_t exp) const;

    /** Multiplicative inverse; panics on zero. */
    Goldilocks inverse() const;

    /** True iff the element is zero. */
    constexpr bool isZero() const { return value_ == 0; }

    /**
     * Primitive 2^log_n-th root of unity.
     * @param log_n must be <= kTwoAdicity.
     */
    static Goldilocks rootOfUnity(unsigned log_n);

    /** Generator of the full multiplicative group, for coset NTTs. */
    static Goldilocks multiplicativeGenerator()
    {
        return fromU64(kGenerator);
    }

    /** Canonical value as a machine word (checksum folding). */
    constexpr uint64_t toU64() const { return value_; }

    /**
     * Reduce a full 128-bit integer into the field. Lets hot loops
     * accumulate raw 128-bit products and pay one reduction per span
     * instead of one per element (see unintt/abft.hh).
     */
    static constexpr Goldilocks
    fromU128(unsigned __int128 x)
    {
        Goldilocks r;
        r.value_ = reduce128(x);
        return r;
    }

    /** Decimal string of the canonical value. */
    std::string toString() const { return std::to_string(value_); }

  private:
    /** All-ones when cond, zero otherwise — a branch-free `if`. */
    static constexpr uint64_t
    maskIf(bool cond)
    {
        return 0ULL - static_cast<uint64_t>(cond);
    }

    /**
     * Reduce a 128-bit product modulo p using
     * 2^64 == 2^32 - 1 and 2^96 == -1 (mod p). Carry/borrow
     * corrections are masked, not branched (see operator+).
     */
    static constexpr uint64_t
    reduce128(unsigned __int128 x)
    {
        uint64_t x_lo = static_cast<uint64_t>(x);
        uint64_t x_hi = static_cast<uint64_t>(x >> 64);
        uint64_t x_hi_hi = x_hi >> 32;
        uint64_t x_hi_lo = x_hi & kEpsilon;

        // t0 = x_lo - x_hi_hi  (the 2^96 == -1 term)
        uint64_t t0 = x_lo - x_hi_hi;
        t0 -= kEpsilon & maskIf(x_lo < x_hi_hi); // -2^64 == -epsilon

        // t1 = x_hi_lo * (2^32 - 1)  (the 2^64 == epsilon term)
        uint64_t t1 = (x_hi_lo << 32) - x_hi_lo;

        uint64_t res = t0 + t1;
        res += kEpsilon & maskIf(res < t0); // carry
        res -= kModulus & maskIf(res >= kModulus);
        return res;
    }

    uint64_t value_;
};

} // namespace unintt

#endif // UNINTT_FIELD_GOLDILOCKS_HH
