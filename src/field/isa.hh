/**
 * @file
 * The instruction-set paths the acceleration router can bind
 * (field/dispatch.hh). Split into its own tiny header so config-layer
 * code (unintt/config.hh) can name a path without pulling in the
 * kernel tables.
 */

#ifndef UNINTT_FIELD_ISA_HH
#define UNINTT_FIELD_ISA_HH

#include <cstdint>
#include <string>

namespace unintt {

/**
 * One host acceleration path. `Auto` defers to the runtime feature
 * probe; the rest force a specific kernel family. A forced path the
 * host (or the build) cannot run falls down the ladder
 * Avx512 -> Avx2 -> Scalar; `Neon` is plumbed through the same
 * interface but has no kernel tables yet, so it resolves to Scalar.
 */
enum class IsaPath : uint8_t {
    Auto = 0,
    Scalar = 1,
    Avx2 = 2,
    Avx512 = 3,
    Neon = 4,
};

/** Number of enumerators, for per-path counter arrays. */
constexpr unsigned kIsaPathCount = 5;

/** Lower-case name ("auto", "scalar", "avx2", "avx512", "neon"). */
const char *isaPathName(IsaPath p);

/** Parse an isaPathName() string; returns false on unknown input. */
bool parseIsaPath(const std::string &s, IsaPath *out);

} // namespace unintt

#endif // UNINTT_FIELD_ISA_HH
