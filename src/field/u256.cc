#include "field/u256.hh"

#include <cstdio>

namespace unintt {

std::string
U256::toHexString() const
{
    char buf[2 + 64 + 1];
    std::snprintf(buf, sizeof(buf), "0x%016lx%016lx%016lx%016lx",
                  static_cast<unsigned long>(limb[3]),
                  static_cast<unsigned long>(limb[2]),
                  static_cast<unsigned long>(limb[1]),
                  static_cast<unsigned long>(limb[0]));
    return buf;
}

} // namespace unintt
