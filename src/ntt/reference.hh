/**
 * @file
 * O(n^2) direct evaluation of the number theoretic transform. Far too
 * slow for real sizes, but simple enough to be obviously correct: every
 * fast transform in the library is tested against this oracle.
 */

#ifndef UNINTT_NTT_REFERENCE_HH
#define UNINTT_NTT_REFERENCE_HH

#include <vector>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/twiddle.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

/**
 * Direct DFT: X[k] = sum_n x[n] * w^(nk), natural order in and out.
 * For Inverse, uses w^-1 and scales by n^-1.
 */
template <NttField F>
std::vector<F>
naiveDft(const std::vector<F> &x, NttDirection dir)
{
    size_t n = x.size();
    UNINTT_ASSERT(isPow2(n), "size must be a power of two");
    F w = F::rootOfUnity(log2Exact(n));
    if (dir == NttDirection::Inverse)
        w = w.inverse();

    std::vector<F> out(n);
    for (size_t k = 0; k < n; ++k) {
        F wk = w.pow(k);   // w^k
        F wnk = F::one();  // w^(nk), stepped by wk
        F acc = F::zero();
        for (size_t i = 0; i < n; ++i) {
            acc += x[i] * wnk;
            wnk *= wk;
        }
        out[k] = acc;
    }
    if (dir == NttDirection::Inverse) {
        F scale = inverseScale<F>(n);
        for (auto &v : out)
            v *= scale;
    }
    return out;
}

/**
 * Direct polynomial (cyclic) convolution, the semantic contract of
 * NTT-based multiplication: out[k] = sum_{i+j == k mod n} a[i]*b[j].
 */
template <NttField F>
std::vector<F>
naiveCyclicConvolution(const std::vector<F> &a, const std::vector<F> &b)
{
    UNINTT_ASSERT(a.size() == b.size(), "operand sizes must match");
    size_t n = a.size();
    std::vector<F> out(n, F::zero());
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            out[(i + j) % n] += a[i] * b[j];
    return out;
}

} // namespace unintt

#endif // UNINTT_NTT_REFERENCE_HH
