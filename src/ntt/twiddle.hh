/**
 * @file
 * Twiddle-factor management. A TwiddleTable precomputes the powers of the
 * primitive root for a given transform size (the "table" strategy); the
 * TwiddleGenerator produces the same powers incrementally (the
 * "on-the-fly" strategy that trades multiplies for memory bandwidth —
 * one of the uniform optimizations of UniNTT, see
 * unintt/optimizations.hh).
 */

#ifndef UNINTT_NTT_TWIDDLE_HH
#define UNINTT_NTT_TWIDDLE_HH

#include <cstdint>
#include <vector>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

/**
 * Precomputed powers of the size-n primitive root of unity, for one
 * direction. Entry i holds w^i for i in [0, n/2).
 */
template <NttField F>
class TwiddleTable
{
  public:
    /**
     * Build the table for transforms of size @p n.
     * @param n   power-of-two transform size (>= 2).
     * @param dir Forward uses w, Inverse uses w^-1.
     */
    TwiddleTable(size_t n, NttDirection dir)
        : n_(n)
    {
        UNINTT_ASSERT(isPow2(n) && n >= 2, "size must be a power of two");
        unsigned log_n = log2Exact(n);
        root_ = F::rootOfUnity(log_n);
        if (dir == NttDirection::Inverse)
            root_ = root_.inverse();
        powers_.resize(n / 2);
        F acc = F::one();
        for (size_t i = 0; i < n / 2; ++i) {
            powers_[i] = acc;
            acc *= root_;
        }
    }

    /** Transform size the table was built for. */
    size_t n() const { return n_; }

    /** The primitive size-n root (or its inverse). */
    F root() const { return root_; }

    /** w^i for i < n/2. */
    const F &
    operator[](size_t i) const
    {
        return powers_[i];
    }

    /** Raw table, n/2 entries. */
    const std::vector<F> &powers() const { return powers_; }

    /** Bytes the table occupies; used by the performance model. */
    size_t sizeBytes() const { return powers_.size() * sizeof(F); }

  private:
    size_t n_;
    F root_;
    std::vector<F> powers_;
};

/**
 * Incremental twiddle generation: produces w^start, w^(start+step), ...
 * without a table. Mirrors how a GPU thread would generate its own
 * twiddles in registers.
 */
template <NttField F>
class TwiddleGenerator
{
  public:
    /**
     * @param root  primitive root (already inverted for inverse NTTs).
     * @param start first exponent.
     * @param step  exponent increment per next().
     */
    TwiddleGenerator(F root, uint64_t start, uint64_t step)
        : current_(root.pow(start)), multiplier_(root.pow(step))
    {
    }

    /** Current twiddle; call advance() to step. */
    const F &get() const { return current_; }

    /** Advance to the next twiddle. */
    void advance() { current_ *= multiplier_; }

  private:
    F current_;
    F multiplier_;
};

/**
 * Scaling factor n^-1 applied at the end of an inverse transform.
 */
template <NttField F>
F
inverseScale(size_t n)
{
    return F::fromU64(n).inverse();
}

} // namespace unintt

#endif // UNINTT_NTT_TWIDDLE_HH
