/**
 * @file
 * Iterative radix-4 decimation-in-frequency NTT. Each stage resolves
 * two bits with a 4-point butterfly (3 twiddle multiplies per 4
 * outputs instead of radix-2's 4 per two stages, and half the passes)
 * — the classic mixed-radix trade GPU kernels exploit. Each 4-point
 * butterfly computes exactly what two fused radix-2 DIF stages would,
 * so the output ordering is the ordinary bit reversal and the kernel
 * composes freely with the radix-2 ones.
 *
 * Sizes must be powers of 4 here; production mixed-radix codes append
 * one radix-2 stage for odd log2 sizes, which radix2.hh already
 * provides — the engines compose the two.
 */

#ifndef UNINTT_NTT_RADIX4_HH
#define UNINTT_NTT_RADIX4_HH

#include <vector>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/twiddle.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

/** True iff n is a power of four. */
constexpr bool
isPow4(uint64_t n)
{
    return isPow2(n) && (log2Floor(n) % 2 == 0);
}

/**
 * Radix-4 DIF butterflies over @p a (size n = 4^k, natural order).
 * Output is in base-4 digit-reversed order. For the Inverse direction
 * build @p tw with inverse twiddles and scale afterwards.
 *
 * The 4-point kernel evaluates the size-4 DFT with i = w_4 (the
 * primitive 4th root): with (a0..a3) and s = n/4 spacing,
 *   b0 = a0 + a1 + a2 + a3
 *   b1 = (a0 - a1 + a2 - a3) * w^(2j)
 *   b2 = (a0 + i a1 - a2 - i a3) * w^j
 *   b3 = (a0 - i a1 - a2 + i a3) * w^(3j)
 * matching two fused radix-2 DIF stages.
 */
template <NttField F>
void
nttDifRadix4(F *a, size_t n, const TwiddleTable<F> &tw)
{
    UNINTT_ASSERT(isPow4(n), "size must be a power of four");
    UNINTT_ASSERT(tw.n() == n, "twiddle table size mismatch");
    const F im = tw.root().pow(n / 4); // the primitive 4th root

    for (size_t quarter = n / 4; quarter >= 1; quarter /= 4) {
        size_t stride = n / (4 * quarter); // twiddle exponent step
        for (size_t start = 0; start < n; start += 4 * quarter) {
            for (size_t j = 0; j < quarter; ++j) {
                F a0 = a[start + j];
                F a1 = a[start + j + quarter];
                F a2 = a[start + j + 2 * quarter];
                F a3 = a[start + j + 3 * quarter];

                F t02p = a0 + a2;
                F t02m = a0 - a2;
                F t13p = a1 + a3;
                F t13m = (a1 - a3) * im;

                size_t e = j * stride;
                a[start + j] = t02p + t13p;
                a[start + j + quarter] =
                    e ? (t02p - t13p) * tw[2 * e] : t02p - t13p;
                a[start + j + 2 * quarter] =
                    e ? (t02m + t13m) * tw[e] : t02m + t13m;
                a[start + j + 3 * quarter] =
                    (t02m - t13m) * tw[(3 * e) % (n / 2)] *
                    (3 * e >= n / 2 ? -F::one() : F::one());
            }
        }
    }
}

/**
 * Forward radix-4 NTT, natural order in and out (the butterflies are
 * fused radix-2 pairs, so the ordinary bit reversal applies).
 */
template <NttField F>
void
nttRadix4ForwardInPlace(std::vector<F> &a)
{
    const size_t n = a.size();
    UNINTT_ASSERT(isPow4(n), "size must be a power of four");
    TwiddleTable<F> tw(n, NttDirection::Forward);
    nttDifRadix4(a.data(), n, tw);
    bitReversePermute(a.data(), n);
}

} // namespace unintt

#endif // UNINTT_NTT_RADIX4_HH
