/**
 * @file
 * Radix-2 Stockham autosort NTT: out-of-place, ping-pong buffers, no
 * bit-reversal pass, natural order in and out. This is the access
 * pattern cuFFT-style GPU kernels use, so it doubles as the data-layout
 * reference for the simulated baselines.
 */

#ifndef UNINTT_NTT_STOCKHAM_HH
#define UNINTT_NTT_STOCKHAM_HH

#include <vector>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/twiddle.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

/**
 * Stockham NTT over @p x, natural order in and out. Allocates one
 * scratch buffer of the same size.
 *
 * @param x   data, size must be a power of two.
 * @param dir transform direction; Inverse includes the n^-1 scaling.
 */
template <NttField F>
void
nttStockham(std::vector<F> &x, NttDirection dir)
{
    const size_t n = x.size();
    UNINTT_ASSERT(isPow2(n), "size must be a power of two");
    if (n == 1)
        return;

    F root = F::rootOfUnity(log2Exact(n));
    if (dir == NttDirection::Inverse)
        root = root.inverse();

    std::vector<F> scratch(n);
    F *src = x.data();
    F *dst = scratch.data();

    // Stage with sub-transform size cur_n and stride s; the root is
    // squared as cur_n halves.
    F w = root;
    for (size_t cur_n = n, s = 1; cur_n > 1; cur_n /= 2, s *= 2) {
        const size_t m = cur_n / 2;
        F wp = F::one();
        for (size_t p = 0; p < m; ++p) {
            for (size_t q = 0; q < s; ++q) {
                F a = src[q + s * p];
                F b = src[q + s * (p + m)];
                dst[q + s * (2 * p)] = a + b;
                dst[q + s * (2 * p + 1)] = (a - b) * wp;
            }
            wp *= w;
        }
        std::swap(src, dst);
        w *= w;
    }

    if (src != x.data())
        std::copy(src, src + n, x.data());

    if (dir == NttDirection::Inverse) {
        F scale = inverseScale<F>(n);
        for (auto &v : x)
            v *= scale;
    }
}

} // namespace unintt

#endif // UNINTT_NTT_STOCKHAM_HH
