/**
 * @file
 * The six-step NTT (Bailey's cache variant): for N = n1 * n2 viewed as
 * an n1 x n2 matrix, (1) transpose, (2) n2 row NTTs of size n1,
 * (3) twiddle multiplication, (4) transpose, (5) n1 row NTTs of size
 * n2, (6) transpose. All sub-NTTs run on contiguous rows, which is
 * what makes the algorithm cache-friendly on CPUs and the historical
 * basis of out-of-core FFTs. Functionally equivalent to fourStepNtt;
 * both are oracles for the UniNTT decomposition tests, and the
 * transposes are the memory passes UniNTT's fusion removes.
 */

#ifndef UNINTT_NTT_SIXSTEP_HH
#define UNINTT_NTT_SIXSTEP_HH

#include <vector>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/radix2.hh"
#include "ntt/twiddle.hh"
#include "ntt/twiddle_cache.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

namespace detail {

/** Out-of-place transpose of a rows x cols row-major matrix. */
template <typename F>
std::vector<F>
transposeMatrix(const std::vector<F> &in, size_t rows, size_t cols)
{
    std::vector<F> out(in.size());
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            out[c * rows + r] = in[r * cols + c];
    return out;
}

} // namespace detail

/**
 * Six-step NTT, natural order in and out.
 *
 * @param x   input of size n1*n2 (power of two).
 * @param n1  number of matrix rows (power of two dividing x.size()).
 * @param dir direction; Inverse applies the full n^-1 scaling.
 */
template <NttField F>
std::vector<F>
sixStepNtt(const std::vector<F> &x, size_t n1, NttDirection dir)
{
    const size_t n = x.size();
    UNINTT_ASSERT(isPow2(n), "size must be a power of two");
    UNINTT_ASSERT(isPow2(n1) && n % n1 == 0, "invalid row count");
    const size_t n2 = n / n1;

    F root = F::rootOfUnity(log2Exact(n));
    if (dir == NttDirection::Inverse)
        root = root.inverse();

    // Step 1: transpose n1 x n2 -> n2 x n1 so the size-n1 transforms
    // run on contiguous rows.
    std::vector<F> a = detail::transposeMatrix(x, n1, n2);

    // Step 2: n2 contiguous NTTs of size n1.
    if (n1 > 1) {
        auto tw1 = cachedTwiddleSlabs<F>(n1, dir);
        for (size_t r = 0; r < n2; ++r) {
            nttDif(a.data() + r * n1, n1, *tw1);
            bitReversePermute(a.data() + r * n1, n1);
        }
    }

    // Step 3: twiddles. Entry (r, k1) of the n2 x n1 matrix gets
    // root^(k1 * r).
    for (size_t r = 1; r < n2; ++r) {
        F wr = root.pow(r);
        F w = wr;
        for (size_t k1 = 1; k1 < n1; ++k1) {
            a[r * n1 + k1] *= w;
            w *= wr;
        }
    }

    // Step 4: transpose back to n1 x n2.
    a = detail::transposeMatrix(a, n2, n1);

    // Step 5: n1 contiguous NTTs of size n2.
    if (n2 > 1) {
        auto tw2 = cachedTwiddleSlabs<F>(n2, dir);
        for (size_t r = 0; r < n1; ++r) {
            nttDif(a.data() + r * n2, n2, *tw2);
            bitReversePermute(a.data() + r * n2, n2);
        }
    }

    // Step 6: final transpose: X[k1 + n1*k2] = A[k1][k2].
    std::vector<F> out = detail::transposeMatrix(a, n1, n2);

    if (dir == NttDirection::Inverse) {
        F scale = inverseScale<F>(n);
        fieldKernels<F>().scaleSpan(out.data(), scale, out.size());
    }
    return out;
}

} // namespace unintt

#endif // UNINTT_NTT_SIXSTEP_HH
