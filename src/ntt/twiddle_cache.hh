/**
 * @file
 * Process-wide cache of precomputed twiddle tables, one instance per
 * field (the template parameter is the key's field component). ZKP
 * provers transform the same domain sizes over and over — STARK trace /
 * LDE / FRI folding loops, batched polynomial multiplication — and
 * regenerating the powers of the root of unity on every call is pure
 * waste. The cache hands out shared_ptr<const TwiddleTable> so hits are
 * one mutex acquisition plus a refcount, safe to use from the host
 * thread pool.
 *
 * Eviction is LRU, bounded both by entry count and by total bytes so a
 * sweep over many sizes cannot pin unbounded memory (a 2^24 BN254 table
 * alone is 256 MiB).
 */

#ifndef UNINTT_NTT_TWIDDLE_CACHE_HH
#define UNINTT_NTT_TWIDDLE_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/twiddle.hh"
#include "util/bitops.hh"

namespace unintt {

/**
 * Per-stage compacted twiddle slabs. A radix-2 stage s of a size-n
 * transform reads tw[j << s] for j in [0, n >> (s+1)) — a strided walk
 * over the flat table that wastes most of every cache line at the
 * outer stages. The slabs store each stage's twiddles contiguously:
 * slab(s)[j] == tw[j << s] (equivalently, the full table of the
 * size-(n >> s) sub-transform), so every inner loop becomes a unit
 * stride read. Total footprint is sum_s n >> (s+1) = n - 1 elements,
 * twice the flat table.
 */
template <NttField F>
class TwiddleSlabs
{
  public:
    /** Compact @p table (powers of the size-n root) into slabs. */
    explicit TwiddleSlabs(const TwiddleTable<F> &table)
        : n_(table.n()), root_(table.root())
    {
        const unsigned log_n = log2Exact(n_);
        offsets_.resize(log_n + 1);
        flat_.reserve(n_ - 1);
        for (unsigned s = 0; s < log_n; ++s) {
            offsets_[s] = flat_.size();
            const size_t cnt = n_ >> (s + 1);
            const size_t stride = size_t{1} << s;
            for (size_t j = 0; j < cnt; ++j)
                flat_.push_back(table[j * stride]);
        }
        offsets_[log_n] = flat_.size();
    }

    /** Transform size the slabs were built for. */
    size_t n() const { return n_; }

    /** The primitive size-n root (or its inverse). */
    F root() const { return root_; }

    /** root^(n/4), the 4th root the radix-4 butterfly needs (n >= 4). */
    F fourthRoot() const { return root_.pow(n_ / 4); }

    /** Stage-s twiddles, count(s) contiguous entries. */
    const F *
    slab(unsigned s) const
    {
        return flat_.data() + offsets_[s];
    }

    /** Entries in slab(s): n >> (s+1). */
    size_t count(unsigned s) const { return n_ >> (s + 1); }

    /** Bytes the slabs occupy (cache budget accounting). */
    size_t sizeBytes() const { return flat_.size() * sizeof(F); }

  private:
    size_t n_;
    F root_;
    std::vector<size_t> offsets_;
    std::vector<F> flat_;
};

/** Hit/miss counters of one cache; monotone over the process. */
struct CacheCounters
{
    uint64_t hits = 0;
    uint64_t misses = 0;
};

/** Thread-safe LRU cache of TwiddleTable<F> keyed by (size, direction). */
template <NttField F>
class TwiddleCache
{
  public:
    /**
     * @param max_entries LRU bound on cached tables.
     * @param max_bytes   LRU bound on the summed table footprint.
     */
    explicit TwiddleCache(size_t max_entries = 32,
                          size_t max_bytes = 256ULL << 20)
        : maxEntries_(max_entries), maxBytes_(max_bytes)
    {
    }

    /**
     * The table for size-@p n transforms in direction @p dir, built on
     * the first request and shared afterwards. @p hit_out (optional)
     * reports whether this call was served from the cache.
     */
    std::shared_ptr<const TwiddleTable<F>>
    get(size_t n, NttDirection dir, bool *hit_out = nullptr)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (auto it = lru_.begin(); it != lru_.end(); ++it) {
            if (it->n == n && it->dir == dir) {
                counters_.hits++;
                if (hit_out)
                    *hit_out = true;
                lru_.splice(lru_.begin(), lru_, it); // refresh recency
                return lru_.front().table;
            }
        }
        counters_.misses++;
        if (hit_out)
            *hit_out = false;
        Entry e;
        e.n = n;
        e.dir = dir;
        e.table = std::make_shared<const TwiddleTable<F>>(n, dir);
        bytes_ += e.table->sizeBytes();
        lru_.push_front(std::move(e));
        while (lru_.size() > maxEntries_ ||
               (bytes_ > maxBytes_ && lru_.size() > 1)) {
            bytes_ -= lru_.back().table->sizeBytes();
            lru_.pop_back(); // outstanding shared_ptrs stay valid
        }
        return lru_.front().table;
    }

    /** Drop every cached table (cold-cache tests). Counters persist. */
    void
    clear()
    {
        std::lock_guard<std::mutex> lk(mutex_);
        lru_.clear();
        bytes_ = 0;
    }

    /** Lifetime hit/miss counters. */
    CacheCounters
    counters() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return counters_;
    }

    /** Cached tables currently resident. */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return lru_.size();
    }

    /** The process-wide instance for field F. */
    static TwiddleCache &
    global()
    {
        static TwiddleCache cache;
        return cache;
    }

  private:
    struct Entry
    {
        size_t n;
        NttDirection dir;
        std::shared_ptr<const TwiddleTable<F>> table;
    };

    mutable std::mutex mutex_;
    std::list<Entry> lru_; // front = most recently used
    size_t maxEntries_;
    size_t maxBytes_;
    size_t bytes_ = 0;
    CacheCounters counters_;
};

/** Cached lookup on the field's global cache. */
template <NttField F>
std::shared_ptr<const TwiddleTable<F>>
cachedTwiddles(size_t n, NttDirection dir, bool *hit_out = nullptr)
{
    return TwiddleCache<F>::global().get(n, dir, hit_out);
}

/**
 * Thread-safe LRU cache of TwiddleSlabs<F> keyed by (size, direction).
 * A slab miss builds from the table cache (cachedTwiddles), so the flat
 * table stays shared with the callers that still want strided access
 * and the table cache's counters keep describing root-of-unity
 * regeneration.
 */
template <NttField F>
class TwiddleSlabCache
{
  public:
    /** Bounds mirror TwiddleCache; slabs are ~2x a table. */
    explicit TwiddleSlabCache(size_t max_entries = 32,
                              size_t max_bytes = 512ULL << 20)
        : maxEntries_(max_entries), maxBytes_(max_bytes)
    {
    }

    /**
     * The slabs for size-@p n transforms in direction @p dir.
     * @p hit_out (optional) reports slab-cache service; on a miss,
     * @p table_hit_out (optional) reports how the underlying table
     * lookup behaved (untouched on a slab hit).
     */
    std::shared_ptr<const TwiddleSlabs<F>>
    get(size_t n, NttDirection dir, bool *hit_out = nullptr,
        bool *table_hit_out = nullptr)
    {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            for (auto it = lru_.begin(); it != lru_.end(); ++it) {
                if (it->n == n && it->dir == dir) {
                    counters_.hits++;
                    if (hit_out)
                        *hit_out = true;
                    lru_.splice(lru_.begin(), lru_, it);
                    return lru_.front().slabs;
                }
            }
        }
        // Build outside the lock (concurrent misses of one key are
        // merely redundant work); the table comes from the table cache.
        auto table = cachedTwiddles<F>(n, dir, table_hit_out);
        auto slabs = std::make_shared<const TwiddleSlabs<F>>(*table);

        std::lock_guard<std::mutex> lk(mutex_);
        counters_.misses++;
        if (hit_out)
            *hit_out = false;
        bytes_ += slabs->sizeBytes();
        lru_.push_front(Entry{n, dir, slabs});
        while (lru_.size() > maxEntries_ ||
               (bytes_ > maxBytes_ && lru_.size() > 1)) {
            bytes_ -= lru_.back().slabs->sizeBytes();
            lru_.pop_back(); // outstanding shared_ptrs stay valid
        }
        return lru_.front().slabs;
    }

    /** Drop every cached slab set (cold-cache tests). */
    void
    clear()
    {
        std::lock_guard<std::mutex> lk(mutex_);
        lru_.clear();
        bytes_ = 0;
    }

    /** Lifetime hit/miss counters. */
    CacheCounters
    counters() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return counters_;
    }

    /** Cached slab sets currently resident. */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return lru_.size();
    }

    /** The process-wide instance for field F. */
    static TwiddleSlabCache &
    global()
    {
        static TwiddleSlabCache cache;
        return cache;
    }

  private:
    struct Entry
    {
        size_t n;
        NttDirection dir;
        std::shared_ptr<const TwiddleSlabs<F>> slabs;
    };

    mutable std::mutex mutex_;
    std::list<Entry> lru_; // front = most recently used
    size_t maxEntries_;
    size_t maxBytes_;
    size_t bytes_ = 0;
    CacheCounters counters_;
};

/** Cached slab lookup on the field's global slab cache. */
template <NttField F>
std::shared_ptr<const TwiddleSlabs<F>>
cachedTwiddleSlabs(size_t n, NttDirection dir, bool *hit_out = nullptr,
                   bool *table_hit_out = nullptr)
{
    return TwiddleSlabCache<F>::global().get(n, dir, hit_out,
                                             table_hit_out);
}

} // namespace unintt

#endif // UNINTT_NTT_TWIDDLE_CACHE_HH
