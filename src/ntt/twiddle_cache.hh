/**
 * @file
 * Process-wide cache of precomputed twiddle tables, one instance per
 * field (the template parameter is the key's field component). ZKP
 * provers transform the same domain sizes over and over — STARK trace /
 * LDE / FRI folding loops, batched polynomial multiplication — and
 * regenerating the powers of the root of unity on every call is pure
 * waste. The cache hands out shared_ptr<const TwiddleTable> so hits are
 * one mutex acquisition plus a refcount, safe to use from the host
 * thread pool.
 *
 * Eviction is LRU, bounded both by entry count and by total bytes so a
 * sweep over many sizes cannot pin unbounded memory (a 2^24 BN254 table
 * alone is 256 MiB).
 */

#ifndef UNINTT_NTT_TWIDDLE_CACHE_HH
#define UNINTT_NTT_TWIDDLE_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <utility>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/twiddle.hh"

namespace unintt {

/** Hit/miss counters of one cache; monotone over the process. */
struct CacheCounters
{
    uint64_t hits = 0;
    uint64_t misses = 0;
};

/** Thread-safe LRU cache of TwiddleTable<F> keyed by (size, direction). */
template <NttField F>
class TwiddleCache
{
  public:
    /**
     * @param max_entries LRU bound on cached tables.
     * @param max_bytes   LRU bound on the summed table footprint.
     */
    explicit TwiddleCache(size_t max_entries = 32,
                          size_t max_bytes = 256ULL << 20)
        : maxEntries_(max_entries), maxBytes_(max_bytes)
    {
    }

    /**
     * The table for size-@p n transforms in direction @p dir, built on
     * the first request and shared afterwards. @p hit_out (optional)
     * reports whether this call was served from the cache.
     */
    std::shared_ptr<const TwiddleTable<F>>
    get(size_t n, NttDirection dir, bool *hit_out = nullptr)
    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (auto it = lru_.begin(); it != lru_.end(); ++it) {
            if (it->n == n && it->dir == dir) {
                counters_.hits++;
                if (hit_out)
                    *hit_out = true;
                lru_.splice(lru_.begin(), lru_, it); // refresh recency
                return lru_.front().table;
            }
        }
        counters_.misses++;
        if (hit_out)
            *hit_out = false;
        Entry e;
        e.n = n;
        e.dir = dir;
        e.table = std::make_shared<const TwiddleTable<F>>(n, dir);
        bytes_ += e.table->sizeBytes();
        lru_.push_front(std::move(e));
        while (lru_.size() > maxEntries_ ||
               (bytes_ > maxBytes_ && lru_.size() > 1)) {
            bytes_ -= lru_.back().table->sizeBytes();
            lru_.pop_back(); // outstanding shared_ptrs stay valid
        }
        return lru_.front().table;
    }

    /** Drop every cached table (cold-cache tests). Counters persist. */
    void
    clear()
    {
        std::lock_guard<std::mutex> lk(mutex_);
        lru_.clear();
        bytes_ = 0;
    }

    /** Lifetime hit/miss counters. */
    CacheCounters
    counters() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return counters_;
    }

    /** Cached tables currently resident. */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return lru_.size();
    }

    /** The process-wide instance for field F. */
    static TwiddleCache &
    global()
    {
        static TwiddleCache cache;
        return cache;
    }

  private:
    struct Entry
    {
        size_t n;
        NttDirection dir;
        std::shared_ptr<const TwiddleTable<F>> table;
    };

    mutable std::mutex mutex_;
    std::list<Entry> lru_; // front = most recently used
    size_t maxEntries_;
    size_t maxBytes_;
    size_t bytes_ = 0;
    CacheCounters counters_;
};

/** Cached lookup on the field's global cache. */
template <NttField F>
std::shared_ptr<const TwiddleTable<F>>
cachedTwiddles(size_t n, NttDirection dir, bool *hit_out = nullptr)
{
    return TwiddleCache<F>::global().get(n, dir, hit_out);
}

} // namespace unintt

#endif // UNINTT_NTT_TWIDDLE_CACHE_HH
