/**
 * @file
 * Negacyclic NTT: the transform that diagonalizes multiplication in
 * F[X]/(X^n + 1), the ring of RLWE-based homomorphic encryption and of
 * several hash-based proof systems. Implemented by the standard
 * psi-twist: scale input i by psi^i (psi a primitive 2n-th root, so
 * psi^2 = w), run the cyclic NTT, and un-twist after the inverse.
 * Requires one extra bit of two-adicity compared to the cyclic case.
 */

#ifndef UNINTT_NTT_NEGACYCLIC_HH
#define UNINTT_NTT_NEGACYCLIC_HH

#include <vector>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/radix2.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

/**
 * Forward negacyclic NTT, natural order in and out. After this,
 * pointwise products correspond to multiplication mod X^n + 1.
 */
template <NttField F>
void
negacyclicNttForward(std::vector<F> &a)
{
    size_t n = a.size();
    UNINTT_ASSERT(isPow2(n), "size must be a power of two");
    unsigned log_n = log2Exact(n);
    UNINTT_ASSERT(log_n + 1 <= F::kTwoAdicity,
                  "field lacks the 2n-th root for the psi twist");
    F psi = F::rootOfUnity(log_n + 1);
    F power = F::one();
    for (auto &v : a) {
        v *= power;
        power *= psi;
    }
    nttForwardInPlace(a);
}

/** Inverse negacyclic NTT, natural order in and out. */
template <NttField F>
void
negacyclicNttInverse(std::vector<F> &a)
{
    size_t n = a.size();
    UNINTT_ASSERT(isPow2(n), "size must be a power of two");
    unsigned log_n = log2Exact(n);
    nttInverseInPlace(a);
    F psi_inv = F::rootOfUnity(log_n + 1).inverse();
    F power = F::one();
    for (auto &v : a) {
        v *= power;
        power *= psi_inv;
    }
}

/**
 * Reference negacyclic convolution: out[k] = sum_{i+j = k} a_i b_j
 * minus the wrapped terms (X^n = -1).
 */
template <NttField F>
std::vector<F>
naiveNegacyclicConvolution(const std::vector<F> &a, const std::vector<F> &b)
{
    UNINTT_ASSERT(a.size() == b.size(), "operand sizes must match");
    size_t n = a.size();
    std::vector<F> out(n, F::zero());
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            F term = a[i] * b[j];
            size_t k = i + j;
            if (k < n)
                out[k] += term;
            else
                out[k - n] -= term;
        }
    }
    return out;
}

} // namespace unintt

#endif // UNINTT_NTT_NEGACYCLIC_HH
