/**
 * @file
 * Public vocabulary types of the NTT layer: transform direction and
 * element ordering, plus a convenience dispatcher over the reference CPU
 * implementations. The GPU-simulated engines (src/unintt, src/baselines)
 * share these types.
 *
 * Ordering conventions used across the library:
 *  - the forward DIF transform maps Natural -> BitReversed;
 *  - the inverse DIT transform maps BitReversed -> Natural;
 * so a forward/inverse round trip needs no explicit permutation. This is
 * the standard trick ZKP provers use: pointwise products and inverse
 * transforms consume the bit-reversed order directly.
 */

#ifndef UNINTT_NTT_NTT_HH
#define UNINTT_NTT_NTT_HH

#include <cstdint>
#include <string>

namespace unintt {

/** Transform direction. */
enum class NttDirection { Forward, Inverse };

/** Element ordering of a transform's input or output. */
enum class Ordering { Natural, BitReversed };

/** Printable name of a direction. */
inline const char *
toString(NttDirection dir)
{
    return dir == NttDirection::Forward ? "forward" : "inverse";
}

/** Printable name of an ordering. */
inline const char *
toString(Ordering ord)
{
    return ord == Ordering::Natural ? "natural" : "bit-reversed";
}

} // namespace unintt

#endif // UNINTT_NTT_NTT_HH
