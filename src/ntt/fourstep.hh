/**
 * @file
 * The four-step (Bailey) NTT decomposition. A size n = n1*n2 transform
 * becomes: n2 column NTTs of size n1, a pointwise multiplication by the
 * inter-step twiddles w_n^(k1*n2'), n1 row NTTs of size n2, and a final
 * transpose.
 *
 * This is both the correctness reference for the UniNTT decomposition
 * (which fuses the twiddle step away) and, in src/baselines, the
 * conventional multi-GPU algorithm whose explicit transpose turns into
 * an all-to-all exchange.
 */

#ifndef UNINTT_NTT_FOURSTEP_HH
#define UNINTT_NTT_FOURSTEP_HH

#include <vector>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/radix2.hh"
#include "ntt/twiddle.hh"
#include "ntt/twiddle_cache.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

/**
 * Four-step NTT, natural order in and out.
 *
 * Layout: the input is read as a row-major n1 x n2 matrix
 * (x[r*n2 + c]); the output satisfies X[k1 + n1*k2] = C[k1][k2].
 *
 * @param x   input of size n1*n2 (power of two).
 * @param n1  number of rows (power of two dividing x.size()).
 * @param dir direction; Inverse applies the full n^-1 scaling.
 */
template <NttField F>
std::vector<F>
fourStepNtt(const std::vector<F> &x, size_t n1, NttDirection dir)
{
    const size_t n = x.size();
    UNINTT_ASSERT(isPow2(n), "size must be a power of two");
    UNINTT_ASSERT(isPow2(n1) && n % n1 == 0, "invalid row count");
    const size_t n2 = n / n1;

    F root = F::rootOfUnity(log2Exact(n));
    if (dir == NttDirection::Inverse)
        root = root.inverse();

    std::vector<F> a = x;

    // Step 1: size-n1 NTT down each column (stride n2).
    if (n1 > 1) {
        auto tw1 = cachedTwiddleSlabs<F>(n1, dir);
        std::vector<F> col(n1);
        for (size_t c = 0; c < n2; ++c) {
            for (size_t r = 0; r < n1; ++r)
                col[r] = a[r * n2 + c];
            nttDif(col.data(), n1, *tw1);
            bitReversePermute(col.data(), n1);
            for (size_t r = 0; r < n1; ++r)
                a[r * n2 + c] = col[r];
        }
    }

    // Step 2: inter-step twiddles A[k1][c] *= root^(k1*c).
    for (size_t k1 = 1; k1 < n1; ++k1) {
        F wk = root.pow(k1);
        F w = F::one();
        for (size_t c = 0; c < n2; ++c) {
            a[k1 * n2 + c] *= w;
            w *= wk;
        }
    }

    // Step 3: size-n2 NTT along each row (contiguous).
    if (n2 > 1) {
        auto tw2 = cachedTwiddleSlabs<F>(n2, dir);
        for (size_t r = 0; r < n1; ++r) {
            nttDif(a.data() + r * n2, n2, *tw2);
            bitReversePermute(a.data() + r * n2, n2);
        }
    }

    // Step 4: transpose, X[k1 + n1*k2] = A[k1][k2].
    std::vector<F> out(n);
    for (size_t k1 = 0; k1 < n1; ++k1)
        for (size_t k2 = 0; k2 < n2; ++k2)
            out[k1 + n1 * k2] = a[k1 * n2 + k2];

    if (dir == NttDirection::Inverse) {
        // nttDif tables above were built for the requested direction but
        // the per-subtransform scaling was skipped; apply 1/n once.
        F scale = inverseScale<F>(n);
        fieldKernels<F>().scaleSpan(out.data(), scale, out.size());
    }
    return out;
}

} // namespace unintt

#endif // UNINTT_NTT_FOURSTEP_HH
