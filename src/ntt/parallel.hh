/**
 * @file
 * Multithreaded host NTT: the radix-2 stages parallelized over
 * std::thread workers. Serves as the multicore-CPU baseline of the
 * motivation story (provers start on CPUs) and as a stress test of
 * the transform's data-parallel structure: butterflies within a stage
 * are independent, so each stage splits into disjoint index ranges
 * with a barrier between stages.
 */

#ifndef UNINTT_NTT_PARALLEL_HH
#define UNINTT_NTT_PARALLEL_HH

#include <thread>
#include <vector>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/twiddle.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

/**
 * Parallel forward DIF transform: natural order in, bit-reversed out
 * (the engine convention). Spawns @p num_threads workers per stage;
 * 0 selects the hardware concurrency.
 */
template <NttField F>
void
nttParallel(std::vector<F> &a, NttDirection dir, unsigned num_threads = 0)
{
    const size_t n = a.size();
    UNINTT_ASSERT(isPow2(n), "size must be a power of two");
    if (num_threads == 0)
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    // Below this many butterflies per stage, threads cost more than
    // they save.
    if (n < (1u << 12) || num_threads == 1) {
        nttNoPermute(a, dir);
        return;
    }

    TwiddleTable<F> tw(n, dir);
    const unsigned log_n = log2Exact(n);

    // Stage order: DIF descends for forward, DIT ascends for inverse.
    auto run_stage = [&](unsigned s) {
        const size_t half = n >> (s + 1);
        // Partition the n/2 butterflies of this stage into contiguous
        // index ranges; butterfly t of the stage works on
        // (block, j) = (t / half, t mod half).
        const size_t total = n / 2;
        const size_t per_thread = (total + num_threads - 1) / num_threads;
        std::vector<std::thread> workers;
        for (unsigned t = 0; t < num_threads; ++t) {
            size_t begin = t * per_thread;
            size_t end = std::min(total, begin + per_thread);
            if (begin >= end)
                break;
            workers.emplace_back([&, begin, end, s, half] {
                for (size_t bf = begin; bf < end; ++bf) {
                    size_t block = bf / half;
                    size_t j = bf % half;
                    size_t base = block * 2 * half + j;
                    F u = a[base];
                    F v = a[base + half];
                    if (dir == NttDirection::Forward) {
                        a[base] = u + v;
                        a[base + half] = (u - v) * tw[j << s];
                    } else {
                        v = v * tw[j << s];
                        a[base] = u + v;
                        a[base + half] = u - v;
                    }
                }
            });
        }
        for (auto &w : workers)
            w.join();
    };

    if (dir == NttDirection::Forward) {
        for (unsigned s = 0; s < log_n; ++s)
            run_stage(s);
    } else {
        for (unsigned s = log_n; s-- > 0;)
            run_stage(s);
        F scale = inverseScale<F>(n);
        for (auto &v : a)
            v *= scale;
    }
}

} // namespace unintt

#endif // UNINTT_NTT_PARALLEL_HH
