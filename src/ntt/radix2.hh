/**
 * @file
 * In-place iterative radix-2 transforms:
 *
 *  - nttDif: Gentleman–Sande decimation-in-frequency butterflies,
 *    Natural input -> BitReversed output;
 *  - nttDit: Cooley–Tukey decimation-in-time butterflies,
 *    BitReversed input -> Natural output.
 *
 * The pair composes without any permutation pass, which is the layout
 * every engine in this library uses internally. Natural->Natural
 * wrappers that add the explicit bit-reversal are provided for callers
 * that need ordered output.
 */

#ifndef UNINTT_NTT_RADIX2_HH
#define UNINTT_NTT_RADIX2_HH

#include <vector>

#include "field/dispatch.hh"
#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/twiddle.hh"
#include "ntt/twiddle_cache.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

/**
 * Decimation-in-frequency butterflies over @p a (size n, natural order).
 * Output is in bit-reversed order. @p tw must be a forward table of
 * size n (for Inverse semantics build the table with w^-1 and scale
 * afterwards — see nttInverseInPlace).
 */
template <NttField F>
void
nttDif(F *a, size_t n, const TwiddleTable<F> &tw)
{
    UNINTT_ASSERT(tw.n() == n, "twiddle table size mismatch");
    const FieldKernels<F> &fk = fieldKernels<F>();
    const F *twp = &tw[0];
    for (size_t half = n / 2; half >= 1; half /= 2) {
        size_t stride = n / (2 * half); // exponent step at this stage
        for (size_t start = 0; start < n; start += 2 * half)
            fk.bflyFwd(a + start, a + start + half, twp, stride, half);
    }
}

/**
 * nttDif over per-stage compacted twiddle slabs (twiddle_cache.hh):
 * stage s reads sl.slab(s)[j] — the unit-stride image of tw[j << s] —
 * so the inner loop walks the twiddles contiguously instead of at
 * stride 1 << s. Bit-identical to the table overload.
 */
template <NttField F>
void
nttDif(F *a, size_t n, const TwiddleSlabs<F> &sl)
{
    UNINTT_ASSERT(sl.n() == n, "twiddle slab size mismatch");
    const FieldKernels<F> &fk = fieldKernels<F>();
    unsigned s = 0;
    for (size_t half = n / 2; half >= 1; half /= 2, ++s) {
        const F *tw = sl.slab(s);
        for (size_t start = 0; start < n; start += 2 * half)
            fk.bflyFwd(a + start, a + start + half, tw, 1, half);
    }
}

/**
 * Decimation-in-time butterflies over @p a (size n, bit-reversed order).
 * Output is in natural order.
 */
template <NttField F>
void
nttDit(F *a, size_t n, const TwiddleTable<F> &tw)
{
    UNINTT_ASSERT(tw.n() == n, "twiddle table size mismatch");
    const FieldKernels<F> &fk = fieldKernels<F>();
    const F *twp = &tw[0];
    for (size_t half = 1; half < n; half *= 2) {
        size_t stride = n / (2 * half);
        for (size_t start = 0; start < n; start += 2 * half)
            fk.bflyInv(a + start, a + start + half, twp, stride, half);
    }
}

/** nttDit over compacted twiddle slabs; see the nttDif slab overload. */
template <NttField F>
void
nttDit(F *a, size_t n, const TwiddleSlabs<F> &sl)
{
    UNINTT_ASSERT(sl.n() == n, "twiddle slab size mismatch");
    const FieldKernels<F> &fk = fieldKernels<F>();
    unsigned s = log2Exact(n);
    for (size_t half = 1; half < n; half *= 2) {
        const F *tw = sl.slab(--s);
        for (size_t start = 0; start < n; start += 2 * half)
            fk.bflyInv(a + start, a + start + half, tw, 1, half);
    }
}

/**
 * Forward NTT, natural order in and out (adds the bit-reversal pass).
 * Twiddles come from the per-field slab cache (backed by the
 * TwiddleCache), so repeated transforms of one size (prover loops) skip
 * the root-of-unity regeneration and read contiguously.
 */
template <NttField F>
void
nttForwardInPlace(std::vector<F> &a)
{
    auto sl = cachedTwiddleSlabs<F>(a.size(), NttDirection::Forward);
    nttDif(a.data(), a.size(), *sl);
    bitReversePermute(a.data(), a.size());
}

/**
 * Inverse NTT, natural order in and out, including the n^-1 scaling.
 */
template <NttField F>
void
nttInverseInPlace(std::vector<F> &a)
{
    auto sl = cachedTwiddleSlabs<F>(a.size(), NttDirection::Inverse);
    bitReversePermute(a.data(), a.size());
    nttDit(a.data(), a.size(), *sl);
    F scale = inverseScale<F>(a.size());
    fieldKernels<F>().scaleSpan(a.data(), scale, a.size());
}

/**
 * One transform in the permutation-free convention:
 * Forward maps Natural -> BitReversed, Inverse maps BitReversed ->
 * Natural (with n^-1 scaling). This is the fast path engines replicate.
 */
template <NttField F>
void
nttNoPermute(std::vector<F> &a, NttDirection dir)
{
    auto sl = cachedTwiddleSlabs<F>(a.size(), dir);
    if (dir == NttDirection::Forward) {
        nttDif(a.data(), a.size(), *sl);
    } else {
        nttDit(a.data(), a.size(), *sl);
        F scale = inverseScale<F>(a.size());
        fieldKernels<F>().scaleSpan(a.data(), scale, a.size());
    }
}

} // namespace unintt

#endif // UNINTT_NTT_RADIX2_HH
