#include "util/cli.hh"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace unintt {

CliParser::CliParser(std::string description)
    : description_(std::move(description))
{
}

void
CliParser::addInt(const std::string &name, int64_t def,
                  const std::string &help)
{
    flags_[name] = Flag{Kind::Int, help, std::to_string(def)};
    order_.push_back(name);
}

void
CliParser::addString(const std::string &name, const std::string &def,
                     const std::string &help)
{
    flags_[name] = Flag{Kind::String, help, def};
    order_.push_back(name);
}

void
CliParser::addBool(const std::string &name, bool def,
                   const std::string &help)
{
    flags_[name] = Flag{Kind::Bool, help, def ? "1" : "0"};
    order_.push_back(name);
}

void
CliParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '%s'", arg.c_str());

        std::string name, value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(2, eq - 2);
            value = arg.substr(eq + 1);
        } else {
            name = arg.substr(2);
        }

        auto it = flags_.find(name);
        if (it == flags_.end())
            fatal("unknown flag '--%s' (try --help)", name.c_str());

        Flag &flag = it->second;
        if (eq == std::string::npos) {
            if (flag.kind == Kind::Bool) {
                value = "1";
            } else {
                if (i + 1 >= argc)
                    fatal("flag '--%s' needs a value", name.c_str());
                value = argv[++i];
            }
        }
        if (flag.kind == Kind::Bool) {
            if (value == "true")
                value = "1";
            else if (value == "false")
                value = "0";
            if (value != "0" && value != "1")
                fatal("flag '--%s' expects a boolean, got '%s'",
                      name.c_str(), value.c_str());
        }
        if (flag.kind == Kind::Int) {
            char *end = nullptr;
            std::strtoll(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0')
                fatal("flag '--%s' expects an integer, got '%s'",
                      name.c_str(), value.c_str());
        }
        flag.value = value;
    }
}

const CliParser::Flag &
CliParser::find(const std::string &name, Kind kind) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        panic("lookup of unregistered flag '%s'", name.c_str());
    if (it->second.kind != kind)
        panic("flag '%s' looked up with the wrong type", name.c_str());
    return it->second;
}

int64_t
CliParser::getInt(const std::string &name) const
{
    return std::strtoll(find(name, Kind::Int).value.c_str(), nullptr, 0);
}

std::string
CliParser::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

bool
CliParser::getBool(const std::string &name) const
{
    return find(name, Kind::Bool).value == "1";
}

void
CliParser::usage() const
{
    std::printf("%s\n\nflags:\n", description_.c_str());
    for (const auto &name : order_) {
        const Flag &flag = flags_.at(name);
        std::printf("  --%-20s %s (default: %s)\n", name.c_str(),
                    flag.help.c_str(), flag.value.c_str());
    }
}

} // namespace unintt
