/**
 * @file
 * Lightweight named-counter statistics and summary helpers (mean,
 * geometric mean) used by the simulator and the benchmark harness.
 */

#ifndef UNINTT_UTIL_STATS_HH
#define UNINTT_UTIL_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace unintt {

/**
 * A set of named scalar statistics. Insertion order is preserved for
 * deterministic dumps.
 */
class StatSet
{
  public:
    /** Add @p delta to the counter called @p name (created at zero). */
    void add(const std::string &name, double delta);

    /** Overwrite the counter called @p name. */
    void set(const std::string &name, double value);

    /** Read a counter; returns 0 for unknown names. */
    double get(const std::string &name) const;

    /** True iff the counter exists. */
    bool has(const std::string &name) const;

    /** Merge all counters of @p other into this set (summing). */
    void merge(const StatSet &other);

    /** Reset all counters to zero (names are kept). */
    void clear();

    /** Names in insertion order. */
    const std::vector<std::string> &names() const { return order_; }

    /** Render as "name = value" lines. */
    std::string toString() const;

  private:
    std::map<std::string, double> values_;
    std::vector<std::string> order_;
};

/** Arithmetic mean of @p xs; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/**
 * The @p p-th percentile (0..100) of @p xs by the nearest-rank method;
 * 0 for an empty vector. Used for the service latency SLOs (p50 / p95 /
 * p99); nearest-rank keeps the result an actually observed latency.
 */
double percentile(std::vector<double> xs, double p);

/** Geometric mean of @p xs; all entries must be positive. */
double geomean(const std::vector<double> &xs);

/** Human-readable byte count ("1.50 GiB"). */
std::string formatBytes(double bytes);

/** Human-readable element-per-second rate ("3.2 Gelem/s"). */
std::string formatRate(double per_second);

/** Human-readable duration from seconds ("12.3 ms"). */
std::string formatSeconds(double seconds);

} // namespace unintt

#endif // UNINTT_UTIL_STATS_HH
