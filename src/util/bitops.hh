/**
 * @file
 * Bit-manipulation helpers used throughout the NTT kernels: power-of-two
 * predicates, integer log2, bit reversal and general digit reversal.
 */

#ifndef UNINTT_UTIL_BITOPS_HH
#define UNINTT_UTIL_BITOPS_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace unintt {

/** True iff @p x is a power of two (0 is not). */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log2(x); undefined for x == 0. */
constexpr unsigned
log2Floor(uint64_t x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** Exact log2 of a power of two. */
constexpr unsigned
log2Exact(uint64_t x)
{
    return log2Floor(x);
}

/** Smallest power of two >= x (x must be <= 2^63). */
constexpr uint64_t
nextPow2(uint64_t x)
{
    uint64_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

/** Reverse the low @p bits bits of @p x. */
constexpr uint64_t
bitReverse(uint64_t x, unsigned bits)
{
    uint64_t r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

/**
 * Reverse the base-@p radix digits of @p x, where @p x has @p ndigits
 * digits. Generalizes bitReverse to mixed-radix orderings; bitReverse is
 * the radix-2 special case.
 */
constexpr uint64_t
digitReverse(uint64_t x, uint64_t radix, unsigned ndigits)
{
    uint64_t r = 0;
    for (unsigned i = 0; i < ndigits; ++i) {
        r = r * radix + (x % radix);
        x /= radix;
    }
    return r;
}

/**
 * Reverse digits of @p x where digit i has the given mixed radix.
 * Digit 0 is the least-significant digit of x; the output interprets the
 * digits in reverse order with the radices likewise reversed.
 *
 * Concretely, with radices (r0, r1, ..., rk) and
 * x = d0 + r0*(d1 + r1*(d2 + ...)), the result is
 * dk + rk'*(d{k-1} + ...) where the primed radices are the reversed list.
 */
uint64_t mixedRadixReverse(uint64_t x, const std::vector<uint64_t> &radices);

/** In-place bit-reversal permutation of a length-2^bits array. */
template <typename T>
void
bitReversePermute(T *data, std::size_t n)
{
    unsigned bits = log2Exact(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t j = bitReverse(i, bits);
        if (i < j)
            std::swap(data[i], data[j]);
    }
}

} // namespace unintt

#endif // UNINTT_UTIL_BITOPS_HH
