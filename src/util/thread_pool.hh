/**
 * @file
 * Work-stealing thread pool for the host-side functional execution.
 *
 * The simulator computes every simulated GPU's butterflies on the host;
 * the pool lets those per-GPU (and per-tile) loops genuinely run
 * concurrently. Each worker owns a deque: it pops its own work LIFO and
 * steals FIFO from the other workers when it runs dry, so uneven task
 * ranges rebalance without a central queue bottleneck.
 *
 * Determinism contract: parallelFor() invokes the body exactly once per
 * index and joins before returning. Callers hand it bodies whose writes
 * are disjoint across indices, so the result is bit-identical for every
 * thread count — scheduling only decides who computes, never what.
 */

#ifndef UNINTT_UTIL_THREAD_POOL_HH
#define UNINTT_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace unintt {

/** Work-stealing pool; one instance is shared process-wide (global()). */
class ThreadPool
{
  public:
    /** Spawn a pool with @p workers worker threads (may be 0). */
    explicit ThreadPool(unsigned workers);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution lanes: the workers plus the calling thread. */
    unsigned lanes() const { return static_cast<unsigned>(queues_.size()) + 1; }

    /**
     * Run @p range_fn over disjoint contiguous subranges covering
     * [0, count), using at most @p max_lanes threads (0 = all lanes).
     * The calling thread participates and the call returns only after
     * every index has been processed (a barrier). Ranges are oversplit
     * relative to the lane count so stealing can rebalance uneven work.
     */
    void parallelFor(size_t count, unsigned max_lanes,
                     const std::function<void(size_t, size_t)> &range_fn);

    /** The shared pool (created on first use with defaultLanes()). */
    static ThreadPool &global();

    /**
     * Resize the shared pool to @p lanes execution lanes (>= 1). Not
     * safe while other threads are inside the old pool; call between
     * runs (CLI startup, bench sweep points).
     */
    static void setGlobalThreads(unsigned lanes);

    /** Lane count the shared pool is (or would be) created with. */
    static unsigned defaultLanes();

  private:
    struct WorkQueue
    {
        std::deque<std::function<void()>> tasks;
        std::mutex mutex;
    };

    void workerLoop(unsigned self);
    void submit(std::function<void()> task);
    /** Pop own work or steal someone else's; false if nothing found. */
    bool tryRunOne(unsigned self);
    /** Steal a task from any queue (for non-worker helper threads). */
    bool tryRunOneExternal();

    std::vector<std::unique_ptr<WorkQueue>> queues_;
    std::vector<std::thread> threads_;
    std::mutex sleepMutex_;
    std::condition_variable sleepCv_;
    std::atomic<uint64_t> pending_{0};
    std::atomic<uint64_t> nextQueue_{0};
    std::atomic<bool> stop_{false};
};

/**
 * Convenience wrapper used by the engines: run @p fn(i) for i in
 * [0, count) on the shared pool with at most @p max_lanes lanes.
 * Runs inline (no pool, no threads spawned) when a single lane is
 * requested, there is only one index, or the estimated total work
 * @p count * @p work_per_index is too small to amortize the fork/join —
 * the output is identical either way, only the schedule changes.
 */
template <typename Fn>
void
hostParallelFor(size_t count, uint64_t work_per_index, unsigned max_lanes,
                Fn &&fn)
{
    constexpr uint64_t kMinParallelWork = 1ULL << 14;
    if (count == 0)
        return;
    const bool serial = max_lanes == 1 || count == 1 ||
                        static_cast<uint64_t>(count) * work_per_index <
                            kMinParallelWork;
    if (serial) {
        for (size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    ThreadPool::global().parallelFor(
        count, max_lanes, [&fn](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i)
                fn(i);
        });
}

} // namespace unintt

#endif // UNINTT_UTIL_THREAD_POOL_HH
