/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: fatal() reports user errors (bad
 * configuration, invalid arguments) and exits cleanly; panic() reports
 * internal invariant violations (library bugs) and aborts. inform() and
 * warn() print status without terminating.
 */

#ifndef UNINTT_UTIL_LOGGING_HH
#define UNINTT_UTIL_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace unintt {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet = 0, Warn = 1, Inform = 2, Debug = 3 };

/**
 * Global logging configuration. Benches lower the level to keep the
 * emitted tables clean; tests raise it when diagnosing failures.
 *
 * emit() is thread-safe: each message is composed into one line and
 * written under a mutex, so concurrent service jobs never interleave
 * characters. Per-thread attribution tags (ScopedLogTag) prefix the
 * line, making interleaved job/tenant logs attributable.
 */
class Logger
{
  public:
    /** Access the process-wide logger. */
    static Logger &instance();

    /** Current verbosity threshold. */
    LogLevel level() const
    {
        return static_cast<LogLevel>(
            level_.load(std::memory_order_relaxed));
    }

    /** Change the verbosity threshold. */
    void
    setLevel(LogLevel level)
    {
        level_.store(static_cast<int>(level), std::memory_order_relaxed);
    }

    /**
     * Emit one formatted message if @p level passes the threshold.
     * The full line (tag, thread attribution, body) is written in one
     * locked operation.
     *
     * @param level Severity of this message.
     * @param tag   Short prefix such as "info" or "warn".
     * @param msg   Fully formatted message body.
     */
    void emit(LogLevel level, const char *tag, const std::string &msg);

    /**
     * Redirect complete lines to @p sink instead of stderr (tests
     * capture output this way); an empty function restores stderr.
     * The sink is invoked under the same mutex that serializes
     * emission, so it needs no locking of its own.
     */
    void setSink(std::function<void(const std::string &)> sink);

  private:
    Logger() = default;

    std::atomic<int> level_{static_cast<int>(LogLevel::Inform)};
    std::mutex mutex_;
    std::function<void(const std::string &)> sink_;
};

/**
 * RAII per-thread log attribution: while alive, every line this thread
 * emits carries "[tag]" after the severity — the proving service tags
 * worker output with "tenant<T>/job<J>" so interleaved logs remain
 * attributable. Tags nest; the previous tag is restored on
 * destruction.
 */
class ScopedLogTag
{
  public:
    explicit ScopedLogTag(std::string tag);
    ~ScopedLogTag();

    ScopedLogTag(const ScopedLogTag &) = delete;
    ScopedLogTag &operator=(const ScopedLogTag &) = delete;

    /** The calling thread's active tag ("" when untagged). */
    static const std::string &current();

  private:
    std::string prev_;
};

namespace detail {

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list args);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Informative status message; users should not worry about it. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Something may not behave as well as it should, but can continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug-level message, suppressed unless LogLevel::Debug is active. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Unrecoverable *user* error (bad configuration, invalid argument).
 * Prints the message and exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Unrecoverable *internal* error (a library bug). Prints the message
 * and aborts so a core dump / debugger can catch it.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless @p cond holds; used for internal invariants. */
#define UNINTT_ASSERT(cond, msg)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::unintt::panic("assertion '%s' failed: %s", #cond, (msg));   \
        }                                                                 \
    } while (0)

} // namespace unintt

#endif // UNINTT_UTIL_LOGGING_HH
