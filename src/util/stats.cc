#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace unintt {

void
StatSet::add(const std::string &name, double delta)
{
    auto it = values_.find(name);
    if (it == values_.end()) {
        values_.emplace(name, delta);
        order_.push_back(name);
    } else {
        it->second += delta;
    }
}

void
StatSet::set(const std::string &name, double value)
{
    auto it = values_.find(name);
    if (it == values_.end()) {
        values_.emplace(name, value);
        order_.push_back(name);
    } else {
        it->second = value;
    }
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &name : other.order_)
        add(name, other.get(name));
}

void
StatSet::clear()
{
    for (auto &kv : values_)
        kv.second = 0.0;
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &name : order_)
        os << name << " = " << get(name) << "\n";
    return os.str();
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    UNINTT_ASSERT(p >= 0.0 && p <= 100.0,
                  "percentile rank must be in [0, 100]");
    std::sort(xs.begin(), xs.end());
    // Nearest rank: the smallest value with at least p% of the sample
    // at or below it.
    const double rank =
        std::ceil(p / 100.0 * static_cast<double>(xs.size()));
    size_t idx = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    if (idx >= xs.size())
        idx = xs.size() - 1;
    return xs[idx];
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        UNINTT_ASSERT(x > 0.0, "geomean requires positive inputs");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

namespace {

std::string
formatWithUnits(double value, const char *const *units, int nunits,
                double step)
{
    int u = 0;
    while (value >= step && u + 1 < nunits) {
        value /= step;
        ++u;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[u]);
    return buf;
}

} // namespace

std::string
formatBytes(double bytes)
{
    static const char *const units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    return formatWithUnits(bytes, units, 5, 1024.0);
}

std::string
formatRate(double per_second)
{
    static const char *const units[] = {"elem/s", "Kelem/s", "Melem/s",
                                        "Gelem/s", "Telem/s"};
    return formatWithUnits(per_second, units, 5, 1000.0);
}

std::string
formatSeconds(double seconds)
{
    static const char *const units[] = {"ns", "us", "ms", "s"};
    double ns = seconds * 1e9;
    return formatWithUnits(ns, units, 4, 1000.0);
}

} // namespace unintt
