#include "util/thread_pool.hh"

#include <algorithm>
#include <chrono>

#include "util/logging.hh"

namespace unintt {

ThreadPool::ThreadPool(unsigned workers)
{
    queues_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<WorkQueue>());
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true);
    sleepCv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    const size_t w = queues_.size();
    UNINTT_ASSERT(w > 0, "submit on a worker-less pool");
    WorkQueue &q = *queues_[nextQueue_.fetch_add(1) % w];
    {
        std::lock_guard<std::mutex> lk(q.mutex);
        q.tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1);
    sleepCv_.notify_one();
}

bool
ThreadPool::tryRunOne(unsigned self)
{
    std::function<void()> task;
    // Own queue first, newest work (LIFO keeps caches warm)...
    {
        WorkQueue &q = *queues_[self];
        std::lock_guard<std::mutex> lk(q.mutex);
        if (!q.tasks.empty()) {
            task = std::move(q.tasks.back());
            q.tasks.pop_back();
        }
    }
    // ...then steal the oldest work of the next non-empty victim.
    if (!task) {
        const size_t w = queues_.size();
        for (size_t k = 1; k < w && !task; ++k) {
            WorkQueue &q = *queues_[(self + k) % w];
            std::lock_guard<std::mutex> lk(q.mutex);
            if (!q.tasks.empty()) {
                task = std::move(q.tasks.front());
                q.tasks.pop_front();
            }
        }
    }
    if (!task)
        return false;
    pending_.fetch_sub(1);
    task();
    return true;
}

bool
ThreadPool::tryRunOneExternal()
{
    std::function<void()> task;
    for (auto &qp : queues_) {
        std::lock_guard<std::mutex> lk(qp->mutex);
        if (!qp->tasks.empty()) {
            task = std::move(qp->tasks.front());
            qp->tasks.pop_front();
            break;
        }
    }
    if (!task)
        return false;
    pending_.fetch_sub(1);
    task();
    return true;
}

void
ThreadPool::workerLoop(unsigned self)
{
    while (!stop_.load()) {
        if (tryRunOne(self))
            continue;
        std::unique_lock<std::mutex> lk(sleepMutex_);
        sleepCv_.wait(lk, [this] {
            return stop_.load() || pending_.load() > 0;
        });
    }
}

void
ThreadPool::parallelFor(size_t count, unsigned max_lanes,
                        const std::function<void(size_t, size_t)> &range_fn)
{
    if (count == 0)
        return;
    unsigned lanes_avail = lanes();
    unsigned L = max_lanes == 0 ? lanes_avail
                                : std::min(max_lanes, lanes_avail);
    if (L <= 1 || count == 1 || queues_.empty()) {
        range_fn(0, count);
        return;
    }

    // Oversplit so the stealing can rebalance ranges of uneven cost.
    const size_t ntasks =
        std::min(count, static_cast<size_t>(L) * 4);

    struct Join
    {
        std::atomic<size_t> remaining;
        std::mutex mutex;
        std::condition_variable done;
    };
    auto join = std::make_shared<Join>();
    join->remaining.store(ntasks);

    auto run_range = [&range_fn, join](size_t begin, size_t end) {
        range_fn(begin, end);
        if (join->remaining.fetch_sub(1) == 1) {
            std::lock_guard<std::mutex> lk(join->mutex);
            join->done.notify_all();
        }
    };

    for (size_t t = 1; t < ntasks; ++t) {
        size_t begin = count * t / ntasks;
        size_t end = count * (t + 1) / ntasks;
        submit([run_range, begin, end] { run_range(begin, end); });
    }
    // The calling thread takes the first range, then helps drain the
    // queues until every range of this loop has completed.
    run_range(0, count * 1 / ntasks);
    while (join->remaining.load() > 0) {
        if (tryRunOneExternal())
            continue;
        std::unique_lock<std::mutex> lk(join->mutex);
        join->done.wait_for(lk, std::chrono::milliseconds(1), [&] {
            return join->remaining.load() == 0;
        });
    }
}

namespace {
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
} // namespace

unsigned
ThreadPool::defaultLanes()
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 4;
    return std::clamp(hw, 1u, 16u);
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(defaultLanes() - 1);
    return *g_pool;
}

void
ThreadPool::setGlobalThreads(unsigned lanes)
{
    UNINTT_ASSERT(lanes >= 1, "need at least one lane");
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    g_pool = std::make_unique<ThreadPool>(lanes - 1);
}

} // namespace unintt
