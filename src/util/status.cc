#include "util/status.hh"

namespace unintt {

const char *
toString(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "OK";
      case StatusCode::InvalidArgument:
        return "INVALID_ARGUMENT";
      case StatusCode::TransientFault:
        return "TRANSIENT_FAULT";
      case StatusCode::DataCorruption:
        return "DATA_CORRUPTION";
      case StatusCode::DeviceLost:
        return "DEVICE_LOST";
      case StatusCode::Overloaded:
        return "OVERLOADED";
      case StatusCode::QuotaExceeded:
        return "QUOTA_EXCEEDED";
      case StatusCode::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
    }
    return "?";
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    return std::string(unintt::toString(code_)) + ": " + message_;
}

} // namespace unintt
