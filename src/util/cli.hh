/**
 * @file
 * Minimal command-line flag parsing for the examples and benches.
 * Flags take the form --name=value or --name value; unknown flags are a
 * fatal user error so typos do not silently fall back to defaults.
 */

#ifndef UNINTT_UTIL_CLI_HH
#define UNINTT_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace unintt {

/**
 * Declarative flag parser. Register flags with defaults, then parse();
 * lookups after parsing return the user value or the default.
 */
class CliParser
{
  public:
    /** @param description one-line program description for --help. */
    explicit CliParser(std::string description);

    /** Register an integer flag. */
    void addInt(const std::string &name, int64_t def,
                const std::string &help);

    /** Register a string flag. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Register a boolean flag (--name or --name=0/1/true/false). */
    void addBool(const std::string &name, bool def, const std::string &help);

    /**
     * Parse argv. Handles --help by printing usage and exiting 0.
     * Unknown or malformed flags are fatal().
     */
    void parse(int argc, char **argv);

    /** Value of an integer flag. */
    int64_t getInt(const std::string &name) const;

    /** Value of a string flag. */
    std::string getString(const std::string &name) const;

    /** Value of a boolean flag. */
    bool getBool(const std::string &name) const;

  private:
    enum class Kind { Int, String, Bool };

    struct Flag
    {
        Kind kind;
        std::string help;
        std::string value; // textual representation
    };

    const Flag &find(const std::string &name, Kind kind) const;
    void usage() const;

    std::string description_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
};

} // namespace unintt

#endif // UNINTT_UTIL_CLI_HH
