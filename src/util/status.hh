/**
 * @file
 * Recoverable-error reporting.
 *
 * logging.hh's fatal()/panic() remain the right tool for unrecoverable
 * *user* errors (bad configuration, invalid CLI arguments) and internal
 * invariant violations. Runtime faults of a simulated machine — a
 * failed exchange, a corrupted payload, a lost device — are a different
 * category: callers can retry, re-plan onto fewer devices, or surface
 * the failure to their own caller. Status and Result<T> carry those
 * outcomes without exiting the process.
 */

#ifndef UNINTT_UTIL_STATUS_HH
#define UNINTT_UTIL_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace unintt {

/** Category of a recoverable runtime outcome. */
enum class StatusCode {
    Ok = 0,
    /** The request itself was malformed (recoverable user error). */
    InvalidArgument,
    /** A transient fault (link glitch) persisted past the retry bound. */
    TransientFault,
    /** Payload corruption that could not be repaired by retransmission. */
    DataCorruption,
    /** A device dropped out and no degraded plan could absorb it. */
    DeviceLost,
    /** Admission control shed the request: the service is at capacity. */
    Overloaded,
    /** The tenant exceeded its admission quota. */
    QuotaExceeded,
    /** The job missed its deadline and was cancelled. */
    DeadlineExceeded,
};

/** Printable name of a status code ("DEVICE_LOST" style). */
const char *toString(StatusCode code);

/** Outcome of an operation that may fail recoverably. */
class Status
{
  public:
    /** Success. */
    Status() = default;

    /** Failure of category @p code with a human-readable message. */
    static Status
    error(StatusCode code, std::string message)
    {
        UNINTT_ASSERT(code != StatusCode::Ok,
                      "error status needs a non-ok code");
        Status s;
        s.code_ = code;
        s.message_ = std::move(message);
        return s;
    }

    /** True iff the operation succeeded. */
    bool ok() const { return code_ == StatusCode::Ok; }

    /** Failure category (Ok when ok()). */
    StatusCode code() const { return code_; }

    /** Human-readable failure description (empty when ok()). */
    const std::string &message() const { return message_; }

    /** "DEVICE_LOST: <message>" (or "OK") for logs and tests. */
    std::string toString() const;

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/** Either a value of type T or the Status explaining its absence. */
template <typename T>
class Result
{
  public:
    /** Success carrying @p value. */
    Result(T value)
        : value_(std::move(value))
    {
    }

    /** Failure; @p status must be non-ok. */
    Result(Status status)
        : status_(std::move(status))
    {
        UNINTT_ASSERT(!status_.ok(), "an ok Result needs a value");
    }

    /** True iff a value is present. */
    bool ok() const { return status_.ok(); }

    /** The status (Ok when a value is present). */
    const Status &status() const { return status_; }

    /** The value; asserts ok(). */
    T &
    value()
    {
        UNINTT_ASSERT(value_.has_value(), "value() on an error Result");
        return *value_;
    }

    /** The value; asserts ok(). */
    const T &
    value() const
    {
        UNINTT_ASSERT(value_.has_value(), "value() on an error Result");
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace unintt

#endif // UNINTT_UTIL_STATUS_HH
