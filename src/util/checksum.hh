/**
 * @file
 * Payload checksums for exchange verification. The resilient exchange
 * paths checksum every chunk before it is sent and after it lands, so
 * in-flight corruption is detected before the data is consumed.
 *
 * The checksum XORs a bijectively mixed value per 64-bit word
 * (position-salted so reordered words do not cancel). Because the mixer
 * is a bijection, changing any single word — in particular flipping any
 * single bit — always changes that word's contribution and therefore
 * the checksum: single-bit-flip detection is guaranteed, not
 * probabilistic. Multi-word corruptions are caught with probability
 * 1 - 2^-64 per independent event.
 */

#ifndef UNINTT_UTIL_CHECKSUM_HH
#define UNINTT_UTIL_CHECKSUM_HH

#include <cstdint>
#include <cstring>

namespace unintt {

/** splitmix64 finalizer: a cheap bijective 64-bit mixer. */
inline uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Checksum @p bytes bytes at @p data (position-mixed XOR; see above). */
inline uint64_t
checksumBytes(const void *data, size_t bytes)
{
    const auto *p = static_cast<const unsigned char *>(data);
    const uint64_t salt = 0x9e3779b97f4a7c15ULL;
    uint64_t h = salt ^ static_cast<uint64_t>(bytes);
    size_t i = 0;
    uint64_t word_index = 1;
    for (; i + 8 <= bytes; i += 8, ++word_index) {
        uint64_t w;
        std::memcpy(&w, p + i, 8);
        h ^= mix64(w + salt * word_index);
    }
    if (i < bytes) {
        uint64_t w = 0;
        std::memcpy(&w, p + i, bytes - i);
        h ^= mix64(w + salt * word_index);
    }
    return h;
}

} // namespace unintt

#endif // UNINTT_UTIL_CHECKSUM_HH
