#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace unintt {

namespace {

/** The calling thread's attribution tag (see ScopedLogTag). */
std::string &
threadTag()
{
    thread_local std::string tag;
    return tag;
}

} // namespace

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) > level_.load(std::memory_order_relaxed))
        return;
    // Compose the complete line first, then write it in one locked
    // operation so lines from concurrent threads never interleave.
    std::string line(tag);
    const std::string &attribution = threadTag();
    if (!attribution.empty()) {
        line += " [";
        line += attribution;
        line += ']';
    }
    line += ": ";
    line += msg;
    std::lock_guard<std::mutex> lk(mutex_);
    if (sink_) {
        sink_(line);
        return;
    }
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

void
Logger::setSink(std::function<void(const std::string &)> sink)
{
    std::lock_guard<std::mutex> lk(mutex_);
    sink_ = std::move(sink);
}

ScopedLogTag::ScopedLogTag(std::string tag)
    : prev_(std::move(threadTag()))
{
    threadTag() = std::move(tag);
}

ScopedLogTag::~ScopedLogTag()
{
    threadTag() = std::move(prev_);
}

const std::string &
ScopedLogTag::current()
{
    return threadTag();
}

namespace detail {

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
format(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    Logger::instance().emit(LogLevel::Inform, "info",
                            detail::vformat(fmt, args));
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    Logger::instance().emit(LogLevel::Warn, "warn",
                            detail::vformat(fmt, args));
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    Logger::instance().emit(LogLevel::Debug, "debug",
                            detail::vformat(fmt, args));
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace unintt
