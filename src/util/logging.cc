#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace unintt {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::emit(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) > static_cast<int>(level_))
        return;
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

namespace detail {

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
format(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    Logger::instance().emit(LogLevel::Inform, "info",
                            detail::vformat(fmt, args));
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    Logger::instance().emit(LogLevel::Warn, "warn",
                            detail::vformat(fmt, args));
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    Logger::instance().emit(LogLevel::Debug, "debug",
                            detail::vformat(fmt, args));
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = detail::vformat(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace unintt
