/**
 * @file
 * Deterministic pseudo-random number generation for tests and workload
 * generators. A small xoshiro256** implementation is used so benchmark
 * inputs are reproducible across platforms and standard-library versions.
 */

#ifndef UNINTT_UTIL_RANDOM_HH
#define UNINTT_UTIL_RANDOM_HH

#include <cstdint>

namespace unintt {

/**
 * xoshiro256** 1.0 generator (public-domain algorithm by Blackman and
 * Vigna). Deterministic given a seed, unlike std::mt19937 whose
 * distributions vary across standard libraries.
 */
class Rng
{
  public:
    /** Seed with splitmix64 expansion of @p seed. */
    explicit Rng(uint64_t seed = 0x5eed1234abcd9876ULL) { reseed(seed); }

    /** Re-seed the generator. */
    void
    reseed(uint64_t seed)
    {
        uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t result = rotl(state_[1] * 5, 7) * 9;
        uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound) via rejection-free multiply-shift. */
    uint64_t
    below(uint64_t bound)
    {
        // 128-bit multiply keeps the bias below 2^-64, negligible here.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t
    splitmix64(uint64_t &x)
    {
        uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    uint64_t state_[4];
};

} // namespace unintt

#endif // UNINTT_UTIL_RANDOM_HH
