#include "util/table.hh"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace unintt {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    UNINTT_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    UNINTT_ASSERT(cells.size() == headers_.size(),
                  "row width must match header width");
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

std::string
Table::toString() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto rule = [&] {
        std::string line = "+";
        for (size_t w : widths)
            line += std::string(w + 2, '-') + "+";
        return line + "\n";
    };
    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            line += " " + cell + std::string(widths[c] - cell.size(), ' ')
                    + " |";
        }
        return line + "\n";
    };

    std::string out = rule() + renderRow(headers_) + rule();
    for (const auto &row : rows_) {
        if (row.empty())
            out += rule();
        else
            out += renderRow(row);
    }
    out += rule();
    return out;
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

std::string
fmtF(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
fmtI(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return std::string(out.rbegin(), out.rend());
}

std::string
fmtX(double ratio, int digits)
{
    return fmtF(ratio, digits) + "x";
}

} // namespace unintt
