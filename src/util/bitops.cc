#include "util/bitops.hh"

#include "util/logging.hh"

namespace unintt {

uint64_t
mixedRadixReverse(uint64_t x, const std::vector<uint64_t> &radices)
{
    // Decompose x into digits, least significant first.
    std::vector<uint64_t> digits(radices.size());
    for (size_t i = 0; i < radices.size(); ++i) {
        digits[i] = x % radices[i];
        x /= radices[i];
    }
    UNINTT_ASSERT(x == 0, "value out of range for given radices");

    // Reassemble with digit order and radix order reversed.
    uint64_t r = 0;
    for (size_t i = 0; i < radices.size(); ++i)
        r = r * radices[i] + digits[i];
    return r;
}

} // namespace unintt
