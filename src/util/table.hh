/**
 * @file
 * ASCII table rendering for the benchmark harness. Every figure/table
 * bench prints its rows through this printer so the output format matches
 * across experiments.
 */

#ifndef UNINTT_UTIL_TABLE_HH
#define UNINTT_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace unintt {

/**
 * A simple column-aligned ASCII table. Columns are sized to the widest
 * cell; numeric cells should be pre-formatted by the caller.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the table, including a header rule. */
    std::string toString() const;

    /** Render and write to stdout. */
    void print() const;

    /** Number of data rows added so far. */
    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    // A row with no cells encodes a separator.
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits significant decimals. */
std::string fmtF(double value, int digits = 2);

/** Format an integer with thousands separators ("1,048,576"). */
std::string fmtI(uint64_t value);

/** Format a ratio as "3.41x". */
std::string fmtX(double ratio, int digits = 2);

} // namespace unintt

#endif // UNINTT_UTIL_TABLE_HH
