/**
 * @file
 * unintt-cli: command-line front end over the simulation library.
 *
 *   unintt-cli plan     --log-n=24 --gpus=4 [--gpu=a100]
 *   unintt-cli schedule --log-n=24 --gpus=4 [--inverse] [--json]
 *   unintt-cli ntt      --log-n=24 --gpus=4 [--fabric=nvswitch]
 *                       [--field=goldilocks] [--batch=1] [--inverse]
 *                       [--trace=out.json] [--baseline=fourstep]
 *                       [--functional] [--threads=N]
 *   unintt-cli msm      --log-n=20 --gpus=4 [--g2]
 *   unintt-cli prover   --log-constraints=22 --gpus=8 [--proto=plonk]
 *   unintt-cli levels   --gpus=8
 *
 * Every subcommand prints simulated timelines built from the same
 * engines the benches use.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/fourstep_multigpu.hh"
#include "service/loadgen.hh"
#include "service/service.hh"
#include "field/babybear.hh"
#include "field/dispatch.hh"
#include "field/bn254.hh"
#include "field/goldilocks.hh"
#include "msm/pippenger.hh"
#include "sim/trace.hh"
#include "unintt/engine.hh"
#include "unintt/tunedb.hh"
#include "unintt/tuner.hh"
#include "util/cli.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "zkp/chaos.hh"
#include "zkp/prover.hh"
#include "zkp/serialize.hh"
#include "zkp/stark.hh"

#include <iostream>

namespace unintt {
namespace {

MultiGpuSystem
systemFromFlags(const CliParser &cli)
{
    return MultiGpuSystem{gpuModelByName(cli.getString("gpu")),
                          fabricByName(cli.getString("fabric")),
                          static_cast<unsigned>(cli.getInt("gpus"))};
}

/** Shared --tile-log2 flag (schedule and ntt subcommands). */
void
addTileFlag(CliParser &cli)
{
    cli.addInt("tile-log2", 0,
               "log2 of the host-resident tile for fused local "
               "passes (0 = auto from the cache model)");
    cli.addString("isa", "auto",
                  "host acceleration path: auto, scalar, avx2, "
                  "avx512, neon (UNINTT_FORCE_ISA overrides)");
    cli.addString("tune-db", "",
                  "tuning DB path: '' = tuning/tunedb.json, 'off' "
                  "disables DB consultation (UNINTT_TUNEDB overrides)");
}

UniNttConfig
configFromFlags(const CliParser &cli)
{
    UniNttConfig cfg;
    cfg.hostTileLog2 =
        static_cast<unsigned>(cli.getInt("tile-log2"));
    if (!parseIsaPath(cli.getString("isa"), &cfg.isaPath))
        fatal("unknown --isa '%s' (auto, scalar, avx2, avx512, neon)",
              cli.getString("isa").c_str());
    cfg.tuneDbPath = cli.getString("tune-db");
    return cfg;
}

/** Split a comma-separated flag value ("14,16,18"). */
std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > pos)
            out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

void
addCommonFlags(CliParser &cli)
{
    cli.addInt("gpus", 4, "number of simulated GPUs (power of two)");
    cli.addString("gpu", "a100", "GPU model: a100, h100, rtx4090");
    cli.addString("fabric", "nvswitch", "fabric: nvswitch, ring, pcie");
}

int
cmdPlan(int argc, char **argv)
{
    CliParser cli("print the hierarchical decomposition");
    cli.addInt("log-n", 24, "log2 of the transform size");
    addCommonFlags(cli);
    cli.parse(argc, argv);
    auto sys = systemFromFlags(cli);
    auto pl = planNtt(static_cast<unsigned>(cli.getInt("log-n")), sys, 8);
    std::printf("machine: %s\n", sys.description().c_str());
    std::printf("plan:    %s\n", pl.toString().c_str());
    std::printf("chunk:   %s elements per GPU\n",
                fmtI(pl.chunkElems()).c_str());
    return 0;
}

template <NttField F>
int
runSchedule(const CliParser &cli)
{
    auto sys = systemFromFlags(cli);
    unsigned logN = static_cast<unsigned>(cli.getInt("log-n"));
    size_t batch = static_cast<size_t>(cli.getInt("batch"));
    NttDirection dir = cli.getBool("inverse") ? NttDirection::Inverse
                                              : NttDirection::Forward;

    UniNttConfig cfg = configFromFlags(cli);
    const IsaPath isa = resolveIsaPath(cfg.isaPath);
    UniNttEngine<F> engine(sys, cfg);
    bool plan_hit = false, sched_hit = false, tuned = false;
    auto sched = engine.schedule(logN, dir, batch, &plan_hit, &sched_hit,
                                 &tuned);

    unsigned fused_groups = 0, tile_log2 = 0;
    for (const auto &st : sched->steps) {
        if (st.kind != StepKind::FusedLocalPass)
            continue;
        ++fused_groups;
        tile_log2 = st.tileLog2;
    }

    if (cli.getBool("json")) {
        std::printf("{\n");
        std::printf("  \"logN\": %u,\n", sched->logN);
        std::printf("  \"dir\": \"%s\",\n", toString(sched->dir));
        std::printf("  \"batch\": %zu,\n", sched->batch);
        std::printf("  \"field\": \"%s\",\n", F::kName);
        std::printf("  \"isa\": \"%s\",\n", isaPathName(isa));
        std::printf("  \"isaLanes\": %u,\n",
                    isaLaneWidth(isa, sizeof(F)));
        std::printf("  \"gpus\": %u,\n", sys.numGpus);
        std::printf("  \"planCacheHit\": %s,\n",
                    plan_hit ? "true" : "false");
        std::printf("  \"scheduleCacheHit\": %s,\n",
                    sched_hit ? "true" : "false");
        std::printf("  \"scheduleSource\": \"%s\",\n",
                    tuned ? "tuned" : "heuristic");
        std::printf("  \"fusedGroups\": %u,\n", fused_groups);
        std::printf("  \"overlap\": %s,\n",
                    sched->overlapped ? "true" : "false");
        std::printf("  \"waves\": %zu,\n", sched->waves.size());
        std::printf("  \"dagNodes\": %zu,\n", sched->dag.size());
        std::printf("  \"tileLog2\": %u,\n", tile_log2);
        std::printf("  \"peakDeviceBytes\": %llu,\n",
                    static_cast<unsigned long long>(
                        sched->peakDeviceBytes));
        // Per-step DAG overlay facts: wave span and chunk count
        // (zeroes for a linear schedule).
        std::vector<unsigned> wave_lo(sched->steps.size(), 0);
        std::vector<unsigned> wave_hi(sched->steps.size(), 0);
        std::vector<unsigned> chunks(sched->steps.size(), 0);
        for (const auto &nd : sched->dag) {
            if (chunks[nd.step] == 0) {
                wave_lo[nd.step] = nd.wave;
                wave_hi[nd.step] = nd.wave;
            }
            wave_lo[nd.step] = std::min(wave_lo[nd.step], nd.wave);
            wave_hi[nd.step] = std::max(wave_hi[nd.step], nd.wave);
            chunks[nd.step] = nd.chunkCount;
        }
        std::printf("  \"steps\": [\n");
        for (size_t i = 0; i < sched->steps.size(); ++i) {
            const auto &st = sched->steps[i];
            std::printf(
                "    {\"index\": %zu, \"kind\": \"%s\", "
                "\"level\": \"%s\", \"name\": \"%s\", "
                "\"sBegin\": %u, \"sEnd\": %u, \"distance\": %u, "
                "\"waveBegin\": %u, \"waveEnd\": %u, "
                "\"chunks\": %u, "
                "\"fieldMuls\": %llu, \"fieldAdds\": %llu, "
                "\"dramReadBytes\": %llu, \"dramWriteBytes\": %llu, "
                "\"commBytesPerGpu\": %llu}%s\n",
                i, toString(st.kind), toString(st.level),
                st.name.c_str(), st.sBegin, st.sEnd, st.distance,
                wave_lo[i], wave_hi[i], chunks[i],
                static_cast<unsigned long long>(st.stats.fieldMuls),
                static_cast<unsigned long long>(st.stats.fieldAdds),
                static_cast<unsigned long long>(
                    st.stats.globalReadBytes),
                static_cast<unsigned long long>(
                    st.stats.globalWriteBytes),
                static_cast<unsigned long long>(st.comm.bytesPerGpu),
                i + 1 < sched->steps.size() ? "," : "");
        }
        std::printf("  ]\n}\n");
        return 0;
    }

    std::printf("machine:  %s\n", sys.description().c_str());
    std::printf("plan:     %s\n", sched->plan.toString().c_str());
    std::printf("%s\n", routerDescription().c_str());
    std::printf("isa:      %s (%u lane%s for %s)\n", isaPathName(isa),
                isaLaneWidth(isa, sizeof(F)),
                isaLaneWidth(isa, sizeof(F)) == 1 ? "" : "s", F::kName);
    std::printf("caches:   plan %s, schedule %s\n",
                plan_hit ? "hit" : "miss", sched_hit ? "hit" : "miss");
    std::printf("schedule: %s\n", tuned ? "tuned (DB hit)" : "heuristic");
    if (fused_groups > 0)
        std::printf("fusion:   %u fused group%s, 2^%u-element tiles\n",
                    fused_groups, fused_groups == 1 ? "" : "s",
                    tile_log2);
    if (sched->overlapped)
        std::printf("overlap:  %zu waves over %zu DAG nodes\n",
                    sched->waves.size(), sched->dag.size());
    std::printf("\n%s", sched->toString().c_str());
    std::printf("\npeak device memory: %s/GPU\n",
                formatBytes(
                    static_cast<double>(sched->peakDeviceBytes))
                    .c_str());
    return 0;
}

int
cmdSchedule(int argc, char **argv)
{
    CliParser cli("print the compiled stage schedule of one transform");
    cli.addInt("log-n", 24, "log2 of the transform size");
    cli.addInt("batch", 1, "number of independent transforms");
    cli.addBool("inverse", false, "compile the inverse transform");
    cli.addString("field", "goldilocks",
                  "field: goldilocks, babybear, bn254");
    cli.addBool("json", false, "emit the schedule as JSON");
    addTileFlag(cli);
    addCommonFlags(cli);
    cli.parse(argc, argv);

    std::string field = cli.getString("field");
    if (field == "goldilocks")
        return runSchedule<Goldilocks>(cli);
    if (field == "babybear")
        return runSchedule<BabyBear>(cli);
    if (field == "bn254")
        return runSchedule<Bn254Fr>(cli);
    fatal("unknown field '%s'", field.c_str());
}

template <NttField F>
int
runNtt(const CliParser &cli)
{
    auto sys = systemFromFlags(cli);
    unsigned logN = static_cast<unsigned>(cli.getInt("log-n"));
    size_t batch = static_cast<size_t>(cli.getInt("batch"));
    NttDirection dir = cli.getBool("inverse") ? NttDirection::Inverse
                                              : NttDirection::Forward;

    std::printf("machine: %s, %s NTT of 2^%u x%zu over %s\n",
                sys.description().c_str(), toString(dir), logN, batch,
                F::kName);
    std::printf("%s\n\n", routerDescription().c_str());

    unsigned threads = static_cast<unsigned>(cli.getInt("threads"));
    if (threads > 0)
        ThreadPool::setGlobalThreads(threads);

    SimReport report;
    if (cli.getBool("functional")) {
        if (!cli.getString("baseline").empty())
            fatal("--functional only runs the UniNTT engine "
                  "(drop --baseline)");
        uint64_t bytes =
            (static_cast<uint64_t>(batch) << logN) * sizeof(F);
        if (bytes > (4ULL << 30))
            fatal("--functional needs %s of host memory; "
                  "use --log-n/--batch totalling <= 4 GiB",
                  formatBytes(static_cast<double>(bytes)).c_str());

        UniNttConfig cfg = configFromFlags(cli);
        cfg.hostThreads = threads; // 0 = every pool lane
        UniNttEngine<F> engine(sys, cfg);
        Rng rng(2024);
        std::vector<DistributedVector<F>> batch_data;
        batch_data.reserve(batch);
        for (size_t b = 0; b < batch; ++b) {
            std::vector<F> x(size_t{1} << logN);
            for (auto &v : x)
                v = F::fromU64(rng.next());
            batch_data.push_back(
                DistributedVector<F>::fromGlobal(x, sys.numGpus));
        }

        auto t0 = std::chrono::steady_clock::now();
        if (dir == NttDirection::Forward) {
            report = engine.forwardBatch(batch_data);
        } else {
            report = engine.inverse(batch_data[0]);
            for (size_t b = 1; b < batch_data.size(); ++b)
                report.append(engine.inverse(batch_data[b]));
        }
        auto t1 = std::chrono::steady_clock::now();
        double wall = std::chrono::duration<double>(t1 - t0).count();
        std::printf("host wall clock: %s (%u host thread%s)\n",
                    formatSeconds(wall).c_str(), engine.hostLanes(),
                    engine.hostLanes() == 1 ? "" : "s");
    } else if (cli.getString("baseline") == "fourstep") {
        FourStepMultiGpuNtt<F> engine(sys);
        report = engine.analyticRun(logN, dir, batch);
    } else if (cli.getString("baseline").empty()) {
        UniNttEngine<F> engine(sys, configFromFlags(cli));
        report = engine.analyticRun(logN, dir, batch);
    } else {
        fatal("unknown --baseline '%s' (only 'fourstep')",
              cli.getString("baseline").c_str());
    }
    std::printf("%s", report.toString().c_str());
    std::printf("peak device memory: %s/GPU\n",
                formatBytes(static_cast<double>(report.peakDeviceBytes()))
                    .c_str());
    double n = static_cast<double>(1ULL << logN) *
               static_cast<double>(batch);
    std::printf("throughput: %s\n",
                formatRate(n / report.totalSeconds()).c_str());

    if (!cli.getString("trace").empty())
        writeChromeTrace(report, sys.description(),
                         cli.getString("trace"));
    return 0;
}

int
cmdNtt(int argc, char **argv)
{
    CliParser cli("simulate one (batched) NTT");
    cli.addInt("log-n", 24, "log2 of the transform size");
    cli.addInt("batch", 1, "number of independent transforms");
    cli.addBool("inverse", false, "run the inverse transform");
    cli.addString("field", "goldilocks",
                  "field: goldilocks, babybear, bn254");
    cli.addString("baseline", "", "run a baseline instead: fourstep");
    cli.addBool("functional", false,
                "execute the transform bit-exactly on the host "
                "(in addition to the simulated timeline)");
    cli.addInt("threads", 0,
               "host threads for --functional: 0 = all cores, 1 = serial");
    cli.addString("trace", "", "write a chrome://tracing JSON here");
    addTileFlag(cli);
    addCommonFlags(cli);
    cli.parse(argc, argv);

    std::string field = cli.getString("field");
    if (field == "goldilocks")
        return runNtt<Goldilocks>(cli);
    if (field == "babybear")
        return runNtt<BabyBear>(cli);
    if (field == "bn254")
        return runNtt<Bn254Fr>(cli);
    fatal("unknown field '%s'", field.c_str());
}

/** Tune every requested size of one field and print the outcomes. */
template <NttField F>
void
tuneFieldRows(TuningDb &db, const std::vector<unsigned> &log_ns,
              const TuneRequest &proto, const TuneSpace &space,
              Table &t)
{
    for (const TuneOutcome &o :
         tuneField<F>(db, log_ns, proto, space)) {
        const TuneEntry &e = o.entry;
        char gain[32];
        if (o.heuristicSeconds > 0)
            std::snprintf(gain, sizeof(gain), "%+.1f%%",
                          (o.heuristicSeconds - e.seconds) /
                              o.heuristicSeconds * 100.0);
        else
            std::snprintf(gain, sizeof(gain), "n/a");
        t.addRow({e.key.field, std::to_string(e.key.logN),
                  std::to_string(e.key.gpus), e.key.executor,
                  e.params.toString(), formatSeconds(e.seconds),
                  formatSeconds(o.heuristicSeconds), gain});
    }
}

int
cmdTune(int argc, char **argv)
{
    CliParser cli("search the schedule-knob space and persist the "
                  "winners in the versioned tuning DB");
    cli.addString("fields", "goldilocks",
                  "comma-separated: goldilocks, babybear, bn254");
    cli.addString("log-ns", "14,16,18",
                  "comma-separated log2 transform sizes");
    cli.addString("executor", "functional",
                  "what to optimize: functional (measured wall time), "
                  "analytic (deterministic pricing), both");
    cli.addInt("reps", 3, "wall-time repetitions per functional "
                          "candidate (median wins)");
    cli.addInt("seed", 1, "seed of inputs and measurement order");
    cli.addString("db", "", "tuning DB path (default tuning/tunedb.json)");
    cli.addBool("small", false,
                "tiny candidate grid for CI smoke runs");
    cli.addInt("threads", 0,
               "pin hostThreads (0 searches the grid axis)");
    addTileFlag(cli);
    addCommonFlags(cli);
    cli.parse(argc, argv);

    const std::string db_path = cli.getString("db").empty()
                                    ? std::string(kDefaultTuneDbPath)
                                    : cli.getString("db");
    const std::vector<std::string> fields =
        splitCsv(cli.getString("fields"));
    std::vector<unsigned> log_ns;
    for (const std::string &s : splitCsv(cli.getString("log-ns")))
        log_ns.push_back(
            static_cast<unsigned>(std::strtoul(s.c_str(), nullptr, 10)));
    if (fields.empty() || log_ns.empty())
        fatal("--fields and --log-ns must be non-empty");
    std::vector<std::string> executors;
    if (cli.getString("executor") == "both")
        executors = {"functional", "analytic"};
    else
        executors = {cli.getString("executor")};

    TuneRequest proto;
    proto.sys = systemFromFlags(cli);
    proto.reps = static_cast<unsigned>(cli.getInt("reps"));
    proto.seed = static_cast<uint64_t>(cli.getInt("seed"));
    proto.base = configFromFlags(cli);
    proto.base.hostThreads =
        static_cast<unsigned>(cli.getInt("threads"));
    proto.base.useTuneDb = false;

    const TuneSpace space =
        cli.getBool("small") ? TuneSpace::small() : TuneSpace::defaults();

    TuningDb db;
    const TuningDb::LoadStatus st = db.loadFile(db_path);
    if (st.corrupt || st.staleVersion)
        std::printf("note: existing DB at %s was %s; rewriting\n",
                    db_path.c_str(),
                    st.corrupt ? "corrupt" : "a stale version");

    std::printf("tuning %zu field(s) x %zu size(s) x %zu executor(s) "
                "on %s (%zu-point grid per key)\n\n",
                fields.size(), log_ns.size(), executors.size(),
                proto.sys.description().c_str(), space.size());

    Table t({"field", "logN", "gpus", "executor", "winner", "tuned",
             "heuristic", "gain"});
    for (const std::string &ex : executors) {
        proto.executor = ex;
        for (const std::string &f : fields) {
            if (f == "goldilocks")
                tuneFieldRows<Goldilocks>(db, log_ns, proto, space, t);
            else if (f == "babybear")
                tuneFieldRows<BabyBear>(db, log_ns, proto, space, t);
            else if (f == "bn254")
                tuneFieldRows<Bn254Fr>(db, log_ns, proto, space, t);
            else
                fatal("unknown field '%s'", f.c_str());
        }
    }
    t.print();

    if (!db.saveFile(db_path))
        fatal("cannot write tuning DB '%s'", db_path.c_str());
    invalidateTuneDbCache();
    std::printf("\nwrote %zu entries to %s (version %u)\n",
                db.entries().size(), db_path.c_str(), kTuneDbVersion);
    return 0;
}

int
cmdMsm(int argc, char **argv)
{
    CliParser cli("simulate one multi-GPU MSM");
    cli.addInt("log-n", 20, "log2 of the point count");
    cli.addBool("g2", false, "price the G2 variant");
    addCommonFlags(cli);
    cli.parse(argc, argv);
    auto sys = systemFromFlags(cli);
    MsmEngine engine(sys);
    auto report = engine.analyticRun(
        1ULL << cli.getInt("log-n"), cli.getBool("g2"));
    std::printf("machine: %s, %s MSM of 2^%lld points\n\n",
                sys.description().c_str(),
                cli.getBool("g2") ? "G2" : "G1",
                static_cast<long long>(cli.getInt("log-n")));
    std::printf("%s", report.toString().c_str());
    return 0;
}

int
cmdProver(int argc, char **argv)
{
    CliParser cli("simulate an end-to-end prover");
    cli.addInt("log-constraints", 22, "log2 of the circuit size");
    cli.addString("proto", "groth16", "protocol: groth16, plonk");
    addCommonFlags(cli);
    cli.parse(argc, argv);
    auto sys = systemFromFlags(cli);

    unsigned logc = static_cast<unsigned>(cli.getInt("log-constraints"));
    auto stages = cli.getString("proto") == "plonk"
                      ? ZkpPipeline::plonkStages(logc)
                      : ZkpPipeline::groth16Stages(logc);

    Table t({"backend", "NTT", "MSM", "other", "total"});
    for (auto backend : {NttBackend::SingleGpu, NttBackend::FourStep,
                         NttBackend::UniNtt}) {
        ZkpPipeline pipe(sys, backend);
        auto bd = pipe.estimate(stages);
        t.addRow({toString(backend), formatSeconds(bd.nttSeconds),
                  formatSeconds(bd.msmSeconds),
                  formatSeconds(bd.otherSeconds),
                  formatSeconds(bd.total())});
    }
    std::printf("%s prover, 2^%u constraints, %s\n",
                cli.getString("proto").c_str(), logc,
                sys.description().c_str());
    t.print();
    return 0;
}

int
cmdStark(int argc, char **argv)
{
    CliParser cli("run a functional STARK prove/verify cycle");
    cli.addInt("start", 3, "public start value");
    cli.addInt("log-steps", 9, "log2 of the trace length");
    cli.addString("proof-out", "", "write the serialized proof here");
    cli.parse(argc, argv);

    SquareStark stark;
    auto t0 = Goldilocks::fromU64(
        static_cast<uint64_t>(cli.getInt("start")));
    auto proof = stark.prove(
        t0, static_cast<unsigned>(cli.getInt("log-steps")));
    bool ok = stark.verify(proof);
    auto bytes = serializeStarkProof(proof);
    std::printf("proof: %s, verifies: %s\n",
                formatBytes(static_cast<double>(bytes.size())).c_str(),
                ok ? "OK" : "FAILED");

    std::string path = cli.getString("proof-out");
    if (!path.empty()) {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        if (!f)
            fatal("cannot open '%s'", path.c_str());
        std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    }
    return ok ? 0 : 1;
}

/**
 * The tenant mix the service subcommands drive: the bench default
 * (premium/standard/bulk NTTs) plus an optional checkpointed-proof
 * tenant.
 */
std::vector<TenantProfile>
serviceTenants(unsigned logN, bool proofs)
{
    std::vector<TenantProfile> tenants =
        LoadScenario::defaultTenants(logN);
    if (proofs) {
        TenantProfile prover;
        prover.name = "prover";
        prover.sla = SlaClass::Standard;
        prover.kind = JobKind::Proof;
        prover.logN = 6;
        prover.weight = 0.25;
        prover.seedPool = 1;
        tenants.push_back(prover);
    }
    return tenants;
}

/**
 * Fabric faults + device kills, armed at @p kill_at seconds. The kill
 * count scales with the fleet so the surviving capacity still exceeds
 * the offered load (otherwise the queue is unstable by construction
 * and no scheduler could hold any SLA).
 */
ServiceChaos
serviceChaos(unsigned gpus, double kill_at)
{
    ServiceChaos chaos;
    chaos.transientRate = 0.01;
    chaos.bitFlipRate = 0.005;
    chaos.stragglerRate = 0.01;
    chaos.stragglerSlowdown = 2.0;
    chaos.stageFailRate = 0.05;
    chaos.roundFailRate = 0.02;
    chaos.killDevices = gpus >= 8 ? std::vector<unsigned>{1, gpus - 1}
                                  : std::vector<unsigned>{1};
    chaos.killAtSeconds = kill_at;
    return chaos;
}

/**
 * Chaos soak of the *service* layer: the same seeded load scenario
 * runs fault-free and under chaos; every completed result must match
 * its fault-free reference, every loss must surface as a Status, and
 * the healthy premium tenant's p99 must stay within 2x of the clean
 * run.
 */
int
runServiceSoak(const CliParser &cli)
{
    unsigned gpus = static_cast<unsigned>(cli.getInt("gpus"));
    unsigned logN = static_cast<unsigned>(cli.getInt("log-n"));
    unsigned jobs = 400;
    if (cli.getBool("small")) {
        // Keep the 8-GPU slot structure: a 2-slot fleet cannot absorb
        // a device kill without head-of-line blocking every class.
        logN = 10;
        jobs = 150;
    }
    const uint64_t seed = static_cast<uint64_t>(cli.getInt("seed"));

    MultiGpuSystem fleet = makeDgxA100(gpus);
    ServiceConfig cfg;
    cfg.jobGpus = 2;
    cfg.seed = seed;
    // Both runs use the hardened executor so the p99 ratio measures
    // the injected faults, not a plain-vs-resilient overhead delta.
    cfg.hardenedOnly = true;

    LoadScenario scn;
    scn.offeredLoad = 0.5;
    scn.jobsTarget = jobs;
    scn.seed = seed;
    scn.tenants = serviceTenants(logN, /*proofs=*/true);

    std::printf("service soak: %u jobs at %.0f%% load on %u GPUs, "
                "seed 0x%llx\n\nfault-free:\n",
                jobs, scn.offeredLoad * 100, gpus,
                static_cast<unsigned long long>(seed));
    LoadResult clean = runLoadScenario(fleet, cfg, scn);
    std::printf("%s\n", formatLoadResult(clean).c_str());

    const ServiceChaos chaos =
        serviceChaos(gpus, clean.makespanSeconds * 0.3);
    std::printf("under chaos (fabric faults + %zu device kill(s) + "
                "proof interruptions):\n",
                chaos.killDevices.size());
    LoadResult faulty = runLoadScenario(fleet, cfg, scn, chaos);
    std::printf("%s\n", formatLoadResult(faulty).c_str());
    std::printf("%s\n", faulty.report.toString().c_str());

    int failures = 0;
    if (clean.corruptResults != 0 || faulty.corruptResults != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu corrupt result(s) reported as OK\n",
                     static_cast<unsigned long long>(
                         clean.corruptResults + faulty.corruptResults));
        failures++;
    }
    for (const LoadResult *r : {&clean, &faulty}) {
        const ServiceCounters &c = r->totals;
        if (c.submitted !=
            c.admitted + c.shed + c.quotaRejected) {
            std::fprintf(stderr, "FAIL: admission accounting leak\n");
            failures++;
        }
        if (c.admitted !=
            c.completed + c.failed + c.deadlineMissed) {
            std::fprintf(stderr,
                         "FAIL: %llu admitted job(s) vanished without "
                         "an outcome\n",
                         static_cast<unsigned long long>(
                             c.admitted - c.completed - c.failed -
                             c.deadlineMissed));
            failures++;
        }
    }
    // The slowest premium jobs under chaos, with what happened to
    // them — makes an SLA breach diagnosable from the soak log.
    {
        std::vector<const JobOutcome *> prem;
        for (const JobOutcome &out : faulty.outcomes)
            if (out.tenant == 0 && out.status.ok())
                prem.push_back(&out);
        std::sort(prem.begin(), prem.end(),
                  [](const JobOutcome *a, const JobOutcome *b) {
                      return a->latency() > b->latency();
                  });
        std::printf("slowest premium jobs under chaos:\n");
        for (size_t i = 0; i < prem.size() && i < 4; ++i) {
            const JobOutcome &o = *prem[i];
            std::printf("  job%llu: latency %s (queued %s), "
                        "%u attempt(s)%s%s\n",
                        static_cast<unsigned long long>(o.id),
                        formatSeconds(o.latency()).c_str(),
                        formatSeconds(o.started - o.arrival).c_str(),
                        o.attempts, o.degraded ? ", degraded" : "",
                        o.coalesced ? ", coalesced" : "");
        }
    }

    const TenantLoadStats *clean_prem = clean.find("premium");
    const TenantLoadStats *faulty_prem = faulty.find("premium");
    if (clean_prem && faulty_prem && clean_prem->p99 > 0 &&
        faulty_prem->p99 > 2.0 * clean_prem->p99) {
        std::fprintf(stderr,
                     "FAIL: premium p99 under chaos (%s) exceeds 2x "
                     "the fault-free p99 (%s)\n",
                     formatSeconds(faulty_prem->p99).c_str(),
                     formatSeconds(clean_prem->p99).c_str());
        failures++;
    }
    if (failures != 0)
        return 1;
    std::printf("OK: zero silent corruption, every job accounted, "
                "premium p99 within 2x of fault-free\n");
    return 0;
}

int
cmdServe(int argc, char **argv)
{
    CliParser cli("run the multi-tenant proving service under a "
                  "seeded load scenario");
    cli.addInt("log-n", 12, "log2 transform size of the tenant mix");
    cli.addInt("job-gpus", 2, "GPUs each job requests (power of two)");
    cli.addInt("jobs", 400, "open loop: arrivals to generate");
    cli.addInt("offered", 60,
               "open loop: offered load, percent of estimated capacity");
    cli.addBool("closed", false,
                "closed-loop clients instead of Poisson arrivals");
    cli.addInt("clients", 2, "closed loop: clients per tenant");
    cli.addInt("duration-us", 2000,
               "closed loop: submission horizon, simulated us");
    cli.addBool("proofs", false, "add a checkpointed-proof tenant");
    cli.addBool("chaos", false,
                "inject fabric faults and kill two devices mid-run");
    cli.addInt("seed", 0x5e41ce, "scenario seed");
    addCommonFlags(cli);
    cli.parse(argc, argv);

    MultiGpuSystem fleet = systemFromFlags(cli);
    ServiceConfig cfg;
    cfg.jobGpus = static_cast<unsigned>(cli.getInt("job-gpus"));
    cfg.seed = static_cast<uint64_t>(cli.getInt("seed"));

    LoadScenario scn;
    scn.seed = cfg.seed;
    scn.closedLoop = cli.getBool("closed");
    scn.offeredLoad =
        static_cast<double>(cli.getInt("offered")) / 100.0;
    scn.jobsTarget = static_cast<unsigned>(cli.getInt("jobs"));
    scn.clientsPerTenant = static_cast<unsigned>(cli.getInt("clients"));
    scn.durationSeconds =
        static_cast<double>(cli.getInt("duration-us")) * 1e-6;
    scn.tenants = serviceTenants(
        static_cast<unsigned>(cli.getInt("log-n")),
        cli.getBool("proofs"));

    ServiceChaos chaos;
    if (cli.getBool("chaos")) {
        // Approximate the makespan to arm the kills a third in.
        ProvingService probe(fleet, cfg);
        const double est = probe.estimateServiceSeconds(
            JobKind::NttForward,
            static_cast<unsigned>(cli.getInt("log-n")));
        const unsigned slots =
            std::max(1u, fleet.numGpus / cfg.jobGpus);
        const double makespan = static_cast<double>(scn.jobsTarget) *
                                est /
                                (scn.offeredLoad *
                                 static_cast<double>(slots));
        chaos = serviceChaos(fleet.numGpus, makespan * 0.3);
    }

    std::printf("%s, %zu tenants, %s load\n\n",
                fleet.description().c_str(), scn.tenants.size(),
                scn.closedLoop ? "closed-loop" : "open-loop");
    LoadResult res = runLoadScenario(fleet, cfg, scn, chaos);
    std::printf("%s\n", formatLoadResult(res).c_str());
    std::printf("%s", res.report.toString().c_str());
    return res.corruptResults == 0 ? 0 : 1;
}

int
cmdSoak(int argc, char **argv)
{
    CliParser cli("seeded chaos soak over the checkpointed proof "
                  "pipeline and the resilient NTT engine");
    cli.addInt("campaigns", 8, "proof pipelines per grid intensity");
    cli.addInt("seed", 0xc405, "master seed of every campaign");
    cli.addInt("gpus", 8, "simulated GPUs running the NTT workload");
    cli.addInt("log-n", 14, "log2 transform size of the NTT workload");
    cli.addInt("log-trace", 8, "log2 trace length of each proof");
    cli.addBool("small", false,
                "shrink the workload for CI (log-trace=6, log-n=10, "
                "gpus=4)");
    cli.addBool("service", false,
                "soak the multi-tenant service layer under load "
                "instead of the bare engine/proof pipelines");
    cli.addBool("no-overlap", false,
                "run the NTT campaigns with the linear dispatch "
                "(default soaks the DAG wave dispatch, so injected "
                "faults land mid-overlap)");
    cli.addBool("no-abft", false,
                "disable the ABFT compute checksums — the "
                "expected-failure smoke: with compute bit flips in "
                "the grid this MUST report silent corruptions, "
                "proving the checksums are load-bearing");
    cli.parse(argc, argv);

    if (cli.getBool("service"))
        return runServiceSoak(cli);

    ChaosConfig cfg;
    cfg.seed = static_cast<uint64_t>(cli.getInt("seed"));
    cfg.campaigns = static_cast<unsigned>(cli.getInt("campaigns"));
    cfg.gpus = static_cast<unsigned>(cli.getInt("gpus"));
    cfg.logN = static_cast<unsigned>(cli.getInt("log-n"));
    cfg.logTrace = static_cast<unsigned>(cli.getInt("log-trace"));
    cfg.overlapComm = !cli.getBool("no-overlap");
    cfg.abft = !cli.getBool("no-abft");
    if (cli.getBool("small")) {
        cfg.logTrace = 6;
        cfg.logN = 10;
        cfg.gpus = 4;
    }

    std::printf("chaos soak: %u campaigns/intensity, proofs 2^%u, "
                "NTT 2^%u on %u GPUs (%s dispatch, abft %s), "
                "seed 0x%llx\n\n",
                cfg.campaigns, cfg.logTrace, cfg.logN, cfg.gpus,
                cfg.overlapComm ? "dag-overlap" : "linear",
                cfg.abft ? "on" : "OFF",
                static_cast<unsigned long long>(cfg.seed));

    std::vector<ChaosCampaignStats> rows;
    uint64_t silent = 0;
    for (const auto &intensity : defaultChaosGrid()) {
        rows.push_back(runChaosCampaigns(cfg, intensity));
        silent += rows.back().silentCorruptions;
    }
    printChaosTable(std::cout, rows);

    // Injected-vs-caught ledger per fault category, over completed
    // transforms (failed-clean runs discard their SimReport, so only
    // completions can be balanced). The exchange side is
    // informational; the compute side is a hard gate when ABFT is on:
    // every injected flip must be either caught or escalated.
    uint64_t xinj = 0, xcaught = 0, cinj = 0, ccaught = 0, cesc = 0,
             tiles = 0;
    for (const auto &r : rows) {
        xinj += r.exchangeFlipsInjected;
        xcaught += r.exchangeFlipsCaught;
        cinj += r.computeFlipsInjected;
        ccaught += r.abftCaught;
        cesc += r.abftEscalated;
        tiles += r.abftTilesRecomputed;
    }
    std::printf("\ninjected vs caught (completed transforms):\n"
                "  exchange flips: %llu injected, %llu caught by "
                "payload checksums\n"
                "  compute flips:  %llu injected, %llu caught by "
                "ABFT (+%llu escalated), %llu tiles recomputed\n",
                static_cast<unsigned long long>(xinj),
                static_cast<unsigned long long>(xcaught),
                static_cast<unsigned long long>(cinj),
                static_cast<unsigned long long>(ccaught),
                static_cast<unsigned long long>(cesc),
                static_cast<unsigned long long>(tiles));

    if (cfg.abft && cinj != ccaught + cesc) {
        std::fprintf(stderr,
                     "\nFAIL: ABFT ledger imbalance — %llu compute "
                     "flips injected but %llu caught + %llu "
                     "escalated\n",
                     static_cast<unsigned long long>(cinj),
                     static_cast<unsigned long long>(ccaught),
                     static_cast<unsigned long long>(cesc));
        return 1;
    }
    if (silent != 0) {
        std::fprintf(stderr,
                     "\nFAIL: %llu silent corruption(s) — a run "
                     "completed with wrong bytes\n",
                     static_cast<unsigned long long>(silent));
        return 1;
    }
    std::printf("\nOK: every run completed bit-identically or failed "
                "with a clean status\n");
    return 0;
}

int
cmdListKernels(int argc, char **argv)
{
    CliParser cli("print the probed CPU features and the kernel "
                  "table the router binds for every field");
    cli.parse(argc, argv);
    std::printf("%s", listKernelsReport().c_str());
    return 0;
}

int
cmdLevels(int argc, char **argv)
{
    CliParser cli("print the abstract hardware model");
    addCommonFlags(cli);
    cli.parse(argc, argv);
    auto sys = systemFromFlags(cli);
    Table t({"level", "fanout", "capacity (elems)", "exchange bw",
             "latency"});
    for (const auto &lvl : sys.abstractLevels(8))
        t.addRow({lvl.name, std::to_string(lvl.fanout),
                  fmtI(lvl.localCapacityElems),
                  formatBytes(lvl.exchangeBandwidth) + "/s",
                  formatSeconds(lvl.exchangeLatency)});
    std::printf("%s\n", sys.description().c_str());
    t.print();
    return 0;
}

void
usage()
{
    std::printf(
        "unintt-cli <command> [flags]\n\n"
        "commands:\n"
        "  plan      print the hierarchical decomposition for a size\n"
        "  schedule  print the compiled stage schedule (--json for "
        "machines)\n"
        "  ntt       simulate one (batched) NTT and print the "
        "timeline\n"
        "  tune      search the schedule-knob space and persist the\n"
        "            winners in the versioned tuning DB\n"
        "  msm       simulate one multi-GPU MSM\n"
        "  prover    simulate an end-to-end ZKP prover\n"
        "  stark     run a functional STARK prove/verify cycle\n"
        "  soak      run seeded chaos campaigns over the proof "
        "pipeline\n"
        "  serve     run the multi-tenant proving service under "
        "load\n"
        "  levels    print the abstract hardware model of a machine\n"
        "  list-kernels  print probed CPU features and the kernel "
        "table\n"
        "                bound per field (also: --list-kernels)\n\n"
        "schedule/ntt take --isa=auto|scalar|avx2|avx512|neon to "
        "force\n"
        "an acceleration path; the UNINTT_FORCE_ISA environment\n"
        "variable overrides every request.\n\n"
        "run 'unintt-cli <command> --help' for the command's flags\n");
}

} // namespace
} // namespace unintt

int
main(int argc, char **argv)
{
    using namespace unintt;
    if (argc < 2) {
        usage();
        return 1;
    }
    std::string cmd = argv[1];
    if (cmd == "plan")
        return cmdPlan(argc - 1, argv + 1);
    if (cmd == "schedule")
        return cmdSchedule(argc - 1, argv + 1);
    if (cmd == "ntt")
        return cmdNtt(argc - 1, argv + 1);
    if (cmd == "tune")
        return cmdTune(argc - 1, argv + 1);
    if (cmd == "msm")
        return cmdMsm(argc - 1, argv + 1);
    if (cmd == "prover")
        return cmdProver(argc - 1, argv + 1);
    if (cmd == "stark")
        return cmdStark(argc - 1, argv + 1);
    if (cmd == "soak")
        return cmdSoak(argc - 1, argv + 1);
    if (cmd == "serve")
        return cmdServe(argc - 1, argv + 1);
    if (cmd == "levels")
        return cmdLevels(argc - 1, argv + 1);
    if (cmd == "list-kernels" || cmd == "--list-kernels")
        return cmdListKernels(argc - 1, argv + 1);
    if (cmd == "--help" || cmd == "-h") {
        usage();
        return 0;
    }
    std::fprintf(stderr, "unknown command '%s'\n\n", cmd.c_str());
    usage();
    return 1;
}
