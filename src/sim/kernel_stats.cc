#include "sim/kernel_stats.hh"

namespace unintt {

KernelStats &
KernelStats::operator+=(const KernelStats &o)
{
    fieldMuls += o.fieldMuls;
    fieldAdds += o.fieldAdds;
    butterflies += o.butterflies;
    globalReadBytes += o.globalReadBytes;
    globalWriteBytes += o.globalWriteBytes;
    smemBytes += o.smemBytes;
    smemBankConflicts += o.smemBankConflicts;
    shuffles += o.shuffles;
    syncs += o.syncs;
    kernelLaunches += o.kernelLaunches;
    return *this;
}

KernelStats
operator+(KernelStats a, const KernelStats &b)
{
    a += b;
    return a;
}

bool
FaultStats::any() const
{
    return exchanges || transientRetries || corruptionsDetected ||
           stragglerEvents || devicesLost || degradedReplans ||
           spotChecks || spotCheckFailures || checksummedBytes ||
           watchdogTimeouts || devicesExcluded || abftChecks ||
           abftCatches || tilesRecomputed || abftEscalations;
}

FaultStats &
FaultStats::operator+=(const FaultStats &o)
{
    exchanges += o.exchanges;
    transientRetries += o.transientRetries;
    corruptionsDetected += o.corruptionsDetected;
    stragglerEvents += o.stragglerEvents;
    devicesLost += o.devicesLost;
    degradedReplans += o.degradedReplans;
    spotChecks += o.spotChecks;
    spotCheckFailures += o.spotCheckFailures;
    checksummedBytes += o.checksummedBytes;
    watchdogTimeouts += o.watchdogTimeouts;
    devicesExcluded += o.devicesExcluded;
    abftChecks += o.abftChecks;
    abftCatches += o.abftCatches;
    tilesRecomputed += o.tilesRecomputed;
    abftEscalations += o.abftEscalations;
    return *this;
}

void
FaultStats::exportTo(StatSet &out, const std::string &prefix) const
{
    out.add(prefix + ".exchanges", static_cast<double>(exchanges));
    out.add(prefix + ".transientRetries",
            static_cast<double>(transientRetries));
    out.add(prefix + ".corruptionsDetected",
            static_cast<double>(corruptionsDetected));
    out.add(prefix + ".stragglerEvents",
            static_cast<double>(stragglerEvents));
    out.add(prefix + ".devicesLost", static_cast<double>(devicesLost));
    out.add(prefix + ".degradedReplans",
            static_cast<double>(degradedReplans));
    out.add(prefix + ".spotChecks", static_cast<double>(spotChecks));
    out.add(prefix + ".spotCheckFailures",
            static_cast<double>(spotCheckFailures));
    out.add(prefix + ".checksummedBytes",
            static_cast<double>(checksummedBytes));
    out.add(prefix + ".watchdogTimeouts",
            static_cast<double>(watchdogTimeouts));
    out.add(prefix + ".devicesExcluded",
            static_cast<double>(devicesExcluded));
    out.add(prefix + ".abftChecks", static_cast<double>(abftChecks));
    out.add(prefix + ".abftCatches", static_cast<double>(abftCatches));
    out.add(prefix + ".tilesRecomputed",
            static_cast<double>(tilesRecomputed));
    out.add(prefix + ".abftEscalations",
            static_cast<double>(abftEscalations));
}

void
KernelStats::exportTo(StatSet &out, const std::string &prefix) const
{
    out.add(prefix + ".fieldMuls", static_cast<double>(fieldMuls));
    out.add(prefix + ".fieldAdds", static_cast<double>(fieldAdds));
    out.add(prefix + ".butterflies", static_cast<double>(butterflies));
    out.add(prefix + ".globalReadBytes",
            static_cast<double>(globalReadBytes));
    out.add(prefix + ".globalWriteBytes",
            static_cast<double>(globalWriteBytes));
    out.add(prefix + ".smemBytes", static_cast<double>(smemBytes));
    out.add(prefix + ".smemBankConflicts",
            static_cast<double>(smemBankConflicts));
    out.add(prefix + ".shuffles", static_cast<double>(shuffles));
    out.add(prefix + ".syncs", static_cast<double>(syncs));
    out.add(prefix + ".kernelLaunches",
            static_cast<double>(kernelLaunches));
}

} // namespace unintt
