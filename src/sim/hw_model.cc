#include "sim/hw_model.hh"

#include "field/babybear.hh"
#include "field/bn254.hh"
#include "field/goldilocks.hh"
#include "util/logging.hh"

namespace unintt {

// The slot costs below count the 64-bit multiply-issue slots one field
// operation occupies on a modern GPU core:
//  - Goldilocks: one 64x64->128 product (4 IMAD-equivalent slots on
//    32-bit hardware ~= 2 u64 slots) plus the special-form reduction.
//  - BabyBear: a single 32x32->64 product plus Montgomery folding fits
//    in roughly one u64 slot.
//  - BN254-Fr: 4x4-limb CIOS needs 32 64-bit products plus carries.
// Additions are carry chains without products.

template <>
FieldCost
fieldCostOf<Goldilocks>()
{
    return FieldCost{"Goldilocks", 3.0, 0.5, sizeof(Goldilocks)};
}

template <>
FieldCost
fieldCostOf<BabyBear>()
{
    return FieldCost{"BabyBear", 1.0, 0.25, sizeof(BabyBear)};
}

template <>
FieldCost
fieldCostOf<Bn254Fr>()
{
    return FieldCost{"BN254-Fr", 40.0, 4.0, 32};
}

template <>
FieldCost
fieldCostOf<Bn254Fq>()
{
    return FieldCost{"BN254-Fq", 40.0, 4.0, 32};
}

GpuModel
makeA100()
{
    GpuModel m;
    m.name = "A100-SXM4-80GB";
    m.numSms = 108;
    m.clockHz = 1.41e9;
    m.u64MulsPerClockPerSm = 16.0;
    m.dramBandwidth = 2.039e12;
    m.dramLatency = 450e-9;
    m.dramCapacityBytes = 80ULL << 30;
    m.smemBytesPerBlock = 164 << 10;
    m.smemBytesPerClockPerSm = 128.0;
    m.kernelLaunchLatency = 5e-6;
    return m;
}

GpuModel
makeH100()
{
    GpuModel m;
    m.name = "H100-SXM5-80GB";
    m.numSms = 132;
    m.clockHz = 1.83e9;
    m.u64MulsPerClockPerSm = 16.0;
    m.dramBandwidth = 3.35e12;
    m.dramLatency = 420e-9;
    m.dramCapacityBytes = 80ULL << 30;
    m.smemBytesPerBlock = 228 << 10;
    m.smemBytesPerClockPerSm = 128.0;
    m.kernelLaunchLatency = 4e-6;
    return m;
}

GpuModel
makeRtx4090()
{
    GpuModel m;
    m.name = "RTX-4090";
    m.numSms = 128;
    m.clockHz = 2.52e9;
    m.u64MulsPerClockPerSm = 8.0; // consumer die, reduced int64 path
    m.dramBandwidth = 1.008e12;
    m.dramLatency = 500e-9;
    m.dramCapacityBytes = 24ULL << 30;
    m.smemBytesPerBlock = 100 << 10;
    m.smemBytesPerClockPerSm = 128.0;
    m.kernelLaunchLatency = 6e-6;
    return m;
}

GpuModel
gpuModelByName(const std::string &name)
{
    if (name == "a100")
        return makeA100();
    if (name == "h100")
        return makeH100();
    if (name == "rtx4090")
        return makeRtx4090();
    fatal("unknown GPU model '%s' (expected a100, h100, rtx4090)",
          name.c_str());
}

} // namespace unintt
