#include "sim/fault.hh"

#include "util/checksum.hh"
#include "util/logging.hh"

namespace unintt {

double
RetryPolicy::backoffSeconds(unsigned attempt, uint64_t salt) const
{
    const double capped = backoffSeconds(attempt);
    if (jitterFraction <= 0.0)
        return capped;
    // Deterministic uniform draw in [0, 1) from (salt, attempt): the
    // same job replays the same jitter, different jobs decorrelate.
    const uint64_t h = mix64(salt ^ mix64(attempt + 1));
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53; // [0, 1)
    return capped * (1.0 - jitterFraction / 2.0 + jitterFraction * u);
}

bool
FaultModel::anyEnabled() const
{
    return transientExchangeRate > 0 || bitFlipRate > 0 ||
           computeBitFlipRate > 0 || stragglerRate > 0 ||
           !dropouts.empty();
}

FaultInjector::FaultInjector(FaultModel model)
    : model_(std::move(model)),
      rng_(model_.seed),
      dropoutFired_(model_.dropouts.size(), false)
{
    UNINTT_ASSERT(model_.transientExchangeRate <= 1.0 &&
                      model_.bitFlipRate <= 1.0 &&
                      model_.computeBitFlipRate <= 1.0 &&
                      model_.stragglerRate <= 1.0,
                  "fault rates are probabilities");
}

ExchangeOutcome
FaultInjector::nextExchange(unsigned max_attempts)
{
    ExchangeOutcome out;
    const uint64_t index = exchangeIndex_++;
    injected_.exchanges++;

    // A scheduled dropout preempts the exchange entirely.
    for (size_t d = 0; d < model_.dropouts.size(); ++d) {
        if (!dropoutFired_[d] && model_.dropouts[d].atExchange == index) {
            dropoutFired_[d] = true;
            injected_.dropouts++;
            out.lostGpu = static_cast<int>(model_.dropouts[d].gpu);
            return out;
        }
    }

    // Transient transit failures: independent per attempt, over the
    // initial transmission plus max_attempts retransmissions.
    const unsigned attempts = max_attempts + 1;
    while (out.transientFailures < attempts &&
           rng_.uniform() < model_.transientExchangeRate)
        out.transientFailures++;
    injected_.transients += out.transientFailures;
    if (out.transientFailures == attempts) {
        out.exhausted = true;
        return out;
    }

    if (rng_.uniform() < model_.bitFlipRate) {
        out.corrupted = true;
        out.corruptBit = rng_.next();
        injected_.exchangeCorruptions++;
    }

    if (rng_.uniform() < model_.stragglerRate) {
        out.stragglerFactor = model_.stragglerSlowdown;
        injected_.stragglers++;
    }
    return out;
}

bool
FaultInjector::retransmitCorrupted()
{
    if (rng_.uniform() < model_.bitFlipRate) {
        injected_.retransmitCorruptions++;
        return true;
    }
    return false;
}

ComputeFaultOutcome
FaultInjector::computeFault(unsigned device, uint64_t step,
                            unsigned attempt)
{
    ComputeFaultOutcome out;
    if (model_.computeBitFlipRate <= 0.0)
        return out;
    // Stateless per the seed-derivation contract: a chained hash of
    // (seed, device, step, attempt), domain-separated from every other
    // consumer of the seed so compute draws can never shadow exchange
    // draws (which use the sequential xoshiro stream) or retry jitter
    // (which salts by job id).
    uint64_t h = mix64(model_.seed ^ 0xabf7c0de5dc00001ULL);
    h = mix64(h ^ mix64(device + 1));
    h = mix64(h ^ mix64(step + 1));
    h = mix64(h ^ mix64(attempt + 1));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < model_.computeBitFlipRate) {
        out.corrupted = true;
        out.corruptWord = mix64(h ^ 0x9e3779b97f4a7c15ULL);
        out.corruptBit = mix64(out.corruptWord);
        injected_.computeCorruptions++;
    }
    return out;
}

void
FaultInjector::reset()
{
    rng_.reseed(model_.seed);
    exchangeIndex_ = 0;
    dropoutFired_.assign(model_.dropouts.size(), false);
    injected_ = InjectedFaults{};
}

} // namespace unintt
