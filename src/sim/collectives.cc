#include "sim/collectives.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

Collectives::Collectives(Interconnect fabric, unsigned num_gpus)
    : fabric_(fabric), numGpus_(num_gpus)
{
    UNINTT_ASSERT(num_gpus >= 1, "need at least one GPU");
}

void
Collectives::attachFaults(FaultInjector *injector, RetryPolicy retry)
{
    faults_ = injector;
    retry_ = retry;
}

void
Collectives::applyFaults(CollectiveCost &c, double retransmit_seconds) const
{
    if (faults_ == nullptr || numGpus_ <= 1)
        return;
    ExchangeOutcome out = faults_->nextExchange(retry_.maxRetries);
    if (out.lostGpu >= 0) {
        c.completed = false;
        return;
    }
    if (out.stragglerFactor > 1.0)
        c.seconds *= out.stragglerFactor;
    // Failed attempts beyond the first each cost a backoff delay plus a
    // retransmission (the initial transmission is in the base price).
    unsigned retransmissions = out.exhausted ? out.transientFailures - 1
                                             : out.transientFailures;
    for (unsigned i = 0; i < retransmissions; ++i)
        c.seconds += retry_.backoffSeconds(i) + retransmit_seconds;
    c.stats.retries += retransmissions;
    if (out.exhausted) {
        c.completed = false;
        return;
    }
    if (out.corrupted) {
        // Collectives carry no checksum machinery of their own; model
        // the caller-side detection as one clean retransmission.
        c.seconds += retransmit_seconds;
        c.stats.retries += 1;
    }
}

CollectiveCost
Collectives::butterflyExchange(uint64_t bytes_per_gpu,
                               unsigned distance) const
{
    CollectiveCost c;
    if (numGpus_ <= 1)
        return c;
    c.seconds = fabric_.pairwiseExchangeTime(bytes_per_gpu, distance);
    c.stats = CommStats{bytes_per_gpu, 1};
    applyFaults(c, c.seconds);
    return c;
}

CollectiveCost
Collectives::allToAll(uint64_t bytes_per_gpu) const
{
    CollectiveCost c;
    if (numGpus_ <= 1)
        return c;
    uint64_t wire = bytes_per_gpu * (numGpus_ - 1) / numGpus_;
    c.seconds = fabric_.allToAllTime(wire, numGpus_);
    c.stats = CommStats{wire, numGpus_ - 1};
    applyFaults(c, c.seconds);
    return c;
}

CollectiveCost
Collectives::allGather(uint64_t bytes_per_gpu) const
{
    CollectiveCost c;
    if (numGpus_ <= 1)
        return c;
    // Ring all-gather: G-1 rounds, each forwarding one neighbor's
    // buffer of bytes_per_gpu.
    uint64_t wire = bytes_per_gpu * (numGpus_ - 1);
    c.seconds = (numGpus_ - 1) *
                fabric_.pairwiseExchangeTime(bytes_per_gpu, 1);
    c.stats = CommStats{wire, numGpus_ - 1};
    // Retrying re-sends one round's buffer, not the whole collective.
    applyFaults(c, fabric_.pairwiseExchangeTime(bytes_per_gpu, 1));
    return c;
}

CollectiveCost
Collectives::reduceScatter(uint64_t bytes_per_gpu) const
{
    CollectiveCost c;
    if (numGpus_ <= 1)
        return c;
    // Ring reduce-scatter: G-1 rounds of one share each.
    uint64_t share = bytes_per_gpu / numGpus_;
    uint64_t wire = share * (numGpus_ - 1);
    c.seconds =
        (numGpus_ - 1) * fabric_.pairwiseExchangeTime(share, 1);
    c.stats = CommStats{wire, numGpus_ - 1};
    applyFaults(c, fabric_.pairwiseExchangeTime(share, 1));
    return c;
}

CollectiveCost
Collectives::allReduce(uint64_t bytes_per_gpu) const
{
    CollectiveCost rs = reduceScatter(bytes_per_gpu);
    CollectiveCost ag = allGather(bytes_per_gpu / std::max(1u, numGpus_));
    CollectiveCost c;
    c.seconds = rs.seconds + ag.seconds;
    c.stats = rs.stats;
    c.stats += ag.stats;
    c.completed = rs.completed && ag.completed;
    return c;
}

CollectiveCost
Collectives::broadcast(uint64_t bytes) const
{
    CollectiveCost c;
    if (numGpus_ <= 1)
        return c;
    // Binomial tree: ceil(log2 G) rounds, the payload crossing one
    // link per round.
    unsigned rounds = log2Floor(numGpus_);
    if ((1u << rounds) < numGpus_)
        ++rounds;
    c.seconds = rounds * fabric_.pairwiseExchangeTime(bytes, 1);
    c.stats = CommStats{bytes, rounds};
    applyFaults(c, fabric_.pairwiseExchangeTime(bytes, 1));
    return c;
}

} // namespace unintt
