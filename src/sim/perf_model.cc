#include "sim/perf_model.hh"

#include <algorithm>

namespace unintt {

double
KernelTime::total() const
{
    return std::max({compute, dram, smem, shuffle}) + launch;
}

KernelTime
PerfModel::kernelTime(const KernelStats &stats) const
{
    KernelTime t;

    double slots = static_cast<double>(stats.fieldMuls) * field_.mulSlots +
                   static_cast<double>(stats.fieldAdds) * field_.addSlots;
    t.compute = slots / mulSlotRate();

    t.dram = static_cast<double>(stats.globalBytes()) / gpu_.dramBandwidth;
    if (stats.globalBytes() > 0)
        t.dram += gpu_.dramLatency; // first-access latency, amortized

    // A bank conflict serializes one extra smem transaction; count it
    // as the same number of bytes replayed.
    double smem_bytes =
        static_cast<double>(stats.smemBytes) +
        static_cast<double>(stats.smemBankConflicts) *
            static_cast<double>(field_.elementBytes);
    t.smem = smem_bytes / smemBandwidth();

    t.shuffle = static_cast<double>(stats.shuffles) / shuffleRate();

    t.launch =
        static_cast<double>(stats.kernelLaunches) * gpu_.kernelLaunchLatency;
    // A block barrier drains ~30 cycles, but blocks run concurrently
    // across the SMs, so the aggregate cost divides by the SM count.
    t.launch += static_cast<double>(stats.syncs) * 30.0 /
                (gpu_.clockHz * gpu_.numSms);
    return t;
}

} // namespace unintt
