/**
 * @file
 * The abstract hardware model.
 *
 * UniNTT's central idea is that every level of the multi-GPU execution
 * hierarchy — warp, thread block, GPU, multi-GPU — looks the same to the
 * NTT: a set of parallel lanes, a level-local memory, and an exchange
 * primitive with some bandwidth and latency. GpuModel carries the
 * concrete machine parameters (public-spec values for real devices);
 * LevelModel is the abstract per-level view derived from them, and is
 * what the decomposition planner reasons about.
 *
 * This repo has no physical GPU, so the concrete parameters also feed
 * the analytic performance model in perf_model.hh (see DESIGN.md,
 * "Hardware substitution").
 */

#ifndef UNINTT_SIM_HW_MODEL_HH
#define UNINTT_SIM_HW_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace unintt {

/**
 * Concrete parameters of one GPU. Bandwidth values are bytes/second,
 * latencies are seconds, rates are per-second.
 */
struct GpuModel
{
    std::string name;

    // Compute.
    unsigned numSms = 108;
    double clockHz = 1.41e9;
    /** 64-bit integer multiply slots per SM per clock. */
    double u64MulsPerClockPerSm = 16.0;
    unsigned warpSize = 32;
    unsigned maxThreadsPerBlock = 1024;

    // Memories.
    double dramBandwidth = 2.0e12;
    double dramLatency = 450e-9;
    uint64_t dramCapacityBytes = 80ULL << 30;
    uint64_t smemBytesPerBlock = 160 << 10;
    unsigned smemBanks = 32;
    /** Shared-memory bytes per SM per clock (all banks). */
    double smemBytesPerClockPerSm = 128.0;

    // Execution overheads.
    double kernelLaunchLatency = 5e-6;
    /** DRAM transaction (sector) size; strided access pays full sectors. */
    unsigned dramSectorBytes = 32;
};

/**
 * Cost of one field operation expressed in 64-bit multiply slots, plus
 * the element footprint. These are the only field-specific inputs of
 * the performance model.
 */
struct FieldCost
{
    const char *name;
    /** u64-multiply slots consumed by one field multiplication. */
    double mulSlots;
    /** u64-multiply slots consumed by one field addition/subtraction. */
    double addSlots;
    /** Bytes per element as stored in device memory. */
    size_t elementBytes;
};

/** Per-field cost constants; specialized for every shipped field. */
template <typename F>
FieldCost fieldCostOf();

/**
 * One level of the abstract hierarchy as seen by the planner: how many
 * lanes work in parallel, how much level-local memory a lane group can
 * see, and what the exchange primitive costs.
 */
struct LevelModel
{
    std::string name;
    /** Parallel sub-units at this level (e.g. 32 lanes, G GPUs). */
    uint64_t fanout;
    /** Capacity of the level-local memory in field elements. */
    uint64_t localCapacityElems;
    /** Exchange bandwidth in bytes/s (aggregate at this level). */
    double exchangeBandwidth;
    /** Fixed latency per exchange operation in seconds. */
    double exchangeLatency;
};

/** Pre-parameterized GPU models (public spec sheets). */
GpuModel makeA100();
GpuModel makeH100();
GpuModel makeRtx4090();

/** Look up a GPU model by name ("a100", "h100", "rtx4090"). */
GpuModel gpuModelByName(const std::string &name);

} // namespace unintt

#endif // UNINTT_SIM_HW_MODEL_HH
