/**
 * @file
 * Simulated device-memory accounting. Engines register their
 * allocations (data chunks, exchange buffers, twiddle tables) per GPU;
 * the model enforces the device capacity — exceeding it is a fatal
 * configuration error, exactly as cudaMalloc failing would be — and
 * tracks the peak footprint that the memory-usage table reports.
 */

#ifndef UNINTT_SIM_MEMORY_HH
#define UNINTT_SIM_MEMORY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/hw_model.hh"

namespace unintt {

/** Per-GPU allocation tracker with capacity enforcement. */
class DeviceMemoryModel
{
  public:
    /**
     * @param gpu      device whose capacity bounds allocations.
     * @param num_gpus devices tracked.
     */
    DeviceMemoryModel(const GpuModel &gpu, unsigned num_gpus);

    /**
     * Record an allocation of @p bytes on GPU @p gpu. Fatal (user
     * error) if the device capacity would be exceeded; @p tag names
     * the buffer in the error message.
     */
    void alloc(unsigned gpu, uint64_t bytes, const std::string &tag);

    /** Record an allocation of @p bytes on every GPU. */
    void allocAll(uint64_t bytes, const std::string &tag);

    /** Release @p bytes on GPU @p gpu. */
    void free(unsigned gpu, uint64_t bytes);

    /** Release @p bytes on every GPU. */
    void freeAll(uint64_t bytes);

    /** Bytes currently allocated on GPU @p gpu. */
    uint64_t usedBytes(unsigned gpu) const;

    /** High-water mark of GPU @p gpu. */
    uint64_t peakBytes(unsigned gpu) const;

    /** High-water mark across all GPUs. */
    uint64_t maxPeakBytes() const;

    /** Device capacity being enforced. */
    uint64_t capacityBytes() const { return capacity_; }

  private:
    uint64_t capacity_;
    std::vector<uint64_t> used_;
    std::vector<uint64_t> peak_;
};

} // namespace unintt

#endif // UNINTT_SIM_MEMORY_HH
