/**
 * @file
 * Inter-GPU fabric models. Three topologies cover the machines the
 * multi-GPU NTT literature evaluates on:
 *
 *  - NvSwitch: every GPU pair has full point-to-point bandwidth
 *    (DGX-class boxes);
 *  - Ring: NVLink bridges arranged in a ring, distance-d transfers pay
 *    d hops;
 *  - Pcie: all traffic staged through host root complexes sharing one
 *    bus.
 *
 * The two collective shapes the NTT algorithms use are modeled
 * explicitly: pairwiseExchangeTime (all GPUs exchange with one partner
 * at a given distance — the butterfly pattern of UniNTT's top level)
 * and allToAllTime (the transpose of the four-step baseline).
 */

#ifndef UNINTT_SIM_INTERCONNECT_HH
#define UNINTT_SIM_INTERCONNECT_HH

#include <cstdint>
#include <string>

namespace unintt {

/** Fabric topology. */
enum class FabricKind { NvSwitch, Ring, Pcie };

/** Printable fabric name. */
const char *toString(FabricKind kind);

/**
 * An inter-GPU fabric: topology plus per-link bandwidth and latency.
 */
struct Interconnect
{
    FabricKind kind = FabricKind::NvSwitch;
    /** Per-direction point-to-point bandwidth per GPU, bytes/s. */
    double linkBandwidth = 250e9;
    /** One-way message latency, seconds. */
    double linkLatency = 2e-6;
    /**
     * Fraction of link bandwidth an all-to-all sustains (switch
     * contention, message slicing); 1.0 means perfect.
     */
    double allToAllEfficiency = 0.6;

    /**
     * Time for all GPUs to concurrently exchange @p bytes_per_gpu with
     * one partner each, where partners are @p distance apart in GPU
     * numbering (butterfly stage s uses distance 2^s).
     */
    double pairwiseExchangeTime(uint64_t bytes_per_gpu,
                                unsigned distance) const;

    /**
     * Time for a full all-to-all in which every GPU sends
     * @p bytes_per_gpu in total, split evenly across the other
     * @p num_gpus - 1 GPUs.
     */
    double allToAllTime(uint64_t bytes_per_gpu, unsigned num_gpus) const;

    /** Time to move @p bytes host->device or device->host (PCIe path). */
    double hostTransferTime(uint64_t bytes) const;
};

/** NVSwitch fabric with NVLink3-class links (DGX A100). */
Interconnect makeNvSwitchFabric();

/** NVLink ring without a switch (bridged consumer/HGX-lite setups). */
Interconnect makeRingFabric();

/** PCIe 4.0 x16 host-staged fabric. */
Interconnect makePcieFabric();

/** Look up a fabric by name ("nvswitch", "ring", "pcie"). */
Interconnect fabricByName(const std::string &name);

} // namespace unintt

#endif // UNINTT_SIM_INTERCONNECT_HH
