/**
 * @file
 * Seeded, deterministic fault injection for the simulated machine.
 *
 * A FaultModel describes an unreliable fabric: per-collective rates for
 * transient exchange failures, payload bit-flips and straggler
 * slowdowns, plus a schedule of permanent device dropouts. A
 * FaultInjector draws from the model with its own xoshiro stream, so a
 * given seed reproduces the exact same event sequence — injected
 * events, counters and priced recovery times are bit-identical across
 * runs, which is what makes fault campaigns regression-testable.
 *
 * Injection is per collective: every exchange-shaped operation (an
 * engine butterfly exchange, a Collectives call) consults the injector
 * once and receives the full fate of that operation — how many
 * transmission attempts failed in transit, whether the payload arrived
 * corrupted, whether a straggler stretched it, or whether a device died
 * before it completed. The consumer decides how to respond (retry,
 * retransmit, re-plan); the injector only decides what the hardware
 * did.
 *
 * SEED-DERIVATION CONTRACT (the one place it is written down).
 * Three kinds of randomness derive from FaultModel::seed, and they must
 * never interfere:
 *
 *  1. Exchange draws (nextExchange / retransmitCorrupted) consume the
 *     injector's sequential xoshiro stream seeded with model.seed.
 *     They are ORDER-SENSITIVE: a replay reproduces them iff the caller
 *     issues the identical call sequence. reset() rewinds this stream
 *     (and the counters and the dropout schedule) to reproduce a
 *     campaign.
 *  2. Compute draws (computeFault) are STATELESS hashes of
 *     (model.seed, device, step, attempt) — they never touch the
 *     xoshiro stream, so adding, removing or reordering compute-side
 *     checks cannot shift the exchange event sequence, and two replays
 *     of the same schedule see the same compute faults regardless of
 *     dispatch order (linear vs DAG waves). Only the injected()
 *     counters record that a draw fired; reset() clears them.
 *  3. Service-level job retries decorrelate their backoff through
 *     RetryPolicy::backoffSeconds(attempt, salt) with a per-job salt —
 *     they re-salt DELAYS only and never reseed an injector, so a
 *     chaos replay of a service run replays the exact same injected
 *     fault sequence per transform.
 */

#ifndef UNINTT_SIM_FAULT_HH
#define UNINTT_SIM_FAULT_HH

#include <cstdint>
#include <vector>

#include "sim/kernel_stats.hh"
#include "util/random.hh"

namespace unintt {

/** A scheduled permanent device loss. */
struct DeviceDropout
{
    /** Device that dies. */
    unsigned gpu = 0;
    /** Global exchange index at which it dies (0 = first exchange). */
    uint64_t atExchange = 0;
};

/** Bounded-exponential-backoff retry policy for transient faults. */
struct RetryPolicy
{
    /** Maximum retransmissions before an exchange is abandoned. */
    unsigned maxRetries = 4;
    /** Backoff before the first retransmission; doubles per attempt. */
    double backoffBaseSeconds = 100e-6;
    /**
     * Ceiling of the exponential doubling: no single backoff delay
     * exceeds this, however many attempts have failed. Without a cap
     * the doubling alone can exceed any job deadline a service layer
     * promises, so the cap — not the attempt count — is what bounds
     * the worst-case recovery latency of one exchange.
     */
    double backoffMaxSeconds = 10e-3;
    /**
     * Jitter spread as a fraction of the capped delay: the delay is
     * scaled by a factor drawn uniformly from
     * [1 - jitterFraction/2, 1 + jitterFraction/2], derived
     * deterministically from @p salt so a seeded run replays exactly.
     * 0 (the default) keeps the classic deterministic doubling; a
     * service retrying many jobs against the same contended fleet sets
     * it to decorrelate their retry storms.
     */
    double jitterFraction = 0.0;

    /** Backoff delay preceding retransmission number @p attempt,
     * capped at backoffMaxSeconds (jitter-free form). */
    double
    backoffSeconds(unsigned attempt) const
    {
        // Clamp the exponent before shifting: past ~2^40 the cap has
        // long since won, and a shift by >= 63 would be undefined.
        const unsigned exp = attempt < 40 ? attempt : 40;
        const double raw =
            backoffBaseSeconds * static_cast<double>(1ULL << exp);
        return raw < backoffMaxSeconds ? raw : backoffMaxSeconds;
    }

    /** Capped backoff with deterministic jitter: @p salt (e.g. a job
     * id) decorrelates concurrent retry sequences. */
    double backoffSeconds(unsigned attempt, uint64_t salt) const;
};

/** Description of an unreliable machine. All rates default to zero. */
struct FaultModel
{
    /** Seed of the injector's random stream. */
    uint64_t seed = 0xfa017u;
    /** P(one transmission attempt of an exchange fails in transit). */
    double transientExchangeRate = 0.0;
    /** P(an exchange's payload arrives with a flipped bit). */
    double bitFlipRate = 0.0;
    /**
     * P(one compute-step attempt writes a flipped bit into its output
     * slice) — silent data corruption inside the arithmetic units, as
     * opposed to bitFlipRate's corruption on the wire. Drawn through
     * the stateless computeFault() hash, never the exchange stream
     * (see the seed-derivation contract above).
     */
    double computeBitFlipRate = 0.0;
    /** P(an exchange is stretched by a straggling device). */
    double stragglerRate = 0.0;
    /** Slowdown factor a straggler applies to the exchange. */
    double stragglerSlowdown = 4.0;
    /** Scheduled permanent dropouts, matched by exchange index. */
    std::vector<DeviceDropout> dropouts;

    /** True iff this model can inject anything at all. */
    bool anyEnabled() const;

    /** A perfectly reliable machine. */
    static FaultModel none() { return FaultModel{}; }
};

/** The fate of one collective exchange, decided by the injector. */
struct ExchangeOutcome
{
    /** Transmission attempts that failed in transit before success. */
    unsigned transientFailures = 0;
    /** All allowed attempts failed; the exchange never completed. */
    bool exhausted = false;
    /** The (first successful) transmission arrived corrupted. */
    bool corrupted = false;
    /** Raw 64-bit draw selecting which payload bit flipped. */
    uint64_t corruptBit = 0;
    /** 1.0, or the straggler slowdown applied to this exchange. */
    double stragglerFactor = 1.0;
    /** Device that died before this exchange (-1: none). */
    int lostGpu = -1;
};

/** The fate of one compute-step attempt, decided by the injector. */
struct ComputeFaultOutcome
{
    /** The attempt's output slice received a flipped bit. */
    bool corrupted = false;
    /** Raw 64-bit draw selecting which output word flips. */
    uint64_t corruptWord = 0;
    /** Raw 64-bit draw selecting which bit of that word flips. */
    uint64_t corruptBit = 0;
};

/** Running totals of what an injector has inflicted. */
struct InjectedFaults
{
    uint64_t exchanges = 0;
    uint64_t transients = 0;
    /** First-transmission payload corruptions (the wire path). */
    uint64_t exchangeCorruptions = 0;
    /** Corruptions injected into checksum-forced retransmissions. */
    uint64_t retransmitCorruptions = 0;
    /** Bit flips injected inside compute-step outputs (the SDC path). */
    uint64_t computeCorruptions = 0;
    uint64_t stragglers = 0;
    uint64_t dropouts = 0;

    /** Every corruption regardless of path. */
    uint64_t
    corruptions() const
    {
        return exchangeCorruptions + retransmitCorruptions +
               computeCorruptions;
    }
};

/** Deterministic source of fault events drawn from a FaultModel. */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultModel model);

    /** The model this injector draws from. */
    const FaultModel &model() const { return model_; }

    /**
     * Decide the fate of the next exchange. @p max_attempts is the
     * retransmission bound: when the initial transmission and all
     * max_attempts retransmissions fail, the outcome is exhausted and
     * the caller must abandon the exchange.
     */
    ExchangeOutcome nextExchange(unsigned max_attempts);

    /**
     * Corruption draw for the retransmission that follows a detected
     * corruption (checksums force a fresh transmission, which the model
     * may corrupt again).
     */
    bool retransmitCorrupted();

    /**
     * Decide the fate of compute-step attempt @p attempt of schedule
     * step @p step on device @p device. Stateless per the contract in
     * the header comment: the result is a pure hash of
     * (model.seed, device, step, attempt), so the exchange stream is
     * untouched and any dispatch order replays identically. Only the
     * injected() totals are mutated (when the draw fires).
     */
    ComputeFaultOutcome computeFault(unsigned device, uint64_t step,
                                     unsigned attempt);

    /** Totals of everything injected so far. */
    const InjectedFaults &injected() const { return injected_; }

    /** Exchanges decided so far (the dropout-schedule clock). */
    uint64_t exchangesSeen() const { return exchangeIndex_; }

    /** Rewind to the initial seeded state (reproduce a campaign). */
    void reset();

  private:
    FaultModel model_;
    Rng rng_;
    uint64_t exchangeIndex_ = 0;
    std::vector<bool> dropoutFired_;
    InjectedFaults injected_;
};

} // namespace unintt

#endif // UNINTT_SIM_FAULT_HH
