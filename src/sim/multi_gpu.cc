#include "sim/multi_gpu.hh"

#include <sstream>

namespace unintt {

std::vector<LevelModel>
MultiGpuSystem::abstractLevels(size_t element_bytes) const
{
    std::vector<LevelModel> levels;

    // Multi-GPU level: lanes are GPUs, local memory is one GPU's DRAM,
    // exchange is the fabric.
    levels.push_back(LevelModel{
        "multi-gpu",
        numGpus,
        gpu.dramCapacityBytes / element_bytes,
        fabric.linkBandwidth * numGpus,
        fabric.linkLatency,
    });

    // GPU level: lanes are SMs, local memory is what a grid of blocks
    // can hold in shared memory at once, exchange is DRAM.
    levels.push_back(LevelModel{
        "gpu",
        gpu.numSms,
        static_cast<uint64_t>(gpu.numSms) * gpu.smemBytesPerBlock /
            element_bytes,
        gpu.dramBandwidth,
        gpu.kernelLaunchLatency,
    });

    // Thread-block level: lanes are warps, local memory is the block's
    // shared memory, exchange is shared memory + barrier.
    unsigned warps_per_block = gpu.maxThreadsPerBlock / gpu.warpSize;
    levels.push_back(LevelModel{
        "block",
        warps_per_block,
        gpu.smemBytesPerBlock / element_bytes,
        gpu.clockHz * gpu.smemBytesPerClockPerSm,
        1.0 / gpu.clockHz * 20, // barrier cost ~20 cycles
    });

    // Warp level: lanes are threads, local memory is registers,
    // exchange is the shuffle network.
    levels.push_back(LevelModel{
        "warp",
        gpu.warpSize,
        gpu.warpSize * 4, // ~4 register-resident elements per lane
        gpu.clockHz * gpu.warpSize * element_bytes,
        1.0 / gpu.clockHz,
    });

    return levels;
}

std::string
MultiGpuSystem::description() const
{
    std::ostringstream os;
    if (numNodes() > 1)
        os << numNodes() << " nodes x " << gpusPerNode << "x " << gpu.name
           << " / " << toString(fabric.kind) << " + ib";
    else
        os << numGpus << "x " << gpu.name << " / "
           << toString(fabric.kind);
    return os.str();
}

MultiGpuSystem
makeDgxA100(unsigned num_gpus)
{
    return MultiGpuSystem{makeA100(), makeNvSwitchFabric(), num_gpus};
}

MultiGpuSystem
makeHgxH100(unsigned num_gpus)
{
    return MultiGpuSystem{makeH100(), makeNvSwitchFabric(), num_gpus};
}

MultiGpuSystem
makePcieWorkstation(unsigned num_gpus)
{
    return MultiGpuSystem{makeRtx4090(), makePcieFabric(), num_gpus};
}

Interconnect
makeInfinibandFabric()
{
    Interconnect f;
    f.kind = FabricKind::NvSwitch; // fat-tree: distance-independent
    f.linkBandwidth = 25e9;        // HDR 200 Gb/s per GPU-paired NIC
    f.linkLatency = 5e-6;
    f.allToAllEfficiency = 0.5;
    return f;
}

MultiGpuSystem
makeA100Cluster(unsigned num_nodes, unsigned gpus_per_node)
{
    MultiGpuSystem sys{makeA100(), makeNvSwitchFabric(),
                       num_nodes * gpus_per_node};
    sys.gpusPerNode = num_nodes > 1 ? gpus_per_node : 0;
    sys.nodeFabric = makeInfinibandFabric();
    return sys;
}

} // namespace unintt
