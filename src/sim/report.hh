/**
 * @file
 * Execution timeline of one simulated run. Engines append kernel and
 * communication phases; the report aggregates simulated time, keeps the
 * raw event counters, and can render itself for the benches.
 */

#ifndef UNINTT_SIM_REPORT_HH
#define UNINTT_SIM_REPORT_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel_stats.hh"
#include "sim/perf_model.hh"

namespace unintt {

/** One phase of a simulated execution. */
struct SimPhase
{
    enum class Kind { Kernel, Comm };

    std::string name;
    Kind kind;
    /** Simulated seconds this phase contributes to the critical path. */
    double seconds = 0;
    /**
     * Seconds of this phase that were hidden behind another phase
     * (communication/computation overlap); informational.
     */
    double hiddenSeconds = 0;
    KernelStats kernel;
    CommStats comm;
    /**
     * IR attribution (unintt/schedule.hh): the step kind and hierarchy
     * level this phase was dispatched from. Empty for phases emitted
     * outside the schedule interpreter (baselines, prover passes).
     */
    std::string step;
    std::string level;
};

/**
 * Host-side execution facts of one run: how many host threads executed
 * the functional work and how the plan/twiddle caches behaved. Purely
 * informational — the simulated timeline and every simulated counter
 * are identical across thread counts and cache temperatures.
 */
struct HostExecStats
{
    /** Host lanes the functional work was allowed to use (0 = unset). */
    unsigned hostThreads = 0;
    uint64_t planCacheHits = 0;
    uint64_t planCacheMisses = 0;
    uint64_t twiddleCacheHits = 0;
    uint64_t twiddleCacheMisses = 0;
    uint64_t twiddleSlabHits = 0;
    uint64_t twiddleSlabMisses = 0;
    uint64_t scheduleCacheHits = 0;
    uint64_t scheduleCacheMisses = 0;
    /** FusedLocalPass steps the dispatched schedule contained. */
    uint64_t fusedGroups = 0;
    /** Waves of the DAG overlay dispatched (overlapped schedules). */
    uint64_t overlapWaves = 0;
    /** Double-buffered exchange chunk nodes executed. */
    uint64_t exchangeChunks = 0;
    /**
     * Resolved kernel acceleration path name (field/dispatch.hh):
     * "scalar", "avx2", ... Empty = unset; "mixed" after merging runs
     * bound to different paths. A string so the sim layer stays
     * independent of the field-layer enum.
     */
    std::string isaPath;
    /** Vector lanes of the bound kernel table (0 = unset). */
    unsigned isaLanes = 0;
    /** Span-kernel fan-outs dispatched through the bound table. */
    uint64_t isaDispatches = 0;
    /** Runs whose knobs came from a tuning-DB hit (unintt/tunedb.hh). */
    uint64_t tunedSchedules = 0;
    /** Runs that fell back to the built-in heuristic. */
    uint64_t heuristicSchedules = 0;
    /** DB-supplied tiles raised to the lane-aware floor this run. */
    uint64_t tuneClampWarnings = 0;

    /** True iff anything was recorded. */
    bool
    any() const
    {
        return hostThreads != 0 || planCacheHits || planCacheMisses ||
               twiddleCacheHits || twiddleCacheMisses ||
               twiddleSlabHits || twiddleSlabMisses ||
               scheduleCacheHits || scheduleCacheMisses ||
               fusedGroups || overlapWaves || exchangeChunks ||
               !isaPath.empty() || isaLanes != 0 || isaDispatches ||
               tunedSchedules || heuristicSchedules ||
               tuneClampWarnings;
    }

    /** Combine with another run's host facts (report append). */
    HostExecStats &
    operator+=(const HostExecStats &o)
    {
        hostThreads = std::max(hostThreads, o.hostThreads);
        planCacheHits += o.planCacheHits;
        planCacheMisses += o.planCacheMisses;
        twiddleCacheHits += o.twiddleCacheHits;
        twiddleCacheMisses += o.twiddleCacheMisses;
        twiddleSlabHits += o.twiddleSlabHits;
        twiddleSlabMisses += o.twiddleSlabMisses;
        scheduleCacheHits += o.scheduleCacheHits;
        scheduleCacheMisses += o.scheduleCacheMisses;
        fusedGroups += o.fusedGroups;
        overlapWaves += o.overlapWaves;
        exchangeChunks += o.exchangeChunks;
        if (!o.isaPath.empty()) {
            if (isaPath.empty())
                isaPath = o.isaPath;
            else if (isaPath != o.isaPath)
                isaPath = "mixed";
        }
        isaLanes = std::max(isaLanes, o.isaLanes);
        isaDispatches += o.isaDispatches;
        tunedSchedules += o.tunedSchedules;
        heuristicSchedules += o.heuristicSchedules;
        tuneClampWarnings += o.tuneClampWarnings;
        return *this;
    }
};

/**
 * Multi-tenant service outcome counters for one tenant (or the
 * aggregate): how admission, scheduling and the deadline watchdog
 * treated the tenant's jobs. Produced by the proving service
 * (src/service/) and surfaced through SimReport so service runs report
 * through the same channel as engine runs.
 */
struct ServiceCounters
{
    uint64_t submitted = 0;
    /** Jobs accepted into the queue. */
    uint64_t admitted = 0;
    /** Jobs rejected by load shedding (queue at capacity). */
    uint64_t shed = 0;
    /** Jobs rejected by the tenant's admission quota. */
    uint64_t quotaRejected = 0;
    /** Jobs that completed with an OK status inside their deadline. */
    uint64_t completed = 0;
    /** Jobs that failed cleanly (non-OK status, not deadline). */
    uint64_t failed = 0;
    /** Service-level retry attempts (capped backoff + jitter). */
    uint64_t retried = 0;
    /** Jobs run (or re-run) on a smaller GPU placement. */
    uint64_t degraded = 0;
    /** Jobs cancelled by the deadline watchdog. */
    uint64_t deadlineMissed = 0;
    /** Jobs whose transform rode a coalesced batched launch. */
    uint64_t coalesced = 0;

    /** True iff any counter is nonzero. */
    bool any() const;

    /** Accumulate another tenant's (or run's) counters. */
    ServiceCounters &operator+=(const ServiceCounters &o);
};

/** Accumulated timeline and counters of one simulated run. */
class SimReport
{
  public:
    /** Append a kernel phase priced by @p model; returns its seconds. */
    double addKernelPhase(const std::string &name,
                          const KernelStats &stats, const PerfModel &model);

    /** Append a communication phase with externally computed time. */
    void addCommPhase(const std::string &name, double seconds,
                      const CommStats &stats, double hidden_seconds = 0);

    /**
     * Attribute the most recently added phase to a schedule step
     * (step kind + hierarchy level); no-op on an empty report.
     */
    void tagLastPhase(const char *step, const char *level);

    /** All phases in execution order. */
    const std::vector<SimPhase> &phases() const { return phases_; }

    /** Total simulated seconds (critical path). */
    double totalSeconds() const;

    /** Simulated seconds spent in kernel phases. */
    double kernelSeconds() const;

    /** Simulated seconds spent in (non-hidden) communication. */
    double commSeconds() const;

    /** Sum of counters over all kernel phases. */
    KernelStats totalKernelStats() const;

    /** Sum of counters over all communication phases. */
    CommStats totalCommStats() const;

    /** Merge (append) another report's phases into this one. */
    void append(const SimReport &other);

    /** Merge resilience counters observed during the run. */
    void addFaultStats(const FaultStats &f) { faults_ += f; }

    /** Fault/resilience counters (all zero on a fault-free run). */
    const FaultStats &faultStats() const { return faults_; }

    /** Merge host-side execution facts (threads, cache hits). */
    void addHostExecStats(const HostExecStats &h) { hostExec_ += h; }

    /** Host-side execution facts (zero when never recorded). */
    const HostExecStats &hostExecStats() const { return hostExec_; }

    /**
     * Merge service outcome counters attributed to @p tenant ("" for
     * the aggregate row). Rows merge by tenant label, so appending
     * reports sums per-tenant counters.
     */
    void addServiceCounters(const std::string &tenant,
                            const ServiceCounters &c);

    /** Per-tenant service counters, in first-seen order. */
    const std::vector<std::pair<std::string, ServiceCounters>> &
    serviceCounters() const
    {
        return service_;
    }

    /** Record the per-GPU peak device-memory footprint. */
    void
    setPeakDeviceBytes(uint64_t bytes)
    {
        peakDeviceBytes_ = std::max(peakDeviceBytes_, bytes);
    }

    /** Per-GPU peak device-memory footprint (0 if not tracked). */
    uint64_t peakDeviceBytes() const { return peakDeviceBytes_; }

    /** Multi-line human-readable phase listing. */
    std::string toString() const;

  private:
    std::vector<SimPhase> phases_;
    uint64_t peakDeviceBytes_ = 0;
    FaultStats faults_;
    HostExecStats hostExec_;
    std::vector<std::pair<std::string, ServiceCounters>> service_;
};

} // namespace unintt

#endif // UNINTT_SIM_REPORT_HH
