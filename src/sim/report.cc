#include "sim/report.hh"

#include <sstream>

#include "util/stats.hh"

namespace unintt {

double
SimReport::addKernelPhase(const std::string &name, const KernelStats &stats,
                          const PerfModel &model)
{
    SimPhase phase;
    phase.name = name;
    phase.kind = SimPhase::Kind::Kernel;
    phase.seconds = model.kernelSeconds(stats);
    phase.kernel = stats;
    phases_.push_back(phase);
    return phase.seconds;
}

void
SimReport::addCommPhase(const std::string &name, double seconds,
                        const CommStats &stats, double hidden_seconds)
{
    SimPhase phase;
    phase.name = name;
    phase.kind = SimPhase::Kind::Comm;
    phase.seconds = seconds;
    phase.hiddenSeconds = hidden_seconds;
    phase.comm = stats;
    phases_.push_back(phase);
}

void
SimReport::tagLastPhase(const char *step, const char *level)
{
    if (phases_.empty())
        return;
    phases_.back().step = step;
    phases_.back().level = level;
}

double
SimReport::totalSeconds() const
{
    double t = 0;
    for (const auto &p : phases_)
        t += p.seconds;
    return t;
}

double
SimReport::kernelSeconds() const
{
    double t = 0;
    for (const auto &p : phases_)
        if (p.kind == SimPhase::Kind::Kernel)
            t += p.seconds;
    return t;
}

double
SimReport::commSeconds() const
{
    double t = 0;
    for (const auto &p : phases_)
        if (p.kind == SimPhase::Kind::Comm)
            t += p.seconds;
    return t;
}

KernelStats
SimReport::totalKernelStats() const
{
    KernelStats total;
    for (const auto &p : phases_)
        if (p.kind == SimPhase::Kind::Kernel)
            total += p.kernel;
    return total;
}

CommStats
SimReport::totalCommStats() const
{
    CommStats total;
    for (const auto &p : phases_)
        if (p.kind == SimPhase::Kind::Comm)
            total += p.comm;
    return total;
}

bool
ServiceCounters::any() const
{
    return submitted || admitted || shed || quotaRejected || completed ||
           failed || retried || degraded || deadlineMissed || coalesced;
}

ServiceCounters &
ServiceCounters::operator+=(const ServiceCounters &o)
{
    submitted += o.submitted;
    admitted += o.admitted;
    shed += o.shed;
    quotaRejected += o.quotaRejected;
    completed += o.completed;
    failed += o.failed;
    retried += o.retried;
    degraded += o.degraded;
    deadlineMissed += o.deadlineMissed;
    coalesced += o.coalesced;
    return *this;
}

void
SimReport::addServiceCounters(const std::string &tenant,
                              const ServiceCounters &c)
{
    for (auto &row : service_) {
        if (row.first == tenant) {
            row.second += c;
            return;
        }
    }
    service_.emplace_back(tenant, c);
}

void
SimReport::append(const SimReport &other)
{
    phases_.insert(phases_.end(), other.phases_.begin(),
                   other.phases_.end());
    setPeakDeviceBytes(other.peakDeviceBytes());
    faults_ += other.faults_;
    hostExec_ += other.hostExec_;
    for (const auto &row : other.service_)
        addServiceCounters(row.first, row.second);
}

std::string
SimReport::toString() const
{
    std::ostringstream os;
    for (const auto &p : phases_) {
        os << (p.kind == SimPhase::Kind::Kernel ? "[kernel] " : "[comm]   ")
           << p.name << ": " << formatSeconds(p.seconds);
        if (p.hiddenSeconds > 0)
            os << " (+" << formatSeconds(p.hiddenSeconds) << " hidden)";
        os << "\n";
    }
    os << "total: " << formatSeconds(totalSeconds())
       << " (kernel " << formatSeconds(kernelSeconds()) << ", comm "
       << formatSeconds(commSeconds()) << ")\n";
    if (hostExec_.any()) {
        os << "host: " << hostExec_.hostThreads << " thread"
           << (hostExec_.hostThreads == 1 ? "" : "s") << ", plan cache "
           << hostExec_.planCacheHits << " hit/"
           << hostExec_.planCacheMisses << " miss, twiddle cache "
           << hostExec_.twiddleCacheHits << " hit/"
           << hostExec_.twiddleCacheMisses << " miss, twiddle slabs "
           << hostExec_.twiddleSlabHits << " hit/"
           << hostExec_.twiddleSlabMisses << " miss, schedule cache "
           << hostExec_.scheduleCacheHits << " hit/"
           << hostExec_.scheduleCacheMisses << " miss, fused groups "
           << hostExec_.fusedGroups;
        if (hostExec_.overlapWaves || hostExec_.exchangeChunks)
            os << ", overlap " << hostExec_.overlapWaves << " wave"
               << (hostExec_.overlapWaves == 1 ? "" : "s") << "/"
               << hostExec_.exchangeChunks << " exchange chunks";
        if (!hostExec_.isaPath.empty())
            os << ", isa " << hostExec_.isaPath << " ("
               << hostExec_.isaLanes << " lane"
               << (hostExec_.isaLanes == 1 ? "" : "s") << ", "
               << hostExec_.isaDispatches << " dispatches)";
        if (hostExec_.tunedSchedules || hostExec_.heuristicSchedules) {
            os << ", schedule ";
            if (hostExec_.tunedSchedules &&
                hostExec_.heuristicSchedules)
                os << "mixed (" << hostExec_.tunedSchedules
                   << " tuned/" << hostExec_.heuristicSchedules
                   << " heuristic)";
            else if (hostExec_.tunedSchedules)
                os << "tuned";
            else
                os << "heuristic";
            if (hostExec_.tuneClampWarnings)
                os << " [" << hostExec_.tuneClampWarnings
                   << " tile clamp warning"
                   << (hostExec_.tuneClampWarnings == 1 ? "" : "s")
                   << "]";
        }
        os << "\n";
    }
    if (faults_.any()) {
        os << "faults: " << faults_.transientRetries << " retries, "
           << faults_.corruptionsDetected << " corruptions detected, "
           << faults_.stragglerEvents << " stragglers ("
           << faults_.watchdogTimeouts << " watchdog timeouts), "
           << faults_.devicesLost << " devices lost ("
           << faults_.degradedReplans << " degraded re-plans, "
           << faults_.devicesExcluded << " health-excluded), "
           << faults_.spotChecks << " spot checks ("
           << faults_.spotCheckFailures << " failed)\n";
        if (faults_.abftChecks)
            os << "abft: " << faults_.abftChecks << " checks, "
               << faults_.abftCatches << " catches, "
               << faults_.tilesRecomputed << " tiles recomputed, "
               << faults_.abftEscalations << " escalations\n";
    }
    for (const auto &row : service_) {
        if (!row.second.any())
            continue;
        const ServiceCounters &c = row.second;
        os << "service";
        if (!row.first.empty())
            os << "[" << row.first << "]";
        os << ": " << c.submitted << " submitted, " << c.admitted
           << " admitted (" << c.shed << " shed, " << c.quotaRejected
           << " quota-rejected), " << c.completed << " completed, "
           << c.failed << " failed, " << c.retried << " retried, "
           << c.degraded << " degraded, " << c.deadlineMissed
           << " deadline-missed, " << c.coalesced << " coalesced\n";
    }
    return os.str();
}

} // namespace unintt
