/**
 * @file
 * The analytic timing model: converts the event counters of a
 * functionally executed phase into simulated seconds on a GpuModel.
 *
 * Per kernel phase the model is a roofline: the phase takes the maximum
 * of its compute time, DRAM time, shared-memory time and shuffle time,
 * plus the launch latency of its kernel launches. Communication phases
 * are priced by the Interconnect. The model is deliberately simple and
 * fully documented so every reported number can be traced to counted
 * events and spec-sheet constants (see DESIGN.md).
 */

#ifndef UNINTT_SIM_PERF_MODEL_HH
#define UNINTT_SIM_PERF_MODEL_HH

#include "sim/hw_model.hh"
#include "sim/interconnect.hh"
#include "sim/kernel_stats.hh"

namespace unintt {

/** Breakdown of one kernel phase's roofline terms, in seconds. */
struct KernelTime
{
    double compute = 0;
    double dram = 0;
    double smem = 0;
    double shuffle = 0;
    double launch = 0;

    /** Roofline total: max of the resource terms plus launch overhead. */
    double total() const;
};

/**
 * Timing model for one GPU of a given model running one field's
 * arithmetic.
 */
class PerfModel
{
  public:
    PerfModel(GpuModel gpu, FieldCost field)
        : gpu_(std::move(gpu)), field_(field)
    {
    }

    /** The device being modeled. */
    const GpuModel &gpu() const { return gpu_; }

    /** The field cost constants in use. */
    const FieldCost &field() const { return field_; }

    /** Roofline breakdown of one kernel phase. */
    KernelTime kernelTime(const KernelStats &stats) const;

    /** Convenience: total seconds of one kernel phase. */
    double
    kernelSeconds(const KernelStats &stats) const
    {
        return kernelTime(stats).total();
    }

    /** Aggregate u64-multiply slots per second on this device. */
    double
    mulSlotRate() const
    {
        return gpu_.numSms * gpu_.clockHz * gpu_.u64MulsPerClockPerSm;
    }

    /** Aggregate shared-memory bandwidth in bytes/s. */
    double
    smemBandwidth() const
    {
        return gpu_.numSms * gpu_.clockHz * gpu_.smemBytesPerClockPerSm;
    }

    /** Shuffle operations per second (one per lane per clock). */
    double
    shuffleRate() const
    {
        return gpu_.numSms * gpu_.clockHz * gpu_.warpSize;
    }

  private:
    GpuModel gpu_;
    FieldCost field_;
};

} // namespace unintt

#endif // UNINTT_SIM_PERF_MODEL_HH
