/**
 * @file
 * Event counters recorded by the functionally executed kernels. The
 * simulated engines tally exactly the events a GPU implementation would
 * generate (arithmetic, DRAM sectors, shared-memory traffic, shuffles,
 * barriers, link bytes); perf_model.hh converts a KernelStats into
 * simulated time.
 */

#ifndef UNINTT_SIM_KERNEL_STATS_HH
#define UNINTT_SIM_KERNEL_STATS_HH

#include <cstdint>
#include <string>

#include "util/stats.hh"

namespace unintt {

/** Counters for one kernel-level execution phase. */
struct KernelStats
{
    // Arithmetic.
    uint64_t fieldMuls = 0;
    uint64_t fieldAdds = 0;
    uint64_t butterflies = 0;

    // Global (DRAM) traffic, in bytes actually moved on the bus.
    // Strided access patterns must account whole sectors.
    uint64_t globalReadBytes = 0;
    uint64_t globalWriteBytes = 0;

    // Intra-block traffic.
    uint64_t smemBytes = 0;
    uint64_t smemBankConflicts = 0;
    uint64_t shuffles = 0;
    uint64_t syncs = 0;

    // Launch overheads.
    uint64_t kernelLaunches = 0;

    /** Total DRAM bytes. */
    uint64_t
    globalBytes() const
    {
        return globalReadBytes + globalWriteBytes;
    }

    /** Accumulate another phase's counters. */
    KernelStats &operator+=(const KernelStats &o);

    /** Export to a named StatSet with the given prefix. */
    void exportTo(StatSet &out, const std::string &prefix) const;
};

KernelStats operator+(KernelStats a, const KernelStats &b);

/** Counters for one inter-GPU communication phase. */
struct CommStats
{
    /** Bytes each GPU sends in this phase. */
    uint64_t bytesPerGpu = 0;
    /** Number of exchange operations (stages or message rounds). */
    uint64_t messages = 0;

    CommStats &
    operator+=(const CommStats &o)
    {
        bytesPerGpu += o.bytesPerGpu;
        messages += o.messages;
        return *this;
    }
};

} // namespace unintt

#endif // UNINTT_SIM_KERNEL_STATS_HH
