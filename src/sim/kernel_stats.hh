/**
 * @file
 * Event counters recorded by the functionally executed kernels. The
 * simulated engines tally exactly the events a GPU implementation would
 * generate (arithmetic, DRAM sectors, shared-memory traffic, shuffles,
 * barriers, link bytes); perf_model.hh converts a KernelStats into
 * simulated time.
 */

#ifndef UNINTT_SIM_KERNEL_STATS_HH
#define UNINTT_SIM_KERNEL_STATS_HH

#include <cstdint>
#include <string>

#include "util/stats.hh"

namespace unintt {

/** Counters for one kernel-level execution phase. */
struct KernelStats
{
    // Arithmetic.
    uint64_t fieldMuls = 0;
    uint64_t fieldAdds = 0;
    uint64_t butterflies = 0;

    // Global (DRAM) traffic, in bytes actually moved on the bus.
    // Strided access patterns must account whole sectors.
    uint64_t globalReadBytes = 0;
    uint64_t globalWriteBytes = 0;

    // Intra-block traffic.
    uint64_t smemBytes = 0;
    uint64_t smemBankConflicts = 0;
    uint64_t shuffles = 0;
    uint64_t syncs = 0;

    // Launch overheads.
    uint64_t kernelLaunches = 0;

    /** Total DRAM bytes. */
    uint64_t
    globalBytes() const
    {
        return globalReadBytes + globalWriteBytes;
    }

    /** Accumulate another phase's counters. */
    KernelStats &operator+=(const KernelStats &o);

    /** Export to a named StatSet with the given prefix. */
    void exportTo(StatSet &out, const std::string &prefix) const;
};

KernelStats operator+(KernelStats a, const KernelStats &b);

/** Counters for one inter-GPU communication phase. */
struct CommStats
{
    /** Bytes each GPU sends in this phase. */
    uint64_t bytesPerGpu = 0;
    /** Number of exchange operations (stages or message rounds). */
    uint64_t messages = 0;
    /** Retransmissions caused by injected faults (0 on a clean fabric). */
    uint64_t retries = 0;

    CommStats &
    operator+=(const CommStats &o)
    {
        bytesPerGpu += o.bytesPerGpu;
        messages += o.messages;
        retries += o.retries;
        return *this;
    }
};

/**
 * Counters of injected faults and of the resilience machinery's
 * responses to them (retries, checksum detections, degraded re-plans).
 * All zero on a fault-free run.
 */
struct FaultStats
{
    /** Exchange events that consulted a fault injector. */
    uint64_t exchanges = 0;
    /** Retransmissions after transient link failures. */
    uint64_t transientRetries = 0;
    /** Payload corruptions caught by the exchange checksums. */
    uint64_t corruptionsDetected = 0;
    /** Exchanges stretched by a straggling device. */
    uint64_t stragglerEvents = 0;
    /** Permanent device dropouts absorbed. */
    uint64_t devicesLost = 0;
    /** Degraded-mode re-shard + re-plan events. */
    uint64_t degradedReplans = 0;
    /** Post-transform spot-check samples evaluated. */
    uint64_t spotChecks = 0;
    /** Spot-check samples that exposed a wrong output. */
    uint64_t spotCheckFailures = 0;
    /** Payload bytes covered by exchange checksums. */
    uint64_t checksummedBytes = 0;
    /** Exchanges aborted at the straggler watchdog deadline. */
    uint64_t watchdogTimeouts = 0;
    /** Devices excluded up front by the health tracker. */
    uint64_t devicesExcluded = 0;
    /** ABFT checksum comparisons after compute steps. */
    uint64_t abftChecks = 0;
    /** Compute-path corruptions the ABFT checksums caught. */
    uint64_t abftCatches = 0;
    /** Tiles recomputed after ABFT localization. */
    uint64_t tilesRecomputed = 0;
    /** ABFT retry budgets exhausted (escalated to degrade/reschedule). */
    uint64_t abftEscalations = 0;

    /** True iff any counter is nonzero. */
    bool any() const;

    /** Accumulate another phase's counters. */
    FaultStats &operator+=(const FaultStats &o);

    /** Export to a named StatSet with the given prefix. */
    void exportTo(StatSet &out, const std::string &prefix) const;
};

} // namespace unintt

#endif // UNINTT_SIM_KERNEL_STATS_HH
