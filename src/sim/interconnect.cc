#include "sim/interconnect.hh"

#include <algorithm>

#include "util/logging.hh"

namespace unintt {

const char *
toString(FabricKind kind)
{
    switch (kind) {
      case FabricKind::NvSwitch:
        return "nvswitch";
      case FabricKind::Ring:
        return "ring";
      case FabricKind::Pcie:
        return "pcie";
    }
    return "?";
}

double
Interconnect::pairwiseExchangeTime(uint64_t bytes_per_gpu,
                                   unsigned distance) const
{
    double bytes = static_cast<double>(bytes_per_gpu);
    switch (kind) {
      case FabricKind::NvSwitch:
        // Switch gives full bandwidth to every disjoint pair at once.
        return linkLatency + bytes / linkBandwidth;
      case FabricKind::Ring: {
        // A distance-d transfer crosses d ring segments; concurrent
        // pairs at distance d overlap on segments, so the bottleneck
        // segment carries d flows.
        double hops = std::max(1u, distance);
        return linkLatency * hops + bytes * hops / linkBandwidth;
      }
      case FabricKind::Pcie:
        // Host-staged: down + up, and every concurrent pair shares the
        // root-complex bandwidth; model one extra serialization factor
        // of 2 for the staging copy.
        return 2 * linkLatency + 2 * bytes / linkBandwidth;
    }
    panic("unreachable fabric kind");
}

double
Interconnect::allToAllTime(uint64_t bytes_per_gpu, unsigned num_gpus) const
{
    if (num_gpus <= 1)
        return 0.0;
    double bytes = static_cast<double>(bytes_per_gpu);
    double chunk = bytes / (num_gpus - 1);
    switch (kind) {
      case FabricKind::NvSwitch:
        // (G-1) message setups; sustained rate derated by the
        // all-to-all efficiency.
        return linkLatency * (num_gpus - 1) +
               bytes / (linkBandwidth * allToAllEfficiency);
      case FabricKind::Ring:
        // Classic ring all-to-all: G-1 rounds, each moving one chunk
        // around the ring.
        return (num_gpus - 1) * (linkLatency + chunk / linkBandwidth);
      case FabricKind::Pcie:
        // All 2*bytes (down+up) of every GPU cross the shared bus.
        return 2 * linkLatency * (num_gpus - 1) +
               2 * bytes * num_gpus / linkBandwidth;
    }
    panic("unreachable fabric kind");
}

double
Interconnect::hostTransferTime(uint64_t bytes) const
{
    // Host staging uses the PCIe-class path regardless of fabric.
    double host_bw = kind == FabricKind::Pcie ? linkBandwidth : 25e9;
    return linkLatency + static_cast<double>(bytes) / host_bw;
}

Interconnect
makeNvSwitchFabric()
{
    Interconnect f;
    f.kind = FabricKind::NvSwitch;
    f.linkBandwidth = 250e9; // NVLink3 aggregate per direction
    f.linkLatency = 2e-6;
    f.allToAllEfficiency = 0.6;
    return f;
}

Interconnect
makeRingFabric()
{
    Interconnect f;
    f.kind = FabricKind::Ring;
    f.linkBandwidth = 100e9; // bridged NVLink pair
    f.linkLatency = 2.5e-6;
    f.allToAllEfficiency = 0.4;
    return f;
}

Interconnect
makePcieFabric()
{
    Interconnect f;
    f.kind = FabricKind::Pcie;
    f.linkBandwidth = 25e9; // PCIe 4.0 x16 per direction
    f.linkLatency = 5e-6;
    f.allToAllEfficiency = 0.5;
    return f;
}

Interconnect
fabricByName(const std::string &name)
{
    if (name == "nvswitch")
        return makeNvSwitchFabric();
    if (name == "ring")
        return makeRingFabric();
    if (name == "pcie")
        return makePcieFabric();
    fatal("unknown fabric '%s' (expected nvswitch, ring, pcie)",
          name.c_str());
}

} // namespace unintt
