/**
 * @file
 * Collective-communication primitives priced on an Interconnect —
 * the NCCL-style vocabulary the distributed kernels are built from.
 * Each primitive returns simulated seconds and reports the per-GPU
 * wire traffic, so algorithm-level code (four-step transposes, MSM
 * reductions, witness distribution) can reason about collectives
 * instead of raw link timings.
 *
 * Cost models follow the standard ring/tree algorithm analyses
 * (Thakur et al.; NCCL documentation): an all-gather or
 * reduce-scatter of per-GPU payload B over G devices moves
 * B*(G-1)/G per round for G-1 rounds on a ring.
 */

#ifndef UNINTT_SIM_COLLECTIVES_HH
#define UNINTT_SIM_COLLECTIVES_HH

#include <cstdint>

#include "sim/fault.hh"
#include "sim/interconnect.hh"
#include "sim/kernel_stats.hh"

namespace unintt {

/** Result of pricing one collective. */
struct CollectiveCost
{
    /** Simulated seconds on the critical path (retries included). */
    double seconds = 0;
    /** Wire traffic attributable to each GPU. */
    CommStats stats;
    /**
     * False when an attached fault injector made the collective fail
     * permanently (retry budget exhausted or a device dropped out);
     * the caller must re-plan or surface the failure.
     */
    bool completed = true;
};

/** Collective operations over a set of GPUs on one fabric. */
class Collectives
{
  public:
    Collectives(Interconnect fabric, unsigned num_gpus);

    /** Devices participating. */
    unsigned numGpus() const { return numGpus_; }

    /**
     * Every GPU exchanges @p bytes_per_gpu with a partner
     * @p distance away (the NTT butterfly pattern).
     */
    CollectiveCost butterflyExchange(uint64_t bytes_per_gpu,
                                     unsigned distance) const;

    /**
     * Every GPU redistributes @p bytes_per_gpu across all others
     * (the four-step transpose pattern).
     */
    CollectiveCost allToAll(uint64_t bytes_per_gpu) const;

    /**
     * Every GPU ends with all GPUs' @p bytes_per_gpu buffers
     * (ring algorithm).
     */
    CollectiveCost allGather(uint64_t bytes_per_gpu) const;

    /**
     * Element-wise reduction of per-GPU buffers of
     * @p bytes_per_gpu, scattered so each GPU holds one reduced
     * share (ring algorithm).
     */
    CollectiveCost reduceScatter(uint64_t bytes_per_gpu) const;

    /** reduceScatter followed by allGather on the shares. */
    CollectiveCost allReduce(uint64_t bytes_per_gpu) const;

    /** One GPU sends @p bytes to all others (binomial tree). */
    CollectiveCost broadcast(uint64_t bytes) const;

    /**
     * Route every collective through @p injector: transient failures
     * are retried under @p retry (priced into the returned seconds),
     * stragglers stretch the collective, corruption forces one
     * retransmission, and dropout/exhaustion mark the cost incomplete.
     * Pass nullptr to detach and return to a perfect fabric.
     */
    void attachFaults(FaultInjector *injector, RetryPolicy retry = {});

  private:
    /** Apply the injector's verdict on one priced collective. */
    void applyFaults(CollectiveCost &c, double retransmit_seconds) const;

    Interconnect fabric_;
    unsigned numGpus_;
    FaultInjector *faults_ = nullptr;
    RetryPolicy retry_;
};

} // namespace unintt

#endif // UNINTT_SIM_COLLECTIVES_HH
