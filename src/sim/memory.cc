#include "sim/memory.hh"

#include "util/logging.hh"

namespace unintt {

DeviceMemoryModel::DeviceMemoryModel(const GpuModel &gpu,
                                     unsigned num_gpus)
    : capacity_(gpu.dramCapacityBytes), used_(num_gpus, 0),
      peak_(num_gpus, 0)
{
    UNINTT_ASSERT(num_gpus > 0, "need at least one GPU");
}

void
DeviceMemoryModel::alloc(unsigned gpu, uint64_t bytes,
                         const std::string &tag)
{
    UNINTT_ASSERT(gpu < used_.size(), "GPU index out of range");
    if (used_[gpu] + bytes > capacity_)
        fatal("device %u out of memory allocating %llu bytes for '%s' "
              "(%llu of %llu in use)",
              gpu, static_cast<unsigned long long>(bytes), tag.c_str(),
              static_cast<unsigned long long>(used_[gpu]),
              static_cast<unsigned long long>(capacity_));
    used_[gpu] += bytes;
    peak_[gpu] = std::max(peak_[gpu], used_[gpu]);
}

void
DeviceMemoryModel::allocAll(uint64_t bytes, const std::string &tag)
{
    for (unsigned g = 0; g < used_.size(); ++g)
        alloc(g, bytes, tag);
}

void
DeviceMemoryModel::free(unsigned gpu, uint64_t bytes)
{
    UNINTT_ASSERT(gpu < used_.size(), "GPU index out of range");
    UNINTT_ASSERT(used_[gpu] >= bytes, "double free in memory model");
    used_[gpu] -= bytes;
}

void
DeviceMemoryModel::freeAll(uint64_t bytes)
{
    for (unsigned g = 0; g < used_.size(); ++g)
        free(g, bytes);
}

uint64_t
DeviceMemoryModel::usedBytes(unsigned gpu) const
{
    UNINTT_ASSERT(gpu < used_.size(), "GPU index out of range");
    return used_[gpu];
}

uint64_t
DeviceMemoryModel::peakBytes(unsigned gpu) const
{
    UNINTT_ASSERT(gpu < peak_.size(), "GPU index out of range");
    return peak_[gpu];
}

uint64_t
DeviceMemoryModel::maxPeakBytes() const
{
    uint64_t m = 0;
    for (uint64_t p : peak_)
        m = std::max(m, p);
    return m;
}

} // namespace unintt
