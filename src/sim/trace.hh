/**
 * @file
 * Timeline export in the Chrome trace-event format (the JSON array
 * flavor), viewable in chrome://tracing or Perfetto. Kernel phases and
 * communication phases land on separate tracks; hidden (overlapped)
 * communication is emitted on its own track so the overlap is visible.
 */

#ifndef UNINTT_SIM_TRACE_HH
#define UNINTT_SIM_TRACE_HH

#include <string>

#include "sim/report.hh"

namespace unintt {

/**
 * Render @p report as Chrome trace-event JSON.
 *
 * @param report  the simulated timeline.
 * @param process label used as the trace's process name.
 */
std::string toChromeTrace(const SimReport &report,
                          const std::string &process);

/** Write toChromeTrace() output to @p path; fatal on I/O failure. */
void writeChromeTrace(const SimReport &report, const std::string &process,
                      const std::string &path);

} // namespace unintt

#endif // UNINTT_SIM_TRACE_HH
