/**
 * @file
 * Composition of the simulated machine: a number of identical GPUs plus
 * an inter-GPU fabric, and the derivation of the paper's abstract
 * hierarchy (warp / thread block / GPU / multi-GPU) from the concrete
 * parameters.
 */

#ifndef UNINTT_SIM_MULTI_GPU_HH
#define UNINTT_SIM_MULTI_GPU_HH

#include <string>
#include <vector>

#include "sim/hw_model.hh"
#include "sim/interconnect.hh"

namespace unintt {

/**
 * A multi-GPU machine: identical devices on one fabric, optionally
 * spread over several nodes joined by a slower inter-node fabric (the
 * natural fifth hierarchy level — see DESIGN.md, extension section).
 */
struct MultiGpuSystem
{
    GpuModel gpu;
    Interconnect fabric;
    /** Total GPUs across all nodes. */
    unsigned numGpus = 1;
    /** GPUs per node; 0 means everything sits in a single node. */
    unsigned gpusPerNode = 0;
    /** Fabric between nodes, used when an exchange crosses nodes. */
    Interconnect nodeFabric;

    /** Number of nodes (1 when single-node). */
    unsigned
    numNodes() const
    {
        return gpusPerNode == 0 ? 1 : numGpus / gpusPerNode;
    }

    /** True iff a partner @p distance GPU indices away is off-node. */
    bool
    crossesNodes(unsigned distance) const
    {
        return gpusPerNode != 0 && distance >= gpusPerNode;
    }

    /**
     * The fabric and effective hop distance for a pairwise exchange
     * between GPUs @p distance indices apart.
     */
    const Interconnect &
    fabricFor(unsigned distance, unsigned &effective_distance) const
    {
        if (crossesNodes(distance)) {
            effective_distance = distance / gpusPerNode;
            return nodeFabric;
        }
        effective_distance = distance;
        return fabric;
    }

    /**
     * The abstract hardware model instance for this machine: one
     * LevelModel per hierarchy level, outermost (multi-GPU) first.
     * Capacities are expressed in elements of @p element_bytes.
     */
    std::vector<LevelModel> abstractLevels(size_t element_bytes) const;

    /** Total device memory across the machine. */
    uint64_t
    totalMemoryBytes() const
    {
        return static_cast<uint64_t>(numGpus) * gpu.dramCapacityBytes;
    }

    /** "4x A100-SXM4-80GB / nvswitch" style description. */
    std::string description() const;
};

/** DGX-A100-like machine: A100s behind an NVSwitch. */
MultiGpuSystem makeDgxA100(unsigned num_gpus);

/** H100 HGX-like machine. */
MultiGpuSystem makeHgxH100(unsigned num_gpus);

/** Consumer workstation: RTX 4090s on PCIe. */
MultiGpuSystem makePcieWorkstation(unsigned num_gpus);

/**
 * Multi-node cluster: DGX-A100 nodes (NVSwitch inside) joined by an
 * InfiniBand-class fabric.
 */
MultiGpuSystem makeA100Cluster(unsigned num_nodes, unsigned gpus_per_node);

/** InfiniBand HDR-class inter-node fabric (per-GPU NIC share). */
Interconnect makeInfinibandFabric();

} // namespace unintt

#endif // UNINTT_SIM_MULTI_GPU_HH
