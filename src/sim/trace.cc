#include "sim/trace.hh"

#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace unintt {

namespace {

/** Escape a string for JSON embedding. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** One complete-event record ("ph":"X"). */
void
emitEvent(std::ostringstream &os, bool &first, const std::string &name,
          const char *track, double ts_us, double dur_us,
          const std::string &step = std::string(),
          const std::string &level = std::string())
{
    if (!first)
        os << ",\n";
    first = false;
    os << "  {\"name\": \"" << jsonEscape(name) << "\", \"ph\": \"X\", "
       << "\"pid\": 1, \"tid\": \"" << track << "\", "
       << "\"ts\": " << ts_us << ", \"dur\": " << dur_us;
    if (!step.empty()) {
        // Per-step IR attribution (unintt/schedule.hh).
        os << ", \"args\": {\"step\": \"" << jsonEscape(step)
           << "\", \"level\": \"" << jsonEscape(level) << "\"}";
    }
    os << "}";
}

} // namespace

std::string
toChromeTrace(const SimReport &report, const std::string &process)
{
    std::ostringstream os;
    os << "[\n";
    bool first = true;

    // Process name metadata.
    os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
       << "\"args\": {\"name\": \"" << jsonEscape(process) << "\"}}";
    first = false;

    double now_us = 0;
    for (const auto &p : report.phases()) {
        double dur_us = p.seconds * 1e6;
        const char *track =
            p.kind == SimPhase::Kind::Kernel ? "kernel" : "comm";
        emitEvent(os, first, p.name, track, now_us, dur_us, p.step,
                  p.level);
        if (p.hiddenSeconds > 0) {
            // Overlapped communication: show it under the preceding
            // compute on its own track.
            emitEvent(os, first, p.name + " (hidden)", "comm-overlap",
                      now_us - p.hiddenSeconds * 1e6,
                      p.hiddenSeconds * 1e6);
        }
        now_us += dur_us;
    }
    os << "\n]\n";
    return os.str();
}

void
writeChromeTrace(const SimReport &report, const std::string &process,
                 const std::string &path)
{
    std::string json = toChromeTrace(report, process);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open trace file '%s'", path.c_str());
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    inform("wrote trace to %s", path.c_str());
}

} // namespace unintt
