#include "service/loadgen.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>

#include "util/checksum.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace unintt {

std::vector<TenantProfile>
LoadScenario::defaultTenants(unsigned logN)
{
    UNINTT_ASSERT(logN >= 8, "default tenant mix needs logN >= 8");
    std::vector<TenantProfile> tenants(3);
    tenants[0].name = "premium";
    tenants[0].sla = SlaClass::Premium;
    tenants[0].kind = JobKind::NttForward;
    tenants[0].logN = logN;
    tenants[0].weight = 1.0;
    tenants[0].deadlineFactor = 64;
    tenants[1].name = "standard";
    tenants[1].sla = SlaClass::Standard;
    tenants[1].kind = JobKind::NttInverse;
    tenants[1].logN = logN;
    tenants[1].weight = 1.5;
    tenants[2].name = "bulk";
    tenants[2].sla = SlaClass::Batch;
    tenants[2].kind = JobKind::NttForward;
    tenants[2].logN = logN - 2;
    tenants[2].weight = 1.5;
    tenants[2].seedPool = 2;
    return tenants;
}

const TenantLoadStats *
LoadResult::find(const std::string &name) const
{
    for (const auto &t : tenants)
        if (t.name == name)
            return &t;
    return nullptr;
}

namespace {

/** Seed base of tenant @p i's input-data pool. */
uint64_t
tenantSeedBase(uint64_t scenario_seed, size_t i)
{
    return mix64(scenario_seed ^ (0x51abful + i * 0x9e3779b97f4a7c15ULL));
}

JobSpec
makeSpec(uint64_t id, size_t tenant, const TenantProfile &profile,
         double estimate_seconds, Rng &rng)
{
    JobSpec spec;
    spec.id = id;
    spec.tenant = static_cast<unsigned>(tenant);
    spec.sla = profile.sla;
    spec.kind = profile.kind;
    spec.logN = profile.logN;
    spec.deadlineSeconds = profile.deadlineFactor > 0
                               ? profile.deadlineFactor * estimate_seconds
                               : 0;
    const unsigned pool = profile.seedPool == 0 ? 1 : profile.seedPool;
    spec.seed = tenantSeedBase(0, tenant) + rng.below(pool);
    return spec;
}

LoadResult
collectStats(ProvingService &service,
             const std::vector<TenantProfile> &tenants)
{
    LoadResult res;
    res.report = service.report();
    res.corruptResults = service.corruptResults();
    res.coalescedLaunches = service.coalescedLaunches();
    res.totals = service.totals();

    res.tenants.resize(tenants.size());
    for (size_t i = 0; i < tenants.size(); ++i) {
        res.tenants[i].name = tenants[i].name;
        res.tenants[i].tenant = static_cast<unsigned>(i);
        res.tenants[i].sla = tenants[i].sla;
        auto it = service.tenantCounters().find(
            static_cast<unsigned>(i));
        if (it != service.tenantCounters().end())
            res.tenants[i].counters = it->second;
    }

    res.outcomes = service.outcomes();
    double last_finish = 0;
    for (const JobOutcome &out : service.outcomes()) {
        last_finish = std::max(last_finish, out.finish);
        if (!out.status.ok())
            continue;
        res.completed++;
        const double latency = out.latency();
        res.allLatencies.push_back(latency);
        if (out.tenant < res.tenants.size())
            res.tenants[out.tenant].latencies.push_back(latency);
    }
    res.makespanSeconds = last_finish;
    res.throughputRate =
        last_finish > 0 ? static_cast<double>(res.completed) / last_finish
                        : 0;
    res.p50 = percentile(res.allLatencies, 50);
    res.p95 = percentile(res.allLatencies, 95);
    res.p99 = percentile(res.allLatencies, 99);
    for (auto &t : res.tenants) {
        t.p50 = percentile(t.latencies, 50);
        t.p95 = percentile(t.latencies, 95);
        t.p99 = percentile(t.latencies, 99);
    }
    return res;
}

} // namespace

LoadResult
runLoadScenario(const MultiGpuSystem &fleet, const ServiceConfig &cfg,
                const LoadScenario &scenario, const ServiceChaos &chaos)
{
    const std::vector<TenantProfile> tenants =
        scenario.tenants.empty()
            ? LoadScenario::defaultTenants(12)
            : scenario.tenants;

    ProvingService service(fleet, cfg, chaos);

    double weight_sum = 0;
    std::vector<double> estimate(tenants.size());
    for (size_t i = 0; i < tenants.size(); ++i) {
        weight_sum += tenants[i].weight;
        estimate[i] = service.estimateServiceSeconds(tenants[i].kind,
                                                     tenants[i].logN);
    }
    UNINTT_ASSERT(weight_sum > 0, "tenant weights must be positive");

    Rng rng(scenario.seed);
    uint64_t next_id = 1;

    if (!scenario.closedLoop) {
        double mean_service = 0;
        for (size_t i = 0; i < tenants.size(); ++i)
            mean_service += tenants[i].weight / weight_sum * estimate[i];
        const unsigned slots =
            std::max(1u, fleet.numGpus / cfg.jobGpus);
        const double capacity =
            static_cast<double>(slots) / mean_service;
        const double rate = scenario.offeredLoad * capacity;
        UNINTT_ASSERT(rate > 0, "open loop needs a positive load");

        double t = 0;
        for (unsigned j = 0; j < scenario.jobsTarget; ++j) {
            t += -std::log(1.0 - rng.uniform()) / rate;
            double u = rng.uniform() * weight_sum;
            size_t pick = 0;
            for (; pick + 1 < tenants.size(); ++pick) {
                if (u < tenants[pick].weight)
                    break;
                u -= tenants[pick].weight;
            }
            service.submit(makeSpec(next_id++, pick, tenants[pick],
                                    estimate[pick], rng),
                           t);
        }
        service.drain();

        LoadResult res = collectStats(service, tenants);
        res.offeredLoad = scenario.offeredLoad;
        res.offeredRate = rate;
        res.capacityRate = capacity;
        return res;
    }

    // Closed loop: every completion (or rejection) re-arms its client
    // after the think time, until the horizon.
    using Arrival = std::pair<double, size_t>; // (time, tenant)
    auto after = [](const Arrival &a, const Arrival &b) {
        return a.first > b.first;
    };
    std::priority_queue<Arrival, std::vector<Arrival>, decltype(after)>
        arrivals(after);
    std::map<uint64_t, size_t> job_tenant;

    service.setCompletionHook([&](const JobOutcome &out) {
        auto it = job_tenant.find(out.id);
        if (it == job_tenant.end())
            return;
        arrivals.emplace(out.finish + scenario.thinkSeconds, it->second);
        job_tenant.erase(it);
    });

    for (size_t i = 0; i < tenants.size(); ++i)
        for (unsigned c = 0; c < scenario.clientsPerTenant; ++c)
            arrivals.emplace(rng.uniform() * scenario.thinkSeconds,
                             i);

    while (true) {
        if (arrivals.empty()) {
            // No client is ready to submit, but in-flight completions
            // re-arm their clients through the hook: advance virtual
            // time event by event until one does or the service
            // drains.
            if (service.idle() ||
                !std::isfinite(service.nextEventTime()))
                break;
            service.runUntil(service.nextEventTime());
            continue;
        }
        Arrival a = arrivals.top();
        arrivals.pop();
        if (a.first > scenario.durationSeconds)
            continue; // this client chain ends
        const size_t i = a.second;
        JobSpec spec =
            makeSpec(next_id++, i, tenants[i], estimate[i], rng);
        job_tenant.emplace(spec.id, i);
        Status st = service.submit(spec, std::max(a.first, service.now()));
        if (!st.ok()) {
            // Rejected: the client backs off half a service time and
            // tries again.
            job_tenant.erase(spec.id);
            arrivals.emplace(service.now() + estimate[i] / 2, i);
        }
    }
    service.setCompletionHook({});
    service.drain();

    LoadResult res = collectStats(service, tenants);
    res.capacityRate = 0;
    return res;
}

std::string
formatLoadResult(const LoadResult &res)
{
    Table table({"tenant", "class", "submit", "admit", "shed", "quota",
                 "done", "fail", "retry", "degr", "miss", "coal", "p50",
                 "p95", "p99"});
    auto row = [&](const std::string &name, const char *cls,
                   const ServiceCounters &c, double p50, double p95,
                   double p99) {
        table.addRow({name, cls, fmtI(c.submitted), fmtI(c.admitted),
                      fmtI(c.shed), fmtI(c.quotaRejected),
                      fmtI(c.completed), fmtI(c.failed), fmtI(c.retried),
                      fmtI(c.degraded), fmtI(c.deadlineMissed),
                      fmtI(c.coalesced), formatSeconds(p50),
                      formatSeconds(p95), formatSeconds(p99)});
    };
    for (const auto &t : res.tenants)
        row(t.name, toString(t.sla), t.counters, t.p50, t.p95, t.p99);
    table.addSeparator();
    row("all", "-", res.totals, res.p50, res.p95, res.p99);

    std::ostringstream os;
    os << table.toString();
    os << "completed " << res.completed << " jobs in "
       << formatSeconds(res.makespanSeconds) << " simulated ("
       << fmtF(res.throughputRate, 1) << " jobs/s, "
       << res.coalescedLaunches << " coalesced launches, "
       << res.corruptResults << " corrupt results)\n";
    return os.str();
}

} // namespace unintt
