#include "service/placement.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

namespace {

/** Scheduling preference of a health state (lower is better). */
unsigned
healthRank(DeviceHealth state)
{
    switch (state) {
      case DeviceHealth::Healthy:
        return 0;
      case DeviceHealth::Suspect:
        return 1;
      case DeviceHealth::Probation:
        return 2;
      case DeviceHealth::Quarantined:
        return 3;
    }
    return 3;
}

/** Largest power of two <= n (0 for 0). */
unsigned
pow2Floor(unsigned n)
{
    unsigned p = 1;
    while (2 * p <= n)
        p *= 2;
    return n == 0 ? 0 : p;
}

} // namespace

PlacementPolicy::PlacementPolicy(unsigned fleet_gpus)
    : fleetGpus_(fleet_gpus)
{
    UNINTT_ASSERT(fleet_gpus > 0, "fleet needs at least one GPU");
}

unsigned
PlacementPolicy::idleUsable(const DeviceHealthTracker &health,
                            const std::vector<bool> &busy) const
{
    UNINTT_ASSERT(busy.size() == fleetGpus_, "busy set size mismatch");
    unsigned n = 0;
    for (unsigned d = 0; d < fleetGpus_; ++d)
        if (!busy[d] && health.usable(d))
            ++n;
    return n;
}

PlacementDecision
PlacementPolicy::place(const DeviceHealthTracker &health,
                       const std::vector<bool> &busy,
                       unsigned preferred_gpus) const
{
    UNINTT_ASSERT(busy.size() == fleetGpus_, "busy set size mismatch");
    UNINTT_ASSERT(preferred_gpus > 0 && isPow2(preferred_gpus),
                  "jobs request a power-of-two GPU count");

    std::vector<unsigned> candidates;
    for (unsigned d = 0; d < fleetGpus_; ++d)
        if (!busy[d] && health.usable(d))
            candidates.push_back(d);

    PlacementDecision out;
    if (candidates.empty())
        return out;

    // Cleanest history first; ties resolve by device id so the choice
    // is deterministic.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](unsigned a, unsigned b) {
                         const unsigned ra = healthRank(health.state(a));
                         const unsigned rb = healthRank(health.state(b));
                         return ra != rb ? ra < rb : a < b;
                     });

    unsigned take = std::min(
        preferred_gpus, pow2Floor(static_cast<unsigned>(candidates.size())));
    out.devices.assign(candidates.begin(), candidates.begin() + take);
    std::sort(out.devices.begin(), out.devices.end());
    out.degraded = take < preferred_gpus;
    return out;
}

} // namespace unintt
