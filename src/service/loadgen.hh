/**
 * @file
 * Load generators for the proving service: drive a tenant mix
 * against one ProvingService instance in virtual time and collect
 * per-tenant latency/throughput statistics.
 *
 * Two drive modes:
 *
 *  - open loop: Poisson arrivals at a fixed fraction of the fleet's
 *    estimated capacity (the classic offered-load sweep of the
 *    latency/throughput figures). Arrival times are independent of
 *    completions, so queueing delay shows up honestly.
 *  - closed loop: a fixed number of clients per tenant, each
 *    submitting the next job when the previous one completes (plus
 *    think time) — self-throttling, models interactive provers.
 *
 * Everything is seeded and runs in simulated time, so a scenario's
 * percentiles are reproducible to the bit.
 */

#ifndef UNINTT_SERVICE_LOADGEN_HH
#define UNINTT_SERVICE_LOADGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/service.hh"
#include "service/types.hh"
#include "sim/multi_gpu.hh"

namespace unintt {

/** One tenant's traffic description. */
struct TenantProfile
{
    std::string name = "tenant";
    SlaClass sla = SlaClass::Standard;
    JobKind kind = JobKind::NttForward;
    unsigned logN = 12;
    /** Share of the arrival stream (open loop). */
    double weight = 1.0;
    /**
     * Per-job deadline as a multiple of the estimated service time;
     * 0 disables the deadline.
     */
    double deadlineFactor = 0;
    /** Distinct input seeds cycled through (bounds reference work). */
    unsigned seedPool = 4;
};

/** A load scenario against one fleet. */
struct LoadScenario
{
    /** false: open-loop Poisson arrivals; true: closed-loop clients. */
    bool closedLoop = false;
    /** Open loop: offered load as a fraction of estimated capacity. */
    double offeredLoad = 0.5;
    /** Open loop: arrivals to generate. */
    unsigned jobsTarget = 300;
    /** Closed loop: concurrent clients per tenant. */
    unsigned clientsPerTenant = 2;
    /** Closed loop: think time between a completion and the resubmit. */
    double thinkSeconds = 0;
    /** Closed loop: submission horizon in simulated seconds. */
    double durationSeconds = 0.05;
    uint64_t seed = 0x10adull;
    /** Tenant mix; defaultTenants(logN) when empty. */
    std::vector<TenantProfile> tenants;

    /** Premium/standard/bulk mix the benches use. */
    static std::vector<TenantProfile> defaultTenants(unsigned logN);
};

/** Latency and outcome statistics of one tenant. */
struct TenantLoadStats
{
    std::string name;
    unsigned tenant = 0;
    SlaClass sla = SlaClass::Standard;
    ServiceCounters counters;
    /** End-to-end latencies of completed jobs, simulated seconds. */
    std::vector<double> latencies;
    double p50 = 0, p95 = 0, p99 = 0;
};

/** Result of one scenario run. */
struct LoadResult
{
    /** Offered fraction of capacity (open loop; 0 for closed). */
    double offeredLoad = 0;
    /** Offered arrival rate, jobs per simulated second. */
    double offeredRate = 0;
    /** Estimated fleet capacity, jobs per simulated second. */
    double capacityRate = 0;
    /** Last completion time, simulated seconds. */
    double makespanSeconds = 0;
    uint64_t completed = 0;
    /** Completions per simulated second. */
    double throughputRate = 0;
    /** Results whose checksum disagreed with the reference (MUST be 0). */
    uint64_t corruptResults = 0;
    uint64_t coalescedLaunches = 0;
    std::vector<TenantLoadStats> tenants;
    std::vector<double> allLatencies;
    double p50 = 0, p95 = 0, p99 = 0;
    ServiceCounters totals;
    SimReport report;
    /** Terminal outcome of every admitted job, in completion order. */
    std::vector<JobOutcome> outcomes;

    /** Stats of the tenant named @p name (nullptr when absent). */
    const TenantLoadStats *find(const std::string &name) const;
};

/** Run @p scenario against a fresh service on @p fleet. */
LoadResult runLoadScenario(const MultiGpuSystem &fleet,
                           const ServiceConfig &cfg,
                           const LoadScenario &scenario,
                           const ServiceChaos &chaos = ServiceChaos{});

/** Per-tenant outcome/latency table ("soak"/"serve" output). */
std::string formatLoadResult(const LoadResult &result);

} // namespace unintt

#endif // UNINTT_SERVICE_LOADGEN_HH
