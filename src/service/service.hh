/**
 * @file
 * The multi-tenant proving service: a discrete-event scheduler that
 * places concurrent NTT and proof jobs onto the simulated multi-GPU
 * fleet.
 *
 * The pipeline is queue -> admission -> placement -> executor:
 *
 *  - submit() runs admission control: class-aware load shedding
 *    against a bounded queue and per-tenant quotas. Every rejection
 *    is a recoverable Status (Overloaded / QuotaExceeded) and a
 *    per-tenant counter — overload is never a silent drop.
 *  - The scheduler pops the highest-SLA runnable job, asks the
 *    placement policy for a power-of-two subset of idle devices the
 *    fleet health tracker still trusts, and coalesces small
 *    same-shape transforms into one batched launch when the fabric
 *    is clean.
 *  - Execution runs in virtual time: the functional engines compute
 *    real (bit-exact, verifiable) results immediately, and the
 *    simulated duration schedules a Finish event. Latency statistics
 *    are therefore deterministic functions of the seed.
 *  - A watchdog enforces per-job deadlines: queued jobs are cancelled
 *    at the deadline, and results that finish late are discarded as
 *    DeadlineExceeded. Failed attempts retry with capped,
 *    jitter-decorrelated exponential backoff; after a device loss
 *    the retry may degrade to half the GPUs instead of failing.
 *  - Proof jobs run the checkpointed STARK pipeline against a
 *    per-job CheckpointStore that survives across retries, so a
 *    retry resumes from the last completed stage instead of
 *    recomputing the proof from scratch.
 *
 * The service never trusts an OK status alone: every completed
 * result is checksummed against a fault-free reference, and a
 * mismatch is reported as DataCorruption (the chaos soak asserts
 * this counter stays zero).
 */

#ifndef UNINTT_SERVICE_SERVICE_HH
#define UNINTT_SERVICE_SERVICE_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "field/goldilocks.hh"
#include "service/placement.hh"
#include "service/queue.hh"
#include "service/types.hh"
#include "sim/multi_gpu.hh"
#include "sim/report.hh"
#include "unintt/health.hh"
#include "util/status.hh"
#include "zkp/checkpoint.hh"

namespace unintt {

/**
 * Faults the service's world injects while it runs. Fabric rates
 * apply to every resilient transform; device kills fire the first
 * time the victim is scheduled at or after the kill time; the proof
 * gates interrupt the checkpointed prover pipeline.
 */
struct ServiceChaos
{
    /** P(one transmission attempt fails) per exchange. */
    double transientRate = 0;
    /** P(an exchange payload arrives corrupted). */
    double bitFlipRate = 0;
    /** P(an exchange is stretched by a straggler). */
    double stragglerRate = 0;
    double stragglerSlowdown = 4.0;
    /** Fleet device ids that die permanently. */
    std::vector<unsigned> killDevices;
    /** Simulated time at which the kills arm. */
    double killAtSeconds = 0;
    /** P(a proof pipeline stage is interrupted before it runs). */
    double stageFailRate = 0;
    /** P(a FRI commit round is interrupted). */
    double roundFailRate = 0;

    /** True iff the fabric can corrupt or delay exchanges. */
    bool
    fabricActive() const
    {
        return transientRate > 0 || bitFlipRate > 0 || stragglerRate > 0;
    }

    bool
    any() const
    {
        return fabricActive() || !killDevices.empty() ||
               stageFailRate > 0 || roundFailRate > 0;
    }
};

/** Multi-tenant scheduler over one simulated fleet. */
class ProvingService
{
  public:
    /** Called as each job reaches a terminal outcome. */
    using CompletionHook = std::function<void(const JobOutcome &)>;

    ProvingService(MultiGpuSystem fleet, ServiceConfig cfg = ServiceConfig{},
                   ServiceChaos chaos = ServiceChaos{});
    ~ProvingService();

    /**
     * Submit a job at simulated time @p now (>= the current service
     * time; due events are processed first). Returns OK on admission
     * or the recoverable rejection (Overloaded, QuotaExceeded,
     * InvalidArgument).
     */
    Status submit(const JobSpec &spec, double now);

    /** Current simulated time. */
    double now() const { return now_; }

    /** Nothing queued and nothing running. */
    bool idle() const;

    /** Time of the next pending event (infinity when idle). */
    double nextEventTime() const;

    /** Process every event due by @p t, then advance time to @p t. */
    void runUntil(double t);

    /** Run until every admitted job has a terminal outcome. */
    void drain();

    /** Install a completion callback (closed-loop load generators). */
    void setCompletionHook(CompletionHook hook) { hook_ = std::move(hook); }

    /** Terminal outcomes in completion order. */
    const std::vector<JobOutcome> &outcomes() const { return outcomes_; }

    /** The fleet-level circuit breaker. */
    const DeviceHealthTracker &health() const { return fleetHealth_; }

    /** Per-tenant outcome counters. */
    const std::map<unsigned, ServiceCounters> &
    tenantCounters() const
    {
        return counters_;
    }

    /** Counters summed over all tenants. */
    ServiceCounters totals() const;

    /** Completed results whose checksum did not match the reference. */
    uint64_t corruptResults() const { return corruptResults_; }

    /** Transforms that rode a coalesced multi-job launch. */
    uint64_t coalescedLaunches() const { return coalescedLaunches_; }

    /** GPU-seconds of simulated occupancy scheduled so far. */
    double busyGpuSeconds() const { return busyGpuSeconds_; }

    /** Jobs waiting in the admission queue. */
    size_t queueDepth() const { return queue_.size(); }

    /**
     * Service counters, engine fault totals and host-execution facts
     * as a SimReport — the same reporting channel engine runs use.
     */
    SimReport report() const;

    /**
     * Simulated seconds one job of (@p kind, @p logN) takes on the
     * configured GPU request, from the analytic engine (proofs are
     * priced by their LDE transform volume). Load generators derive
     * offered-load rates from this.
     */
    double estimateServiceSeconds(JobKind kind, unsigned logN) const;

  private:
    struct Event
    {
        enum class Kind { Ready, Finish, Deadline };
        double at = 0;
        uint64_t seq = 0;
        Kind kind = Kind::Ready;
        /** Job id (Ready/Deadline) or batch id (Finish). */
        uint64_t id = 0;
    };

    struct EventAfter
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.at != b.at ? a.at > b.at : a.seq > b.seq;
        }
    };

    struct Job
    {
        JobSpec spec;
        double arrival = 0;
        /** First execution start; negative until the job first runs. */
        double startedAt = -1;
        double deadlineAt = std::numeric_limits<double>::infinity();
        unsigned attempts = 0;
        unsigned preferredGpus = 1;
        bool everDegraded = false;
        bool everCoalesced = false;
        bool running = false;
        Status lastError;
        /** Watchdog fired while the job was running. */
        bool deadlineCancelled = false;
        /** Proof state kept across retries (resume, not recompute). */
        std::unique_ptr<CheckpointStore> ckpt;
    };

    /** One launch in flight; outcomes realize at the Finish event. */
    struct RunningBatch
    {
        std::vector<uint64_t> jobIds;
        std::vector<unsigned> devices;
        std::vector<Status> status;
        std::vector<bool> verified;
        double seconds = 0;
    };

    /** Outcome of executing one launch now (virtual time). */
    struct ExecResult
    {
        std::vector<Status> status;
        std::vector<bool> verified;
        double seconds = 0;
    };

    void handleEvent(const Event &e);
    void pump();
    void startBatch(std::vector<QueuedJob> &&group,
                    PlacementDecision &&decision);
    void settle(uint64_t job_id, const Status &st, bool verified);
    void finalize(Job &job, const Status &st, bool verified);
    void failAllQueued(const Status &st);
    void scheduleEvent(double at, Event::Kind kind, uint64_t id);

    ExecResult executePlainBatch(std::vector<Job *> &jobs,
                                 const std::vector<unsigned> &devices);
    ExecResult executeResilient(Job &job,
                                const std::vector<unsigned> &devices);
    ExecResult executeProof(Job &job,
                            const std::vector<unsigned> &devices);

    /** Fleet devices armed to die that have not been consumed yet. */
    bool pendingKill(unsigned device) const;
    bool anyPendingKill(const std::vector<unsigned> &devices) const;

    MultiGpuSystem subMachine(unsigned gpus) const;
    unsigned inFlightOf(unsigned tenant) const;
    ServiceCounters &countersOf(unsigned tenant);
    double estimateOn(JobKind kind, unsigned logN, unsigned gpus) const;
    uint64_t referenceChecksum(JobKind kind, unsigned logN,
                               uint64_t seed) const;
    void translateRunHealth(const DeviceHealthTracker &run_health,
                            const std::vector<unsigned> &devices);

    MultiGpuSystem fleet_;
    ServiceConfig cfg_;
    ServiceChaos chaos_;

    PlacementPolicy place_;
    AdmissionQueue queue_;
    DeviceHealthTracker fleetHealth_;
    std::vector<bool> busy_;
    unsigned busyCount_ = 0;

    double now_ = 0;
    uint64_t eventSeq_ = 0;
    std::priority_queue<Event, std::vector<Event>, EventAfter> events_;

    std::map<uint64_t, Job> jobs_;
    std::map<uint64_t, RunningBatch> batches_;
    uint64_t nextBatchId_ = 1;
    std::map<unsigned, unsigned> inFlight_;
    std::vector<unsigned> firedKills_;

    std::vector<JobOutcome> outcomes_;
    std::map<unsigned, ServiceCounters> counters_;
    uint64_t corruptResults_ = 0;
    uint64_t coalescedLaunches_ = 0;
    double busyGpuSeconds_ = 0;
    FaultStats faults_;
    HostExecStats hostExec_;
    CompletionHook hook_;

    /** (kind, logN, gpus) -> simulated seconds. */
    mutable std::map<uint64_t, double> estimateCache_;
    /** (kind, logN, seed-mix) -> fault-free output checksum. */
    mutable std::map<uint64_t, uint64_t> referenceCache_;
};

/** Input vector of a (kind, logN, seed) transform job. */
std::vector<Goldilocks> serviceJobInput(unsigned logN, uint64_t seed);

} // namespace unintt

#endif // UNINTT_SERVICE_SERVICE_HH
