#include "service/types.hh"

namespace unintt {

const char *
toString(JobKind kind)
{
    switch (kind) {
      case JobKind::NttForward:
        return "forward-ntt";
      case JobKind::NttInverse:
        return "inverse-ntt";
      case JobKind::Proof:
        return "proof";
    }
    return "?";
}

const char *
toString(SlaClass sla)
{
    switch (sla) {
      case SlaClass::Batch:
        return "batch";
      case SlaClass::Standard:
        return "standard";
      case SlaClass::Premium:
        return "premium";
    }
    return "?";
}

} // namespace unintt
