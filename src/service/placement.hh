/**
 * @file
 * Fleet placement for the proving service: pick the power-of-two
 * subset of idle devices a job (or coalesced batch) runs on.
 *
 * Placement consults the fleet-level DeviceHealthTracker — the
 * circuit breaker fed by every run's fault attribution — so
 * quarantined or lost devices never enter a plan, and prefers devices
 * with the cleanest recent history: Healthy before Suspect before
 * Probation (probation devices do get scheduled; that is how they
 * earn re-admission). When fewer idle usable devices exist than the
 * job requested, placement degrades to the largest power-of-two
 * subset that fits rather than failing the job.
 */

#ifndef UNINTT_SERVICE_PLACEMENT_HH
#define UNINTT_SERVICE_PLACEMENT_HH

#include <vector>

#include "unintt/health.hh"

namespace unintt {

/** Devices chosen for one launch. */
struct PlacementDecision
{
    /** Fleet device ids, ascending; empty = nothing can run now. */
    std::vector<unsigned> devices;
    /** Fewer devices than the job requested. */
    bool degraded = false;
};

/**
 * Stateless placement policy over a fixed fleet. The caller owns the
 * busy set (devices currently running a job) and the health tracker.
 */
class PlacementPolicy
{
  public:
    explicit PlacementPolicy(unsigned fleet_gpus);

    /**
     * Choose up to @p preferred_gpus devices (power of two) that are
     * idle per @p busy and usable per @p health, best health first.
     * Returns an empty decision when no usable device is idle.
     */
    PlacementDecision place(const DeviceHealthTracker &health,
                            const std::vector<bool> &busy,
                            unsigned preferred_gpus) const;

    /** Idle *and* usable device count (placement headroom). */
    unsigned idleUsable(const DeviceHealthTracker &health,
                        const std::vector<bool> &busy) const;

  private:
    unsigned fleetGpus_;
};

} // namespace unintt

#endif // UNINTT_SERVICE_PLACEMENT_HH
