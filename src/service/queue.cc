#include "service/queue.hh"

#include <string>

#include "util/logging.hh"

namespace unintt {

AdmissionQueue::AdmissionQueue(const ServiceConfig &cfg)
    : cfg_(cfg)
{
    UNINTT_ASSERT(cfg_.queueCapacity > 0, "queue capacity must be > 0");
    for (unsigned c = 0; c < kNumSlaClasses; ++c)
        UNINTT_ASSERT(cfg_.shedFraction[c] > 0.0 &&
                          cfg_.shedFraction[c] <= 1.0,
                      "shed fractions must be in (0, 1]");
}

bool
AdmissionQueue::shedAt(SlaClass sla) const
{
    const double threshold =
        cfg_.shedFraction[static_cast<unsigned>(sla)] *
        static_cast<double>(cfg_.queueCapacity);
    return static_cast<double>(size_) >= threshold;
}

Status
AdmissionQueue::admit(const QueuedJob &job)
{
    if (shedAt(job.sla))
        return Status::error(
            StatusCode::Overloaded,
            "queue depth " + std::to_string(size_) + "/" +
                std::to_string(cfg_.queueCapacity) + " sheds class " +
                toString(job.sla));
    if (queuedOf(job.tenant) >= cfg_.quota.maxQueued)
        return Status::error(
            StatusCode::QuotaExceeded,
            "tenant " + std::to_string(job.tenant) + " already has " +
                std::to_string(queuedOf(job.tenant)) +
                " jobs queued (quota " +
                std::to_string(cfg_.quota.maxQueued) + ")");
    byClass_[static_cast<unsigned>(job.sla)].push_back(job);
    pushed(job);
    return Status();
}

void
AdmissionQueue::requeue(const QueuedJob &job)
{
    byClass_[static_cast<unsigned>(job.sla)].push_back(job);
    pushed(job);
}

void
AdmissionQueue::pushFront(const QueuedJob &job)
{
    byClass_[static_cast<unsigned>(job.sla)].push_front(job);
    pushed(job);
}

void
AdmissionQueue::pushed(const QueuedJob &job)
{
    queuedPerTenant_[job.tenant]++;
    size_++;
}

void
AdmissionQueue::popped(const QueuedJob &job)
{
    auto it = queuedPerTenant_.find(job.tenant);
    UNINTT_ASSERT(it != queuedPerTenant_.end() && it->second > 0,
                  "tenant queue accounting underflow");
    it->second--;
    size_--;
}

std::optional<QueuedJob>
AdmissionQueue::popRunnable(double now, const Eligible &eligible)
{
    for (unsigned c = kNumSlaClasses; c-- > 0;) {
        auto &fifo = byClass_[c];
        for (auto it = fifo.begin(); it != fifo.end(); ++it) {
            if (it->readyAt > now || it->deadlineAt <= now)
                continue;
            if (eligible && !eligible(*it))
                continue;
            QueuedJob job = *it;
            fifo.erase(it);
            popped(job);
            return job;
        }
    }
    return std::nullopt;
}

std::vector<QueuedJob>
AdmissionQueue::popMatching(JobKind kind, unsigned logN, double now,
                            unsigned max, const Eligible &eligible)
{
    std::vector<QueuedJob> out;
    for (unsigned c = kNumSlaClasses; c-- > 0 && out.size() < max;) {
        auto &fifo = byClass_[c];
        for (auto it = fifo.begin();
             it != fifo.end() && out.size() < max;) {
            if (it->kind != kind || it->logN != logN ||
                it->readyAt > now || it->deadlineAt <= now ||
                (eligible && !eligible(*it))) {
                ++it;
                continue;
            }
            out.push_back(*it);
            popped(*it);
            it = fifo.erase(it);
        }
    }
    return out;
}

bool
AdmissionQueue::erase(uint64_t id)
{
    for (auto &fifo : byClass_) {
        for (auto it = fifo.begin(); it != fifo.end(); ++it) {
            if (it->id != id)
                continue;
            popped(*it);
            fifo.erase(it);
            return true;
        }
    }
    return false;
}

std::optional<QueuedJob>
AdmissionQueue::popAny()
{
    for (unsigned c = kNumSlaClasses; c-- > 0;) {
        auto &fifo = byClass_[c];
        if (fifo.empty())
            continue;
        QueuedJob job = fifo.front();
        fifo.pop_front();
        popped(job);
        return job;
    }
    return std::nullopt;
}

unsigned
AdmissionQueue::queuedOf(unsigned tenant) const
{
    auto it = queuedPerTenant_.find(tenant);
    return it == queuedPerTenant_.end() ? 0 : it->second;
}

double
AdmissionQueue::nextReadyAfter(double now) const
{
    double best = ServiceConfig::kNoDeadline;
    for (const auto &fifo : byClass_)
        for (const auto &job : fifo)
            if (job.readyAt > now && job.readyAt < best)
                best = job.readyAt;
    return best;
}

} // namespace unintt
