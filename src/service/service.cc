#include "service/service.hh"

#include <algorithm>
#include <string>

#include "sim/fault.hh"
#include "unintt/distributed.hh"
#include "unintt/engine.hh"
#include "util/bitops.hh"
#include "util/checksum.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "zkp/serialize.hh"
#include "zkp/stark.hh"

namespace unintt {

using F = Goldilocks;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Fault attributions per device one run may charge the fleet. */
constexpr uint64_t kMaxFaultChargePerRun = 4;

/** Minimum trace log so the STARK's FRI has at least one round. */
constexpr unsigned kMinProofLog = 5;

/** Composite key of the estimate/reference caches. */
uint64_t
cacheKey(JobKind kind, unsigned logN, uint64_t extra)
{
    return mix64((static_cast<uint64_t>(kind) << 56) ^
                 (static_cast<uint64_t>(logN) << 48) ^ mix64(extra));
}

} // namespace

std::vector<Goldilocks>
serviceJobInput(unsigned logN, uint64_t seed)
{
    std::vector<F> x(size_t{1} << logN);
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = F::fromU64(mix64(seed ^ i));
    return x;
}

ProvingService::ProvingService(MultiGpuSystem fleet, ServiceConfig cfg,
                               ServiceChaos chaos)
    : fleet_(std::move(fleet)),
      cfg_(cfg),
      chaos_(std::move(chaos)),
      place_(fleet_.numGpus),
      queue_(cfg_),
      fleetHealth_(fleet_.numGpus),
      busy_(fleet_.numGpus, false)
{
    UNINTT_ASSERT(isPow2(fleet_.numGpus), "fleet size must be pow2");
    UNINTT_ASSERT(cfg_.jobGpus >= 1 && isPow2(cfg_.jobGpus),
                  "job GPU request must be a power of two");
    UNINTT_ASSERT(cfg_.jobGpus <= fleet_.numGpus,
                  "job GPU request exceeds the fleet");
    UNINTT_ASSERT(cfg_.maxAttempts >= 1, "jobs need at least one attempt");
    for (unsigned dev : chaos_.killDevices)
        UNINTT_ASSERT(dev < fleet_.numGpus,
                      "chaos kill device outside the fleet");
}

ProvingService::~ProvingService() = default;

unsigned
ProvingService::inFlightOf(unsigned tenant) const
{
    auto it = inFlight_.find(tenant);
    return it == inFlight_.end() ? 0 : it->second;
}

ServiceCounters &
ProvingService::countersOf(unsigned tenant)
{
    return counters_[tenant];
}

ServiceCounters
ProvingService::totals() const
{
    ServiceCounters sum;
    for (const auto &kv : counters_)
        sum += kv.second;
    return sum;
}

bool
ProvingService::idle() const
{
    return queue_.empty() && busyCount_ == 0 && jobs_.empty();
}

double
ProvingService::nextEventTime() const
{
    return events_.empty() ? kInf : events_.top().at;
}

void
ProvingService::scheduleEvent(double at, Event::Kind kind, uint64_t id)
{
    events_.push(Event{at, eventSeq_++, kind, id});
}

MultiGpuSystem
ProvingService::subMachine(unsigned gpus) const
{
    MultiGpuSystem sub = fleet_;
    sub.numGpus = gpus;
    if (sub.gpusPerNode != 0 && gpus <= sub.gpusPerNode)
        sub.gpusPerNode = 0; // the subset fits inside one node
    return sub;
}

bool
ProvingService::pendingKill(unsigned device) const
{
    if (now_ < chaos_.killAtSeconds || fleetHealth_.isLost(device))
        return false;
    if (std::find(chaos_.killDevices.begin(), chaos_.killDevices.end(),
                  device) == chaos_.killDevices.end())
        return false;
    return std::find(firedKills_.begin(), firedKills_.end(), device) ==
           firedKills_.end();
}

bool
ProvingService::anyPendingKill(const std::vector<unsigned> &devices) const
{
    for (unsigned dev : devices)
        if (pendingKill(dev))
            return true;
    return false;
}

Status
ProvingService::submit(const JobSpec &spec, double now)
{
    runUntil(std::max(now, now_));

    if (spec.id == 0 || jobs_.count(spec.id))
        return Status::error(StatusCode::InvalidArgument,
                             "job ids must be unique and nonzero");
    if (spec.kind == JobKind::Proof && spec.logN < kMinProofLog)
        return Status::error(StatusCode::InvalidArgument,
                             "proof traces need logN >= " +
                                 std::to_string(kMinProofLog));
    if (spec.kind != JobKind::Proof &&
        (size_t{1} << spec.logN) < cfg_.jobGpus)
        return Status::error(StatusCode::InvalidArgument,
                             "transform smaller than the GPU request");

    ServiceCounters &tc = countersOf(spec.tenant);
    tc.submitted++;

    QueuedJob qj;
    qj.id = spec.id;
    qj.tenant = spec.tenant;
    qj.sla = spec.sla;
    qj.kind = spec.kind;
    qj.logN = spec.logN;
    qj.readyAt = now_;
    qj.deadlineAt =
        spec.deadlineSeconds > 0 ? now_ + spec.deadlineSeconds : kInf;

    Status st = queue_.admit(qj);
    if (!st.ok()) {
        if (st.code() == StatusCode::Overloaded)
            tc.shed++;
        else if (st.code() == StatusCode::QuotaExceeded)
            tc.quotaRejected++;
        debugLog("service: rejected job %llu (%s)",
                 static_cast<unsigned long long>(spec.id),
                 st.toString().c_str());
        return st;
    }
    tc.admitted++;

    Job job;
    job.spec = spec;
    job.arrival = now_;
    job.deadlineAt = qj.deadlineAt;
    job.preferredGpus = cfg_.jobGpus;
    jobs_.emplace(spec.id, std::move(job));
    if (qj.deadlineAt < kInf)
        scheduleEvent(qj.deadlineAt, Event::Kind::Deadline, spec.id);

    pump();
    return Status();
}

void
ProvingService::runUntil(double t)
{
    UNINTT_ASSERT(t >= now_, "service time cannot run backwards");
    while (!events_.empty() && events_.top().at <= t) {
        Event e = events_.top();
        events_.pop();
        now_ = std::max(now_, e.at);
        handleEvent(e);
        pump();
    }
    now_ = std::max(now_, t);
    pump();
}

void
ProvingService::drain()
{
    while (!events_.empty()) {
        Event e = events_.top();
        events_.pop();
        now_ = std::max(now_, e.at);
        handleEvent(e);
        pump();
    }
    // Every queued job either ran, retried through a Ready event, or
    // was failed out when the fleet disappeared.
    UNINTT_ASSERT(queue_.empty() && busyCount_ == 0,
                  "drain left work behind without a pending event");
}

void
ProvingService::handleEvent(const Event &e)
{
    switch (e.kind) {
      case Event::Kind::Ready:
        // The retry backoff elapsed; pump() (run by the caller) will
        // consider the job again.
        return;
      case Event::Kind::Deadline: {
        auto it = jobs_.find(e.id);
        if (it == jobs_.end())
            return; // already finished
        Job &job = it->second;
        if (now_ < job.deadlineAt)
            return;
        if (job.running) {
            // Cancel-on-finish: the occupancy is already committed,
            // but the result will be discarded.
            job.deadlineCancelled = true;
            return;
        }
        queue_.erase(e.id);
        finalize(job, Status::error(StatusCode::DeadlineExceeded,
                                    "cancelled in queue at deadline"),
                 false);
        return;
      }
      case Event::Kind::Finish: {
        auto it = batches_.find(e.id);
        UNINTT_ASSERT(it != batches_.end(), "finish for unknown batch");
        RunningBatch batch = std::move(it->second);
        batches_.erase(it);
        for (unsigned dev : batch.devices) {
            UNINTT_ASSERT(busy_[dev], "finish released an idle device");
            busy_[dev] = false;
            busyCount_--;
        }
        for (size_t i = 0; i < batch.jobIds.size(); ++i)
            settle(batch.jobIds[i], batch.status[i], batch.verified[i]);
        return;
      }
    }
}

void
ProvingService::failAllQueued(const Status &st)
{
    while (auto qj = queue_.popAny()) {
        auto it = jobs_.find(qj->id);
        if (it != jobs_.end())
            finalize(it->second, st, false);
    }
}

void
ProvingService::pump()
{
    while (true) {
        if (place_.idleUsable(fleetHealth_, busy_) == 0) {
            if (busyCount_ == 0 && fleetHealth_.usableCount() == 0 &&
                !queue_.empty())
                failAllQueued(Status::error(
                    StatusCode::DeviceLost,
                    "every fleet device is quarantined or lost"));
            return;
        }

        auto eligible = [&](const QueuedJob &q) {
            return inFlightOf(q.tenant) < cfg_.quota.maxInFlight;
        };
        auto popped = queue_.popRunnable(now_, eligible);
        if (!popped)
            return;

        Job &first = jobs_.at(popped->id);
        PlacementDecision decision =
            place_.place(fleetHealth_, busy_, first.preferredGpus);
        if (decision.devices.empty()) {
            // Backpressure: devices are busy; a Finish event will
            // re-pump.
            queue_.pushFront(*popped);
            return;
        }
        if (decision.degraded && popped->sla == SlaClass::Premium &&
            first.attempts == 0 &&
            fleetHealth_.usableCount() >= first.preferredGpus) {
            // Reserve the idle leftover for the premium head instead
            // of running it degraded (a 1-GPU run costs ~2x the
            // latency of waiting one launch for a pair) or letting
            // lower classes backfill the devices out from under it.
            // A Finish event is pending whenever the fleet is this
            // busy, so the reservation always resolves; once the
            // fleet itself cannot supply the width any more, premium
            // degrades like everyone else rather than waiting
            // forever.
            queue_.pushFront(*popped);
            return;
        }

        std::vector<QueuedJob> group{*popped};
        const bool clean_fabric = !cfg_.hardenedOnly &&
                                  !chaos_.fabricActive() &&
                                  !anyPendingKill(decision.devices);
        if (popped->kind != JobKind::Proof && clean_fabric &&
            cfg_.coalesceMax > 1) {
            // Count group membership against the in-flight quota as
            // we select; popMatching consults the predicate exactly
            // once per otherwise-runnable candidate.
            std::map<unsigned, unsigned> group_count;
            group_count[popped->tenant] = 1;
            auto group_eligible = [&](const QueuedJob &q) {
                if (jobs_.at(q.id).preferredGpus != first.preferredGpus)
                    return false;
                unsigned &extra = group_count[q.tenant];
                if (inFlightOf(q.tenant) + extra >=
                    cfg_.quota.maxInFlight)
                    return false;
                extra++;
                return true;
            };
            std::vector<QueuedJob> extras = queue_.popMatching(
                popped->kind, popped->logN, now_, cfg_.coalesceMax - 1,
                group_eligible);
            group.insert(group.end(), extras.begin(), extras.end());
        }

        startBatch(std::move(group), std::move(decision));
    }
}

void
ProvingService::startBatch(std::vector<QueuedJob> &&group,
                           PlacementDecision &&decision)
{
    const uint64_t batch_id = nextBatchId_++;
    RunningBatch batch;
    batch.devices = std::move(decision.devices);
    const unsigned g = static_cast<unsigned>(batch.devices.size());

    for (unsigned dev : batch.devices) {
        UNINTT_ASSERT(!busy_[dev], "placement chose a busy device");
        busy_[dev] = true;
        busyCount_++;
    }

    std::vector<Job *> jobs;
    for (const QueuedJob &qj : group) {
        Job &job = jobs_.at(qj.id);
        job.running = true;
        job.attempts++;
        if (job.startedAt < 0)
            job.startedAt = now_;
        inFlight_[job.spec.tenant]++;
        if (decision.degraded)
            job.everDegraded = true;
        if (group.size() > 1)
            job.everCoalesced = true;
        batch.jobIds.push_back(qj.id);
        jobs.push_back(&job);
    }
    if (group.size() > 1)
        coalescedLaunches_++;

    ScopedLogTag tag(
        group.size() == 1
            ? "tenant" + std::to_string(jobs[0]->spec.tenant) + "/job" +
                  std::to_string(jobs[0]->spec.id)
            : "batch" + std::to_string(batch_id));
    debugLog("service: launching %zu job(s) on %u GPU(s) at t=%g",
             group.size(), g, now_);

    ExecResult result;
    if (jobs.size() == 1 && jobs[0]->spec.kind == JobKind::Proof)
        result = executeProof(*jobs[0], batch.devices);
    else if (jobs.size() == 1 &&
             (cfg_.hardenedOnly || chaos_.fabricActive() ||
              anyPendingKill(batch.devices)))
        result = executeResilient(*jobs[0], batch.devices);
    else
        result = executePlainBatch(jobs, batch.devices);

    batch.status = std::move(result.status);
    batch.verified = std::move(result.verified);
    batch.seconds = result.seconds;
    UNINTT_ASSERT(batch.status.size() == batch.jobIds.size(),
                  "one status per batched job");
    busyGpuSeconds_ += batch.seconds * g;

    scheduleEvent(now_ + batch.seconds, Event::Kind::Finish, batch_id);
    batches_.emplace(batch_id, std::move(batch));
}

void
ProvingService::settle(uint64_t job_id, const Status &st, bool verified)
{
    auto it = jobs_.find(job_id);
    UNINTT_ASSERT(it != jobs_.end(), "settling an unknown job");
    Job &job = it->second;
    job.running = false;
    auto fit = inFlight_.find(job.spec.tenant);
    UNINTT_ASSERT(fit != inFlight_.end() && fit->second > 0,
                  "in-flight accounting underflow");
    fit->second--;

    // The deadline watchdog wins over any result: late success is
    // still a miss, and late failures don't retry.
    if (job.deadlineCancelled || now_ > job.deadlineAt) {
        finalize(job,
                 Status::error(StatusCode::DeadlineExceeded,
                               "finished past the deadline"),
                 false);
        return;
    }

    if (st.ok()) {
        if (cfg_.verifyOutputs && !verified) {
            // An OK status with a wrong result is the one outcome the
            // service must never report as success.
            corruptResults_++;
            finalize(job,
                     Status::error(StatusCode::DataCorruption,
                                   "output failed reference check"),
                     false);
            return;
        }
        finalize(job, st, verified);
        return;
    }

    job.lastError = st;
    const bool retryable = st.code() != StatusCode::InvalidArgument &&
                           job.attempts < cfg_.maxAttempts;
    if (retryable) {
        const double backoff = cfg_.retry.backoffSeconds(
            job.attempts - 1, mix64(cfg_.seed ^ job.spec.id));
        const double ready_at = now_ + backoff;
        if (ready_at < job.deadlineAt) {
            countersOf(job.spec.tenant).retried++;
            if (cfg_.allowDegraded && job.preferredGpus > 1 &&
                (st.code() == StatusCode::DeviceLost ||
                 job.attempts >= 2)) {
                job.preferredGpus /= 2;
                job.everDegraded = true;
            }
            QueuedJob qj;
            qj.id = job.spec.id;
            qj.tenant = job.spec.tenant;
            qj.sla = job.spec.sla;
            qj.kind = job.spec.kind;
            qj.logN = job.spec.logN;
            qj.readyAt = ready_at;
            qj.deadlineAt = job.deadlineAt;
            queue_.requeue(qj);
            scheduleEvent(ready_at, Event::Kind::Ready, job.spec.id);
            debugLog("service: job %llu retry %u in %gs (%s)",
                     static_cast<unsigned long long>(job.spec.id),
                     job.attempts, backoff, st.toString().c_str());
            return;
        }
    }
    finalize(job, st, false);
}

void
ProvingService::finalize(Job &job, const Status &st, bool verified)
{
    JobOutcome out;
    out.id = job.spec.id;
    out.tenant = job.spec.tenant;
    out.sla = job.spec.sla;
    out.kind = job.spec.kind;
    out.status = st;
    out.arrival = job.arrival;
    out.started = job.startedAt >= 0 ? job.startedAt : now_;
    out.finish = now_;
    out.attempts = job.attempts;
    out.degraded = job.everDegraded;
    out.coalesced = job.everCoalesced;
    out.verified = verified;

    ServiceCounters &tc = countersOf(job.spec.tenant);
    if (st.ok())
        tc.completed++;
    else if (st.code() == StatusCode::DeadlineExceeded)
        tc.deadlineMissed++;
    else
        tc.failed++;
    if (job.everDegraded)
        tc.degraded++;
    if (job.everCoalesced)
        tc.coalesced++;

    jobs_.erase(job.spec.id);
    outcomes_.push_back(out);
    if (hook_)
        hook_(out);
}

// ---------------------------------------------------------------------
// Executors: compute real results now, price the virtual-time cost.
// ---------------------------------------------------------------------

ProvingService::ExecResult
ProvingService::executePlainBatch(std::vector<Job *> &jobs,
                                  const std::vector<unsigned> &devices)
{
    const unsigned g = static_cast<unsigned>(devices.size());
    UniNttConfig ec = UniNttConfig::allOn();
    ec.hostThreads = cfg_.hostThreads;
    UniNttEngine<F> engine(subMachine(g), ec);

    std::vector<DistributedVector<F>> data;
    data.reserve(jobs.size());
    for (Job *job : jobs)
        data.push_back(DistributedVector<F>::fromGlobal(
            serviceJobInput(job->spec.logN, job->spec.seed), g));

    const JobKind kind = jobs[0]->spec.kind;
    SimReport rep = kind == JobKind::NttForward
                        ? engine.forwardBatch(data)
                        : engine.inverseBatch(data);
    hostExec_ += rep.hostExecStats();
    fleetHealth_.endRun(); // clean run: tick the decay clocks

    ExecResult result;
    result.seconds = rep.totalSeconds();
    for (size_t i = 0; i < jobs.size(); ++i) {
        bool ok = true;
        if (cfg_.verifyOutputs) {
            const std::vector<F> out = data[i].toGlobal();
            ok = checksumBytes(out.data(), out.size() * sizeof(F)) ==
                 referenceChecksum(kind, jobs[i]->spec.logN,
                                   jobs[i]->spec.seed);
        }
        result.status.push_back(Status());
        result.verified.push_back(ok);
    }
    return result;
}

ProvingService::ExecResult
ProvingService::executeResilient(Job &job,
                                 const std::vector<unsigned> &devices)
{
    const unsigned g = static_cast<unsigned>(devices.size());
    UniNttConfig ec = UniNttConfig::allOn();
    ec.hostThreads = cfg_.hostThreads;
    UniNttEngine<F> engine(subMachine(g), ec);

    DistributedVector<F> data = DistributedVector<F>::fromGlobal(
        serviceJobInput(job.spec.logN, job.spec.seed), g);

    FaultModel model;
    model.seed = mix64(cfg_.seed ^
                       mix64(job.spec.id * 0x9e3779b97f4a7c15ULL +
                             job.attempts));
    model.transientExchangeRate = chaos_.transientRate;
    model.bitFlipRate = chaos_.bitFlipRate;
    model.stragglerRate = chaos_.stragglerRate;
    model.stragglerSlowdown = chaos_.stragglerSlowdown;
    std::vector<unsigned> consumed_kills;
    for (unsigned i = 0; i < g; ++i) {
        if (!pendingKill(devices[i]))
            continue;
        model.dropouts.push_back(DeviceDropout{i, 0});
        consumed_kills.push_back(devices[i]);
        firedKills_.push_back(devices[i]);
    }

    FaultInjector injector(model);
    ResilienceConfig rc;
    rc.retry = cfg_.exchangeRetry;
    rc.spotChecks = cfg_.spotChecks;
    rc.spotCheckSeed = mix64(cfg_.seed ^ job.spec.id);
    DeviceHealthTracker run_health(g);

    Result<SimReport> r =
        job.spec.kind == JobKind::NttForward
            ? engine.forwardResilient(data, injector, rc, &run_health)
            : engine.inverseResilient(data, injector, rc, &run_health);

    translateRunHealth(run_health, devices);
    // A kill consumed by this run must leave the fleet device dead
    // even if the run ended before the dropout was observed (e.g. a
    // single-GPU placement has no exchanges to die in).
    for (unsigned dev : consumed_kills)
        if (!fleetHealth_.isLost(dev))
            fleetHealth_.recordDeviceLost(dev);

    ExecResult result;
    if (r.ok()) {
        const SimReport &rep = r.value();
        hostExec_ += rep.hostExecStats();
        faults_ += rep.faultStats();
        if (rep.faultStats().degradedReplans > 0)
            job.everDegraded = true;
        result.seconds = rep.totalSeconds();
        bool ok = true;
        if (cfg_.verifyOutputs) {
            const std::vector<F> out = data.toGlobal();
            ok = checksumBytes(out.data(), out.size() * sizeof(F)) ==
                 referenceChecksum(job.spec.kind, job.spec.logN,
                                   job.spec.seed);
        }
        result.status.push_back(Status());
        result.verified.push_back(ok);
    } else {
        // A failed attempt still occupied its devices; charge the
        // fault-free estimate as the occupancy.
        result.seconds = estimateOn(job.spec.kind, job.spec.logN, g);
        result.status.push_back(r.status());
        result.verified.push_back(false);
    }
    return result;
}

ProvingService::ExecResult
ProvingService::executeProof(Job &job,
                             const std::vector<unsigned> &devices)
{
    const unsigned g = static_cast<unsigned>(devices.size());
    ExecResult result;
    result.seconds = estimateOn(JobKind::Proof, job.spec.logN, g);

    // A device death interrupts the prover mid-pipeline; the
    // checkpoint store keeps every completed stage for the retry.
    std::vector<unsigned> dying;
    for (unsigned dev : devices)
        if (pendingKill(dev))
            dying.push_back(dev);
    if (!dying.empty()) {
        for (unsigned dev : dying) {
            firedKills_.push_back(dev);
            fleetHealth_.recordDeviceLost(dev);
        }
        fleetHealth_.endRun();
        result.status.push_back(Status::error(
            StatusCode::DeviceLost,
            "device died under the proof pipeline"));
        result.verified.push_back(false);
        return result;
    }

    if (!job.ckpt)
        job.ckpt = std::make_unique<CheckpointStore>();
    const F t0 = F::fromU64(mix64(job.spec.seed));

    Rng gate_rng(mix64(cfg_.seed ^ job.spec.id) +
                 job.attempts * 0x9e3779b97f4a7c15ULL);
    auto gate = [&](unsigned, const std::string &) -> Status {
        if (gate_rng.uniform() < chaos_.stageFailRate)
            return Status::error(StatusCode::TransientFault,
                                 "chaos: proof stage interrupted");
        return Status();
    };
    auto round_gate = [&](const std::string &, unsigned) -> Status {
        if (gate_rng.uniform() < chaos_.roundFailRate)
            return Status::error(StatusCode::TransientFault,
                                 "chaos: FRI round interrupted");
        return Status();
    };

    const SquareStark stark;
    Result<StarkProof> r = stark.proveCheckpointed(
        t0, job.spec.logN, *job.ckpt, gate, round_gate);
    fleetHealth_.endRun();

    if (!r.ok()) {
        result.status.push_back(r.status());
        result.verified.push_back(false);
        return result;
    }
    bool ok = true;
    if (cfg_.verifyOutputs) {
        const std::vector<uint8_t> bytes =
            serializeStarkProof(r.value());
        ok = checksumBytes(bytes.data(), bytes.size()) ==
             referenceChecksum(JobKind::Proof, job.spec.logN,
                               job.spec.seed);
    }
    result.status.push_back(Status());
    result.verified.push_back(ok);
    return result;
}

void
ProvingService::translateRunHealth(
    const DeviceHealthTracker &run_health,
    const std::vector<unsigned> &devices)
{
    for (unsigned i = 0; i < devices.size(); ++i) {
        if (run_health.isLost(i)) {
            if (!fleetHealth_.isLost(devices[i]))
                fleetHealth_.recordDeviceLost(devices[i]);
            continue;
        }
        const uint64_t events = std::min(run_health.faultEvents(i),
                                         kMaxFaultChargePerRun);
        for (uint64_t k = 0; k < events; ++k)
            fleetHealth_.recordFault(devices[i]);
    }
    fleetHealth_.endRun();
}

// ---------------------------------------------------------------------
// Pricing and reference results.
// ---------------------------------------------------------------------

double
ProvingService::estimateOn(JobKind kind, unsigned logN,
                           unsigned gpus) const
{
    const uint64_t key = cacheKey(kind, logN, gpus);
    auto it = estimateCache_.find(key);
    if (it != estimateCache_.end())
        return it->second;

    UniNttConfig ec = UniNttConfig::allOn();
    ec.hostThreads = cfg_.hostThreads;
    UniNttEngine<F> engine(subMachine(gpus), ec);
    double seconds;
    if (kind == JobKind::Proof) {
        // Proxy: the prover's dominant cost is its LDE transforms —
        // three committed polynomials at blowup 4 plus the FRI
        // folding, ~6 transforms of size 2^(logN+2).
        seconds =
            engine.analyticRun(logN + 2, NttDirection::Forward, 6)
                .totalSeconds();
    } else {
        const NttDirection dir = kind == JobKind::NttForward
                                     ? NttDirection::Forward
                                     : NttDirection::Inverse;
        seconds = engine.analyticRun(logN, dir).totalSeconds();
    }
    estimateCache_.emplace(key, seconds);
    return seconds;
}

double
ProvingService::estimateServiceSeconds(JobKind kind, unsigned logN) const
{
    return estimateOn(kind, logN, cfg_.jobGpus);
}

uint64_t
ProvingService::referenceChecksum(JobKind kind, unsigned logN,
                                  uint64_t seed) const
{
    const uint64_t key = cacheKey(kind, logN, mix64(seed) + 1);
    auto it = referenceCache_.find(key);
    if (it != referenceCache_.end())
        return it->second;

    uint64_t checksum = 0;
    if (kind == JobKind::Proof) {
        const SquareStark stark;
        const std::vector<uint8_t> bytes = serializeStarkProof(
            stark.prove(F::fromU64(mix64(seed)), logN));
        checksum = checksumBytes(bytes.data(), bytes.size());
    } else {
        // The transform's global result is independent of the
        // sharding, so the cheapest fault-free machine serves as the
        // oracle for every placement width.
        UniNttConfig ec = UniNttConfig::allOn();
        ec.hostThreads = cfg_.hostThreads;
        UniNttEngine<F> engine(subMachine(1), ec);
        DistributedVector<F> data = DistributedVector<F>::fromGlobal(
            serviceJobInput(logN, seed), 1);
        if (kind == JobKind::NttForward)
            engine.forward(data);
        else
            engine.inverse(data);
        const std::vector<F> out = data.toGlobal();
        checksum = checksumBytes(out.data(), out.size() * sizeof(F));
    }
    referenceCache_.emplace(key, checksum);
    return checksum;
}

SimReport
ProvingService::report() const
{
    SimReport rep;
    for (const auto &kv : counters_)
        rep.addServiceCounters("tenant" + std::to_string(kv.first),
                               kv.second);
    rep.addServiceCounters("", totals());
    rep.addFaultStats(faults_);
    rep.addHostExecStats(hostExec_);
    return rep;
}

} // namespace unintt
