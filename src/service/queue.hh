/**
 * @file
 * Bounded admission queue of the proving service.
 *
 * Admission is where overload becomes a first-class, reported outcome
 * instead of a silent drop: every rejection is a Status (Overloaded
 * for load shedding, QuotaExceeded for per-tenant limits) that the
 * service counts and returns to the caller. Inside the queue, jobs
 * wait in per-class FIFOs; the scheduler pops the highest class first,
 * FIFO within a class, skipping jobs whose retry backoff has not
 * elapsed or whose tenant is at its in-flight quota.
 *
 * Load shedding is class-aware: a Batch job is rejected once the
 * queue is half full, Standard at 80%, Premium only by a literally
 * full queue — under overload the queue keeps absorbing the traffic
 * whose latency promises matter most.
 */

#ifndef UNINTT_SERVICE_QUEUE_HH
#define UNINTT_SERVICE_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "service/types.hh"
#include "util/status.hh"

namespace unintt {

/** A job waiting for placement. */
struct QueuedJob
{
    uint64_t id = 0;
    unsigned tenant = 0;
    SlaClass sla = SlaClass::Standard;
    JobKind kind = JobKind::NttForward;
    unsigned logN = 0;
    /** Earliest start time (future while a retry backoff runs). */
    double readyAt = 0;
    /** Absolute deadline (infinity when none). */
    double deadlineAt = ServiceConfig::kNoDeadline;
};

/**
 * Bounded, class-aware admission queue. Not thread-safe: it belongs
 * to the service's (serial) discrete-event loop.
 */
class AdmissionQueue
{
  public:
    /** Predicate deciding whether a queued job may start right now. */
    using Eligible = std::function<bool(const QueuedJob &)>;

    AdmissionQueue(const ServiceConfig &cfg);

    /**
     * Admit @p job or reject it with a recoverable Status:
     * Overloaded when the job's class has been shed, QuotaExceeded
     * when the tenant is over its queued-jobs quota.
     */
    Status admit(const QueuedJob &job);

    /**
     * Re-queue an already admitted job (retry after backoff).
     * Bypasses shedding — the job's admission was already granted —
     * and goes to the back of its class FIFO.
     */
    void requeue(const QueuedJob &job);

    /**
     * Return a popped job to the front of its class FIFO (placement
     * backpressure: no devices were free).
     */
    void pushFront(const QueuedJob &job);

    /**
     * Pop the best runnable job: highest class first, FIFO within a
     * class, skipping jobs with readyAt > now, deadlineAt <= now, or
     * for which @p eligible returns false.
     */
    std::optional<QueuedJob> popRunnable(double now,
                                         const Eligible &eligible);

    /**
     * Pop up to @p max additional runnable jobs matching (kind, logN)
     * across all classes — the candidates for one coalesced batched
     * launch. Same runnability rules as popRunnable.
     */
    std::vector<QueuedJob> popMatching(JobKind kind, unsigned logN,
                                       double now, unsigned max,
                                       const Eligible &eligible);

    /** Remove a queued job by id (deadline cancellation). */
    bool erase(uint64_t id);

    /**
     * Pop any queued job regardless of runnability, highest class
     * first (used to fail out the backlog when the fleet is gone).
     */
    std::optional<QueuedJob> popAny();

    /** Jobs currently queued. */
    size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    /** Jobs tenant @p tenant has queued. */
    unsigned queuedOf(unsigned tenant) const;

    /** Earliest readyAt strictly greater than @p now (or infinity). */
    double nextReadyAfter(double now) const;

  private:
    /** True iff a class-@p sla job would be shed at the current depth. */
    bool shedAt(SlaClass sla) const;

    void pushed(const QueuedJob &job);
    void popped(const QueuedJob &job);

    ServiceConfig cfg_;
    /** One FIFO per class, indexed by SlaClass value. */
    std::deque<QueuedJob> byClass_[kNumSlaClasses];
    std::map<unsigned, unsigned> queuedPerTenant_;
    size_t size_ = 0;
};

} // namespace unintt

#endif // UNINTT_SERVICE_QUEUE_HH
