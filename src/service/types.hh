/**
 * @file
 * Shared vocabulary of the multi-tenant proving service: job
 * descriptions, SLA classes, tenant quotas, and the service
 * configuration. The service itself lives in service.hh; this header
 * exists so the admission queue, the placement policy and the load
 * generators can speak the same types without pulling in the whole
 * scheduler.
 */

#ifndef UNINTT_SERVICE_TYPES_HH
#define UNINTT_SERVICE_TYPES_HH

#include <cstdint>
#include <limits>

#include "sim/fault.hh"
#include "util/status.hh"

namespace unintt {

/** What a job asks the fleet to compute. */
enum class JobKind {
    /** One forward NTT of 2^logN Goldilocks elements. */
    NttForward,
    /** One inverse NTT of 2^logN Goldilocks elements. */
    NttInverse,
    /** One checkpointed STARK proof with a 2^logN-row trace. */
    Proof,
};

/** Printable name of a job kind ("forward-ntt" style). */
const char *toString(JobKind kind);

/**
 * Service class of a tenant's jobs. Higher classes are scheduled
 * first and shed last; the numeric values index per-class arrays and
 * order classes by priority.
 */
enum class SlaClass : unsigned {
    /** Throughput-oriented; first to be shed under overload. */
    Batch = 0,
    /** Default interactive class. */
    Standard = 1,
    /** Latency-sensitive; shed only when the queue is truly full. */
    Premium = 2,
};

/** Number of SLA classes (array dimension). */
constexpr unsigned kNumSlaClasses = 3;

/** Printable name of an SLA class ("premium" style). */
const char *toString(SlaClass sla);

/** One unit of work submitted to the service. */
struct JobSpec
{
    /** Caller-assigned unique id (0 is invalid). */
    uint64_t id = 0;
    /** Tenant the job belongs to (dense small integers). */
    unsigned tenant = 0;
    SlaClass sla = SlaClass::Standard;
    JobKind kind = JobKind::NttForward;
    /** log2 transform size, or log2 trace length for proofs. */
    unsigned logN = 12;
    /**
     * Completion deadline relative to submission, in simulated
     * seconds; 0 means no deadline. The watchdog cancels queued jobs
     * at the deadline and discards results that finish past it.
     */
    double deadlineSeconds = 0;
    /** Seed of the job's input data (results are seed-deterministic). */
    uint64_t seed = 1;
};

/** Final fate of one admitted job. */
struct JobOutcome
{
    uint64_t id = 0;
    unsigned tenant = 0;
    SlaClass sla = SlaClass::Batch;
    JobKind kind = JobKind::NttForward;
    /** OK, or why the job ultimately failed (last error). */
    Status status;
    /** Submission time (simulated seconds). */
    double arrival = 0;
    /** First execution start (simulated seconds; = finish if never ran). */
    double started = 0;
    /** Completion/cancellation time (simulated seconds). */
    double finish = 0;
    /** Execution attempts consumed (0 if cancelled while queued). */
    unsigned attempts = 0;
    /** Ran at least once on fewer GPUs than requested. */
    bool degraded = false;
    /** The transform rode a coalesced batched launch. */
    bool coalesced = false;
    /** Output checksum matched the fault-free reference. */
    bool verified = false;

    /** End-to-end latency in simulated seconds. */
    double latency() const { return finish - arrival; }
};

/** Per-tenant admission limits. */
struct TenantQuota
{
    /** Jobs a tenant may have waiting in the queue. */
    unsigned maxQueued = 16;
    /** Jobs a tenant may have running concurrently. */
    unsigned maxInFlight = 4;
};

/** Configuration of the proving service. */
struct ServiceConfig
{
    /** GPUs a job requests (power of two); degraded runs use fewer. */
    unsigned jobGpus = 2;
    /** Total queue capacity across all classes. */
    unsigned queueCapacity = 64;
    /**
     * Class-aware load shedding: a class-c job is shed once the queue
     * holds at least shedFraction[c] * queueCapacity jobs. Premium at
     * 1.0 is only shed by a literally full queue.
     */
    double shedFraction[kNumSlaClasses] = {0.5, 0.8, 1.0};
    /** Per-tenant admission limits (uniform across tenants). */
    TenantQuota quota;
    /** Execution attempts per job (1 = no retries). */
    unsigned maxAttempts = 3;
    /**
     * Service-level retry backoff: capped exponential with jitter,
     * salted by the job id so concurrent jobs decorrelate.
     */
    RetryPolicy retry = jitteredRetryDefaults();
    /**
     * Exchange-level retry backoff the resilient executor uses for
     * transient fabric faults. Transmission-scale: a retransmission
     * delay must be commensurate with the exchange it repeats
     * (microseconds), not with a job retry (tens of microseconds) —
     * one transient fault must not cost multiples of the transform.
     */
    RetryPolicy exchangeRetry = exchangeRetryDefaults();
    /** Halve the GPU request when retrying after a device loss. */
    bool allowDegraded = true;
    /** Max same-shape transforms coalesced into one batched launch. */
    unsigned coalesceMax = 4;
    /** Check every result against a fault-free reference. */
    bool verifyOutputs = true;
    /**
     * Route every transform through the resilient executor (spot
     * checks, retry machinery) even when no chaos is configured, and
     * skip coalescing. Keeps the executor uniform so fault-free and
     * chaos runs of the same scenario differ only in the injected
     * faults — required for honest SLA (p99 ratio) comparisons.
     */
    bool hardenedOnly = false;
    /** Spot checks the resilient engine runs per transform. */
    unsigned spotChecks = 2;
    /** Host threads for functional execution (0 = pool default). */
    unsigned hostThreads = 0;
    /** Seed of the service's derived randomness (chaos gates, jitter). */
    uint64_t seed = 0x5e41ce;

    /** No deadline sentinel. */
    static constexpr double kNoDeadline =
        std::numeric_limits<double>::infinity();

    /** The service-flavoured retry policy: capped, jittered. */
    static RetryPolicy
    jitteredRetryDefaults()
    {
        RetryPolicy p;
        p.maxRetries = 4;
        p.backoffBaseSeconds = 50e-6;
        p.backoffMaxSeconds = 2e-3;
        p.jitterFraction = 0.5;
        return p;
    }

    /** Exchange-scale backoff: capped and jittered like the job
     * policy, but priced in retransmission time. */
    static RetryPolicy
    exchangeRetryDefaults()
    {
        RetryPolicy p;
        p.maxRetries = 4;
        p.backoffBaseSeconds = 2e-6;
        p.backoffMaxSeconds = 50e-6;
        p.jitterFraction = 0.5;
        return p;
    }
};

} // namespace unintt

#endif // UNINTT_SERVICE_TYPES_HH
