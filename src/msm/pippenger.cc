#include "msm/pippenger.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

unsigned
pippengerWindowBits(size_t n)
{
    if (n < 32)
        return 3;
    // Classic heuristic: c ~= log2(n) - 3, clamped to a sane range.
    unsigned c = log2Floor(n);
    c = c > 3 ? c - 3 : 1;
    return std::min(c, 16u);
}

G1Jacobian
naiveMsm(const std::vector<G1Affine> &points,
         const std::vector<U256> &scalars)
{
    return naiveMsmOf<G1Jacobian>(points, scalars);
}

G1Jacobian
pippengerMsm(const std::vector<G1Affine> &points,
             const std::vector<U256> &scalars, unsigned window_bits)
{
    return pippengerMsmOf<G1Jacobian>(points, scalars, window_bits);
}

G2Jacobian
pippengerMsmG2(const std::vector<G2Affine> &points,
               const std::vector<U256> &scalars, unsigned window_bits)
{
    return pippengerMsmOf<G2Jacobian>(points, scalars, window_bits);
}

MsmEngine::MsmEngine(MultiGpuSystem sys)
    : sys_(std::move(sys)), perf_(sys_.gpu, fieldCostOf<Bn254Fq>())
{
}

G1Jacobian
MsmEngine::msm(const std::vector<G1Affine> &points,
               const std::vector<U256> &scalars, SimReport *report) const
{
    if (report)
        *report = analyticRun(points.size());
    return pippengerMsm(points, scalars);
}

SimReport
MsmEngine::analyticRun(size_t n, bool g2) const
{
    SimReport report;
    const unsigned G = sys_.numGpus;
    const size_t per_gpu = (n + G - 1) / G;
    const unsigned c = pippengerWindowBits(per_gpu ? per_gpu : 1);
    const unsigned num_windows = (254 + c - 1) / c;
    const uint64_t num_buckets = (1ULL << c) - 1;

    // G2 arithmetic works on Fq2: 3 Fq muls per coordinate mul and
    // twice the point footprint.
    const double mul_factor = g2 ? kFq2MulFqMuls : 1.0;
    const size_t point_bytes = g2 ? kG2AffineBytes : kG1AffineBytes;

    // Bucket accumulation: one mixed add per point per window, plus the
    // bucket reduction (2 full adds per bucket) and c doublings, per
    // window. Fq-multiply counts use the EFD formula costs.
    KernelStats k;
    double muls =
        (static_cast<double>(per_gpu) * num_windows * kG1MixedAddFqMuls +
         static_cast<double>(num_buckets) * num_windows * 2 *
             kG1AddFqMuls +
         static_cast<double>(num_windows) * c * kG1DoubleFqMuls) *
        mul_factor;
    k.fieldMuls = static_cast<uint64_t>(muls);
    k.fieldAdds = k.fieldMuls * 2; // EFD formulas are mul-dominated
    k.globalReadBytes = per_gpu * (point_bytes + 32);
    k.globalWriteBytes = num_buckets * num_windows * 3 * point_bytes / 2;
    k.kernelLaunches = num_windows;
    report.addKernelPhase("bucket-accumulation", k, perf_);

    if (G > 1) {
        // Tree reduction of partial sums: log2(G) rounds of one point
        // transfer plus one Jacobian add.
        unsigned rounds = log2Floor(G);
        for (unsigned r = 0; r < rounds; ++r) {
            CommStats comm{3 * point_bytes / 2, 1};
            report.addCommPhase(
                "partial-reduce-" + std::to_string(r),
                sys_.fabric.pairwiseExchangeTime(comm.bytesPerGpu,
                                                 1u << r),
                comm);
        }
        KernelStats red;
        red.fieldMuls = static_cast<uint64_t>(rounds * kG1AddFqMuls *
                                              mul_factor);
        red.fieldAdds = red.fieldMuls * 2;
        red.kernelLaunches = 1;
        report.addKernelPhase("partial-reduce-adds", red, perf_);
    }
    return report;
}

} // namespace unintt
