/**
 * @file
 * Short Weierstrass curve arithmetic y^2 = x^3 + b, templated over the
 * coordinate field so BN254's G1 (over Fq) and G2 (over Fq2) share one
 * implementation. Points use Jacobian projective coordinates; formulas
 * follow the Explicit-Formulas Database (dbl-2009-l, add-2007-bl,
 * madd-2007-bl), all valid for a = 0 curves.
 *
 * @tparam Fp     coordinate field.
 * @tparam Params policy providing:
 *   - static Fp b()                  curve constant;
 *   - static AffinePt<Fp, Params> basePoint()  a fixed curve point.
 */

#ifndef UNINTT_MSM_WEIERSTRASS_HH
#define UNINTT_MSM_WEIERSTRASS_HH

#include "field/u256.hh"

namespace unintt {

template <typename Fp, typename Params>
struct JacobianPt;

/** A curve point in affine coordinates; (0, 0) encodes infinity. */
template <typename Fp, typename Params>
struct AffinePt
{
    Fp x;
    Fp y;

    /** The point at infinity. */
    static AffinePt
    infinity()
    {
        return AffinePt{Fp::zero(), Fp::zero()};
    }

    /** The curve's fixed base point. */
    static AffinePt generator() { return Params::basePoint(); }

    /** True iff this encodes the point at infinity. */
    bool isInfinity() const { return x.isZero() && y.isZero(); }

    /** Curve membership (infinity counts as a member). */
    bool
    isOnCurve() const
    {
        if (isInfinity())
            return true;
        return y * y == x * x * x + Params::b();
    }

    bool
    operator==(const AffinePt &o) const
    {
        return x == o.x && y == o.y;
    }
};

/** A curve point in Jacobian coordinates (Z == 0 is infinity). */
template <typename Fp, typename Params>
struct JacobianPt
{
    Fp x;
    Fp y;
    Fp z;

    using Affine = AffinePt<Fp, Params>;

    /** The point at infinity. */
    static JacobianPt
    infinity()
    {
        return JacobianPt{Fp::one(), Fp::one(), Fp::zero()};
    }

    /** Lift an affine point. */
    static JacobianPt
    fromAffine(const Affine &p)
    {
        if (p.isInfinity())
            return infinity();
        return JacobianPt{p.x, p.y, Fp::one()};
    }

    /** The curve's fixed base point. */
    static JacobianPt
    generator()
    {
        return fromAffine(Affine::generator());
    }

    /** True iff this is the point at infinity. */
    bool isInfinity() const { return z.isZero(); }

    /** Point doubling (dbl-2009-l, a = 0). */
    JacobianPt
    dbl() const
    {
        if (isInfinity())
            return *this;
        Fp a = x * x;
        Fp b = y * y;
        Fp c = b * b;
        Fp xb = x + b;
        Fp d = xb * xb - a - c;
        d = d + d;
        Fp e = a + a + a;
        Fp f = e * e;
        JacobianPt r;
        r.x = f - (d + d);
        Fp c8 = c + c;
        c8 = c8 + c8;
        c8 = c8 + c8;
        r.y = e * (d - r.x) - c8;
        Fp yz = y * z;
        r.z = yz + yz;
        return r;
    }

    /** Full Jacobian addition (add-2007-bl). */
    JacobianPt
    add(const JacobianPt &o) const
    {
        if (isInfinity())
            return o;
        if (o.isInfinity())
            return *this;
        Fp z1z1 = z * z;
        Fp z2z2 = o.z * o.z;
        Fp u1 = x * z2z2;
        Fp u2 = o.x * z1z1;
        Fp s1 = y * o.z * z2z2;
        Fp s2 = o.y * z * z1z1;
        Fp h = u2 - u1;
        Fp rr = s2 - s1;
        if (h.isZero()) {
            if (rr.isZero())
                return dbl();
            return infinity();
        }
        Fp h2 = h + h;
        Fp i = h2 * h2;
        Fp j = h * i;
        rr = rr + rr;
        Fp v = u1 * i;
        JacobianPt out;
        out.x = rr * rr - j - (v + v);
        Fp s1j = s1 * j;
        out.y = rr * (v - out.x) - (s1j + s1j);
        Fp zs = z + o.z;
        out.z = (zs * zs - z1z1 - z2z2) * h;
        return out;
    }

    /** Mixed addition with an affine point (madd-2007-bl). */
    JacobianPt
    addAffine(const Affine &o) const
    {
        if (o.isInfinity())
            return *this;
        if (isInfinity())
            return fromAffine(o);
        Fp z1z1 = z * z;
        Fp u2 = o.x * z1z1;
        Fp s2 = o.y * z * z1z1;
        Fp h = u2 - x;
        Fp rr = s2 - y;
        if (h.isZero()) {
            if (rr.isZero())
                return dbl();
            return infinity();
        }
        Fp hh = h * h;
        Fp i = hh + hh;
        i = i + i;
        Fp j = h * i;
        rr = rr + rr;
        Fp v = x * i;
        JacobianPt out;
        out.x = rr * rr - j - (v + v);
        Fp yj = y * j;
        out.y = rr * (v - out.x) - (yj + yj);
        Fp zh = z + h;
        out.z = zh * zh - z1z1 - hh;
        return out;
    }

    /** Additive inverse. */
    JacobianPt
    neg() const
    {
        return JacobianPt{x, -y, z};
    }

    /** Scalar multiplication by a 256-bit scalar, double-and-add. */
    JacobianPt
    scalarMul(const U256 &k) const
    {
        JacobianPt acc = infinity();
        int top = k.highestBit();
        for (int i = top; i >= 0; --i) {
            acc = acc.dbl();
            if (k.bit(static_cast<unsigned>(i)))
                acc = acc.add(*this);
        }
        return acc;
    }

    /** Normalize to affine (one field inversion). */
    Affine
    toAffine() const
    {
        if (isInfinity())
            return Affine::infinity();
        Fp zinv = z.inverse();
        Fp zinv2 = zinv * zinv;
        return Affine{x * zinv2, y * zinv2 * zinv};
    }

    /** Projective equality (same affine point). */
    bool
    operator==(const JacobianPt &o) const
    {
        if (isInfinity() || o.isInfinity())
            return isInfinity() == o.isInfinity();
        Fp z1z1 = z * z;
        Fp z2z2 = o.z * o.z;
        if (x * z2z2 != o.x * z1z1)
            return false;
        return y * o.z * z2z2 == o.y * z * z1z1;
    }
};

} // namespace unintt

#endif // UNINTT_MSM_WEIERSTRASS_HH
