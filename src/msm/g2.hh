/**
 * @file
 * The BN254 G2 curve: y^2 = x^3 + 3/(9 + u) over Fq2. Groth16 proofs
 * carry one element ([B]_2) on this curve, so the end-to-end prover
 * needs real G2 MSM, whose Fq2 arithmetic costs ~3x the G1 Fq cost —
 * the constant the pipeline model uses is validated against this
 * implementation in the tests.
 *
 * The base point is constructed deterministically by hashing to an
 * x-coordinate and taking the first square root that lands on the
 * curve (possible in closed form because u^2 = -1, see field/fq2.hh),
 * then clearing nothing: MSM and the group laws hold on all of
 * E'(Fq2), so the subgroup cofactor is irrelevant here and no 254-bit
 * generator constants need to be trusted.
 */

#ifndef UNINTT_MSM_G2_HH
#define UNINTT_MSM_G2_HH

#include "field/fq2.hh"
#include "msm/weierstrass.hh"

namespace unintt {

/** Curve constants of BN254 G2 (the sextic twist). */
struct G2Params
{
    /** b' = 3 / (9 + u). */
    static Fq2 b();

    /** A deterministic point on the twist (not cofactor-cleared). */
    static AffinePt<Fq2, G2Params> basePoint();
};

/** A point of BN254 G2 in affine coordinates. */
using G2Affine = AffinePt<Fq2, G2Params>;

/** A point of BN254 G2 in Jacobian coordinates. */
using G2Jacobian = JacobianPt<Fq2, G2Params>;

/** Fq-multiplication cost of one Fq2 multiplication (Karatsuba). */
constexpr double kFq2MulFqMuls = 3.0;
/** Serialized size of an affine G2 point in device memory. */
constexpr size_t kG2AffineBytes = 128;

} // namespace unintt

#endif // UNINTT_MSM_G2_HH
