/**
 * @file
 * The BN254 (alt_bn128) G1 group: the short Weierstrass curve
 * y^2 = x^3 + 3 over Fq with the standard generator (1, 2). This is
 * the curve Groth16/PLONK deployments commit to (Ethereum precompiles
 * 0x06/0x07) and the substrate of the MSM engine in pippenger.hh.
 * The arithmetic lives in the shared template (msm/weierstrass.hh);
 * G2 over Fq2 instantiates the same template in msm/g2.hh.
 */

#ifndef UNINTT_MSM_CURVE_HH
#define UNINTT_MSM_CURVE_HH

#include "field/bn254.hh"
#include "msm/weierstrass.hh"

namespace unintt {

/** Curve constants of BN254 G1. */
struct G1Params
{
    /** b = 3. */
    static Bn254Fq
    b()
    {
        return Bn254Fq::fromU64(3);
    }

    /** The standard generator (1, 2). */
    static AffinePt<Bn254Fq, G1Params>
    basePoint()
    {
        return {Bn254Fq::fromU64(1), Bn254Fq::fromU64(2)};
    }
};

/** A point of BN254 G1 in affine coordinates. */
using G1Affine = AffinePt<Bn254Fq, G1Params>;

/** A point of BN254 G1 in Jacobian coordinates. */
using G1Jacobian = JacobianPt<Bn254Fq, G1Params>;

/** Number of Fq multiplications one Jacobian addition costs (model). */
constexpr double kG1AddFqMuls = 16.0;
/** Number of Fq multiplications one mixed addition costs (model). */
constexpr double kG1MixedAddFqMuls = 11.0;
/** Number of Fq multiplications one doubling costs (model). */
constexpr double kG1DoubleFqMuls = 8.0;
/** Serialized size of an affine point in device memory. */
constexpr size_t kG1AffineBytes = 64;

} // namespace unintt

#endif // UNINTT_MSM_CURVE_HH
