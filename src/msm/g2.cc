#include "msm/g2.hh"

#include "util/logging.hh"

namespace unintt {

Fq2
G2Params::b()
{
    // 3 / (9 + u), the standard BN254 twist constant.
    static const Fq2 value =
        Fq2::fromU64(3) *
        Fq2(Bn254Fq::fromU64(9), Bn254Fq::one()).inverse();
    return value;
}

AffinePt<Fq2, G2Params>
G2Params::basePoint()
{
    // Deterministic try-and-increment: walk x = k + u, k = 1, 2, ...
    // until x^3 + b' is a square in Fq2.
    static const AffinePt<Fq2, G2Params> point = [] {
        for (uint64_t k = 1; k < 1000; ++k) {
            Fq2 x(Bn254Fq::fromU64(k), Bn254Fq::one());
            Fq2 rhs = x * x * x + b();
            if (auto y = rhs.sqrt()) {
                AffinePt<Fq2, G2Params> p{x, *y};
                UNINTT_ASSERT(p.isOnCurve(), "sqrt produced a bad point");
                return p;
            }
        }
        panic("no G2 base point found in 1000 candidates");
    }();
    return point;
}

} // namespace unintt
