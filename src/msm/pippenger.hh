/**
 * @file
 * Pippenger (bucket-method) multi-scalar multiplication, templated
 * over the curve group so BN254 G1 and G2 share one implementation,
 * plus the multi-GPU MSM engine. MSM is the other dominant kernel of
 * ZKP proof generation; prior work already scales it across GPUs,
 * which is exactly why NTT becomes the bottleneck the paper attacks
 * (bench/fig01_motivation).
 */

#ifndef UNINTT_MSM_PIPPENGER_HH
#define UNINTT_MSM_PIPPENGER_HH

#include <vector>

#include "field/u256.hh"
#include "msm/curve.hh"
#include "msm/g2.hh"
#include "sim/multi_gpu.hh"
#include "sim/perf_model.hh"
#include "sim/report.hh"
#include "util/logging.hh"

namespace unintt {

/** Automatic Pippenger window width for @p n points. */
unsigned pippengerWindowBits(size_t n);

/** Reference MSM by independent scalar multiplications (for tests). */
template <typename Jac, typename Aff>
Jac
naiveMsmOf(const std::vector<Aff> &points, const std::vector<U256> &scalars)
{
    UNINTT_ASSERT(points.size() == scalars.size(), "size mismatch");
    Jac acc = Jac::infinity();
    for (size_t i = 0; i < points.size(); ++i)
        acc = acc.add(Jac::fromAffine(points[i]).scalarMul(scalars[i]));
    return acc;
}

/**
 * Bucket-method MSM: sum_i scalars[i] * points[i].
 *
 * @param points      base points (affine).
 * @param scalars     canonical (non-Montgomery) 256-bit scalars.
 * @param window_bits bucket window width; 0 selects automatically.
 */
template <typename Jac, typename Aff>
Jac
pippengerMsmOf(const std::vector<Aff> &points,
               const std::vector<U256> &scalars, unsigned window_bits = 0)
{
    UNINTT_ASSERT(points.size() == scalars.size(), "size mismatch");
    if (points.empty())
        return Jac::infinity();
    const unsigned c =
        window_bits ? window_bits : pippengerWindowBits(points.size());
    const unsigned num_windows = (254 + c - 1) / c;
    const uint64_t num_buckets = (1ULL << c) - 1;

    Jac result = Jac::infinity();
    // Process windows from the most significant down, so the running
    // result is shifted by c doublings between windows.
    for (int w = static_cast<int>(num_windows) - 1; w >= 0; --w) {
        for (unsigned d = 0; d < c; ++d)
            result = result.dbl();

        std::vector<Jac> buckets(num_buckets, Jac::infinity());
        for (size_t i = 0; i < points.size(); ++i) {
            // Extract bits [w*c, w*c + c) of the scalar.
            uint64_t digit = 0;
            for (unsigned b = 0; b < c; ++b) {
                unsigned bit = static_cast<unsigned>(w) * c + b;
                if (bit < 256 && scalars[i].bit(bit))
                    digit |= 1ULL << b;
            }
            if (digit != 0)
                buckets[digit - 1] = buckets[digit - 1]
                                         .addAffine(points[i]);
        }

        // Weighted bucket sum via the running-sum trick:
        // sum_k k * bucket[k] = sum of suffix sums.
        Jac running = Jac::infinity();
        Jac window_sum = Jac::infinity();
        for (uint64_t k = num_buckets; k-- > 0;) {
            running = running.add(buckets[k]);
            window_sum = window_sum.add(running);
        }
        result = result.add(window_sum);
    }
    return result;
}

/** Host-side Pippenger MSM over G1. */
G1Jacobian pippengerMsm(const std::vector<G1Affine> &points,
                        const std::vector<U256> &scalars,
                        unsigned window_bits = 0);

/** Reference G1 MSM (for tests). */
G1Jacobian naiveMsm(const std::vector<G1Affine> &points,
                    const std::vector<U256> &scalars);

/** Host-side Pippenger MSM over G2. */
G2Jacobian pippengerMsmG2(const std::vector<G2Affine> &points,
                          const std::vector<U256> &scalars,
                          unsigned window_bits = 0);

/**
 * Multi-GPU MSM engine: points are partitioned across devices, each
 * device runs bucket accumulation locally, partial sums are reduced
 * over the fabric (log2 G point transfers). Functional execution is
 * host-side Pippenger; the timeline is produced by the same analytic
 * machinery the NTT engines use.
 */
class MsmEngine
{
  public:
    explicit MsmEngine(MultiGpuSystem sys);

    /** Functional G1 MSM plus its simulated timeline. */
    G1Jacobian msm(const std::vector<G1Affine> &points,
                   const std::vector<U256> &scalars,
                   SimReport *report = nullptr) const;

    /**
     * Simulated timeline only, for size @p n.
     * @param g2 price the G2 variant (Fq2 arithmetic, wider points).
     */
    SimReport analyticRun(size_t n, bool g2 = false) const;

    /** The machine being modeled. */
    const MultiGpuSystem &system() const { return sys_; }

  private:
    MultiGpuSystem sys_;
    PerfModel perf_;
};

} // namespace unintt

#endif // UNINTT_MSM_PIPPENGER_HH
