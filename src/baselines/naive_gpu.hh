/**
 * @file
 * The naive single-GPU NTT baseline: one kernel launch per butterfly
 * stage, every stage streaming the whole dataset through global memory,
 * twiddles loaded from a device table. This is the structure of early
 * GPU NTT libraries (cuHE-era) and of textbook ports; it is the lower
 * anchor of the single-GPU comparison (bench/fig07).
 */

#ifndef UNINTT_BASELINES_NAIVE_GPU_HH
#define UNINTT_BASELINES_NAIVE_GPU_HH

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/radix2.hh"
#include "ntt/twiddle.hh"
#include "sim/multi_gpu.hh"
#include "sim/perf_model.hh"
#include "sim/report.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

/** Stage-per-kernel single-GPU NTT baseline. */
template <NttField F>
class NaiveGpuNtt
{
  public:
    /** @param gpu the device model to simulate on. */
    explicit NaiveGpuNtt(GpuModel gpu)
        : gpu_(std::move(gpu)), perf_(gpu_, fieldCostOf<F>())
    {
    }

    /**
     * Forward NTT in place, natural in, bit-reversed out (same
     * convention as the UniNTT engine).
     */
    SimReport
    forward(std::vector<F> &data) const
    {
        SimReport report = analyticRun(log2Exact(data.size()),
                                       NttDirection::Forward);
        TwiddleTable<F> tw(data.size(), NttDirection::Forward);
        nttDif(data.data(), data.size(), tw);
        return report;
    }

    /** Inverse NTT in place, bit-reversed in, natural out, scaled. */
    SimReport
    inverse(std::vector<F> &data) const
    {
        SimReport report = analyticRun(log2Exact(data.size()),
                                       NttDirection::Inverse);
        TwiddleTable<F> tw(data.size(), NttDirection::Inverse);
        nttDit(data.data(), data.size(), tw);
        F scale = inverseScale<F>(data.size());
        for (auto &v : data)
            v *= scale;
        return report;
    }

    /** Simulated timeline without functional execution. */
    SimReport
    analyticRun(unsigned logN, NttDirection dir, size_t batch = 1) const
    {
        const uint64_t n = 1ULL << logN;
        const size_t b = sizeof(F);
        SimReport report;
        for (unsigned s = 0; s < logN; ++s) {
            KernelStats k;
            k.butterflies = n / 2 * batch;
            k.fieldMuls = k.butterflies;
            k.fieldAdds = 2 * k.butterflies;
            // Whole array read and written every stage; twiddle table
            // loads go through DRAM with no reuse across blocks.
            k.globalReadBytes = n * b * batch + k.butterflies * b;
            k.globalWriteBytes = n * b * batch;
            k.kernelLaunches = 1;
            report.addKernelPhase("stage-" + std::to_string(s), k, perf_);
        }
        if (dir == NttDirection::Inverse) {
            KernelStats k;
            k.fieldMuls = n * batch;
            k.globalReadBytes = n * b * batch;
            k.globalWriteBytes = n * b * batch;
            k.kernelLaunches = 1;
            report.addKernelPhase("inverse-scale", k, perf_);
        }
        return report;
    }

    /** The device being modeled. */
    const GpuModel &gpu() const { return gpu_; }

  private:
    GpuModel gpu_;
    PerfModel perf_;
};

} // namespace unintt

#endif // UNINTT_BASELINES_NAIVE_GPU_HH
