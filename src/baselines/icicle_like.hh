/**
 * @file
 * An Icicle-style optimized single-GPU NTT baseline: butterfly stages
 * grouped into shared-memory tile passes (radix-2^8 kernels), twiddles
 * loaded from precomputed device tables, conflict-free tile layout.
 * This is the state of the art for one GPU; what it lacks relative to
 * UniNTT's single-GPU configuration is the uniform warp-level shuffle
 * sub-NTT and on-the-fly twiddle generation, and it has no multi-GPU
 * story at all (Icicle distributes independent transforms, it does not
 * split one transform).
 */

#ifndef UNINTT_BASELINES_ICICLE_LIKE_HH
#define UNINTT_BASELINES_ICICLE_LIKE_HH

#include <string>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/radix2.hh"
#include "ntt/twiddle.hh"
#include "sim/multi_gpu.hh"
#include "sim/perf_model.hh"
#include "sim/report.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

/** Optimized single-GPU NTT baseline (Icicle-class). */
template <NttField F>
class IcicleLikeNtt
{
  public:
    /** Bits one shared-memory tile pass resolves (radix-2^8 kernel). */
    static constexpr unsigned kLogTile = 8;

    explicit IcicleLikeNtt(GpuModel gpu)
        : gpu_(std::move(gpu)), perf_(gpu_, fieldCostOf<F>())
    {
    }

    /** Forward NTT in place, natural in, bit-reversed out. */
    SimReport
    forward(std::vector<F> &data) const
    {
        SimReport report = analyticRun(log2Exact(data.size()),
                                       NttDirection::Forward);
        TwiddleTable<F> tw(data.size(), NttDirection::Forward);
        nttDif(data.data(), data.size(), tw);
        return report;
    }

    /** Inverse NTT in place, bit-reversed in, natural out, scaled. */
    SimReport
    inverse(std::vector<F> &data) const
    {
        SimReport report = analyticRun(log2Exact(data.size()),
                                       NttDirection::Inverse);
        TwiddleTable<F> tw(data.size(), NttDirection::Inverse);
        nttDit(data.data(), data.size(), tw);
        F scale = inverseScale<F>(data.size());
        for (auto &v : data)
            v *= scale;
        return report;
    }

    /** Simulated timeline without functional execution. */
    SimReport
    analyticRun(unsigned logN, NttDirection dir, size_t batch = 1) const
    {
        const uint64_t n = 1ULL << logN;
        const size_t b = sizeof(F);
        SimReport report;

        unsigned remaining = logN;
        unsigned pass_idx = 0;
        while (remaining > 0) {
            unsigned bits = std::min(remaining, kLogTile);
            KernelStats k;
            k.butterflies = n / 2 * bits * batch;
            k.fieldMuls = k.butterflies;
            k.fieldAdds = 2 * k.butterflies;
            // Table twiddles: loads partially served by L2.
            k.globalReadBytes += k.butterflies * b / 2;
            // One coalesced read + write of the array per pass.
            k.globalReadBytes += n * b * batch;
            k.globalWriteBytes += n * b * batch;
            // All tile stages exchange through (conflict-free) smem.
            k.smemBytes = 2 * n * b * bits * batch;
            k.syncs = (n >> bits) * bits * batch;
            k.kernelLaunches = 1;
            report.addKernelPhase("tile-pass-" + std::to_string(pass_idx),
                                  k, perf_);
            remaining -= bits;
            ++pass_idx;
        }
        if (dir == NttDirection::Inverse) {
            KernelStats k;
            k.fieldMuls = n * batch;
            k.globalReadBytes = n * b * batch;
            k.globalWriteBytes = n * b * batch;
            k.kernelLaunches = 1;
            report.addKernelPhase("inverse-scale", k, perf_);
        }
        return report;
    }

    /** The device being modeled. */
    const GpuModel &gpu() const { return gpu_; }

  private:
    GpuModel gpu_;
    PerfModel perf_;
};

} // namespace unintt

#endif // UNINTT_BASELINES_ICICLE_LIKE_HH
