/**
 * @file
 * The conventional multi-GPU NTT baseline: the four-step (Bailey)
 * algorithm with data distributed across GPUs and the two transposes
 * realized as all-to-all exchanges. This is the algorithm prior
 * multi-GPU attempts use (it is also how distributed FFT libraries
 * work), and its all-to-all communication is exactly the overhead the
 * UniNTT abstract calls out.
 *
 * Structure for N = N1 * N2 on G GPUs (rows distributed):
 *   1. all-to-all transpose      (columns become local)
 *   2. local size-N1 NTTs        (Icicle-class tile passes)
 *   3. twiddle multiplication    (explicit pass, not fusable here)
 *   4. all-to-all transpose back
 *   5. local size-N2 NTTs
 * Output is in natural order.
 */

#ifndef UNINTT_BASELINES_FOURSTEP_MULTIGPU_HH
#define UNINTT_BASELINES_FOURSTEP_MULTIGPU_HH

#include <string>

#include "field/field_traits.hh"
#include "ntt/fourstep.hh"
#include "ntt/ntt.hh"
#include "sim/memory.hh"
#include "sim/multi_gpu.hh"
#include "sim/perf_model.hh"
#include "sim/report.hh"
#include "unintt/distributed.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

/**
 * Implementation-quality knobs of the four-step baseline. The default
 * ("tuned") gives the strongest defensible baseline: transposes staged
 * through shared-memory tiles (coalesced global access) and local NTTs
 * in grouped Icicle-class passes. The "prior-art" variant reflects the
 * straightforward ports that predate dedicated multi-GPU NTT work:
 * strided (uncoalesced) transpose packing and one kernel per butterfly
 * stage.
 */
struct FourStepOptions
{
    /** Tile the transpose pack/unpack through shared memory. */
    bool tiledTranspose = true;
    /** Group local butterfly stages into shared-memory tile passes. */
    bool groupedLocalPasses = true;

    /** The strongest baseline configuration. */
    static FourStepOptions tuned() { return FourStepOptions{}; }

    /** The straightforward-port configuration. */
    static FourStepOptions
    priorArt()
    {
        return FourStepOptions{false, false};
    }
};

/** Distributed four-step NTT with all-to-all transposes. */
template <NttField F>
class FourStepMultiGpuNtt
{
  public:
    /** Bits per local shared-memory tile pass (as IcicleLikeNtt). */
    static constexpr unsigned kLogTile = 8;

    explicit FourStepMultiGpuNtt(MultiGpuSystem sys,
                                 FourStepOptions opts =
                                     FourStepOptions::tuned())
        : sys_(std::move(sys)), opts_(opts),
          perf_(sys_.gpu, fieldCostOf<F>())
    {
        UNINTT_ASSERT(isPow2(sys_.numGpus), "GPU count must be 2^k");
    }

    /**
     * Forward NTT, natural in, natural out (the four-step transpose
     * sequence restores natural order; note this differs from
     * UniNTT's bit-reversed output convention).
     */
    SimReport
    forward(DistributedVector<F> &data) const
    {
        unsigned logN = log2Exact(data.size());
        SimReport report = analyticRun(logN, NttDirection::Forward);
        runFunctional(data, NttDirection::Forward);
        return report;
    }

    /** Inverse NTT, natural in, natural out, scaled. */
    SimReport
    inverse(DistributedVector<F> &data) const
    {
        unsigned logN = log2Exact(data.size());
        SimReport report = analyticRun(logN, NttDirection::Inverse);
        runFunctional(data, NttDirection::Inverse);
        return report;
    }

    /** Simulated timeline without functional execution. */
    SimReport
    analyticRun(unsigned logN, NttDirection dir, size_t batch = 1) const
    {
        const uint64_t n = 1ULL << logN;
        const unsigned G = sys_.numGpus;
        const uint64_t chunk = n / G;
        const size_t b = sizeof(F);
        const unsigned log_n1 = logN / 2;
        const unsigned log_n2 = logN - log_n1;
        SimReport report;

        // Footprint: data, the all-to-all receive buffer, the pack
        // staging buffer, and the twiddle table (four-step always uses
        // tables).
        {
            DeviceMemoryModel mem(sys_.gpu, G);
            mem.allocAll(chunk * b * batch, "data");
            mem.allocAll(chunk * b * batch, "alltoall-recv");
            mem.allocAll(chunk * b * batch, "pack-staging");
            mem.allocAll(n / 2 * b, "twiddle-table");
            report.setPeakDeviceBytes(mem.maxPeakBytes());
        }

        auto add_transpose = [&](const std::string &name) {
            if (G == 1) {
                // Still a full on-device transpose pass.
                KernelStats k = transposeKernelStats(chunk, batch);
                report.addKernelPhase(name + "-local", k, perf_);
                return;
            }
            // Pack/unpack kernels around the wire exchange.
            KernelStats k = transposeKernelStats(chunk, batch);
            report.addKernelPhase(name + "-pack", k, perf_);
            uint64_t wire = chunk * b * batch * (G - 1) / G;
            CommStats comm{wire, G - 1};
            double t = sys_.fabric.allToAllTime(wire, G);
            report.addCommPhase(name + "-alltoall", t, comm);
        };

        auto add_local_ntt = [&](unsigned bits, const std::string &name) {
            unsigned remaining = bits;
            unsigned idx = 0;
            const unsigned group = opts_.groupedLocalPasses ? kLogTile : 1;
            while (remaining > 0) {
                unsigned pass_bits = std::min(remaining, group);
                KernelStats k;
                k.butterflies = chunk / 2 * pass_bits * batch;
                k.fieldMuls = k.butterflies;
                k.fieldAdds = 2 * k.butterflies;
                k.globalReadBytes = chunk * b * batch;
                k.globalWriteBytes = chunk * b * batch;
                if (opts_.groupedLocalPasses) {
                    // Tile passes: twiddles partially cached, stages
                    // exchanged through shared memory.
                    k.globalReadBytes += k.butterflies * b / 2;
                    k.smemBytes = 2 * chunk * b * pass_bits * batch;
                    k.syncs = (chunk >> pass_bits) * pass_bits * batch;
                } else {
                    // Stage-per-kernel: every twiddle load from DRAM.
                    k.globalReadBytes += k.butterflies * b;
                }
                k.kernelLaunches = 1;
                report.addKernelPhase(
                    name + "-pass-" + std::to_string(idx), k, perf_);
                remaining -= pass_bits;
                ++idx;
            }
        };

        add_transpose("transpose-1");
        add_local_ntt(log_n1, "col-ntt");

        // Explicit inter-step twiddle pass (four-step cannot fuse it:
        // the factors depend on both matrix coordinates).
        {
            KernelStats k;
            k.fieldMuls = chunk * batch;
            k.globalReadBytes = chunk * b * batch;
            k.globalWriteBytes = chunk * b * batch;
            k.kernelLaunches = 1;
            report.addKernelPhase("twiddle-mult", k, perf_);
        }

        add_transpose("transpose-2");
        add_local_ntt(log_n2, "row-ntt");

        if (dir == NttDirection::Inverse) {
            KernelStats k;
            k.fieldMuls = chunk * batch;
            k.globalReadBytes = chunk * b * batch;
            k.globalWriteBytes = chunk * b * batch;
            k.kernelLaunches = 1;
            report.addKernelPhase("inverse-scale", k, perf_);
        }
        return report;
    }

    /** The machine being modeled. */
    const MultiGpuSystem &system() const { return sys_; }

  private:
    /**
     * Transpose pack/unpack kernel. Tiled: coalesced global traffic
     * plus an smem round trip. Untiled: the strided side of the
     * transpose touches one DRAM sector per element.
     */
    KernelStats
    transposeKernelStats(uint64_t chunk, size_t batch) const
    {
        const size_t b = sizeof(F);
        KernelStats k;
        if (opts_.tiledTranspose) {
            k.globalReadBytes = chunk * b * batch;
            k.globalWriteBytes = chunk * b * batch;
            k.smemBytes = 2 * chunk * b * batch;
            k.syncs = chunk / 1024 * batch;
        } else {
            uint64_t amplification =
                std::max<uint64_t>(1, sys_.gpu.dramSectorBytes / b);
            k.globalReadBytes = chunk * b * batch * amplification;
            k.globalWriteBytes = chunk * b * batch;
        }
        k.kernelLaunches = 1;
        return k;
    }

    /** Bit-exact execution via the reference four-step transform. */
    void
    runFunctional(DistributedVector<F> &data, NttDirection dir) const
    {
        auto global = data.toGlobal();
        size_t n1 = 1ULL << (log2Exact(global.size()) / 2);
        auto out = fourStepNtt(global, n1, dir);
        auto redistributed =
            DistributedVector<F>::fromGlobal(out, sys_.numGpus);
        for (unsigned g = 0; g < sys_.numGpus; ++g)
            data.chunk(g) = redistributed.chunk(g);
    }

    MultiGpuSystem sys_;
    FourStepOptions opts_;
    PerfModel perf_;
};

} // namespace unintt

#endif // UNINTT_BASELINES_FOURSTEP_MULTIGPU_HH
