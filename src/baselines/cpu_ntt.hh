/**
 * @file
 * Host-CPU NTT baseline: the reference radix-2 transform timed with the
 * wall clock. Anchors the motivation figure (why provers want GPUs at
 * all) and gives the examples something real to race against.
 */

#ifndef UNINTT_BASELINES_CPU_NTT_HH
#define UNINTT_BASELINES_CPU_NTT_HH

#include <chrono>
#include <vector>

#include "field/field_traits.hh"
#include "ntt/ntt.hh"
#include "ntt/radix2.hh"

namespace unintt {

/** Result of one timed CPU transform. */
struct CpuNttResult
{
    /** Wall-clock seconds of the transform (twiddle setup excluded). */
    double seconds;
};

/**
 * Run one in-place transform on the host and time it.
 * Forward: natural in, bit-reversed out; Inverse: the converse, scaled
 * (matching the engine conventions).
 */
template <NttField F>
CpuNttResult
cpuNtt(std::vector<F> &data, NttDirection dir)
{
    TwiddleTable<F> tw(data.size(), dir);
    auto start = std::chrono::steady_clock::now();
    if (dir == NttDirection::Forward) {
        nttDif(data.data(), data.size(), tw);
    } else {
        nttDit(data.data(), data.size(), tw);
        F scale = inverseScale<F>(data.size());
        for (auto &v : data)
            v *= scale;
    }
    auto stop = std::chrono::steady_clock::now();
    return CpuNttResult{std::chrono::duration<double>(stop - start).count()};
}

} // namespace unintt

#endif // UNINTT_BASELINES_CPU_NTT_HH
