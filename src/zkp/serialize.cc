#include "zkp/serialize.hh"

namespace unintt {

namespace {

/** Refuse absurd counts so corrupt length fields cannot OOM us. */
constexpr uint64_t kMaxVectorLen = 1ULL << 24;

} // namespace

void
ByteWriter::writeU64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteWriter::writeU256(const U256 &v)
{
    for (int i = 0; i < 4; ++i)
        writeU64(v.limb[i]);
}

void
ByteWriter::writeDigest(const Digest &d)
{
    for (const auto &g : d)
        writeGoldilocks(g);
}

std::optional<uint64_t>
ByteReader::readU64()
{
    if (pos_ + 8 > bytes_.size())
        return std::nullopt;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

std::optional<Goldilocks>
ByteReader::readGoldilocks()
{
    auto v = readU64();
    if (!v || *v >= Goldilocks::kModulus)
        return std::nullopt; // non-canonical encodings are rejected
    return Goldilocks::fromU64(*v);
}

std::optional<U256>
ByteReader::readU256()
{
    U256 out;
    for (int i = 0; i < 4; ++i) {
        auto v = readU64();
        if (!v)
            return std::nullopt;
        out.limb[i] = *v;
    }
    return out;
}

std::optional<Digest>
ByteReader::readDigest()
{
    Digest d;
    for (auto &g : d) {
        auto v = readGoldilocks();
        if (!v)
            return std::nullopt;
        g = *v;
    }
    return d;
}

namespace {

void
writeMerklePath(ByteWriter &w, const MerklePath &path)
{
    w.writeU64(path.index);
    w.writeU64(path.siblings.size());
    for (const auto &d : path.siblings)
        w.writeDigest(d);
}

std::optional<MerklePath>
readMerklePath(ByteReader &r)
{
    MerklePath path;
    auto index = r.readU64();
    auto count = r.readU64();
    if (!index || !count || *count > 64)
        return std::nullopt;
    path.index = *index;
    for (uint64_t i = 0; i < *count; ++i) {
        auto d = r.readDigest();
        if (!d)
            return std::nullopt;
        path.siblings.push_back(*d);
    }
    return path;
}

void
writeFriInto(ByteWriter &w, const FriProof &proof)
{
    w.writeU64(proof.logDegreeBound);
    w.writeU64(proof.roots.size());
    for (const auto &root : proof.roots)
        w.writeDigest(root);
    w.writeU64(proof.finalPoly.size());
    for (const auto &c : proof.finalPoly)
        w.writeGoldilocks(c);
    w.writeU64(proof.queries.size());
    for (const auto &q : proof.queries) {
        w.writeU64(q.rounds.size());
        for (const auto &round : q.rounds) {
            w.writeGoldilocks(round.lo);
            w.writeGoldilocks(round.hi);
            writeMerklePath(w, round.loPath);
            writeMerklePath(w, round.hiPath);
        }
    }
}

std::optional<FriProof>
readFriFrom(ByteReader &r)
{
    FriProof proof;
    auto bound = r.readU64();
    if (!bound || *bound > 40)
        return std::nullopt;
    proof.logDegreeBound = static_cast<unsigned>(*bound);

    auto nroots = r.readU64();
    if (!nroots || *nroots > 64)
        return std::nullopt;
    for (uint64_t i = 0; i < *nroots; ++i) {
        auto d = r.readDigest();
        if (!d)
            return std::nullopt;
        proof.roots.push_back(*d);
    }

    auto nfinal = r.readU64();
    if (!nfinal || *nfinal > kMaxVectorLen)
        return std::nullopt;
    for (uint64_t i = 0; i < *nfinal; ++i) {
        auto c = r.readGoldilocks();
        if (!c)
            return std::nullopt;
        proof.finalPoly.push_back(*c);
    }

    auto nqueries = r.readU64();
    if (!nqueries || *nqueries > 4096)
        return std::nullopt;
    for (uint64_t q = 0; q < *nqueries; ++q) {
        auto nrounds = r.readU64();
        if (!nrounds || *nrounds > 64)
            return std::nullopt;
        FriQuery query;
        for (uint64_t i = 0; i < *nrounds; ++i) {
            FriQueryRound round;
            auto lo = r.readGoldilocks();
            auto hi = r.readGoldilocks();
            if (!lo || !hi)
                return std::nullopt;
            round.lo = *lo;
            round.hi = *hi;
            auto lo_path = readMerklePath(r);
            auto hi_path = readMerklePath(r);
            if (!lo_path || !hi_path)
                return std::nullopt;
            round.loPath = *lo_path;
            round.hiPath = *hi_path;
            query.rounds.push_back(std::move(round));
        }
        proof.queries.push_back(std::move(query));
    }
    return proof;
}

} // namespace

void
writeFriProof(ByteWriter &w, const FriProof &proof)
{
    writeFriInto(w, proof);
}

std::optional<FriProof>
readFriProof(ByteReader &r)
{
    return readFriFrom(r);
}

std::vector<uint8_t>
serializeFriProof(const FriProof &proof)
{
    ByteWriter w;
    writeFriInto(w, proof);
    return w.bytes();
}

std::optional<FriProof>
deserializeFriProof(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    auto proof = readFriFrom(r);
    if (!proof || !r.exhausted())
        return std::nullopt;
    return proof;
}

std::vector<uint8_t>
serializeStarkProof(const StarkProof &proof)
{
    ByteWriter w;
    w.writeU64(proof.logTrace);
    w.writeGoldilocks(proof.publicStart);
    writeFriInto(w, proof.traceFri);
    writeFriInto(w, proof.quotientFri);
    writeFriInto(w, proof.boundaryFri);
    w.writeU64(proof.queries.size());
    for (const auto &q : proof.queries) {
        w.writeGoldilocks(q.traceCur);
        w.writeGoldilocks(q.traceNext);
        w.writeGoldilocks(q.quotient);
        w.writeGoldilocks(q.boundary);
        writeMerklePath(w, q.traceCurPath);
        writeMerklePath(w, q.traceNextPath);
        writeMerklePath(w, q.quotientPath);
        writeMerklePath(w, q.boundaryPath);
    }
    return w.bytes();
}

std::optional<StarkProof>
deserializeStarkProof(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    StarkProof proof;
    auto log_trace = r.readU64();
    auto start = r.readGoldilocks();
    if (!log_trace || *log_trace > 40 || !start)
        return std::nullopt;
    proof.logTrace = static_cast<unsigned>(*log_trace);
    proof.publicStart = *start;

    auto trace = readFriFrom(r);
    auto quotient = readFriFrom(r);
    auto boundary = readFriFrom(r);
    if (!trace || !quotient || !boundary)
        return std::nullopt;
    proof.traceFri = std::move(*trace);
    proof.quotientFri = std::move(*quotient);
    proof.boundaryFri = std::move(*boundary);

    auto nqueries = r.readU64();
    if (!nqueries || *nqueries > 4096)
        return std::nullopt;
    for (uint64_t i = 0; i < *nqueries; ++i) {
        StarkQuery q;
        auto a = r.readGoldilocks();
        auto b = r.readGoldilocks();
        auto c = r.readGoldilocks();
        auto d = r.readGoldilocks();
        if (!a || !b || !c || !d)
            return std::nullopt;
        q.traceCur = *a;
        q.traceNext = *b;
        q.quotient = *c;
        q.boundary = *d;
        auto p1 = readMerklePath(r);
        auto p2 = readMerklePath(r);
        auto p3 = readMerklePath(r);
        auto p4 = readMerklePath(r);
        if (!p1 || !p2 || !p3 || !p4)
            return std::nullopt;
        q.traceCurPath = *p1;
        q.traceNextPath = *p2;
        q.quotientPath = *p3;
        q.boundaryPath = *p4;
        proof.queries.push_back(std::move(q));
    }
    if (!r.exhausted())
        return std::nullopt;
    return proof;
}

} // namespace unintt

namespace unintt {

namespace {

/** Affine G1 point: x, y as canonical U256 (0,0 = infinity). */
void
writeG1(ByteWriter &w, const G1Jacobian &p)
{
    auto a = p.toAffine();
    w.writeU256(a.x.value());
    w.writeU256(a.y.value());
}

std::optional<G1Jacobian>
readG1(ByteReader &r)
{
    auto x = r.readU256();
    auto y = r.readU256();
    if (!x || !y)
        return std::nullopt;
    if (geq(*x, Bn254FqParams::kModulus) ||
        geq(*y, Bn254FqParams::kModulus))
        return std::nullopt; // non-canonical coordinates
    G1Affine affine{Bn254Fq::fromU256(*x), Bn254Fq::fromU256(*y)};
    if (!affine.isOnCurve())
        return std::nullopt; // off-curve points are rejected outright
    return G1Jacobian::fromAffine(affine);
}

std::optional<Bn254Fr>
readFr(ByteReader &r)
{
    auto v = r.readU256();
    if (!v || geq(*v, Bn254FrParams::kModulus))
        return std::nullopt;
    return Bn254Fr::fromU256(*v);
}

} // namespace

std::vector<uint8_t>
serializeAirProof(const AirProof &proof)
{
    ByteWriter w;
    w.writeU64(proof.logTrace);
    w.writeU64(proof.boundaries.size());
    for (const auto &b : proof.boundaries) {
        w.writeU64(b.column);
        w.writeGoldilocks(b.value);
    }
    w.writeU64(proof.columnFris.size());
    for (const auto &f : proof.columnFris)
        writeFriInto(w, f);
    writeFriInto(w, proof.quotientFri);
    writeFriInto(w, proof.boundaryFri);
    w.writeU64(proof.queries.size());
    for (const auto &q : proof.queries) {
        w.writeU64(q.cur.size());
        for (size_t c = 0; c < q.cur.size(); ++c) {
            w.writeGoldilocks(q.cur[c]);
            w.writeGoldilocks(q.next[c]);
            writeMerklePath(w, q.curPaths[c]);
            writeMerklePath(w, q.nextPaths[c]);
        }
        w.writeGoldilocks(q.quotient);
        w.writeGoldilocks(q.boundary);
        writeMerklePath(w, q.quotientPath);
        writeMerklePath(w, q.boundaryPath);
    }
    return w.bytes();
}

std::optional<AirProof>
deserializeAirProof(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    AirProof proof;
    auto log_trace = r.readU64();
    if (!log_trace || *log_trace > 40)
        return std::nullopt;
    proof.logTrace = static_cast<unsigned>(*log_trace);

    auto nbound = r.readU64();
    if (!nbound || *nbound > 1024)
        return std::nullopt;
    for (uint64_t i = 0; i < *nbound; ++i) {
        auto col = r.readU64();
        auto val = r.readGoldilocks();
        if (!col || *col > 1024 || !val)
            return std::nullopt;
        proof.boundaries.push_back(
            Air::Boundary{static_cast<unsigned>(*col), *val});
    }

    auto ncols = r.readU64();
    if (!ncols || *ncols == 0 || *ncols > 1024)
        return std::nullopt;
    for (uint64_t c = 0; c < *ncols; ++c) {
        auto f = readFriFrom(r);
        if (!f)
            return std::nullopt;
        proof.columnFris.push_back(std::move(*f));
    }
    auto quotient = readFriFrom(r);
    auto boundary = readFriFrom(r);
    if (!quotient || !boundary)
        return std::nullopt;
    proof.quotientFri = std::move(*quotient);
    proof.boundaryFri = std::move(*boundary);

    auto nqueries = r.readU64();
    if (!nqueries || *nqueries > 4096)
        return std::nullopt;
    for (uint64_t i = 0; i < *nqueries; ++i) {
        AirProof::Query q;
        auto width = r.readU64();
        if (!width || *width != *ncols)
            return std::nullopt;
        for (uint64_t c = 0; c < *width; ++c) {
            auto cur = r.readGoldilocks();
            auto next = r.readGoldilocks();
            if (!cur || !next)
                return std::nullopt;
            q.cur.push_back(*cur);
            q.next.push_back(*next);
            auto p1 = readMerklePath(r);
            auto p2 = readMerklePath(r);
            if (!p1 || !p2)
                return std::nullopt;
            q.curPaths.push_back(std::move(*p1));
            q.nextPaths.push_back(std::move(*p2));
        }
        auto quot = r.readGoldilocks();
        auto bound = r.readGoldilocks();
        if (!quot || !bound)
            return std::nullopt;
        q.quotient = *quot;
        q.boundary = *bound;
        auto p3 = readMerklePath(r);
        auto p4 = readMerklePath(r);
        if (!p3 || !p4)
            return std::nullopt;
        q.quotientPath = std::move(*p3);
        q.boundaryPath = std::move(*p4);
        proof.queries.push_back(std::move(q));
    }
    if (!r.exhausted())
        return std::nullopt;
    return proof;
}

std::vector<uint8_t>
serializeQapProof(const QapProof &proof)
{
    ByteWriter w;
    for (const auto *commit : {&proof.commitA, &proof.commitB,
                               &proof.commitC, &proof.commitH})
        writeG1(w, *commit);
    for (const auto *open : {&proof.openA, &proof.openB, &proof.openC,
                             &proof.openH}) {
        w.writeU256(open->value.value());
        writeG1(w, open->witness);
    }
    return w.bytes();
}

std::optional<QapProof>
deserializeQapProof(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    QapProof proof;
    for (auto *commit : {&proof.commitA, &proof.commitB, &proof.commitC,
                         &proof.commitH}) {
        auto p = readG1(r);
        if (!p)
            return std::nullopt;
        *commit = *p;
    }
    for (auto *open : {&proof.openA, &proof.openB, &proof.openC,
                       &proof.openH}) {
        auto v = readFr(r);
        auto p = readG1(r);
        if (!v || !p)
            return std::nullopt;
        open->value = *v;
        open->witness = *p;
    }
    if (!r.exhausted())
        return std::nullopt;
    return proof;
}

} // namespace unintt
