#include "zkp/commitment.hh"

#include "util/logging.hh"
#include "util/random.hh"

namespace unintt {

KzgCommitter::KzgCommitter(size_t max_terms, uint64_t seed)
{
    UNINTT_ASSERT(max_terms > 0, "empty setup");
    // Derive the secret from the seed; 256 bits of entropy.
    Rng rng(seed);
    secret_ = Bn254Fr::fromU64(rng.next()) +
              Bn254Fr::fromU64(rng.next()) *
                  Bn254Fr::fromU64(rng.next() | 1);

    // Power basis G_i = s^i * G.
    basis_.reserve(max_terms);
    G1Jacobian g = G1Jacobian::generator();
    Bn254Fr power = Bn254Fr::one();
    for (size_t i = 0; i < max_terms; ++i) {
        basis_.push_back(g.scalarMul(power.value()).toAffine());
        power *= secret_;
    }
}

G1Jacobian
KzgCommitter::commit(const Polynomial<Bn254Fr> &p) const
{
    const auto &coeffs = p.coeffs();
    UNINTT_ASSERT(coeffs.size() <= basis_.size(),
                  "polynomial exceeds the setup size");
    std::vector<G1Affine> points(basis_.begin(),
                                 basis_.begin() + coeffs.size());
    std::vector<U256> scalars;
    scalars.reserve(coeffs.size());
    for (const auto &c : coeffs)
        scalars.push_back(c.value());
    return pippengerMsm(points, scalars);
}

Polynomial<Bn254Fr>
KzgCommitter::divideByLinear(const Polynomial<Bn254Fr> &p, Bn254Fr z)
{
    const auto &c = p.coeffs();
    if (c.size() <= 1)
        return Polynomial<Bn254Fr>(); // constant: quotient is zero
    // Synthetic division: q_i = c_{i+1} + z * q_{i+1}, top down.
    std::vector<Bn254Fr> q(c.size() - 1);
    Bn254Fr carry = Bn254Fr::zero();
    for (size_t i = c.size() - 1; i >= 1; --i) {
        carry = c[i] + z * carry;
        q[i - 1] = carry;
    }
    return Polynomial<Bn254Fr>(std::move(q));
}

OpeningProof
KzgCommitter::open(const Polynomial<Bn254Fr> &p, Bn254Fr z) const
{
    OpeningProof proof;
    proof.value = p.evaluate(z);
    proof.witness = commit(divideByLinear(p, z));
    return proof;
}

bool
KzgCommitter::verify(const G1Jacobian &commitment, Bn254Fr z,
                     const OpeningProof &proof) const
{
    // Check p(s) - y == (s - z) * q(s) in the exponent.
    G1Jacobian lhs = commitment.add(
        G1Jacobian::generator().scalarMul(proof.value.value()).neg());
    G1Jacobian rhs = proof.witness.scalarMul((secret_ - z).value());
    return lhs == rhs;
}

} // namespace unintt
