/**
 * @file
 * The sumcheck protocol for multilinear polynomials over Goldilocks —
 * the interactive-proof workhorse of hash-based ZKP systems (and the
 * companion primitive to NTT/MSM in modern provers). The prover
 * convinces the verifier that sum over the Boolean hypercube of a
 * multilinear polynomial f equals a claimed value, in m rounds of
 * degree-1 univariate messages, made non-interactive with the
 * Fiat-Shamir transcript.
 *
 * The final step of sumcheck reduces the claim to one evaluation
 * f(r_1, ..., r_m); the verifier obtains that value through an oracle
 * callback (a commitment opening in a deployed system, the evaluation
 * table in tests).
 */

#ifndef UNINTT_ZKP_SUMCHECK_HH
#define UNINTT_ZKP_SUMCHECK_HH

#include <functional>
#include <vector>

#include "field/goldilocks.hh"
#include "zkp/transcript.hh"

namespace unintt {

/** One sumcheck round message: the degree-1 polynomial g(0), g(1). */
struct SumcheckRound
{
    Goldilocks at0;
    Goldilocks at1;
};

/** A complete sumcheck transcript. */
struct SumcheckProof
{
    /** The claimed hypercube sum. */
    Goldilocks claimedSum;
    /** One message per variable. */
    std::vector<SumcheckRound> rounds;
};

/**
 * Multilinear extension evaluation: given the table of f on the
 * hypercube (index bit i = variable i), evaluate the extension at an
 * arbitrary point, in O(2^m).
 */
Goldilocks multilinearEval(const std::vector<Goldilocks> &table,
                           const std::vector<Goldilocks> &point);

/** Sum of the table (the statement being proven). */
Goldilocks hypercubeSum(const std::vector<Goldilocks> &table);

/**
 * Run the sumcheck prover over @p table (size 2^m).
 * @param transcript Fiat-Shamir transcript shared with the verifier.
 */
SumcheckProof sumcheckProve(std::vector<Goldilocks> table,
                            Transcript &transcript);

/**
 * Verify a sumcheck proof.
 *
 * @param proof       the prover's messages.
 * @param num_vars    m, the hypercube dimension.
 * @param transcript  a transcript in the same state the prover's was.
 * @param oracle      evaluates f at the final random point.
 * @return true iff every round is consistent and the final claim
 *         matches the oracle.
 */
bool sumcheckVerify(
    const SumcheckProof &proof, unsigned num_vars, Transcript &transcript,
    const std::function<Goldilocks(const std::vector<Goldilocks> &)>
        &oracle);

} // namespace unintt

#endif // UNINTT_ZKP_SUMCHECK_HH
