/**
 * @file
 * A generic STARK engine over algebraic intermediate representations
 * (AIRs): multi-column traces, arbitrary transition constraints
 * between consecutive rows, and first-row boundary constraints. This
 * generalizes the single-column SquareStark (zkp/stark.hh, kept as the
 * pedagogical special case) with the standard composition trick:
 * after the trace columns are committed, the verifier's random
 * coefficients combine all transition constraints into ONE quotient
 * polynomial and all boundary constraints into one boundary quotient,
 * so the proof size is independent of the constraint count.
 *
 *   Q(x) = [sum_i alpha_i C_i(row(x), row(gx))] (x - g^(n-1)) / Z_H(x)
 *   B(x) = [sum_j beta_j (T_cj(x) - v_j)] / (x - 1)
 *
 * Same scope caveats as zkp/stark.hh (no ZK blinding, no DEEP, toy
 * sponge).
 */

#ifndef UNINTT_ZKP_AIR_HH
#define UNINTT_ZKP_AIR_HH

#include <functional>
#include <string>
#include <vector>

#include "field/goldilocks.hh"
#include "zkp/fri.hh"

namespace unintt {

/** An algebraic intermediate representation. */
struct Air
{
    /** Constraint: must vanish on (row_i, row_{i+1}) for i < n-1. */
    using Transition = std::function<Goldilocks(
        const std::vector<Goldilocks> &cur,
        const std::vector<Goldilocks> &next)>;

    /** Pin trace column @p column to @p value at the first row. */
    struct Boundary
    {
        unsigned column;
        Goldilocks value;
    };

    /** Protocol label (domain separation between different AIRs). */
    std::string name;
    /** Trace width. */
    unsigned columns = 1;
    /** Max total degree of any transition in the trace values. */
    unsigned constraintDegree = 2;
    std::vector<Transition> transitions;
    std::vector<Boundary> boundaries;
};

/** A proof of correct execution of an AIR. */
struct AirProof
{
    unsigned logTrace = 0;
    /** Boundary values are public inputs; echoed in the proof. */
    std::vector<Air::Boundary> boundaries;
    /** One commitment per trace column. */
    std::vector<FriProof> columnFris;
    FriProof quotientFri;
    FriProof boundaryFri;

    /** One spot check: all columns at x and g*x, plus Q and B at x. */
    struct Query
    {
        std::vector<Goldilocks> cur;  ///< column values at x
        std::vector<Goldilocks> next; ///< column values at g*x
        Goldilocks quotient;
        Goldilocks boundary;
        std::vector<MerklePath> curPaths;
        std::vector<MerklePath> nextPaths;
        MerklePath quotientPath;
        MerklePath boundaryPath;
    };
    std::vector<Query> queries;
};

/** Prover/verifier engine for a fixed AIR. */
class AirStark
{
  public:
    /** Parameters shared with the simple STARK. */
    struct Params
    {
        unsigned logBlowup = 2;
        unsigned numQueries = 24;
        unsigned friFinalTerms = 8;
    };

    /** Engine with default parameters. */
    explicit AirStark(Air air);

    AirStark(Air air, Params params);

    /**
     * Prove that @p trace (columns-major: trace[c][i] is column c,
     * row i; all columns 2^log_trace rows) satisfies the AIR. Fatal if
     * it does not.
     */
    AirProof prove(const std::vector<std::vector<Goldilocks>> &trace) const;

    /** Verify a proof against this AIR. */
    bool verify(const AirProof &proof) const;

    /** True iff the trace satisfies every constraint (prover check). */
    bool traceSatisfies(
        const std::vector<std::vector<Goldilocks>> &trace) const;

    const Air &air() const { return air_; }

  private:
    Air air_;
    Params params_;
};

/** The Fibonacci AIR: columns (a, b), step (a,b) -> (b, a+b). */
Air fibonacciAir(Goldilocks a0, Goldilocks b0);

/** Honest Fibonacci trace of 2^log_rows rows. */
std::vector<std::vector<Goldilocks>> fibonacciTrace(Goldilocks a0,
                                                    Goldilocks b0,
                                                    unsigned log_rows);

} // namespace unintt

#endif // UNINTT_ZKP_AIR_HH
