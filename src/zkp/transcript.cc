#include "zkp/transcript.hh"

namespace unintt {

namespace {

/** Deterministic round constants via splitmix64 expansion. */
Goldilocks
roundConstant(unsigned round, unsigned lane)
{
    uint64_t x = 0x5bd1e995u + static_cast<uint64_t>(round) * 131 + lane;
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Goldilocks::fromU64(z ^ (z >> 31));
}

/** x^7, a bijection on Goldilocks (gcd(7, p-1) = 1). */
Goldilocks
sbox(Goldilocks x)
{
    Goldilocks x2 = x * x;
    Goldilocks x4 = x2 * x2;
    return x4 * x2 * x;
}

} // namespace

void
Transcript::permute(std::array<Goldilocks, kWidth> &state)
{
    // Circulant diffusion coefficients (dense, invertible; see header
    // for the security caveat).
    static const uint64_t kCirculant[kWidth] = {7,  23, 8,  26, 13, 10,
                                                9,  3,  16, 2,  12, 5};
    for (unsigned r = 0; r < kRounds; ++r) {
        // Add round constants, then the S-box layer.
        for (unsigned i = 0; i < kWidth; ++i)
            state[i] = sbox(state[i] + roundConstant(r, i));
        // Circulant matrix-vector product.
        std::array<Goldilocks, kWidth> mixed{};
        for (unsigned i = 0; i < kWidth; ++i) {
            Goldilocks acc;
            for (unsigned j = 0; j < kWidth; ++j) {
                acc += Goldilocks::fromU64(
                           kCirculant[(j + kWidth - i) % kWidth]) *
                       state[j];
            }
            mixed[i] = acc;
        }
        state = mixed;
    }
}

Transcript::Transcript(const std::string &domain)
{
    absorbLabel("unintt-transcript-v1");
    absorbLabel(domain);
}

void
Transcript::absorbLabel(const std::string &label)
{
    // Length-prefixed so distinct label sequences cannot collide.
    absorbU64(label.size());
    uint64_t word = 0;
    unsigned filled = 0;
    for (char c : label) {
        word |= static_cast<uint64_t>(static_cast<unsigned char>(c))
                << (8 * filled);
        if (++filled == 8) {
            absorbU64(word);
            word = 0;
            filled = 0;
        }
    }
    if (filled)
        absorbU64(word);
}

void
Transcript::absorbU64(uint64_t x)
{
    // Split into two 32-bit halves so every word embeds injectively
    // into the field (p > 2^63 would also work, but this is simplest
    // to reason about).
    absorbElement(Goldilocks::fromU64(x & 0xffffffffULL));
    absorbElement(Goldilocks::fromU64(x >> 32));
}

void
Transcript::absorbU256(const U256 &x)
{
    for (int i = 0; i < 4; ++i)
        absorbU64(x.limb[i]);
}

void
Transcript::absorbElement(Goldilocks x)
{
    if (squeezing_) {
        // Interleaving absorb into a squeeze phase re-keys the sponge.
        squeezing_ = false;
        position_ = 0;
    }
    state_[position_] += x;
    if (++position_ == kRate) {
        permute(state_);
        position_ = 0;
    }
}

void
Transcript::ensureSqueezing()
{
    if (!squeezing_) {
        // Pad: domain-separate the phase switch, then permute.
        state_[position_] += Goldilocks::one();
        permute(state_);
        squeezing_ = true;
        position_ = 0;
    }
}

uint64_t
Transcript::challengeU64()
{
    ensureSqueezing();
    if (position_ == kRate) {
        permute(state_);
        position_ = 0;
    }
    return state_[position_++].value();
}

Goldilocks
Transcript::challengeGoldilocks()
{
    return Goldilocks::fromU64(challengeU64());
}

Bn254Fr
Transcript::challengeFr()
{
    // 253 bits < r, so the masked value embeds directly.
    U256 v(challengeU64(), challengeU64(), challengeU64(),
           challengeU64() >> 3);
    return Bn254Fr::fromU256(v);
}

} // namespace unintt
