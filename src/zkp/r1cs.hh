/**
 * @file
 * Rank-1 constraint systems — the circuit format Groth16-style provers
 * consume. A constraint is (a . w)(b . w) = (c . w) for sparse linear
 * combinations a, b, c over the witness vector w (w[0] is the constant
 * 1). Includes a tiny builder API for assembling circuits in tests and
 * examples.
 */

#ifndef UNINTT_ZKP_R1CS_HH
#define UNINTT_ZKP_R1CS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "field/field_traits.hh"
#include "util/logging.hh"

namespace unintt {

/** A sparse linear combination sum_i coeff_i * w[var_i]. */
template <NttField F>
struct LinearCombination
{
    std::vector<std::pair<size_t, F>> terms;

    /** Add coeff * w[var]. */
    LinearCombination &
    add(size_t var, F coeff)
    {
        terms.emplace_back(var, coeff);
        return *this;
    }

    /** Single-variable combination 1 * w[var]. */
    static LinearCombination
    of(size_t var)
    {
        LinearCombination lc;
        lc.add(var, F::one());
        return lc;
    }

    /** Constant combination k * w[0]. */
    static LinearCombination
    constant(F k)
    {
        LinearCombination lc;
        lc.add(0, k);
        return lc;
    }

    /** Evaluate against a witness vector. */
    F
    evaluate(const std::vector<F> &witness) const
    {
        F acc = F::zero();
        for (const auto &[var, coeff] : terms) {
            UNINTT_ASSERT(var < witness.size(), "variable out of range");
            acc += coeff * witness[var];
        }
        return acc;
    }
};

/** One rank-1 constraint (a . w)(b . w) = (c . w). */
template <NttField F>
struct R1csConstraint
{
    LinearCombination<F> a;
    LinearCombination<F> b;
    LinearCombination<F> c;
};

/** A rank-1 constraint system plus a variable allocator. */
template <NttField F>
class R1cs
{
  public:
    /** Creates the system with w[0] = 1 already allocated. */
    R1cs() : numVars_(1) {}

    /** Allocate a fresh variable; returns its index. */
    size_t allocVar() { return numVars_++; }

    /** Number of variables including the constant. */
    size_t numVars() const { return numVars_; }

    /** Append a constraint. */
    void
    addConstraint(LinearCombination<F> a, LinearCombination<F> b,
                  LinearCombination<F> c)
    {
        constraints_.push_back(R1csConstraint<F>{std::move(a),
                                                 std::move(b),
                                                 std::move(c)});
    }

    /** Convenience: enforce w[x] * w[y] = w[out]. */
    void
    addMulGate(size_t x, size_t y, size_t out)
    {
        addConstraint(LinearCombination<F>::of(x),
                      LinearCombination<F>::of(y),
                      LinearCombination<F>::of(out));
    }

    /** Convenience: enforce w[x] + w[y] = w[out]. */
    void
    addAddGate(size_t x, size_t y, size_t out)
    {
        LinearCombination<F> sum;
        sum.add(x, F::one()).add(y, F::one());
        addConstraint(sum, LinearCombination<F>::constant(F::one()),
                      LinearCombination<F>::of(out));
    }

    /** Convenience: pin w[x] to the constant k. */
    void
    addConstantConstraint(size_t x, F k)
    {
        addConstraint(LinearCombination<F>::of(x),
                      LinearCombination<F>::constant(F::one()),
                      LinearCombination<F>::constant(k));
    }

    /** The constraints. */
    const std::vector<R1csConstraint<F>> &
    constraints() const
    {
        return constraints_;
    }

    /** True iff @p witness satisfies every constraint. */
    bool
    isSatisfied(const std::vector<F> &witness) const
    {
        if (witness.size() != numVars_ || witness.empty() ||
            !(witness[0] == F::one()))
            return false;
        for (const auto &cons : constraints_) {
            if (!(cons.a.evaluate(witness) * cons.b.evaluate(witness) ==
                  cons.c.evaluate(witness)))
                return false;
        }
        return true;
    }

  private:
    size_t numVars_;
    std::vector<R1csConstraint<F>> constraints_;
};

/**
 * The classic toy circuit: prove knowledge of x with
 * x^3 + x + 5 == out. Returns the system; @p x_var and @p out_var
 * receive the variable indices for witness construction.
 */
template <NttField F>
R1cs<F>
cubicDemoCircuit(size_t &x_var, size_t &out_var)
{
    R1cs<F> cs;
    x_var = cs.allocVar();           // x
    size_t x2 = cs.allocVar();       // x^2
    size_t x3 = cs.allocVar();       // x^3
    size_t x3_x = cs.allocVar();     // x^3 + x
    out_var = cs.allocVar();         // x^3 + x + 5

    cs.addMulGate(x_var, x_var, x2);
    cs.addMulGate(x2, x_var, x3);
    cs.addAddGate(x3, x_var, x3_x);
    LinearCombination<F> plus5;
    plus5.add(x3_x, F::one()).add(0, F::fromU64(5));
    cs.addConstraint(plus5, LinearCombination<F>::constant(F::one()),
                     LinearCombination<F>::of(out_var));
    return cs;
}

/** Witness for cubicDemoCircuit given x. */
template <NttField F>
std::vector<F>
cubicDemoWitness(F x)
{
    F x2 = x * x;
    F x3 = x2 * x;
    F x3_x = x3 + x;
    return {F::one(), x, x2, x3, x3_x, x3_x + F::fromU64(5)};
}

} // namespace unintt

#endif // UNINTT_ZKP_R1CS_HH
