#include "zkp/checkpoint.hh"

#include "util/checksum.hh"
#include "zkp/serialize.hh"

namespace unintt {

namespace {

/** Bound on checkpointed vector lengths (matches serialize.cc). */
constexpr uint64_t kMaxCheckpointLen = 1ULL << 24;

} // namespace

uint64_t
CheckpointStore::sealOf(unsigned stage, const std::string &key,
                        const std::vector<uint8_t> &payload)
{
    // Position-salted: the payload checksum is mixed with the stage
    // index and the key's own checksum, so a payload replayed under a
    // different stage or key fails validation even though its bytes
    // are intact.
    uint64_t h = checksumBytes(payload.data(), payload.size());
    h = mix64(h ^ mix64(stage + 1));
    h = mix64(h ^ checksumBytes(key.data(), key.size()));
    return h;
}

void
CheckpointStore::put(unsigned stage, const std::string &key,
                     std::vector<uint8_t> payload)
{
    Entry e;
    e.stage = stage;
    e.seal = sealOf(stage, key, payload);
    stats_.puts++;
    stats_.bytesWritten += payload.size();
    e.payload = std::move(payload);
    entries_[key] = std::move(e);
}

std::optional<std::vector<uint8_t>>
CheckpointStore::get(unsigned stage, const std::string &key)
{
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        stats_.misses++;
        return std::nullopt;
    }
    const Entry &e = it->second;
    if (e.stage != stage || e.seal != sealOf(stage, key, e.payload)) {
        stats_.checksumFailures++;
        return std::nullopt;
    }
    stats_.hits++;
    return e.payload;
}

bool
CheckpointStore::has(const std::string &key) const
{
    return entries_.count(key) != 0;
}

void
CheckpointStore::erase(const std::string &key)
{
    entries_.erase(key);
}

void
CheckpointStore::erasePrefix(const std::string &prefix)
{
    for (auto it = entries_.lower_bound(prefix);
         it != entries_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;) {
        it = entries_.erase(it);
    }
}

void
CheckpointStore::clear()
{
    entries_.clear();
}

uint64_t
CheckpointStore::payloadBytes() const
{
    uint64_t total = 0;
    for (const auto &kv : entries_)
        total += kv.second.payload.size();
    return total;
}

std::vector<std::string>
CheckpointStore::keys() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &kv : entries_)
        out.push_back(kv.first);
    return out;
}

bool
CheckpointStore::corrupt(const std::string &key, size_t offset,
                         uint8_t mask)
{
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.payload.empty() || mask == 0)
        return false;
    it->second.payload[offset % it->second.payload.size()] ^= mask;
    return true;
}

StoreRoundCheckpointer::StoreRoundCheckpointer(CheckpointStore &store,
                                               unsigned stage,
                                               std::string prefix,
                                               FriRoundGate gate)
    : store_(store), stage_(stage), prefix_(std::move(prefix)),
      gate_(std::move(gate))
{
}

std::string
StoreRoundCheckpointer::roundKey(unsigned round) const
{
    return prefix_ + "/round-" + std::to_string(round);
}

std::optional<std::vector<Goldilocks>>
StoreRoundCheckpointer::loadRound(unsigned round)
{
    auto bytes = store_.get(stage_, roundKey(round));
    if (!bytes)
        return std::nullopt;
    ByteReader r(*bytes);
    auto cw = readFieldVector(r, kMaxCheckpointLen);
    if (!cw || !r.exhausted())
        return std::nullopt;
    return cw;
}

void
StoreRoundCheckpointer::saveRound(unsigned round,
                                  const std::vector<Goldilocks> &codeword)
{
    ByteWriter w;
    writeFieldVector(w, codeword);
    store_.put(stage_, roundKey(round), w.bytes());
}

Status
StoreRoundCheckpointer::roundGate(unsigned round)
{
    if (gate_)
        return gate_(prefix_, round);
    return Status();
}

void
StoreRoundCheckpointer::dropRounds()
{
    store_.erasePrefix(prefix_ + "/round-");
}

void
writeFieldVector(ByteWriter &w, const std::vector<Goldilocks> &v)
{
    w.writeU64(v.size());
    for (const auto &x : v)
        w.writeGoldilocks(x);
}

std::optional<std::vector<Goldilocks>>
readFieldVector(ByteReader &r, uint64_t max_len)
{
    auto n = r.readU64();
    if (!n || *n > max_len)
        return std::nullopt;
    std::vector<Goldilocks> out;
    out.reserve(*n);
    for (uint64_t i = 0; i < *n; ++i) {
        auto x = r.readGoldilocks();
        if (!x)
            return std::nullopt;
        out.push_back(*x);
    }
    return out;
}

} // namespace unintt
