#include "zkp/air.hh"

#include "field/field_traits.hh"
#include "ntt/radix2.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

namespace {

using F = Goldilocks;

F
ldeShift()
{
    return F::multiplicativeGenerator();
}

std::vector<F>
cosetInterpolate(std::vector<F> codeword, F shift)
{
    nttInverseInPlace(codeword);
    F shift_inv = shift.inverse();
    F power = F::one();
    for (auto &v : codeword) {
        v *= power;
        power *= shift_inv;
    }
    return codeword;
}

/** Truncate to n coefficients, asserting the tail vanished. */
std::vector<F>
truncateExact(std::vector<F> coeffs, size_t n, const char *what)
{
    for (size_t i = n; i < coeffs.size(); ++i) {
        if (!coeffs[i].isZero())
            fatal("%s exceeds its degree bound (trace invalid?)", what);
    }
    coeffs.resize(n);
    return coeffs;
}

} // namespace

Air
fibonacciAir(F a0, F b0)
{
    Air air;
    air.name = "fibonacci";
    air.columns = 2;
    air.constraintDegree = 1;
    air.transitions = {
        [](const std::vector<F> &cur, const std::vector<F> &next) {
            return next[0] - cur[1]; // a' = b
        },
        [](const std::vector<F> &cur, const std::vector<F> &next) {
            return next[1] - cur[0] - cur[1]; // b' = a + b
        },
    };
    air.boundaries = {{0, a0}, {1, b0}};
    return air;
}

std::vector<std::vector<F>>
fibonacciTrace(F a0, F b0, unsigned log_rows)
{
    size_t n = 1ULL << log_rows;
    std::vector<std::vector<F>> trace(2, std::vector<F>(n));
    trace[0][0] = a0;
    trace[1][0] = b0;
    for (size_t i = 1; i < n; ++i) {
        trace[0][i] = trace[1][i - 1];
        trace[1][i] = trace[0][i - 1] + trace[1][i - 1];
    }
    return trace;
}

AirStark::AirStark(Air air) : AirStark(std::move(air), Params{}) {}

AirStark::AirStark(Air air, Params params)
    : air_(std::move(air)), params_(params)
{
    UNINTT_ASSERT(air_.columns >= 1 && !air_.transitions.empty(),
                  "AIR needs at least one column and one transition");
    UNINTT_ASSERT((1u << params_.logBlowup) > air_.constraintDegree,
                  "blowup must exceed the constraint degree");
}

bool
AirStark::traceSatisfies(const std::vector<std::vector<F>> &trace) const
{
    if (trace.size() != air_.columns || trace.empty())
        return false;
    size_t n = trace[0].size();
    for (const auto &col : trace)
        if (col.size() != n)
            return false;
    for (const auto &b : air_.boundaries)
        if (b.column >= air_.columns || !(trace[b.column][0] == b.value))
            return false;

    std::vector<F> cur(air_.columns), next(air_.columns);
    for (size_t i = 0; i + 1 < n; ++i) {
        for (unsigned c = 0; c < air_.columns; ++c) {
            cur[c] = trace[c][i];
            next[c] = trace[c][i + 1];
        }
        for (const auto &t : air_.transitions)
            if (!t(cur, next).isZero())
                return false;
    }
    return true;
}

AirProof
AirStark::prove(const std::vector<std::vector<F>> &trace) const
{
    if (!traceSatisfies(trace))
        fatal("trace does not satisfy the AIR '%s'", air_.name.c_str());
    const size_t n = trace[0].size();
    UNINTT_ASSERT(isPow2(n), "trace length must be a power of two");
    UNINTT_ASSERT(n > 2 * params_.friFinalTerms,
                  "trace too short for the FRI parameters");
    const unsigned log_trace = log2Exact(n);
    const size_t d = n << params_.logBlowup;
    const size_t step = d / n;
    const F shift = ldeShift();

    FriParams fri;
    fri.logBlowup = params_.logBlowup;
    fri.finalPolyTerms = params_.friFinalTerms;
    fri.numQueries = params_.numQueries;
    fri.cosetShift = shift;

    AirProof proof;
    proof.logTrace = log_trace;
    proof.boundaries = air_.boundaries;

    Transcript transcript("unintt-air-" + air_.name);
    transcript.absorbU64(log_trace);
    for (const auto &b : air_.boundaries) {
        transcript.absorbU64(b.column);
        transcript.absorb(b.value);
    }

    // Commit every trace column.
    std::vector<FriProverArtifacts> col_arts(air_.columns);
    for (unsigned c = 0; c < air_.columns; ++c) {
        std::vector<F> coeffs = trace[c];
        nttInverseInPlace(coeffs);
        proof.columnFris.push_back(
            friProve(coeffs, fri, transcript, &col_arts[c]));
    }

    // Random combination coefficients, drawn after the commitments.
    std::vector<F> alphas(air_.transitions.size());
    for (auto &a : alphas)
        a = transcript.challengeGoldilocks();
    std::vector<F> betas(air_.boundaries.size());
    for (auto &b : betas)
        b = transcript.challengeGoldilocks();

    // Domain machinery shared by both quotients.
    const F w_d = F::rootOfUnity(log2Exact(d));
    const F last_row = F::rootOfUnity(log_trace).inverse();
    std::vector<F> xs(d);
    {
        F x = shift;
        for (size_t i = 0; i < d; ++i) {
            xs[i] = x;
            x *= w_d;
        }
    }
    std::vector<F> zh(step);
    {
        F cur = shift.pow(n);
        F w_step = w_d.pow(n);
        for (size_t i = 0; i < step; ++i) {
            zh[i] = cur - F::one();
            UNINTT_ASSERT(!zh[i].isZero(), "Z_H vanished on the coset");
            cur *= w_step;
        }
    }
    auto zh_inv = batchInverse(zh);

    // Composition quotient on the LDE domain.
    std::vector<F> q_code(d);
    std::vector<F> cur(air_.columns), nxt(air_.columns);
    for (size_t i = 0; i < d; ++i) {
        for (unsigned c = 0; c < air_.columns; ++c) {
            cur[c] = col_arts[c].codeword[i];
            nxt[c] = col_arts[c].codeword[(i + step) % d];
        }
        F acc = F::zero();
        for (size_t t = 0; t < air_.transitions.size(); ++t)
            acc += alphas[t] * air_.transitions[t](cur, nxt);
        q_code[i] = acc * (xs[i] - last_row) * zh_inv[i % step];
    }
    auto q_coeffs = truncateExact(cosetInterpolate(q_code, shift), n,
                                  "composition quotient");
    FriProverArtifacts q_art;
    proof.quotientFri = friProve(q_coeffs, fri, transcript, &q_art);

    // Combined boundary quotient.
    std::vector<F> denom(d);
    for (size_t i = 0; i < d; ++i)
        denom[i] = xs[i] - F::one();
    auto denom_inv = batchInverse(denom);
    std::vector<F> b_code(d);
    for (size_t i = 0; i < d; ++i) {
        F acc = F::zero();
        for (size_t j = 0; j < air_.boundaries.size(); ++j) {
            const auto &b = air_.boundaries[j];
            acc += betas[j] *
                   (col_arts[b.column].codeword[i] - b.value);
        }
        b_code[i] = acc * denom_inv[i];
    }
    auto b_coeffs = truncateExact(cosetInterpolate(b_code, shift), n,
                                  "boundary quotient");
    FriProverArtifacts b_art;
    proof.boundaryFri = friProve(b_coeffs, fri, transcript, &b_art);

    // Spot checks.
    for (unsigned q = 0; q < params_.numQueries; ++q) {
        size_t idx = transcript.challengeU64() % d;
        size_t next_idx = (idx + step) % d;
        AirProof::Query query;
        for (unsigned c = 0; c < air_.columns; ++c) {
            query.cur.push_back(col_arts[c].codeword[idx]);
            query.next.push_back(col_arts[c].codeword[next_idx]);
            query.curPaths.push_back(col_arts[c].tree->open(idx));
            query.nextPaths.push_back(col_arts[c].tree->open(next_idx));
        }
        query.quotient = q_art.codeword[idx];
        query.boundary = b_art.codeword[idx];
        query.quotientPath = q_art.tree->open(idx);
        query.boundaryPath = b_art.tree->open(idx);
        proof.queries.push_back(std::move(query));
    }
    return proof;
}

bool
AirStark::verify(const AirProof &proof) const
{
    const size_t n = 1ULL << proof.logTrace;
    const size_t d = n << params_.logBlowup;
    const size_t step = d / n;
    const F shift = ldeShift();

    FriParams fri;
    fri.logBlowup = params_.logBlowup;
    fri.finalPolyTerms = params_.friFinalTerms;
    fri.numQueries = params_.numQueries;
    fri.cosetShift = shift;

    // Structure: a commitment per column, the claimed public inputs
    // must match the AIR's boundary template.
    if (proof.columnFris.size() != air_.columns)
        return false;
    if (proof.boundaries.size() != air_.boundaries.size())
        return false;
    for (size_t j = 0; j < air_.boundaries.size(); ++j) {
        if (proof.boundaries[j].column != air_.boundaries[j].column ||
            !(proof.boundaries[j].value == air_.boundaries[j].value))
            return false;
    }
    for (const auto &f : proof.columnFris)
        if (f.logDegreeBound != proof.logTrace || f.roots.empty())
            return false;
    if (proof.quotientFri.logDegreeBound != proof.logTrace ||
        proof.boundaryFri.logDegreeBound != proof.logTrace ||
        proof.quotientFri.roots.empty() ||
        proof.boundaryFri.roots.empty())
        return false;
    if (proof.queries.size() != params_.numQueries)
        return false;

    Transcript transcript("unintt-air-" + air_.name);
    transcript.absorbU64(proof.logTrace);
    for (const auto &b : air_.boundaries) {
        transcript.absorbU64(b.column);
        transcript.absorb(b.value);
    }

    for (const auto &f : proof.columnFris)
        if (!friVerify(f, fri, transcript))
            return false;

    std::vector<F> alphas(air_.transitions.size());
    for (auto &a : alphas)
        a = transcript.challengeGoldilocks();
    std::vector<F> betas(air_.boundaries.size());
    for (auto &b : betas)
        b = transcript.challengeGoldilocks();

    if (!friVerify(proof.quotientFri, fri, transcript))
        return false;
    if (!friVerify(proof.boundaryFri, fri, transcript))
        return false;

    const F w_d = F::rootOfUnity(log2Exact(d));
    const F last_row = F::rootOfUnity(proof.logTrace).inverse();

    for (const auto &query : proof.queries) {
        size_t idx = transcript.challengeU64() % d;
        size_t next_idx = (idx + step) % d;

        if (query.cur.size() != air_.columns ||
            query.next.size() != air_.columns ||
            query.curPaths.size() != air_.columns ||
            query.nextPaths.size() != air_.columns)
            return false;
        for (unsigned c = 0; c < air_.columns; ++c) {
            if (query.curPaths[c].index != idx ||
                query.nextPaths[c].index != next_idx)
                return false;
            const Digest &root = proof.columnFris[c].roots[0];
            if (!MerkleTree::verify(root, query.curPaths[c],
                                    {query.cur[c]}) ||
                !MerkleTree::verify(root, query.nextPaths[c],
                                    {query.next[c]}))
                return false;
        }
        if (query.quotientPath.index != idx ||
            query.boundaryPath.index != idx)
            return false;
        if (!MerkleTree::verify(proof.quotientFri.roots[0],
                                query.quotientPath, {query.quotient}) ||
            !MerkleTree::verify(proof.boundaryFri.roots[0],
                                query.boundaryPath, {query.boundary}))
            return false;

        F x = shift * w_d.pow(idx);
        F zh = x.pow(n) - F::one();
        F acc = F::zero();
        for (size_t t = 0; t < air_.transitions.size(); ++t)
            acc += alphas[t] * air_.transitions[t](query.cur, query.next);
        if (!(acc * (x - last_row) == query.quotient * zh))
            return false;

        F bacc = F::zero();
        for (size_t j = 0; j < air_.boundaries.size(); ++j) {
            const auto &b = air_.boundaries[j];
            bacc += betas[j] * (query.cur[b.column] - b.value);
        }
        if (!(bacc == query.boundary * (x - F::one())))
            return false;
    }
    return true;
}

} // namespace unintt
