/**
 * @file
 * A Fiat–Shamir transcript: the prover/verifier-shared sponge that
 * turns interactive protocols (like the commitment openings in
 * zkp/commitment.hh) into non-interactive ones. Absorb public data,
 * squeeze field challenges; both sides replay the same sequence.
 *
 * The permutation is an algebraic sponge in the Rescue/Poseidon style
 * over Goldilocks: width-12 state, x^7 S-box (a bijection since
 * gcd(7, p-1) = 1), a dense circulant diffusion layer, and
 * deterministic round constants. The *structure* matches what
 * ZKP-friendly hashes use; the concrete matrix and constants here are
 * NOT cryptanalyzed — this is a protocol-plumbing component, not a
 * vetted hash (see the security note in README).
 */

#ifndef UNINTT_ZKP_TRANSCRIPT_HH
#define UNINTT_ZKP_TRANSCRIPT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "field/bn254.hh"
#include "field/goldilocks.hh"

namespace unintt {

/** Sponge-based Fiat–Shamir transcript. */
class Transcript
{
  public:
    /** State width in Goldilocks elements. */
    static constexpr unsigned kWidth = 12;
    /** Absorb/squeeze rate (capacity is kWidth - kRate). */
    static constexpr unsigned kRate = 8;
    /** Permutation rounds. */
    static constexpr unsigned kRounds = 8;

    /** @param domain domain-separation label for this protocol run. */
    explicit Transcript(const std::string &domain);

    /** Absorb a label (bytes) into the transcript. */
    void absorbLabel(const std::string &label);

    /** Absorb one 64-bit word. */
    void absorbU64(uint64_t x);

    /** Absorb a Goldilocks element. */
    void absorb(Goldilocks x) { absorbU64(x.value()); }

    /** Absorb a 256-bit value (e.g. a commitment coordinate). */
    void absorbU256(const U256 &x);

    /** Squeeze one Goldilocks challenge. */
    Goldilocks challengeGoldilocks();

    /** Squeeze one uniform-ish BN254-Fr challenge (253 bits). */
    Bn254Fr challengeFr();

    /** Squeeze a raw 64-bit word. */
    uint64_t challengeU64();

    /** The sponge permutation, exposed for tests. */
    static void permute(std::array<Goldilocks, kWidth> &state);

  private:
    /** Absorb one element at the current rate position. */
    void absorbElement(Goldilocks x);

    /** Switch to squeezing (pad and permute once). */
    void ensureSqueezing();

    std::array<Goldilocks, kWidth> state_{};
    unsigned position_ = 0;
    bool squeezing_ = false;
};

} // namespace unintt

#endif // UNINTT_ZKP_TRANSCRIPT_HH
