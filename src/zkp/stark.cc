#include "zkp/stark.hh"

#include <thread>

#include "field/field_traits.hh"
#include "ntt/radix2.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "zkp/serialize.hh"

namespace unintt {

namespace {

using F = Goldilocks;

/** The coset the LDEs live on (any nonsubgroup shift works). */
F
ldeShift()
{
    return F::multiplicativeGenerator();
}

/** Interpolate a coset codeword back to coefficients. */
std::vector<F>
cosetInterpolate(std::vector<F> codeword, F shift)
{
    nttInverseInPlace(codeword);
    F shift_inv = shift.inverse();
    F power = F::one();
    for (auto &v : codeword) {
        v *= power;
        power *= shift_inv;
    }
    return codeword;
}

/**
 * The checkpoint payload of a coefficient stage: one field vector of
 * a known size. Anything else — absent, sealed wrong, truncated,
 * wrong length — reads as a miss and the stage recomputes.
 */
std::optional<std::vector<F>>
loadCoeffs(CheckpointStore &store, unsigned stage,
           const std::string &key, size_t want)
{
    auto bytes = store.get(stage, key);
    if (!bytes)
        return std::nullopt;
    ByteReader r(*bytes);
    auto v = readFieldVector(r, want);
    if (!v || !r.exhausted() || v->size() != want)
        return std::nullopt;
    return v;
}

void
saveCoeffs(CheckpointStore &store, unsigned stage,
           const std::string &key, const std::vector<F> &coeffs)
{
    ByteWriter w;
    writeFieldVector(w, coeffs);
    store.put(stage, key, w.bytes());
}

/** Everything a completed commit stage hands downstream. */
struct CommitOut
{
    FriProof proof;
    /** The round-0 codeword (LDE evaluations on the coset). */
    std::vector<F> codeword;
    /** The round-0 Merkle tree, for the final spot-check openings. */
    std::optional<MerkleTree> tree;
};

/**
 * Run (or restore) one FRI commit stage. A valid checkpoint restores
 * the proof and codeword, rebuilds the round-0 tree, and replays the
 * stage's transcript schedule; otherwise the stage gate is consulted,
 * the prove runs with per-round checkpointing, and the completed
 * stage's payload supersedes its round sub-entries.
 */
Result<CommitOut>
commitStage(CheckpointStore &store, unsigned stage,
            const std::string &key, const std::string &name,
            const std::vector<F> &coeffs, const FriParams &fri,
            Transcript &transcript, size_t d, unsigned log_degree,
            const SquareStark::StageGate &gate,
            const FriRoundGate &round_gate)
{
    if (auto bytes = store.get(stage, key)) {
        ByteReader r(*bytes);
        auto p = readFriProof(r);
        auto code = readFieldVector(r, d);
        if (p && code && r.exhausted() && code->size() == d &&
            p->logDegreeBound == log_degree) {
            CommitOut out;
            out.proof = std::move(*p);
            out.codeword = std::move(*code);
            std::vector<std::vector<F>> leaves(out.codeword.size());
            for (size_t i = 0; i < out.codeword.size(); ++i)
                leaves[i] = {out.codeword[i]};
            out.tree.emplace(std::move(leaves));
            friReplayTranscript(out.proof, transcript);
            return out;
        }
        // Malformed payload: fall through and recompute.
    }

    if (gate) {
        Status s = gate(stage, name);
        if (!s.ok())
            return s;
    }
    StoreRoundCheckpointer ckpt(store, stage, key, round_gate);
    FriProverArtifacts art;
    Result<FriProof> r =
        friProveResumable(coeffs, fri, transcript, &art, ckpt);
    if (!r.ok())
        return r.status();

    CommitOut out;
    out.proof = std::move(r.value());
    out.codeword = std::move(art.codeword);
    out.tree = std::move(art.tree);
    ByteWriter w;
    writeFriProof(w, out.proof);
    writeFieldVector(w, out.codeword);
    store.put(stage, key, w.bytes());
    ckpt.dropRounds();
    return out;
}

} // namespace

SquareStark::SquareStark(StarkParams params) : params_(params)
{
    UNINTT_ASSERT(params_.logBlowup >= 2,
                  "degree-2 constraint needs blowup >= 4");
}

std::vector<F>
SquareStark::runMachine(F t0, size_t steps)
{
    std::vector<F> trace(steps + 1);
    trace[0] = t0;
    for (size_t i = 1; i <= steps; ++i)
        trace[i] = trace[i - 1] * trace[i - 1] + F::one();
    return trace;
}

StarkProof
SquareStark::prove(F t0, unsigned log_trace) const
{
    const size_t n = 1ULL << log_trace;
    UNINTT_ASSERT(n > 2 * params_.friFinalTerms,
                  "trace too short for the FRI parameters");
    const size_t d = n << params_.logBlowup; // LDE domain size
    const size_t step = d / n;               // index shift for g*x
    const F shift = ldeShift();

    FriParams fri;
    fri.logBlowup = params_.logBlowup;
    fri.finalPolyTerms = params_.friFinalTerms;
    fri.numQueries = params_.numQueries;
    fri.cosetShift = shift;

    StarkProof proof;
    proof.logTrace = log_trace;
    proof.publicStart = t0;

    Transcript transcript("unintt-stark-v1");
    transcript.absorb(t0);
    transcript.absorbU64(log_trace);

    // Trace polynomial from the honest execution.
    auto trace = runMachine(t0, n - 1);
    std::vector<F> t_coeffs(trace);
    nttInverseInPlace(t_coeffs);

    FriProverArtifacts t_art;
    proof.traceFri = friProve(t_coeffs, fri, transcript, &t_art);
    const auto &t_code = t_art.codeword; // T on the coset LDE domain

    // Domain points x_i = shift * w_d^i, plus the constants the
    // quotients need.
    const F w_d = F::rootOfUnity(log2Exact(d));
    const F last_row = F::rootOfUnity(log_trace).inverse(); // g^(n-1)
    std::vector<F> xs(d);
    {
        F x = shift;
        for (size_t i = 0; i < d; ++i) {
            xs[i] = x;
            x *= w_d;
        }
    }

    // Transition quotient on the LDE domain:
    // Q = (T(gx) - T(x)^2 - 1)(x - last) / (x^n - 1).
    // x^n cycles with period `step`, so batch-invert one period.
    std::vector<F> zh(step);
    {
        F gamma_n = shift.pow(n);
        F w_step = w_d.pow(n); // order `step`
        F cur = gamma_n;
        for (size_t i = 0; i < step; ++i) {
            zh[i] = cur - F::one();
            UNINTT_ASSERT(!zh[i].isZero(), "Z_H vanished on the coset");
            cur *= w_step;
        }
    }
    auto zh_inv = batchInverse(zh);

    std::vector<F> q_code(d);
    for (size_t i = 0; i < d; ++i) {
        F c = t_code[(i + step) % d] - t_code[i] * t_code[i] - F::one();
        q_code[i] = c * (xs[i] - last_row) * zh_inv[i % step];
    }
    auto q_coeffs = cosetInterpolate(q_code, shift);
    for (size_t i = n; i < q_coeffs.size(); ++i)
        UNINTT_ASSERT(q_coeffs[i].isZero(),
                      "transition quotient exceeds the degree bound");
    q_coeffs.resize(n);

    // Boundary quotient B = (T - t0) / (x - 1). It reads only the
    // committed trace codeword — never the transcript — so its inverse
    // NTT runs concurrently with the quotient Merkle commit below: the
    // prover-level analogue of the engine's exchange/butterfly overlap
    // (commit of round i hides the NTT of round i+1). The thread joins
    // before the boundary commit touches the transcript, so the
    // Fiat-Shamir sequence and the proof bytes are identical to the
    // sequential order.
    std::vector<F> b_code(d);
    std::vector<F> b_coeffs;
    std::thread boundary_ntt([&] {
        std::vector<F> denom(d);
        for (size_t i = 0; i < d; ++i)
            denom[i] = xs[i] - F::one();
        auto denom_inv = batchInverse(denom);
        for (size_t i = 0; i < d; ++i)
            b_code[i] = (t_code[i] - t0) * denom_inv[i];
        b_coeffs = cosetInterpolate(b_code, shift);
    });

    FriProverArtifacts q_art;
    proof.quotientFri = friProve(q_coeffs, fri, transcript, &q_art);
    UNINTT_ASSERT(q_art.codeword == q_code,
                  "quotient codeword mismatch (internal)");

    boundary_ntt.join();
    for (size_t i = n; i < b_coeffs.size(); ++i)
        UNINTT_ASSERT(b_coeffs[i].isZero(),
                      "boundary quotient exceeds the degree bound");
    b_coeffs.resize(n);

    FriProverArtifacts b_art;
    proof.boundaryFri = friProve(b_coeffs, fri, transcript, &b_art);

    // Spot checks tying the three commitments together.
    for (unsigned q = 0; q < params_.numQueries; ++q) {
        size_t idx = transcript.challengeU64() % d;
        size_t next_idx = (idx + step) % d;
        StarkQuery query;
        query.traceCur = t_code[idx];
        query.traceNext = t_code[next_idx];
        query.quotient = q_art.codeword[idx];
        query.boundary = b_art.codeword[idx];
        query.traceCurPath = t_art.tree->open(idx);
        query.traceNextPath = t_art.tree->open(next_idx);
        query.quotientPath = q_art.tree->open(idx);
        query.boundaryPath = b_art.tree->open(idx);
        proof.queries.push_back(std::move(query));
    }
    return proof;
}

Result<StarkProof>
SquareStark::proveCheckpointed(F t0, unsigned log_trace,
                               CheckpointStore &store,
                               const StageGate &gate,
                               const FriRoundGate &round_gate) const
{
    const size_t n = 1ULL << log_trace;
    if (n <= 2 * params_.friFinalTerms)
        return Status::error(StatusCode::InvalidArgument,
                             "trace too short for the FRI parameters");
    const size_t d = n << params_.logBlowup;
    const size_t step = d / n;
    const F shift = ldeShift();

    FriParams fri;
    fri.logBlowup = params_.logBlowup;
    fri.finalPolyTerms = params_.friFinalTerms;
    fri.numQueries = params_.numQueries;
    fri.cosetShift = shift;

    // Checkpoint keys are namespaced by the proof instance, and the
    // seal covers the key, so one store serves many (t0, log_trace)
    // instances without a stale entry ever crossing over.
    const std::string ns = "stark-" + std::to_string(t0.value()) +
                           "-" + std::to_string(log_trace) + "/";

    // A completed pipeline short-circuits the whole call.
    if (auto bytes = store.get(StageQueries, ns + "queries")) {
        auto cached = deserializeStarkProof(*bytes);
        if (cached && cached->logTrace == log_trace &&
            cached->publicStart == t0)
            return *cached;
    }

    StarkProof proof;
    proof.logTrace = log_trace;
    proof.publicStart = t0;

    Transcript transcript("unintt-stark-v1");
    transcript.absorb(t0);
    transcript.absorbU64(log_trace);

    // Stage 0: trace interpolation.
    std::vector<F> t_coeffs;
    if (auto restored =
            loadCoeffs(store, StageTraceLde, ns + "trace-lde", n)) {
        t_coeffs = std::move(*restored);
    } else {
        if (gate) {
            Status s = gate(StageTraceLde, "trace-lde");
            if (!s.ok())
                return s;
        }
        auto trace = runMachine(t0, n - 1);
        t_coeffs = trace;
        nttInverseInPlace(t_coeffs);
        saveCoeffs(store, StageTraceLde, ns + "trace-lde", t_coeffs);
    }

    // Stage 1: trace FRI commit.
    Result<CommitOut> t_commit = commitStage(
        store, StageTraceCommit, ns + "trace-commit", "trace-commit",
        t_coeffs, fri, transcript, d, log_trace, gate, round_gate);
    if (!t_commit.ok())
        return t_commit.status();
    proof.traceFri = t_commit.value().proof;
    const auto &t_code = t_commit.value().codeword;

    // Domain points x_i = shift * w_d^i (needed by both quotient
    // stages when they run fresh; cheap enough to build always).
    const F w_d = F::rootOfUnity(log2Exact(d));
    const F last_row = F::rootOfUnity(log_trace).inverse(); // g^(n-1)
    std::vector<F> xs(d);
    {
        F x = shift;
        for (size_t i = 0; i < d; ++i) {
            xs[i] = x;
            x *= w_d;
        }
    }

    // Stage 2: transition quotient.
    std::vector<F> q_coeffs;
    bool q_fresh = false;
    std::vector<F> q_code;
    if (auto restored =
            loadCoeffs(store, StageQuotient, ns + "quotient", n)) {
        q_coeffs = std::move(*restored);
    } else {
        if (gate) {
            Status s = gate(StageQuotient, "quotient");
            if (!s.ok())
                return s;
        }
        std::vector<F> zh(step);
        {
            F gamma_n = shift.pow(n);
            F w_step = w_d.pow(n); // order `step`
            F cur = gamma_n;
            for (size_t i = 0; i < step; ++i) {
                zh[i] = cur - F::one();
                UNINTT_ASSERT(!zh[i].isZero(),
                              "Z_H vanished on the coset");
                cur *= w_step;
            }
        }
        auto zh_inv = batchInverse(zh);
        q_code.resize(d);
        for (size_t i = 0; i < d; ++i) {
            F c = t_code[(i + step) % d] - t_code[i] * t_code[i] -
                  F::one();
            q_code[i] = c * (xs[i] - last_row) * zh_inv[i % step];
        }
        q_coeffs = cosetInterpolate(q_code, shift);
        for (size_t i = n; i < q_coeffs.size(); ++i)
            if (!q_coeffs[i].isZero())
                return Status::error(
                    StatusCode::DataCorruption,
                    "transition quotient exceeds the degree bound");
        q_coeffs.resize(n);
        q_fresh = true;
        saveCoeffs(store, StageQuotient, ns + "quotient", q_coeffs);
    }

    // Stage 3: quotient FRI commit.
    Result<CommitOut> q_commit = commitStage(
        store, StageQuotientCommit, ns + "quotient-commit",
        "quotient-commit", q_coeffs, fri, transcript, d, log_trace,
        gate, round_gate);
    if (!q_commit.ok())
        return q_commit.status();
    proof.quotientFri = q_commit.value().proof;
    if (q_fresh && !(q_commit.value().codeword == q_code))
        return Status::error(StatusCode::DataCorruption,
                             "quotient codeword mismatch (internal)");

    // Stage 4: boundary quotient B = (T - t0) / (x - 1).
    std::vector<F> b_coeffs;
    if (auto restored =
            loadCoeffs(store, StageBoundary, ns + "boundary", n)) {
        b_coeffs = std::move(*restored);
    } else {
        if (gate) {
            Status s = gate(StageBoundary, "boundary");
            if (!s.ok())
                return s;
        }
        std::vector<F> denom(d);
        for (size_t i = 0; i < d; ++i)
            denom[i] = xs[i] - F::one();
        auto denom_inv = batchInverse(denom);
        std::vector<F> b_code(d);
        for (size_t i = 0; i < d; ++i)
            b_code[i] = (t_code[i] - t0) * denom_inv[i];
        b_coeffs = cosetInterpolate(b_code, shift);
        for (size_t i = n; i < b_coeffs.size(); ++i)
            if (!b_coeffs[i].isZero())
                return Status::error(
                    StatusCode::DataCorruption,
                    "boundary quotient exceeds the degree bound");
        b_coeffs.resize(n);
        saveCoeffs(store, StageBoundary, ns + "boundary", b_coeffs);
    }

    // Stage 5: boundary FRI commit.
    Result<CommitOut> b_commit = commitStage(
        store, StageBoundaryCommit, ns + "boundary-commit",
        "boundary-commit", b_coeffs, fri, transcript, d, log_trace,
        gate, round_gate);
    if (!b_commit.ok())
        return b_commit.status();
    proof.boundaryFri = b_commit.value().proof;

    // Stage 6: spot checks tying the three commitments together.
    if (gate) {
        Status s = gate(StageQueries, "queries");
        if (!s.ok())
            return s;
    }
    for (unsigned q = 0; q < params_.numQueries; ++q) {
        size_t idx = transcript.challengeU64() % d;
        size_t next_idx = (idx + step) % d;
        StarkQuery query;
        query.traceCur = t_code[idx];
        query.traceNext = t_code[next_idx];
        query.quotient = q_commit.value().codeword[idx];
        query.boundary = b_commit.value().codeword[idx];
        query.traceCurPath = t_commit.value().tree->open(idx);
        query.traceNextPath = t_commit.value().tree->open(next_idx);
        query.quotientPath = q_commit.value().tree->open(idx);
        query.boundaryPath = b_commit.value().tree->open(idx);
        proof.queries.push_back(std::move(query));
    }
    store.put(StageQueries, ns + "queries", serializeStarkProof(proof));
    return proof;
}

bool
SquareStark::verify(const StarkProof &proof) const
{
    const size_t n = 1ULL << proof.logTrace;
    const size_t d = n << params_.logBlowup;
    const size_t step = d / n;
    const F shift = ldeShift();

    FriParams fri;
    fri.logBlowup = params_.logBlowup;
    fri.finalPolyTerms = params_.friFinalTerms;
    fri.numQueries = params_.numQueries;
    fri.cosetShift = shift;

    // All three commitments must claim the trace-length degree bound.
    if (proof.traceFri.logDegreeBound != proof.logTrace ||
        proof.quotientFri.logDegreeBound != proof.logTrace ||
        proof.boundaryFri.logDegreeBound != proof.logTrace)
        return false;
    if (proof.traceFri.roots.empty() || proof.quotientFri.roots.empty() ||
        proof.boundaryFri.roots.empty())
        return false;
    if (proof.queries.size() != params_.numQueries)
        return false;

    Transcript transcript("unintt-stark-v1");
    transcript.absorb(proof.publicStart);
    transcript.absorbU64(proof.logTrace);

    if (!friVerify(proof.traceFri, fri, transcript))
        return false;
    if (!friVerify(proof.quotientFri, fri, transcript))
        return false;
    if (!friVerify(proof.boundaryFri, fri, transcript))
        return false;

    const F w_d = F::rootOfUnity(log2Exact(d));
    const F last_row = F::rootOfUnity(proof.logTrace).inverse();
    const Digest &t_root = proof.traceFri.roots[0];
    const Digest &q_root = proof.quotientFri.roots[0];
    const Digest &b_root = proof.boundaryFri.roots[0];

    for (const auto &query : proof.queries) {
        size_t idx = transcript.challengeU64() % d;
        size_t next_idx = (idx + step) % d;

        if (query.traceCurPath.index != idx ||
            query.traceNextPath.index != next_idx ||
            query.quotientPath.index != idx ||
            query.boundaryPath.index != idx)
            return false;
        if (!MerkleTree::verify(t_root, query.traceCurPath,
                                {query.traceCur}) ||
            !MerkleTree::verify(t_root, query.traceNextPath,
                                {query.traceNext}) ||
            !MerkleTree::verify(q_root, query.quotientPath,
                                {query.quotient}) ||
            !MerkleTree::verify(b_root, query.boundaryPath,
                                {query.boundary}))
            return false;

        F x = shift * w_d.pow(idx);
        // Transition: (T(gx) - T(x)^2 - 1)(x - last) == Q(x) Z_H(x).
        F c = query.traceNext - query.traceCur * query.traceCur -
              F::one();
        F zh = x.pow(n) - F::one();
        if (!(c * (x - last_row) == query.quotient * zh))
            return false;
        // Boundary: T(x) - t0 == B(x) (x - 1).
        if (!(query.traceCur - proof.publicStart ==
              query.boundary * (x - F::one())))
            return false;
    }
    return true;
}

} // namespace unintt
