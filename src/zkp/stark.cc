#include "zkp/stark.hh"

#include "field/field_traits.hh"
#include "ntt/radix2.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

namespace {

using F = Goldilocks;

/** The coset the LDEs live on (any nonsubgroup shift works). */
F
ldeShift()
{
    return F::multiplicativeGenerator();
}

/** Interpolate a coset codeword back to coefficients. */
std::vector<F>
cosetInterpolate(std::vector<F> codeword, F shift)
{
    nttInverseInPlace(codeword);
    F shift_inv = shift.inverse();
    F power = F::one();
    for (auto &v : codeword) {
        v *= power;
        power *= shift_inv;
    }
    return codeword;
}

} // namespace

SquareStark::SquareStark(StarkParams params) : params_(params)
{
    UNINTT_ASSERT(params_.logBlowup >= 2,
                  "degree-2 constraint needs blowup >= 4");
}

std::vector<F>
SquareStark::runMachine(F t0, size_t steps)
{
    std::vector<F> trace(steps + 1);
    trace[0] = t0;
    for (size_t i = 1; i <= steps; ++i)
        trace[i] = trace[i - 1] * trace[i - 1] + F::one();
    return trace;
}

StarkProof
SquareStark::prove(F t0, unsigned log_trace) const
{
    const size_t n = 1ULL << log_trace;
    UNINTT_ASSERT(n > 2 * params_.friFinalTerms,
                  "trace too short for the FRI parameters");
    const size_t d = n << params_.logBlowup; // LDE domain size
    const size_t step = d / n;               // index shift for g*x
    const F shift = ldeShift();

    FriParams fri;
    fri.logBlowup = params_.logBlowup;
    fri.finalPolyTerms = params_.friFinalTerms;
    fri.numQueries = params_.numQueries;
    fri.cosetShift = shift;

    StarkProof proof;
    proof.logTrace = log_trace;
    proof.publicStart = t0;

    Transcript transcript("unintt-stark-v1");
    transcript.absorb(t0);
    transcript.absorbU64(log_trace);

    // Trace polynomial from the honest execution.
    auto trace = runMachine(t0, n - 1);
    std::vector<F> t_coeffs(trace);
    nttInverseInPlace(t_coeffs);

    FriProverArtifacts t_art;
    proof.traceFri = friProve(t_coeffs, fri, transcript, &t_art);
    const auto &t_code = t_art.codeword; // T on the coset LDE domain

    // Domain points x_i = shift * w_d^i, plus the constants the
    // quotients need.
    const F w_d = F::rootOfUnity(log2Exact(d));
    const F last_row = F::rootOfUnity(log_trace).inverse(); // g^(n-1)
    std::vector<F> xs(d);
    {
        F x = shift;
        for (size_t i = 0; i < d; ++i) {
            xs[i] = x;
            x *= w_d;
        }
    }

    // Transition quotient on the LDE domain:
    // Q = (T(gx) - T(x)^2 - 1)(x - last) / (x^n - 1).
    // x^n cycles with period `step`, so batch-invert one period.
    std::vector<F> zh(step);
    {
        F gamma_n = shift.pow(n);
        F w_step = w_d.pow(n); // order `step`
        F cur = gamma_n;
        for (size_t i = 0; i < step; ++i) {
            zh[i] = cur - F::one();
            UNINTT_ASSERT(!zh[i].isZero(), "Z_H vanished on the coset");
            cur *= w_step;
        }
    }
    auto zh_inv = batchInverse(zh);

    std::vector<F> q_code(d);
    for (size_t i = 0; i < d; ++i) {
        F c = t_code[(i + step) % d] - t_code[i] * t_code[i] - F::one();
        q_code[i] = c * (xs[i] - last_row) * zh_inv[i % step];
    }
    auto q_coeffs = cosetInterpolate(q_code, shift);
    for (size_t i = n; i < q_coeffs.size(); ++i)
        UNINTT_ASSERT(q_coeffs[i].isZero(),
                      "transition quotient exceeds the degree bound");
    q_coeffs.resize(n);

    FriProverArtifacts q_art;
    proof.quotientFri = friProve(q_coeffs, fri, transcript, &q_art);
    UNINTT_ASSERT(q_art.codeword == q_code,
                  "quotient codeword mismatch (internal)");

    // Boundary quotient B = (T - t0) / (x - 1).
    std::vector<F> denom(d);
    for (size_t i = 0; i < d; ++i)
        denom[i] = xs[i] - F::one();
    auto denom_inv = batchInverse(denom);
    std::vector<F> b_code(d);
    for (size_t i = 0; i < d; ++i)
        b_code[i] = (t_code[i] - t0) * denom_inv[i];
    auto b_coeffs = cosetInterpolate(b_code, shift);
    for (size_t i = n; i < b_coeffs.size(); ++i)
        UNINTT_ASSERT(b_coeffs[i].isZero(),
                      "boundary quotient exceeds the degree bound");
    b_coeffs.resize(n);

    FriProverArtifacts b_art;
    proof.boundaryFri = friProve(b_coeffs, fri, transcript, &b_art);

    // Spot checks tying the three commitments together.
    for (unsigned q = 0; q < params_.numQueries; ++q) {
        size_t idx = transcript.challengeU64() % d;
        size_t next_idx = (idx + step) % d;
        StarkQuery query;
        query.traceCur = t_code[idx];
        query.traceNext = t_code[next_idx];
        query.quotient = q_art.codeword[idx];
        query.boundary = b_art.codeword[idx];
        query.traceCurPath = t_art.tree->open(idx);
        query.traceNextPath = t_art.tree->open(next_idx);
        query.quotientPath = q_art.tree->open(idx);
        query.boundaryPath = b_art.tree->open(idx);
        proof.queries.push_back(std::move(query));
    }
    return proof;
}

bool
SquareStark::verify(const StarkProof &proof) const
{
    const size_t n = 1ULL << proof.logTrace;
    const size_t d = n << params_.logBlowup;
    const size_t step = d / n;
    const F shift = ldeShift();

    FriParams fri;
    fri.logBlowup = params_.logBlowup;
    fri.finalPolyTerms = params_.friFinalTerms;
    fri.numQueries = params_.numQueries;
    fri.cosetShift = shift;

    // All three commitments must claim the trace-length degree bound.
    if (proof.traceFri.logDegreeBound != proof.logTrace ||
        proof.quotientFri.logDegreeBound != proof.logTrace ||
        proof.boundaryFri.logDegreeBound != proof.logTrace)
        return false;
    if (proof.traceFri.roots.empty() || proof.quotientFri.roots.empty() ||
        proof.boundaryFri.roots.empty())
        return false;
    if (proof.queries.size() != params_.numQueries)
        return false;

    Transcript transcript("unintt-stark-v1");
    transcript.absorb(proof.publicStart);
    transcript.absorbU64(proof.logTrace);

    if (!friVerify(proof.traceFri, fri, transcript))
        return false;
    if (!friVerify(proof.quotientFri, fri, transcript))
        return false;
    if (!friVerify(proof.boundaryFri, fri, transcript))
        return false;

    const F w_d = F::rootOfUnity(log2Exact(d));
    const F last_row = F::rootOfUnity(proof.logTrace).inverse();
    const Digest &t_root = proof.traceFri.roots[0];
    const Digest &q_root = proof.quotientFri.roots[0];
    const Digest &b_root = proof.boundaryFri.roots[0];

    for (const auto &query : proof.queries) {
        size_t idx = transcript.challengeU64() % d;
        size_t next_idx = (idx + step) % d;

        if (query.traceCurPath.index != idx ||
            query.traceNextPath.index != next_idx ||
            query.quotientPath.index != idx ||
            query.boundaryPath.index != idx)
            return false;
        if (!MerkleTree::verify(t_root, query.traceCurPath,
                                {query.traceCur}) ||
            !MerkleTree::verify(t_root, query.traceNextPath,
                                {query.traceNext}) ||
            !MerkleTree::verify(q_root, query.quotientPath,
                                {query.quotient}) ||
            !MerkleTree::verify(b_root, query.boundaryPath,
                                {query.boundary}))
            return false;

        F x = shift * w_d.pow(idx);
        // Transition: (T(gx) - T(x)^2 - 1)(x - last) == Q(x) Z_H(x).
        F c = query.traceNext - query.traceCur * query.traceCur -
              F::one();
        F zh = x.pow(n) - F::one();
        if (!(c * (x - last_row) == query.quotient * zh))
            return false;
        // Boundary: T(x) - t0 == B(x) (x - 1).
        if (!(query.traceCur - proof.publicStart ==
              query.boundary * (x - F::one())))
            return false;
    }
    return true;
}

} // namespace unintt
