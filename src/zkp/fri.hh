/**
 * @file
 * FRI (Fast Reed-Solomon IOP of Proximity) — the low-degree commitment
 * of hash-based proof systems (STARKs, Plonky2), and the reason small
 * fields like Goldilocks need fast huge NTTs at all. A complete,
 * functionally executable prover/verifier pair built on the repo's
 * substrates: the codeword is the polynomial's NTT evaluation on a
 * blown-up domain, every folding round commits through the Merkle
 * layer (zkp/merkle.hh), and all challenges and query positions come
 * from the Fiat-Shamir transcript.
 *
 * Folding rule (factor 2): from f on the size-D domain <w> to f' on
 * the size-D/2 domain <w^2>,
 *
 *   f'(x^2) = (f(x) + f(-x))/2 + c * (f(x) - f(-x))/(2x),
 *
 * which halves the degree bound; after enough rounds the prover sends
 * the final polynomial's coefficients in the clear and the verifier
 * spot-checks random evaluation chains through all rounds.
 *
 * Same scope caveat as the rest of the protocol layer: structurally
 * faithful, parameter choices and the sponge are not production-
 * hardened.
 */

#ifndef UNINTT_ZKP_FRI_HH
#define UNINTT_ZKP_FRI_HH

#include <optional>
#include <vector>

#include "field/goldilocks.hh"
#include "util/status.hh"
#include "zkp/merkle.hh"
#include "zkp/transcript.hh"

namespace unintt {

/** FRI parameters. */
struct FriParams
{
    /** log2 of the rate inverse: domain = degree bound << logBlowup. */
    unsigned logBlowup = 2;
    /** Folding stops once the degree bound reaches this. */
    unsigned finalPolyTerms = 8;
    /** Number of spot-check query chains. */
    unsigned numQueries = 24;
    /**
     * Evaluation-domain coset shift. The default (1) is the plain
     * subgroup; STARK-style users evaluate on a coset so quotient
     * divisions by Z_H never hit a domain point (zkp/stark.hh).
     */
    Goldilocks cosetShift = Goldilocks::fromU64(1);
};

/**
 * Prover-side artifacts callers may capture: the round-0 codeword and
 * its Merkle tree, so outer protocols (STARKs) can open additional
 * positions against the same commitment proof.roots[0].
 */
struct FriProverArtifacts
{
    std::vector<Goldilocks> codeword;
    std::optional<MerkleTree> tree;
};

/** One round's openings for one query chain. */
struct FriQueryRound
{
    /** f_r at the queried index (the "low" half position). */
    Goldilocks lo;
    /** f_r at index + D_r/2 (the "high" half position). */
    Goldilocks hi;
    MerklePath loPath;
    MerklePath hiPath;
};

/** One query chain through all rounds. */
struct FriQuery
{
    std::vector<FriQueryRound> rounds;
};

/** A complete FRI proof. */
struct FriProof
{
    /** log2 of the claimed degree bound. */
    unsigned logDegreeBound = 0;
    /** Merkle roots of every folding round's codeword. */
    std::vector<Digest> roots;
    /** The final polynomial, in the clear. */
    std::vector<Goldilocks> finalPoly;
    /** Spot-check chains. */
    std::vector<FriQuery> queries;
};

/**
 * Per-round checkpoint hook of the resumable FRI prover. Round r's
 * state is the codeword *entering* round r (round 0 is the full LDE
 * codeword); everything else — trees, roots, challenges, queries — is
 * recomputed deterministically from it, which is what keeps a resumed
 * proof byte-identical to an uninterrupted one.
 */
class FriRoundCheckpointer
{
  public:
    virtual ~FriRoundCheckpointer() = default;

    /**
     * The stored codeword entering round @p round, or nullopt when
     * absent or invalid (a checksum mismatch reads as absence: the
     * round is recomputed, never trusted).
     */
    virtual std::optional<std::vector<Goldilocks>>
    loadRound(unsigned round) = 0;

    /** Persist the codeword entering round @p round. */
    virtual void saveRound(unsigned round,
                           const std::vector<Goldilocks> &codeword) = 0;

    /**
     * Consulted before round @p round executes; a non-ok Status
     * aborts the prove there (saved rounds persist for the resume).
     */
    virtual Status roundGate(unsigned round) { return Status(); }
};

/**
 * Prove that @p coeffs (size 2^logDegreeBound, low-order first) is a
 * polynomial of degree < 2^logDegreeBound by committing its Reed-
 * Solomon codeword and folding.
 *
 * @param transcript Fiat-Shamir transcript shared with the verifier.
 */
FriProof friProve(const std::vector<Goldilocks> &coeffs,
                  const FriParams &params, Transcript &transcript,
                  FriProverArtifacts *artifacts = nullptr);

/**
 * friProve with per-round checkpointing: stored round codewords are
 * restored instead of recomputed (skipping the LDE NTT and the folds
 * they cover), newly computed rounds are saved through @p ckpt, and
 * ckpt.roundGate may abort the prove between rounds with a clean
 * Status. The produced proof — resumed or not — is byte-identical to
 * friProve's on the same inputs.
 */
Result<FriProof> friProveResumable(const std::vector<Goldilocks> &coeffs,
                                   const FriParams &params,
                                   Transcript &transcript,
                                   FriProverArtifacts *artifacts,
                                   FriRoundCheckpointer &ckpt);

/**
 * Advance @p transcript past a completed FRI proof without re-proving:
 * absorb the roots (discarding the per-round challenge draws), absorb
 * the final polynomial, and discard one query-position draw per query
 * — exactly the prover's transcript schedule. Used by the checkpointed
 * STARK pipeline to rebuild transcript state when a commit stage is
 * restored from its checkpoint.
 */
void friReplayTranscript(const FriProof &proof, Transcript &transcript);

/**
 * Verify a FRI proof against a transcript in the prover's initial
 * state. Checks every Merkle opening, every fold equation, and the
 * final polynomial's evaluations and size.
 */
bool friVerify(const FriProof &proof, const FriParams &params,
               Transcript &transcript);

} // namespace unintt

#endif // UNINTT_ZKP_FRI_HH
