/**
 * @file
 * The Groth16/QAP quotient computation, the step whose NTT appetite
 * the motivation figure counts: given the constraint polynomials'
 * evaluations A, B, C on the size-n subgroup H (satisfying
 * A(x)B(x) = C(x) on H for a valid witness), compute the quotient
 *
 *   h(X) = (A(X)B(X) - C(X)) / Z_H(X),   Z_H(X) = X^n - 1,
 *
 * by moving to a coset gH where Z_H is the nonzero *constant*
 * g^n - 1: interpolate (3 inverse NTTs), extend to the coset
 * (3 coset NTTs), divide pointwise, and interpolate h back (1 coset
 * inverse NTT). Exactly the 7-transform schedule groth16Stages()
 * prices.
 */

#ifndef UNINTT_ZKP_QUOTIENT_HH
#define UNINTT_ZKP_QUOTIENT_HH

#include <vector>

#include "field/field_traits.hh"
#include "util/bitops.hh"
#include "util/logging.hh"
#include "zkp/polynomial.hh"

namespace unintt {

/**
 * Compute the QAP quotient polynomial from subgroup evaluations.
 *
 * @param a_evals evaluations of A on H, natural order, size 2^k.
 * @param b_evals evaluations of B on H.
 * @param c_evals evaluations of C on H; A*B - C must vanish on H
 *                (fatal "constraint system unsatisfied" otherwise).
 * @return h with A(X)B(X) - C(X) == h(X) * (X^n - 1), degree < n - 1.
 */
template <NttField F>
Polynomial<F>
computeQuotient(const std::vector<F> &a_evals,
                const std::vector<F> &b_evals,
                const std::vector<F> &c_evals)
{
    const size_t n = a_evals.size();
    UNINTT_ASSERT(isPow2(n), "domain must be a power of two");
    UNINTT_ASSERT(b_evals.size() == n && c_evals.size() == n,
                  "evaluation vectors must share one domain");
    const unsigned log_n = log2Exact(n);

    // The witness must actually satisfy the constraints on H.
    for (size_t i = 0; i < n; ++i) {
        if (!(a_evals[i] * b_evals[i] == c_evals[i]))
            fatal("constraint system unsatisfied at row %zu", i);
    }

    // 1. Interpolate A, B, C (3 inverse NTTs).
    auto a = Polynomial<F>::interpolate(a_evals);
    auto b = Polynomial<F>::interpolate(b_evals);
    auto c = Polynomial<F>::interpolate(c_evals);

    // 2. Evaluate on the coset gH (3 coset NTTs). A*B has degree up to
    //    2n - 2, but h = (AB - C)/Z_H has degree < n - 1, so its coset
    //    evaluations on n points determine it; the division below is
    //    exact precisely because AB - C vanishes on H.
    F g = F::multiplicativeGenerator();
    auto a_coset = a.evaluateOnCoset(log_n, g);
    auto b_coset = b.evaluateOnCoset(log_n, g);
    auto c_coset = c.evaluateOnCoset(log_n, g);

    // 3. Pointwise quotient. On the coset, Z_H(g w^i) = g^n w^{ni} - 1
    //    = g^n - 1: a single constant inversion.
    F zh = g.pow(n) - F::one();
    UNINTT_ASSERT(!zh.isZero(), "coset generator lies in the subgroup");
    F zh_inv = zh.inverse();
    std::vector<F> h_coset(n);
    for (size_t i = 0; i < n; ++i)
        h_coset[i] = (a_coset[i] * b_coset[i] - c_coset[i]) * zh_inv;

    // 4. Interpolate h from the coset (1 coset inverse NTT): undo the
    //    plain inverse NTT's implicit domain, then strip the coset
    //    shift from coefficient i by g^-i.
    nttInverseInPlace(h_coset);
    F g_inv = g.inverse();
    F power = F::one();
    for (auto &coeff : h_coset) {
        coeff *= power;
        power *= g_inv;
    }
    return Polynomial<F>(std::move(h_coset));
}

/**
 * Check the divisibility identity the quotient asserts, at one point:
 * A(x)B(x) - C(x) == h(x) * (x^n - 1). Used by tests and examples as
 * an independent (Schwartz-Zippel) validation of computeQuotient.
 */
template <NttField F>
bool
checkQuotientAt(const Polynomial<F> &a, const Polynomial<F> &b,
                const Polynomial<F> &c, const Polynomial<F> &h, size_t n,
                F x)
{
    F lhs = a.evaluate(x) * b.evaluate(x) - c.evaluate(x);
    F rhs = h.evaluate(x) * (x.pow(n) - F::one());
    return lhs == rhs;
}

} // namespace unintt

#endif // UNINTT_ZKP_QUOTIENT_HH
