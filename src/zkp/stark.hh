/**
 * @file
 * A complete (simplified) STARK for one algebraic intermediate
 * representation: the square-and-increment machine
 *
 *   t[0] = public start,   t[i+1] = t[i]^2 + 1.
 *
 * The prover commits the trace polynomial T, the transition quotient
 *
 *   Q = (T(g x) - T(x)^2 - 1) * (x - g^(n-1)) / Z_H(x)
 *
 * (the transition holds on all of H except the last row) and the
 * boundary quotient B = (T(x) - t0) / (x - 1), each through FRI on a
 * coset domain (so Z_H never vanishes there); transcript-sampled spot
 * checks tie the three commitments together. This is the hash-based
 * proof pipeline (Plonky2/STARK-style) whose LDEs are exactly the
 * Goldilocks NTT workload the paper accelerates.
 *
 * Simplifications vs production STARKs, stated honestly: one column,
 * one transition constraint, no zero-knowledge blinding, no DEEP
 * out-of-domain sampling (soundness rests on the plain FRI + spot-
 * check argument), and the toy sponge of zkp/transcript.hh.
 */

#ifndef UNINTT_ZKP_STARK_HH
#define UNINTT_ZKP_STARK_HH

#include <functional>
#include <string>
#include <vector>

#include "field/goldilocks.hh"
#include "util/status.hh"
#include "zkp/checkpoint.hh"
#include "zkp/fri.hh"

namespace unintt {

/** STARK parameters. */
struct StarkParams
{
    /** log2 LDE blowup; >= 2 because the constraint is degree 2. */
    unsigned logBlowup = 2;
    /** Spot checks tying trace/quotient/boundary together. */
    unsigned numQueries = 24;
    /** FRI termination size. */
    unsigned friFinalTerms = 8;
};

/** Openings for one spot check. */
struct StarkQuery
{
    Goldilocks traceCur;  ///< T at the queried point x.
    Goldilocks traceNext; ///< T at g*x (next trace row).
    Goldilocks quotient;  ///< Q at x.
    Goldilocks boundary;  ///< B at x.
    MerklePath traceCurPath;
    MerklePath traceNextPath;
    MerklePath quotientPath;
    MerklePath boundaryPath;
};

/** A complete proof of correct execution. */
struct StarkProof
{
    /** log2 of the trace length. */
    unsigned logTrace = 0;
    /** The public input t[0]. */
    Goldilocks publicStart;
    FriProof traceFri;
    FriProof quotientFri;
    FriProof boundaryFri;
    std::vector<StarkQuery> queries;
};

/** Prover/verifier pair for the square-and-increment AIR. */
class SquareStark
{
  public:
    explicit SquareStark(StarkParams params = StarkParams{});

    /**
     * Prove that the machine started at @p t0 and ran 2^log_trace - 1
     * steps of t <- t^2 + 1. log_trace must exceed
     * log2(friFinalTerms) + 1 so FRI has at least one round.
     */
    StarkProof prove(Goldilocks t0, unsigned log_trace) const;

    /**
     * Gate consulted before a pipeline stage executes; a non-ok
     * Status aborts the prove there with every earlier stage's
     * checkpoint already persisted. Used by tests and the chaos soak
     * to simulate a crash at an exact stage boundary.
     */
    using StageGate =
        std::function<Status(unsigned stage, const std::string &name)>;

    /** Pipeline stage indices of proveCheckpointed, in order. */
    enum Stage : unsigned {
        StageTraceLde = 0,
        StageTraceCommit = 1,
        StageQuotient = 2,
        StageQuotientCommit = 3,
        StageBoundary = 4,
        StageBoundaryCommit = 5,
        StageQueries = 6,
        NumStages = 7,
    };

    /**
     * prove() with per-stage (and per-FRI-round) checkpointing into
     * @p store. Each stage's output is persisted as it completes,
     * sealed with a position-salted checksum; a rerun after an
     * interruption restores every valid checkpoint and recomputes
     * only from the first missing (or corrupted — a failed seal reads
     * as missing) stage onward. The produced proof is byte-identical
     * to prove()'s on the same inputs regardless of how many times
     * the pipeline was interrupted and resumed.
     *
     * Checkpoint keys are namespaced by (t0, log_trace), so one store
     * can serve many proof instances without cross-talk.
     *
     * @param gate Optional per-stage interruption hook (see
     *     StageGate); consulted only before stages that actually run.
     * @param round_gate Optional per-FRI-round interruption hook,
     *     forwarded to the commit stages' round checkpointer.
     */
    Result<StarkProof> proveCheckpointed(
        Goldilocks t0, unsigned log_trace, CheckpointStore &store,
        const StageGate &gate = {},
        const FriRoundGate &round_gate = {}) const;

    /** Verify a proof. */
    bool verify(const StarkProof &proof) const;

    /** The (honest) trace for cross-checking in tests. */
    static std::vector<Goldilocks> runMachine(Goldilocks t0, size_t steps);

  private:
    StarkParams params_;
};

} // namespace unintt

#endif // UNINTT_ZKP_STARK_HH
