#include "zkp/qap_argument.hh"

#include "util/bitops.hh"
#include "util/logging.hh"
#include "zkp/quotient.hh"
#include "zkp/transcript.hh"

namespace unintt {

QapArgument::QapArgument(size_t max_constraints, uint64_t setup_seed)
    : kzg_(nextPow2(std::max<size_t>(2, max_constraints)), setup_seed)
{
}

size_t
QapArgument::domainSize(const R1cs<Bn254Fr> &cs)
{
    return nextPow2(std::max<size_t>(2, cs.constraints().size()));
}

QapProof
QapArgument::prove(const R1cs<Bn254Fr> &cs,
                   const std::vector<Bn254Fr> &witness) const
{
    if (!cs.isSatisfied(witness))
        fatal("witness does not satisfy the constraint system");
    const size_t n = domainSize(cs);
    UNINTT_ASSERT(n <= kzg_.basis().size(), "setup too small for circuit");

    // Per-constraint evaluations, zero-padded to the domain.
    std::vector<Bn254Fr> a_evals(n, Bn254Fr::zero());
    std::vector<Bn254Fr> b_evals(n, Bn254Fr::zero());
    std::vector<Bn254Fr> c_evals(n, Bn254Fr::zero());
    for (size_t i = 0; i < cs.constraints().size(); ++i) {
        const auto &cons = cs.constraints()[i];
        a_evals[i] = cons.a.evaluate(witness);
        b_evals[i] = cons.b.evaluate(witness);
        c_evals[i] = cons.c.evaluate(witness);
    }

    // Interpolate and compute the quotient (7 NTTs inside).
    auto h = computeQuotient(a_evals, b_evals, c_evals);
    auto a = Polynomial<Bn254Fr>::interpolate(a_evals);
    auto b = Polynomial<Bn254Fr>::interpolate(b_evals);
    auto c = Polynomial<Bn254Fr>::interpolate(c_evals);

    QapProof proof;
    proof.commitA = kzg_.commit(a);
    proof.commitB = kzg_.commit(b);
    proof.commitC = kzg_.commit(c);
    proof.commitH = kzg_.commit(h);

    Bn254Fr r = challengeFor(proof);
    proof.openA = kzg_.open(a, r);
    proof.openB = kzg_.open(b, r);
    proof.openC = kzg_.open(c, r);
    proof.openH = kzg_.open(h, r);
    return proof;
}

Bn254Fr
QapArgument::challengeFor(const QapProof &proof) const
{
    Transcript t("unintt-qap-argument");
    for (const auto *commit :
         {&proof.commitA, &proof.commitB, &proof.commitC,
          &proof.commitH}) {
        auto affine = commit->toAffine();
        t.absorbU256(affine.x.value());
        t.absorbU256(affine.y.value());
    }
    return t.challengeFr();
}

bool
QapArgument::verify(const R1cs<Bn254Fr> &cs, const QapProof &proof) const
{
    const size_t n = domainSize(cs);
    Bn254Fr r = challengeFor(proof);

    // 1. Every opening must be consistent with its commitment.
    if (!kzg_.verify(proof.commitA, r, proof.openA) ||
        !kzg_.verify(proof.commitB, r, proof.openB) ||
        !kzg_.verify(proof.commitC, r, proof.openC) ||
        !kzg_.verify(proof.commitH, r, proof.openH))
        return false;

    // 2. The divisibility identity at the challenge point:
    //    a(r) b(r) - c(r) == h(r) (r^n - 1).
    Bn254Fr lhs =
        proof.openA.value * proof.openB.value - proof.openC.value;
    U256 n_exp(static_cast<uint64_t>(n));
    Bn254Fr zr = r.pow(n_exp) - Bn254Fr::one();
    return lhs == proof.openH.value * zr;
}

} // namespace unintt
