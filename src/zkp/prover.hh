/**
 * @file
 * End-to-end prover pipeline models. A ZKP prover is a fixed schedule
 * of NTTs, MSMs and pointwise passes over circuit-sized domains; this
 * module encodes the schedules of a Groth16-style and a PLONK-style
 * prover and prices every stage with the same simulated engines the
 * NTT benches use.
 *
 * This reproduces the paper's motivation: MSM scales near-linearly
 * across GPUs (it partitions trivially), so once MSM is multi-GPU
 * accelerated, proof-generation time is dominated by NTT unless the
 * NTT is distributed too — and distributing it well is UniNTT's
 * contribution.
 */

#ifndef UNINTT_ZKP_PROVER_HH
#define UNINTT_ZKP_PROVER_HH

#include <string>
#include <vector>

#include "sim/multi_gpu.hh"

namespace unintt {

/** Which multi-GPU NTT implementation the prover uses. */
enum class NttBackend
{
    /** UniNTT hierarchical engine (this paper). */
    UniNtt,
    /** Four-step with all-to-all transposes (conventional). */
    FourStep,
    /**
     * No distribution: every NTT runs on one GPU (Icicle-style
     * library), the other GPUs idle through the NTT stages.
     */
    SingleGpu,
};

/** Printable backend name. */
const char *toString(NttBackend backend);

/** One stage of a prover schedule. */
struct ProverStage
{
    enum class Kind { Ntt, MsmG1, MsmG2, Pointwise, Hash };

    std::string name;
    Kind kind;
    /** log2 of the stage's domain / point count. */
    unsigned logSize;
    /** How many identical instances of this stage run. */
    unsigned count = 1;
};

/** Simulated time of a full prover run, split by stage kind. */
struct ProverBreakdown
{
    double nttSeconds = 0;
    double msmSeconds = 0;
    double otherSeconds = 0;
    /**
     * Stage time hidden by cross-stage pipelining (the Merkle commit
     * of round i overlapping the NTT of round i+1). Zero for the
     * sequential estimates.
     */
    double hiddenSeconds = 0;

    double
    total() const
    {
        return nttSeconds + msmSeconds + otherSeconds;
    }

    /** Wall-clock total with pipelining: hidden time is not paid. */
    double
    pipelinedTotal() const
    {
        return total() - hiddenSeconds;
    }

    /** Fraction of total time spent in NTT stages. */
    double
    nttShare() const
    {
        double t = total();
        return t > 0 ? nttSeconds / t : 0;
    }
};

/**
 * Prices prover schedules on a simulated machine with a chosen NTT
 * backend. All NTT stages use BN254-Fr (the pairing-based setting the
 * motivation targets); MSMs run over BN254 G1/G2.
 */
class ZkpPipeline
{
  public:
    ZkpPipeline(MultiGpuSystem sys, NttBackend backend);

    /**
     * Groth16 prover schedule for 2^log_constraints constraints:
     * witness interpolations, coset evaluations, the quotient, and the
     * four proof MSMs.
     */
    static std::vector<ProverStage> groth16Stages(unsigned log_constraints);

    /**
     * PLONK prover schedule for 2^log_constraints gates: wire/permu-
     * tation polynomial transforms on the 4x quotient domain and the
     * seven commitment MSMs.
     */
    static std::vector<ProverStage> plonkStages(unsigned log_constraints);

    /**
     * Hash-based (STARK/Plonky2-style) prover schedule for a
     * 2^log_trace-row, @p columns-column trace over Goldilocks:
     * interpolations, coset LDEs on the 4x domain, Merkle hashing of
     * the committed codewords, and the FRI folding rounds. Hash work
     * is modeled as Pointwise stages (sponge permutations are
     * arithmetic over the same field).
     */
    static std::vector<ProverStage> starkStages(unsigned log_trace,
                                                unsigned columns = 3);

    /** Price a schedule on this pipeline's machine and backend. */
    ProverBreakdown estimate(const std::vector<ProverStage> &stages) const;

    /**
     * Price a hash-based schedule: NTT stages run over Goldilocks
     * (not BN254-Fr) and there are no MSMs.
     */
    ProverBreakdown estimateHashBased(
        const std::vector<ProverStage> &stages) const;

    /**
     * estimateHashBased with prover-stage pipelining: each Merkle
     * commit runs concurrently with the next transcript-independent
     * NTT of the schedule (no intervening commit), hiding the shorter
     * of the two. Per-kind seconds are unchanged — only hiddenSeconds
     * (and thus pipelinedTotal) differs from the sequential estimate.
     */
    ProverBreakdown estimateHashBasedPipelined(
        const std::vector<ProverStage> &stages) const;

    /** The machine being modeled. */
    const MultiGpuSystem &system() const { return sys_; }

    /** The NTT backend in use. */
    NttBackend backend() const { return backend_; }

  private:
    double hashBasedStageSeconds(const ProverStage &stage) const;
    double nttSeconds(unsigned log_size) const;
    double nttSecondsGoldilocks(unsigned log_size) const;
    double msmSeconds(unsigned log_size, bool g2) const;
    double pointwiseSeconds(unsigned log_size,
                            bool goldilocks = false) const;
    double hashSeconds(unsigned log_size) const;

    MultiGpuSystem sys_;
    NttBackend backend_;
};

} // namespace unintt

#endif // UNINTT_ZKP_PROVER_HH
