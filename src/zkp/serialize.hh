/**
 * @file
 * Wire format for proofs. Proof systems are only useful if proofs
 * survive a network hop; this module provides a small length-checked
 * little-endian binary codec (ByteWriter/ByteReader) and encoders/
 * decoders for the proof types shipped in this repo (FRI, STARK, QAP
 * openings). Decoding is defensive: malformed or truncated buffers
 * yield decode failure, never undefined behavior.
 */

#ifndef UNINTT_ZKP_SERIALIZE_HH
#define UNINTT_ZKP_SERIALIZE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "zkp/air.hh"
#include "zkp/fri.hh"
#include "zkp/qap_argument.hh"
#include "zkp/stark.hh"

namespace unintt {

/** Append-only little-endian byte buffer. */
class ByteWriter
{
  public:
    /** Append one 64-bit word. */
    void writeU64(uint64_t v);

    /** Append a field element (canonical form). */
    void writeGoldilocks(Goldilocks v) { writeU64(v.value()); }

    /** Append a 256-bit value. */
    void writeU256(const U256 &v);

    /** Append a digest. */
    void writeDigest(const Digest &d);

    /** The serialized bytes. */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<uint8_t> bytes_;
};

/** Bounds-checked reader over a byte buffer. */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<uint8_t> &bytes)
        : bytes_(bytes)
    {
    }

    /** Read one 64-bit word; nullopt past the end. */
    std::optional<uint64_t> readU64();

    /** Read a canonical field element; nullopt if out of range. */
    std::optional<Goldilocks> readGoldilocks();

    /** Read a 256-bit value. */
    std::optional<U256> readU256();

    /** Read a digest. */
    std::optional<Digest> readDigest();

    /** True iff every byte has been consumed. */
    bool exhausted() const { return pos_ == bytes_.size(); }

  private:
    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
};

/**
 * Append a FRI proof to an open writer. Exposed (unlike the other
 * per-type internals) so composite payloads — e.g. the checkpoint
 * store's commit-stage entries (zkp/checkpoint.hh) — can embed a FRI
 * proof next to other fields in one buffer.
 */
void writeFriProof(ByteWriter &w, const FriProof &proof);

/**
 * Read a FRI proof from an open reader; nullopt on any malformation
 * (the reader position is unspecified after a failure).
 */
std::optional<FriProof> readFriProof(ByteReader &r);

/** Serialize a FRI proof. */
std::vector<uint8_t> serializeFriProof(const FriProof &proof);

/** Deserialize a FRI proof; nullopt on any malformation. */
std::optional<FriProof> deserializeFriProof(
    const std::vector<uint8_t> &bytes);

/** Serialize a STARK proof. */
std::vector<uint8_t> serializeStarkProof(const StarkProof &proof);

/** Serialize a generic-AIR proof. */
std::vector<uint8_t> serializeAirProof(const AirProof &proof);

/** Deserialize a generic-AIR proof; nullopt on any malformation. */
std::optional<AirProof> deserializeAirProof(
    const std::vector<uint8_t> &bytes);

/** Serialize a QAP-argument proof (BN254 group elements in affine). */
std::vector<uint8_t> serializeQapProof(const QapProof &proof);

/** Deserialize a QAP-argument proof; nullopt on any malformation. */
std::optional<QapProof> deserializeQapProof(
    const std::vector<uint8_t> &bytes);

/** Deserialize a STARK proof; nullopt on any malformation. */
std::optional<StarkProof> deserializeStarkProof(
    const std::vector<uint8_t> &bytes);

} // namespace unintt

#endif // UNINTT_ZKP_SERIALIZE_HH
