/**
 * @file
 * Checkpoint store for the STARK proof pipeline.
 *
 * A proof chains expensive stages — trace LDE, the FRI commit of the
 * trace, the constraint quotient, its commit, the boundary quotient,
 * its commit, and the final spot-check queries — and each stage's
 * output is a pure function of the public inputs and the stages
 * before it. Losing a device in FRI round 7 therefore does not have
 * to cost the whole proof: persist each stage's output as it
 * completes, and a resumed prover replays only the failed stage.
 *
 * Every entry is sealed with a position-salted checksum
 * (util/checksum.hh): the payload checksum is mixed with the stage
 * index and the entry key, so a payload that bit-rots, or that is
 * moved wholesale to a different stage or key, reads back as absent —
 * the stage recomputes, and a corrupted checkpoint can never produce
 * a silently wrong proof. A failed validation is indistinguishable
 * from a miss on purpose; the stats() record it for observability.
 *
 * The store is an in-memory map; durability across processes is out
 * of scope (the simulated machine has no disks), but the interface —
 * opaque bytes in, validated bytes out — is exactly what a file or
 * object-store backend would implement.
 */

#ifndef UNINTT_ZKP_CHECKPOINT_HH
#define UNINTT_ZKP_CHECKPOINT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/status.hh"
#include "zkp/fri.hh"

namespace unintt {

class ByteWriter;
class ByteReader;

/** Observability counters of one CheckpointStore. */
struct CheckpointStats
{
    /** Entries written (including overwrites). */
    uint64_t puts = 0;
    /** Reads that validated and returned a payload. */
    uint64_t hits = 0;
    /** Reads of absent entries. */
    uint64_t misses = 0;
    /** Reads rejected by the checksum or stage seal. */
    uint64_t checksumFailures = 0;
    /** Total payload bytes written over the store's lifetime. */
    uint64_t bytesWritten = 0;
};

/** Checksummed (stage, key) → payload map; see the file comment. */
class CheckpointStore
{
  public:
    /** Store @p payload under (@p stage, @p key), replacing any. */
    void put(unsigned stage, const std::string &key,
             std::vector<uint8_t> payload);

    /**
     * The payload stored under (@p stage, @p key), or nullopt when
     * absent, sealed for a different stage, or failing its checksum
     * — corrupted state is never returned, only recomputed around.
     */
    std::optional<std::vector<uint8_t>> get(unsigned stage,
                                            const std::string &key);

    /** True iff an entry exists under @p key (validity not checked). */
    bool has(const std::string &key) const;

    /** Drop the entry under @p key (no-op when absent). */
    void erase(const std::string &key);

    /** Drop every entry whose key starts with @p prefix. */
    void erasePrefix(const std::string &prefix);

    /** Drop everything (stats are kept). */
    void clear();

    /** Number of live entries. */
    size_t entries() const { return entries_.size(); }

    /** Sum of live payload sizes. */
    uint64_t payloadBytes() const;

    /** Keys of every live entry, ascending. */
    std::vector<std::string> keys() const;

    /**
     * Chaos/test hook: XOR @p mask into payload byte @p offset of the
     * entry under @p key (offset wraps modulo the payload size). The
     * seal is left untouched, so the next get() must detect the flip.
     * @return false when the entry is absent or empty or mask is 0.
     */
    bool corrupt(const std::string &key, size_t offset, uint8_t mask);

    /** Lifetime counters. */
    const CheckpointStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        unsigned stage = 0;
        std::vector<uint8_t> payload;
        /** Position-salted checksum over (stage, key, payload). */
        uint64_t seal = 0;
    };

    static uint64_t sealOf(unsigned stage, const std::string &key,
                           const std::vector<uint8_t> &payload);

    std::map<std::string, Entry> entries_;
    CheckpointStats stats_;
};

/** Gate consulted before a FRI fold round executes (chaos harness). */
using FriRoundGate =
    std::function<Status(const std::string &stage, unsigned round)>;

/**
 * FriRoundCheckpointer backed by a CheckpointStore: round r of a
 * commit stage lives under "<prefix>/round-<r>", sealed with the
 * stage's index. An optional FriRoundGate injects interruptions
 * between rounds (the chaos soak uses this to kill proofs mid-FRI).
 */
class StoreRoundCheckpointer : public FriRoundCheckpointer
{
  public:
    StoreRoundCheckpointer(CheckpointStore &store, unsigned stage,
                           std::string prefix, FriRoundGate gate = {});

    std::optional<std::vector<Goldilocks>>
    loadRound(unsigned round) override;
    void saveRound(unsigned round,
                   const std::vector<Goldilocks> &codeword) override;
    Status roundGate(unsigned round) override;

    /** Drop this stage's round entries (the stage checkpoint
     * supersedes them once the commit completes). */
    void dropRounds();

  private:
    std::string roundKey(unsigned round) const;

    CheckpointStore &store_;
    unsigned stage_;
    std::string prefix_;
    FriRoundGate gate_;
};

/** Append a field-element vector (count-prefixed) to @p w. */
void writeFieldVector(ByteWriter &w, const std::vector<Goldilocks> &v);

/** Read a count-prefixed field-element vector; nullopt when
 * malformed or longer than @p max_len. */
std::optional<std::vector<Goldilocks>>
readFieldVector(ByteReader &r, uint64_t max_len);

} // namespace unintt

#endif // UNINTT_ZKP_CHECKPOINT_HH
