#include "zkp/sumcheck.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace unintt {

Goldilocks
multilinearEval(const std::vector<Goldilocks> &table,
                const std::vector<Goldilocks> &point)
{
    UNINTT_ASSERT(isPow2(table.size()), "table must be 2^m entries");
    UNINTT_ASSERT(table.size() == 1ULL << point.size(),
                  "dimension mismatch");
    // Fold one variable at a time: f(r, x') = (1-r) f(0, x') +
    // r f(1, x'). Variable i is bit i of the table index.
    std::vector<Goldilocks> cur = table;
    for (size_t v = 0; v < point.size(); ++v) {
        size_t half = cur.size() / 2;
        std::vector<Goldilocks> next(half);
        for (size_t i = 0; i < half; ++i) {
            // Entries with bit v = 0 and 1 sit 1 apart after earlier
            // folds: index 2i has x_v = 0, index 2i+1 has x_v = 1.
            Goldilocks f0 = cur[2 * i];
            Goldilocks f1 = cur[2 * i + 1];
            next[i] = f0 + point[v] * (f1 - f0);
        }
        cur = std::move(next);
    }
    return cur[0];
}

Goldilocks
hypercubeSum(const std::vector<Goldilocks> &table)
{
    Goldilocks acc;
    for (const auto &v : table)
        acc += v;
    return acc;
}

SumcheckProof
sumcheckProve(std::vector<Goldilocks> table, Transcript &transcript)
{
    UNINTT_ASSERT(isPow2(table.size()) && !table.empty(),
                  "table must be 2^m entries");
    unsigned m = log2Exact(table.size());

    SumcheckProof proof;
    proof.claimedSum = hypercubeSum(table);
    transcript.absorb(proof.claimedSum);

    for (unsigned round = 0; round < m; ++round) {
        // g(X) = sum over the remaining cube of f with the current
        // variable fixed to X; for multilinear f this is degree 1, so
        // g(0) and g(1) determine it.
        size_t half = table.size() / 2;
        SumcheckRound msg;
        for (size_t i = 0; i < half; ++i) {
            msg.at0 += table[2 * i];     // variable = 0 entries
            msg.at1 += table[2 * i + 1]; // variable = 1 entries
        }
        proof.rounds.push_back(msg);
        transcript.absorb(msg.at0);
        transcript.absorb(msg.at1);

        Goldilocks r = transcript.challengeGoldilocks();
        // Fold the bound variable out of the table.
        std::vector<Goldilocks> next(half);
        for (size_t i = 0; i < half; ++i) {
            Goldilocks f0 = table[2 * i];
            Goldilocks f1 = table[2 * i + 1];
            next[i] = f0 + r * (f1 - f0);
        }
        table = std::move(next);
    }
    return proof;
}

bool
sumcheckVerify(
    const SumcheckProof &proof, unsigned num_vars, Transcript &transcript,
    const std::function<Goldilocks(const std::vector<Goldilocks> &)>
        &oracle)
{
    if (proof.rounds.size() != num_vars)
        return false;
    transcript.absorb(proof.claimedSum);

    Goldilocks claim = proof.claimedSum;
    std::vector<Goldilocks> challenges;
    for (const auto &msg : proof.rounds) {
        // Round consistency: g(0) + g(1) must equal the running claim.
        if (!(msg.at0 + msg.at1 == claim))
            return false;
        transcript.absorb(msg.at0);
        transcript.absorb(msg.at1);
        Goldilocks r = transcript.challengeGoldilocks();
        challenges.push_back(r);
        // New claim: g(r) for the degree-1 g through (0, g0), (1, g1).
        claim = msg.at0 + r * (msg.at1 - msg.at0);
    }

    // Final oracle check at the random point.
    return oracle(challenges) == claim;
}

} // namespace unintt
