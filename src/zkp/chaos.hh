/**
 * @file
 * Seeded chaos campaigns over the full proof pipeline.
 *
 * A campaign runs one STARK proof through the checkpointed prover
 * (zkp/checkpoint.hh) while a seeded adversary kills stages and FRI
 * rounds and flips bytes in stored checkpoints between resume
 * attempts, and runs the accompanying NTT workload through the
 * resilient engine (unintt/engine.hh) under an injected fault model
 * with a shared cross-transform DeviceHealthTracker. The harness
 * asserts the robustness contract end to end:
 *
 *   every run either completes BIT-IDENTICALLY to the fault-free
 *   reference, or fails with a clean non-OK Status — never silent
 *   corruption.
 *
 * Everything is derived from one seed, so a failing campaign is a
 * reproducible regression test, and the per-intensity stats feed the
 * MTBF / recovery-cost table of `unintt-cli soak` and Figure 19.
 */

#ifndef UNINTT_ZKP_CHAOS_HH
#define UNINTT_ZKP_CHAOS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace unintt {

/** One cell of the chaos grid: how hostile the run is. */
struct ChaosIntensity
{
    /** Row label ("off", "light", ...). */
    std::string label;
    /** P(a pipeline stage attempt is killed at its gate). */
    double stageFailRate = 0.0;
    /** P(a FRI fold round is killed at its gate). */
    double roundFailRate = 0.0;
    /** P(one stored checkpoint byte is flipped between attempts). */
    double checkpointCorruptRate = 0.0;
    /** NTT fabric: per-attempt transient exchange failure rate. */
    double transientRate = 0.0;
    /** NTT fabric: per-exchange payload bit-flip rate. */
    double bitFlipRate = 0.0;
    /** NTT fabric: per-exchange straggler rate. */
    double stragglerRate = 0.0;
    /** P(a transform schedules a permanent device dropout). */
    double dropoutRate = 0.0;
    /** NTT compute path: per-kernel output bit-flip rate (ABFT). */
    double computeBitFlipRate = 0.0;
};

/** Campaign-count and workload-shape knobs. */
struct ChaosConfig
{
    /** Master seed; every draw in every campaign derives from it. */
    uint64_t seed = 0xc405;
    /** Proof pipelines per intensity. */
    unsigned campaigns = 8;
    /** log2 trace length of each proof (n must exceed 2*friFinalTerms). */
    unsigned logTrace = 8;
    /** Resume attempts before a campaign counts as failed-clean. */
    unsigned maxResumes = 16;
    /** GPUs of the simulated machine running the NTT workload. */
    unsigned gpus = 8;
    /** log2 transform size of the NTT workload. */
    unsigned logN = 14;
    /** Resilient transforms per campaign (shared health tracker). */
    unsigned transformsPerCampaign = 2;
    /**
     * Overlap comm with compute in the NTT workload (wave dispatch
     * over the DAG overlay). On by default so every soak exercises
     * mid-overlap kills; off pins the linear dispatch for A/B runs.
     */
    bool overlapComm = true;
    /**
     * Run the NTT workload with the ABFT compute checksums enabled.
     * Off is the deliberate escape hatch (`unintt-cli soak
     * --no-abft`): with computeBitFlipRate > 0 it demonstrates that
     * the zero-silent-corruption invariant *fails* without ABFT, so
     * it is an expected-failure smoke, never part of a green gate.
     */
    bool abft = true;
};

/** Outcome of one intensity's campaigns. */
struct ChaosCampaignStats
{
    std::string label;
    unsigned campaigns = 0;

    /** Proofs that completed byte-identically to the reference. */
    unsigned proofsCompleted = 0;
    /** Proofs that exhausted the resume budget with a clean Status. */
    unsigned proofsFailedClean = 0;
    /** Transforms whose output matched the fault-free reference. */
    unsigned transformsCompleted = 0;
    /** Transforms that returned a clean non-OK Status. */
    unsigned transformsFailedClean = 0;

    /** Gate-induced proof interruptions (stage + round). */
    uint64_t interruptions = 0;
    /** Resume attempts after an interruption. */
    uint64_t resumes = 0;
    /** Checkpoint bytes the adversary flipped. */
    uint64_t checkpointCorruptions = 0;
    /** Corrupted/stale checkpoint reads the seals rejected. */
    uint64_t checksumDetections = 0;
    /** Completions whose bytes differed from the reference. MUST be 0. */
    uint64_t silentCorruptions = 0;

    /** NTT-side injected events (transients + exchange/compute flips
     * + stragglers + dropouts) across all transforms. */
    uint64_t injectedFaults = 0;
    /**
     * Injected-vs-caught accounting over *completed* transforms only
     * (a failed run's SimReport — and with it the catch counters —
     * does not survive the error path, so only completed runs can be
     * balanced). For every completed transform the ABFT ledger must
     * balance: computeFlipsInjected == abftCaught + abftEscalated.
     */
    uint64_t exchangeFlipsInjected = 0;
    /** Exchange flips the payload checksums detected (completed). */
    uint64_t exchangeFlipsCaught = 0;
    /** Compute-path bit flips the injector fired (completed runs). */
    uint64_t computeFlipsInjected = 0;
    /** Compute flips the ABFT checksums caught and localized. */
    uint64_t abftCaught = 0;
    /** Corrupted tiles recomputed by the ABFT recovery path. */
    uint64_t abftTilesRecomputed = 0;
    /** ABFT escalations to the degrade-reschedule path. */
    uint64_t abftEscalated = 0;
    /** Health-tracker quarantine transitions observed. */
    uint64_t quarantines = 0;
    /** Total priced NTT time across all resilient transforms. */
    double simulatedSeconds = 0.0;

    /** Checkpoint store writes across all proof attempts. */
    uint64_t checkpointPuts = 0;
    /** Checkpoint bytes written across all proof attempts. */
    uint64_t checkpointBytes = 0;

    /** Simulated seconds per injected NTT fault (inf when clean). */
    double mtbfSeconds() const;
    /** Resume attempts per completed proof (the recovery cost). */
    double resumesPerProof() const;
};

/**
 * The default grid: off / light / medium / heavy (fabric + pipeline
 * chaos) followed by sdc-light / sdc-medium / sdc-heavy (pure
 * compute-path bit flips mirroring the exchange bitFlipRate ladder,
 * so the ABFT layer is exercised in isolation).
 */
std::vector<ChaosIntensity> defaultChaosGrid();

/** Run @p cfg.campaigns campaigns at intensity @p intensity. */
ChaosCampaignStats runChaosCampaigns(const ChaosConfig &cfg,
                                     const ChaosIntensity &intensity);

/** Print the MTBF / recovery-cost table for a sweep of the grid. */
void printChaosTable(std::ostream &os,
                     const std::vector<ChaosCampaignStats> &rows);

} // namespace unintt

#endif // UNINTT_ZKP_CHAOS_HH
